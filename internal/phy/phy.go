// Package phy models the IEEE 802.11 physical layers used by the CO-MAP
// evaluation: the 802.11b DSSS and 802.11g ERP-OFDM rate sets, per-rate SIR
// decoding thresholds and receiver sensitivities, and frame airtime
// computation.
//
// The paper's testbed runs 802.11b/g with Minstrel rate adaptation; the NS-2
// large-scale evaluation uses a fixed 6 Mbps rate (Table I).
package phy

import (
	"fmt"
	"time"
)

// Rate describes one modulation/coding point of a PHY.
type Rate struct {
	// Name is a short human-readable label, e.g. "11M".
	Name string
	// BitsPerSec is the nominal data rate.
	BitsPerSec float64
	// MinSIRdB is the minimum signal-to-interference(+noise) ratio required
	// to decode a frame at this rate. The paper quotes 10 dB for 11 Mbps down
	// to 4 dB for 1 Mbps 802.11b.
	MinSIRdB float64
	// SensitivityDBm is the minimum received power for the radio to lock onto
	// a frame at this rate.
	SensitivityDBm float64
}

// IsZero reports whether the rate is the zero value.
func (r Rate) IsZero() bool { return r.BitsPerSec == 0 }

// String implements fmt.Stringer.
func (r Rate) String() string {
	if r.Name != "" {
		return r.Name
	}
	return fmt.Sprintf("%.1fMbps", r.BitsPerSec/1e6)
}

// DSSS (802.11b) rates with the SIR thresholds quoted in the paper (§IV-B)
// and typical commodity sensitivities.
var (
	RateDSSS1  = Rate{Name: "1M", BitsPerSec: 1e6, MinSIRdB: 4, SensitivityDBm: -94}
	RateDSSS2  = Rate{Name: "2M", BitsPerSec: 2e6, MinSIRdB: 6, SensitivityDBm: -91}
	RateDSSS5  = Rate{Name: "5.5M", BitsPerSec: 5.5e6, MinSIRdB: 8, SensitivityDBm: -87}
	RateDSSS11 = Rate{Name: "11M", BitsPerSec: 11e6, MinSIRdB: 10, SensitivityDBm: -82}
)

// ERP-OFDM (802.11g) rates with typical thresholds/sensitivities.
var (
	RateOFDM6  = Rate{Name: "6M", BitsPerSec: 6e6, MinSIRdB: 6, SensitivityDBm: -90}
	RateOFDM9  = Rate{Name: "9M", BitsPerSec: 9e6, MinSIRdB: 8, SensitivityDBm: -89}
	RateOFDM12 = Rate{Name: "12M", BitsPerSec: 12e6, MinSIRdB: 9, SensitivityDBm: -86}
	RateOFDM18 = Rate{Name: "18M", BitsPerSec: 18e6, MinSIRdB: 11, SensitivityDBm: -83}
	RateOFDM24 = Rate{Name: "24M", BitsPerSec: 24e6, MinSIRdB: 17, SensitivityDBm: -80}
	RateOFDM36 = Rate{Name: "36M", BitsPerSec: 36e6, MinSIRdB: 19, SensitivityDBm: -76}
	RateOFDM48 = Rate{Name: "48M", BitsPerSec: 48e6, MinSIRdB: 24, SensitivityDBm: -71}
	RateOFDM54 = Rate{Name: "54M", BitsPerSec: 54e6, MinSIRdB: 25, SensitivityDBm: -69}
)

// MAC-level frame size constants (bytes), per IEEE 802.11-2007.
const (
	// MACHeaderBytes is a three-address data header (24) plus FCS (4).
	MACHeaderBytes = 28
	// ACKBytes is the size of an ACK control frame including FCS.
	ACKBytes = 14
	// SRAckBytes is the size of a selective-repeat ACK (ACK plus cumulative
	// sequence number and 32-bit bitmap, paper §IV-C4).
	SRAckBytes = 20
	// ComapHeaderBytes is the CO-MAP discovery header: source and destination
	// addresses (12) plus its own FCS (4). See paper §V ("Implementation of
	// header").
	ComapHeaderBytes = 16
)

// Params gathers the timing and channel-access parameters of one PHY flavor.
type Params struct {
	// Name identifies the parameter set, e.g. "DSSS" or "ERP-OFDM".
	Name string
	// SlotTime is the backoff slot duration.
	SlotTime time.Duration
	// SIFS separates a data frame from its ACK.
	SIFS time.Duration
	// PreambleHeader is the PLCP preamble plus PLCP header airtime prepended
	// to every frame.
	PreambleHeader time.Duration
	// SymbolTime, when non-zero, rounds payload airtime up to a whole number
	// of OFDM symbols.
	SymbolTime time.Duration
	// CWMin and CWMax bound the binary-exponential contention window.
	CWMin, CWMax int
	// BasicRate is used for ACKs and for the CO-MAP discovery header.
	BasicRate Rate
	// Rates is the rate set available to rate adaptation, slowest first.
	Rates []Rate
	// NoiseFloorDBm is the receiver noise floor.
	NoiseFloorDBm float64
}

// DIFS is SIFS + 2 slot times, per the DCF specification.
func (p Params) DIFS() time.Duration { return p.SIFS + 2*p.SlotTime }

// EIFS is the extended interframe space used after an errored reception:
// SIFS + ACK airtime at the basic rate + DIFS.
func (p Params) EIFS() time.Duration {
	return p.SIFS + p.FrameAirtime(p.BasicRate, ACKBytes) + p.DIFS()
}

// PayloadAirtime returns the time to transmit the given number of bytes at
// the given rate, excluding the PLCP preamble/header, rounded up to a whole
// symbol when the PHY is symbol-based.
func (p Params) PayloadAirtime(r Rate, bytes int) time.Duration {
	if bytes < 0 {
		bytes = 0
	}
	bits := float64(bytes * 8)
	d := time.Duration(bits / r.BitsPerSec * float64(time.Second))
	if p.SymbolTime > 0 && d > 0 {
		if rem := d % p.SymbolTime; rem != 0 {
			d += p.SymbolTime - rem
		}
	}
	return d
}

// FrameAirtime returns the full airtime of a frame of the given size:
// preamble/PLCP header plus payload bits.
func (p Params) FrameAirtime(r Rate, bytes int) time.Duration {
	return p.PreambleHeader + p.PayloadAirtime(r, bytes)
}

// DataFrameAirtime returns the airtime of a data frame carrying payloadBytes
// of application payload behind a standard MAC header.
func (p Params) DataFrameAirtime(r Rate, payloadBytes int) time.Duration {
	return p.FrameAirtime(r, MACHeaderBytes+payloadBytes)
}

// ACKAirtime returns the airtime of an ACK at the basic rate.
func (p Params) ACKAirtime() time.Duration {
	return p.FrameAirtime(p.BasicRate, ACKBytes)
}

// ACKTimeout is how long a transmitter waits for an ACK before declaring
// loss: SIFS + the airtime of the largest acknowledgement (a selective-repeat
// ACK) + one slot of scheduling slack.
func (p Params) ACKTimeout() time.Duration {
	return p.SIFS + p.FrameAirtime(p.BasicRate, SRAckBytes) + p.SlotTime
}

// LowestRate returns the slowest rate in the rate set; it is the rate whose
// SIR threshold CO-MAP uses for conservative concurrency validation.
func (p Params) LowestRate() Rate {
	if len(p.Rates) == 0 {
		return p.BasicRate
	}
	low := p.Rates[0]
	for _, r := range p.Rates[1:] {
		if r.BitsPerSec < low.BitsPerSec {
			low = r
		}
	}
	return low
}

// DSSS returns the 802.11b HR/DSSS parameter set with the short PLCP
// preamble (96 µs) and a 2 Mbps basic rate for control responses, as
// commodity b/g NICs negotiate in practice.
func DSSS() Params {
	return Params{
		Name:           "DSSS",
		SlotTime:       20 * time.Microsecond,
		SIFS:           10 * time.Microsecond,
		PreambleHeader: 96 * time.Microsecond,
		CWMin:          31,
		CWMax:          1023,
		BasicRate:      RateDSSS2,
		Rates:          []Rate{RateDSSS1, RateDSSS2, RateDSSS5, RateDSSS11},
		NoiseFloorDBm:  -95,
	}
}

// DSSSLongPreamble returns the 802.11b parameter set with the long (192 µs)
// preamble and 1 Mbps basic rate — the most conservative configuration.
func DSSSLongPreamble() Params {
	p := DSSS()
	p.Name = "DSSS long preamble"
	p.PreambleHeader = 192 * time.Microsecond
	p.BasicRate = RateDSSS1
	return p
}

// ERPOFDM returns the 802.11g-only ERP-OFDM parameter set (short slot).
func ERPOFDM() Params {
	return Params{
		Name:           "ERP-OFDM",
		SlotTime:       9 * time.Microsecond,
		SIFS:           10 * time.Microsecond,
		PreambleHeader: 20 * time.Microsecond,
		SymbolTime:     4 * time.Microsecond,
		CWMin:          15,
		CWMax:          1023,
		BasicRate:      RateOFDM6,
		Rates: []Rate{
			RateOFDM6, RateOFDM9, RateOFDM12, RateOFDM18,
			RateOFDM24, RateOFDM36, RateOFDM48, RateOFDM54,
		},
		NoiseFloorDBm: -95,
	}
}

// Mixed returns the 802.11b/g mixed-mode parameter set used to model the
// paper's testbed: DSSS timing for coexistence, the full b+g rate set.
func Mixed() Params {
	p := DSSS()
	p.Name = "Mixed b/g"
	p.Rates = []Rate{
		RateDSSS1, RateDSSS2, RateDSSS5, RateDSSS11,
		RateOFDM6, RateOFDM9, RateOFDM12, RateOFDM18,
		RateOFDM24, RateOFDM36, RateOFDM48, RateOFDM54,
	}
	return p
}

// NS2Table1 returns the parameter set of the paper's Table I: fixed 6 Mbps
// data rate over the 2.4 GHz band.
func NS2Table1() Params {
	p := ERPOFDM()
	p.Name = "NS-2 Table I"
	p.Rates = []Rate{RateOFDM6}
	return p
}
