package phy

import (
	"testing"
	"testing/quick"
	"time"
)

func TestDIFS(t *testing.T) {
	if got := DSSS().DIFS(); got != 50*time.Microsecond {
		t.Errorf("DSSS DIFS = %v, want 50µs", got)
	}
	if got := ERPOFDM().DIFS(); got != 28*time.Microsecond {
		t.Errorf("ERP DIFS = %v, want 28µs", got)
	}
}

func TestPayloadAirtimeDSSS(t *testing.T) {
	p := DSSS()
	// 1000 bytes at 1 Mbps = 8000 µs.
	if got := p.PayloadAirtime(RateDSSS1, 1000); got != 8*time.Millisecond {
		t.Errorf("airtime = %v, want 8ms", got)
	}
	// 11 Mbps: 8000 bits / 11e6 = 727.27µs (no symbol rounding in DSSS).
	got := p.PayloadAirtime(RateDSSS11, 1000)
	bits := 8000.0
	want := time.Duration(bits / 11e6 * float64(time.Second))
	if got != want {
		t.Errorf("airtime = %v, want %v", got, want)
	}
}

func TestPayloadAirtimeOFDMSymbolRounding(t *testing.T) {
	p := ERPOFDM()
	// 100 bytes at 6 Mbps = 133.33 µs -> round up to 136 µs (34 symbols).
	got := p.PayloadAirtime(RateOFDM6, 100)
	if got != 136*time.Microsecond {
		t.Errorf("airtime = %v, want 136µs", got)
	}
	// Exactly a symbol boundary must not round up: 3 bytes at 6M = 4µs.
	if got := p.PayloadAirtime(RateOFDM6, 3); got != 4*time.Microsecond {
		t.Errorf("boundary airtime = %v, want 4µs", got)
	}
	// Zero bytes -> zero payload airtime.
	if got := p.PayloadAirtime(RateOFDM6, 0); got != 0 {
		t.Errorf("zero-byte airtime = %v", got)
	}
}

func TestPayloadAirtimeNegativeBytesClamped(t *testing.T) {
	if got := DSSS().PayloadAirtime(RateDSSS1, -5); got != 0 {
		t.Errorf("negative bytes airtime = %v", got)
	}
}

func TestFrameAirtimeIncludesPreamble(t *testing.T) {
	p := DSSS()
	if got := p.FrameAirtime(RateDSSS1, 0); got != p.PreambleHeader {
		t.Errorf("empty frame airtime = %v", got)
	}
	f := func(n uint16) bool {
		b := int(n % 3000)
		return p.FrameAirtime(RateDSSS11, b) == p.PreambleHeader+p.PayloadAirtime(RateDSSS11, b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAirtimeMonotoneInBytes(t *testing.T) {
	p := ERPOFDM()
	f := func(a, b uint16) bool {
		x, y := int(a%4000), int(b%4000)
		if x > y {
			x, y = y, x
		}
		return p.DataFrameAirtime(RateOFDM54, x) <= p.DataFrameAirtime(RateOFDM54, y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFasterRateShorterAirtime(t *testing.T) {
	p := Mixed()
	const bytes = 1500
	for _, a := range p.Rates {
		for _, b := range p.Rates {
			if a.BitsPerSec < b.BitsPerSec &&
				p.PayloadAirtime(a, bytes) <= p.PayloadAirtime(b, bytes) {
				t.Errorf("slower rate %v has airtime <= faster rate %v", a, b)
			}
		}
	}
}

func TestACKAirtimeAndTimeout(t *testing.T) {
	p := DSSS()
	ack := p.ACKAirtime()
	want := p.PreambleHeader + p.PayloadAirtime(p.BasicRate, ACKBytes)
	if ack != want {
		t.Errorf("ACKAirtime = %v, want %v", ack, want)
	}
	if p.ACKTimeout() <= p.SIFS+ack {
		t.Error("ACKTimeout must exceed SIFS+ACK airtime")
	}
}

func TestEIFSExceedsDIFS(t *testing.T) {
	for _, p := range []Params{DSSS(), ERPOFDM(), Mixed(), NS2Table1()} {
		if p.EIFS() <= p.DIFS() {
			t.Errorf("%s: EIFS %v should exceed DIFS %v", p.Name, p.EIFS(), p.DIFS())
		}
	}
}

func TestLowestRate(t *testing.T) {
	if got := Mixed().LowestRate(); got != RateDSSS1 {
		t.Errorf("Mixed lowest = %v", got)
	}
	if got := NS2Table1().LowestRate(); got != RateOFDM6 {
		t.Errorf("NS2 lowest = %v", got)
	}
	empty := Params{BasicRate: RateOFDM6}
	if got := empty.LowestRate(); got != RateOFDM6 {
		t.Errorf("empty rate set lowest = %v", got)
	}
}

func TestRateString(t *testing.T) {
	if RateDSSS11.String() != "11M" {
		t.Errorf("String = %q", RateDSSS11.String())
	}
	anon := Rate{BitsPerSec: 2e6}
	if anon.String() != "2.0Mbps" {
		t.Errorf("anon String = %q", anon.String())
	}
}

func TestRateIsZero(t *testing.T) {
	var r Rate
	if !r.IsZero() {
		t.Error("zero rate should report IsZero")
	}
	if RateOFDM6.IsZero() {
		t.Error("real rate should not report IsZero")
	}
}

func TestSIRThresholdsIncreaseWithRate(t *testing.T) {
	for _, p := range []Params{DSSS(), ERPOFDM()} {
		for i := 1; i < len(p.Rates); i++ {
			if p.Rates[i].MinSIRdB <= p.Rates[i-1].MinSIRdB {
				t.Errorf("%s: rate %v threshold not above %v",
					p.Name, p.Rates[i], p.Rates[i-1])
			}
			if p.Rates[i].SensitivityDBm <= p.Rates[i-1].SensitivityDBm {
				t.Errorf("%s: rate %v sensitivity not above %v",
					p.Name, p.Rates[i], p.Rates[i-1])
			}
		}
	}
}

func TestPaperSIRQuotes(t *testing.T) {
	// §IV-B: "The minimum SINRs of 802.11b are normally 10 dB for 11 Mbps
	// down to 4 dB for 1 Mbps."
	if RateDSSS1.MinSIRdB != 4 {
		t.Errorf("1M threshold = %v, want 4", RateDSSS1.MinSIRdB)
	}
	if RateDSSS11.MinSIRdB != 10 {
		t.Errorf("11M threshold = %v, want 10", RateDSSS11.MinSIRdB)
	}
}

func TestNS2Table1SingleRate(t *testing.T) {
	p := NS2Table1()
	if len(p.Rates) != 1 || p.Rates[0] != RateOFDM6 {
		t.Errorf("NS2Table1 rates = %v, want only 6M", p.Rates)
	}
	if p.NoiseFloorDBm != -95 {
		t.Errorf("noise floor = %v", p.NoiseFloorDBm)
	}
}

func TestDSSSLongPreamble(t *testing.T) {
	p := DSSSLongPreamble()
	if p.PreambleHeader != 192*time.Microsecond {
		t.Errorf("preamble = %v", p.PreambleHeader)
	}
	if p.BasicRate != RateDSSS1 {
		t.Errorf("basic rate = %v", p.BasicRate)
	}
	// Same rate set and MAC timing as the short-preamble profile.
	short := DSSS()
	if p.SlotTime != short.SlotTime || p.SIFS != short.SIFS {
		t.Error("timing drifted from the DSSS profile")
	}
	if p.FrameAirtime(RateDSSS11, 100) <= short.FrameAirtime(RateDSSS11, 100) {
		t.Error("long preamble must cost more airtime")
	}
}

func TestACKTimeoutCoversSRAck(t *testing.T) {
	for _, p := range []Params{DSSS(), ERPOFDM(), NS2Table1()} {
		srAck := p.FrameAirtime(p.BasicRate, SRAckBytes)
		if p.ACKTimeout() <= p.SIFS+srAck {
			t.Errorf("%s: ACKTimeout %v does not cover SIFS+SRACK %v",
				p.Name, p.ACKTimeout(), p.SIFS+srAck)
		}
	}
}

func TestNS2Table1Timings(t *testing.T) {
	p := NS2Table1()
	// ERP-OFDM short slot.
	if p.SlotTime != 9*time.Microsecond || p.DIFS() != 28*time.Microsecond {
		t.Errorf("slot/DIFS = %v/%v", p.SlotTime, p.DIFS())
	}
	// A 1000-byte data frame at 6 Mbps: 20µs preamble + ceil(1028*8/24)=343
	// symbols... airtime ≈ 1391µs.
	air := p.DataFrameAirtime(RateOFDM6, 1000)
	if air < 1350*time.Microsecond || air > 1420*time.Microsecond {
		t.Errorf("1000B@6M airtime = %v", air)
	}
}
