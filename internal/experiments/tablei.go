package experiments

import (
	"fmt"
	"io"

	"repro/internal/netsim"
	"repro/internal/radio"
)

// TableIRow is one parameter of the NS-2 configuration table.
type TableIRow struct {
	Parameter string
	Value     string
}

// TableI reproduces the paper's Table I: the parameter setting of the NS-2
// simulations, as actually used by this repository's large-scale harness.
func TableI() []TableIRow {
	opts := netsim.NS2Options()
	m := opts.ComapModel
	return []TableIRow{
		{Parameter: "Data rate", Value: "6 Mbps"},
		{Parameter: "TX power", Value: fmt.Sprintf("%.0f dBm", opts.TxPowerDBm)},
		{Parameter: "T_PRR", Value: fmt.Sprintf("%.0f%%", m.TPRR*100)},
		{Parameter: "T_cs", Value: fmt.Sprintf("%.0f dBm", m.TcsDBm)},
		{Parameter: "Path loss exponent alpha", Value: fmt.Sprintf("%.1f", opts.Prop.Alpha)},
		{Parameter: "Standard deviation sigma", Value: fmt.Sprintf("%.0f dB", opts.Prop.SigmaDB)},
		{Parameter: "T_sir", Value: fmt.Sprintf("%.0f dB", m.TSIRdB)},
		{Parameter: "Noise floor", Value: fmt.Sprintf("%.0f dBm", radio.DefaultNoiseFloorDBm)},
		{Parameter: "CBR rate (two-way)", Value: "3 Mbps"},
		{Parameter: "APs / clients", Value: "3 / 9"},
	}
}

// PrintTableI renders the table.
func PrintTableI(w io.Writer) {
	fmt.Fprintln(w, "Table I: parameter setting for the large-scale simulations")
	for _, r := range TableI() {
		fmt.Fprintf(w, "  %-28s %s\n", r.Parameter, r.Value)
	}
}
