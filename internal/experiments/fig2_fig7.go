package experiments

import (
	"fmt"

	"repro/internal/bianchi"
	"repro/internal/netsim"
	"repro/internal/phy"
	"repro/internal/topology"
)

// PayloadGrid is the payload sweep (bytes) used by Figs. 2 and 7.
var PayloadGrid = []int{100, 200, 400, 600, 800, 1000, 1200, 1500}

// Fig2Result holds the hidden-terminal motivation experiment: the goodput of
// the C1→AP1 link versus payload size with and without a hidden terminal.
type Fig2Result struct {
	NoHT  Series // Nht = 0
	OneHT Series // Nht = 1
}

// Fig2 reproduces the paper's Fig. 2 under basic DCF in the Table I radio
// regime. Expected shape: without a hidden terminal, goodput rises
// monotonically with payload; with one, intermediate payloads win.
func Fig2(o Opts) (*Fig2Result, error) {
	nhts := []int{0, 1}
	var cells []gridCell
	for _, nht := range nhts {
		top := topology.HTPayload(nht)
		for _, payload := range PayloadGrid {
			opts := netsim.NS2Options()
			opts.Protocol = netsim.ProtocolDCF
			opts.PayloadBytes = payload
			cells = append(cells, gridCell{top: top, opts: opts})
		}
	}
	runs, err := runGrid(o, cells)
	if err != nil {
		return nil, err
	}

	res := &Fig2Result{
		NoHT:  Series{Name: "Nht=0 (Mbps)"},
		OneHT: Series{Name: "Nht=1 (Mbps)"},
	}
	for ni, nht := range nhts {
		for pi, payload := range PayloadGrid {
			c := ni*len(PayloadGrid) + pi
			g := meanOverSeeds(runs[c], cells[c].top.Flows[0])
			p := Point{X: float64(payload), Y: g / 1e6}
			if nht == 0 {
				res.NoHT.Points = append(res.NoHT.Points, p)
			} else {
				res.OneHT.Points = append(res.OneHT.Points, p)
			}
		}
	}
	return res, nil
}

// Fig7Windows and Fig7Hidden are the paper's parameter grids: contention
// windows {63, 255, 1023} and hidden-terminal counts {0, 3, 5}, with five
// contending nodes.
var (
	Fig7Windows = []int{63, 255, 1023}
	Fig7Hidden  = []int{0, 3, 5}
)

// Fig7Contenders is the fixed contender count of the paper's Fig. 7.
const Fig7Contenders = 5

// Fig7Panel holds one subfigure (one hidden-terminal count): per window, the
// analytical-model curve and the matching simulation curve.
type Fig7Panel struct {
	Hidden int
	Model  []Series
	Sim    []Series
}

// Fig7 reproduces the paper's Fig. 7: theoretically calculated goodput and
// simulation validation for a link with five contending nodes and 0/3/5
// hidden terminals, across payload sizes and contention windows.
func Fig7(o Opts) ([]Fig7Panel, error) {
	base := bianchi.FromPHY(phy.NS2Table1(), phy.RateOFDM6)
	base.Contenders = Fig7Contenders

	// Simulation grid: hidden x window x payload; the analytical curves are
	// computed inline during the fold.
	var cells []gridCell
	for _, h := range Fig7Hidden {
		top := topology.Fig7(Fig7Contenders, h)
		for _, w := range Fig7Windows {
			for _, payload := range PayloadGrid {
				opts := netsim.NS2Options()
				opts.Protocol = netsim.ProtocolDCF
				opts.FixedCW = w
				opts.PayloadBytes = payload
				cells = append(cells, gridCell{top: top, opts: opts})
			}
		}
	}
	runs, err := runGrid(o, cells)
	if err != nil {
		return nil, err
	}

	var panels []Fig7Panel
	c := 0
	for _, h := range Fig7Hidden {
		panel := Fig7Panel{Hidden: h}
		for _, w := range Fig7Windows {
			model := Series{Name: fmt.Sprintf("model W=%d", w)}
			sim := Series{Name: fmt.Sprintf("sim W=%d", w)}
			p := base
			p.W = w
			p.Hidden = h
			for _, payload := range PayloadGrid {
				model.Points = append(model.Points,
					Point{X: float64(payload), Y: p.Goodput(payload) / 1e6})
				g := meanOverSeeds(runs[c], cells[c].top.Flows[0])
				sim.Points = append(sim.Points, Point{X: float64(payload), Y: g / 1e6})
				c++
			}
			panel.Model = append(panel.Model, model)
			panel.Sim = append(panel.Sim, sim)
		}
		panels = append(panels, panel)
	}
	return panels, nil
}
