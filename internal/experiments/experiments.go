// Package experiments regenerates every table and figure of the paper's
// evaluation section (§III motivation and §VI): the exposed-terminal sweep
// (Figs. 1 and 8), the hidden-terminal payload study (Fig. 2), the
// analytical-model validation (Fig. 7), the ten hidden-terminal topologies
// (Fig. 9), the large-scale office floor (Fig. 10) and the NS-2 parameter
// table (Table I).
//
// Each generator returns plain data (series of points / CDFs) that
// cmd/comap-experiments renders as text tables; the same generators back the
// repository's benchmark targets.
package experiments

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/audit"
	"repro/internal/faults"
	"repro/internal/netsim"
	"repro/internal/stats"
	"repro/internal/topology"
	"repro/internal/trace"
)

// Opts scales an experiment run.
type Opts struct {
	// Seeds is the number of independent runs averaged per data point.
	Seeds int
	// Duration is the simulated time per run.
	Duration time.Duration
	// Topologies is the number of random layouts for Fig. 10.
	Topologies int
	// TraceDir, when non-empty, writes one JSONL frame-lifecycle trace per
	// run into this directory (created if needed), named
	// <topology>-<protocol>-seed<N>.jsonl, ready for comap-trace. It covers
	// every run driven through the shared per-seed goodput loops (Figs. 1,
	// 2, 7, 9 and the RTS comparison). Tracing never alters results: runs
	// stay bit-identical to untraced ones. Setting TraceDir forces
	// single-worker execution (see Workers).
	TraceDir string
	// AuditDir, when non-empty, writes one determinism ledger (run manifest
	// plus per-slice state hashes, see internal/audit) per run into this
	// directory, named audit-<topology>-<protocol>-o<fp>-seed<N>.jsonl. Like
	// TraceDir, it covers the runs driven through the shared per-seed
	// goodput loops (Figs. 1, 2, 7, 9 and the RTS comparison). The
	// <fp> component is the options fingerprint: grid cells of one figure can
	// share topology, protocol and seed while differing only in options (the
	// Fig. 2 payload sweep), and the fingerprint keeps their filenames
	// distinct — so unlike TraceDir, auditing does NOT force single-worker
	// execution. Ledgers never alter results: runs stay bit-identical to
	// unaudited ones.
	AuditDir string
	// Workers is the number of goroutines the replication runner uses to
	// execute independent (figure point, seed) simulations. 0 uses one
	// worker per CPU; 1 runs sequentially. Every run is a self-contained
	// deterministic engine and results are committed in index order, so the
	// output is bit-identical for any worker count.
	Workers int
	// ComapRemote routes every CO-MAP cell's verdicts through the mapsvc
	// control plane over the deterministic in-process transport. DCF cells
	// and in-band-location variants (which have no oracle registry to
	// mirror) are unaffected. With no RPCFaults the results are
	// bit-identical to in-process CO-MAP.
	ComapRemote bool
	// RPCFaults injects control-plane RPC faults (loss, delay, partition,
	// restart) into the remoted CO-MAP cells; requires ComapRemote.
	RPCFaults *faults.Spec
}

// Quick returns a fast configuration for tests and benchmarks.
func Quick() Opts {
	return Opts{Seeds: 2, Duration: 1 * time.Second, Topologies: 6}
}

// Full returns the paper-scale configuration (Fig. 10: 30 topologies,
// averaged over 10 runs).
func Full() Opts {
	return Opts{Seeds: 10, Duration: 5 * time.Second, Topologies: 30}
}

// Point is one (x, y) sample of a series.
type Point struct {
	X float64
	Y float64
}

// Series is one labelled curve.
type Series struct {
	Name   string
	Points []Point
}

// CDF is one labelled empirical CDF.
type CDF struct {
	Name   string
	Mean   float64
	Points []stats.CDFPoint
}

// PrintSeries renders curves as an aligned text table (x in the first
// column).
func PrintSeries(w io.Writer, xLabel string, series ...Series) {
	fmt.Fprintf(w, "%-12s", xLabel)
	for _, s := range series {
		fmt.Fprintf(w, "%18s", s.Name)
	}
	fmt.Fprintln(w)
	if len(series) == 0 || len(series[0].Points) == 0 {
		return
	}
	for i := range series[0].Points {
		fmt.Fprintf(w, "%-12.0f", series[0].Points[i].X)
		for _, s := range series {
			if i < len(s.Points) {
				fmt.Fprintf(w, "%18.3f", s.Points[i].Y)
			} else {
				fmt.Fprintf(w, "%18s", "-")
			}
		}
		fmt.Fprintln(w)
	}
}

// PrintCDFs renders CDFs as "value p" step lists with their means.
func PrintCDFs(w io.Writer, unit string, cdfs ...CDF) {
	for _, c := range cdfs {
		fmt.Fprintf(w, "%s (mean %.3f %s):\n", c.Name, c.Mean, unit)
		for _, p := range c.Points {
			fmt.Fprintf(w, "  %10.3f  %5.3f\n", p.X, p.F)
		}
	}
}

// runSeed executes one seeded scenario run, attaching a buffered JSONL
// lifecycle trace when o.TraceDir is set and a determinism ledger when
// o.AuditDir is set.
func runSeed(top topology.Topology, base netsim.Options, o Opts, seed int) (*netsim.Results, error) {
	base.Seed = int64(1000*seed + 7)
	base.Duration = o.Duration
	if o.ComapRemote && base.Protocol == netsim.ProtocolComap && !base.InBandLocation {
		base.ComapRemote = true
		base.RPCFaults = o.RPCFaults
	}
	if o.TraceDir == "" && o.AuditDir == "" {
		return netsim.RunScenario(top, base)
	}

	// sinkFile is one buffered JSONL attachment; closers run after the run
	// and surface buffered-write, flush and close failures in order.
	type sinkFile struct {
		path string
		f    *os.File
		buf  *bufio.Writer
	}
	open := func(dir, name string) (*sinkFile, error) {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, err
		}
		path := filepath.Join(dir, name)
		f, err := os.Create(path)
		if err != nil {
			return nil, err
		}
		return &sinkFile{path: path, f: f, buf: bufio.NewWriterSize(f, 1<<20)}, nil
	}
	finish := func(s *sinkFile, kind string, sinkErr error, runErr error) error {
		if sinkErr != nil && runErr == nil {
			runErr = fmt.Errorf("%s %s: %w", kind, s.path, sinkErr)
		}
		if err := s.buf.Flush(); runErr == nil && err != nil {
			runErr = fmt.Errorf("%s %s: %w", kind, s.path, err)
		}
		if err := s.f.Close(); runErr == nil && err != nil {
			runErr = fmt.Errorf("%s %s: %w", kind, s.path, err)
		}
		return runErr
	}

	cell := fmt.Sprintf("%s-%s", slug(top.Name), slug(base.Protocol.String()))
	var tw *trace.Writer
	var traceSink *sinkFile
	if o.TraceDir != "" {
		var err error
		traceSink, err = open(o.TraceDir, fmt.Sprintf("%s-seed%d.jsonl", cell, seed))
		if err != nil {
			return nil, err
		}
		tw = trace.NewWriter(traceSink.buf)
		base.Trace = tw
	}
	var auditSink *sinkFile
	if o.AuditDir != "" {
		scenario := fmt.Sprintf("%s/%s", top.Name, base.Protocol)
		m := netsim.ManifestFor(scenario, top, base)
		var err error
		auditSink, err = open(o.AuditDir,
			fmt.Sprintf("audit-%s-o%s-seed%d.jsonl", cell, m.OptionsFP, seed))
		if err != nil {
			if traceSink != nil {
				traceSink.f.Close()
			}
			return nil, err
		}
		base.Audit = &netsim.AuditConfig{Scenario: scenario, Config: audit.Config{Sink: auditSink.buf}}
	}

	n, err := netsim.Build(top, base)
	if err != nil {
		for _, s := range []*sinkFile{traceSink, auditSink} {
			if s != nil {
				s.f.Close()
			}
		}
		return nil, err
	}
	res := n.Run()
	var runErr error
	if auditSink != nil {
		runErr = finish(auditSink, "audit ledger", n.Audit.Err(), runErr)
	}
	if traceSink != nil {
		runErr = finish(traceSink, "trace", tw.Err(), runErr)
	}
	return res, runErr
}

// slug reduces a free-form name to a safe filename fragment.
func slug(s string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9', r == '-', r == '.':
			return r
		case r >= 'A' && r <= 'Z':
			return r + ('a' - 'A')
		default:
			return '-'
		}
	}, s)
}

// meanGoodput runs the scenario over opts.Seeds seeds (in parallel on the
// worker pool) and returns the mean goodput (bps) of the given flow.
func meanGoodput(top topology.Topology, base netsim.Options, o Opts, flow topology.Flow) (float64, error) {
	runs, err := runGrid(o, []gridCell{{top: top, opts: base}})
	if err != nil {
		return 0, err
	}
	return meanOverSeeds(runs[0], flow), nil
}

// medianGoodput runs the scenario over o.Seeds seeds and returns the median
// goodput (bps) of the given flow — preferable to the mean for scenarios
// that are bimodal across shadowing realizations.
func medianGoodput(top topology.Topology, base netsim.Options, o Opts, flow topology.Flow) (float64, error) {
	runs, err := runGrid(o, []gridCell{{top: top, opts: base}})
	if err != nil {
		return 0, err
	}
	samples := make([]float64, 0, o.Seeds)
	for _, res := range runs[0] {
		samples = append(samples, res.Goodput(flow))
	}
	med, err := stats.NewECDF(samples).Quantile(0.5)
	if err != nil {
		return 0, err
	}
	return med, nil
}
