package experiments

import (
	"testing"
	"time"
)

func TestAblationOrdering(t *testing.T) {
	res, err := Ablation(Opts{Seeds: 3, Duration: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("%+v", res)
	if res.DCF <= 0 {
		t.Fatal("no DCF goodput")
	}
	// Full CO-MAP must beat the DCF baseline at 30 m.
	if res.Full <= res.DCF {
		t.Errorf("full %.2f <= DCF %.2f", res.Full, res.DCF)
	}
	// Each ablated variant should still improve on DCF...
	for name, v := range map[string]float64{
		"header-frame":  res.HeaderFrame,
		"no-persistent": res.NoPersistent,
		"in-band":       res.InBandLocation,
	} {
		if v <= res.DCF*0.98 {
			t.Errorf("%s variant %.2f fell below DCF %.2f", name, v, res.DCF)
		}
	}
	// ...but cost something relative to the full stack.
	if res.HeaderFrame > res.Full {
		t.Logf("note: header-frame variant beat full (%.2f vs %.2f) — within noise", res.HeaderFrame, res.Full)
	}
	if res.NoPersistent >= res.Full {
		t.Errorf("persistent concurrency provides no benefit: %.2f vs %.2f",
			res.NoPersistent, res.Full)
	}
}
