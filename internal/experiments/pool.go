package experiments

import (
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/netsim"
	"repro/internal/topology"
)

// workerCount resolves Opts.Workers: 0 means one worker per CPU, and tracing
// forces a single worker because distinct grid points of one figure can share
// a trace filename (e.g. the Fig. 2 payload sweep reuses <topology>-<protocol>-
// seed<N>.jsonl across payloads), which concurrent runs would corrupt.
// AuditDir does not force sequential execution: ledger filenames embed the
// options fingerprint, so no two grid cells can collide.
func (o Opts) workerCount() int {
	if o.TraceDir != "" {
		return 1
	}
	w := o.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	return w
}

// runIndexed executes jobs 0..n-1 on up to workers goroutines. Each job owns
// its own index: it must write results only into slot i of a caller-allocated
// slice, so the committed results are identical no matter how the scheduler
// interleaves workers — callers then fold the slots sequentially in index
// order, reproducing the exact arithmetic of the old sequential loops.
// The lowest-index error is returned; once any job fails, workers stop
// picking up new indices.
func runIndexed(workers, n int, job func(i int) error) error {
	if n <= 0 {
		return nil
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := job(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	var next atomic.Int64
	var failed atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || failed.Load() {
					return
				}
				if err := job(i); err != nil {
					errs[i] = err
					failed.Store(true)
				}
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// gridCell is one (topology, options) scenario of a figure grid, run over
// o.Seeds seeds.
type gridCell struct {
	top  topology.Topology
	opts netsim.Options
}

// runGrid executes every cell x seed on the worker pool and returns the
// per-cell, per-seed results as out[cell][seed]. Seed handling matches
// runSeed (seed formula 1000*s+7, optional tracing), and because every run
// is an independent deterministic engine, out is identical for any worker
// count.
func runGrid(o Opts, cells []gridCell) ([][]*netsim.Results, error) {
	out := make([][]*netsim.Results, len(cells))
	for i := range out {
		out[i] = make([]*netsim.Results, o.Seeds)
	}
	err := runIndexed(o.workerCount(), len(cells)*o.Seeds, func(i int) error {
		c, s := i/o.Seeds, i%o.Seeds
		res, err := runSeed(cells[c].top, cells[c].opts, o, s)
		if err != nil {
			return err
		}
		out[c][s] = res
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// meanOverSeeds folds one cell's runs exactly like the sequential
// meanGoodput loop: sum in seed order, divide once.
func meanOverSeeds(runs []*netsim.Results, flow topology.Flow) float64 {
	sum := 0.0
	for _, r := range runs {
		sum += r.Goodput(flow)
	}
	return sum / float64(len(runs))
}
