package experiments

import (
	"repro/internal/netsim"
	"repro/internal/topology"
)

// RTSComparisonResult pits the three hidden-terminal strategies against each
// other on the Fig. 9 hidden-heavy configuration: bare DCF, DCF with RTS/CTS
// (the classical mitigation the paper's related work discusses), and CO-MAP
// with packet-size/CW adaptation. This is an extension experiment — the
// paper argues RTS/CTS "is not enabled in many cases due to its overhead
// and inefficiency"; here the trade-off is measured.
//
// The scenario is strongly bimodal across shadowing realizations (a lucky
// static draw can defuse the hidden terminals entirely), so the medians
// across seeds are reported rather than means.
type RTSComparisonResult struct {
	// Median goodputs of the measured C1→AP1 link, in Mbps.
	DCF    float64
	RTSCTS float64
	Comap  float64
}

// RTSComparison runs the three protocols over the 3-hidden-terminal
// topology.
func RTSComparison(o Opts) (*RTSComparisonResult, error) {
	top := topology.HTRoles([]topology.Role{
		topology.RoleHidden, topology.RoleHidden, topology.RoleHidden,
	})
	flow := top.Flows[0]
	res := &RTSComparisonResult{}

	dcf := netsim.NS2Options()
	dcf.Protocol = netsim.ProtocolDCF
	g, err := medianGoodput(top, dcf, o, flow)
	if err != nil {
		return nil, err
	}
	res.DCF = g / 1e6

	rts := netsim.NS2Options()
	rts.Protocol = netsim.ProtocolDCF
	rts.RTSThresholdBytes = 1
	g, err = medianGoodput(top, rts, o, flow)
	if err != nil {
		return nil, err
	}
	res.RTSCTS = g / 1e6

	cm := netsim.NS2Options()
	cm.Protocol = netsim.ProtocolComap
	cm.AdaptTable = adaptTable()
	g, err = medianGoodput(top, cm, o, flow)
	if err != nil {
		return nil, err
	}
	res.Comap = g / 1e6
	return res, nil
}

// OverheadResult quantifies the in-band location exchange (paper §V
// "Overhead of exchanging location information"): the airtime it consumes
// and the goodput cost relative to oracle positions, in the
// exposed-terminal scenario.
type OverheadResult struct {
	// OracleMbps and InBandMbps are the aggregate goodputs with oracle
	// positions vs positions learned over the air.
	OracleMbps float64
	InBandMbps float64
	// Beacons and BeaconBytes count the exchange's frames over the run.
	Beacons     int
	BeaconBytes int64
}

// Overhead measures the cost of in-band location exchange on the ET square.
func Overhead(o Opts) (*OverheadResult, error) {
	top := topology.ETSweep(30)
	res := &OverheadResult{}

	for s := 0; s < o.Seeds; s++ {
		oracle := netsim.TestbedOptions()
		oracle.Protocol = netsim.ProtocolComap
		oracle.Seed = int64(1000*s + 7)
		oracle.Duration = o.Duration
		r, err := netsim.RunScenario(top, oracle)
		if err != nil {
			return nil, err
		}
		res.OracleMbps += r.Total() / 1e6 / float64(o.Seeds)

		inband := oracle
		inband.InBandLocation = true
		n, err := netsim.Build(top, inband)
		if err != nil {
			return nil, err
		}
		r = n.Run()
		res.InBandMbps += r.Total() / 1e6 / float64(o.Seeds)
		for _, st := range n.Stations {
			if st.Locx != nil {
				res.Beacons += st.Locx.BeaconsSent()
				res.BeaconBytes += st.Locx.BytesSent()
			}
		}
	}
	return res, nil
}
