package experiments

import (
	"repro/internal/netsim"
	"repro/internal/stats"
	"repro/internal/topology"
)

// RTSComparisonResult pits the three hidden-terminal strategies against each
// other on the Fig. 9 hidden-heavy configuration: bare DCF, DCF with RTS/CTS
// (the classical mitigation the paper's related work discusses), and CO-MAP
// with packet-size/CW adaptation. This is an extension experiment — the
// paper argues RTS/CTS "is not enabled in many cases due to its overhead
// and inefficiency"; here the trade-off is measured.
//
// The scenario is strongly bimodal across shadowing realizations (a lucky
// static draw can defuse the hidden terminals entirely), so the medians
// across seeds are reported rather than means.
type RTSComparisonResult struct {
	// Median goodputs of the measured C1→AP1 link, in Mbps.
	DCF    float64
	RTSCTS float64
	Comap  float64
}

// RTSComparison runs the three protocols over the 3-hidden-terminal
// topology.
func RTSComparison(o Opts) (*RTSComparisonResult, error) {
	top := topology.HTRoles([]topology.Role{
		topology.RoleHidden, topology.RoleHidden, topology.RoleHidden,
	})
	flow := top.Flows[0]

	dcf := netsim.NS2Options()
	dcf.Protocol = netsim.ProtocolDCF

	rts := netsim.NS2Options()
	rts.Protocol = netsim.ProtocolDCF
	rts.RTSThresholdBytes = 1

	cm := netsim.NS2Options()
	cm.Protocol = netsim.ProtocolComap
	cm.AdaptTable = adaptTable()

	runs, err := runGrid(o, []gridCell{
		{top: top, opts: dcf}, {top: top, opts: rts}, {top: top, opts: cm},
	})
	if err != nil {
		return nil, err
	}
	medians := make([]float64, len(runs))
	for i, cell := range runs {
		samples := make([]float64, 0, o.Seeds)
		for _, r := range cell {
			samples = append(samples, r.Goodput(flow))
		}
		med, err := stats.NewECDF(samples).Quantile(0.5)
		if err != nil {
			return nil, err
		}
		medians[i] = med / 1e6
	}
	return &RTSComparisonResult{DCF: medians[0], RTSCTS: medians[1], Comap: medians[2]}, nil
}

// OverheadResult quantifies the in-band location exchange (paper §V
// "Overhead of exchanging location information"): the airtime it consumes
// and the goodput cost relative to oracle positions, in the
// exposed-terminal scenario.
type OverheadResult struct {
	// OracleMbps and InBandMbps are the aggregate goodputs with oracle
	// positions vs positions learned over the air.
	OracleMbps float64
	InBandMbps float64
	// Beacons and BeaconBytes count the exchange's frames over the run.
	Beacons     int
	BeaconBytes int64
}

// overheadRun is one seed's oracle/in-band run pair.
type overheadRun struct {
	oracleTotal float64
	inbandTotal float64
	beacons     int
	beaconBytes int64
}

// Overhead measures the cost of in-band location exchange on the ET square.
func Overhead(o Opts) (*OverheadResult, error) {
	top := topology.ETSweep(30)

	// One job per seed, each running the oracle and in-band configurations
	// back to back as the sequential loop did.
	slots := make([]overheadRun, o.Seeds)
	err := runIndexed(o.workerCount(), o.Seeds, func(s int) error {
		oracle := netsim.TestbedOptions()
		oracle.Protocol = netsim.ProtocolComap
		oracle.Seed = int64(1000*s + 7)
		oracle.Duration = o.Duration
		r, err := netsim.RunScenario(top, oracle)
		if err != nil {
			return err
		}
		slot := overheadRun{oracleTotal: r.Total()}

		inband := oracle
		inband.InBandLocation = true
		n, err := netsim.Build(top, inband)
		if err != nil {
			return err
		}
		r = n.Run()
		slot.inbandTotal = r.Total()
		for _, st := range n.Stations {
			if st.Locx != nil {
				slot.beacons += st.Locx.BeaconsSent()
				slot.beaconBytes += st.Locx.BytesSent()
			}
		}
		slots[s] = slot
		return nil
	})
	if err != nil {
		return nil, err
	}

	res := &OverheadResult{}
	for _, slot := range slots {
		res.OracleMbps += slot.oracleTotal / 1e6 / float64(o.Seeds)
		res.InBandMbps += slot.inbandTotal / 1e6 / float64(o.Seeds)
		res.Beacons += slot.beacons
		res.BeaconBytes += slot.beaconBytes
	}
	return res, nil
}
