package experiments

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/netsim"
	"repro/internal/stats"
	"repro/internal/topology"
)

// tinyOpts keeps unit-test runtime low; shape assertions use Quick() where
// they need statistical stability.
func tinyOpts() Opts {
	return Opts{Seeds: 1, Duration: 500 * time.Millisecond, Topologies: 2}
}

func TestFig1Shape(t *testing.T) {
	res, err := Fig1(Opts{Seeds: 2, Duration: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.C1Goodput.Points) != len(ETPositions) {
		t.Fatalf("points = %d", len(res.C1Goodput.Points))
	}
	// The exposed-terminal valley: goodput while C2 is inside C1's CS range
	// (x in [20,30]) must be clearly below the goodput when C2 is far
	// (x = 36, concurrent-capable because C1 barely senses it).
	valley := valueAt(res.C1Goodput, 24)
	far := valueAt(res.C1Goodput, 36)
	if valley <= 0 {
		t.Fatal("no goodput in valley")
	}
	if far < 1.2*valley {
		t.Errorf("expected ET valley: goodput at 24 m = %.2f, at 36 m = %.2f", valley, far)
	}
}

func TestFig2Shape(t *testing.T) {
	res, err := Fig2(Opts{Seeds: 2, Duration: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	// Without a hidden terminal the largest payload wins.
	n := res.NoHT.Points
	if n[len(n)-1].Y <= n[0].Y {
		t.Errorf("no-HT goodput should rise with payload: %v .. %v", n[0], n[len(n)-1])
	}
	// With one hidden terminal the link must be visibly degraded.
	h := res.OneHT.Points
	if h[len(h)-1].Y >= n[len(n)-1].Y {
		t.Errorf("HT should reduce goodput at large payloads: %.2f vs %.2f",
			h[len(h)-1].Y, n[len(n)-1].Y)
	}
}

func TestFig7ModelMatchesSimulation(t *testing.T) {
	panels, err := Fig7(Opts{Seeds: 1, Duration: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if len(panels) != 3 {
		t.Fatalf("panels = %d", len(panels))
	}
	// Panel h=0: model and simulation must agree on the W ordering at the
	// largest payload (smaller window wins without hidden terminals) and be
	// within a factor-2 band pointwise.
	p0 := panels[0]
	for wi := range Fig7Windows {
		for i := range p0.Model[wi].Points {
			m, s := p0.Model[wi].Points[i].Y, p0.Sim[wi].Points[i].Y
			if s <= 0 {
				t.Fatalf("zero sim goodput at W=%d payload=%v", Fig7Windows[wi], p0.Model[wi].Points[i].X)
			}
			if ratio := m / s; ratio > 2 || ratio < 0.5 {
				t.Errorf("h=0 W=%d payload=%.0f: model %.2f vs sim %.2f",
					Fig7Windows[wi], p0.Model[wi].Points[i].X, m, s)
			}
		}
	}
	// Hidden terminals must depress both model and simulation goodput.
	last := len(PayloadGrid) - 1
	if panels[2].Sim[0].Points[last].Y >= p0.Sim[0].Points[last].Y {
		t.Errorf("5 HTs should reduce simulated goodput at W=63")
	}
	if panels[2].Model[0].Points[last].Y >= p0.Model[0].Points[last].Y {
		t.Errorf("5 HTs should reduce modelled goodput at W=63")
	}
}

func TestFig8ComapWins(t *testing.T) {
	res, err := Fig8(Opts{Seeds: 3, Duration: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if res.ETRegionGainPct < 10 {
		t.Errorf("mean ET-region gain = %.1f%%, want >= 10%%", res.ETRegionGainPct)
	}
	// At the far end of the sweep CO-MAP must be at least on par.
	dcfFar := valueAt(res.DCF, 36)
	cmFar := valueAt(res.Comap, 36)
	if cmFar < 0.9*dcfFar {
		t.Errorf("CO-MAP at 36 m = %.2f well below DCF %.2f", cmFar, dcfFar)
	}
}

func TestFig9ComapWins(t *testing.T) {
	res, err := Fig9(Opts{Seeds: 3, Duration: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if res.DCF.Mean <= 0 || res.Comap.Mean <= 0 {
		t.Fatal("zero means")
	}
	if res.MeanGainPct < 0 {
		t.Errorf("CO-MAP mean gain negative: %.1f%%", res.MeanGainPct)
	}
	if len(res.DCF.Points) != 10 || len(res.Comap.Points) != 10 {
		t.Errorf("expected 10 topology samples, got %d/%d",
			len(res.DCF.Points), len(res.Comap.Points))
	}
}

func TestFig10ShapeQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("fig10 is slow")
	}
	res, err := Fig10(Opts{Seeds: 1, Duration: time.Second, Topologies: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.DCF.Mean <= 0 {
		t.Fatal("no DCF goodput")
	}
	if res.GainPerfectPct < 0 {
		t.Errorf("perfect-position CO-MAP below DCF: %.1f%%", res.GainPerfectPct)
	}
	// Position error degrades gracefully: CO-MAP(10) stays within a band
	// between DCF and CO-MAP(0), allowing noise.
	if res.ComapErr.Mean < 0.8*res.DCF.Mean {
		t.Errorf("10 m error collapsed goodput: %.2f vs DCF %.2f",
			res.ComapErr.Mean, res.DCF.Mean)
	}
}

func TestTableI(t *testing.T) {
	rows := TableI()
	if len(rows) < 8 {
		t.Fatalf("rows = %d", len(rows))
	}
	var b strings.Builder
	PrintTableI(&b)
	for _, want := range []string{"6 Mbps", "20 dBm", "95%", "-80 dBm", "3.3", "10 dB"} {
		if !strings.Contains(b.String(), want) {
			t.Errorf("Table I output missing %q", want)
		}
	}
}

func TestPrintSeries(t *testing.T) {
	var b strings.Builder
	PrintSeries(&b, "x", Series{Name: "a", Points: []Point{{1, 2}, {3, 4}}},
		Series{Name: "b", Points: []Point{{1, 5}}})
	out := b.String()
	for _, want := range []string{"a", "b", "2.000", "5.000", "-"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// Degenerate: no series.
	var empty strings.Builder
	PrintSeries(&empty, "x")
	if !strings.Contains(empty.String(), "x") {
		t.Error("header missing")
	}
}

func TestPrintCDFs(t *testing.T) {
	var b strings.Builder
	PrintCDFs(&b, "Mbps", CDF{Name: "test", Mean: 1.5,
		Points: []stats.CDFPoint{{X: 1, F: 0.5}, {X: 2, F: 1}}})
	if !strings.Contains(b.String(), "test (mean 1.500 Mbps)") {
		t.Errorf("output: %s", b.String())
	}
}

// valueAt returns the Y of the series point with the given X (0 if absent).
func valueAt(s Series, x float64) float64 {
	for _, p := range s.Points {
		if p.X == x {
			return p.Y
		}
	}
	return 0
}

// TestComapRemoteEquivalentInExperiments extends the remote-equivalence
// oracle to the experiments layer: a grid cell run with ComapRemote (no RPC
// faults) must produce exactly the goodput of the in-process run, and the
// knob must leave DCF cells untouched.
func TestComapRemoteEquivalentInExperiments(t *testing.T) {
	top := topology.ETSweep(30)
	o := tinyOpts()

	for _, proto := range []netsim.Protocol{netsim.ProtocolComap, netsim.ProtocolDCF} {
		base := netsim.TestbedOptions()
		base.Protocol = proto
		plain, err := meanGoodput(top, base, o, top.Flows[0])
		if err != nil {
			t.Fatal(err)
		}
		or := o
		or.ComapRemote = true
		remoted, err := meanGoodput(top, base, or, top.Flows[0])
		if err != nil {
			t.Fatal(err)
		}
		if remoted != plain {
			t.Errorf("%v: ComapRemote perturbed the cell: %.3f vs %.3f bps", proto, remoted, plain)
		}
	}
}

func TestTraceDirWritesTracesWithoutPerturbingResults(t *testing.T) {
	top := topology.ETSweep(30)
	base := netsim.TestbedOptions()
	base.Protocol = netsim.ProtocolComap
	o := tinyOpts()

	plain, err := meanGoodput(top, base, o, top.Flows[0])
	if err != nil {
		t.Fatal(err)
	}

	o.TraceDir = filepath.Join(t.TempDir(), "traces")
	traced, err := meanGoodput(top, base, o, top.Flows[0])
	if err != nil {
		t.Fatal(err)
	}
	if traced != plain {
		t.Errorf("tracing perturbed the run: %.3f vs %.3f bps", traced, plain)
	}

	names, err := filepath.Glob(filepath.Join(o.TraceDir, "*.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != o.Seeds {
		t.Fatalf("trace files = %v, want %d", names, o.Seeds)
	}
	want := filepath.Join(o.TraceDir, "et-sweep-30m-co-map-seed0.jsonl")
	if names[0] != want {
		t.Errorf("trace name = %s, want %s", names[0], want)
	}
	st, err := os.Stat(names[0])
	if err != nil {
		t.Fatal(err)
	}
	if st.Size() == 0 {
		t.Error("empty trace file")
	}
}

func TestOptsPresets(t *testing.T) {
	q, f := Quick(), Full()
	if q.Seeds <= 0 || q.Duration <= 0 || q.Topologies <= 0 {
		t.Errorf("Quick = %+v", q)
	}
	if f.Seeds <= q.Seeds || f.Topologies <= q.Topologies {
		t.Errorf("Full should exceed Quick: %+v vs %+v", f, q)
	}
}
