package experiments

import (
	"math/rand"

	"repro/internal/bianchi"
	"repro/internal/netsim"
	"repro/internal/phy"
	"repro/internal/stats"
	"repro/internal/topology"
)

// adaptTable builds the paper's precomputed (CW, packet size) array for the
// Table I PHY. Fig. 9's hidden terminals are saturated, matching the
// analytical model's assumption, so the full window grid applies.
func adaptTable() *bianchi.AdaptationTable {
	base := bianchi.FromPHY(phy.NS2Table1(), phy.RateOFDM6)
	return bianchi.NewAdaptationTable(base, 5, 8, nil, nil)
}

// cbrAdaptTable caps the contention-window grid at 255 slots for the Fig. 10
// floor: its interferers are CBR-limited rather than saturated, so the
// model's W=1023 response would throttle a flow below its offered load; the
// softer grid is also robust to the hidden-terminal misclassifications that
// position error induces.
func cbrAdaptTable() *bianchi.AdaptationTable {
	base := bianchi.FromPHY(phy.NS2Table1(), phy.RateOFDM6)
	return bianchi.NewAdaptationTable(base, 5, 8, []int{15, 31, 63, 127, 255}, nil)
}

// Fig9Result compares DCF and CO-MAP (with hidden-terminal packet-size/CW
// adaptation) over the paper's ten 3-client role configurations.
type Fig9Result struct {
	DCF   CDF
	Comap CDF
	// MeanGainPct is CO-MAP's mean goodput gain on the measured link; the
	// paper reports 38.5%.
	MeanGainPct float64
}

// Fig9 reproduces the paper's Fig. 9: empirical CDF of the C1→AP1 goodput
// across the ten topologies formed by placing three clients into
// contender/hidden/independent roles.
func Fig9(o Opts) (*Fig9Result, error) {
	table := adaptTable()

	// Grid: per role configuration, one DCF cell then one CO-MAP cell.
	var cells []gridCell
	for _, roles := range topology.Fig9Roles() {
		top := topology.HTRoles(roles)

		dcf := netsim.NS2Options()
		dcf.Protocol = netsim.ProtocolDCF
		cells = append(cells, gridCell{top: top, opts: dcf})

		cm := netsim.NS2Options()
		cm.Protocol = netsim.ProtocolComap
		cm.AdaptTable = table
		cells = append(cells, gridCell{top: top, opts: cm})
	}
	runs, err := runGrid(o, cells)
	if err != nil {
		return nil, err
	}

	var dcfSamples, cmSamples []float64
	for c := 0; c < len(cells); c += 2 {
		dcfSamples = append(dcfSamples, meanOverSeeds(runs[c], cells[c].top.Flows[0])/1e6)
		cmSamples = append(cmSamples, meanOverSeeds(runs[c+1], cells[c+1].top.Flows[0])/1e6)
	}
	dcfCDF := stats.NewECDF(dcfSamples)
	cmCDF := stats.NewECDF(cmSamples)
	return &Fig9Result{
		DCF:         CDF{Name: "Basic DCF", Mean: dcfCDF.Mean(), Points: dcfCDF.Points()},
		Comap:       CDF{Name: "CO-MAP", Mean: cmCDF.Mean(), Points: cmCDF.Points()},
		MeanGainPct: stats.RelativeGain(dcfCDF.Mean(), cmCDF.Mean()) * 100,
	}, nil
}

// Fig10Result compares DCF, CO-MAP with perfect positions and CO-MAP with
// 10 m position error over random large-scale office floors.
type Fig10Result struct {
	DCF      CDF
	Comap    CDF // perfect positions, "CO-MAP (0)"
	ComapErr CDF // 10 m uniform error, "CO-MAP (10)"
	// GainPerfectPct and GainErrorPct are the mean per-link goodput gains
	// over DCF; the paper reports 38.5% and 18.7%.
	GainPerfectPct float64
	GainErrorPct   float64
}

// Fig10PositionError is the localization error range of the degraded
// configuration, in meters.
const Fig10PositionError = 10

// Fig10 reproduces the paper's Fig. 10: empirical CDF of per-link goodput in
// the 3-AP / 9-client network with two-way 3 Mbps CBR traffic, across random
// topologies, for the three protocol configurations.
func Fig10(o Opts) (*Fig10Result, error) {
	table := cbrAdaptTable()

	tops := make([]topology.Topology, o.Topologies)
	for t := range tops {
		tops[t] = topology.LargeScale(rand.New(rand.NewSource(int64(9000 + t))))
	}

	dcf := netsim.NS2Options()
	dcf.Protocol = netsim.ProtocolDCF
	dcf.CBRBitsPerSec = 3e6

	cm := netsim.NS2Options()
	cm.Protocol = netsim.ProtocolComap
	cm.CBRBitsPerSec = 3e6
	cm.AdaptTable = table
	// CBR floor: only throttle for interferers that actually cripple the
	// link (see cbrAdaptTable); the saturated-HT assumption behind the
	// default TPRR classification does not hold here.
	cm.ComapModel.HTImpactPRR = 0.5

	cmErr := cm
	cmErr.PositionErrorMeters = Fig10PositionError

	// Job grid: topology x configuration x seed. Fig. 10 keeps its
	// historical seed formula 1000*s+t (the topology index, not the usual
	// +7 offset), so it does not route through runSeed/runGrid.
	configs := []netsim.Options{dcf, cm, cmErr}
	perTop := len(configs) * o.Seeds
	slots := make([]*netsim.Results, o.Topologies*perTop)
	err := runIndexed(o.workerCount(), len(slots), func(i int) error {
		t, rest := i/perTop, i%perTop
		cfg, s := rest/o.Seeds, rest%o.Seeds
		opts := configs[cfg]
		opts.Seed = int64(1000*s + t)
		opts.Duration = o.Duration
		res, err := netsim.RunScenario(tops[t], opts)
		if err != nil {
			return err
		}
		slots[i] = res
		return nil
	})
	if err != nil {
		return nil, err
	}

	var dcfS, cmS, cmErrS []float64
	for t := 0; t < o.Topologies; t++ {
		for cfg := range configs {
			perFlow := make([]float64, len(tops[t].Flows))
			for s := 0; s < o.Seeds; s++ {
				res := slots[t*perTop+cfg*o.Seeds+s]
				for i, f := range res.Flows {
					perFlow[i] += f.GoodputBps / float64(o.Seeds) / 1e6
				}
			}
			switch cfg {
			case 0:
				dcfS = append(dcfS, perFlow...)
			case 1:
				cmS = append(cmS, perFlow...)
			case 2:
				cmErrS = append(cmErrS, perFlow...)
			}
		}
	}

	dcfCDF := stats.NewECDF(dcfS)
	cmCDF := stats.NewECDF(cmS)
	cmErrCDF := stats.NewECDF(cmErrS)
	return &Fig10Result{
		DCF:            CDF{Name: "Basic DCF", Mean: dcfCDF.Mean(), Points: dcfCDF.Points()},
		Comap:          CDF{Name: "CO-MAP (0)", Mean: cmCDF.Mean(), Points: cmCDF.Points()},
		ComapErr:       CDF{Name: "CO-MAP (10)", Mean: cmErrCDF.Mean(), Points: cmErrCDF.Points()},
		GainPerfectPct: stats.RelativeGain(dcfCDF.Mean(), cmCDF.Mean()) * 100,
		GainErrorPct:   stats.RelativeGain(dcfCDF.Mean(), cmErrCDF.Mean()) * 100,
	}, nil
}
