package experiments

import (
	"math/rand"

	"repro/internal/bianchi"
	"repro/internal/netsim"
	"repro/internal/phy"
	"repro/internal/stats"
	"repro/internal/topology"
)

// adaptTable builds the paper's precomputed (CW, packet size) array for the
// Table I PHY. Fig. 9's hidden terminals are saturated, matching the
// analytical model's assumption, so the full window grid applies.
func adaptTable() *bianchi.AdaptationTable {
	base := bianchi.FromPHY(phy.NS2Table1(), phy.RateOFDM6)
	return bianchi.NewAdaptationTable(base, 5, 8, nil, nil)
}

// cbrAdaptTable caps the contention-window grid at 255 slots for the Fig. 10
// floor: its interferers are CBR-limited rather than saturated, so the
// model's W=1023 response would throttle a flow below its offered load; the
// softer grid is also robust to the hidden-terminal misclassifications that
// position error induces.
func cbrAdaptTable() *bianchi.AdaptationTable {
	base := bianchi.FromPHY(phy.NS2Table1(), phy.RateOFDM6)
	return bianchi.NewAdaptationTable(base, 5, 8, []int{15, 31, 63, 127, 255}, nil)
}

// Fig9Result compares DCF and CO-MAP (with hidden-terminal packet-size/CW
// adaptation) over the paper's ten 3-client role configurations.
type Fig9Result struct {
	DCF   CDF
	Comap CDF
	// MeanGainPct is CO-MAP's mean goodput gain on the measured link; the
	// paper reports 38.5%.
	MeanGainPct float64
}

// Fig9 reproduces the paper's Fig. 9: empirical CDF of the C1→AP1 goodput
// across the ten topologies formed by placing three clients into
// contender/hidden/independent roles.
func Fig9(o Opts) (*Fig9Result, error) {
	table := adaptTable()
	var dcfSamples, cmSamples []float64
	for _, roles := range topology.Fig9Roles() {
		top := topology.HTRoles(roles)

		dcf := netsim.NS2Options()
		dcf.Protocol = netsim.ProtocolDCF
		g, err := meanGoodput(top, dcf, o, top.Flows[0])
		if err != nil {
			return nil, err
		}
		dcfSamples = append(dcfSamples, g/1e6)

		cm := netsim.NS2Options()
		cm.Protocol = netsim.ProtocolComap
		cm.AdaptTable = table
		g, err = meanGoodput(top, cm, o, top.Flows[0])
		if err != nil {
			return nil, err
		}
		cmSamples = append(cmSamples, g/1e6)
	}
	dcfCDF := stats.NewECDF(dcfSamples)
	cmCDF := stats.NewECDF(cmSamples)
	return &Fig9Result{
		DCF:         CDF{Name: "Basic DCF", Mean: dcfCDF.Mean(), Points: dcfCDF.Points()},
		Comap:       CDF{Name: "CO-MAP", Mean: cmCDF.Mean(), Points: cmCDF.Points()},
		MeanGainPct: stats.RelativeGain(dcfCDF.Mean(), cmCDF.Mean()) * 100,
	}, nil
}

// Fig10Result compares DCF, CO-MAP with perfect positions and CO-MAP with
// 10 m position error over random large-scale office floors.
type Fig10Result struct {
	DCF      CDF
	Comap    CDF // perfect positions, "CO-MAP (0)"
	ComapErr CDF // 10 m uniform error, "CO-MAP (10)"
	// GainPerfectPct and GainErrorPct are the mean per-link goodput gains
	// over DCF; the paper reports 38.5% and 18.7%.
	GainPerfectPct float64
	GainErrorPct   float64
}

// Fig10PositionError is the localization error range of the degraded
// configuration, in meters.
const Fig10PositionError = 10

// Fig10 reproduces the paper's Fig. 10: empirical CDF of per-link goodput in
// the 3-AP / 9-client network with two-way 3 Mbps CBR traffic, across random
// topologies, for the three protocol configurations.
func Fig10(o Opts) (*Fig10Result, error) {
	table := cbrAdaptTable()
	var dcfS, cmS, cmErrS []float64

	for t := 0; t < o.Topologies; t++ {
		top := topology.LargeScale(rand.New(rand.NewSource(int64(9000 + t))))

		collect := func(opts netsim.Options) ([]float64, error) {
			perFlow := make([]float64, len(top.Flows))
			for s := 0; s < o.Seeds; s++ {
				opts.Seed = int64(1000*s + t)
				opts.Duration = o.Duration
				res, err := netsim.RunScenario(top, opts)
				if err != nil {
					return nil, err
				}
				for i, f := range res.Flows {
					perFlow[i] += f.GoodputBps / float64(o.Seeds) / 1e6
				}
			}
			return perFlow, nil
		}

		dcf := netsim.NS2Options()
		dcf.Protocol = netsim.ProtocolDCF
		dcf.CBRBitsPerSec = 3e6
		v, err := collect(dcf)
		if err != nil {
			return nil, err
		}
		dcfS = append(dcfS, v...)

		cm := netsim.NS2Options()
		cm.Protocol = netsim.ProtocolComap
		cm.CBRBitsPerSec = 3e6
		cm.AdaptTable = table
		// CBR floor: only throttle for interferers that actually cripple the
		// link (see cbrAdaptTable); the saturated-HT assumption behind the
		// default TPRR classification does not hold here.
		cm.ComapModel.HTImpactPRR = 0.5
		v, err = collect(cm)
		if err != nil {
			return nil, err
		}
		cmS = append(cmS, v...)

		cmErr := cm
		cmErr.PositionErrorMeters = Fig10PositionError
		v, err = collect(cmErr)
		if err != nil {
			return nil, err
		}
		cmErrS = append(cmErrS, v...)
	}

	dcfCDF := stats.NewECDF(dcfS)
	cmCDF := stats.NewECDF(cmS)
	cmErrCDF := stats.NewECDF(cmErrS)
	return &Fig10Result{
		DCF:            CDF{Name: "Basic DCF", Mean: dcfCDF.Mean(), Points: dcfCDF.Points()},
		Comap:          CDF{Name: "CO-MAP (0)", Mean: cmCDF.Mean(), Points: cmCDF.Points()},
		ComapErr:       CDF{Name: "CO-MAP (10)", Mean: cmErrCDF.Mean(), Points: cmErrCDF.Points()},
		GainPerfectPct: stats.RelativeGain(dcfCDF.Mean(), cmCDF.Mean()) * 100,
		GainErrorPct:   stats.RelativeGain(dcfCDF.Mean(), cmErrCDF.Mean()) * 100,
	}, nil
}
