package experiments

import (
	"testing"
	"time"
)

func TestRTSComparison(t *testing.T) {
	res, err := RTSComparison(Opts{Seeds: 2, Duration: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if res.DCF <= 0 || res.RTSCTS <= 0 || res.Comap <= 0 {
		t.Fatalf("zero goodput somewhere: %+v", res)
	}
	// Both mitigations must beat bare DCF under 3 saturated hidden
	// terminals.
	if res.RTSCTS <= res.DCF {
		t.Errorf("RTS/CTS %.3f did not beat DCF %.3f", res.RTSCTS, res.DCF)
	}
	if res.Comap <= res.DCF {
		t.Errorf("CO-MAP %.3f did not beat DCF %.3f", res.Comap, res.DCF)
	}
}

func TestOverhead(t *testing.T) {
	res, err := Overhead(Opts{Seeds: 1, Duration: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if res.Beacons == 0 || res.BeaconBytes == 0 {
		t.Fatal("no beacons counted")
	}
	// The paper's claim: little communication overhead. The exchange should
	// cost only a small fraction of goodput.
	if res.InBandMbps < 0.7*res.OracleMbps {
		t.Errorf("in-band %.2f Mbps far below oracle %.2f Mbps", res.InBandMbps, res.OracleMbps)
	}
	// And its raw airtime must be tiny versus the data traffic.
	dataBytes := res.OracleMbps * 1e6 / 8 * 2 // rough bytes over the run
	if float64(res.BeaconBytes) > 0.02*dataBytes {
		t.Errorf("beacon bytes %d exceed 2%% of data bytes %.0f", res.BeaconBytes, dataBytes)
	}
}
