package experiments

import (
	"repro/internal/netsim"
	"repro/internal/stats"
	"repro/internal/topology"
)

// AblationResult isolates CO-MAP's design choices on the exposed-terminal
// scenario (DESIGN.md's "key modelling decisions"): each row is aggregate
// goodput in Mbps at C2 = 30 m.
type AblationResult struct {
	// DCF is the baseline.
	DCF float64
	// Full is CO-MAP as configured by default (embedded header, persistent
	// concurrency, rate capping).
	Full float64
	// HeaderFrame replaces the embedded 4-byte header with the testbed's
	// separate header frame (method two, §V).
	HeaderFrame float64
	// NoPersistent disables the carrier-sense bypass, leaving only
	// per-header chained joins (the paper's Fig. 6 design alone).
	NoPersistent float64
	// InBandLocation runs the full stack with positions learned over the
	// air instead of the oracle registry.
	InBandLocation float64
}

// Ablation measures each variant, averaged over o.Seeds runs.
func Ablation(o Opts) (*AblationResult, error) {
	top := topology.ETSweep(30)
	run := func(mutate func(*netsim.Options)) (float64, error) {
		var sum stats.Online
		for s := 0; s < o.Seeds; s++ {
			opts := netsim.TestbedOptions()
			opts.Protocol = netsim.ProtocolComap
			opts.Seed = int64(1000*s + 7)
			opts.Duration = o.Duration
			if mutate != nil {
				mutate(&opts)
			}
			res, err := netsim.RunScenario(top, opts)
			if err != nil {
				return 0, err
			}
			sum.Add(res.Total() / 1e6)
		}
		return sum.Mean(), nil
	}

	out := &AblationResult{}
	var err error
	if out.DCF, err = run(func(o *netsim.Options) { o.Protocol = netsim.ProtocolDCF }); err != nil {
		return nil, err
	}
	if out.Full, err = run(nil); err != nil {
		return nil, err
	}
	if out.HeaderFrame, err = run(func(o *netsim.Options) { o.Header = netsim.HeaderFrame }); err != nil {
		return nil, err
	}
	if out.NoPersistent, err = run(func(o *netsim.Options) { o.DisablePersistentConcurrency = true }); err != nil {
		return nil, err
	}
	if out.InBandLocation, err = run(func(o *netsim.Options) { o.InBandLocation = true }); err != nil {
		return nil, err
	}
	return out, nil
}
