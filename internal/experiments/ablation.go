package experiments

import (
	"repro/internal/netsim"
	"repro/internal/stats"
	"repro/internal/topology"
)

// AblationResult isolates CO-MAP's design choices on the exposed-terminal
// scenario (DESIGN.md's "key modelling decisions"): each row is aggregate
// goodput in Mbps at C2 = 30 m.
type AblationResult struct {
	// DCF is the baseline.
	DCF float64
	// Full is CO-MAP as configured by default (embedded header, persistent
	// concurrency, rate capping).
	Full float64
	// HeaderFrame replaces the embedded 4-byte header with the testbed's
	// separate header frame (method two, §V).
	HeaderFrame float64
	// NoPersistent disables the carrier-sense bypass, leaving only
	// per-header chained joins (the paper's Fig. 6 design alone).
	NoPersistent float64
	// InBandLocation runs the full stack with positions learned over the
	// air instead of the oracle registry.
	InBandLocation float64
}

// Ablation measures each variant, averaged over o.Seeds runs.
func Ablation(o Opts) (*AblationResult, error) {
	top := topology.ETSweep(30)
	mutations := []func(*netsim.Options){
		func(o *netsim.Options) { o.Protocol = netsim.ProtocolDCF },
		nil, // full CO-MAP
		func(o *netsim.Options) { o.Header = netsim.HeaderFrame },
		func(o *netsim.Options) { o.DisablePersistentConcurrency = true },
		func(o *netsim.Options) { o.InBandLocation = true },
	}

	// Job grid: variant x seed; each slot stores the run's aggregate Mbps.
	slots := make([]float64, len(mutations)*o.Seeds)
	err := runIndexed(o.workerCount(), len(slots), func(i int) error {
		v, s := i/o.Seeds, i%o.Seeds
		opts := netsim.TestbedOptions()
		opts.Protocol = netsim.ProtocolComap
		opts.Seed = int64(1000*s + 7)
		opts.Duration = o.Duration
		if mutate := mutations[v]; mutate != nil {
			mutate(&opts)
		}
		res, err := netsim.RunScenario(top, opts)
		if err != nil {
			return err
		}
		slots[i] = res.Total() / 1e6
		return nil
	})
	if err != nil {
		return nil, err
	}

	means := make([]float64, len(mutations))
	for v := range mutations {
		var sum stats.Online
		for s := 0; s < o.Seeds; s++ {
			sum.Add(slots[v*o.Seeds+s])
		}
		means[v] = sum.Mean()
	}
	return &AblationResult{
		DCF:            means[0],
		Full:           means[1],
		HeaderFrame:    means[2],
		NoPersistent:   means[3],
		InBandLocation: means[4],
	}, nil
}
