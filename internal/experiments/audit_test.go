package experiments

import (
	"path/filepath"
	"testing"
	"time"

	"repro/internal/audit"
	"repro/internal/netsim"
	"repro/internal/topology"
)

// TestAuditDirWritesLedgersWithoutPerturbingResults mirrors the TraceDir
// contract: auditing a run must not change its results, and the ledger
// filenames must carry the options fingerprint so distinct grid cells never
// collide.
func TestAuditDirWritesLedgersWithoutPerturbingResults(t *testing.T) {
	top := topology.ETSweep(30)
	base := netsim.TestbedOptions()
	base.Protocol = netsim.ProtocolComap
	o := tinyOpts()

	plain, err := meanGoodput(top, base, o, top.Flows[0])
	if err != nil {
		t.Fatal(err)
	}

	o.AuditDir = filepath.Join(t.TempDir(), "ledgers")
	audited, err := meanGoodput(top, base, o, top.Flows[0])
	if err != nil {
		t.Fatal(err)
	}
	if audited != plain {
		t.Errorf("auditing perturbed the run: %.3f vs %.3f bps", audited, plain)
	}

	names, err := filepath.Glob(filepath.Join(o.AuditDir, "audit-*.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != o.Seeds {
		t.Fatalf("ledger files = %v, want %d", names, o.Seeds)
	}
	f, err := audit.ReadFile(names[0])
	if err != nil {
		t.Fatalf("ledger unreadable: %v", err)
	}
	if f.End == nil || f.End.Events == 0 {
		t.Fatalf("ledger has no end record: %+v", f.End)
	}
	// The filename embeds the manifest's own fingerprint.
	base.Seed, base.Duration = 7, o.Duration // runSeed's formula for seed 0
	m := netsim.ManifestFor("", top, base)
	want := filepath.Join(o.AuditDir, "audit-et-sweep-30m-co-map-o"+m.OptionsFP+"-seed0.jsonl")
	if names[0] != want {
		t.Errorf("ledger name = %s, want %s", names[0], want)
	}
	if f.Manifest.OptionsFP != m.OptionsFP {
		t.Errorf("manifest fingerprint %s != expected %s", f.Manifest.OptionsFP, m.OptionsFP)
	}
}

// TestAuditLedgersEqualAcrossWorkers is the satellite's parallel-equivalence
// gate: the ledgers written by a sequential run and a workers=N run of the
// same grid must be semantically identical, slice hashes and all — the
// per-run engines are independent, so worker scheduling must never leak into
// causal state. It also pins that AuditDir, unlike TraceDir, keeps the
// worker pool parallel.
func TestAuditLedgersEqualAcrossWorkers(t *testing.T) {
	if got := (Opts{Workers: 8, AuditDir: "x"}).workerCount(); got != 8 {
		t.Fatalf("AuditDir must not force sequential execution, got %d workers", got)
	}

	top := topology.ETSweep(30)
	base := netsim.TestbedOptions()
	base.Protocol = netsim.ProtocolComap
	o1 := Opts{Seeds: 2, Duration: 300 * time.Millisecond, Workers: 1}
	o4 := o1
	o4.Workers = 4

	o1.AuditDir = filepath.Join(t.TempDir(), "w1")
	o4.AuditDir = filepath.Join(t.TempDir(), "w4")

	// Two cells sharing topology/protocol/seed but differing in options, so
	// the fingerprint component of the filename is load-bearing.
	cellA := gridCell{top: top, opts: base}
	cellB := gridCell{top: top, opts: base}
	cellB.opts.PayloadBytes = 512

	g1, err := runGrid(o1, []gridCell{cellA, cellB})
	if err != nil {
		t.Fatal(err)
	}
	g4, err := runGrid(o4, []gridCell{cellA, cellB})
	if err != nil {
		t.Fatal(err)
	}
	for c := range g1 {
		for s := range g1[c] {
			if g1[c][s].Goodput(top.Flows[0]) != g4[c][s].Goodput(top.Flows[0]) {
				t.Fatalf("cell %d seed %d: results differ across worker counts", c, s)
			}
		}
	}

	names1, err := filepath.Glob(filepath.Join(o1.AuditDir, "audit-*.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if want := 2 * o1.Seeds; len(names1) != want {
		t.Fatalf("sequential run wrote %d ledgers, want %d: %v", len(names1), want, names1)
	}
	for _, p1 := range names1 {
		p4 := filepath.Join(o4.AuditDir, filepath.Base(p1))
		a, err := audit.ReadFile(p1)
		if err != nil {
			t.Fatalf("%s: %v", p1, err)
		}
		b, err := audit.ReadFile(p4)
		if err != nil {
			t.Fatalf("%s: %v", p4, err)
		}
		if d := audit.Compare(a, b); d != nil {
			t.Errorf("%s diverges across worker counts: %s", filepath.Base(p1), d)
		}
	}
}
