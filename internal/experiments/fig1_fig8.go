package experiments

import (
	"repro/internal/netsim"
	"repro/internal/stats"
	"repro/internal/topology"
)

// ETPositions is the Fig. 1/8 sweep grid: C2's distance from AP1 in meters.
var ETPositions = []float64{12, 14, 16, 18, 20, 22, 24, 26, 28, 30, 32, 34, 36}

// Fig1Result holds the exposed-terminal motivation experiment: the goodput
// of the C1→AP1 link under basic DCF as C2 moves across the floor.
type Fig1Result struct {
	// C1Goodput is the measured link's goodput (Mbps) vs C2 position.
	C1Goodput Series
	// C2Goodput is the interfering link's goodput for context.
	C2Goodput Series
}

// Fig1 reproduces the paper's Fig. 1 (exposed-terminal testbed, basic DCF).
// Expected shape: a goodput valley while C2 sits inside C1's carrier-sense
// range but outside the harmful-interference zone, recovering once C2 leaves
// the CS range (~34 m).
func Fig1(o Opts) (*Fig1Result, error) {
	res := &Fig1Result{
		C1Goodput: Series{Name: "DCF C1->AP1 (Mbps)"},
		C2Goodput: Series{Name: "DCF C2->AP2 (Mbps)"},
	}
	for _, x := range ETPositions {
		top := topology.ETSweep(x)
		opts := netsim.TestbedOptions()
		opts.Protocol = netsim.ProtocolDCF
		g1, err := meanGoodput(top, opts, o, top.Flows[0])
		if err != nil {
			return nil, err
		}
		g2, err := meanGoodput(top, opts, o, top.Flows[1])
		if err != nil {
			return nil, err
		}
		res.C1Goodput.Points = append(res.C1Goodput.Points, Point{X: x, Y: g1 / 1e6})
		res.C2Goodput.Points = append(res.C2Goodput.Points, Point{X: x, Y: g2 / 1e6})
	}
	return res, nil
}

// Fig8Result compares basic DCF and CO-MAP across the exposed-terminal
// sweep.
type Fig8Result struct {
	DCF   Series // C1→AP1 goodput (Mbps) under basic DCF
	Comap Series // C1→AP1 goodput (Mbps) under CO-MAP
	// ETRegionGainPct is the mean aggregate goodput gain of CO-MAP over DCF
	// across positions where CO-MAP transmitted concurrently. The paper
	// reports 77.5% for its testbed.
	ETRegionGainPct float64
}

// Fig8 reproduces the paper's Fig. 8: CO-MAP's goodput improvement for the
// exposed-terminal scenario, with Minstrel rate adaptation active.
func Fig8(o Opts) (*Fig8Result, error) {
	res := &Fig8Result{
		DCF:   Series{Name: "DCF C1->AP1 (Mbps)"},
		Comap: Series{Name: "CO-MAP C1->AP1 (Mbps)"},
	}
	var gains []float64
	for _, x := range ETPositions {
		top := topology.ETSweep(x)

		dcf := netsim.TestbedOptions()
		dcf.Protocol = netsim.ProtocolDCF
		var dcfC1, dcfTotal float64
		for s := 0; s < o.Seeds; s++ {
			dcf.Seed = int64(1000*s + 7)
			dcf.Duration = o.Duration
			r, err := netsim.RunScenario(top, dcf)
			if err != nil {
				return nil, err
			}
			dcfC1 += r.Goodput(top.Flows[0]) / float64(o.Seeds)
			dcfTotal += r.Total() / float64(o.Seeds)
		}

		cm := netsim.TestbedOptions()
		cm.Protocol = netsim.ProtocolComap
		var cmC1, cmTotal float64
		concurrent := false
		for s := 0; s < o.Seeds; s++ {
			cm.Seed = int64(1000*s + 7)
			cm.Duration = o.Duration
			n, err := netsim.Build(top, cm)
			if err != nil {
				return nil, err
			}
			r := n.Run()
			cmC1 += r.Goodput(top.Flows[0]) / float64(o.Seeds)
			cmTotal += r.Total() / float64(o.Seeds)
			for _, st := range n.Stations {
				if st.MAC.Stats().Get("et.concurrent_tx") > 0 {
					concurrent = true
				}
			}
		}

		res.DCF.Points = append(res.DCF.Points, Point{X: x, Y: dcfC1 / 1e6})
		res.Comap.Points = append(res.Comap.Points, Point{X: x, Y: cmC1 / 1e6})
		if concurrent && dcfTotal > 0 {
			gains = append(gains, (cmTotal/dcfTotal-1)*100)
		}
	}
	res.ETRegionGainPct = stats.Mean(gains)
	return res, nil
}
