package experiments

import (
	"repro/internal/netsim"
	"repro/internal/stats"
	"repro/internal/topology"
)

// ETPositions is the Fig. 1/8 sweep grid: C2's distance from AP1 in meters.
var ETPositions = []float64{12, 14, 16, 18, 20, 22, 24, 26, 28, 30, 32, 34, 36}

// Fig1Result holds the exposed-terminal motivation experiment: the goodput
// of the C1→AP1 link under basic DCF as C2 moves across the floor.
type Fig1Result struct {
	// C1Goodput is the measured link's goodput (Mbps) vs C2 position.
	C1Goodput Series
	// C2Goodput is the interfering link's goodput for context.
	C2Goodput Series
}

// Fig1 reproduces the paper's Fig. 1 (exposed-terminal testbed, basic DCF).
// Expected shape: a goodput valley while C2 sits inside C1's carrier-sense
// range but outside the harmful-interference zone, recovering once C2 leaves
// the CS range (~34 m). Both flows are read from one run set per position —
// the runs are deterministic, so this matches running the sweep once per
// flow.
func Fig1(o Opts) (*Fig1Result, error) {
	cells := make([]gridCell, len(ETPositions))
	for i, x := range ETPositions {
		opts := netsim.TestbedOptions()
		opts.Protocol = netsim.ProtocolDCF
		cells[i] = gridCell{top: topology.ETSweep(x), opts: opts}
	}
	runs, err := runGrid(o, cells)
	if err != nil {
		return nil, err
	}

	res := &Fig1Result{
		C1Goodput: Series{Name: "DCF C1->AP1 (Mbps)"},
		C2Goodput: Series{Name: "DCF C2->AP2 (Mbps)"},
	}
	for i, x := range ETPositions {
		top := cells[i].top
		g1 := meanOverSeeds(runs[i], top.Flows[0])
		g2 := meanOverSeeds(runs[i], top.Flows[1])
		res.C1Goodput.Points = append(res.C1Goodput.Points, Point{X: x, Y: g1 / 1e6})
		res.C2Goodput.Points = append(res.C2Goodput.Points, Point{X: x, Y: g2 / 1e6})
	}
	return res, nil
}

// Fig8Result compares basic DCF and CO-MAP across the exposed-terminal
// sweep.
type Fig8Result struct {
	DCF   Series // C1→AP1 goodput (Mbps) under basic DCF
	Comap Series // C1→AP1 goodput (Mbps) under CO-MAP
	// ETRegionGainPct is the mean aggregate goodput gain of CO-MAP over DCF
	// across positions where CO-MAP transmitted concurrently. The paper
	// reports 77.5% for its testbed.
	ETRegionGainPct float64
}

// fig8Run is one (position, protocol, seed) run's contribution: the measured
// link's goodput, the aggregate goodput and whether any station transmitted
// concurrently (CO-MAP runs only).
type fig8Run struct {
	c1         float64
	total      float64
	concurrent bool
}

// Fig8 reproduces the paper's Fig. 8: CO-MAP's goodput improvement for the
// exposed-terminal scenario, with Minstrel rate adaptation active.
func Fig8(o Opts) (*Fig8Result, error) {
	tops := make([]topology.Topology, len(ETPositions))
	for i, x := range ETPositions {
		tops[i] = topology.ETSweep(x)
	}

	// Job grid: position x {DCF, CO-MAP} x seed, folded below in the same
	// order the sequential loops accumulated.
	perPos := 2 * o.Seeds
	slots := make([]fig8Run, len(ETPositions)*perPos)
	err := runIndexed(o.workerCount(), len(slots), func(i int) error {
		pos, rest := i/perPos, i%perPos
		comap, s := rest/o.Seeds == 1, rest%o.Seeds

		opts := netsim.TestbedOptions()
		opts.Seed = int64(1000*s + 7)
		opts.Duration = o.Duration
		if !comap {
			opts.Protocol = netsim.ProtocolDCF
			r, err := netsim.RunScenario(tops[pos], opts)
			if err != nil {
				return err
			}
			slots[i] = fig8Run{c1: r.Goodput(tops[pos].Flows[0]), total: r.Total()}
			return nil
		}
		opts.Protocol = netsim.ProtocolComap
		n, err := netsim.Build(tops[pos], opts)
		if err != nil {
			return err
		}
		r := n.Run()
		slot := fig8Run{c1: r.Goodput(tops[pos].Flows[0]), total: r.Total()}
		for _, st := range n.Stations {
			if st.MAC.Stats().Get("et.concurrent_tx") > 0 {
				slot.concurrent = true
			}
		}
		slots[i] = slot
		return nil
	})
	if err != nil {
		return nil, err
	}

	res := &Fig8Result{
		DCF:   Series{Name: "DCF C1->AP1 (Mbps)"},
		Comap: Series{Name: "CO-MAP C1->AP1 (Mbps)"},
	}
	var gains []float64
	for pos, x := range ETPositions {
		var dcfC1, dcfTotal, cmC1, cmTotal float64
		concurrent := false
		for s := 0; s < o.Seeds; s++ {
			d := slots[pos*perPos+s]
			dcfC1 += d.c1 / float64(o.Seeds)
			dcfTotal += d.total / float64(o.Seeds)
		}
		for s := 0; s < o.Seeds; s++ {
			c := slots[pos*perPos+o.Seeds+s]
			cmC1 += c.c1 / float64(o.Seeds)
			cmTotal += c.total / float64(o.Seeds)
			concurrent = concurrent || c.concurrent
		}
		res.DCF.Points = append(res.DCF.Points, Point{X: x, Y: dcfC1 / 1e6})
		res.Comap.Points = append(res.Comap.Points, Point{X: x, Y: cmC1 / 1e6})
		if concurrent && dcfTotal > 0 {
			gains = append(gains, (cmTotal/dcfTotal-1)*100)
		}
	}
	res.ETRegionGainPct = stats.Mean(gains)
	return res, nil
}
