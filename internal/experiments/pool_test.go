package experiments

import (
	"errors"
	"reflect"
	"sync"
	"testing"
	"time"
)

func TestRunIndexedCoversAllIndices(t *testing.T) {
	for _, workers := range []int{1, 4, 16} {
		var mu sync.Mutex
		seen := make(map[int]int)
		err := runIndexed(workers, 100, func(i int) error {
			mu.Lock()
			seen[i]++
			mu.Unlock()
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(seen) != 100 {
			t.Fatalf("workers=%d: ran %d of 100 jobs", workers, len(seen))
		}
		for i, n := range seen {
			if n != 1 {
				t.Fatalf("workers=%d: job %d ran %d times", workers, i, n)
			}
		}
	}
}

func TestRunIndexedReturnsLowestIndexError(t *testing.T) {
	errA := errors.New("a")
	errB := errors.New("b")
	// Sequential: lowest index fails first and stops the loop.
	err := runIndexed(1, 10, func(i int) error {
		switch i {
		case 2:
			return errA
		case 5:
			t.Fatal("sequential run continued past the error")
		}
		return nil
	})
	if err != errA {
		t.Fatalf("err = %v, want %v", err, errA)
	}
	// Parallel: a failing job's error surfaces. (With several failures the
	// lowest recorded index wins, but which jobs still run after the first
	// failure is scheduling-dependent, so only one job fails here.)
	err = runIndexed(4, 8, func(i int) error {
		if i == 3 {
			return errB
		}
		return nil
	})
	if err != errB {
		t.Fatalf("err = %v, want %v", err, errB)
	}
}

func TestWorkerCount(t *testing.T) {
	if got := (Opts{Workers: 3}).workerCount(); got != 3 {
		t.Errorf("Workers=3: %d", got)
	}
	if got := (Opts{}).workerCount(); got < 1 {
		t.Errorf("Workers=0 resolved to %d", got)
	}
	if got := (Opts{Workers: 8, TraceDir: "x"}).workerCount(); got != 1 {
		t.Errorf("TraceDir should force 1 worker, got %d", got)
	}
}

// TestWorkersDoNotChangeResults is the determinism contract of the parallel
// replication runner: every figure must produce identical output (down to
// float bit patterns, via reflect.DeepEqual) for any worker count. Fig8
// exercises the custom job grid with the station-scan fold, Fig10 the
// three-configuration grid with its historical 1000*s+t seed formula, and
// the RTS comparison the shared runGrid/median path.
func TestWorkersDoNotChangeResults(t *testing.T) {
	o1 := Opts{Seeds: 2, Duration: 100 * time.Millisecond, Topologies: 2, Workers: 1}
	o8 := o1
	o8.Workers = 8

	t.Run("fig8", func(t *testing.T) {
		a, err := Fig8(o1)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Fig8(o8)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Errorf("workers changed Fig8 output:\n1: %+v\n8: %+v", a, b)
		}
	})

	t.Run("fig10", func(t *testing.T) {
		if testing.Short() {
			t.Skip("fig10 is slow")
		}
		a, err := Fig10(o1)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Fig10(o8)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Errorf("workers changed Fig10 output:\n1: %+v\n8: %+v", a, b)
		}
	})

	t.Run("rts", func(t *testing.T) {
		a, err := RTSComparison(o1)
		if err != nil {
			t.Fatal(err)
		}
		b, err := RTSComparison(o8)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Errorf("workers changed RTSComparison output:\n1: %+v\n8: %+v", a, b)
		}
	})
}
