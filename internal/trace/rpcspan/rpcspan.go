// Package rpcspan stitches the control-plane RPC event stream (package
// trace's rpc.* kinds) into per-request spans: one record per control-plane
// request, from the client's first issue through retries, backoff and
// breaker refusals to its served/shed/lost completion, joined with the
// server-side rpc.srv events that carry the same request ID.
//
// The stitcher is a pure fold over the event stream. Client and server
// events join by (req, attempt) — not by time — so a span stitches
// correctly whether both streams share one trace file (an in-sim remote
// run, where the client emitter and the service emitter write to the same
// sink) or live in separate files (a comap-mapd deployment, where the
// server stream is written by -trace and merged here).
//
// Every client attempt lands in exactly one span and carries an explicit
// attribution: it either joined its server-side counterpart, or it names
// why no counterpart exists — the transport refused inline (server down),
// the request was lost or partitioned in flight (deadline fired with no
// server event), or the trace simply has no server stream to join against.
package rpcspan

import (
	"sort"
	"strings"

	"repro/internal/trace"
)

// Attempt outcomes, mirroring the client's rpc.done/rpc.timeout reasons.
const (
	// OutcomeOK: the attempt completed with a response.
	OutcomeOK = "ok"
	// OutcomeUnavailable: the transport answered ErrUnavailable inline
	// (service crashed/down); no server event exists for the attempt.
	OutcomeUnavailable = "unavailable"
	// OutcomeDeadline: the client deadline fired before any response.
	OutcomeDeadline = "deadline"
	// OutcomeError: the attempt failed with some other transport error.
	OutcomeError = "error"
	// OutcomePending: the trace ended with the attempt still in flight.
	OutcomePending = "pending"
)

// Attempt attributions: how the attempt relates to the server-side stream.
const (
	// AttrJoined: the server observed the attempt (rpc.srv events joined).
	AttrJoined = "joined"
	// AttrLost: the deadline fired and the server never saw the attempt —
	// the request (or its response) was lost or partitioned in flight.
	AttrLost = "lost_or_partitioned"
	// AttrServerDown: the transport refused inline; no server event is
	// expected (the service was crashed at issue time).
	AttrServerDown = "server_down"
	// AttrError: the attempt failed client-side with a non-timeout error.
	AttrError = "error"
	// AttrUnobserved: the trace carries no server stream at all, so joining
	// is impossible (client-only trace; supply the -trace file from
	// comap-mapd to upgrade these).
	AttrUnobserved = "unobserved"
	// AttrPending: the attempt had not completed when the trace ended.
	AttrPending = "pending"
)

// Span outcomes.
const (
	// SpanServed: some attempt completed with a response.
	SpanServed = "served"
	// SpanShed: the server admitted the request to its shed path.
	SpanShed = "shed"
	// SpanLost: every attempt that ran timed out without a server join.
	SpanLost = "lost"
	// SpanFailed: the request failed without being served or lost-in-flight
	// (inline unavailability, transport errors, retry/budget exhaustion).
	SpanFailed = "failed"
	// SpanPending: the trace ended with the request still in flight.
	SpanPending = "pending"
)

// ServerEvent is one rpc.srv record: what the service did, stamped with the
// request context it did it under.
type ServerEvent struct {
	AtUs    int64  `json:"at_us"`
	Reason  string `json:"reason"`
	Op      string `json:"op,omitempty"`
	Attempt int    `json:"attempt,omitempty"`
	Count   int    `json:"count,omitempty"`
	Epoch   uint64 `json:"epoch,omitempty"`
}

// Attempt is one wire attempt within a span.
type Attempt struct {
	// Seq is the 1-based attempt number (matches the X-Comap-Attempt header
	// and the rpc.call event's attempt field).
	Seq     int   `json:"seq"`
	StartUs int64 `json:"start_us"`
	// EndUs is the completion time; -1 while pending.
	EndUs int64 `json:"end_us"`
	// DurUs is the client-observed latency (0 while pending).
	DurUs int64 `json:"dur_us,omitempty"`
	// Outcome is one of the Outcome* constants.
	Outcome string `json:"outcome"`
	// Attribution is one of the Attr* constants.
	Attribution string `json:"attribution"`
	// BackoffUs is the retry backoff scheduled after this attempt failed
	// (0 when no retry followed).
	BackoffUs int64 `json:"backoff_us,omitempty"`
	// Server holds the joined rpc.srv events for this attempt.
	Server []ServerEvent `json:"server,omitempty"`
}

// Drop is one rpc.drop record: the client gave up (or refused to start) a
// wire attempt, with the machinery that refused it.
type Drop struct {
	AtUs int64 `json:"at_us"`
	// Reason is breaker_open, budget_exhausted, retries_exhausted or busy.
	Reason string `json:"reason"`
	Op     string `json:"op,omitempty"`
}

// Span is one control-plane request's full client-side lifecycle, joined
// with its server-side observations.
type Span struct {
	Req uint64 `json:"req"`
	// Op is the request operation (verdict, ingest, invalidate_node,
	// invalidate_all).
	Op      string `json:"op"`
	StartUs int64  `json:"start_us"`
	// EndUs is the last attempt completion or drop; -1 while in flight.
	EndUs    int64     `json:"end_us"`
	Attempts []Attempt `json:"attempts"`
	// Drops are the client's give-up records for this request (a retry the
	// breaker or token budget refused, or the retry limit).
	Drops []Drop `json:"drops,omitempty"`
	// Outcome is one of the Span* constants.
	Outcome string `json:"outcome"`
	// Decision and Provenance join the MAC-level co.grant/co.deny/
	// co.fallback event that this request decided: Decision is grant, deny
	// or fallback; Provenance is the rung that served it (cached,
	// validated, stale, coarse, unhealthy_fix, control_plane_down). Empty
	// for ingest/invalidate spans, which carry no MAC decision.
	Decision   string `json:"decision,omitempty"`
	Provenance string `json:"provenance,omitempty"`

	// synthetic marks a span reconstructed purely from server events (no
	// client stream in the trace).
	synthetic bool
}

// Shed reports whether the server shed this request's admission.
func (s *Span) Shed() bool {
	for _, a := range s.Attempts {
		for _, se := range a.Server {
			if se.Reason == "shed" {
				return true
			}
		}
	}
	return false
}

// BreakerWindow is one circuit-breaker open window: from the transition
// into open until the transition back to closed (through half-open).
type BreakerWindow struct {
	OpenUs int64 `json:"open_us"`
	// CloseUs is -1 while still open at trace end.
	CloseUs int64 `json:"close_us"`
	// Reopens counts half-open probes that failed back to open within the
	// window.
	Reopens int `json:"reopens,omitempty"`
	// Drops counts rpc.drop breaker_open refusals inside the window.
	Drops int `json:"drops,omitempty"`
}

// LadderTransition is one co.ladder event with its causal request: Req
// names the request whose degraded service forced the transition (0 when
// the transition was not tied to a specific request).
type LadderTransition struct {
	AtUs     int64  `json:"at_us"`
	From, To string `json:"-"`
	Change   string `json:"change"`
	Req      uint64 `json:"req,omitempty"`
}

// Result is the stitched view of one trace (or several merged traces).
type Result struct {
	// Spans holds every request span, ordered by first issue.
	Spans []*Span `json:"spans"`
	// Unattached holds client drops that carry no request ID (the breaker
	// refused before an attempt was ever issued).
	Unattached []Drop `json:"unattached,omitempty"`
	// Service holds request-less rpc.srv lifecycle events: crashes, WAL
	// replays, epoch bumps and operator-initiated invalidations.
	Service []ServerEvent `json:"service,omitempty"`
	// Breakers holds the circuit-breaker open windows, in order.
	Breakers []BreakerWindow `json:"breakers,omitempty"`
	// Ladder holds the degradation-ladder transitions with their causal
	// request IDs.
	Ladder []LadderTransition `json:"ladder,omitempty"`
	// HasServer reports whether the trace carried any rpc.srv events; when
	// false, unjoined attempts are attributed AttrUnobserved, not AttrLost.
	HasServer bool `json:"has_server"`

	byReq map[uint64]*Span
}

// Span returns the span for a request ID, nil when absent.
func (r *Result) Span(req uint64) *Span { return r.byReq[req] }

// Outcomes tallies span outcomes.
func (r *Result) Outcomes() map[string]int {
	out := make(map[string]int)
	for _, s := range r.Spans {
		out[s.Outcome]++
	}
	return out
}

// builder folds events into the result.
type builder struct {
	res         Result
	server      []trace.Event // buffered rpc.srv with Req != 0
	breakerOpen int           // index+1 into res.Breakers of the open window, 0 if none
}

// FromEvents stitches one decoded event stream. Call with the concatenation
// of client and server traces when they were written separately — joining
// is by request ID, so relative file order does not matter.
func FromEvents(events []trace.Event) *Result {
	b := &builder{}
	b.res.byReq = make(map[uint64]*Span)
	for _, e := range events {
		b.add(e)
	}
	b.finish()
	return &b.res
}

func (b *builder) add(e trace.Event) {
	switch e.Kind {
	case trace.KindRPCCall:
		s := b.span(e.Req, e.Op, e.AtMicros)
		s.Attempts = append(s.Attempts, Attempt{
			Seq:     e.Attempt,
			StartUs: e.AtMicros,
			EndUs:   -1,
			Outcome: OutcomePending,
		})
	case trace.KindRPCDone:
		if a := b.openAttempt(e.Req); a != nil {
			a.EndUs = e.AtMicros
			a.DurUs = e.DurUs
			if e.Reason == "ok" {
				a.Outcome = OutcomeOK
			} else {
				a.Outcome = e.Reason
			}
		}
	case trace.KindRPCTimeout:
		if a := b.openAttempt(e.Req); a != nil {
			a.EndUs = e.AtMicros
			a.DurUs = e.DurUs
			a.Outcome = OutcomeDeadline
		}
	case trace.KindRPCRetry:
		// The retry event names the upcoming attempt; the backoff belongs
		// to the attempt that just failed.
		if s := b.res.byReq[e.Req]; s != nil && len(s.Attempts) > 0 {
			s.Attempts[len(s.Attempts)-1].BackoffUs = e.DurUs
		}
	case trace.KindRPCDrop:
		d := Drop{AtUs: e.AtMicros, Reason: e.Reason, Op: e.Op}
		if e.Req == 0 {
			b.res.Unattached = append(b.res.Unattached, d)
		} else if s := b.res.byReq[e.Req]; s != nil {
			s.Drops = append(s.Drops, d)
		} else {
			b.res.Unattached = append(b.res.Unattached, d)
		}
		if b.breakerOpen > 0 && e.Reason == "breaker_open" {
			b.res.Breakers[b.breakerOpen-1].Drops++
		}
	case trace.KindRPCBreaker:
		b.breaker(e)
	case trace.KindRPCServer:
		b.res.HasServer = true
		if e.Req == 0 {
			b.res.Service = append(b.res.Service, serverEvent(e))
			return
		}
		b.server = append(b.server, e)
	case trace.KindCoLadder:
		from, to, _ := strings.Cut(e.Reason, "->")
		b.res.Ladder = append(b.res.Ladder, LadderTransition{
			AtUs: e.AtMicros, From: from, To: to, Change: e.Reason, Req: e.Req,
		})
	case trace.KindCoGrant, trace.KindCoDeny, trace.KindCoFallback:
		if e.Req == 0 {
			return
		}
		if s := b.res.byReq[e.Req]; s != nil {
			switch e.Kind {
			case trace.KindCoGrant:
				s.Decision = "grant"
			case trace.KindCoDeny:
				s.Decision = "deny"
			default:
				s.Decision = "fallback"
			}
			s.Provenance = e.Reason
		}
	}
}

func (b *builder) span(req uint64, op string, atUs int64) *Span {
	if s := b.res.byReq[req]; s != nil {
		if s.Op == "" {
			s.Op = op
		}
		return s
	}
	s := &Span{Req: req, Op: op, StartUs: atUs, EndUs: -1}
	b.res.byReq[req] = s
	b.res.Spans = append(b.res.Spans, s)
	return s
}

// openAttempt returns the request's most recent still-pending attempt.
func (b *builder) openAttempt(req uint64) *Attempt {
	s := b.res.byReq[req]
	if s == nil || len(s.Attempts) == 0 {
		return nil
	}
	a := &s.Attempts[len(s.Attempts)-1]
	if a.EndUs >= 0 {
		return nil
	}
	return a
}

// breaker folds an rpc.breaker transition ("closed->open", ...) into the
// open-window list.
func (b *builder) breaker(e trace.Event) {
	_, to, ok := strings.Cut(e.Reason, "->")
	if !ok {
		return
	}
	switch to {
	case "open":
		if b.breakerOpen > 0 {
			// half-open probe failed back to open: same outage window.
			b.res.Breakers[b.breakerOpen-1].Reopens++
			return
		}
		b.res.Breakers = append(b.res.Breakers, BreakerWindow{OpenUs: e.AtMicros, CloseUs: -1})
		b.breakerOpen = len(b.res.Breakers)
	case "closed":
		if b.breakerOpen > 0 {
			b.res.Breakers[b.breakerOpen-1].CloseUs = e.AtMicros
			b.breakerOpen = 0
		}
	}
}

// finish joins the buffered server events into their attempts, stamps
// attempt attributions and resolves span outcomes and end times.
func (b *builder) finish() {
	// (req, attempt) -> server events, in trace order.
	joined := make(map[uint64]map[int][]ServerEvent, len(b.server))
	for _, e := range b.server {
		m := joined[e.Req]
		if m == nil {
			m = make(map[int][]ServerEvent)
			joined[e.Req] = m
		}
		m[e.Attempt] = append(m[e.Attempt], serverEvent(e))
	}
	// Server-only requests (a mapd -trace file analysed without the client
	// stream) still get a span: one synthetic attempt per observed attempt
	// number, so nothing the server admitted disappears from the report.
	for _, e := range b.server {
		s := b.res.byReq[e.Req]
		if s == nil {
			s = b.span(e.Req, e.Op, e.AtMicros)
			s.synthetic = true
		}
		if !s.synthetic {
			continue
		}
		seen := false
		for _, a := range s.Attempts {
			if a.Seq == e.Attempt {
				seen = true
				break
			}
		}
		if !seen {
			s.Attempts = append(s.Attempts, Attempt{
				Seq: e.Attempt, StartUs: e.AtMicros, EndUs: e.AtMicros,
				Outcome: OutcomeOK,
			})
		}
	}
	for _, s := range b.res.Spans {
		for i := range s.Attempts {
			a := &s.Attempts[i]
			a.Server = joined[s.Req][a.Seq]
			a.Attribution = attribution(a, b.res.HasServer)
		}
		s.Outcome, s.EndUs = outcome(s)
	}
	sort.SliceStable(b.res.Spans, func(i, j int) bool {
		return b.res.Spans[i].StartUs < b.res.Spans[j].StartUs
	})
}

func attribution(a *Attempt, hasServer bool) string {
	if len(a.Server) > 0 {
		return AttrJoined
	}
	switch a.Outcome {
	case OutcomePending:
		return AttrPending
	case OutcomeUnavailable:
		return AttrServerDown
	case OutcomeError:
		return AttrError
	}
	// ok or deadline with no server join: without a server stream there is
	// nothing to join against; with one, the request (or its response)
	// never reached the service — lost or partitioned in flight. An OK
	// completion can only lack a join on a client-only trace.
	if !hasServer {
		return AttrUnobserved
	}
	return AttrLost
}

// outcome resolves a span's outcome and end time from its attempts and
// drops.
func outcome(s *Span) (string, int64) {
	end := int64(-1)
	for _, a := range s.Attempts {
		if a.EndUs > end {
			end = a.EndUs
		}
	}
	for _, d := range s.Drops {
		if d.AtUs > end {
			end = d.AtUs
		}
	}
	if n := len(s.Attempts); n > 0 && s.Attempts[n-1].EndUs < 0 {
		return SpanPending, -1
	}
	for _, a := range s.Attempts {
		if a.Outcome == OutcomeOK {
			return SpanServed, end
		}
	}
	if s.Shed() {
		return SpanShed, end
	}
	// Mixed failures prefer the loss attribution: any attempt that vanished
	// in flight makes the span's fate partition-shaped, whatever the other
	// attempts saw.
	for _, a := range s.Attempts {
		if a.Attribution == AttrLost || a.Attribution == AttrUnobserved {
			return SpanLost, end
		}
	}
	return SpanFailed, end
}

func serverEvent(e trace.Event) ServerEvent {
	return ServerEvent{
		AtUs:    e.AtMicros,
		Reason:  e.Reason,
		Op:      e.Op,
		Attempt: e.Attempt,
		Count:   e.Count,
		Epoch:   e.Epoch,
	}
}
