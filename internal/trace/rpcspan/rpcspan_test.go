package rpcspan

import (
	"testing"

	"repro/internal/trace"
)

func TestServedSpanJoinsServerAndDecision(t *testing.T) {
	events := []trace.Event{
		{Kind: trace.KindRPCCall, AtMicros: 100, Req: 1, Attempt: 1, Op: "verdict"},
		{Kind: trace.KindRPCServer, AtMicros: 101, Req: 1, Attempt: 1, Op: "verdict", Reason: "miss", Epoch: 1},
		{Kind: trace.KindRPCDone, AtMicros: 102, Req: 1, Attempt: 1, Reason: "ok", DurUs: 2},
		{Kind: trace.KindCoGrant, AtMicros: 102, Req: 1, Reason: "validated"},
	}
	res := FromEvents(events)
	if len(res.Spans) != 1 {
		t.Fatalf("spans = %d, want 1", len(res.Spans))
	}
	s := res.Spans[0]
	if s.Outcome != SpanServed {
		t.Errorf("outcome = %q, want served", s.Outcome)
	}
	if len(s.Attempts) != 1 {
		t.Fatalf("attempts = %d, want 1", len(s.Attempts))
	}
	a := s.Attempts[0]
	if a.Attribution != AttrJoined || len(a.Server) != 1 || a.Server[0].Reason != "miss" {
		t.Errorf("attempt not joined to its server event: %+v", a)
	}
	if a.DurUs != 2 || a.Outcome != OutcomeOK {
		t.Errorf("attempt outcome/latency wrong: %+v", a)
	}
	if s.Decision != "grant" || s.Provenance != "validated" {
		t.Errorf("decision join wrong: %q/%q", s.Decision, s.Provenance)
	}
	if !res.HasServer {
		t.Error("HasServer false with an rpc.srv event present")
	}
}

func TestLostAttemptsAttributedAndRetriesStitched(t *testing.T) {
	// Two attempts of one request both vanish in flight (deadline, no
	// server event), then the client gives up; an unrelated served request
	// proves the server stream is live.
	events := []trace.Event{
		{Kind: trace.KindRPCCall, AtMicros: 0, Req: 5, Attempt: 1, Op: "verdict"},
		{Kind: trace.KindRPCTimeout, AtMicros: 20_000, Req: 5, Attempt: 1, DurUs: 20_000},
		{Kind: trace.KindRPCRetry, AtMicros: 20_000, Req: 5, Attempt: 2, DurUs: 3_000},
		{Kind: trace.KindRPCCall, AtMicros: 23_000, Req: 5, Attempt: 2, Op: "verdict"},
		{Kind: trace.KindRPCTimeout, AtMicros: 43_000, Req: 5, Attempt: 2, DurUs: 20_000},
		{Kind: trace.KindRPCDrop, AtMicros: 43_000, Req: 5, Reason: "retries_exhausted", Op: "verdict"},

		{Kind: trace.KindRPCCall, AtMicros: 50_000, Req: 6, Attempt: 1, Op: "verdict"},
		{Kind: trace.KindRPCServer, AtMicros: 50_001, Req: 6, Attempt: 1, Op: "verdict", Reason: "hit"},
		{Kind: trace.KindRPCDone, AtMicros: 50_002, Req: 6, Attempt: 1, Reason: "ok", DurUs: 2},
	}
	res := FromEvents(events)
	if len(res.Spans) != 2 {
		t.Fatalf("spans = %d, want 2", len(res.Spans))
	}
	s := res.Span(5)
	if s == nil || len(s.Attempts) != 2 {
		t.Fatalf("req 5 span missing or wrong attempts: %+v", s)
	}
	for _, a := range s.Attempts {
		if a.Attribution != AttrLost {
			t.Errorf("attempt %d attribution = %q, want lost_or_partitioned", a.Seq, a.Attribution)
		}
	}
	if s.Attempts[0].BackoffUs != 3_000 {
		t.Errorf("backoff on failed attempt = %d, want 3000", s.Attempts[0].BackoffUs)
	}
	if s.Outcome != SpanLost {
		t.Errorf("outcome = %q, want lost", s.Outcome)
	}
	if len(s.Drops) != 1 || s.Drops[0].Reason != "retries_exhausted" {
		t.Errorf("drops = %+v, want one retries_exhausted", s.Drops)
	}
	if got := res.Span(6); got == nil || got.Outcome != SpanServed {
		t.Errorf("req 6 = %+v, want served", got)
	}
}

func TestInlineUnavailableIsServerDown(t *testing.T) {
	events := []trace.Event{
		{Kind: trace.KindRPCCall, AtMicros: 0, Req: 9, Attempt: 1, Op: "ingest"},
		{Kind: trace.KindRPCDone, AtMicros: 1, Req: 9, Attempt: 1, Reason: "unavailable", DurUs: 1},
		// Another request's server event makes the stream joinable.
		{Kind: trace.KindRPCServer, AtMicros: 5, Req: 10, Attempt: 1, Op: "ingest", Reason: "admit"},
	}
	res := FromEvents(events)
	s := res.Span(9)
	if s == nil {
		t.Fatal("req 9 span missing")
	}
	if got := s.Attempts[0].Attribution; got != AttrServerDown {
		t.Errorf("attribution = %q, want server_down", got)
	}
	if s.Outcome != SpanFailed {
		t.Errorf("outcome = %q, want failed", s.Outcome)
	}
}

func TestClientOnlyTraceIsUnobserved(t *testing.T) {
	events := []trace.Event{
		{Kind: trace.KindRPCCall, AtMicros: 0, Req: 1, Attempt: 1, Op: "verdict"},
		{Kind: trace.KindRPCTimeout, AtMicros: 20_000, Req: 1, Attempt: 1, DurUs: 20_000},
	}
	res := FromEvents(events)
	if res.HasServer {
		t.Fatal("HasServer true without rpc.srv events")
	}
	if got := res.Spans[0].Attempts[0].Attribution; got != AttrUnobserved {
		t.Errorf("attribution = %q, want unobserved on a client-only trace", got)
	}
}

func TestBreakerWindowsAndUnattachedDrops(t *testing.T) {
	events := []trace.Event{
		{Kind: trace.KindRPCBreaker, AtMicros: 100, Reason: "closed->open"},
		// Refusals with no request ID land unattached and count into the
		// open window.
		{Kind: trace.KindRPCDrop, AtMicros: 110, Reason: "breaker_open", Op: "verdict"},
		{Kind: trace.KindRPCDrop, AtMicros: 120, Reason: "breaker_open", Op: "ingest"},
		{Kind: trace.KindRPCBreaker, AtMicros: 200, Reason: "open->half-open"},
		{Kind: trace.KindRPCBreaker, AtMicros: 210, Reason: "half-open->open"},
		{Kind: trace.KindRPCBreaker, AtMicros: 300, Reason: "open->half-open"},
		{Kind: trace.KindRPCBreaker, AtMicros: 310, Reason: "half-open->closed"},
	}
	res := FromEvents(events)
	if len(res.Breakers) != 1 {
		t.Fatalf("breaker windows = %d, want 1 (reopen folds into the same outage)", len(res.Breakers))
	}
	w := res.Breakers[0]
	if w.OpenUs != 100 || w.CloseUs != 310 {
		t.Errorf("window [%d, %d], want [100, 310]", w.OpenUs, w.CloseUs)
	}
	if w.Reopens != 1 {
		t.Errorf("reopens = %d, want 1", w.Reopens)
	}
	if w.Drops != 2 {
		t.Errorf("window drops = %d, want 2", w.Drops)
	}
	if len(res.Unattached) != 2 {
		t.Errorf("unattached drops = %d, want 2", len(res.Unattached))
	}
}

func TestLadderTransitionsCarryCausalRequest(t *testing.T) {
	events := []trace.Event{
		{Kind: trace.KindRPCCall, AtMicros: 0, Req: 3, Attempt: 1, Op: "verdict"},
		{Kind: trace.KindCoLadder, AtMicros: 1, Reason: "fresh->stale", Req: 3},
		{Kind: trace.KindRPCTimeout, AtMicros: 20_000, Req: 3, Attempt: 1, DurUs: 20_000},
		{Kind: trace.KindCoLadder, AtMicros: 30_000, Reason: "stale->fresh"},
	}
	res := FromEvents(events)
	if len(res.Ladder) != 2 {
		t.Fatalf("ladder transitions = %d, want 2", len(res.Ladder))
	}
	l := res.Ladder[0]
	if l.From != "fresh" || l.To != "stale" || l.Req != 3 {
		t.Errorf("transition = %+v, want fresh->stale caused by req 3", l)
	}
	if res.Span(l.Req) == nil {
		t.Error("causal request does not resolve to a span")
	}
	if res.Ladder[1].Req != 0 {
		t.Errorf("recovery transition req = %d, want 0 (no causal request)", res.Ladder[1].Req)
	}
}

func TestServerLifecycleAndSheds(t *testing.T) {
	events := []trace.Event{
		// Request-less lifecycle events.
		{Kind: trace.KindRPCServer, AtMicros: 10, Reason: "crash"},
		{Kind: trace.KindRPCServer, AtMicros: 50, Reason: "wal_replay", Count: 120},
		{Kind: trace.KindRPCServer, AtMicros: 51, Reason: "epoch_bump", Epoch: 2},
		// A shed ingest: admitted to the shed path, client saw an error.
		{Kind: trace.KindRPCCall, AtMicros: 100, Req: 7, Attempt: 1, Op: "ingest", Count: 16},
		{Kind: trace.KindRPCServer, AtMicros: 101, Req: 7, Attempt: 1, Op: "ingest", Reason: "shed", Count: 16},
		{Kind: trace.KindRPCDone, AtMicros: 102, Req: 7, Attempt: 1, Reason: "error", DurUs: 2},
	}
	res := FromEvents(events)
	if len(res.Service) != 3 {
		t.Fatalf("service lifecycle events = %d, want 3", len(res.Service))
	}
	s := res.Span(7)
	if s == nil {
		t.Fatal("shed span missing")
	}
	if !s.Shed() || s.Outcome != SpanShed {
		t.Errorf("outcome = %q shed=%v, want shed span", s.Outcome, s.Shed())
	}
}

func TestServerOnlyTraceSynthesizesSpans(t *testing.T) {
	events := []trace.Event{
		{Kind: trace.KindRPCServer, AtMicros: 10, Req: 1, Attempt: 1, Op: "verdict", Reason: "miss"},
		{Kind: trace.KindRPCServer, AtMicros: 20, Req: 2, Attempt: 1, Op: "ingest", Reason: "admit", Count: 8},
	}
	res := FromEvents(events)
	if len(res.Spans) != 2 {
		t.Fatalf("spans = %d, want 2 synthesized from server events", len(res.Spans))
	}
	for _, s := range res.Spans {
		if s.Outcome != SpanServed {
			t.Errorf("req %d outcome = %q, want served", s.Req, s.Outcome)
		}
		if len(s.Attempts) != 1 || s.Attempts[0].Attribution != AttrJoined {
			t.Errorf("req %d synthetic attempt not joined: %+v", s.Req, s.Attempts)
		}
	}
}

func TestPendingAttemptAtTraceEnd(t *testing.T) {
	events := []trace.Event{
		{Kind: trace.KindRPCCall, AtMicros: 0, Req: 4, Attempt: 1, Op: "verdict"},
	}
	res := FromEvents(events)
	s := res.Span(4)
	if s.Outcome != SpanPending || s.EndUs != -1 {
		t.Errorf("span = %+v, want pending with open end", s)
	}
	if got := s.Attempts[0].Attribution; got != AttrPending {
		t.Errorf("attribution = %q, want pending", got)
	}
}
