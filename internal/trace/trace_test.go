package trace

import (
	"bufio"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"repro/internal/frame"
	"repro/internal/geom"
	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/topology"
)

func runTracedScenario(t *testing.T, sink Sink, energy bool) {
	t.Helper()
	top := topology.ETSweep(30)
	opts := netsim.TestbedOptions()
	opts.Protocol = netsim.ProtocolDCF
	opts.Seed = 1
	opts.Duration = 200 * time.Millisecond
	n, err := netsim.Build(top, opts)
	if err != nil {
		t.Fatal(err)
	}
	if got := Attach(n.Eng, n.Medium, sink, energy); got != len(top.Nodes) {
		t.Fatalf("Attach wrapped %d nodes", got)
	}
	n.Run()
}

func TestBufferCollectsEvents(t *testing.T) {
	var buf Buffer
	runTracedScenario(t, &buf, false)
	if len(buf.Events) == 0 {
		t.Fatal("no events recorded")
	}
	var rx, tx int
	for _, e := range buf.Events {
		switch e.Kind {
		case "rx":
			rx++
		case "txdone":
			tx++
		case "energy":
			t.Fatal("energy event recorded while disabled")
		}
		if e.AtMicros < 0 || e.AtMicros > 200_000 {
			t.Fatalf("event outside run window: %+v", e)
		}
	}
	if rx == 0 || tx == 0 {
		t.Errorf("rx=%d tx=%d", rx, tx)
	}
}

func TestTracingDoesNotPerturbSimulation(t *testing.T) {
	// The tracer must be a pure observer: goodput with and without it is
	// bit-identical.
	run := func(traced bool) float64 {
		top := topology.ETSweep(30)
		opts := netsim.TestbedOptions()
		opts.Protocol = netsim.ProtocolComap
		opts.Seed = 9
		opts.Duration = 500 * time.Millisecond
		n, err := netsim.Build(top, opts)
		if err != nil {
			t.Fatal(err)
		}
		if traced {
			Attach(n.Eng, n.Medium, &Buffer{}, true)
		}
		return n.Run().Total()
	}
	if a, b := run(false), run(true); a != b {
		t.Errorf("tracing changed the outcome: %v vs %v", a, b)
	}
}

func TestWriterEmitsJSONLines(t *testing.T) {
	var sb strings.Builder
	w := NewWriter(&sb)
	runTracedScenario(t, w, false)
	if w.Err() != nil {
		t.Fatal(w.Err())
	}
	if w.Count() == 0 {
		t.Fatal("nothing written")
	}
	lines := 0
	sc := bufio.NewScanner(strings.NewReader(sb.String()))
	for sc.Scan() {
		var e Event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("bad JSON line %q: %v", sc.Text(), err)
		}
		lines++
	}
	if lines != w.Count() {
		t.Errorf("lines=%d count=%d", lines, w.Count())
	}
}

func TestEnergyEventsOptIn(t *testing.T) {
	var buf Buffer
	runTracedScenario(t, &buf, true)
	energy := 0
	for _, e := range buf.Events {
		if e.Kind == "energy" {
			energy++
		}
	}
	if energy == 0 {
		t.Error("energy tracing enabled but no events recorded")
	}
}

func TestEventString(t *testing.T) {
	eng := sim.New(1)
	_ = eng
	events := []Event{
		{Kind: "rx", AtMicros: 10, Node: 1, FrameKind: "DATA", Src: 2, Dst: 1, Seq: 3, OK: true, RSSIDBm: -70},
		{Kind: "txdone", AtMicros: 20, Node: 2, FrameKind: "ACK", Src: 2, Dst: 1},
		{Kind: "energy", AtMicros: 30, Node: 1, RSSIDBm: -81},
	}
	for _, e := range events {
		if e.String() == "" {
			t.Errorf("empty String for %+v", e)
		}
	}
	if !strings.Contains(events[0].String(), "RX DATA") {
		t.Errorf("rx string = %q", events[0].String())
	}
}

var _ = geom.Pt
var _ = frame.Broadcast
