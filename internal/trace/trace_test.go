package trace_test

import (
	"bufio"
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"repro/internal/netsim"
	"repro/internal/topology"
	"repro/internal/trace"
)

func runTracedScenario(t *testing.T, sink trace.Sink, energy bool) {
	t.Helper()
	top := topology.ETSweep(30)
	opts := netsim.TestbedOptions()
	opts.Protocol = netsim.ProtocolDCF
	opts.Seed = 1
	opts.Duration = 200 * time.Millisecond
	n, err := netsim.Build(top, opts)
	if err != nil {
		t.Fatal(err)
	}
	if got := trace.Attach(n.Eng, n.Medium, sink, energy); got != len(top.Nodes) {
		t.Fatalf("Attach wrapped %d nodes", got)
	}
	n.Run()
}

func TestBufferCollectsEvents(t *testing.T) {
	var buf trace.Buffer
	runTracedScenario(t, &buf, false)
	if len(buf.Events) == 0 {
		t.Fatal("no events recorded")
	}
	var rx, tx int
	for _, e := range buf.Events {
		switch e.Kind {
		case "rx":
			rx++
		case "txdone":
			tx++
		case "energy":
			t.Fatal("energy event recorded while disabled")
		}
		if e.AtMicros < 0 || e.AtMicros > 200_000 {
			t.Fatalf("event outside run window: %+v", e)
		}
	}
	if rx == 0 || tx == 0 {
		t.Errorf("rx=%d tx=%d", rx, tx)
	}
}

func TestTracingDoesNotPerturbSimulation(t *testing.T) {
	// The tracer must be a pure observer: goodput with and without it is
	// bit-identical.
	run := func(traced bool) float64 {
		top := topology.ETSweep(30)
		opts := netsim.TestbedOptions()
		opts.Protocol = netsim.ProtocolComap
		opts.Seed = 9
		opts.Duration = 500 * time.Millisecond
		n, err := netsim.Build(top, opts)
		if err != nil {
			t.Fatal(err)
		}
		if traced {
			trace.Attach(n.Eng, n.Medium, &trace.Buffer{}, true)
		}
		return n.Run().Total()
	}
	if a, b := run(false), run(true); a != b {
		t.Errorf("tracing changed the outcome: %v vs %v", a, b)
	}
}

func TestFullInstrumentationDoesNotPerturbSimulation(t *testing.T) {
	// The complete event stream — PHY tracers, channel txstart hook, MAC and
	// CO-MAP decision emitters wired through netsim.Options.Trace — must
	// leave the run bit-identical: same seed, same full netsim.Report, not
	// just the same goodput total. Wall-clock self-profiling is the one
	// legitimately non-deterministic block, so it is zeroed before comparing.
	run := func(sink trace.Sink) []byte {
		top := topology.ETSweep(30)
		opts := netsim.TestbedOptions()
		opts.Protocol = netsim.ProtocolComap
		opts.Seed = 9
		opts.Duration = 500 * time.Millisecond
		opts.Trace = sink
		opts.TraceEnergy = sink != nil
		n, err := netsim.Build(top, opts)
		if err != nil {
			t.Fatal(err)
		}
		res := n.Run()
		rep := n.Report(res)
		rep.Engine.WallSec = 0
		rep.Engine.EventsPerSec = 0
		b, err := json.Marshal(rep)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	if a, b := run(nil), run(&trace.Buffer{}); !bytes.Equal(a, b) {
		t.Errorf("instrumentation changed the report:\nuntraced: %s\ntraced:   %s", a, b)
	}
}

func TestDecisionEventsRecorded(t *testing.T) {
	var buf trace.Buffer
	top := topology.ETSweep(30)
	opts := netsim.TestbedOptions()
	opts.Protocol = netsim.ProtocolComap
	opts.Seed = 2
	opts.Duration = 300 * time.Millisecond
	opts.Trace = &buf
	n, err := netsim.Build(top, opts)
	if err != nil {
		t.Fatal(err)
	}
	n.Run()
	kinds := map[string]int{}
	for _, e := range buf.Events {
		kinds[e.Kind]++
	}
	for _, want := range []string{
		trace.KindEnqueue, trace.KindBackoffStart, trace.KindTxAttempt,
		trace.KindTxStart, trace.KindAck,
	} {
		if kinds[want] == 0 {
			t.Errorf("no %q events in CO-MAP run (kinds: %v)", want, kinds)
		}
	}
	if kinds[trace.KindCoGrant]+kinds[trace.KindCoDeny] == 0 {
		t.Errorf("no concurrency verdict events in CO-MAP run (kinds: %v)", kinds)
	}
}

func TestWriterEmitsJSONLines(t *testing.T) {
	var sb strings.Builder
	w := trace.NewWriter(&sb)
	runTracedScenario(t, w, false)
	if w.Err() != nil {
		t.Fatal(w.Err())
	}
	if w.Count() == 0 {
		t.Fatal("nothing written")
	}
	lines := 0
	sc := bufio.NewScanner(strings.NewReader(sb.String()))
	for sc.Scan() {
		var e trace.Event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("bad JSON line %q: %v", sc.Text(), err)
		}
		lines++
	}
	if lines != w.Count() {
		t.Errorf("lines=%d count=%d", lines, w.Count())
	}
}

func TestEnergyEventsOptIn(t *testing.T) {
	var buf trace.Buffer
	runTracedScenario(t, &buf, true)
	energy := 0
	for _, e := range buf.Events {
		if e.Kind == "energy" {
			energy++
		}
	}
	if energy == 0 {
		t.Error("energy tracing enabled but no events recorded")
	}
}

func TestEventString(t *testing.T) {
	events := []trace.Event{
		{Kind: "rx", AtMicros: 10, Node: 1, FrameKind: "DATA", Src: 2, Dst: 1,
			Seq: trace.SeqNum(3), OK: trace.Bool(true), RSSIDBm: trace.Float(-70)},
		{Kind: "txdone", AtMicros: 20, Node: 2, FrameKind: "ACK", Src: 2, Dst: 1},
		{Kind: "energy", AtMicros: 30, Node: 1, RSSIDBm: trace.Float(-81)},
		{Kind: "txstart", AtMicros: 40, Node: 2, FrameKind: "DATA", Src: 2, Dst: 1,
			Rate: "1M", DurUs: 8300},
		{Kind: "mac.drop", AtMicros: 50, Node: 2, FrameKind: "DATA", Src: 2, Dst: 1,
			Reason: "retry_limit"},
		{Kind: "co.deny", AtMicros: 60, Node: 3, Src: 1, Dst: 2, OurDst: 4,
			Reason: "validated"},
	}
	for _, e := range events {
		if e.String() == "" {
			t.Errorf("empty String for %+v", e)
		}
	}
	if !strings.Contains(events[0].String(), "RX DATA") {
		t.Errorf("rx string = %q", events[0].String())
	}
	if !strings.Contains(events[4].String(), "retry_limit") {
		t.Errorf("drop string = %q", events[4].String())
	}
}

func TestEventJSONRoundTrip(t *testing.T) {
	// Seq 0, OK=false and RSSI 0 must all survive encode→decode explicitly.
	e := trace.Event{
		Kind: "rx", AtMicros: 1, Node: 2, FrameKind: "DATA", Src: 3, Dst: 2,
		Seq: trace.SeqNum(0), OK: trace.Bool(false), RSSIDBm: trace.Float(0),
	}
	b, err := json.Marshal(e)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"seq":0`, `"ok":false`, `"rssi_dbm":0`} {
		if !strings.Contains(string(b), want) {
			t.Errorf("encoded event missing %s: %s", want, b)
		}
	}
	var got trace.Event
	if err := json.Unmarshal(b, &got); err != nil {
		t.Fatal(err)
	}
	if !got.HasSeq() || got.SeqNo() != 0 {
		t.Errorf("seq 0 lost: %+v", got)
	}
	if got.Decoded() {
		t.Errorf("ok=false read back as decoded: %+v", got)
	}
	if rssi, ok := got.RSSI(); !ok || rssi != 0 {
		t.Errorf("rssi 0 lost: %v %v", rssi, ok)
	}
}

func TestEventBackwardCompatDecoding(t *testing.T) {
	// Traces written before the explicit encoding omitted "ok" on failed
	// decodes and "seq" on seq-0 frames; the accessors must read those the
	// same way the old analyzer did.
	var e trace.Event
	if err := json.Unmarshal([]byte(
		`{"at_us":5,"node":1,"kind":"rx","frame":"DATA","src":2,"dst":1}`,
	), &e); err != nil {
		t.Fatal(err)
	}
	if e.Decoded() {
		t.Error("absent ok decoded as success")
	}
	if e.HasSeq() || e.SeqNo() != 0 {
		t.Errorf("absent seq misread: %+v", e)
	}
	if _, ok := e.RSSI(); ok {
		t.Error("absent rssi misread as present")
	}
}

func TestNilEmitterIsNoOp(t *testing.T) {
	var em *trace.Emitter
	if em.Enabled() {
		t.Error("nil emitter reports enabled")
	}
	em.Emit(trace.Event{Kind: "mac.tx"}) // must not panic
	if got := trace.NewEmitter(nil, 1, nil); got != nil {
		t.Errorf("NewEmitter(nil sink) = %v, want nil", got)
	}
}
