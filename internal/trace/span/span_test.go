package span_test

import (
	"testing"
	"time"

	"repro/internal/frame"
	"repro/internal/netsim"
	"repro/internal/topology"
	"repro/internal/trace"
	"repro/internal/trace/span"
)

func dataEvent(kind string, at int64, node, src, dst frame.NodeID, seq uint16) trace.Event {
	return trace.Event{
		AtMicros: at, Node: node, Kind: kind,
		FrameKind: frame.Data.String(), Src: src, Dst: dst,
		Seq: trace.SeqNum(seq), Payload: 1000,
	}
}

func TestBuilderFoldsOneLifecycle(t *testing.T) {
	b := span.NewBuilder()

	enq := dataEvent(trace.KindEnqueue, 100, 1, 1, 2, 0)
	enq.Queue = 1
	b.Add(enq)

	bo := dataEvent(trace.KindBackoffStart, 150, 1, 1, 2, 0)
	bo.CW = 32
	bo.Slots = 5
	b.Add(bo)

	b.Add(dataEvent(trace.KindBackoffFreeze, 200, 1, 1, 2, 0))

	tx := dataEvent(trace.KindTxAttempt, 400, 1, 1, 2, 0)
	tx.Rate = "1M"
	b.Add(tx)

	start := dataEvent(trace.KindTxStart, 400, 1, 1, 2, 0)
	start.Rate = "1M"
	start.DurUs = 8300
	b.Add(start)

	rx := dataEvent(trace.KindRx, 8700, 2, 1, 2, 0)
	rx.OK = trace.Bool(true)
	rx.RSSIDBm = trace.Float(-60)
	b.Add(rx)

	ack := dataEvent(trace.KindAck, 9000, 1, 1, 2, 0)
	ack.Reason = "ack"
	b.Add(ack)

	spans := b.Spans()
	if len(spans) != 1 {
		t.Fatalf("got %d spans, want 1", len(spans))
	}
	s := spans[0]
	if s.Outcome != span.OutcomeAcked {
		t.Errorf("outcome = %q", s.Outcome)
	}
	if s.Chain != 0 || s.Seq != 0 || s.Src != 1 || s.Dst != 2 {
		t.Errorf("identity wrong: %+v", s)
	}
	if got := s.QueuedUs(); got != 50 {
		t.Errorf("QueuedUs = %d, want 50", got)
	}
	if got := s.ContendUs(); got != 250 {
		t.Errorf("ContendUs = %d, want 250", got)
	}
	if got := s.InFlightUs(); got != 8600 {
		t.Errorf("InFlightUs = %d, want 8600", got)
	}
	if got := s.TotalUs(); got != 8900 {
		t.Errorf("TotalUs = %d, want 8900", got)
	}
	if got := s.AirUs(); got != 8300 {
		t.Errorf("AirUs = %d, want 8300", got)
	}
	if s.Freezes != 1 || !s.Delivered() || s.RxOK != 1 || s.DeliveredUs != 8700 {
		t.Errorf("counters wrong: %+v", s)
	}
	if len(s.Attempts) != 1 || s.Attempts[0].AirUs != 8300 || s.Attempts[0].Rate != "1M" {
		t.Errorf("attempts wrong: %+v", s.Attempts)
	}
}

func TestBuilderChainsSeqReuse(t *testing.T) {
	b := span.NewBuilder()
	for i := 0; i < 3; i++ {
		at := int64(i) * 10_000
		b.Add(dataEvent(trace.KindEnqueue, at, 1, 1, 2, 7))
		b.Add(dataEvent(trace.KindTxAttempt, at+100, 1, 1, 2, 7))
		drop := dataEvent(trace.KindDrop, at+500, 1, 1, 2, 7)
		drop.Reason = "no_retransmit"
		b.Add(drop)
	}
	spans := b.Spans()
	if len(spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(spans))
	}
	for i, s := range spans {
		if s.Chain != i {
			t.Errorf("span %d chain = %d", i, s.Chain)
		}
		if s.Outcome != span.OutcomeDropped || s.Reason != "no_retransmit" {
			t.Errorf("span %d outcome = %s/%s", i, s.Outcome, s.Reason)
		}
	}
}

func TestBuilderQueueFullRejection(t *testing.T) {
	b := span.NewBuilder()
	drop := dataEvent(trace.KindDrop, 42, 1, 1, 2, 9)
	drop.Reason = "queue_full"
	b.Add(drop)
	spans := b.Spans()
	if len(spans) != 1 {
		t.Fatalf("got %d spans, want 1", len(spans))
	}
	s := spans[0]
	if s.Outcome != span.OutcomeDropped || s.Reason != "queue_full" {
		t.Errorf("outcome = %s/%s", s.Outcome, s.Reason)
	}
	if s.TotalUs() != 0 {
		t.Errorf("TotalUs = %d, want 0", s.TotalUs())
	}
}

func TestBuilderRetryAccounting(t *testing.T) {
	b := span.NewBuilder()
	b.Add(dataEvent(trace.KindEnqueue, 0, 1, 1, 2, 3))
	for attempt := 0; attempt < 3; attempt++ {
		at := int64(attempt)*10_000 + 100
		tx := dataEvent(trace.KindTxAttempt, at, 1, 1, 2, 3)
		tx.Retries = attempt
		if attempt > 0 {
			tx.Retry = true
		}
		b.Add(tx)
		start := dataEvent(trace.KindTxStart, at, 1, 1, 2, 3)
		start.DurUs = 8000
		b.Add(start)
		if attempt < 2 {
			to := dataEvent(trace.KindTimeout, at+9000, 1, 1, 2, 3)
			to.Reason = "ack"
			to.Retries = attempt
			b.Add(to)
		}
	}
	ack := dataEvent(trace.KindAck, 29_000, 1, 1, 2, 3)
	ack.Reason = "ack"
	ack.Retries = 2
	b.Add(ack)

	spans := b.Spans()
	if len(spans) != 1 {
		t.Fatalf("got %d spans, want 1", len(spans))
	}
	s := spans[0]
	if s.Outcome != span.OutcomeAcked || s.Retries != 2 || s.Timeouts != 2 {
		t.Errorf("outcome=%s retries=%d timeouts=%d", s.Outcome, s.Retries, s.Timeouts)
	}
	if len(s.Attempts) != 3 {
		t.Fatalf("attempts = %d, want 3", len(s.Attempts))
	}
	if got := s.AirUs(); got != 24_000 {
		t.Errorf("AirUs = %d, want 24000", got)
	}
}

func TestBuilderPendingAtEnd(t *testing.T) {
	b := span.NewBuilder()
	b.Add(dataEvent(trace.KindEnqueue, 0, 1, 1, 2, 1))
	b.Add(dataEvent(trace.KindTxAttempt, 100, 1, 1, 2, 1))
	spans := b.Spans()
	if len(spans) != 1 || spans[0].Outcome != span.OutcomePending {
		t.Fatalf("spans = %+v, want one pending", spans)
	}
	if spans[0].TotalUs() != -1 {
		t.Errorf("TotalUs = %d, want -1 for pending", spans[0].TotalUs())
	}
}

func TestBuilderIgnoresForeignObservations(t *testing.T) {
	b := span.NewBuilder()
	b.Add(dataEvent(trace.KindEnqueue, 0, 1, 1, 2, 1))
	// Node 3 overhears the frame: must not count as a delivery.
	rx := dataEvent(trace.KindRx, 500, 3, 1, 2, 1)
	rx.OK = trace.Bool(true)
	b.Add(rx)
	// A non-data frame with the same identity must not disturb the span.
	hdr := dataEvent(trace.KindAck, 600, 1, 1, 2, 1)
	hdr.FrameKind = "BEACON"
	b.Add(hdr)
	spans := b.Spans()
	if len(spans) != 1 {
		t.Fatalf("got %d spans", len(spans))
	}
	if spans[0].RxOK != 0 || spans[0].Outcome != span.OutcomePending {
		t.Errorf("foreign events leaked into span: %+v", spans[0])
	}
}

func TestSpansFromLiveRun(t *testing.T) {
	// Attach the builder directly as the run's sink: every completed span
	// must be internally consistent, and delivered payload must reconcile
	// with the scenario's goodput.
	top := topology.ETSweep(30)
	opts := netsim.TestbedOptions()
	opts.Protocol = netsim.ProtocolComap
	opts.Seed = 3
	opts.Duration = 500 * time.Millisecond
	b := span.NewBuilder()
	opts.Trace = b
	n, err := netsim.Build(top, opts)
	if err != nil {
		t.Fatal(err)
	}
	res := n.Run()

	spans := b.Spans()
	if len(spans) == 0 {
		t.Fatal("no spans from live run")
	}
	acked, delivered := 0, int64(0)
	for _, s := range spans {
		if s.Outcome == span.OutcomeAcked {
			acked++
			if s.TotalUs() < 0 {
				t.Fatalf("acked span without total time: %+v", s)
			}
			if s.QueuedUs() < 0 || s.ContendUs() < 0 || s.InFlightUs() < 0 {
				t.Fatalf("acked span with unobserved phase: %+v", s)
			}
			if len(s.Attempts) == 0 {
				t.Fatalf("acked span without attempts: %+v", s)
			}
		}
		if s.Delivered() {
			delivered += int64(s.Payload)
		}
	}
	if acked == 0 {
		t.Fatal("no acked spans in a healthy run")
	}
	// Goodput counts deliveries to the ARQ layer; every delivered span's
	// payload reached the destination PHY, so the trace-side total must be
	// at least the measured goodput.
	measured := res.Total() * res.Duration.Seconds() / 8
	if float64(delivered) < measured {
		t.Errorf("span-delivered bytes %d < measured goodput bytes %.0f",
			delivered, measured)
	}
}
