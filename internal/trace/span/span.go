// Package span folds a frame-lifecycle event stream (package trace) into
// per-frame spans: one record per MAC service of a data frame, from enqueue
// through contention and transmission to its acked/dropped completion, with
// the phase boundaries that let an analyzer say where each frame's time
// went. Spans are keyed by (src, dst, seq, chain), where chain counts
// services of the same sequence number — selective-repeat retransmissions
// and sequence-space wrap both re-enter the MAC as fresh services.
//
// The builder is a pure fold over the event stream: it relies only on the
// trace's ordering guarantees (events are recorded in virtual-time order,
// and a node's PHY events precede its MAC decisions at the same timestamp),
// so it reconstructs identical spans from a live Sink or a JSONL file read
// back later.
package span

import (
	"sort"

	"repro/internal/frame"
	"repro/internal/trace"
)

// Span outcomes.
const (
	// OutcomeAcked: the service completed with a link-layer ACK.
	OutcomeAcked = "acked"
	// OutcomeDropped: the service completed without one (retry limit,
	// CO-MAP no-retransmit, queue overflow).
	OutcomeDropped = "dropped"
	// OutcomePending: the run ended mid-service.
	OutcomePending = "pending"
)

// Attempt is one transmission attempt within a span.
type Attempt struct {
	// AtUs is the virtual time of the MAC's transmit decision.
	AtUs int64 `json:"at_us"`
	// Rate is the PHY rate chosen for the attempt.
	Rate string `json:"rate,omitempty"`
	// AirUs is the frame's airtime (from the channel's txstart record).
	AirUs int64 `json:"air_us,omitempty"`
	// Retries is the retry count the attempt was made at (0 = first try).
	Retries int `json:"retries,omitempty"`
	// Concurrent marks an exposed-terminal transmission overlapping an
	// announced ongoing link.
	Concurrent bool `json:"concurrent,omitempty"`
}

// Span is one frame's MAC service lifecycle.
type Span struct {
	Src   frame.NodeID `json:"src"`
	Dst   frame.NodeID `json:"dst"`
	Seq   uint16       `json:"seq"`
	Chain int          `json:"chain"`
	// Payload is the application payload in bytes.
	Payload int `json:"payload,omitempty"`

	// Phase boundaries in virtual microseconds; -1 when the phase was not
	// observed (e.g. a trace that starts mid-run).
	EnqueuedUs  int64 `json:"enqueued_us"`
	FirstBoUs   int64 `json:"first_bo_us"`
	FirstTxUs   int64 `json:"first_tx_us"`
	DeliveredUs int64 `json:"delivered_us"`
	EndUs       int64 `json:"end_us"`

	// Outcome is one of the Outcome* constants; Reason qualifies it with the
	// MAC's completion reason ("ack", "retry_limit", "no_retransmit",
	// "queue_full", "broadcast").
	Outcome string `json:"outcome"`
	Reason  string `json:"reason,omitempty"`
	// Retries is the final retry count; Freezes counts backoff freezes;
	// Timeouts counts ACK/CTS timeouts during the service.
	Retries  int `json:"retries,omitempty"`
	Freezes  int `json:"freezes,omitempty"`
	Timeouts int `json:"timeouts,omitempty"`

	Attempts []Attempt `json:"attempts,omitempty"`

	// RxOK and RxCorrupt count receptions of this frame at its destination.
	RxOK      int `json:"rx_ok,omitempty"`
	RxCorrupt int `json:"rx_corrupt,omitempty"`
}

// QueuedUs is the time spent waiting in the transmit queue before the frame's
// first backoff draw (-1 when unobserved).
func (s *Span) QueuedUs() int64 { return phase(s.EnqueuedUs, s.FirstBoUs) }

// ContendUs is the time from the first backoff draw to the first transmission
// attempt (-1 when unobserved).
func (s *Span) ContendUs() int64 { return phase(s.FirstBoUs, s.FirstTxUs) }

// InFlightUs is the time from the first transmission attempt to service
// completion — airtime, ACK waits and any retries (-1 when unobserved).
func (s *Span) InFlightUs() int64 { return phase(s.FirstTxUs, s.EndUs) }

// TotalUs is the full service time, enqueue to completion (-1 when
// unobserved).
func (s *Span) TotalUs() int64 { return phase(s.EnqueuedUs, s.EndUs) }

// AirUs is the summed airtime of all attempts.
func (s *Span) AirUs() int64 {
	var sum int64
	for _, a := range s.Attempts {
		sum += a.AirUs
	}
	return sum
}

// Delivered reports whether the destination decoded the frame at least once.
func (s *Span) Delivered() bool { return s.RxOK > 0 }

func phase(from, to int64) int64 {
	if from < 0 || to < 0 || to < from {
		return -1
	}
	return to - from
}

type key struct {
	src, dst frame.NodeID
	seq      uint16
}

// Builder folds trace events into spans. It implements trace.Sink, so it can
// be attached live to a run or fed a decoded JSONL stream.
//
// A MAC queue can hold several frames with the same identity at once — the
// selective-repeat ARQ pipelines a retransmission copy behind the original —
// so the builder keeps a FIFO of open spans per identity, mirroring the
// MAC's in-order service.
type Builder struct {
	spans  []*Span
	open   map[key][]int // FIFO of open span indices per frame identity
	chains map[key]int
}

// NewBuilder returns an empty builder.
func NewBuilder() *Builder {
	return &Builder{
		open:   make(map[key][]int),
		chains: make(map[key]int),
	}
}

// Record implements trace.Sink.
func (b *Builder) Record(e trace.Event) { b.Add(e) }

// Add folds one event. Events must arrive in trace order; non-data and
// non-lifecycle events are ignored.
func (b *Builder) Add(e trace.Event) {
	if e.FrameKind != frame.Data.String() {
		return
	}
	k := key{src: e.Src, dst: e.Dst, seq: e.SeqNo()}

	// Receptions are observed at the destination; everything else at the
	// transmitter.
	if e.Kind == trace.KindRx {
		if e.Node != e.Dst {
			return
		}
		s := b.current(k)
		if s == nil {
			return
		}
		if e.Decoded() {
			s.RxOK++
			if s.DeliveredUs < 0 {
				s.DeliveredUs = e.AtMicros
			}
		} else {
			s.RxCorrupt++
		}
		return
	}
	if e.Node != e.Src {
		return
	}

	switch e.Kind {
	case trace.KindEnqueue:
		b.openSpan(k, e)
	case trace.KindDrop:
		if e.Reason == "queue_full" {
			// Rejected before entering the queue: a zero-length span.
			s := b.openSpan(k, e)
			b.closeSpan(k, s, OutcomeDropped, e)
			return
		}
		if s := b.lookup(k); s != nil {
			b.closeSpan(k, s, OutcomeDropped, e)
		}
	case trace.KindAck:
		if s := b.lookup(k); s != nil {
			b.closeSpan(k, s, OutcomeAcked, e)
		}
	case trace.KindBackoffStart:
		if s := b.lookup(k); s != nil && s.FirstBoUs < 0 {
			s.FirstBoUs = e.AtMicros
		}
	case trace.KindBackoffFreeze:
		if s := b.lookup(k); s != nil {
			s.Freezes++
		}
	case trace.KindTxAttempt:
		if s := b.lookup(k); s != nil {
			if s.FirstTxUs < 0 {
				s.FirstTxUs = e.AtMicros
			}
			s.Retries = e.Retries
			s.Attempts = append(s.Attempts, Attempt{
				AtUs:       e.AtMicros,
				Rate:       e.Rate,
				Retries:    e.Retries,
				Concurrent: e.Concurrent,
			})
		}
	case trace.KindTxStart:
		if s := b.lookup(k); s != nil && len(s.Attempts) > 0 {
			s.Attempts[len(s.Attempts)-1].AirUs = e.DurUs
		}
	case trace.KindTimeout:
		if s := b.lookup(k); s != nil {
			s.Timeouts++
		}
	}
}

// openSpan starts a new span for k behind any already-open spans with the
// same identity.
func (b *Builder) openSpan(k key, e trace.Event) *Span {
	s := &Span{
		Src: e.Src, Dst: e.Dst, Seq: e.SeqNo(),
		Chain:      b.chains[k],
		Payload:    e.Payload,
		Outcome:    OutcomePending,
		EnqueuedUs: e.AtMicros,
		FirstBoUs:  -1,
		FirstTxUs:  -1, DeliveredUs: -1, EndUs: -1,
	}
	b.chains[k]++
	b.spans = append(b.spans, s)
	b.open[k] = append(b.open[k], len(b.spans)-1)
	return s
}

// closeSpan completes the oldest open span for k (MAC service is in-order).
func (b *Builder) closeSpan(k key, s *Span, outcome string, e trace.Event) {
	s.Outcome = outcome
	s.Reason = e.Reason
	if e.Retries > s.Retries {
		s.Retries = e.Retries
	}
	s.EndUs = e.AtMicros
	q := b.open[k]
	for i, idx := range q {
		if b.spans[idx] == s {
			q = append(q[:i], q[i+1:]...)
			break
		}
	}
	if len(q) == 0 {
		delete(b.open, k)
	} else {
		b.open[k] = q
	}
}

// lookup returns the oldest open span for k — the one the MAC is serving —
// nil when none.
func (b *Builder) lookup(k key) *Span {
	if q := b.open[k]; len(q) > 0 {
		return b.spans[q[0]]
	}
	return nil
}

// current returns the open span for k, falling back to the most recent
// completed one (a late reception can trail the sender's completion event).
func (b *Builder) current(k key) *Span {
	if s := b.lookup(k); s != nil {
		return s
	}
	for i := len(b.spans) - 1; i >= 0; i-- {
		s := b.spans[i]
		if s.Src == k.src && s.Dst == k.dst && s.Seq == k.seq {
			return s
		}
	}
	return nil
}

// Spans returns all spans in enqueue order. Spans still open (run ended
// mid-service) keep OutcomePending.
func (b *Builder) Spans() []*Span {
	out := make([]*Span, len(b.spans))
	copy(out, b.spans)
	sort.SliceStable(out, func(i, j int) bool {
		return out[i].EnqueuedUs < out[j].EnqueuedUs
	})
	return out
}

// FromEvents folds a complete event slice into spans.
func FromEvents(events []trace.Event) []*Span {
	b := NewBuilder()
	for _, e := range events {
		b.Add(e)
	}
	return b.Spans()
}
