// Package trace records the frame lifecycle of a simulated network as JSON
// Lines, one object per event — the equivalent of NS-2's wireless trace file
// or a pcap for this simulator, extended with the protocol decisions behind
// each frame. A Tracer wraps any channel.Listener for the PHY events; the
// MAC and the CO-MAP agent emit their decision events through an Emitter.
// Everything funnels into the same Sink, so one JSONL file carries the whole
// causal story of a run: why a station deferred, why a concurrent
// transmission was granted, why a retry storm started.
//
// Tracing is purely observational: sinks only read simulator state, no
// decision event feeds back into protocol behavior, and a nil Emitter
// records nothing at zero cost — traced runs are bit-identical to untraced
// ones.
//
// Event kinds:
//
//   - PHY (per observing node, via Tracer): "rx" (frame delivered to a
//     locked radio, ok or corrupted), "txdone" (own transmission left the
//     air), "energy" (aggregate in-band power changed; opt-in, voluminous).
//   - Channel: "txstart" (a transmission was put on the air, with its rate
//     and airtime — the other half of the "txdone" interval).
//   - MAC decisions: "mac.enqueue", "mac.bo_start" (fresh backoff draw),
//     "mac.bo_freeze" (countdown frozen by a busy/reserved medium),
//     "mac.tx" (data transmission attempt), "mac.ack" (frame service
//     completed acked), "mac.timeout" (ACK or CTS timeout), "mac.drop"
//     (frame service completed unacked, with the reason).
//   - Exposed-terminal decisions (MAC): "et.join" (backoff resumes through
//     the busy medium alongside an announced transmission), "et.abandon"
//     (the RSSI-step rule detected a second exposed terminal).
//   - CO-MAP agent decisions: "co.grant"/"co.deny" (concurrency validation
//     verdict for our destination against an ongoing link, cached or freshly
//     computed), "co.adapt" (hidden-terminal packet-size/CW adaptation
//     changed the transmission settings).
package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"repro/internal/channel"
	"repro/internal/frame"
	"repro/internal/phy"
	"repro/internal/sim"
)

// Event kind names. The strings are the stable on-disk format; the analyzer
// in cmd/comap-trace matches on them.
const (
	KindRx     = "rx"
	KindTxDone = "txdone"
	KindEnergy = "energy"

	KindTxStart = "txstart"

	KindEnqueue       = "mac.enqueue"
	KindBackoffStart  = "mac.bo_start"
	KindBackoffFreeze = "mac.bo_freeze"
	KindTxAttempt     = "mac.tx"
	KindAck           = "mac.ack"
	KindTimeout       = "mac.timeout"
	KindDrop          = "mac.drop"

	KindETJoin    = "et.join"
	KindETAbandon = "et.abandon"

	KindCoGrant = "co.grant"
	KindCoDeny  = "co.deny"
	KindCoAdapt = "co.adapt"
	// KindCoFallback marks a health-gated decision: the agent refused to act
	// on degraded location input and fell back to plain DCF behavior.
	KindCoFallback = "co.fallback"

	// KindCoLadder marks a control-plane degradation-ladder transition
	// (Reason is "from->to" over fresh/stale/coarse/dcf), emitted by the
	// mapsvc client when the rung serving verdicts changes.
	KindCoLadder = "co.ladder"

	// Control-plane RPC events, client side (the mapsvc client). Every
	// issued call attempt is bracketed by KindRPCCall and exactly one of
	// KindRPCDone / KindRPCTimeout; KindRPCRetry records the backoff armed
	// before the next attempt of the same request; KindRPCDrop records a
	// refusal to issue or retry a call (Reason "breaker_open",
	// "budget_exhausted", "retries_exhausted", "busy"); KindRPCBreaker
	// records a circuit-breaker state change (Reason "from->to" over
	// closed/open/half-open). All carry Req (client-assigned request ID),
	// and call/done/timeout/retry carry Attempt (1-based).
	KindRPCCall    = "rpc.call"
	KindRPCDone    = "rpc.done"
	KindRPCTimeout = "rpc.timeout"
	KindRPCRetry   = "rpc.retry"
	KindRPCDrop    = "rpc.drop"
	KindRPCBreaker = "rpc.breaker"

	// KindRPCServer is the server-side control-plane event stream emitted
	// by mapsvc.Service: Reason is one of "admit", "shed", "hit", "miss",
	// "unhealthy", "invalidate", "invalidate_all", "epoch_bump",
	// "wal_replay", "crash"; Req/Attempt echo the caller's causal context
	// when the request carried one.
	KindRPCServer = "rpc.srv"

	// KindFault marks an injected fault window opening (Reason names the
	// fault process; DurUs carries the window length).
	KindFault = "fault"

	// KindRunEnd marks the scheduled end of the run, so analyzers can
	// normalise rates over the true duration instead of the last event.
	KindRunEnd = "run.end"
)

// Event is one trace record.
type Event struct {
	// AtMicros is the virtual time in microseconds.
	AtMicros int64 `json:"at_us"`
	// Node is the observing station.
	Node frame.NodeID `json:"node"`
	// Kind is one of the Kind* constants.
	Kind string `json:"kind"`

	// Frame fields. On PHY and MAC events they describe the frame itself;
	// on "et.*" and "co.*" events Src/Dst identify the ongoing (foreign)
	// link the decision was made against.
	FrameKind string       `json:"frame,omitempty"`
	Src       frame.NodeID `json:"src,omitempty"`
	Dst       frame.NodeID `json:"dst,omitempty"`
	// Seq is explicit (pointer, not omitempty-elided) so that seq-0 frames
	// keep their sequence number on the wire; it is nil on events that do
	// not concern a sequenced frame.
	Seq     *uint16 `json:"seq,omitempty"`
	Payload int     `json:"payload,omitempty"`
	Retry   bool    `json:"retry,omitempty"`

	// OK reports decode success for rx events. It is a pointer so a failed
	// decode ("ok":false) is distinguishable from a non-rx event (absent).
	OK *bool `json:"ok,omitempty"`
	// RSSIDBm is the received signal strength (rx) or aggregate energy
	// (energy events); explicit so a 0 dBm reading survives the round trip.
	RSSIDBm *float64 `json:"rssi_dbm,omitempty"`

	// Decision-event fields. All optional; which are set depends on Kind.

	// DurUs is a duration in microseconds: the airtime of a "txstart", or
	// the total service time (enqueue→completion) on "mac.ack"/"mac.drop".
	DurUs int64 `json:"dur_us,omitempty"`
	// Rate is the PHY rate name of a transmission ("txstart", "mac.tx").
	Rate string `json:"rate,omitempty"`
	// CW is the contention window ("mac.bo_start") or the adapted window
	// ("co.adapt").
	CW int `json:"cw,omitempty"`
	// Slots is the backoff counter: drawn on "mac.bo_start", remaining on
	// "mac.bo_freeze".
	Slots int `json:"slots,omitempty"`
	// Retries is the retransmission count of the frame in service.
	Retries int `json:"retries,omitempty"`
	// Queue is the transmit-queue depth after a "mac.enqueue".
	Queue int `json:"queue,omitempty"`
	// Reason qualifies the event: drop reasons ("retry_limit",
	// "queue_full", "no_retransmit"), timeout flavor ("ack", "cts"),
	// join trigger ("embedded", "energy_rise"), verdict provenance
	// ("cached", "validated"), completion without an ACK ("broadcast").
	Reason string `json:"reason,omitempty"`
	// OurDst is this node's own destination on "et.*"/"co.*" events, where
	// Src/Dst carry the foreign ongoing link.
	OurDst frame.NodeID `json:"our_dst,omitempty"`
	// Hidden and Contenders are the environment counts behind a "co.adapt".
	Hidden     int `json:"hidden,omitempty"`
	Contenders int `json:"contenders,omitempty"`
	// Concurrent marks a "mac.tx" that overlaps an ongoing transmission
	// (exposed-terminal concurrency).
	Concurrent bool `json:"concurrent,omitempty"`

	// Control-plane causal context ("rpc.*" events, and "co.*" events that
	// were decided by a control-plane round trip).

	// Req is the client-assigned control-plane request ID. IDs are
	// monotonic per client and never zero, so 0 (absent) means "no RPC was
	// issued for this decision".
	Req uint64 `json:"req,omitempty"`
	// Attempt is the 1-based attempt sequence within a request.
	Attempt int `json:"attempt,omitempty"`
	// Op names the control-plane operation ("verdict", "ingest",
	// "invalidate_node", "invalidate_all").
	Op string `json:"op,omitempty"`
	// Count carries a batch size: records admitted on an "admit", records
	// replayed on a "wal_replay", entries dropped on an "invalidate".
	Count int `json:"count,omitempty"`
	// Epoch is the service epoch on "rpc.srv" events.
	Epoch uint64 `json:"epoch,omitempty"`
}

// SeqNum returns a pointer to v, for building events.
func SeqNum(v uint16) *uint16 { return &v }

// Bool returns a pointer to v, for building events.
func Bool(v bool) *bool { return &v }

// Float returns a pointer to v, for building events.
func Float(v float64) *float64 { return &v }

// SeqNo returns the event's sequence number, 0 when absent.
func (e Event) SeqNo() uint16 {
	if e.Seq == nil {
		return 0
	}
	return *e.Seq
}

// HasSeq reports whether the event carries a sequence number.
func (e Event) HasSeq() bool { return e.Seq != nil }

// Decoded reports whether an rx event decoded cleanly. Traces written
// before the explicit-OK encoding omitted "ok" on failed decodes, so an
// absent field correctly reads as false.
func (e Event) Decoded() bool { return e.OK != nil && *e.OK }

// RSSI returns the recorded signal strength and whether one was recorded.
func (e Event) RSSI() (float64, bool) {
	if e.RSSIDBm == nil {
		return 0, false
	}
	return *e.RSSIDBm, true
}

// FrameEvent builds an event of the given kind carrying f's identity.
func FrameEvent(kind string, f frame.Frame) Event {
	return Event{
		Kind:      kind,
		FrameKind: f.Kind.String(),
		Src:       f.Src,
		Dst:       f.Dst,
		Seq:       SeqNum(f.Seq),
		Payload:   f.PayloadBytes,
		Retry:     f.Retry,
	}
}

// Sink receives trace events. Implementations must be cheap; they run inside
// the simulation loop.
type Sink interface {
	Record(Event)
}

// Writer is a Sink that encodes events as JSON Lines.
type Writer struct {
	enc *json.Encoder
	n   int
	err error
}

// NewWriter wraps an io.Writer.
func NewWriter(w io.Writer) *Writer {
	return &Writer{enc: json.NewEncoder(w)}
}

// Record implements Sink.
func (w *Writer) Record(e Event) {
	if w.err != nil {
		return
	}
	w.err = w.enc.Encode(e)
	if w.err == nil {
		w.n++
	}
}

// Count returns the number of events written.
func (w *Writer) Count() int { return w.n }

// Err returns the first encoding error, if any.
func (w *Writer) Err() error { return w.err }

// Buffer is a Sink that collects events in memory (tests, analysis).
type Buffer struct {
	Events []Event
}

// Record implements Sink.
func (b *Buffer) Record(e Event) { b.Events = append(b.Events, e) }

// Emitter stamps decision events with the virtual time and the owning node
// and forwards them to a Sink. A nil *Emitter is valid and records nothing —
// protocol code calls Emit unconditionally and pays one nil check when
// tracing is detached.
type Emitter struct {
	eng  *sim.Engine
	node frame.NodeID
	sink Sink
}

// NewEmitter builds an emitter for one node. A nil sink yields a nil
// emitter (tracing off).
func NewEmitter(eng *sim.Engine, node frame.NodeID, sink Sink) *Emitter {
	if sink == nil {
		return nil
	}
	return &Emitter{eng: eng, node: node, sink: sink}
}

// Enabled reports whether events will actually be recorded. Use it to skip
// building expensive events; plain Emit calls are already nil-safe.
func (em *Emitter) Enabled() bool { return em != nil }

// Emit stamps e with the current virtual time and the emitter's node and
// records it.
func (em *Emitter) Emit(e Event) {
	if em == nil {
		return
	}
	e.AtMicros = int64(em.eng.Now() / time.Microsecond)
	e.Node = em.node
	em.sink.Record(e)
}

// Tracer wraps a channel.Listener and mirrors its indications into a Sink.
type Tracer struct {
	eng    *sim.Engine
	node   frame.NodeID
	inner  channel.Listener
	sink   Sink
	energy bool
}

var _ channel.Listener = (*Tracer)(nil)

// New wraps inner so that node's PHY events flow into sink. Set energy to
// also record every aggregate-power change (very verbose).
func New(eng *sim.Engine, node frame.NodeID, inner channel.Listener, sink Sink, energy bool) *Tracer {
	return &Tracer{eng: eng, node: node, inner: inner, sink: sink, energy: energy}
}

// Attach interposes tracers on every node of a medium, returning the number
// wrapped. Call after the MAC listeners are installed.
func Attach(eng *sim.Engine, m *channel.Medium, sink Sink, energy bool) int {
	n := 0
	for _, tr := range m.Nodes() {
		tr.SetListener(New(eng, tr.ID(), tr.Listener(), sink, energy))
		n++
	}
	return n
}

// InstrumentMedium attaches per-node PHY tracers (as Attach) and
// additionally hooks transmission starts into the sink as "txstart" events,
// so analyzers can reconstruct on-air intervals without guessing airtimes.
// It returns the number of nodes wrapped.
func InstrumentMedium(eng *sim.Engine, m *channel.Medium, sink Sink, energy bool) int {
	m.OnTransmitStart = func(from frame.NodeID, f frame.Frame, r phy.Rate, airtime time.Duration) {
		e := FrameEvent(KindTxStart, f)
		e.AtMicros = int64(eng.Now() / time.Microsecond)
		e.Node = from
		e.Rate = r.Name
		e.DurUs = int64(airtime / time.Microsecond)
		sink.Record(e)
	}
	return Attach(eng, m, sink, energy)
}

// base converts a frame into the shared event fields.
func (t *Tracer) base(kind string, f frame.Frame) Event {
	e := FrameEvent(kind, f)
	e.AtMicros = int64(t.eng.Now() / time.Microsecond)
	e.Node = t.node
	return e
}

// EnergyChanged implements channel.Listener.
func (t *Tracer) EnergyChanged(agg float64) {
	if t.energy {
		t.sink.Record(Event{
			AtMicros: int64(t.eng.Now() / time.Microsecond),
			Node:     t.node,
			Kind:     KindEnergy,
			RSSIDBm:  Float(agg),
		})
	}
	if t.inner != nil {
		t.inner.EnergyChanged(agg)
	}
}

// FrameReceived implements channel.Listener.
func (t *Tracer) FrameReceived(f frame.Frame, ok bool, rssi float64) {
	e := t.base(KindRx, f)
	e.OK = Bool(ok)
	e.RSSIDBm = Float(rssi)
	t.sink.Record(e)
	if t.inner != nil {
		t.inner.FrameReceived(f, ok, rssi)
	}
}

// TransmitDone implements channel.Listener.
func (t *Tracer) TransmitDone(f frame.Frame) {
	t.sink.Record(t.base(KindTxDone, f))
	if t.inner != nil {
		t.inner.TransmitDone(f)
	}
}

// String summarises an event for logs.
func (e Event) String() string {
	switch e.Kind {
	case KindRx:
		rssi, _ := e.RSSI()
		return fmt.Sprintf("%dus node %d RX %s %d->%d seq=%d ok=%v rssi=%.1f",
			e.AtMicros, e.Node, e.FrameKind, e.Src, e.Dst, e.SeqNo(), e.Decoded(), rssi)
	case KindTxDone:
		return fmt.Sprintf("%dus node %d TXDONE %s %d->%d seq=%d",
			e.AtMicros, e.Node, e.FrameKind, e.Src, e.Dst, e.SeqNo())
	case KindTxStart:
		return fmt.Sprintf("%dus node %d TXSTART %s %d->%d seq=%d rate=%s dur=%dus",
			e.AtMicros, e.Node, e.FrameKind, e.Src, e.Dst, e.SeqNo(), e.Rate, e.DurUs)
	case KindEnergy:
		rssi, _ := e.RSSI()
		return fmt.Sprintf("%dus node %d %s %.1f dBm", e.AtMicros, e.Node, e.Kind, rssi)
	default:
		s := fmt.Sprintf("%dus node %d %s", e.AtMicros, e.Node, e.Kind)
		if e.FrameKind != "" {
			s += fmt.Sprintf(" %s %d->%d seq=%d", e.FrameKind, e.Src, e.Dst, e.SeqNo())
		} else if e.Src != 0 || e.Dst != 0 {
			s += fmt.Sprintf(" link %d->%d", e.Src, e.Dst)
		}
		if e.Reason != "" {
			s += " reason=" + e.Reason
		}
		return s
	}
}
