// Package trace records PHY-level events of a simulated network as JSON
// Lines, one object per event — the equivalent of NS-2's wireless trace file
// or a pcap for this simulator. A Tracer wraps any channel.Listener, so it
// can be interposed per node without the MAC noticing.
//
// Event kinds: "rx" (frame delivered to a locked radio, ok or corrupted),
// "txdone" (own transmission left the air) and "energy" (aggregate in-band
// power changed; only recorded when energy tracing is enabled — it is
// voluminous).
package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"repro/internal/channel"
	"repro/internal/frame"
	"repro/internal/sim"
)

// Event is one trace record.
type Event struct {
	// AtMicros is the virtual time in microseconds.
	AtMicros int64 `json:"at_us"`
	// Node is the observing station.
	Node frame.NodeID `json:"node"`
	// Kind is "rx", "txdone" or "energy".
	Kind string `json:"kind"`
	// Frame fields (rx/txdone).
	FrameKind string       `json:"frame,omitempty"`
	Src       frame.NodeID `json:"src,omitempty"`
	Dst       frame.NodeID `json:"dst,omitempty"`
	Seq       uint16       `json:"seq,omitempty"`
	Payload   int          `json:"payload,omitempty"`
	Retry     bool         `json:"retry,omitempty"`
	// OK reports decode success for rx events.
	OK bool `json:"ok,omitempty"`
	// RSSIDBm is the received signal strength (rx) or aggregate energy
	// (energy events).
	RSSIDBm float64 `json:"rssi_dbm,omitempty"`
}

// Sink receives trace events. Implementations must be cheap; they run inside
// the simulation loop.
type Sink interface {
	Record(Event)
}

// Writer is a Sink that encodes events as JSON Lines.
type Writer struct {
	enc *json.Encoder
	n   int
	err error
}

// NewWriter wraps an io.Writer.
func NewWriter(w io.Writer) *Writer {
	return &Writer{enc: json.NewEncoder(w)}
}

// Record implements Sink.
func (w *Writer) Record(e Event) {
	if w.err != nil {
		return
	}
	w.err = w.enc.Encode(e)
	if w.err == nil {
		w.n++
	}
}

// Count returns the number of events written.
func (w *Writer) Count() int { return w.n }

// Err returns the first encoding error, if any.
func (w *Writer) Err() error { return w.err }

// Buffer is a Sink that collects events in memory (tests, analysis).
type Buffer struct {
	Events []Event
}

// Record implements Sink.
func (b *Buffer) Record(e Event) { b.Events = append(b.Events, e) }

// Tracer wraps a channel.Listener and mirrors its indications into a Sink.
type Tracer struct {
	eng    *sim.Engine
	node   frame.NodeID
	inner  channel.Listener
	sink   Sink
	energy bool
}

var _ channel.Listener = (*Tracer)(nil)

// New wraps inner so that node's PHY events flow into sink. Set energy to
// also record every aggregate-power change (very verbose).
func New(eng *sim.Engine, node frame.NodeID, inner channel.Listener, sink Sink, energy bool) *Tracer {
	return &Tracer{eng: eng, node: node, inner: inner, sink: sink, energy: energy}
}

// Attach interposes tracers on every node of a medium, returning the number
// wrapped. Call after the MAC listeners are installed.
func Attach(eng *sim.Engine, m *channel.Medium, sink Sink, energy bool) int {
	n := 0
	for _, tr := range m.Nodes() {
		tr.SetListener(New(eng, tr.ID(), tr.Listener(), sink, energy))
		n++
	}
	return n
}

// base converts a frame into the shared event fields.
func (t *Tracer) base(kind string, f frame.Frame) Event {
	return Event{
		AtMicros:  int64(t.eng.Now() / time.Microsecond),
		Node:      t.node,
		Kind:      kind,
		FrameKind: f.Kind.String(),
		Src:       f.Src,
		Dst:       f.Dst,
		Seq:       f.Seq,
		Payload:   f.PayloadBytes,
		Retry:     f.Retry,
	}
}

// EnergyChanged implements channel.Listener.
func (t *Tracer) EnergyChanged(agg float64) {
	if t.energy {
		t.sink.Record(Event{
			AtMicros: int64(t.eng.Now() / time.Microsecond),
			Node:     t.node,
			Kind:     "energy",
			RSSIDBm:  agg,
		})
	}
	if t.inner != nil {
		t.inner.EnergyChanged(agg)
	}
}

// FrameReceived implements channel.Listener.
func (t *Tracer) FrameReceived(f frame.Frame, ok bool, rssi float64) {
	e := t.base("rx", f)
	e.OK = ok
	e.RSSIDBm = rssi
	t.sink.Record(e)
	if t.inner != nil {
		t.inner.FrameReceived(f, ok, rssi)
	}
}

// TransmitDone implements channel.Listener.
func (t *Tracer) TransmitDone(f frame.Frame) {
	t.sink.Record(t.base("txdone", f))
	if t.inner != nil {
		t.inner.TransmitDone(f)
	}
}

// String summarises an event for logs.
func (e Event) String() string {
	switch e.Kind {
	case "rx":
		return fmt.Sprintf("%dus node %d RX %s %d->%d seq=%d ok=%v rssi=%.1f",
			e.AtMicros, e.Node, e.FrameKind, e.Src, e.Dst, e.Seq, e.OK, e.RSSIDBm)
	case "txdone":
		return fmt.Sprintf("%dus node %d TXDONE %s %d->%d seq=%d",
			e.AtMicros, e.Node, e.FrameKind, e.Src, e.Dst, e.Seq)
	default:
		return fmt.Sprintf("%dus node %d %s %.1f dBm", e.AtMicros, e.Node, e.Kind, e.RSSIDBm)
	}
}
