package trace_test

import (
	"errors"
	"testing"
	"time"

	"repro/internal/channel"
	"repro/internal/frame"
	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/trace"
)

// spyListener records every indication so tests can verify the tracer chains
// to the wrapped listener.
type spyListener struct {
	rx     []frame.Frame
	rxOK   []bool
	txdone []frame.Frame
	energy []float64
}

func (s *spyListener) FrameReceived(f frame.Frame, ok bool, rssi float64) {
	s.rx = append(s.rx, f)
	s.rxOK = append(s.rxOK, ok)
}
func (s *spyListener) TransmitDone(f frame.Frame) { s.txdone = append(s.txdone, f) }
func (s *spyListener) EnergyChanged(agg float64)  { s.energy = append(s.energy, agg) }

var _ channel.Listener = (*spyListener)(nil)

func TestTracerChainsInnerListener(t *testing.T) {
	eng := sim.New(1)
	inner := &spyListener{}
	var buf trace.Buffer
	tr := trace.New(eng, 7, inner, &buf, true)

	data := frame.Frame{Kind: frame.Data, Src: 2, Dst: 7, Seq: 5, PayloadBytes: 100}
	ack := frame.Frame{Kind: frame.Ack, Src: 7, Dst: 2}
	tr.FrameReceived(data, true, -60)
	tr.FrameReceived(data, false, -90)
	tr.TransmitDone(ack)
	tr.EnergyChanged(-75)

	if len(inner.rx) != 2 || inner.rx[0] != data || !inner.rxOK[0] || inner.rxOK[1] {
		t.Errorf("inner FrameReceived chain broken: %+v ok=%v", inner.rx, inner.rxOK)
	}
	if len(inner.txdone) != 1 || inner.txdone[0] != ack {
		t.Errorf("inner TransmitDone chain broken: %+v", inner.txdone)
	}
	if len(inner.energy) != 1 || inner.energy[0] != -75 {
		t.Errorf("inner EnergyChanged chain broken: %+v", inner.energy)
	}

	// The sink mirrors exactly what the inner listener saw.
	if len(buf.Events) != 4 {
		t.Fatalf("sink saw %d events, want 4", len(buf.Events))
	}
	if e := buf.Events[0]; e.Kind != "rx" || e.Node != 7 || e.Src != 2 || e.SeqNo() != 5 || !e.Decoded() {
		t.Errorf("mirrored rx event wrong: %+v", e)
	}
	if e := buf.Events[1]; e.Decoded() {
		t.Errorf("corrupted rx mirrored as ok: %+v", e)
	}
	if e := buf.Events[2]; e.Kind != "txdone" || e.FrameKind != frame.Ack.String() {
		t.Errorf("mirrored txdone event wrong: %+v", e)
	}
	if e := buf.Events[3]; e.Kind != "energy" || e.RSSIDBm == nil || *e.RSSIDBm != -75 {
		t.Errorf("mirrored energy event wrong: %+v", e)
	}
}

func TestTracerToleratesNilInner(t *testing.T) {
	eng := sim.New(1)
	var buf trace.Buffer
	tr := trace.New(eng, 1, nil, &buf, true)
	tr.FrameReceived(frame.Frame{Kind: frame.Data}, true, -60)
	tr.TransmitDone(frame.Frame{Kind: frame.Ack})
	tr.EnergyChanged(-80)
	if len(buf.Events) != 3 {
		t.Errorf("sink saw %d events, want 3", len(buf.Events))
	}
}

func TestAttachKeepsProtocolRunning(t *testing.T) {
	// Attach interposes on the MACs' own listeners; if chaining were broken
	// the stations would never decode a frame and goodput would be zero.
	top := topology.ETSweep(30)
	opts := netsim.TestbedOptions()
	opts.Protocol = netsim.ProtocolDCF
	opts.Seed = 4
	opts.Duration = 300 * time.Millisecond
	n, err := netsim.Build(top, opts)
	if err != nil {
		t.Fatal(err)
	}
	var buf trace.Buffer
	trace.Attach(n.Eng, n.Medium, &buf, false)
	res := n.Run()
	if res.Total() <= 0 {
		t.Error("goodput zero: tracer did not chain to the MAC listeners")
	}
	nodes := map[frame.NodeID]bool{}
	for _, e := range buf.Events {
		nodes[e.Node] = true
	}
	if len(nodes) < 2 {
		t.Errorf("events from %d nodes, want at least sender and receiver", len(nodes))
	}
}

func TestInstrumentMediumRecordsTxStarts(t *testing.T) {
	top := topology.ETSweep(30)
	opts := netsim.TestbedOptions()
	opts.Protocol = netsim.ProtocolDCF
	opts.Seed = 4
	opts.Duration = 300 * time.Millisecond
	n, err := netsim.Build(top, opts)
	if err != nil {
		t.Fatal(err)
	}
	var buf trace.Buffer
	if got := trace.InstrumentMedium(n.Eng, n.Medium, &buf, false); got != len(top.Nodes) {
		t.Fatalf("InstrumentMedium wrapped %d nodes", got)
	}
	n.Run()
	starts, dones := 0, 0
	for _, e := range buf.Events {
		switch e.Kind {
		case trace.KindTxStart:
			starts++
			if e.DurUs <= 0 {
				t.Fatalf("txstart without airtime: %+v", e)
			}
			if e.Rate == "" {
				t.Fatalf("txstart without rate: %+v", e)
			}
		case trace.KindTxDone:
			dones++
		}
	}
	if starts == 0 {
		t.Fatal("no txstart events recorded")
	}
	// Every completed transmission pairs a start with a done; at most one
	// frame per node can still be on the air when the run ends.
	if dones > starts || starts-dones > len(top.Nodes) {
		t.Errorf("txstart=%d txdone=%d, want matched pairs modulo in-flight frames",
			starts, dones)
	}
}

// failAfter is an io.Writer that fails every write past the first n bytes.
type failAfter struct {
	n       int
	written int
}

var errDiskFull = errors.New("disk full")

func (f *failAfter) Write(p []byte) (int, error) {
	if f.written+len(p) > f.n {
		return 0, errDiskFull
	}
	f.written += len(p)
	return len(p), nil
}

func TestWriterSurfacesWriteErrors(t *testing.T) {
	w := trace.NewWriter(&failAfter{n: 100})
	e := trace.Event{Kind: "rx", Node: 1, FrameKind: "DATA"}
	for i := 0; i < 50; i++ {
		w.Record(e)
	}
	if w.Err() == nil {
		t.Fatal("Err() nil after failing writes")
	}
	if !errors.Is(w.Err(), errDiskFull) {
		t.Errorf("Err() = %v, want wrapped disk full", w.Err())
	}
	if w.Count() >= 50 {
		t.Errorf("Count() = %d, failed writes were counted", w.Count())
	}
	// The first error sticks: later records must not clobber it or count.
	before := w.Count()
	w.Record(e)
	if w.Count() != before || !errors.Is(w.Err(), errDiskFull) {
		t.Error("Writer kept going after its first error")
	}
}
