package netsim

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/frame"
)

// Summary aggregates network-wide protocol counters after a run.
type Summary struct {
	// DataTx is the number of data-frame transmissions (including
	// retransmissions), DataRetry the retransmissions alone.
	DataTx, DataRetry int64
	// AckTimeouts counts transmissions that saw no acknowledgement.
	AckTimeouts int64
	// Corrupted counts receptions that failed the SINR threshold.
	Corrupted int64
	// ConcurrentTx counts CO-MAP exposed-terminal transmissions.
	ConcurrentTx int64
	// Opportunities and Abandons count the enhanced-scheduling decisions.
	Opportunities, Abandons int64
	// HeadersTx counts separate discovery-header frames (HeaderFrame mode).
	HeadersTx int64
	// LocationBeacons and LocationBytes count the in-band exchange.
	LocationBeacons int
	LocationBytes   int64
	// PositionReports counts registry updates (oracle or in-band).
	PositionReports int
	// FallbackDCF counts CO-MAP concurrency decisions that fell back to
	// plain DCF because a peer's position health crossed the confidence
	// bound; FallbackAdapt counts links whose packet-size/CW adaptation
	// reverted to defaults for the same reason.
	FallbackDCF, FallbackAdapt int64
}

// Summarize collects the counters of every station.
func (n *Network) Summarize() Summary {
	var s Summary
	for _, st := range n.Stations {
		c := st.MAC.Stats()
		s.DataTx += c.Get("tx.data")
		s.DataRetry += c.Get("tx.retry")
		s.AckTimeouts += c.Get("ack.timeout")
		s.Corrupted += c.Get("rx.corrupt")
		s.ConcurrentTx += c.Get("et.concurrent_tx")
		s.Opportunities += c.Get("et.opportunity")
		s.Abandons += c.Get("et.abandon")
		s.HeadersTx += c.Get("tx.header")
		if st.Locx != nil {
			s.LocationBeacons += st.Locx.BeaconsSent()
			s.LocationBytes += st.Locx.BytesSent()
		}
		s.FallbackDCF += st.Metrics.Counter("comap.fallback.dcf").Value()
		s.FallbackAdapt += st.Metrics.Counter("comap.fallback.adapt").Value()
	}
	s.PositionReports = n.Locs.Updates()
	return s
}

// LossRate is the fraction of data transmissions that timed out.
func (s Summary) LossRate() float64 {
	if s.DataTx == 0 {
		return 0
	}
	return float64(s.AckTimeouts) / float64(s.DataTx)
}

// Print renders the summary as aligned text.
func (s Summary) Print(w io.Writer) {
	fmt.Fprintf(w, "data tx %d (retries %d), ack timeouts %d (%.1f%%), corrupted rx %d\n",
		s.DataTx, s.DataRetry, s.AckTimeouts, s.LossRate()*100, s.Corrupted)
	if s.Opportunities > 0 || s.ConcurrentTx > 0 {
		fmt.Fprintf(w, "exposed-terminal: %d opportunities, %d concurrent tx, %d abandons\n",
			s.Opportunities, s.ConcurrentTx, s.Abandons)
	}
	if s.HeadersTx > 0 {
		fmt.Fprintf(w, "discovery headers: %d frames\n", s.HeadersTx)
	}
	if s.LocationBeacons > 0 {
		fmt.Fprintf(w, "location exchange: %d beacons, %d bytes\n", s.LocationBeacons, s.LocationBytes)
	}
	if s.FallbackDCF > 0 || s.FallbackAdapt > 0 {
		fmt.Fprintf(w, "location-health fallbacks: %d to DCF, %d to default adaptation\n",
			s.FallbackDCF, s.FallbackAdapt)
	}
	fmt.Fprintf(w, "position reports: %d\n", s.PositionReports)
}

// PrintFlows renders per-flow goodput sorted by source then destination.
func (r *Results) PrintFlows(w io.Writer) {
	flows := make([]FlowResult, len(r.Flows))
	copy(flows, r.Flows)
	sort.Slice(flows, func(i, j int) bool {
		if flows[i].Flow.Src != flows[j].Flow.Src {
			return flows[i].Flow.Src < flows[j].Flow.Src
		}
		return flows[i].Flow.Dst < flows[j].Flow.Dst
	})
	for _, f := range flows {
		fmt.Fprintf(w, "%5d -> %-5d %9.3f Mbps\n", f.Flow.Src, f.Flow.Dst, f.GoodputBps/1e6)
	}
	fmt.Fprintf(w, "total %.3f Mbps, mean per flow %.3f Mbps\n", r.Total()/1e6, r.MeanPerFlow()/1e6)
}

// FlowsFrom returns the results of flows originating at src.
func (r *Results) FlowsFrom(src frame.NodeID) []FlowResult {
	var out []FlowResult
	for _, f := range r.Flows {
		if f.Flow.Src == src {
			out = append(out, f)
		}
	}
	return out
}
