package netsim

import (
	"time"

	"repro/internal/audit"
	"repro/internal/comap"
	"repro/internal/faults"
	"repro/internal/frame"
	"repro/internal/mapsvc"
)

// Run states reported by Progress.
const (
	RunStateBuilt   = "built"
	RunStateRunning = "running"
	RunStateDone    = "done"
)

// Progress is a race-safe snapshot of a run in flight, served live by the
// observability plane (/runs). Everything in it is derived from atomics,
// locked series and wall clocks — reading it never touches mutable protocol
// state, so an observed run stays bit-identical to an unobserved one.
type Progress struct {
	Topology    string  `json:"topology"`
	Protocol    string  `json:"protocol"`
	Seed        int64   `json:"seed"`
	State       string  `json:"state"`
	SimSec      float64 `json:"sim_sec"`
	DurationSec float64 `json:"duration_sec"`
	WallSec     float64 `json:"wall_sec"`
	// Speedup is sim-time over wall-time so far (0 until the run starts).
	Speedup      float64 `json:"speedup"`
	Events       uint64  `json:"events"`
	EventsPerSec float64 `json:"events_per_sec"`
	// PendingEvents / EventPool mirror the engine's queue length and recycled
	// event-pool size (published every ~1k dispatches; see sim.LivePending).
	PendingEvents int `json:"pending_events"`
	EventPool     int `json:"event_pool"`
	// Flows carries per-flow sliced goodput when slicing is enabled
	// (StartSlicing); otherwise the list only names the flows.
	Flows []FlowProgress `json:"flows,omitempty"`
}

// FlowProgress is one flow's live goodput view.
type FlowProgress struct {
	Src frame.NodeID `json:"src"`
	Dst frame.NodeID `json:"dst"`
	// Slices is the per-slice goodput observed so far (requires slicing).
	Slices []GoodputSlice `json:"slices,omitempty"`
}

// markRunning records the wall-clock start of the run.
func (n *Network) markRunning() {
	n.runMu.Lock()
	n.runState = RunStateRunning
	n.runStart = time.Now()
	n.runMu.Unlock()
}

// markDone records the wall-clock duration of the run.
func (n *Network) markDone(wall time.Duration) {
	n.runMu.Lock()
	n.runState = RunStateDone
	n.wall = wall
	n.runMu.Unlock()
}

// runClock returns the current state, the wall time elapsed so far (final
// wall time once done) in a race-safe way.
func (n *Network) runClock() (state string, wall time.Duration) {
	n.runMu.Lock()
	defer n.runMu.Unlock()
	switch n.runState {
	case RunStateRunning:
		return n.runState, time.Since(n.runStart)
	case RunStateDone:
		return n.runState, n.wall
	default:
		return RunStateBuilt, 0
	}
}

// Progress snapshots the run's live state. Safe to call from any goroutine
// at any time — before, during and after Run.
func (n *Network) Progress() Progress {
	state, wall := n.runClock()
	p := Progress{
		Topology:    n.Top.Name,
		Protocol:    n.Opts.Protocol.String(),
		Seed:        n.Opts.Seed,
		State:       state,
		SimSec:      n.Eng.Now().Seconds(),
		DurationSec: n.Opts.Duration.Seconds(),
		WallSec:     wall.Seconds(),
		Events:      n.Eng.EventsFired(),

		PendingEvents: n.Eng.LivePending(),
		EventPool:     n.Eng.LivePoolSize(),
	}
	if wall > 0 {
		p.Speedup = p.SimSec / wall.Seconds()
		p.EventsPerSec = float64(p.Events) / wall.Seconds()
	}
	for _, f := range n.Top.Flows {
		fp := FlowProgress{Src: f.Src, Dst: f.Dst}
		if s := n.sliceSeries[f]; s != nil {
			fp.Slices = slicesFromSeries(s.Samples())
		}
		p.Flows = append(p.Flows, fp)
	}
	return p
}

// slicesFromSeries converts a cumulative byte series into per-slice
// goodput deltas.
func slicesFromSeries(at []time.Duration, values []float64) []GoodputSlice {
	var out []GoodputSlice
	prevT := time.Duration(0)
	prevB := int64(0)
	for i := range at {
		t, b := at[i], int64(values[i])
		if t <= prevT {
			continue
		}
		out = append(out, GoodputSlice{
			StartSec:   prevT.Seconds(),
			EndSec:     t.Seconds(),
			Bytes:      b - prevB,
			GoodputBps: float64(b-prevB) * 8 / (t - prevT).Seconds(),
		})
		prevT, prevB = t, b
	}
	return out
}

// HealthStatus is a race-safe summary of the run's degraded-mode machinery
// for the live health endpoint: what the fault injector is doing and how
// often CO-MAP's location-health policy fell back to plain DCF behaviour.
type HealthStatus struct {
	// Status is "ok" while nothing is degraded, "degraded" while a fault
	// window is open or health fallbacks have fired.
	Status string  `json:"status"`
	SimSec float64 `json:"sim_sec"`
	// PendingEvents / EventPool mirror the engine's live queue and pool
	// gauges: a pending count that climbs without bound, or a pool that
	// grows while pending stays flat, both flag engine-level trouble.
	PendingEvents int `json:"pending_events"`
	EventPool     int `json:"event_pool"`
	// Faults reports injector state; absent on fault-free runs.
	Faults *faults.Status `json:"faults,omitempty"`
	// HealthPolicy echoes the active CO-MAP location-health policy; absent
	// when health gating is disabled.
	HealthPolicy *HealthPolicyStatus `json:"health_policy,omitempty"`
	// FallbackDCF / FallbackAdapt sum the stations' health-fallback
	// counters (see Summary).
	FallbackDCF   int64 `json:"fallback_dcf"`
	FallbackAdapt int64 `json:"fallback_adapt"`
	// ControlPlane reports the remote CO-MAP stack (absent unless
	// Options.ComapRemote): client breaker/rung/budget state and service
	// ingest/WAL/recovery state. A rung below fresh or a down service
	// degrades the run's health.
	ControlPlane *ControlPlaneStatus `json:"control_plane,omitempty"`
	// Audit carries the determinism ledger's head digest when auditing is
	// on; a ledger write error degrades the run's health.
	Audit *audit.Head `json:"audit,omitempty"`
}

// ControlPlaneStatus pairs the control-plane client and service snapshots
// for the live health endpoint.
type ControlPlaneStatus struct {
	Client  mapsvc.ClientStatus  `json:"client"`
	Service mapsvc.ServiceStatus `json:"service"`
}

// HealthPolicyStatus is the JSON rendering of comap.HealthPolicy.
type HealthPolicyStatus struct {
	MaxFixAgeSec            float64 `json:"max_fix_age_sec"`
	StalenessMarginDBPerSec float64 `json:"staleness_margin_db_per_sec"`
	UseErrorRadius          bool    `json:"use_error_radius"`
}

// HealthStatus snapshots the degraded-mode state. Safe to call from any
// goroutine during a run: it reads only atomic counters and injector
// atomics.
func (n *Network) HealthStatus() HealthStatus {
	h := HealthStatus{
		Status:        "ok",
		SimSec:        n.Eng.Now().Seconds(),
		PendingEvents: n.Eng.LivePending(),
		EventPool:     n.Eng.LivePoolSize(),
	}
	if n.injector != nil {
		st := n.injector.Status()
		h.Faults = &st
		if st.ActiveWindows > 0 {
			h.Status = "degraded"
		}
	}
	if hp := n.healthPolicy(); hp.Enabled() {
		h.HealthPolicy = &HealthPolicyStatus{
			MaxFixAgeSec:            hp.MaxFixAge.Seconds(),
			StalenessMarginDBPerSec: hp.StalenessMarginDBPerSec,
			UseErrorRadius:          hp.UseErrorRadius,
		}
	}
	// Station registries hand out atomic counters; summing them live is
	// race-safe and never perturbs the run.
	for _, node := range n.Top.Nodes {
		st := n.Stations[node.ID]
		h.FallbackDCF += st.Metrics.Counter("comap.fallback.dcf").Value()
		h.FallbackAdapt += st.Metrics.Counter("comap.fallback.adapt").Value()
	}
	if h.FallbackDCF > 0 || h.FallbackAdapt > 0 {
		h.Status = "degraded"
	}
	if n.MapClient != nil {
		cp := &ControlPlaneStatus{
			Client:  n.MapClient.Status(),
			Service: n.MapService.Status(),
		}
		h.ControlPlane = cp
		if cp.Client.Rung != mapsvc.RungFresh.String() || cp.Service.Down {
			h.Status = "degraded"
		}
	}
	if n.Audit != nil {
		head := n.Audit.Head()
		h.Audit = &head
		if head.Err != "" {
			h.Status = "degraded"
		}
	}
	return h
}

// healthPolicy returns the CO-MAP health policy in force for this run (zero
// when disabled), mirroring the selection Build performs.
func (n *Network) healthPolicy() comap.HealthPolicy {
	if n.Opts.LocationHealth != nil {
		return *n.Opts.LocationHealth
	}
	if n.Opts.Faults != nil || n.Opts.RPCFaults != nil {
		return comap.DefaultHealthPolicy()
	}
	return comap.HealthPolicy{}
}
