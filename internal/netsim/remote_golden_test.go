package netsim_test

import (
	"bytes"
	"os"
	"testing"

	"repro/internal/audit"
	"repro/internal/goldenscn"
	"repro/internal/netsim"
	"repro/internal/trace"
)

// remoteScenarios returns the golden scenarios that can route verdicts
// through the mapsvc control plane: every CO-MAP scenario (DCF has no
// agent, so there is nothing to remote).
func remoteScenarios() []goldenscn.Scenario {
	var out []goldenscn.Scenario
	for _, sc := range goldenScenarios() {
		if sc.Opts.Protocol == netsim.ProtocolComap {
			out = append(out, sc)
		}
	}
	return out
}

// TestGoldenReportsRemote is the control-plane equivalence oracle: routing
// every verdict miss through the mapsvc service over the deterministic
// transport — with a zero RPC-fault spec — must reproduce the in-process
// golden report byte for byte. Every call completes inline on the sim
// clock, so the remote stack adds no events and draws no RNG.
func TestGoldenReportsRemote(t *testing.T) {
	for _, sc := range remoteScenarios() {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			want, err := os.ReadFile(goldenPath(sc.Name))
			if err != nil {
				t.Skipf("missing golden (run TestGoldenReports -update-golden first): %v", err)
			}
			opts := sc.Opts
			opts.ComapRemote = true
			n, err := netsim.Build(sc.Top, opts)
			if err != nil {
				t.Fatalf("build: %v", err)
			}
			if n.MapClient == nil || n.MapService == nil {
				t.Fatal("remote control-plane stack not attached")
			}
			res := n.Run()
			rep := n.Report(res)
			rep.Engine.WallSec = 0
			rep.Engine.EventsPerSec = 0
			var buf bytes.Buffer
			if err := rep.WriteJSON(&buf); err != nil {
				t.Fatalf("encode: %v", err)
			}
			if !bytes.Equal(buf.Bytes(), want) {
				t.Fatalf("remote run diverged from golden %s: the zero-fault "+
					"control plane must be observationally identical to in-process CO-MAP",
					goldenPath(sc.Name))
			}
			// Sanity: the remote path was actually exercised, not bypassed.
			svc := n.MapService.Status()
			cli := n.MapClient.Status()
			if svc.Ingested == 0 {
				t.Error("service ingested no fixes — registry commit hook not wired")
			}
			if cli.Calls == 0 {
				t.Error("client made no verdict calls — agent misses not routed remotely")
			}
			if cli.Failures != 0 || cli.Timeouts != 0 || cli.Retries != 0 {
				t.Errorf("zero-fault remote run recorded failures=%d timeouts=%d retries=%d",
					cli.Failures, cli.Timeouts, cli.Retries)
			}
			if cli.RungDecisions["fresh"] == 0 || cli.RungDecisions["stale"]+cli.RungDecisions["coarse"]+cli.RungDecisions["dcf"] != 0 {
				t.Errorf("zero-fault remote run left the fresh rung: %v", cli.RungDecisions)
			}
		})
	}
}

// TestGoldenLedgersRemote extends the equivalence oracle to the audit
// plane: an audited remote run must produce a ledger semantically equal to
// the checked-in in-process golden ledger (same manifest fingerprint, same
// per-slice chains, same deep digests) AND still match the golden report.
func TestGoldenLedgersRemote(t *testing.T) {
	for _, sc := range remoteScenarios() {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			want, err := audit.ReadFile(ledgerPath(sc.Name))
			if err != nil {
				t.Skipf("missing golden ledger (run TestGoldenLedgers -update-golden first): %v", err)
			}
			sc.Opts.ComapRemote = true
			var buf bytes.Buffer
			ledger, repBytes := runAudited(t, sc, audit.Config{}, &buf)
			if wantRep, err := os.ReadFile(goldenPath(sc.Name)); err == nil {
				if !bytes.Equal(repBytes, wantRep) {
					t.Fatalf("audited remote run diverged from golden report %s", goldenPath(sc.Name))
				}
			}
			if d := audit.Compare(ledger.File(), want); d != nil {
				t.Fatalf("remote ledger diverged from in-process golden %s:\n%s", ledgerPath(sc.Name), d)
			}
		})
	}
}

// TestGoldenReportsRemoteTraced re-runs the remote scenarios with a trace
// attached and live health scrapes (which snapshot the control-plane client
// and service from another goroutine mid-run), asserting the report still
// matches the golden: control-plane observability must not perturb the run,
// and a zero-fault run must emit no ladder-transition events.
func TestGoldenReportsRemoteTraced(t *testing.T) {
	for _, sc := range remoteScenarios() {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			want, err := os.ReadFile(goldenPath(sc.Name))
			if err != nil {
				t.Skipf("missing golden (run TestGoldenReports -update-golden first): %v", err)
			}
			opts := sc.Opts
			opts.ComapRemote = true
			var tbuf trace.Buffer
			opts.Trace = &tbuf
			n, err := netsim.Build(sc.Top, opts)
			if err != nil {
				t.Fatalf("build: %v", err)
			}
			stop := make(chan struct{})
			done := make(chan struct{})
			go func() {
				defer close(done)
				for {
					select {
					case <-stop:
						return
					default:
						_ = n.HealthStatus()
					}
				}
			}()
			res := n.Run()
			close(stop)
			<-done
			rep := n.Report(res)
			rep.Engine.WallSec = 0
			rep.Engine.EventsPerSec = 0
			var buf bytes.Buffer
			if err := rep.WriteJSON(&buf); err != nil {
				t.Fatalf("encode: %v", err)
			}
			if !bytes.Equal(buf.Bytes(), want) {
				t.Fatalf("traced+scraped remote run diverged from golden %s", goldenPath(sc.Name))
			}
			for _, e := range tbuf.Events {
				if e.Kind == trace.KindCoLadder {
					t.Fatalf("zero-fault remote run emitted ladder transition %q", e.Reason)
				}
			}
			hs := n.HealthStatus()
			if hs.ControlPlane == nil {
				t.Fatal("health status missing control_plane block on a remote run")
			}
		})
	}
}
