package netsim

import (
	"strings"
	"testing"
	"time"

	"repro/internal/topology"
)

func TestSummarize(t *testing.T) {
	top := topology.ETSweep(30)
	opts := TestbedOptions()
	opts.Protocol = ProtocolComap
	opts.InBandLocation = true
	opts.Seed = 2
	opts.Duration = time.Second
	n, err := Build(top, opts)
	if err != nil {
		t.Fatal(err)
	}
	res := n.Run()
	s := n.Summarize()
	if s.DataTx == 0 {
		t.Fatal("no data transmissions counted")
	}
	if s.ConcurrentTx == 0 {
		t.Error("no concurrency counted in the ET region")
	}
	if s.LocationBeacons == 0 || s.LocationBytes == 0 {
		t.Error("in-band exchange not counted")
	}
	if s.PositionReports == 0 {
		t.Error("no position reports")
	}
	if lr := s.LossRate(); lr < 0 || lr > 1 {
		t.Errorf("loss rate = %v", lr)
	}

	var sb strings.Builder
	s.Print(&sb)
	for _, want := range []string{"data tx", "exposed-terminal", "location exchange", "position reports"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("summary missing %q:\n%s", want, sb.String())
		}
	}

	var fb strings.Builder
	res.PrintFlows(&fb)
	if !strings.Contains(fb.String(), "total") {
		t.Errorf("flow printout missing total:\n%s", fb.String())
	}
	if got := res.FlowsFrom(topology.C1); len(got) != 1 {
		t.Errorf("FlowsFrom(C1) = %d entries", len(got))
	}
	if got := res.FlowsFrom(99); len(got) != 0 {
		t.Errorf("FlowsFrom(99) = %d entries", len(got))
	}
}

func TestLossRateEmptySummary(t *testing.T) {
	var s Summary
	if s.LossRate() != 0 {
		t.Error("empty summary loss rate should be 0")
	}
}
