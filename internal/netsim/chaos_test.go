package netsim

import (
	"encoding/json"
	"testing"
	"time"

	"repro/internal/faults"
	"repro/internal/topology"
	"repro/internal/trace"
)

// chaosSpec exercises every degradation path at once: sustained report loss,
// a localization outage on the active sender, and the exposed terminal
// leaving and re-joining mid-run.
const chaosSpec = "locloss:p=0.6;outage:node=1,at=500ms,dur=700ms;churn:node=2,at=1500ms,dur=500ms"

func mustParse(t *testing.T, s string) *faults.Spec {
	t.Helper()
	spec, err := faults.Parse(s)
	if err != nil {
		t.Fatalf("Parse(%q): %v", s, err)
	}
	return spec
}

// TestChaosComapDegradesTowardDCF is the headline robustness property: under
// seeded location faults CO-MAP falls back to plain-DCF decisions instead of
// acting on garbage coordinates, so its goodput must stay within a hair of
// the DCF baseline on the same faulted run — the faults can cost it the
// concurrency gain, never materially more.
func TestChaosComapDegradesTowardDCF(t *testing.T) {
	top := topology.ETSweep(30)
	spec := mustParse(t, chaosSpec)

	var dcfTotal, cmTotal float64
	var fallbacks int64
	var buf trace.Buffer
	const seeds = 3
	for s := int64(0); s < seeds; s++ {
		base := TestbedOptions()
		base.Seed = 7 + s
		base.Duration = 2 * time.Second
		base.Faults = spec

		dcf := base
		dcf.Protocol = ProtocolDCF
		dcfRes, err := RunScenario(top, dcf)
		if err != nil {
			t.Fatal(err)
		}
		dcfTotal += dcfRes.Total()

		cm := base
		cm.Protocol = ProtocolComap
		cm.Trace = &buf
		n, err := Build(top, cm)
		if err != nil {
			t.Fatal(err)
		}
		cmTotal += n.Run().Total()
		fallbacks += n.Summarize().FallbackDCF
	}

	if cmTotal < 0.95*dcfTotal {
		t.Errorf("faulted CO-MAP total %.2f Mbps < 0.95x faulted DCF %.2f Mbps",
			cmTotal/1e6, dcfTotal/1e6)
	}
	if fallbacks == 0 {
		t.Error("no fallback-to-DCF decisions recorded in metrics under chaos spec")
	}
	kinds := map[string]int{}
	for _, e := range buf.Events {
		kinds[e.Kind]++
	}
	if kinds[trace.KindCoFallback] == 0 {
		t.Errorf("no %q events in trace, kinds seen: %v", trace.KindCoFallback, kinds)
	}
	if kinds[trace.KindFault] == 0 {
		t.Errorf("no %q events in trace, kinds seen: %v", trace.KindFault, kinds)
	}
}

// TestFaultedReportBitIdentical: identical (seed, spec) must reproduce the
// run bit-for-bit, fault activations included. Wall-clock self-profiling
// fields are the only permitted difference and are zeroed before comparison.
func TestFaultedReportBitIdentical(t *testing.T) {
	top := topology.ETSweep(30)

	run := func() []byte {
		opts := TestbedOptions()
		opts.Protocol = ProtocolComap
		opts.Seed = 99
		opts.Duration = 2 * time.Second
		opts.Faults = mustParse(t, chaosSpec)
		n, err := Build(top, opts)
		if err != nil {
			t.Fatal(err)
		}
		res := n.Run()
		rep := n.Report(res)
		rep.Engine.WallSec = 0
		rep.Engine.EventsPerSec = 0
		b, err := json.Marshal(rep)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}

	a, b := run(), run()
	if string(a) != string(b) {
		t.Fatalf("faulted reports diverged:\n%s\nvs\n%s", a, b)
	}
	var rep Report
	if err := json.Unmarshal(a, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Faults == nil {
		t.Fatal("faulted run report missing faults block")
	}
	if rep.Faults.Injected == 0 {
		t.Error("faults block records zero activations")
	}
	if rep.Faults.DroppedReports == 0 {
		t.Error("locloss:p=0.6 over 2s dropped zero reports")
	}
}

// TestChurnLeaveAndRejoin drives a churn window directly through the
// injector and checks the three observable transitions: the station is off
// the network during the window, its flow resumes delivering after re-join,
// and its peers invalidated their cached verdicts about it (per-node, on
// both leave and re-join).
func TestChurnLeaveAndRejoin(t *testing.T) {
	top := topology.ETSweep(30)
	opts := TestbedOptions()
	opts.Protocol = ProtocolComap
	opts.Seed = 5
	opts.Duration = 3 * time.Second
	opts.Faults = mustParse(t, "churn:node=2,at=1s,dur=1s")

	n, err := Build(top, opts)
	if err != nil {
		t.Fatal(err)
	}
	var duringWindow, afterWindow bool
	n.Eng.After(1500*time.Millisecond, func() { duringWindow = n.Departed(topology.C2) })
	n.Eng.After(2500*time.Millisecond, func() { afterWindow = n.Departed(topology.C2) })

	var bytesAtRejoin int64
	n.Eng.After(2*time.Second+time.Millisecond, func() {
		bytesAtRejoin = n.Stations[topology.AP2].deliveredFrom(topology.C2).Bytes()
	})

	res := n.Run()
	if !duringWindow {
		t.Error("station 2 not marked departed inside churn window")
	}
	if afterWindow {
		t.Error("station 2 still departed after churn window closed")
	}
	finalBytes := n.Stations[topology.AP2].deliveredFrom(topology.C2).Bytes()
	if finalBytes <= bytesAtRejoin {
		t.Errorf("flow 2->AP2 did not resume after re-join: %d bytes at re-join, %d at end",
			bytesAtRejoin, finalBytes)
	}
	if g := res.Goodput(topology.Flow{Src: topology.C2, Dst: topology.AP2}); g <= 0 {
		t.Errorf("churned flow goodput = %v, want > 0", g)
	}
	// Peers invalidate the churned node's verdicts on leave and again on
	// re-join.
	inval := n.Stations[topology.C1].Metrics.Counter("comap.map.invalidate").Value()
	if inval < 2 {
		t.Errorf("peer C1 recorded %d invalidations, want >= 2 (leave + re-join)", inval)
	}
}

// TestFaultsRequireKnownNodes: a spec naming a node outside the topology
// must be rejected at Build time, not silently ignored.
func TestFaultsRequireKnownNodes(t *testing.T) {
	top := topology.ETSweep(30)
	opts := TestbedOptions()
	opts.Faults = mustParse(t, "outage:node=77,at=1s,dur=1s")
	if _, err := Build(top, opts); err == nil {
		t.Error("spec targeting unknown node 77 accepted")
	}
}

// TestUnfaultedRunsUnperturbed: adding the faults layer must not change
// runs that do not use it — same seed with and without the (nil) spec.
func TestUnfaultedRunsUnperturbed(t *testing.T) {
	top := topology.ETSweep(30)
	opts := TestbedOptions()
	opts.Protocol = ProtocolComap
	opts.Seed = 11
	opts.Duration = time.Second

	res, err := RunScenario(top, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Flows[0].GoodputBps <= 0 {
		t.Fatal("sanity: no goodput")
	}
	n, err := Build(top, opts)
	if err != nil {
		t.Fatal(err)
	}
	if n.injector != nil {
		t.Error("injector built without a fault spec")
	}
	if s := n.Summarize(); s.FallbackDCF != 0 {
		t.Errorf("unfaulted run recorded %d DCF fallbacks before running", s.FallbackDCF)
	}
}
