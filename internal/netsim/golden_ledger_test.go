package netsim_test

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/audit"
	"repro/internal/goldenscn"
	"repro/internal/netsim"
)

func ledgerPath(name string) string {
	return filepath.Join("testdata", "golden_ledger_"+name+".jsonl")
}

// runAudited runs the scenario with a determinism ledger attached (JSONL to
// buf) and returns the ledger plus the report bytes rendered exactly as the
// golden-report suite does.
func runAudited(t *testing.T, sc goldenscn.Scenario, cfg audit.Config, buf *bytes.Buffer) (*audit.Ledger, []byte) {
	t.Helper()
	opts := sc.Opts
	cfg.Sink = buf
	opts.Audit = &netsim.AuditConfig{Scenario: sc.Name, Config: cfg}
	n, err := netsim.Build(sc.Top, opts)
	if err != nil {
		t.Fatalf("%s: build: %v", sc.Name, err)
	}
	if n.Audit == nil {
		t.Fatalf("%s: ledger not attached", sc.Name)
	}
	res := n.Run()
	if err := n.Audit.Err(); err != nil {
		t.Fatalf("%s: ledger write: %v", sc.Name, err)
	}
	rep := n.Report(res)
	rep.Engine.WallSec = 0
	rep.Engine.EventsPerSec = 0
	var repBuf bytes.Buffer
	if err := rep.WriteJSON(&repBuf); err != nil {
		t.Fatalf("%s: encode: %v", sc.Name, err)
	}
	return n.Audit, repBuf.Bytes()
}

// TestGoldenLedgers records a determinism ledger for every golden scenario
// and asserts (a) the audited run's report still matches the golden report
// byte for byte — auditing is purely observational — and (b) the ledger is
// semantically equal to the checked-in golden ledger (manifest config keys,
// every slice's chains and deep digests, the end record; environment fields
// like host and go version are excluded, so the fixtures compare across
// machines). Regenerate with:
//
//	go test ./internal/netsim/ -run TestGoldenLedgers -update-golden
func TestGoldenLedgers(t *testing.T) {
	for _, sc := range goldenScenarios() {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			var buf bytes.Buffer
			ledger, repBytes := runAudited(t, sc, audit.Config{}, &buf)

			if wantRep, err := os.ReadFile(goldenPath(sc.Name)); err == nil {
				if !bytes.Equal(repBytes, wantRep) {
					t.Fatalf("audited run diverged from golden report %s", goldenPath(sc.Name))
				}
			}

			path := ledgerPath(sc.Name)
			if *updateGolden {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := audit.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden ledger (run with -update-golden): %v", err)
			}
			got, err := audit.Read(bytes.NewReader(buf.Bytes()))
			if err != nil {
				t.Fatalf("re-read recorded ledger: %v", err)
			}
			if d := audit.Compare(got, want); d != nil {
				t.Fatalf("ledger diverged from golden %s:\n%s", path, d)
			}
			// The in-memory form (what the bisector compares) must agree
			// with the serialized stream.
			if d := audit.Compare(ledger.File(), want); d != nil {
				t.Fatalf("in-memory ledger diverged from serialized form:\n%s", d)
			}
		})
	}
}

// TestLedgerSelfConsistent re-runs one scenario twice and asserts the
// ledgers compare equal — the determinism baseline the injected-nondet test
// below falsifies.
func TestLedgerSelfConsistent(t *testing.T) {
	sc, ok := goldenscn.Get("chh-comap")
	if !ok {
		t.Fatal("chh-comap scenario missing")
	}
	sc.Opts.Duration = 300 * time.Millisecond
	var a, b bytes.Buffer
	la, _ := runAudited(t, sc, audit.Config{}, &a)
	lb, _ := runAudited(t, sc, audit.Config{}, &b)
	if d := audit.Compare(la.File(), lb.File()); d != nil {
		t.Fatalf("two identical runs produced divergent ledgers:\n%s", d)
	}
}

// TestInjectedNondeterminismDiverges validates the test-only injection
// hook: two runs with InjectNondet set must produce ledgers whose TagComap
// chains split (the injected no-op batch order follows Go's randomized map
// iteration), while the runs' reports stay identical to each other.
func TestInjectedNondeterminismDiverges(t *testing.T) {
	sc, ok := goldenscn.Get("chh-comap")
	if !ok {
		t.Fatal("chh-comap scenario missing")
	}
	sc.Opts.Duration = 300 * time.Millisecond
	cfg := audit.Config{InjectNondet: true}
	var diverged *audit.Divergence
	var repA, repB []byte
	// Map iteration order can coincide for a whole short run with small
	// probability; retry a few times before declaring the hook broken.
	for attempt := 0; attempt < 5 && diverged == nil; attempt++ {
		var a, b bytes.Buffer
		la, ra := runAudited(t, sc, cfg, &a)
		lb, rb := runAudited(t, sc, cfg, &b)
		repA, repB = ra, rb
		diverged = audit.Compare(la.File(), lb.File())
	}
	if diverged == nil {
		t.Fatal("injected nondeterminism never produced divergent ledgers")
	}
	if !bytes.Equal(repA, repB) {
		t.Fatal("injected no-op events changed the run's report")
	}
	if diverged.Kind != "slice" {
		t.Fatalf("expected slice divergence, got %q: %s", diverged.Kind, diverged)
	}
	foundComap := false
	for _, tag := range diverged.Tags {
		if tag == "comap" {
			foundComap = true
		}
	}
	if !foundComap {
		t.Fatalf("expected the comap chain to split, got tags %v", diverged.Tags)
	}
}
