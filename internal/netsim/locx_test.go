package netsim

import (
	"testing"
	"time"

	"repro/internal/topology"
)

// TestInBandLocationEndToEnd runs CO-MAP where positions are learned from
// over-the-air beacons rather than the oracle registry: the exchange must
// bootstrap fast enough that concurrency still happens, at a small goodput
// cost relative to oracle positions.
func TestInBandLocationEndToEnd(t *testing.T) {
	top := topology.ETSweep(30)

	run := func(inBand bool) (total float64, conc int64, beacons int) {
		opts := TestbedOptions()
		opts.Protocol = ProtocolComap
		opts.Seed = 5
		opts.Duration = 3 * time.Second
		opts.InBandLocation = inBand
		n, err := Build(top, opts)
		if err != nil {
			t.Fatal(err)
		}
		res := n.Run()
		for _, st := range n.Stations {
			conc += st.MAC.Stats().Get("et.concurrent_tx")
			if st.Locx != nil {
				beacons += st.Locx.BeaconsSent()
			}
		}
		return res.Total(), conc, beacons
	}

	oracleTotal, oracleConc, oracleBeacons := run(false)
	if oracleBeacons != 0 {
		t.Fatalf("oracle run sent %d beacons", oracleBeacons)
	}
	if oracleConc == 0 {
		t.Fatal("oracle run produced no concurrency (scenario broken)")
	}

	inbandTotal, inbandConc, inbandBeacons := run(true)
	if inbandBeacons == 0 {
		t.Fatal("in-band run sent no beacons")
	}
	if inbandConc == 0 {
		t.Error("in-band positions never enabled concurrency")
	}
	// The exchange costs some airtime and ramp-up, but must stay close.
	if inbandTotal < 0.7*oracleTotal {
		t.Errorf("in-band goodput %.2f Mbps far below oracle %.2f Mbps",
			inbandTotal/1e6, oracleTotal/1e6)
	}
}

// TestInBandLocationTablesPopulate verifies every CO-MAP station learns the
// whole 4-node neighborhood through the exchange.
func TestInBandLocationTablesPopulate(t *testing.T) {
	top := topology.ETSweep(28)
	opts := TestbedOptions()
	opts.Protocol = ProtocolComap
	opts.Seed = 2
	opts.Duration = 2 * time.Second
	opts.InBandLocation = true
	n, err := Build(top, opts)
	if err != nil {
		t.Fatal(err)
	}
	n.Run()
	for id, st := range n.Stations {
		if st.Locx == nil {
			t.Fatalf("station %d missing locx node", id)
		}
		if st.Locx.TableSize() < len(top.Nodes) {
			t.Errorf("station %d learned only %d/%d positions",
				id, st.Locx.TableSize(), len(top.Nodes))
		}
	}
}
