package netsim

import (
	"testing"
	"time"

	"repro/internal/topology"
)

// TestHeaderFrameModeEndToEnd: the testbed header variant (separate frame)
// must also produce concurrency, at a measurable airtime cost.
func TestHeaderFrameModeEndToEnd(t *testing.T) {
	top := topology.ETSweep(30)
	run := func(mode HeaderMode) (total float64, headers, conc int64) {
		opts := TestbedOptions()
		opts.Protocol = ProtocolComap
		opts.Header = mode
		opts.Seed = 6
		opts.Duration = 2 * time.Second
		n, err := Build(top, opts)
		if err != nil {
			t.Fatal(err)
		}
		res := n.Run()
		for _, st := range n.Stations {
			headers += st.MAC.Stats().Get("tx.header")
			conc += st.MAC.Stats().Get("et.concurrent_tx")
		}
		return res.Total(), headers, conc
	}

	embTotal, embHeaders, embConc := run(HeaderEmbedded)
	if embHeaders != 0 {
		t.Errorf("embedded mode sent %d separate header frames", embHeaders)
	}
	if embConc == 0 {
		t.Error("embedded mode: no concurrency")
	}

	frmTotal, frmHeaders, frmConc := run(HeaderFrame)
	if frmHeaders == 0 {
		t.Error("frame mode sent no header frames")
	}
	if frmConc == 0 {
		t.Error("frame mode: no concurrency")
	}
	// The separate header frame costs airtime; embedded should not lose.
	if embTotal < frmTotal*0.95 {
		t.Errorf("embedded %.2f Mbps unexpectedly below frame mode %.2f Mbps",
			embTotal/1e6, frmTotal/1e6)
	}
}

// TestRTSOptionEndToEnd: the RTS/CTS baseline runs through the netsim stack
// and mitigates a hidden-terminal topology relative to bare DCF.
func TestRTSOptionEndToEnd(t *testing.T) {
	top := topology.HTRoles([]topology.Role{topology.RoleHidden, topology.RoleHidden})
	flow := top.Flows[0]
	run := func(rts int) float64 {
		opts := NS2Options()
		opts.Protocol = ProtocolDCF
		opts.RTSThresholdBytes = rts
		opts.Seed = 8
		opts.Duration = 3 * time.Second
		res, err := RunScenario(top, opts)
		if err != nil {
			t.Fatal(err)
		}
		return res.Goodput(flow)
	}
	bare := run(0)
	withRTS := run(1)
	if withRTS <= bare {
		t.Errorf("RTS/CTS %.3f Mbps did not beat bare DCF %.3f Mbps under hidden terminals",
			withRTS/1e6, bare/1e6)
	}
}

// TestDisablePersistentConcurrency: the ablation knob suppresses the CS
// bypass but leaves chained concurrency working.
func TestDisablePersistentConcurrency(t *testing.T) {
	top := topology.ETSweep(30)
	opts := TestbedOptions()
	opts.Protocol = ProtocolComap
	opts.DisablePersistentConcurrency = true
	opts.Seed = 9
	opts.Duration = 2 * time.Second
	n, err := Build(top, opts)
	if err != nil {
		t.Fatal(err)
	}
	n.Run()
	var conc int64
	for _, st := range n.Stations {
		if st.MAC.PersistentConcurrent() {
			t.Errorf("station %d entered persistent mode despite the ablation", st.Node.ID)
		}
		conc += st.MAC.Stats().Get("et.concurrent_tx")
	}
	if conc == 0 {
		t.Error("chained concurrency should still work")
	}
}

// TestSRWindowOption: a tiny selective-repeat window still delivers, just
// with more head-of-line stalling.
func TestSRWindowOption(t *testing.T) {
	top := topology.ETSweep(30)
	opts := TestbedOptions()
	opts.Protocol = ProtocolComap
	opts.SRWindow = 1
	opts.Seed = 10
	opts.Duration = time.Second
	res, err := RunScenario(top, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Total() == 0 {
		t.Error("window=1 delivered nothing")
	}
}
