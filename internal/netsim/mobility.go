package netsim

import (
	"fmt"
	"time"

	"repro/internal/frame"
	"repro/internal/geom"
)

// walkTick is the mobility update cadence.
const walkTick = 100 * time.Millisecond

// ScheduleWalk moves a node in a straight line from its current position to
// dest at speedMps, starting at virtual time start. The walk updates the
// medium position and the location registry every 100 ms; the registry's
// movement threshold decides which steps actually re-report (the paper's
// mobility-management rule), and CO-MAP agents drop their cached
// co-occurrence verdicts when a new report lands. Call after Build and
// before Run.
func (n *Network) ScheduleWalk(id frame.NodeID, dest geom.Point, speedMps float64, start time.Duration) error {
	st, ok := n.Stations[id]
	if !ok {
		return fmt.Errorf("netsim: unknown node %d", id)
	}
	if speedMps <= 0 {
		return fmt.Errorf("netsim: non-positive speed")
	}
	origin := st.Node.Pos
	total := origin.DistanceTo(dest)
	if total == 0 {
		return nil
	}
	duration := time.Duration(total / speedMps * float64(time.Second))
	var step func()
	step = func() {
		elapsed := n.Eng.Now() - start
		t := float64(elapsed) / float64(duration)
		if t >= 1 {
			t = 1
		}
		pos := geom.Lerp(origin, dest, t)
		n.Medium.Node(id).SetPosition(pos)
		reportsBefore := n.Locs.Updates()
		n.Locs.Move(id, pos)
		if n.Locs.Updates() != reportsBefore {
			// A new position report is visible to everyone in oracle mode;
			// cached co-occurrence verdicts are stale.
			n.invalidateAgents()
		}
		if t < 1 {
			n.Eng.After(walkTick, step)
		}
	}
	n.Eng.Schedule(start, step)
	return nil
}

// invalidateAgents drops every CO-MAP agent's cached verdicts.
func (n *Network) invalidateAgents() {
	for _, st := range n.Stations {
		if st.Agent != nil {
			st.Agent.OnPositionsChanged()
		}
	}
}

// Rect is an axis-aligned area for the random-waypoint model.
type Rect struct {
	Min, Max geom.Point
}

// contains reports whether p lies inside the rectangle.
func (r Rect) contains(p geom.Point) bool {
	return p.X >= r.Min.X && p.X <= r.Max.X && p.Y >= r.Min.Y && p.Y <= r.Max.Y
}

// ScheduleRandomWaypoint runs the classic random-waypoint mobility model for
// a node: pick a uniform destination in bounds, walk there at a uniform
// speed in [minSpeed, maxSpeed] m/s, pause, repeat until the simulation
// ends. Waypoints come from the engine's "mobility.<id>" random stream, so
// runs stay reproducible.
func (n *Network) ScheduleRandomWaypoint(id frame.NodeID, bounds Rect, minSpeed, maxSpeed float64, pause time.Duration) error {
	if _, ok := n.Stations[id]; !ok {
		return fmt.Errorf("netsim: unknown node %d", id)
	}
	if minSpeed <= 0 || maxSpeed < minSpeed {
		return fmt.Errorf("netsim: bad speed range [%v, %v]", minSpeed, maxSpeed)
	}
	if bounds.Max.X <= bounds.Min.X || bounds.Max.Y <= bounds.Min.Y {
		return fmt.Errorf("netsim: degenerate bounds")
	}
	rng := n.Eng.RNG(fmt.Sprintf("mobility.%d", id))
	var leg func()
	leg = func() {
		cur := n.Medium.Node(id).Position()
		dest := geom.Pt(
			bounds.Min.X+rng.Float64()*(bounds.Max.X-bounds.Min.X),
			bounds.Min.Y+rng.Float64()*(bounds.Max.Y-bounds.Min.Y),
		)
		speed := minSpeed + rng.Float64()*(maxSpeed-minSpeed)
		travel := time.Duration(cur.DistanceTo(dest) / speed * float64(time.Second))
		if err := n.ScheduleWalk(id, dest, speed, n.Eng.Now()); err != nil {
			return
		}
		n.Eng.After(travel+pause, leg)
	}
	n.Eng.After(0, leg)
	return nil
}
