package netsim

import (
	"fmt"

	"repro/internal/frame"
	"repro/internal/topology"
)

// ScheduleLocTrace replays a .loc trace (see topology.ParseLocTrace /
// topology.SynthesizeCityTrace) against the network: move events relocate the
// station on the medium and in the location registry (with the same
// report-threshold and verdict-invalidation semantics as ScheduleWalk), and
// leave/join events drive the churn controller. Call after Build and before
// Run. Events addressing unknown stations are rejected up front, so a
// mismatched trace fails loudly instead of silently dropping movement.
func (n *Network) ScheduleLocTrace(tr *topology.LocTrace) error {
	for i, ev := range tr.Events {
		if _, ok := n.Stations[ev.Node]; !ok {
			return fmt.Errorf("netsim: loc trace event %d (%s %s) targets unknown node %d", i, ev.At, ev.Op, ev.Node)
		}
	}
	hasChurn := false
	for _, ev := range tr.Events {
		if ev.Op == topology.LocLeave || ev.Op == topology.LocJoin {
			hasChurn = true
			break
		}
	}
	if hasChurn && n.departed == nil {
		// The churn controller is armed lazily (fault-injected runs allocate
		// it in Build); trace-driven churn needs it too.
		n.departed = make(map[frame.NodeID]bool)
	}
	for _, ev := range tr.Events {
		ev := ev
		switch ev.Op {
		case topology.LocMove:
			n.Eng.Schedule(ev.At, func() { n.applyTraceMove(ev) })
		case topology.LocLeave:
			n.Eng.Schedule(ev.At, func() { n.StationLeave(ev.Node) })
		case topology.LocJoin:
			n.Eng.Schedule(ev.At, func() { n.StationRejoin(ev.Node) })
		default:
			return fmt.Errorf("netsim: loc trace has invalid op %d", ev.Op)
		}
	}
	return nil
}

// applyTraceMove relocates one station per a trace event. Departed stations
// still move their radio (the NIC is powered but the station is off the
// network) without reporting to the location substrate — their fresh position
// reaches the registry through StationRejoin's forced report.
func (n *Network) applyTraceMove(ev topology.LocEvent) {
	n.Medium.Node(ev.Node).SetPosition(ev.Pos)
	if n.departed[ev.Node] {
		return
	}
	reportsBefore := n.Locs.Updates()
	n.Locs.Move(ev.Node, ev.Pos)
	if n.Locs.Updates() != reportsBefore {
		n.invalidateAgents()
	}
}
