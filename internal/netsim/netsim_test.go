package netsim

import (
	"testing"
	"time"

	"repro/internal/bianchi"
	"repro/internal/phy"
	"repro/internal/topology"
)

func TestProtocolString(t *testing.T) {
	if ProtocolDCF.String() != "DCF" || ProtocolComap.String() != "CO-MAP" {
		t.Error("protocol strings")
	}
	if Protocol(9).String() == "" {
		t.Error("unknown protocol should stringify")
	}
}

func TestBuildValidation(t *testing.T) {
	top := topology.ETSweep(28)
	opts := TestbedOptions()

	bad := opts
	bad.Protocol = 0
	if _, err := Build(top, bad); err == nil {
		t.Error("invalid protocol accepted")
	}
	bad = opts
	bad.Duration = 0
	if _, err := Build(top, bad); err == nil {
		t.Error("zero duration accepted")
	}
	broken := topology.Topology{Name: "broken", Flows: []topology.Flow{{Src: 1, Dst: 2}}}
	if _, err := Build(broken, opts); err == nil {
		t.Error("invalid topology accepted")
	}
}

func TestSingleLinkDCF(t *testing.T) {
	top := topology.Topology{
		Name: "single",
		Nodes: []topology.Node{
			{ID: topology.AP1, Pos: pt(0, 0), IsAP: true},
			{ID: topology.C1, Pos: pt(8, 0)},
		},
		Flows: []topology.Flow{{Src: topology.C1, Dst: topology.AP1}},
	}
	opts := TestbedOptions()
	opts.Seed = 1
	opts.Duration = 2 * time.Second
	res, err := RunScenario(top, opts)
	if err != nil {
		t.Fatal(err)
	}
	g := res.Goodput(top.Flows[0])
	// An isolated 8 m link with Minstrel over the 802.11b rates should
	// comfortably exceed 3.5 Mbps goodput.
	if g < 3.5e6 {
		t.Errorf("single-link goodput = %.2f Mbps, want > 3.5", g/1e6)
	}
	if res.Total() != g || res.MeanPerFlow() != g {
		t.Error("aggregate accessors inconsistent for single flow")
	}
}

func TestDeterministicReplay(t *testing.T) {
	top := topology.ETSweep(26)
	opts := TestbedOptions()
	opts.Seed = 42
	opts.Duration = time.Second

	run := func() []float64 {
		res, err := RunScenario(top, opts)
		if err != nil {
			t.Fatal(err)
		}
		out := make([]float64, len(res.Flows))
		for i, f := range res.Flows {
			out[i] = f.GoodputBps
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("replay diverged at flow %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestComapBeatsDCFInExposedTerminalScenario(t *testing.T) {
	top := topology.ETSweep(30)
	var dcfTotal, cmTotal float64
	const seeds = 4
	for s := int64(0); s < seeds; s++ {
		base := TestbedOptions()
		base.Seed = 100 + s
		base.Duration = 2 * time.Second

		dcf := base
		dcf.Protocol = ProtocolDCF
		dcfRes, err := RunScenario(top, dcf)
		if err != nil {
			t.Fatal(err)
		}
		dcfTotal += dcfRes.Total()

		cm := base
		cm.Protocol = ProtocolComap
		cmRes, err := RunScenario(top, cm)
		if err != nil {
			t.Fatal(err)
		}
		cmTotal += cmRes.Total()
	}

	if cmTotal <= dcfTotal {
		t.Errorf("CO-MAP total %.2f Mbps <= DCF %.2f Mbps",
			cmTotal/1e6/seeds, dcfTotal/1e6/seeds)
	}
	// Shape-level check: meaningful mean gain in the heart of the ET region.
	if gain := cmTotal/dcfTotal - 1; gain < 0.15 {
		t.Errorf("ET gain = %.1f%%, want >= 15%%", gain*100)
	}
}

func TestComapConcurrencyHappens(t *testing.T) {
	top := topology.ETSweep(28)
	opts := TestbedOptions()
	opts.Seed = 3
	opts.Protocol = ProtocolComap
	opts.Duration = 2 * time.Second
	n, err := Build(top, opts)
	if err != nil {
		t.Fatal(err)
	}
	n.Run()
	conc := n.Stations[topology.C1].MAC.Stats().Get("et.concurrent_tx") +
		n.Stations[topology.C2].MAC.Stats().Get("et.concurrent_tx")
	if conc == 0 {
		t.Error("no concurrent transmissions in the ET region")
	}
}

func TestComapDeniesConcurrencyOutsideETRegion(t *testing.T) {
	// C2 at 16 m from AP1: too close for safe concurrency; the co-occurrence
	// map must deny it.
	top := topology.ETSweep(16)
	opts := TestbedOptions()
	opts.Seed = 5
	opts.Protocol = ProtocolComap
	opts.Duration = 2 * time.Second
	n, err := Build(top, opts)
	if err != nil {
		t.Fatal(err)
	}
	n.Run()
	conc := n.Stations[topology.C1].MAC.Stats().Get("et.concurrent_tx") +
		n.Stations[topology.C2].MAC.Stats().Get("et.concurrent_tx")
	if conc != 0 {
		t.Errorf("%d concurrent transmissions despite unsafe geometry", conc)
	}
}

func TestHiddenTerminalAdaptationShrinksPayload(t *testing.T) {
	opts := NS2Options()
	opts.Seed = 11
	opts.Protocol = ProtocolComap
	opts.Duration = time.Second
	opts.PayloadBytes = 1500
	base := bianchi.FromPHY(opts.PHY, phy.RateOFDM6)
	opts.AdaptTable = bianchi.NewAdaptationTable(base, 5, 8, nil, nil)

	top := topology.HTRoles([]topology.Role{
		topology.RoleHidden, topology.RoleHidden, topology.RoleHidden,
	})
	n, err := Build(top, opts)
	if err != nil {
		t.Fatal(err)
	}
	// The measured station should see 3 hidden terminals and adapt.
	c1 := n.Stations[topology.C1]
	h, _ := c1.Agent.CountEnvironment(topology.AP1, []frameID{2, 3, 4})
	if h != 3 {
		t.Fatalf("agent sees %d hidden terminals, want 3", h)
	}
	setting := c1.Agent.Adaptation(opts.AdaptTable, topology.AP1, []frameID{2, 3, 4})
	noHT := opts.AdaptTable.Lookup(0, 0)
	if setting.PayloadBytes >= noHT.PayloadBytes {
		t.Errorf("payload with 3 HTs (%d) should be below no-HT payload (%d)",
			setting.PayloadBytes, noHT.PayloadBytes)
	}
	n.Run()
}

func TestCBRLimitsGoodput(t *testing.T) {
	top := topology.Topology{
		Name: "single-cbr",
		Nodes: []topology.Node{
			{ID: topology.AP1, Pos: pt(0, 0), IsAP: true},
			{ID: topology.C1, Pos: pt(10, 0)},
		},
		Flows: []topology.Flow{{Src: topology.C1, Dst: topology.AP1}},
	}
	opts := NS2Options()
	opts.Seed = 2
	opts.Duration = 2 * time.Second
	opts.CBRBitsPerSec = 500_000
	res, err := RunScenario(top, opts)
	if err != nil {
		t.Fatal(err)
	}
	g := res.Goodput(top.Flows[0])
	if g > 1.1*opts.CBRBitsPerSec {
		t.Errorf("goodput %.0f exceeds offered CBR %.0f", g, opts.CBRBitsPerSec)
	}
	if g < 0.6*opts.CBRBitsPerSec {
		t.Errorf("goodput %.0f far below offered CBR on a clean link", g)
	}
}

func TestLargeScaleRunsBothProtocols(t *testing.T) {
	rng := newRand(9)
	top := topology.LargeScale(rng)
	opts := NS2Options()
	opts.Seed = 9
	opts.Duration = time.Second
	opts.CBRBitsPerSec = 3e6

	for _, proto := range []Protocol{ProtocolDCF, ProtocolComap} {
		opts.Protocol = proto
		res, err := RunScenario(top, opts)
		if err != nil {
			t.Fatalf("%v: %v", proto, err)
		}
		if len(res.Flows) != 18 {
			t.Fatalf("%v: %d flows", proto, len(res.Flows))
		}
		if res.Total() == 0 {
			t.Errorf("%v: zero aggregate goodput", proto)
		}
	}
}

func TestPositionErrorStillRuns(t *testing.T) {
	top := topology.ETSweep(28)
	opts := TestbedOptions()
	opts.Seed = 4
	opts.Protocol = ProtocolComap
	opts.PositionErrorMeters = 10
	opts.Duration = time.Second
	res, err := RunScenario(top, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Total() == 0 {
		t.Error("zero goodput with position error")
	}
}
