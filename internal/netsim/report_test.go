package netsim

import (
	"bytes"
	"encoding/json"
	"math"
	"testing"
	"time"

	"repro/internal/topology"
)

func runReportScenario(t *testing.T, slice time.Duration) (*Network, *Report) {
	t.Helper()
	top := topology.ETSweep(28)
	opts := TestbedOptions()
	opts.Seed = 7
	opts.Protocol = ProtocolComap
	opts.Duration = time.Second
	n, err := Build(top, opts)
	if err != nil {
		t.Fatal(err)
	}
	n.StartSlicing(slice)
	res := n.Run()
	return n, n.Report(res)
}

func TestReportBasics(t *testing.T) {
	_, rep := runReportScenario(t, 0)
	if rep.Topology == "" || rep.Protocol != "CO-MAP" {
		t.Errorf("identity fields wrong: %q %q", rep.Topology, rep.Protocol)
	}
	if rep.DurationSec != 1 {
		t.Errorf("duration_sec = %v, want 1", rep.DurationSec)
	}
	if rep.SliceSec != 0 {
		t.Errorf("slice_sec = %v with slicing off, want 0", rep.SliceSec)
	}
	if rep.Engine.EventsFired == 0 || rep.Engine.EventsPerSec <= 0 {
		t.Errorf("engine profile empty: %+v", rep.Engine)
	}
	if len(rep.Flows) != 2 {
		t.Fatalf("flows = %d, want 2", len(rep.Flows))
	}
	for _, f := range rep.Flows {
		if f.GoodputBps <= 0 {
			t.Errorf("flow %d->%d goodput %v, want > 0", f.Src, f.Dst, f.GoodputBps)
		}
		if f.Slices != nil {
			t.Errorf("flow %d->%d has slices with slicing off", f.Src, f.Dst)
		}
	}
}

func TestReportAirtimeSumsToDuration(t *testing.T) {
	_, rep := runReportScenario(t, 0)
	for _, st := range rep.Stations {
		total := 0.0
		for _, sec := range st.AirtimeSec {
			total += sec
		}
		if math.Abs(total-rep.DurationSec) > 1e-6 {
			t.Errorf("station %d airtime sums to %.9f s, want %.9f", st.ID, total, rep.DurationSec)
		}
	}
}

func TestReportLatencyPercentiles(t *testing.T) {
	_, rep := runReportScenario(t, 0)
	sawLatency := false
	for _, st := range rep.Stations {
		if st.LatencyMs == nil {
			continue
		}
		sawLatency = true
		l := st.LatencyMs
		if l.N <= 0 || l.P50 <= 0 || l.P50 > l.P90 || l.P90 > l.P99 || l.P99 > l.Max {
			t.Errorf("station %d latency summary not ordered: %+v", st.ID, l)
		}
	}
	if !sawLatency {
		t.Error("no station reported access latency in a run with traffic")
	}
}

func TestReportSlices(t *testing.T) {
	_, rep := runReportScenario(t, 250*time.Millisecond)
	if rep.SliceSec != 0.25 {
		t.Errorf("slice_sec = %v, want 0.25", rep.SliceSec)
	}
	for _, f := range rep.Flows {
		if len(f.Slices) != 4 {
			t.Fatalf("flow %d->%d has %d slices, want 4", f.Src, f.Dst, len(f.Slices))
		}
		var totalBytes int64
		prevEnd := 0.0
		for _, s := range f.Slices {
			if s.StartSec != prevEnd {
				t.Errorf("slice gap: start %v after end %v", s.StartSec, prevEnd)
			}
			if s.Bytes < 0 {
				t.Errorf("negative slice bytes: %+v", s)
			}
			totalBytes += s.Bytes
			prevEnd = s.EndSec
		}
		if prevEnd != rep.DurationSec {
			t.Errorf("last slice ends at %v, want %v", prevEnd, rep.DurationSec)
		}
		// The slice deltas must reassemble the flow's total goodput.
		got := float64(totalBytes) * 8 / rep.DurationSec
		if math.Abs(got-f.GoodputBps) > 1 {
			t.Errorf("slices sum to %.0f bps, flow total %.0f bps", got, f.GoodputBps)
		}
	}
}

func TestReportJSONRoundTrip(t *testing.T) {
	_, rep := runReportScenario(t, 500*time.Millisecond)
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("report JSON does not round-trip: %v", err)
	}
	if back.Topology != rep.Topology || len(back.Stations) != len(rep.Stations) {
		t.Error("round-tripped report lost content")
	}
	if back.Medium.Counters["tx_starts"] == 0 {
		t.Error("medium snapshot missing tx_starts counter")
	}
}

func TestReportDeterministic(t *testing.T) {
	_, a := runReportScenario(t, 500*time.Millisecond)
	_, b := runReportScenario(t, 500*time.Millisecond)
	// Wall-clock profiling legitimately differs between runs; everything else
	// must be identical.
	a.Engine.WallSec, b.Engine.WallSec = 0, 0
	a.Engine.EventsPerSec, b.Engine.EventsPerSec = 0, 0
	var ja, jb bytes.Buffer
	if err := a.WriteJSON(&ja); err != nil {
		t.Fatal(err)
	}
	if err := b.WriteJSON(&jb); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ja.Bytes(), jb.Bytes()) {
		t.Error("identical seeds produced different reports")
	}
}
