package netsim

import (
	"encoding/json"
	"io"
	"sort"
	"time"

	"repro/internal/frame"
	"repro/internal/mapsvc"
	"repro/internal/metrics"
	"repro/internal/slo"
	"repro/internal/topology"
)

// Report is the machine-readable record of one scenario run: per-flow
// goodput (optionally sliced over time), per-station protocol counters,
// MAC access-latency percentiles, airtime breakdowns and engine
// self-profiling. It is what `comap-sim -report` emits and what experiment
// artifacts embed.
type Report struct {
	Topology    string  `json:"topology"`
	Protocol    string  `json:"protocol"`
	Seed        int64   `json:"seed"`
	DurationSec float64 `json:"duration_sec"`
	// SliceSec is the goodput sampling interval (absent when slicing off).
	SliceSec float64          `json:"slice_sec,omitempty"`
	Engine   EngineReport     `json:"engine"`
	Summary  Summary          `json:"summary"`
	Flows    []FlowReport     `json:"flows"`
	Stations []StationReport  `json:"stations"`
	Medium   metrics.Snapshot `json:"medium"`
	// Faults is the degraded-mode block, present only on fault-injected runs.
	Faults *FaultsReport `json:"faults,omitempty"`
	// ControlPlane is the remote CO-MAP control-plane block, present only on
	// RPC-fault-injected runs (a zero-RPC-fault remote run must stay
	// byte-identical to its in-process golden).
	ControlPlane *ControlPlaneReport `json:"control_plane,omitempty"`
	// ControlPlaneSLO is the per-endpoint latency/error-budget block for the
	// control-plane RPCs, gated exactly like ControlPlane.
	ControlPlaneSLO *slo.Status `json:"control_plane_slo,omitempty"`
}

// ControlPlaneReport records how the mapsvc control plane and its client
// behaved under the injected RPC fault processes: which degradation-ladder
// rungs served decisions, what the retry/breaker machinery did, and how the
// service's snapshot+WAL recovery went. Derived entirely from the sim clock
// and seeded streams, so identical (seed, spec) pairs produce identical
// blocks.
type ControlPlaneReport struct {
	// Spec is the RPC fault specification text, for reproduction.
	Spec string `json:"spec"`
	// Client snapshots the control-plane client: breaker state, ladder rung,
	// per-rung decision counts, retries, timeouts, resyncs.
	Client mapsvc.ClientStatus `json:"client"`
	// Service snapshots the verdict service: ingest/shed, WAL and snapshot
	// activity, crash recoveries, epoch.
	Service mapsvc.ServiceStatus `json:"service"`
}

// FaultsReport records what the fault-injection layer did to the run and how
// the protocol degraded: every value is derived from the sim clock and
// seeded streams, so identical (seed, spec) pairs produce identical blocks.
type FaultsReport struct {
	// Spec is the fault specification text, for reproduction.
	Spec string `json:"spec"`
	// Injected counts fault activations (window openings and armed
	// whole-run processes).
	Injected int `json:"injected"`
	// DroppedReports and DelayedReports count location reports consumed or
	// deferred by the pipeline faults.
	DroppedReports int `json:"dropped_reports"`
	DelayedReports int `json:"delayed_reports"`
	// BeaconsLost counts in-band location beacons consumed by report loss.
	BeaconsLost int `json:"beacons_lost,omitempty"`
	// FallbackDCF / FallbackAdapt are the degraded-mode decision counters
	// (see Summary).
	FallbackDCF   int64 `json:"fallback_dcf"`
	FallbackAdapt int64 `json:"fallback_adapt"`
}

// EngineReport is the simulator's self-profiling block.
type EngineReport struct {
	EventsFired  uint64  `json:"events_fired"`
	PendingAtEnd int     `json:"pending_at_end"`
	WallSec      float64 `json:"wall_sec"`
	// EventsPerSec is the wall-clock event throughput of the run (0 when the
	// wall time is unmeasurably small).
	EventsPerSec float64 `json:"events_per_sec"`
}

// FlowReport is one flow's goodput, with its time slices when slicing was
// enabled.
type FlowReport struct {
	Src        frame.NodeID `json:"src"`
	Dst        frame.NodeID `json:"dst"`
	GoodputBps float64      `json:"goodput_bps"`
	// LatencyMs summarises the flow's MAC access latency (enqueue→ACK at the
	// sender, frames towards this destination only), including the p999 and
	// worst-case tail; absent when no frame completed.
	LatencyMs *LatencyMs     `json:"latency_ms,omitempty"`
	Slices    []GoodputSlice `json:"slices,omitempty"`
}

// GoodputSlice is the goodput of one flow over one time slice.
type GoodputSlice struct {
	StartSec   float64 `json:"start_sec"`
	EndSec     float64 `json:"end_sec"`
	Bytes      int64   `json:"bytes"`
	GoodputBps float64 `json:"goodput_bps"`
}

// StationReport is one station's telemetry snapshot.
type StationReport struct {
	ID   frame.NodeID `json:"id"`
	IsAP bool         `json:"is_ap,omitempty"`
	// Counters is the MAC's protocol counter set (tx.data, ack.timeout, …).
	Counters map[string]int64 `json:"counters,omitempty"`
	// LatencyMs summarises the MAC access latency (enqueue→ACK) of frames
	// that completed successfully; absent when none did.
	LatencyMs *LatencyMs `json:"latency_ms,omitempty"`
	// AirtimeSec partitions the run duration into the MAC's airtime states
	// (tx/wait/busy/nav/defer/backoff/idle); the values sum to the run
	// duration by construction.
	AirtimeSec map[string]float64 `json:"airtime_sec,omitempty"`
	// Metrics is the full registry snapshot (CO-MAP agent counters, ARQ
	// instrumentation, timing histograms, …).
	Metrics metrics.Snapshot `json:"metrics"`
}

// LatencyMs is a latency distribution summary in milliseconds.
type LatencyMs struct {
	N    int     `json:"n"`
	Mean float64 `json:"mean"`
	P50  float64 `json:"p50"`
	P90  float64 `json:"p90"`
	P99  float64 `json:"p99"`
	P999 float64 `json:"p999"`
	Max  float64 `json:"max"`
}

// latencyFromTiming converts a timing snapshot into the report's latency
// summary (nil when empty).
func latencyFromTiming(t metrics.TimingSnapshot) *LatencyMs {
	if t.N == 0 {
		return nil
	}
	return &LatencyMs{
		N: t.N, Mean: t.MeanMs,
		P50: t.P50Ms, P90: t.P90Ms, P99: t.P99Ms, P999: t.P999Ms, Max: t.MaxMs,
	}
}

// Report assembles the run report from the network's telemetry and the
// per-flow results. Call after Run.
func (n *Network) Report(res *Results) *Report {
	r := &Report{
		Topology:    n.Top.Name,
		Protocol:    n.Opts.Protocol.String(),
		Seed:        n.Opts.Seed,
		DurationSec: n.Opts.Duration.Seconds(),
		SliceSec:    n.SliceInterval().Seconds(),
		Summary:     n.Summarize(),
		Medium:      n.MediumMetrics.Snapshot(),
	}
	_, wall := n.runClock()
	r.Engine = EngineReport{
		EventsFired:  n.Eng.EventsFired(),
		PendingAtEnd: n.Eng.Pending(),
		WallSec:      wall.Seconds(),
	}
	if wall > 0 {
		r.Engine.EventsPerSec = float64(r.Engine.EventsFired) / wall.Seconds()
	}

	// Snapshot every station registry once; flow latency tails and station
	// blocks read from the same snapshots.
	snaps := make(map[frame.NodeID]metrics.Snapshot, len(n.Stations))
	for id, st := range n.Stations {
		snaps[id] = st.Metrics.Snapshot()
	}

	for _, fr := range res.Flows {
		fl := FlowReport{Src: fr.Flow.Src, Dst: fr.Flow.Dst, GoodputBps: fr.GoodputBps}
		if t, ok := snaps[fr.Flow.Src].Timings[perDstLatencyKey(fr.Flow.Dst)]; ok {
			fl.LatencyMs = latencyFromTiming(t)
		}
		fl.Slices = n.flowSlices(fr.Flow)
		r.Flows = append(r.Flows, fl)
	}
	sort.Slice(r.Flows, func(i, j int) bool {
		if r.Flows[i].Src != r.Flows[j].Src {
			return r.Flows[i].Src < r.Flows[j].Src
		}
		return r.Flows[i].Dst < r.Flows[j].Dst
	})

	ids := make([]frame.NodeID, 0, len(n.Stations))
	for id := range n.Stations {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		st := n.Stations[id]
		snap := snaps[id]
		sr := StationReport{
			ID:       id,
			IsAP:     st.Node.IsAP,
			Counters: st.MAC.Stats().Snapshot(),
			Metrics:  snap,
		}
		if len(sr.Counters) == 0 {
			sr.Counters = nil
		}
		if lat, ok := snap.Timings["mac.access_latency"]; ok {
			sr.LatencyMs = latencyFromTiming(lat)
		}
		sr.AirtimeSec = snap.AirtimeSec["mac"]
		r.Stations = append(r.Stations, sr)
	}
	if n.injector != nil {
		fr := &FaultsReport{
			Spec:           n.Opts.Faults.String(),
			Injected:       n.injector.Injected(),
			DroppedReports: n.Locs.DroppedReports(),
			DelayedReports: n.Locs.DelayedReports(),
			FallbackDCF:    r.Summary.FallbackDCF,
			FallbackAdapt:  r.Summary.FallbackAdapt,
		}
		for _, id := range ids {
			if lx := n.Stations[id].Locx; lx != nil {
				fr.BeaconsLost += lx.BeaconsLost()
			}
		}
		r.Faults = fr
	}
	if n.Opts.RPCFaults != nil && n.MapClient != nil {
		r.ControlPlane = &ControlPlaneReport{
			Spec:    n.Opts.RPCFaults.String(),
			Client:  n.MapClient.Status(),
			Service: n.MapService.Status(),
		}
		if n.SLO != nil {
			st := n.SLO.Status()
			r.ControlPlaneSLO = &st
		}
	}
	return r
}

// perDstLatencyKey names the MAC's per-destination access-latency timing.
func perDstLatencyKey(dst frame.NodeID) string {
	return "mac.access_latency.to." + itoaU16(dst)
}

func itoaU16(v frame.NodeID) string {
	if v == 0 {
		return "0"
	}
	var b [5]byte
	i := len(b)
	for v > 0 {
		i--
		b[i] = byte('0' + v%10)
		v /= 10
	}
	return string(b[i:])
}

// flowSlices converts a flow's cumulative byte series into per-slice deltas,
// closing the final (possibly partial) slice against the end-of-run meter
// reading.
func (n *Network) flowSlices(f topology.Flow) []GoodputSlice {
	s := n.sliceSeries[f]
	if s == nil {
		return nil
	}
	var out []GoodputSlice
	prevT := time.Duration(0)
	prevB := int64(0)
	emit := func(t time.Duration, b int64) {
		if t <= prevT {
			return
		}
		out = append(out, GoodputSlice{
			StartSec:   prevT.Seconds(),
			EndSec:     t.Seconds(),
			Bytes:      b - prevB,
			GoodputBps: float64(b-prevB) * 8 / (t - prevT).Seconds(),
		})
		prevT, prevB = t, b
	}
	at, values := s.Samples()
	for i := range at {
		emit(at[i], int64(values[i]))
	}
	// The run may end between ticks; close the partial slice from the final
	// meter reading.
	final := n.Stations[f.Dst].deliveredFrom(f.Src).Bytes()
	emit(n.Opts.Duration, final)
	return out
}

// WriteJSON writes the report as indented JSON.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
