package netsim

import (
	"repro/internal/frame"
)

// Network implements faults.ChurnController: station leave/re-join
// transitions driven by injected churn processes.
//
// The churn model is application-level: a departed station stops offering
// traffic (its own flows and the flows other stations run towards it pause),
// disappears from the location substrate, and every peer drops the cached
// co-occurrence verdicts and observed-link state involving it — per-node
// invalidation, not a full map rebuild. The radio front-end stays
// registered on the medium (a transceiver cannot be unplugged mid-run
// without perturbing unrelated shadowing streams), which is equivalent to a
// station that powered down its traffic and localization but not its NIC.

// StationLeave takes the station off the network. Unknown or already
// departed stations are a no-op.
func (n *Network) StationLeave(id frame.NodeID) {
	st, ok := n.Stations[id]
	if !ok || n.departed == nil || n.departed[id] {
		return
	}
	n.departed[id] = true

	if st.Endpoint != nil {
		st.Endpoint.PauseStreams()
	}
	if st.Peer != nil {
		st.Peer.Pause()
	}
	if st.Locx != nil {
		st.Locx.Stop()
	}
	n.Locs.Deregister(id)
	if n.MapClient != nil {
		// Mirror the per-node invalidation on the control plane: the
		// service's verdict cache drops every entry involving the departed
		// station, exactly like each agent's OnStationChanged below.
		n.MapClient.InvalidateNode(id)
	}

	// Visit peers in topology order so churn transitions are deterministic.
	for _, node := range n.Top.Nodes {
		if node.ID == id {
			continue
		}
		other := n.Stations[node.ID]
		if other.Endpoint != nil {
			other.Endpoint.PauseStreamsTo(id)
		}
		if other.Peer != nil {
			other.Peer.PauseTo(id)
		}
		if other.Locx != nil {
			other.Locx.Forget(id)
		}
		if other.Agent != nil {
			other.Agent.OnStationChanged(id)
		}
	}
}

// StationRejoin brings a departed station back: it re-registers its position
// (forcing a fresh report), resumes traffic in both directions and has every
// peer invalidate its verdicts about the station again — it may have moved
// while away.
func (n *Network) StationRejoin(id frame.NodeID) {
	st, ok := n.Stations[id]
	if !ok || n.departed == nil || !n.departed[id] {
		return
	}
	delete(n.departed, id)

	if !n.Locs.ForceReport(id) {
		// Deregistered while away: re-register at the radio's current true
		// position (Register issues the fresh report).
		n.Locs.Register(id, n.Medium.Node(id).Position())
	}
	if n.MapClient != nil {
		// The station may have moved while away: drop its control-plane
		// verdicts again (the re-registration above already streamed its
		// fresh fix through the registry's commit hook).
		n.MapClient.InvalidateNode(id)
	}
	if st.Locx != nil {
		st.Locx.Start()
	}
	if st.Endpoint != nil {
		st.Endpoint.ResumeStreams()
	}
	if st.Peer != nil {
		st.Peer.Resume()
	}

	for _, node := range n.Top.Nodes {
		if node.ID == id {
			continue
		}
		other := n.Stations[node.ID]
		if other.Endpoint != nil {
			other.Endpoint.ResumeStreamsTo(id)
		}
		if other.Peer != nil {
			other.Peer.ResumeTo(id)
		}
		if other.Agent != nil {
			other.Agent.OnStationChanged(id)
		}
	}
}

// Departed reports whether the station is currently off the network.
func (n *Network) Departed(id frame.NodeID) bool { return n.departed[id] }
