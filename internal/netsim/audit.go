package netsim

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/audit"
	"repro/internal/frame"
	"repro/internal/sim"
	"repro/internal/topology"
)

// ManifestFor builds the ledger manifest for a scenario: the run's identity
// (scenario name, seed) plus the fingerprints that make two ledgers
// comparable — a digest over every causal Options knob except the seed, and
// a digest over the topology's nodes and flows. Exported so other artifact
// writers (comap-bench) can stamp the same provenance block.
func ManifestFor(scenario string, top topology.Topology, opts Options) audit.Manifest {
	return audit.Manifest{
		Scenario:     scenario,
		Seed:         opts.Seed,
		OptionsFP:    fmt.Sprintf("%016x", optionsFingerprint(opts)),
		Topology:     top.Name,
		TopologyHash: fmt.Sprintf("%016x", topologyHash(top)),
	}
}

// optionsFingerprint digests every Options field that shapes the event
// stream, excluding Seed (ledgers for different seeds of the same scenario
// cell share a fingerprint) and the observational attachments (Trace,
// Profile, Audit — they must not change the fingerprint, or auditing a run
// would make it incomparable with itself).
func optionsFingerprint(opts Options) uint64 {
	// Normalize exactly as Build does, so a manifest computed from raw
	// options matches one computed inside Build.
	if opts.Header == 0 {
		opts.Header = HeaderEmbedded
	}
	h := audit.NewHasher()
	h.Int(int(opts.Protocol))
	h.Int(int(opts.Header))
	// PHY, propagation and CO-MAP model are pointer-free value structs;
	// their %+v rendering is deterministic and covers every field.
	h.String(fmt.Sprintf("%+v", opts.PHY))
	h.String(fmt.Sprintf("%+v", opts.Prop))
	h.String(fmt.Sprintf("%+v", opts.ComapModel))
	h.Float64(opts.TxPowerDBm)
	h.Float64(opts.CCAThresholdDBm)
	h.Int(opts.FixedCW)
	h.Int(opts.RTSThresholdBytes)
	h.Bool(opts.RateAdaptation)
	h.Int(opts.PayloadBytes)
	h.Float64(opts.CBRBitsPerSec)
	h.Bool(opts.AdaptTable != nil)
	h.Int(opts.SRWindow)
	h.Bool(opts.DisablePersistentConcurrency)
	h.Float64(opts.PositionErrorMeters)
	h.Bool(opts.InBandLocation)
	h.String(opts.Faults.String())
	h.Bool(opts.LocationHealth != nil)
	if opts.LocationHealth != nil {
		h.String(fmt.Sprintf("%+v", *opts.LocationHealth))
	}
	// ComapRemote is deliberately NOT hashed: a zero-RPC-fault remote run is
	// observationally identical to the in-process run, and its ledger must
	// stay comparable with (and equal to) the local golden. RPC fault
	// processes do shape the event stream, so they fingerprint when present.
	if opts.RPCFaults != nil {
		h.String("rpc:" + opts.RPCFaults.String())
	}
	// Hashed only when set, so pre-existing manifests keep their
	// fingerprints (paper-scale runs never override the margin).
	if opts.AudibilityMarginDB != 0 {
		h.Float64(opts.AudibilityMarginDB)
	}
	h.Int64(int64(opts.Duration))
	return h.Sum()
}

// topologyHash digests the topology: name, nodes (id, position, role) and
// flows, all in declaration order (topology literals are deterministic).
func topologyHash(top topology.Topology) uint64 {
	h := audit.NewHasher()
	h.String(top.Name)
	h.Int(len(top.Nodes))
	for _, n := range top.Nodes {
		h.Int(int(n.ID))
		h.Float64(n.Pos.X)
		h.Float64(n.Pos.Y)
		h.Bool(n.IsAP)
	}
	h.Int(len(top.Flows))
	for _, f := range top.Flows {
		h.Int(int(f.Src))
		h.Int(int(f.Dst))
	}
	// The shard world participates only when present, so the hashes of all
	// paper-scale (gridless) topologies are unchanged.
	if top.World != nil {
		o := top.World.Origin()
		h.Float64(o.X)
		h.Float64(o.Y)
		h.Float64(top.World.SizeMeters())
		h.Int(top.World.Order())
	}
	return h.Sum()
}

// registerAuditSources wires the deep protocol-state digests: the medium,
// every station's MAC (and CO-MAP agent) in ascending node-ID order, and
// the engine's RNG stream cursors.
func (n *Network) registerAuditSources(ledger *audit.Ledger) {
	ledger.RegisterDeep("channel", n.Medium.DigestState)
	ids := make([]frame.NodeID, 0, len(n.Stations))
	for id := range n.Stations {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		st := n.Stations[id]
		ledger.RegisterDeep(fmt.Sprintf("mac.%d", id), st.MAC.DigestState)
		if st.Agent != nil {
			ledger.RegisterDeep(fmt.Sprintf("comap.%d", id), st.Agent.DigestState)
		}
	}
	eng := n.Eng
	ledger.RegisterDeep("rng", func(h *audit.Hasher) {
		cursors := eng.RNGCursors()
		names := make([]string, 0, len(cursors))
		for name := range cursors {
			names = append(names, name)
		}
		sort.Strings(names)
		h.Int(len(names))
		for _, name := range names {
			h.String(name)
			h.Uint64(cursors[name])
		}
	})
}

// nondetTickInterval paces the test-only nondeterminism injection.
const nondetTickInterval = time.Millisecond

// startNondetInjection implements AuditConfig.InjectNondet: a recurring
// tick that ranges over the Stations map — Go randomizes map iteration
// order per ranging — and schedules one zero-delay no-op event per station
// in that order. The no-ops never touch protocol state, so the run's
// report stays byte-identical; but the owner sequence inside each tick's
// batch follows the iteration order, so two runs' TagComap ledger chains
// diverge almost immediately. This reproduces, under control, exactly the
// class of map-iteration bug PR 5 debugged by hand — the bisect acceptance
// test localizes it.
func (n *Network) startNondetInjection() {
	var tick func()
	tick = func() {
		for id := range n.Stations {
			n.Eng.ScheduleTagged(n.Eng.Now(), sim.TagComap, int32(id), func() {})
		}
		n.Eng.AfterTagged(nondetTickInterval, sim.TagComap, sim.NoOwner, tick)
	}
	n.Eng.AfterTagged(nondetTickInterval, sim.TagComap, sim.NoOwner, tick)
}
