// Package netsim assembles complete simulated WLANs: it takes a topology and
// a protocol configuration and wires up the medium, MACs, CO-MAP agents,
// location service and traffic sources, then runs the scenario and collects
// per-flow goodput. The experiment harness (internal/experiments) and the
// examples are thin layers over this package.
package netsim

import (
	"fmt"
	"math"
	"sync"
	"time"

	"repro/internal/audit"
	"repro/internal/bianchi"
	"repro/internal/channel"
	"repro/internal/comap"
	"repro/internal/faults"
	"repro/internal/frame"
	"repro/internal/geom"
	"repro/internal/loc"
	"repro/internal/locx"
	"repro/internal/mac"
	"repro/internal/mapsvc"
	"repro/internal/metrics"
	"repro/internal/phy"
	"repro/internal/prof"
	"repro/internal/radio"
	"repro/internal/rate"
	"repro/internal/sim"
	"repro/internal/slo"
	"repro/internal/stats"
	"repro/internal/topology"
	"repro/internal/trace"
	"repro/internal/traffic"
)

// Protocol selects the channel-access protocol under test.
type Protocol int

// Protocol values.
const (
	// ProtocolDCF is the baseline 802.11 DCF (no location input).
	ProtocolDCF Protocol = iota + 1
	// ProtocolComap is the full CO-MAP stack: discovery headers,
	// co-occurrence map concurrency, selective-repeat ARQ and (optionally)
	// hidden-terminal-aware packet-size/CW adaptation.
	ProtocolComap
)

// String implements fmt.Stringer.
func (p Protocol) String() string {
	switch p {
	case ProtocolDCF:
		return "DCF"
	case ProtocolComap:
		return "CO-MAP"
	default:
		return fmt.Sprintf("Protocol(%d)", int(p))
	}
}

// HeaderMode selects how CO-MAP's discovery header is realised (paper §V).
type HeaderMode int

// HeaderMode values.
const (
	// HeaderEmbedded is "method one": an extra FCS after the MAC addresses
	// lets the PHY pass (src, dst) up before the payload arrives; costs
	// 4 bytes.
	HeaderEmbedded HeaderMode = iota + 1
	// HeaderFrame is "method two" (the testbed implementation): a separate
	// small header packet precedes every data frame.
	HeaderFrame
)

// Options parameterises a scenario run.
type Options struct {
	Seed     int64
	Protocol Protocol
	// Header selects the discovery-header realisation for CO-MAP (defaults
	// to HeaderEmbedded).
	Header HeaderMode

	// PHY and radio environment.
	PHY             phy.Params
	Prop            radio.LogNormal
	TxPowerDBm      float64
	CCAThresholdDBm float64
	// AudibilityMarginDB overrides the channel's audibility floor (noise −
	// margin) used to prune inaudible pairs; 0 keeps the channel default.
	// City-scale runs tighten it so the sparse neighbor sets stay local.
	AudibilityMarginDB float64

	// FixedCW > 0 selects a constant contention window; 0 selects binary
	// exponential backoff.
	FixedCW int
	// RTSThresholdBytes enables the RTS/CTS handshake (a hidden-terminal
	// baseline the paper compares against conceptually; 0 = disabled as in
	// all its experiments). Only meaningful with ProtocolDCF.
	RTSThresholdBytes int
	// RateAdaptation enables the Minstrel controller over PHY.Rates;
	// otherwise the lowest rate is used throughout.
	RateAdaptation bool

	// PayloadBytes is the application payload per frame (before CO-MAP
	// adaptation).
	PayloadBytes int
	// CBRBitsPerSec limits each flow's offered load; 0 means saturated.
	CBRBitsPerSec float64

	// CO-MAP parameters (ignored for ProtocolDCF).
	ComapModel comap.Model
	// AdaptTable enables hidden-terminal packet-size/CW adaptation.
	AdaptTable *bianchi.AdaptationTable
	// SRWindow is the selective-repeat window (0 = default).
	SRWindow int
	// DisablePersistentConcurrency turns off the paper's testbed-style
	// carrier-sense bypass, leaving only per-header chained joins — an
	// ablation knob for the design-choice benchmarks.
	DisablePersistentConcurrency bool
	// PositionErrorMeters injects uniform-disc localization error.
	PositionErrorMeters float64
	// InBandLocation exchanges positions over the simulated air (package
	// locx) instead of the oracle registry: CO-MAP agents then work from
	// learned, possibly stale neighbor tables, and the exchange's frames
	// cost real airtime.
	InBandLocation bool

	// Faults activates the fault-injection layer: the spec's processes drive
	// location-report loss/delay, localization outages, bias bursts, station
	// churn and channel events, all off the sim clock and seeded streams so
	// faulted runs stay bit-reproducible.
	Faults *faults.Spec
	// LocationHealth overrides CO-MAP's location-health policy. nil selects
	// comap.DefaultHealthPolicy() when Faults is set (so degraded input gets
	// degraded-mode consumption by default) and disables health gating
	// otherwise; a zero-valued policy explicitly disables it.
	LocationHealth *comap.HealthPolicy
	// ComapRemote routes every CO-MAP verdict miss through the mapsvc
	// control plane (location ingest, sharded verdict cache, snapshot+WAL
	// crash model) over the deterministic in-process transport. With a nil
	// RPCFaults spec every call completes inline on the sim clock — no extra
	// events, no extra RNG draws — so remote runs are bit-identical to
	// in-process CO-MAP (asserted by the golden-report suite). Requires
	// ProtocolComap and the oracle registry (not InBandLocation).
	ComapRemote bool
	// RPCFaults injects control-plane fault processes (rpcloss, rpcdelay,
	// rpcpartition, rpcrestart) against the remote verdict path: calls gain
	// fates drawn from seeded streams, restart windows crash and recover the
	// service, and the client walks the degradation ladder. Requires
	// ComapRemote; non-RPC kinds belong in Faults.
	RPCFaults *faults.Spec

	// Trace, when set, receives the full frame-lifecycle event stream of the
	// run: PHY rx/txdone per node, channel txstart, MAC decision events
	// (enqueue/backoff/tx/ack/timeout/drop, exposed-terminal joins) and
	// CO-MAP decision events (concurrency grant/deny, HT adaptation).
	// Tracing is purely observational — traced runs are bit-identical to
	// untraced ones.
	Trace trace.Sink
	// TraceEnergy additionally records every aggregate-energy change per
	// node (very verbose). Ignored unless Trace is set.
	TraceEnergy bool

	// Profile, when set, attaches the attribution profiler and flight
	// recorder (internal/prof) to the engine's dispatch loop. Profiling is
	// purely observational — profiled runs are bit-identical to unprofiled
	// ones (asserted by the golden-report suite).
	Profile *prof.Config

	// Audit, when set, attaches the determinism ledger (internal/audit):
	// per-time-slice digest chains over the dispatch stream attributed by
	// subsystem tag, periodic deep digests of channel/MAC/CO-MAP state and
	// RNG stream cursors, headed by a run manifest. Auditing is purely
	// observational — audited runs are bit-identical to unaudited ones
	// (asserted by the golden-ledger suite). Call Network.Audit.Finish via
	// Run (automatic) and check Network.Audit.Err after the run when a
	// sink is configured.
	Audit *AuditConfig

	// Duration of the measured run.
	Duration time.Duration
}

// AuditConfig parameterises the determinism ledger attached by Build.
type AuditConfig struct {
	audit.Config
	// Scenario names the run in the ledger manifest; comparisons refuse
	// ledgers whose scenario names differ.
	Scenario string
}

// TestbedOptions returns the paper's testbed configuration (§VI-A):
// 802.11b DSSS rates, 0 dBm, α=2.9, σ=4 dB, Tcs=-81 dBm, Minstrel enabled.
// The rate set is limited to DSSS because the paper's reported testbed
// goodputs (1–4.5 Mbps across 8–36 m at 0 dBm) correspond to 802.11b-class
// operation; see EXPERIMENTS.md.
func TestbedOptions() Options {
	p := phy.DSSS()
	prop := radio.NewLogNormal2400(2.9, 4)
	return Options{
		Protocol:        ProtocolDCF,
		PHY:             p,
		Prop:            prop,
		TxPowerDBm:      0,
		CCAThresholdDBm: -81,
		FixedCW:         32,
		RateAdaptation:  true,
		PayloadBytes:    1000,
		ComapModel: comap.Model{
			Prop:           prop,
			TxPowerDBm:     0,
			TSIRdB:         4, // lowest-rate threshold, as in the paper
			TPRR:           0.8,
			TcsDBm:         -81,
			CSMissProb:     0.9,
			SensitivityDBm: -94,
		},
		Duration: 5 * time.Second,
	}
}

// NS2Options returns the paper's Table I configuration: 6 Mbps fixed rate,
// 20 dBm, α=3.3, σ=5 dB, T_PRR=95%, Tcs=-80 dBm, T_SIR=10.
func NS2Options() Options {
	p := phy.NS2Table1()
	prop := radio.NewLogNormal2400(3.3, 5)
	return Options{
		Protocol:        ProtocolDCF,
		PHY:             p,
		Prop:            prop,
		TxPowerDBm:      20,
		CCAThresholdDBm: -80,
		FixedCW:         32,
		RateAdaptation:  false,
		PayloadBytes:    1000,
		ComapModel: comap.Model{
			Prop:           prop,
			TxPowerDBm:     20,
			TSIRdB:         10,
			TPRR:           0.95,
			TcsDBm:         -80,
			CSMissProb:     0.9,
			SensitivityDBm: -94,
		},
		Duration: 5 * time.Second,
	}
}

// CityOptions returns the city-scale configuration used with
// topology.CityScale worlds: 6 Mbps fixed rate at 30 dBm under a dense-urban
// α=4, σ=2 dB channel. The tight audibility margin (6 dB under the noise
// floor) keeps every station's sparse neighbor set to its local cell
// neighborhood — the regime the spatial shard grid is designed for — while
// the 10–80 m uplinks stay comfortably above sensitivity.
func CityOptions() Options {
	p := phy.NS2Table1()
	prop := radio.NewLogNormal2400(4.0, 2.0)
	return Options{
		Protocol:           ProtocolDCF,
		PHY:                p,
		Prop:               prop,
		TxPowerDBm:         30,
		CCAThresholdDBm:    -80,
		AudibilityMarginDB: 6,
		FixedCW:            32,
		RateAdaptation:     false,
		PayloadBytes:       1000,
		ComapModel: comap.Model{
			Prop:           prop,
			TxPowerDBm:     30,
			TSIRdB:         10,
			TPRR:           0.95,
			TcsDBm:         -80,
			CSMissProb:     0.9,
			SensitivityDBm: -94,
		},
		Duration: 5 * time.Second,
	}
}

// Station is one assembled node.
type Station struct {
	Node     topology.Node
	MAC      *mac.MAC
	Agent    *comap.Agent    // nil for DCF
	Endpoint *comap.Endpoint // nil for DCF
	Peer     *traffic.Peer   // nil for CO-MAP
	Locx     *locx.Node      // nil unless Options.InBandLocation
	// Metrics is the station's telemetry registry: MAC access latency and
	// airtime clock, CO-MAP agent counters and ARQ instrumentation all land
	// here. Always non-nil after Build.
	Metrics *metrics.Registry
}

// providerRef lets the CO-MAP agent's location provider be swapped after
// construction (the in-band exchange node needs the MAC, which needs the
// agent).
type providerRef struct{ p loc.Provider }

func (r *providerRef) Position(id frame.NodeID) (geom.Point, bool) {
	if r.p == nil {
		return geom.Point{}, false
	}
	return r.p.Position(id)
}

// Fix forwards fix metadata (report age, error radius) so the agent's
// location-health model sees the real pipeline state through the
// indirection; a provider without metadata reads as an always-fresh oracle.
func (r *providerRef) Fix(id frame.NodeID) (loc.Fix, bool) {
	if fp, ok := r.p.(loc.FixProvider); ok {
		return fp.Fix(id)
	}
	p, ok := r.Position(id)
	return loc.Fix{Pos: p, ReportedAt: -1}, ok
}

// deliveredFrom returns the per-source goodput meter of this station's sink.
func (s *Station) deliveredFrom(src frame.NodeID) *stats.GoodputMeter {
	if s.Endpoint != nil {
		return s.Endpoint.DeliveredFrom(src)
	}
	return s.Peer.DeliveredFrom(src)
}

// Network is an assembled, runnable scenario.
type Network struct {
	Eng      *sim.Engine
	Medium   *channel.Medium
	Top      topology.Topology
	Opts     Options
	Stations map[frame.NodeID]*Station
	Locs     *loc.Registry
	// MediumMetrics holds the channel-level telemetry (busy/idle airtime,
	// collision overlaps). Always non-nil after Build.
	MediumMetrics *metrics.Registry
	// Prof is the attribution profiler (nil unless Options.Profile is set).
	Prof *prof.Profiler
	// Audit is the determinism ledger (nil unless Options.Audit is set).
	Audit *audit.Ledger

	providers map[frame.NodeID]*providerRef

	// Remote CO-MAP control-plane stack (nil unless Options.ComapRemote).
	MapService   *mapsvc.Service
	MapClient    *mapsvc.Client
	mapTransport *mapsvc.SimTransport
	// SLO tracks per-endpoint control-plane latency/error objectives in
	// virtual time (nil unless Options.ComapRemote).
	SLO *slo.Tracker

	// Fault-injection state (nil/empty without Options.Faults/RPCFaults).
	injector *faults.Injector
	departed map[frame.NodeID]bool

	// Goodput slicing (see StartSlicing) and engine self-profiling.
	sampler     *metrics.Sampler
	sliceSeries map[topology.Flow]*metrics.Series

	// Run-state tracking for the live observability plane (progress.go).
	// runMu guards runState, runStart and wall so Progress can be read from
	// scrape goroutines while the run is in flight.
	runMu    sync.Mutex
	runState string
	runStart time.Time
	wall     time.Duration
}

// Build assembles the network for the given topology and options.
func Build(top topology.Topology, opts Options) (*Network, error) {
	if err := top.Validate(); err != nil {
		return nil, err
	}
	if opts.Protocol != ProtocolDCF && opts.Protocol != ProtocolComap {
		return nil, fmt.Errorf("netsim: invalid protocol %d", opts.Protocol)
	}
	if opts.Duration <= 0 {
		return nil, fmt.Errorf("netsim: non-positive duration")
	}
	if opts.Faults != nil {
		byID := make(map[frame.NodeID]bool, len(top.Nodes))
		for _, node := range top.Nodes {
			byID[node.ID] = true
		}
		for _, p := range opts.Faults.Procs {
			if p.HasNode && !byID[frame.NodeID(p.Node)] {
				return nil, fmt.Errorf("netsim: fault %s targets unknown node %d", p.Kind, p.Node)
			}
		}
		if opts.Faults.HasRPC() {
			return nil, fmt.Errorf("netsim: rpc fault kinds belong in RPCFaults, not Faults")
		}
	}
	if opts.RPCFaults != nil {
		if opts.RPCFaults.HasNonRPC() {
			return nil, fmt.Errorf("netsim: RPCFaults accepts only rpc fault kinds (rpcloss, rpcdelay, rpcpartition, rpcrestart)")
		}
		if !opts.ComapRemote {
			return nil, fmt.Errorf("netsim: RPCFaults requires ComapRemote (there is no control plane to fault)")
		}
	}
	if opts.ComapRemote {
		if opts.Protocol != ProtocolComap {
			return nil, fmt.Errorf("netsim: ComapRemote requires ProtocolComap")
		}
		if opts.InBandLocation {
			return nil, fmt.Errorf("netsim: ComapRemote is incompatible with InBandLocation (the control plane mirrors the oracle registry)")
		}
	}

	if opts.Header == 0 {
		opts.Header = HeaderEmbedded
	}

	// Location-health policy: explicit override, or the default whenever
	// faults are injected (degraded input gets degraded-mode consumption).
	health := comap.HealthPolicy{}
	if opts.LocationHealth != nil {
		health = *opts.LocationHealth
	} else if opts.Faults != nil || opts.RPCFaults != nil {
		health = comap.DefaultHealthPolicy()
	}

	eng := sim.New(opts.Seed)
	var ledger *audit.Ledger
	if opts.Audit != nil {
		// RNG accounting must be armed before the first stream is created
		// (the medium draws "channel.shadowing" a few lines down), so every
		// stream's cursor lands in the deep digests.
		eng.EnableRNGAccounting()
		ledger = audit.NewLedger(opts.Audit.Config, ManifestFor(opts.Audit.Scenario, top, opts))
	}
	var profiler *prof.Profiler
	if opts.Profile != nil {
		profiler = prof.New(*opts.Profile)
	}
	// Compose dispatch observers without ever storing a typed nil in the
	// Observer interface.
	switch {
	case profiler != nil && ledger != nil:
		eng.SetObserver(sim.TeeObservers(profiler, ledger))
	case profiler != nil:
		eng.SetObserver(profiler)
	case ledger != nil:
		eng.SetObserver(ledger)
	}
	medium := channel.NewMedium(eng, opts.Prop, opts.PHY.NoiseFloorDBm)
	if top.World != nil {
		medium.SetGrid(top.World)
	}
	if opts.AudibilityMarginDB != 0 {
		medium.AudibilityMarginDB = opts.AudibilityMarginDB
	}
	if opts.Protocol == ProtocolComap && opts.Header == HeaderEmbedded {
		p := opts.PHY
		medium.HeaderIndicationAt = func(r phy.Rate) time.Duration {
			// PLCP preamble + MAC header + the extra 4-byte header FCS.
			return p.PreambleHeader + p.PayloadAirtime(r, phy.MACHeaderBytes+4)
		}
	}
	n := &Network{
		Eng:           eng,
		Medium:        medium,
		Top:           top,
		Opts:          opts,
		Stations:      make(map[frame.NodeID]*Station, len(top.Nodes)),
		MediumMetrics: metrics.NewRegistry(),
		Prof:          profiler,
		providers:     make(map[frame.NodeID]*providerRef, len(top.Nodes)),
	}
	medium.SetMetrics(n.MediumMetrics)

	// Location service: every node reports its position once at start-up;
	// the update threshold follows the paper's rule (half the tolerable
	// inaccuracy, with a 1 m floor).
	threshold := opts.PositionErrorMeters / 2
	if threshold < 1 {
		threshold = 1
	}
	n.Locs = loc.NewRegistry(eng.RNG("loc"), opts.PositionErrorMeters, threshold)
	n.Locs.SetClock(eng.Now)
	n.Locs.SetScheduler(func(d time.Duration, fn func()) {
		eng.AfterTagged(d, sim.TagLocx, sim.NoOwner, fn)
	})

	// Remote CO-MAP control plane: service, deterministic transport and the
	// shared client are assembled before the stations register, so the
	// registry's commit hooks stream every fix — including the initial
	// positions — into the service's WAL.
	if opts.ComapRemote {
		judge := comap.Judge{Model: opts.ComapModel, Rates: opts.PHY.Rates, Health: health, Now: eng.Now}
		svc := mapsvc.NewService(mapsvc.ServiceConfig{
			Judge: judge,
			Store: mapsvc.NewMemStore(),
			Now:   eng.Now,
		})
		n.mapTransport = mapsvc.NewSimTransport(eng, svc)
		ccfg := mapsvc.DefaultClientConfig()
		ccfg.Now = eng.Now
		ccfg.After = func(d time.Duration, fn func()) func() {
			h := eng.AfterTagged(d, sim.TagFaults, sim.NoOwner, fn)
			return func() { eng.Cancel(h) }
		}
		if opts.RPCFaults != nil {
			// The backoff-jitter stream exists only on fault-enabled runs, so
			// a zero-fault remote run adds no stream to the audit digests.
			ccfg.Jitter = eng.RNG("mapsvc.client")
		}
		client := mapsvc.NewClient(n.mapTransport, ccfg, 0)
		client.SetJudge(judge)
		client.SetFixes(func(id frame.NodeID) (loc.Fix, bool) { return n.Locs.Fix(id) })
		client.SetTrace(trace.NewEmitter(eng, frame.Broadcast, opts.Trace))
		// Causal run fingerprint for the X-Comap-Run header and stitched
		// spans: options digest + seed, matching the audit manifest.
		client.SetRun(fmt.Sprintf("%016x-%d", optionsFingerprint(opts), opts.Seed))
		// The SLO tracker and server-side event stream are pure observers:
		// they draw no RNG and schedule no events, so a zero-fault traced
		// run stays bit-identical to an untraced one.
		n.SLO = slo.NewTracker(eng.Now, slo.DefaultObjectives()...)
		client.SetSLO(n.SLO)
		if em := trace.NewEmitter(eng, frame.Broadcast, opts.Trace); em != nil {
			svc.SetEvents(em.Emit)
		}
		client.SetResync(func() []mapsvc.IngestRecord {
			// Full-registry dump in topology (ID) order: the deterministic
			// re-seed after a detected service restart.
			recs := make([]mapsvc.IngestRecord, 0, len(top.Nodes))
			for _, node := range top.Nodes {
				if fix, ok := n.Locs.Fix(node.ID); ok {
					recs = append(recs, mapsvc.IngestRecord{Op: mapsvc.RecReport, Node: node.ID, Fix: fix})
				}
			}
			return recs
		})
		client.AdoptEpoch(svc.Epoch())
		n.Locs.SetOnCommit(client.IngestFix)
		n.Locs.SetOnDeregister(client.IngestDeregister)
		n.MapService = svc
		n.MapClient = client
	}

	for _, node := range top.Nodes {
		n.Locs.Register(node.ID, node.Pos)
	}
	if health.Enabled() {
		// Keepalive re-reports bound every fix's age while the pipeline is
		// healthy, so the health gate only trips during genuine loss, delay
		// or outage windows.
		n.Locs.StartHeartbeat(locHeartbeatInterval)
	}

	senders := top.Senders()

	for _, node := range top.Nodes {
		node := node
		tr := medium.AddNode(node.ID, node.Pos, opts.TxPowerDBm, nil)
		cfg := mac.Config{
			PHY:               opts.PHY,
			CCAThresholdDBm:   opts.CCAThresholdDBm,
			FixedCW:           opts.FixedCW,
			RTSThresholdBytes: opts.RTSThresholdBytes,
		}
		if opts.RateAdaptation {
			minstrel := rate.NewMinstrel(opts.PHY.Rates,
				eng.RNG(fmt.Sprintf("minstrel.%d", node.ID)))
			minstrel.SetFrameTime(frameTimeEstimator(opts))
			cfg.Rates = minstrel
		}
		st := &Station{Node: node, Metrics: metrics.NewRegistry()}
		cfg.Metrics = st.Metrics
		cfg.Trace = opts.Trace
		if opts.Protocol == ProtocolComap {
			provider := &providerRef{p: n.Locs}
			n.providers[node.ID] = provider
			agent := comap.NewAgent(node.ID, opts.ComapModel, provider)
			agent.SetRates(opts.PHY.Rates)
			if health.Enabled() {
				agent.SetHealth(health, eng.Now)
			}
			agent.SetMetrics(st.Metrics)
			agent.SetTrace(trace.NewEmitter(eng, node.ID, opts.Trace))
			if n.MapClient != nil {
				agent.SetRemote(n.MapClient)
			}
			cfg.SendDiscoveryHeader = opts.Header == HeaderFrame
			cfg.NoRetransmit = true
			cfg.Concurrency = agent
			cfg.RateCap = agent
			st.Agent = agent
		}
		m := mac.New(eng, tr, cfg)
		tr.SetListener(m)
		st.MAC = m
		if opts.Protocol == ProtocolComap {
			st.Endpoint = comap.NewEndpoint(eng, m, opts.SRWindow)
			st.Endpoint.SetMetrics(st.Metrics)
		} else {
			st.Peer = traffic.NewPeer(eng, m)
		}
		n.Stations[node.ID] = st
	}

	// Persistent concurrency (CO-MAP testbed mode): each station observes
	// the links announced by discovery headers and bypasses carrier sense
	// while every active foreign link is coexistence-validated for all of
	// its own destinations.
	if opts.Protocol == ProtocolComap {
		dstsBySrc := make(map[frame.NodeID][]frame.NodeID)
		for _, f := range top.Flows {
			dstsBySrc[f.Src] = append(dstsBySrc[f.Src], f.Dst)
		}
		for _, node := range top.Nodes {
			st := n.Stations[node.ID]
			dsts := dstsBySrc[node.ID]
			st.Endpoint.OnControl(func(f frame.Frame, _ float64) {
				if f.Kind == frame.LocationBeacon && st.Locx != nil {
					if st.Locx.OnBeacon(f) {
						st.Agent.OnPositionsChanged()
					}
					return
				}
				if f.Kind != frame.ComapHeader || f.Src == st.Node.ID {
					return
				}
				st.Agent.ObserveLink(f.Src, f.Dst, eng.Now())
				if len(dsts) == 0 || opts.DisablePersistentConcurrency {
					return
				}
				ok := true
				for _, d := range dsts {
					if !st.Agent.PersistentConcurrencyOK(d, eng.Now()) {
						ok = false
						break
					}
				}
				st.MAC.SetPersistentConcurrent(ok)
			})
		}
	}

	// In-band location exchange: clients beacon their (noisy) position to
	// their AP; APs re-broadcast. Agents then consult the learned tables.
	if opts.Protocol == ProtocolComap && opts.InBandLocation {
		apOf := make(map[frame.NodeID]frame.NodeID)
		for _, f := range top.Flows {
			if dst, ok := n.Stations[f.Dst]; ok && dst.Node.IsAP && !n.Stations[f.Src].Node.IsAP {
				apOf[f.Src] = f.Dst
			}
		}
		cfg := locx.Config{ErrorRadiusMeters: opts.PositionErrorMeters}
		for _, node := range top.Nodes {
			id := node.ID
			st := n.Stations[id]
			measure := func() (geom.Point, bool) { return n.Locs.Position(id) }
			if st.Node.IsAP {
				st.Locx = locx.NewAP(eng, st.MAC, measure, cfg)
			} else {
				ap, ok := apOf[id]
				if !ok {
					ap = nearestAP(top, st.Node)
				}
				st.Locx = locx.NewClient(eng, st.MAC, ap, measure, cfg)
			}
			n.providers[id].p = st.Locx
			st.Locx.Start()
		}
	}

	// Frame-lifecycle tracing: wrap every transceiver's listener chain with a
	// Tracer and observe channel transmit starts. Attached after all other
	// listeners so protocol handlers run unchanged (the tracer records, then
	// forwards), keeping traced runs bit-identical to untraced ones.
	if opts.Trace != nil {
		trace.InstrumentMedium(eng, medium, opts.Trace, opts.TraceEnergy)
	}

	// Wire traffic flows.
	for _, f := range top.Flows {
		f := f
		src := n.Stations[f.Src]
		payloadFn := n.payloadFunc(src, f.Dst, senders)
		switch {
		case src.Endpoint != nil && opts.CBRBitsPerSec > 0:
			src.Endpoint.StartCBRStream(f.Dst, payloadFn, opts.CBRBitsPerSec)
		case src.Endpoint != nil:
			src.Endpoint.StartStream(f.Dst, payloadFn)
		case opts.CBRBitsPerSec > 0:
			src.Peer.StartCBR(f.Dst, payloadFn, opts.CBRBitsPerSec)
		default:
			src.Peer.StartSaturated(f.Dst, payloadFn)
		}
	}

	// Fault injection: schedule the spec's processes against the assembled
	// subsystems. The injector draws only from its own named streams, so a
	// fault-free spec never perturbs the run. Location/channel/churn
	// processes (Faults) and control-plane RPC processes (RPCFaults) merge
	// into one injector, preserving each process's stream index.
	if merged := faults.Merge(opts.Faults, opts.RPCFaults); merged != nil {
		n.departed = make(map[frame.NodeID]bool)
		var beacons []faults.BeaconLossSink
		ids := make([]frame.NodeID, 0, len(top.Nodes))
		for _, node := range top.Nodes {
			ids = append(ids, node.ID)
			if st := n.Stations[node.ID]; st.Locx != nil {
				beacons = append(beacons, st.Locx)
			}
		}
		targets := faults.Targets{
			Loc:     n.Locs,
			Medium:  medium,
			Churn:   n,
			Beacons: beacons,
			Nodes:   ids,
		}
		if n.mapTransport != nil {
			targets.RPC = n.mapTransport
		}
		n.injector = faults.NewInjector(eng, merged, targets)
		n.injector.SetMetrics(n.MediumMetrics)
		n.injector.SetTrace(trace.NewEmitter(eng, frame.Broadcast, opts.Trace))
		if profiler != nil && profiler.Flight() != nil {
			// Dump the flight ring on fault-window entry so the events
			// leading into each degradation are preserved. Capped so a
			// tight recurring window can't flood the profiles directory.
			dumps := 0
			n.injector.OnWindowOpen(func(kind faults.Kind) {
				if dumps >= maxFaultFlightDumps {
					return
				}
				dumps++
				_, _ = profiler.DumpFlight("fault-" + string(kind))
			})
		}
		n.injector.Start()
	}

	// Determinism ledger: register the deep protocol-state digest sources
	// in a fixed, sorted order and (tests only) the nondeterminism
	// injection tick. Registration happens last so every subsystem the
	// digests read exists.
	if ledger != nil {
		n.Audit = ledger
		n.registerAuditSources(ledger)
		if opts.Audit.InjectNondet {
			n.startNondetInjection()
		}
	}
	return n, nil
}

// maxFaultFlightDumps bounds the number of fault-window flight dumps per run.
const maxFaultFlightDumps = 8

// locHeartbeatInterval is the location service's keepalive period when the
// health model is active (see loc.Registry.StartHeartbeat).
const locHeartbeatInterval = time.Second

// frameTimeEstimator returns the per-rate full frame-exchange time used by
// Minstrel's throughput metric: contention overhead + (optional discovery
// header) + data airtime at the reference payload + SIFS + ACK.
func frameTimeEstimator(opts Options) func(r phy.Rate) time.Duration {
	p := opts.PHY
	overhead := p.DIFS() + p.SlotTime*time.Duration(maxInt(opts.FixedCW, 2)/2) +
		p.SIFS + p.ACKAirtime()
	if opts.Protocol == ProtocolComap && opts.Header == HeaderFrame {
		overhead += p.FrameAirtime(p.BasicRate, phy.ComapHeaderBytes)
	}
	payload := opts.PayloadBytes
	if payload <= 0 {
		payload = 1000
	}
	return func(r phy.Rate) time.Duration {
		return overhead + p.DataFrameAirtime(r, payload)
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// payloadFunc returns the per-frame payload chooser for a flow: fixed for
// DCF, or CO-MAP's hidden-terminal-aware adaptation when a table is
// configured. The adaptation also retunes the station's contention window.
func (n *Network) payloadFunc(src *Station, dst frame.NodeID, senders []frame.NodeID) func() int {
	opts := n.Opts
	if src.Agent == nil || opts.AdaptTable == nil {
		return func() int { return opts.PayloadBytes }
	}
	candidates := make([]frame.NodeID, 0, len(senders))
	for _, s := range senders {
		if s != src.Node.ID {
			candidates = append(candidates, s)
		}
	}
	// Adaptation decisions are traced only when the chosen setting changes,
	// so saturated flows don't flood the event stream with identical rows.
	lastH, lastC, lastW, lastPayload := -1, -1, -1, -1
	return func() int {
		// The paper's mechanism is a hidden-terminal response ("dynamic
		// adaptation of packet size according to the number of potential
		// HTs"): with none detected, the standard settings stay in place.
		h, c := src.Agent.CountEnvironment(dst, candidates)
		w, payload := opts.FixedCW, opts.PayloadBytes
		if h > 0 {
			setting := opts.AdaptTable.Lookup(h, c)
			w, payload = setting.W, setting.PayloadBytes
		}
		src.MAC.SetFixedCW(w)
		if h != lastH || c != lastC || w != lastW || payload != lastPayload {
			lastH, lastC, lastW, lastPayload = h, c, w, payload
			src.Agent.TraceAdaptation(dst, h, c, w, payload)
		}
		return payload
	}
}

// FlowResult is the measured goodput of one flow.
type FlowResult struct {
	Flow       topology.Flow
	GoodputBps float64
}

// Results of one scenario run.
type Results struct {
	Duration time.Duration
	Flows    []FlowResult
}

// Goodput returns the goodput of the given flow in bits per second (0 if
// the flow was not part of the run).
func (r *Results) Goodput(f topology.Flow) float64 {
	for _, fr := range r.Flows {
		if fr.Flow == f {
			return fr.GoodputBps
		}
	}
	return 0
}

// Total returns the aggregate goodput across flows.
func (r *Results) Total() float64 {
	t := 0.0
	for _, fr := range r.Flows {
		t += fr.GoodputBps
	}
	return t
}

// MeanPerFlow returns the mean per-flow goodput.
func (r *Results) MeanPerFlow() float64 {
	if len(r.Flows) == 0 {
		return 0
	}
	return r.Total() / float64(len(r.Flows))
}

// StartSlicing schedules a goodput sampler that records each flow's
// cumulative delivered bytes every interval, so reports can expose goodput
// over time slices. Call after Build and before Run; a non-positive interval
// is a no-op. The sampler only reads meters — it cannot perturb the run.
func (n *Network) StartSlicing(interval time.Duration) {
	if interval <= 0 || n.sampler != nil {
		return
	}
	n.sampler = metrics.NewSampler(n.Eng, interval)
	n.sliceSeries = make(map[topology.Flow]*metrics.Series, len(n.Top.Flows))
	for _, f := range n.Top.Flows {
		meter := n.Stations[f.Dst].deliveredFrom(f.Src)
		n.sliceSeries[f] = n.sampler.Track(
			fmt.Sprintf("flow.%d-%d.bytes", f.Src, f.Dst),
			func() float64 { return float64(meter.Bytes()) },
		)
	}
	n.sampler.Start()
}

// SliceInterval returns the goodput sampling interval (0 when slicing is
// off).
func (n *Network) SliceInterval() time.Duration {
	if n.sampler == nil {
		return 0
	}
	return n.sampler.Interval()
}

// Run executes the scenario for Opts.Duration and returns per-flow goodput.
// When the flight recorder is attached, a panic inside the event loop dumps
// the ring to the profile directory before propagating.
func (n *Network) Run() *Results {
	n.markRunning()
	start := time.Now()
	if n.Prof != nil && n.Prof.Flight() != nil {
		defer func() {
			if r := recover(); r != nil {
				_, _ = n.Prof.DumpFlight("panic")
				panic(r)
			}
		}()
	}
	n.Eng.RunUntil(n.Opts.Duration)
	n.markDone(time.Since(start))
	if n.Audit != nil {
		n.Audit.Finish(n.Opts.Duration)
	}
	if n.Opts.Trace != nil {
		n.Opts.Trace.Record(trace.Event{
			AtMicros: int64(n.Opts.Duration / time.Microsecond),
			Kind:     trace.KindRunEnd,
		})
	}
	res := &Results{Duration: n.Opts.Duration}
	for _, f := range n.Top.Flows {
		sink := n.Stations[f.Dst]
		meter := sink.deliveredFrom(f.Src)
		res.Flows = append(res.Flows, FlowResult{
			Flow:       f,
			GoodputBps: meter.BitsPerSecond(n.Opts.Duration),
		})
	}
	return res
}

// RunScenario is the one-call convenience: build and run.
func RunScenario(top topology.Topology, opts Options) (*Results, error) {
	n, err := Build(top, opts)
	if err != nil {
		return nil, err
	}
	return n.Run(), nil
}

// nearestAP returns the closest AP to the given node (fallback association
// for clients without an uplink flow).
func nearestAP(top topology.Topology, node topology.Node) frame.NodeID {
	var best frame.NodeID
	bestD := math.Inf(1)
	for _, cand := range top.Nodes {
		if !cand.IsAP {
			continue
		}
		if d := node.Pos.DistanceTo(cand.Pos); d < bestD {
			best, bestD = cand.ID, d
		}
	}
	return best
}
