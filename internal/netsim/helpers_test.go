package netsim

import (
	"math/rand"

	"repro/internal/frame"
	"repro/internal/geom"
)

// Test-local aliases keeping table-style tests compact.
type frameID = frame.NodeID

func pt(x, y float64) geom.Point { return geom.Pt(x, y) }

func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
