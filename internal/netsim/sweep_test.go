package netsim

import (
	"testing"
	"time"

	"repro/internal/topology"
)

// TestETSweepShape checks the Fig. 8 shape at network level: CO-MAP at least
// matches DCF at every position (no harm where concurrency is denied) and
// clearly wins inside the validated exposed-terminal region.
func TestETSweepShape(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-seed sweep")
	}
	const seeds = 4
	positions := []float64{22, 30, 34}
	gains := make(map[float64]float64)
	for _, x := range positions {
		top := topology.ETSweep(x)
		var totals [2]float64
		for i, proto := range []Protocol{ProtocolDCF, ProtocolComap} {
			for s := int64(0); s < seeds; s++ {
				opts := TestbedOptions()
				opts.Seed = 100 + s
				opts.Duration = 2 * time.Second
				opts.Protocol = proto
				res, err := RunScenario(top, opts)
				if err != nil {
					t.Fatal(err)
				}
				totals[i] += res.Total()
			}
		}
		gains[x] = totals[1]/totals[0] - 1
	}
	// Outside the validated region CO-MAP must do no harm (within noise).
	if gains[22] < -0.08 {
		t.Errorf("CO-MAP harms at x=22: %.1f%%", gains[22]*100)
	}
	// Inside the region it must win significantly.
	if gains[30] < 0.15 {
		t.Errorf("gain at x=30 = %.1f%%, want >= 15%%", gains[30]*100)
	}
	if gains[34] < 0.05 {
		t.Errorf("gain at x=34 = %.1f%%, want >= 5%%", gains[34]*100)
	}
}
