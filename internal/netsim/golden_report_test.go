package netsim_test

import (
	"bytes"
	"flag"
	"io"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/goldenscn"
	"repro/internal/netsim"
	"repro/internal/prof"
	"repro/internal/trace"
)

// updateGolden regenerates the checked-in pre-optimization reports:
//
//	go test ./internal/netsim/ -run TestGoldenReports -update-golden
//
// The fixtures pin the engine's observable behavior: any hot-path
// optimization (event free-list, dense channel state, audibility pruning,
// parallel replication) must reproduce these reports byte for byte.
var updateGolden = flag.Bool("update-golden", false, "rewrite the golden run reports")

// goldenScenarios returns the fixed (topology, options) runs whose full
// reports are pinned. The list lives in internal/goldenscn so the
// determinism-audit tooling (cmd/comap-audit verify/bisect) re-runs the
// exact same scenarios by name.
func goldenScenarios() []goldenscn.Scenario {
	return goldenscn.All()
}

// reportBytes runs the scenario and renders its report with the wall-clock
// self-profiling fields zeroed (they are the only non-deterministic fields).
func reportBytes(t *testing.T, sc goldenscn.Scenario) []byte {
	t.Helper()
	n, err := netsim.Build(sc.Top, sc.Opts)
	if err != nil {
		t.Fatalf("%s: build: %v", sc.Name, err)
	}
	res := n.Run()
	rep := n.Report(res)
	rep.Engine.WallSec = 0
	rep.Engine.EventsPerSec = 0
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatalf("%s: encode: %v", sc.Name, err)
	}
	return buf.Bytes()
}

func goldenPath(name string) string {
	return filepath.Join("testdata", "golden_report_"+name+".json")
}

// TestGoldenReports asserts that every fixture scenario reproduces its
// checked-in pre-optimization report byte for byte.
func TestGoldenReports(t *testing.T) {
	for _, sc := range goldenScenarios() {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			got := reportBytes(t, sc)
			path := goldenPath(sc.Name)
			if *updateGolden {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden (run with -update-golden): %v", err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("report diverged from pre-optimization golden %s\n"+
					"got %d bytes, want %d bytes; regenerate only if the divergence is intended",
					path, len(got), len(want))
			}
		})
	}
}

// TestGoldenReportsProfiled re-runs every fixture scenario with the
// attribution profiler and flight recorder attached, scraping the
// attribution from another goroutine mid-run, and asserts the report still
// matches the same golden byte for byte: profiling must never touch RNG
// streams or event order.
func TestGoldenReportsProfiled(t *testing.T) {
	for _, sc := range goldenScenarios() {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			want, err := os.ReadFile(goldenPath(sc.Name))
			if err != nil {
				t.Skipf("missing golden (run TestGoldenReports -update-golden first): %v", err)
			}
			opts := sc.Opts
			opts.Profile = &prof.Config{SampleEvery: 8, Dir: t.TempDir()}
			n, err := netsim.Build(sc.Top, opts)
			if err != nil {
				t.Fatalf("build: %v", err)
			}
			if n.Prof == nil {
				t.Fatal("profiler not attached")
			}
			// Scrape the attribution and flight ring concurrently, as the
			// /profile and /flight endpoints do.
			stop := make(chan struct{})
			done := make(chan struct{})
			go func() {
				defer close(done)
				for {
					select {
					case <-stop:
						return
					default:
						_ = n.Prof.Attribution()
						if f := n.Prof.Flight(); f != nil {
							_ = f.Snapshot()
						}
					}
				}
			}()
			res := n.Run()
			close(stop)
			<-done
			rep := n.Report(res)
			rep.Engine.WallSec = 0
			rep.Engine.EventsPerSec = 0
			var buf bytes.Buffer
			if err := rep.WriteJSON(&buf); err != nil {
				t.Fatalf("encode: %v", err)
			}
			if !bytes.Equal(buf.Bytes(), want) {
				t.Fatalf("profiled run diverged from golden %s", goldenPath(sc.Name))
			}
			a := n.Prof.Attribution()
			if a.Events == 0 {
				t.Fatal("profiler observed no events")
			}
			var tagged uint64
			for _, ts := range a.Tags {
				if ts.Tag != "other" {
					tagged += ts.Events
				}
			}
			if tagged == 0 {
				t.Fatal("no events attributed to any subsystem tag")
			}
		})
	}
}

// TestGoldenReportsTraced re-runs every fixture scenario with a JSONL trace
// attached (written to io.Discard) and with live progress scrapes during the
// run, and asserts the report still matches the same golden: tracing and
// observability must not perturb the engine.
func TestGoldenReportsTraced(t *testing.T) {
	for _, sc := range goldenScenarios() {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			want, err := os.ReadFile(goldenPath(sc.Name))
			if err != nil {
				t.Skipf("missing golden (run TestGoldenReports -update-golden first): %v", err)
			}
			opts := sc.Opts
			opts.Trace = trace.NewWriter(io.Discard)
			n, err := netsim.Build(sc.Top, opts)
			if err != nil {
				t.Fatalf("build: %v", err)
			}
			// Scrape like the obs plane does, from another goroutine.
			stop := make(chan struct{})
			done := make(chan struct{})
			go func() {
				defer close(done)
				for {
					select {
					case <-stop:
						return
					default:
						_ = n.Progress()
						_ = n.HealthStatus()
					}
				}
			}()
			res := n.Run()
			close(stop)
			<-done
			rep := n.Report(res)
			rep.Engine.WallSec = 0
			rep.Engine.EventsPerSec = 0
			var buf bytes.Buffer
			if err := rep.WriteJSON(&buf); err != nil {
				t.Fatalf("encode: %v", err)
			}
			if !bytes.Equal(buf.Bytes(), want) {
				t.Fatalf("traced+scraped run diverged from golden %s", goldenPath(sc.Name))
			}
		})
	}
}
