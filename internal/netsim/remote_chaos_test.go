package netsim

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/audit"
	"repro/internal/prof"
	"repro/internal/topology"
	"repro/internal/trace"
)

// rpcChaosSpec interleaves every RPC fault class on recurring windows: a
// loss+delay window (calls vanish or come back too late to be fresh), then a
// restart window that kills the service mid-run and recovers it via WAL
// replay at window close. The gaps between windows give the breaker room to
// probe, close, and serve fresh verdicts again — so a run walks the full
// ladder down and back several times.
const rpcChaosSpec = "rpcloss:p=0.25,at=150ms,dur=250ms,every=700ms;" +
	"rpcdelay:d=4ms,at=150ms,dur=250ms,every=700ms;" +
	"rpcrestart:at=450ms,dur=250ms,every=700ms"

func remoteChaosOpts(t *testing.T, seed int64) Options {
	t.Helper()
	opts := TestbedOptions()
	opts.Protocol = ProtocolComap
	opts.Seed = seed
	opts.Duration = 2 * time.Second
	opts.ComapRemote = true
	opts.RPCFaults = mustParse(t, rpcChaosSpec)
	return opts
}

// TestRPCChaosLadderDescendsAndRecovers is the headline control-plane
// robustness property: under seeded RPC chaos — loss, delay and the service
// being killed and restarted mid-run — the client must walk the degradation
// ladder down to plain-DCF decisions and back to fresh after WAL-replay
// recovery, and CO-MAP's goodput must stay within a hair of the DCF
// baseline: a dead control plane can cost the concurrency gain, never more.
func TestRPCChaosLadderDescendsAndRecovers(t *testing.T) {
	// Hidden-terminal fixture: ongoing-link verdicts for the hidden pairs
	// are conservative denies, so during outage windows the degraded tiers
	// cannot justify concurrency and the ladder must bottom out at DCF.
	top := topology.HTRoles([]topology.Role{
		topology.RoleContender, topology.RoleHidden, topology.RoleHidden,
	})

	var buf trace.Buffer
	var transitions, dcfDecisions, freshDecisions int64
	var recoveries, walReplayed, resyncs int64
	const seeds = 3
	for s := int64(0); s < seeds; s++ {
		cm := NS2Options()
		cm.Protocol = ProtocolComap
		cm.Seed = 7 + s
		cm.Duration = 2 * time.Second
		cm.ComapRemote = true
		cm.RPCFaults = mustParse(t, rpcChaosSpec)
		// Station churn overlapping the control-plane outages: leave/rejoin
		// invalidates cached verdicts on every peer AND on the control
		// plane, so the re-decisions land while the service is down and the
		// ladder actually has to serve them from the degraded tiers.
		cm.Faults = mustParse(t, "churn:node=2,at=500ms,dur=300ms,every=700ms")
		cm.Trace = &buf
		n, err := Build(top, cm)
		if err != nil {
			t.Fatal(err)
		}
		res := n.Run()
		rep := n.Report(res)
		if rep.ControlPlane == nil {
			t.Fatal("RPC-faulted run report missing control_plane block")
		}
		cli, svc := rep.ControlPlane.Client, rep.ControlPlane.Service
		transitions += cli.LadderTransitions
		dcfDecisions += cli.RungDecisions["dcf"]
		freshDecisions += cli.RungDecisions["fresh"]
		recoveries += svc.Recoveries
		walReplayed += svc.WALReplayed
		resyncs += cli.Resyncs
		if svc.Epoch < 2 {
			t.Errorf("seed %d: service epoch %d after restart windows, want >= 2", 7+s, svc.Epoch)
		}
		if res.Total() <= 0 {
			t.Errorf("seed %d: no goodput at all under RPC chaos", 7+s)
		}
	}

	if transitions == 0 {
		t.Error("no ladder transitions under RPC chaos")
	}
	if dcfDecisions == 0 {
		t.Error("ladder never reached the DCF rung under outage windows")
	}
	if freshDecisions == 0 {
		t.Error("no fresh-rung decisions in the clean gaps between windows")
	}
	if recoveries == 0 {
		t.Error("service recorded zero crash recoveries under rpcrestart windows")
	}
	if walReplayed == 0 {
		t.Error("recovery replayed zero WAL records (persistence plane inert)")
	}
	if resyncs == 0 {
		t.Error("client never resynced after the epoch changes")
	}

	// The trace must carry the ladder walk: a descent to DCF and a recovery
	// back to fresh.
	var toDCF, toFresh bool
	for _, e := range buf.Events {
		if e.Kind != trace.KindCoLadder {
			continue
		}
		if strings.HasSuffix(e.Reason, "->dcf") {
			toDCF = true
		}
		if strings.HasSuffix(e.Reason, "->fresh") {
			toFresh = true
		}
	}
	if !toDCF {
		t.Error("trace has no ladder transition into dcf")
	}
	if !toFresh {
		t.Error("trace has no ladder transition back to fresh (recovery invisible)")
	}
}

// TestRPCChaosGoodputNearDCF: on the exposed-terminal sweep — where CO-MAP's
// whole win is granting concurrency — a chaotic control plane may cost the
// concurrency gain but never materially more: total goodput stays within 5%
// of the plain-DCF baseline on the same seeds.
func TestRPCChaosGoodputNearDCF(t *testing.T) {
	top := topology.ETSweep(30)
	var dcfTotal, cmTotal float64
	const seeds = 3
	for s := int64(0); s < seeds; s++ {
		dcf := TestbedOptions()
		dcf.Protocol = ProtocolDCF
		dcf.Seed = 7 + s
		dcf.Duration = 2 * time.Second
		dcfRes, err := RunScenario(top, dcf)
		if err != nil {
			t.Fatal(err)
		}
		dcfTotal += dcfRes.Total()

		cmRes, err := RunScenario(top, remoteChaosOpts(t, 7+s))
		if err != nil {
			t.Fatal(err)
		}
		cmTotal += cmRes.Total()
	}
	if cmTotal < 0.95*dcfTotal {
		t.Errorf("RPC-chaos CO-MAP total %.2f Mbps < 0.95x DCF %.2f Mbps",
			cmTotal/1e6, dcfTotal/1e6)
	}
}

// TestRPCChaosBitIdentical: identical (seed, rpc spec) must reproduce the
// chaotic run bit for bit — report AND determinism ledger — because every
// fate, backoff jitter draw, deadline and restart runs off the sim clock and
// seeded streams.
func TestRPCChaosBitIdentical(t *testing.T) {
	top := topology.ETSweep(30)

	run := func() ([]byte, *audit.Ledger) {
		opts := remoteChaosOpts(t, 99)
		var sink bytes.Buffer
		opts.Audit = &AuditConfig{Scenario: "rpc-chaos", Config: audit.Config{Sink: &sink}}
		n, err := Build(top, opts)
		if err != nil {
			t.Fatal(err)
		}
		res := n.Run()
		if err := n.Audit.Err(); err != nil {
			t.Fatalf("ledger write: %v", err)
		}
		rep := n.Report(res)
		rep.Engine.WallSec = 0
		rep.Engine.EventsPerSec = 0
		b, err := json.Marshal(rep)
		if err != nil {
			t.Fatal(err)
		}
		return b, n.Audit
	}

	repA, ledA := run()
	repB, ledB := run()
	if !bytes.Equal(repA, repB) {
		t.Fatalf("same-seed RPC-chaos reports diverged:\n%s\nvs\n%s", repA, repB)
	}
	if d := audit.Compare(ledA.File(), ledB.File()); d != nil {
		t.Fatalf("same-seed RPC-chaos ledgers diverged:\n%s", d)
	}

	var rep Report
	if err := json.Unmarshal(repA, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.ControlPlane == nil {
		t.Fatal("report missing control_plane block")
	}
	if rep.ControlPlane.Spec != rpcChaosSpec {
		t.Errorf("control_plane.spec = %q, want %q", rep.ControlPlane.Spec, rpcChaosSpec)
	}
	if rep.ControlPlane.Client.Resyncs == 0 {
		t.Error("client never resynced after detected restarts")
	}
	if rep.ControlPlane.Service.Recoveries == 0 {
		t.Error("service recorded zero recoveries")
	}
}

// TestRemoteOptionValidation pins the Build-time contract for the remote
// knobs: every invalid combination is rejected with an actionable error, not
// silently half-wired.
func TestRemoteOptionValidation(t *testing.T) {
	top := topology.ETSweep(30)
	cases := []struct {
		name string
		mut  func(*Options)
		want string
	}{
		{"rpc-faults-without-remote", func(o *Options) {
			o.Protocol = ProtocolComap
			o.RPCFaults = mustParse(t, "rpcloss:p=0.5")
		}, "RPCFaults requires ComapRemote"},
		{"remote-on-dcf", func(o *Options) {
			o.Protocol = ProtocolDCF
			o.ComapRemote = true
		}, "requires ProtocolComap"},
		{"remote-with-inband", func(o *Options) {
			o.Protocol = ProtocolComap
			o.ComapRemote = true
			o.InBandLocation = true
		}, "incompatible with InBandLocation"},
		{"rpc-kind-in-faults", func(o *Options) {
			o.Protocol = ProtocolComap
			o.ComapRemote = true
			o.Faults = mustParse(t, "rpcloss:p=0.5")
		}, "belong in RPCFaults"},
		{"non-rpc-kind-in-rpc-faults", func(o *Options) {
			o.Protocol = ProtocolComap
			o.ComapRemote = true
			o.RPCFaults = mustParse(t, "locloss:p=0.5")
		}, "only rpc fault kinds"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			opts := TestbedOptions()
			tc.mut(&opts)
			_, err := Build(top, opts)
			if err == nil {
				t.Fatalf("Build accepted invalid options %s", tc.name)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestFaultFlightDumpCapPerReplication pins that the flight recorder's
// fault-window dump cap (maxFaultFlightDumps) is per-Build — each
// replication in a multi-worker experiment grid gets its own budget of 8
// dumps, because the counter lives in the Build closure, not in a global.
// A recurring window that opens ~19 times must leave exactly 8 dumps per
// run, in each run's own directory.
func TestFaultFlightDumpCapPerReplication(t *testing.T) {
	top := topology.ETSweep(30)
	countFaultDumps := func(dir string) int {
		matches, err := filepath.Glob(filepath.Join(dir, "flight-*fault-*.json"))
		if err != nil {
			t.Fatal(err)
		}
		return len(matches)
	}
	for rep := 0; rep < 2; rep++ {
		dir := t.TempDir()
		opts := TestbedOptions()
		opts.Protocol = ProtocolComap
		opts.Seed = 5
		opts.Duration = 2 * time.Second
		opts.Faults = mustParse(t, "outage:node=1,at=50ms,dur=40ms,every=100ms")
		opts.Profile = &prof.Config{SampleEvery: 64, Dir: dir}
		n, err := Build(top, opts)
		if err != nil {
			t.Fatal(err)
		}
		n.Run()
		if got := countFaultDumps(dir); got != maxFaultFlightDumps {
			entries, _ := os.ReadDir(dir)
			var names []string
			for _, e := range entries {
				names = append(names, e.Name())
			}
			t.Fatalf("replication %d: %d fault flight dumps, want exactly %d (cap must reset per Build); dir: %v",
				rep, got, maxFaultFlightDumps, names)
		}
	}
}
