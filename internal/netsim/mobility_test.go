package netsim

import (
	"testing"
	"time"

	"repro/internal/geom"
	"repro/internal/topology"
)

func TestScheduleWalkValidation(t *testing.T) {
	top := topology.ETSweep(20)
	opts := TestbedOptions()
	opts.Seed = 1
	opts.Duration = time.Second
	n, err := Build(top, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := n.ScheduleWalk(99, geom.Pt(0, 0), 1, 0); err == nil {
		t.Error("unknown node accepted")
	}
	if err := n.ScheduleWalk(topology.C2, geom.Pt(0, 0), 0, 0); err == nil {
		t.Error("zero speed accepted")
	}
	// Zero-length walk is a no-op.
	if err := n.ScheduleWalk(topology.C2, geom.Pt(20, 0), 1, 0); err != nil {
		t.Errorf("no-op walk: %v", err)
	}
}

func TestWalkMovesNodeAndReports(t *testing.T) {
	top := topology.ETSweep(12)
	opts := TestbedOptions()
	opts.Seed = 2
	opts.Duration = 10 * time.Second
	n, err := Build(top, opts)
	if err != nil {
		t.Fatal(err)
	}
	reportsBefore := n.Locs.Updates()
	// Walk C2 from (12,0) to (32,0) at 4 m/s: 5 seconds.
	if err := n.ScheduleWalk(topology.C2, geom.Pt(32, 0), 4, 0); err != nil {
		t.Fatal(err)
	}
	n.Run()
	if got := n.Medium.Node(topology.C2).Position(); got.DistanceTo(geom.Pt(32, 0)) > 0.01 {
		t.Errorf("final position = %v", got)
	}
	if tp, _ := n.Locs.TruePosition(topology.C2); tp != n.Medium.Node(topology.C2).Position() {
		t.Error("registry truth out of sync with medium")
	}
	// 20 m of walking at a 1 m report threshold: many reports, but far fewer
	// than the 100 ms ticks (the threshold coalesces).
	reports := n.Locs.Updates() - reportsBefore
	if reports < 10 || reports > 25 {
		t.Errorf("position reports during walk = %d, want ~20", reports)
	}
}

// TestMobileExposedTerminal walks C2 out of the unsafe zone into the
// exposed-terminal region: CO-MAP must start exploiting concurrency as the
// reported positions change.
func TestMobileExposedTerminal(t *testing.T) {
	top := topology.ETSweep(16) // starts too close for concurrency
	opts := TestbedOptions()
	opts.Protocol = ProtocolComap
	opts.Seed = 3
	opts.Duration = 12 * time.Second
	n, err := Build(top, opts)
	if err != nil {
		t.Fatal(err)
	}
	// Stroll to x=32 at ~1.5 m/s (~10.7 s): the second half of the run sits
	// firmly in the ET region.
	if err := n.ScheduleWalk(topology.C2, geom.Pt(32, 0), 1.5, 0); err != nil {
		t.Fatal(err)
	}

	concAt := map[string]int64{}
	n.Eng.Schedule(4*time.Second, func() {
		concAt["early"] = n.Stations[topology.C1].MAC.Stats().Get("et.concurrent_tx") +
			n.Stations[topology.C2].MAC.Stats().Get("et.concurrent_tx")
	})
	n.Run()
	final := n.Stations[topology.C1].MAC.Stats().Get("et.concurrent_tx") +
		n.Stations[topology.C2].MAC.Stats().Get("et.concurrent_tx")

	if final == 0 {
		t.Fatal("concurrency never engaged along the walk")
	}
	// Most concurrency should come after the walk enters the ET region.
	if final-concAt["early"] < concAt["early"] {
		t.Errorf("concurrency did not grow late in the walk: early=%d final=%d",
			concAt["early"], final)
	}
}

func TestRandomWaypointValidation(t *testing.T) {
	top := topology.ETSweep(20)
	opts := TestbedOptions()
	opts.Seed = 1
	opts.Duration = time.Second
	n, err := Build(top, opts)
	if err != nil {
		t.Fatal(err)
	}
	bounds := Rect{Min: geom.Pt(0, 0), Max: geom.Pt(40, 40)}
	if err := n.ScheduleRandomWaypoint(99, bounds, 1, 2, 0); err == nil {
		t.Error("unknown node accepted")
	}
	if err := n.ScheduleRandomWaypoint(topology.C2, bounds, 0, 2, 0); err == nil {
		t.Error("zero min speed accepted")
	}
	if err := n.ScheduleRandomWaypoint(topology.C2, bounds, 3, 2, 0); err == nil {
		t.Error("inverted speed range accepted")
	}
	if err := n.ScheduleRandomWaypoint(topology.C2, Rect{}, 1, 2, 0); err == nil {
		t.Error("degenerate bounds accepted")
	}
}

func TestRandomWaypointStaysInBounds(t *testing.T) {
	top := topology.ETSweep(20)
	opts := TestbedOptions()
	opts.Protocol = ProtocolComap
	opts.Seed = 4
	opts.Duration = 20 * time.Second
	n, err := Build(top, opts)
	if err != nil {
		t.Fatal(err)
	}
	bounds := Rect{Min: geom.Pt(10, -20), Max: geom.Pt(36, 20)}
	if err := n.ScheduleRandomWaypoint(topology.C2, bounds, 2, 5, 200*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	// Sample the position periodically; it must stay inside the bounds
	// (with a small tolerance for the 100 ms step discretisation).
	grow := Rect{Min: geom.Pt(bounds.Min.X-1, bounds.Min.Y-1), Max: geom.Pt(bounds.Max.X+1, bounds.Max.Y+1)}
	for at := time.Second; at < 20*time.Second; at += time.Second {
		n.Eng.Schedule(at, func() {
			if p := n.Medium.Node(topology.C2).Position(); !grow.contains(p) {
				t.Errorf("node escaped bounds: %v", p)
			}
		})
	}
	res := n.Run()
	if res.Total() == 0 {
		t.Error("no goodput while roaming")
	}
	// Movement must have produced a healthy number of position reports.
	if n.Locs.Updates() < 20 {
		t.Errorf("only %d location updates while roaming", n.Locs.Updates())
	}
}
