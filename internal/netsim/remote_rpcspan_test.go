package netsim

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/faults"
	"repro/internal/topology"
	"repro/internal/trace"
	"repro/internal/trace/rpcspan"
)

// rpcEvents filters a trace down to the control-plane stream: the rpc.*
// client and server kinds plus the ladder transitions they cause.
func rpcEvents(events []trace.Event) []trace.Event {
	var out []trace.Event
	for _, e := range events {
		if strings.HasPrefix(e.Kind, "rpc.") || e.Kind == trace.KindCoLadder {
			out = append(out, e)
		}
	}
	return out
}

// TestRPCChaosStitchingComplete is the tentpole's causal-completeness
// property: under seeded RPC chaos, every client wire attempt lands in
// exactly one stitched span, and every attempt either joins its
// server-side counterpart or carries an explicit loss/partition
// attribution — never an unexplained gap. The ladder transitions must
// resolve to the specific requests that caused them.
func TestRPCChaosStitchingComplete(t *testing.T) {
	// Hidden-terminal fixture with station churn overlapping the outage
	// windows (the ladder test's recipe): leave/rejoin invalidates cached
	// verdicts, so re-decisions land while the control plane is down and
	// the full degraded machinery — retries, breaker, ladder — runs.
	top := topology.HTRoles([]topology.Role{
		topology.RoleContender, topology.RoleHidden, topology.RoleHidden,
	})
	var buf trace.Buffer
	opts := NS2Options()
	opts.Protocol = ProtocolComap
	opts.Seed = 7
	opts.Duration = 2 * time.Second
	opts.ComapRemote = true
	// Loss-heavy windows (rather than rpcChaosSpec's balanced mix) so the
	// trace provably contains in-flight losses to attribute, alongside the
	// restart windows' inline refusals and crash/replay lifecycle.
	opts.RPCFaults = mustParse(t, "rpcloss:p=0.9,at=100ms,dur=400ms,every=1000ms;"+
		"rpcrestart:at=600ms,dur=250ms,every=1000ms")
	opts.Faults = mustParse(t, "churn:node=2,at=150ms,dur=250ms,every=500ms")
	opts.Trace = &buf
	n, err := Build(top, opts)
	if err != nil {
		t.Fatal(err)
	}
	res := n.Run()
	rep := n.Report(res)

	// The report carries the SLO block on RPC-faulted runs.
	if rep.ControlPlaneSLO == nil {
		t.Fatal("RPC-faulted run report missing control_plane_slo block")
	}
	var sawVerdict bool
	var bad int64
	for _, ep := range rep.ControlPlaneSLO.Endpoints {
		bad += ep.Errors + ep.Slow
		if ep.Endpoint == "verdict" && ep.Requests > 0 {
			sawVerdict = true
		}
	}
	if !sawVerdict {
		t.Error("SLO block has no verdict endpoint with traffic")
	}
	if bad == 0 {
		t.Error("chaos run recorded zero bad requests in the SLO tracker")
	}
	if rep.ControlPlaneSLO.Met() {
		t.Error("SLO met under sustained RPC chaos — tracker not seeing the failures")
	}

	stitched := rpcspan.FromEvents(buf.Events)
	if !stitched.HasServer {
		t.Fatal("trace carries no rpc.srv events — service emitter not wired")
	}

	// Every rpc.call appears in exactly one span, keyed (req, attempt).
	type ak struct {
		req uint64
		seq int
	}
	calls := make(map[ak]int)
	for _, e := range buf.Events {
		if e.Kind == trace.KindRPCCall {
			calls[ak{e.Req, e.Attempt}]++
		}
	}
	if len(calls) == 0 {
		t.Fatal("no rpc.call events in a remote chaos trace")
	}
	for k, c := range calls {
		if c != 1 {
			t.Fatalf("rpc.call (req=%d, attempt=%d) emitted %d times", k.req, k.seq, c)
		}
	}
	stitchedAttempts := 0
	attrib := make(map[string]int)
	for _, s := range stitched.Spans {
		for _, a := range s.Attempts {
			stitchedAttempts++
			attrib[a.Attribution]++
			if _, ok := calls[ak{s.Req, a.Seq}]; !ok {
				t.Fatalf("span req %d has attempt %d with no rpc.call event", s.Req, a.Seq)
			}
			switch a.Attribution {
			case rpcspan.AttrJoined, rpcspan.AttrLost, rpcspan.AttrServerDown,
				rpcspan.AttrError, rpcspan.AttrPending:
			default:
				t.Fatalf("attempt (req=%d, seq=%d) has attribution %q — unexplained gap",
					s.Req, a.Seq, a.Attribution)
			}
		}
	}
	if stitchedAttempts != len(calls) {
		t.Fatalf("stitched %d attempts from %d rpc.call events — attempts lost or duplicated",
			stitchedAttempts, len(calls))
	}
	if attrib[rpcspan.AttrJoined] == 0 {
		t.Error("no attempt joined a server event under chaos (joins broken)")
	}
	if attrib[rpcspan.AttrLost] == 0 {
		t.Error("no attempt attributed to loss/partition under rpcloss windows")
	}

	// Ladder attribution: transitions caused by a request must resolve to
	// its span, and at least one downward transition must name its cause.
	if len(stitched.Ladder) == 0 {
		t.Fatal("no ladder transitions stitched from a chaos run")
	}
	caused := 0
	for _, l := range stitched.Ladder {
		if l.Req == 0 {
			continue
		}
		caused++
		if stitched.Span(l.Req) == nil {
			t.Fatalf("ladder transition %q names req %d with no span", l.Change, l.Req)
		}
	}
	if caused == 0 {
		t.Error("no ladder transition carries its causal request ID")
	}

	// The restart windows must open the breaker at least once.
	if len(stitched.Breakers) == 0 {
		t.Error("no breaker-open windows stitched under rpcrestart chaos")
	}

	// Server lifecycle: crash/replay/epoch events from the restart windows.
	saw := make(map[string]bool)
	for _, se := range stitched.Service {
		saw[se.Reason] = true
	}
	for _, want := range []string{"crash", "wal_replay", "epoch_bump"} {
		if !saw[want] {
			t.Errorf("service lifecycle stream missing %q under rpcrestart windows", want)
		}
	}
}

// TestRemoteZeroFaultRPCTrace pins the zero-fault shape of the rpc.*
// stream: every span served on its first attempt and joined to its server
// events, no retries, drops, breaker windows or ladder transitions — and
// the report's control-plane blocks stay absent (they are gated on RPC
// faults, keeping zero-fault reports byte-identical to in-process
// goldens, which TestGoldenReportsRemoteTraced asserts against the
// checked-in files).
func TestRemoteZeroFaultRPCTrace(t *testing.T) {
	top := topology.ETSweep(12)
	var buf trace.Buffer
	opts := TestbedOptions()
	opts.Protocol = ProtocolComap
	opts.Seed = 7
	opts.Duration = time.Second
	opts.ComapRemote = true
	opts.Trace = &buf
	n, err := Build(top, opts)
	if err != nil {
		t.Fatal(err)
	}
	res := n.Run()
	rep := n.Report(res)
	if rep.ControlPlane != nil || rep.ControlPlaneSLO != nil {
		t.Fatal("zero-fault remote report grew control-plane blocks (golden identity broken)")
	}
	if n.SLO == nil {
		t.Fatal("remote network has no SLO tracker")
	}
	st := n.SLO.Status()
	if !st.Met() {
		t.Errorf("zero-fault run out of SLO: %+v", st.Endpoints)
	}

	stitched := rpcspan.FromEvents(buf.Events)
	if len(stitched.Spans) == 0 {
		t.Fatal("no rpc spans on a traced remote run")
	}
	if !stitched.HasServer {
		t.Fatal("no rpc.srv events on a traced remote run")
	}
	for _, s := range stitched.Spans {
		if s.Outcome != rpcspan.SpanServed {
			t.Fatalf("zero-fault span req %d outcome %q, want served", s.Req, s.Outcome)
		}
		if len(s.Attempts) != 1 {
			t.Fatalf("zero-fault span req %d took %d attempts", s.Req, len(s.Attempts))
		}
		if s.Attempts[0].Attribution != rpcspan.AttrJoined {
			t.Fatalf("zero-fault attempt (req %d) attribution %q, want joined",
				s.Req, s.Attempts[0].Attribution)
		}
		if len(s.Drops) != 0 {
			t.Fatalf("zero-fault span req %d has drops %+v", s.Req, s.Drops)
		}
	}
	if len(stitched.Breakers) != 0 || len(stitched.Ladder) != 0 {
		t.Fatalf("zero-fault run stitched %d breaker windows, %d ladder transitions",
			len(stitched.Breakers), len(stitched.Ladder))
	}
}

// TestRPCTraceOrderMultiWorker replicates one chaotic traced run on eight
// concurrent workers and asserts each replica's rpc.* event stream is
// bit-identical to a sequential baseline: the tracing plane reads only
// engine-owned state, so racing whole runs (the experiment runner's worker
// pool does exactly this) must not perturb event order or content. Run
// under -race in CI.
func TestRPCTraceOrderMultiWorker(t *testing.T) {
	top := topology.ETSweep(12)
	runOnce := func() ([]trace.Event, error) {
		var buf trace.Buffer
		opts := TestbedOptions()
		opts.Protocol = ProtocolComap
		opts.Seed = 11
		opts.Duration = time.Second
		opts.ComapRemote = true
		spec, err := faults.Parse(rpcChaosSpec)
		if err != nil {
			return nil, err
		}
		opts.RPCFaults = spec
		opts.Trace = &buf
		n, err := Build(top, opts)
		if err != nil {
			return nil, err
		}
		n.Run()
		return rpcEvents(buf.Events), nil
	}

	baseline, err := runOnce()
	if err != nil {
		t.Fatal(err)
	}
	if len(baseline) == 0 {
		t.Fatal("baseline run emitted no rpc events")
	}
	want, err := json.Marshal(baseline)
	if err != nil {
		t.Fatal(err)
	}

	const workers = 8
	got := make([][]trace.Event, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			got[w], errs[w] = runOnce()
		}(w)
	}
	wg.Wait()
	for w := 0; w < workers; w++ {
		if errs[w] != nil {
			t.Fatalf("worker %d: %v", w, errs[w])
		}
		b, err := json.Marshal(got[w])
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(b, want) {
			i := 0
			for i < len(got[w]) && i < len(baseline) {
				a, _ := json.Marshal(baseline[i])
				bb, _ := json.Marshal(got[w][i])
				if !bytes.Equal(a, bb) {
					break
				}
				i++
			}
			t.Fatalf("worker %d rpc stream diverged from sequential baseline at event %d (of %d vs %d)",
				w, i, len(got[w]), len(baseline))
		}
	}
}
