package netsim_test

import (
	"bytes"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/audit"
	"repro/internal/geom"
	"repro/internal/netsim"
	"repro/internal/topology"
)

// cityFixture is a compact city: 16 APs over a 1.2 km world sharded into 64
// cells, with a synthesized mobility+churn trace whose walkers cross shard
// cell borders mid-run.
func cityFixture(t *testing.T) (topology.Topology, *topology.LocTrace, netsim.Options) {
	t.Helper()
	top, err := topology.CityScale(topology.CityConfig{
		Stations:         60,
		WorldMeters:      1200,
		APOrder:          2,
		CellOrder:        3,
		Seed:             77,
		AnnulusMinMeters: 10,
		AnnulusMaxMeters: 70,
	})
	if err != nil {
		t.Fatal(err)
	}
	opts := netsim.CityOptions()
	opts.Seed = 99
	opts.Duration = 400 * time.Millisecond
	tr := topology.SynthesizeCityTrace(top, rand.New(rand.NewSource(13)), topology.CityTraceConfig{
		Duration:         opts.Duration,
		WalkerFraction:   0.2,
		SpeedMps:         30, // fast enough to cross 150 m shard cells in 400 ms
		RoamRadiusMeters: 300,
		ChurnFraction:    0.1,
	})
	if len(tr.Events) == 0 {
		t.Fatal("city trace is empty")
	}
	// The determinism claim is about cell-boundary crossings: assert the
	// trace actually produces some, or the test would pass vacuously.
	pos := map[int]geom.Point{}
	for _, n := range top.Nodes {
		pos[int(n.ID)] = n.Pos
	}
	crossings, churns := 0, 0
	for _, ev := range tr.Events {
		switch ev.Op {
		case topology.LocMove:
			if top.World.ClampedCellOf(pos[int(ev.Node)]) != top.World.ClampedCellOf(ev.Pos) {
				crossings++
			}
			pos[int(ev.Node)] = ev.Pos
		case topology.LocLeave, topology.LocJoin:
			churns++
		}
	}
	if crossings == 0 {
		t.Fatal("trace never crosses a shard cell boundary")
	}
	if churns == 0 {
		t.Fatal("trace has no churn events")
	}
	return top, tr, opts
}

// runCity executes the city fixture with a determinism ledger attached and
// returns the parsed ledger and the normalized report bytes.
func runCity(t *testing.T, top topology.Topology, tr *topology.LocTrace, opts netsim.Options) (*audit.LedgerFile, []byte) {
	t.Helper()
	var buf bytes.Buffer
	opts.Audit = &netsim.AuditConfig{Scenario: "cityscale", Config: audit.Config{Sink: &buf}}
	n, err := netsim.Build(top, opts)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	if n.Medium.Grid() == nil {
		t.Fatal("city network built without a shard grid")
	}
	if err := n.ScheduleLocTrace(tr); err != nil {
		t.Fatalf("schedule trace: %v", err)
	}
	res := n.Run()
	if err := n.Audit.Err(); err != nil {
		t.Fatalf("ledger write: %v", err)
	}
	rep := n.Report(res)
	rep.Engine.WallSec = 0
	rep.Engine.EventsPerSec = 0
	var repBuf bytes.Buffer
	if err := rep.WriteJSON(&repBuf); err != nil {
		t.Fatalf("encode: %v", err)
	}
	lf, err := audit.Read(&buf)
	if err != nil {
		t.Fatalf("parse ledger: %v", err)
	}
	return lf, repBuf.Bytes()
}

// TestCityScaleDeterministicAcrossRunsAndWorkers replays the mobility+churn
// city — stations migrating shard cells mid-run — and demands bit-identical
// results across repeated runs and across concurrency: one reference run,
// one sequential re-run, and eight concurrent runs on separate goroutines
// must all produce the same report bytes and semantically equal audit
// ledgers.
func TestCityScaleDeterministicAcrossRunsAndWorkers(t *testing.T) {
	top, tr, opts := cityFixture(t)
	refLedger, refReport := runCity(t, top, tr, opts)

	// Repeated sequential run.
	againLedger, againReport := runCity(t, top, tr, opts)
	if !bytes.Equal(refReport, againReport) {
		t.Fatal("repeated city runs produced different reports")
	}
	if d := audit.Compare(refLedger, againLedger); d != nil {
		t.Fatalf("repeated city runs diverge: %+v", d)
	}

	// Eight concurrent runs (workers=8): scheduling pressure from sibling
	// goroutines must not leak into any run.
	const workers = 8
	ledgers := make([]*audit.LedgerFile, workers)
	reports := make([][]byte, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Each worker rebuilds its own topology and trace: nothing is
			// shared, exactly like the experiment pool's workers.
			wtop, wtr, wopts := cityFixture(t)
			ledgers[w], reports[w] = runCity(t, wtop, wtr, wopts)
		}()
	}
	wg.Wait()
	for w := 0; w < workers; w++ {
		if !bytes.Equal(refReport, reports[w]) {
			t.Fatalf("worker %d report differs from the sequential reference", w)
		}
		if d := audit.Compare(refLedger, ledgers[w]); d != nil {
			t.Fatalf("worker %d ledger diverges: %+v", w, d)
		}
	}
}

// TestCityBuildRejectsOutOfWorldStations pins the validation path: a station
// outside the shard world must fail Build with an error naming the bounds,
// not be silently clamped.
func TestCityBuildRejectsOutOfWorldStations(t *testing.T) {
	top, _, opts := cityFixture(t)
	for i := range top.Nodes {
		if !top.Nodes[i].IsAP {
			top.Nodes[i].Pos = geom.Pt(-40, 600)
			break
		}
	}
	_, err := netsim.Build(top, opts)
	if err == nil {
		t.Fatal("Build accepted an out-of-world station")
	}
	if !strings.Contains(err.Error(), "outside grid") {
		t.Fatalf("error %q does not describe the world bounds", err)
	}
}

// TestScheduleLocTraceRejectsUnknownNodes pins trace validation.
func TestScheduleLocTraceRejectsUnknownNodes(t *testing.T) {
	top, _, opts := cityFixture(t)
	n, err := netsim.Build(top, opts)
	if err != nil {
		t.Fatal(err)
	}
	bad := &topology.LocTrace{Events: []topology.LocEvent{
		{At: time.Millisecond, Op: topology.LocMove, Node: 9999, Pos: geom.Pt(1, 1)},
	}}
	if err := n.ScheduleLocTrace(bad); err == nil {
		t.Fatal("trace targeting an unknown node accepted")
	} else if !strings.Contains(err.Error(), "unknown node 9999") {
		t.Fatalf("error %q does not name the node", err)
	}
}
