// Package plot renders the experiment results as standalone SVG files using
// only the standard library: simple line charts (goodput vs position or
// payload) and step charts (empirical CDFs), enough to eyeball the paper's
// figures next to ours.
package plot

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Series is one labelled polyline.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Chart is a minimal XY chart description.
type Chart struct {
	Title  string
	XLabel string
	YLabel string
	Series []Series
	// Step renders each series as a staircase (for CDFs).
	Step bool
	// Width and Height in pixels (defaults 640x420).
	Width, Height int
}

// palette holds the stroke colors assigned to series in order.
var palette = []string{"#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#ff7f0e", "#8c564b"}

const (
	marginLeft   = 62.0
	marginRight  = 18.0
	marginTop    = 34.0
	marginBottom = 48.0
)

// WriteSVG renders the chart as an SVG document.
func (c Chart) WriteSVG(w io.Writer) error {
	width, height := c.Width, c.Height
	if width <= 0 {
		width = 640
	}
	if height <= 0 {
		height = 420
	}
	minX, maxX, minY, maxY, ok := c.bounds()
	if !ok {
		return fmt.Errorf("plot: chart %q has no data", c.Title)
	}

	plotW := float64(width) - marginLeft - marginRight
	plotH := float64(height) - marginTop - marginBottom
	sx := func(x float64) float64 {
		if maxX == minX {
			return marginLeft + plotW/2
		}
		return marginLeft + (x-minX)/(maxX-minX)*plotW
	}
	sy := func(y float64) float64 {
		if maxY == minY {
			return marginTop + plotH/2
		}
		return marginTop + plotH - (y-minY)/(maxY-minY)*plotH
	}

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" font-family="sans-serif" font-size="12">`+"\n", width, height)
	fmt.Fprintf(&b, `<rect width="%d" height="%d" fill="white"/>`+"\n", width, height)
	fmt.Fprintf(&b, `<text x="%d" y="20" text-anchor="middle" font-size="14">%s</text>`+"\n", width/2, escape(c.Title))

	// Axes.
	fmt.Fprintf(&b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="black"/>`+"\n",
		marginLeft, marginTop+plotH, marginLeft+plotW, marginTop+plotH)
	fmt.Fprintf(&b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="black"/>`+"\n",
		marginLeft, marginTop, marginLeft, marginTop+plotH)
	fmt.Fprintf(&b, `<text x="%.1f" y="%d" text-anchor="middle">%s</text>`+"\n",
		marginLeft+plotW/2, height-12, escape(c.XLabel))
	fmt.Fprintf(&b, `<text x="14" y="%.1f" text-anchor="middle" transform="rotate(-90 14 %.1f)">%s</text>`+"\n",
		marginTop+plotH/2, marginTop+plotH/2, escape(c.YLabel))

	// Ticks: 5 per axis.
	for i := 0; i <= 4; i++ {
		fx := minX + (maxX-minX)*float64(i)/4
		fy := minY + (maxY-minY)*float64(i)/4
		fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" text-anchor="middle">%s</text>`+"\n",
			sx(fx), marginTop+plotH+16, tick(fx))
		fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" text-anchor="end">%s</text>`+"\n",
			marginLeft-6, sy(fy)+4, tick(fy))
		fmt.Fprintf(&b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="#dddddd"/>`+"\n",
			marginLeft, sy(fy), marginLeft+plotW, sy(fy))
	}

	// Series.
	for i, s := range c.Series {
		color := palette[i%len(palette)]
		var pts strings.Builder
		for j := range s.X {
			x, y := sx(s.X[j]), sy(s.Y[j])
			if j == 0 {
				fmt.Fprintf(&pts, "%.1f,%.1f", x, y)
				continue
			}
			if c.Step {
				fmt.Fprintf(&pts, " %.1f,%.1f", x, sy(s.Y[j-1]))
			}
			fmt.Fprintf(&pts, " %.1f,%.1f", x, y)
		}
		fmt.Fprintf(&b, `<polyline points="%s" fill="none" stroke="%s" stroke-width="1.6"/>`+"\n",
			pts.String(), color)
		// Legend entry.
		ly := marginTop + 8 + float64(i)*16
		fmt.Fprintf(&b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="%s" stroke-width="2"/>`+"\n",
			marginLeft+plotW-120, ly, marginLeft+plotW-100, ly, color)
		fmt.Fprintf(&b, `<text x="%.1f" y="%.1f">%s</text>`+"\n",
			marginLeft+plotW-94, ly+4, escape(s.Name))
	}
	b.WriteString("</svg>\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// bounds computes the data extents across series.
func (c Chart) bounds() (minX, maxX, minY, maxY float64, ok bool) {
	minX, minY = math.Inf(1), math.Inf(1)
	maxX, maxY = math.Inf(-1), math.Inf(-1)
	for _, s := range c.Series {
		for i := range s.X {
			minX = math.Min(minX, s.X[i])
			maxX = math.Max(maxX, s.X[i])
			minY = math.Min(minY, s.Y[i])
			maxY = math.Max(maxY, s.Y[i])
		}
	}
	if math.IsInf(minX, 1) {
		return 0, 0, 0, 0, false
	}
	// Pad Y so curves do not hug the frame; anchor at zero when sensible.
	if minY > 0 && minY < maxY/3 {
		minY = 0
	}
	maxY += (maxY - minY) * 0.05
	return minX, maxX, minY, maxY, true
}

// tick formats an axis tick value compactly.
func tick(v float64) string {
	switch {
	case v == 0:
		return "0"
	case math.Abs(v) >= 100:
		return fmt.Sprintf("%.0f", v)
	case math.Abs(v) >= 1:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.2f", v)
	}
}

// escape sanitises text for SVG.
func escape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;")
	return r.Replace(s)
}
