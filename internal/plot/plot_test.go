package plot

import (
	"strings"
	"testing"
)

func sample() Chart {
	return Chart{
		Title:  "goodput vs position",
		XLabel: "C2 position (m)",
		YLabel: "Mbps",
		Series: []Series{
			{Name: "DCF", X: []float64{10, 20, 30}, Y: []float64{2, 2.5, 3}},
			{Name: "CO-MAP", X: []float64{10, 20, 30}, Y: []float64{2, 3.5, 4}},
		},
	}
}

func TestWriteSVGBasics(t *testing.T) {
	var b strings.Builder
	if err := sample().WriteSVG(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"<svg", "</svg>", "polyline", "goodput vs position",
		"DCF", "CO-MAP", "C2 position (m)", "Mbps",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("SVG missing %q", want)
		}
	}
	if got := strings.Count(out, "<polyline"); got != 2 {
		t.Errorf("polylines = %d, want 2", got)
	}
}

func TestWriteSVGEmptyChartErrors(t *testing.T) {
	var b strings.Builder
	err := Chart{Title: "empty"}.WriteSVG(&b)
	if err == nil {
		t.Error("empty chart should error")
	}
}

func TestWriteSVGStepMode(t *testing.T) {
	c := sample()
	c.Step = true
	var b strings.Builder
	if err := c.WriteSVG(&b); err != nil {
		t.Fatal(err)
	}
	// Step mode inserts an extra vertex per segment: 3 points -> 5 vertices.
	line := b.String()[strings.Index(b.String(), "<polyline"):]
	line = line[:strings.Index(line, "/>")]
	if got := strings.Count(line, ","); got != 5 {
		t.Errorf("step polyline has %d vertices, want 5", got)
	}
}

func TestWriteSVGEscapesText(t *testing.T) {
	c := sample()
	c.Title = "a < b & c"
	var b strings.Builder
	if err := c.WriteSVG(&b); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(b.String(), "a < b & c") {
		t.Error("unescaped text in SVG")
	}
	if !strings.Contains(b.String(), "a &lt; b &amp; c") {
		t.Error("escaped title missing")
	}
}

func TestWriteSVGDegenerateExtents(t *testing.T) {
	c := Chart{
		Title:  "flat",
		Series: []Series{{Name: "s", X: []float64{5, 5}, Y: []float64{1, 1}}},
	}
	var b strings.Builder
	if err := c.WriteSVG(&b); err != nil {
		t.Fatalf("flat data should render: %v", err)
	}
	if strings.Contains(b.String(), "NaN") {
		t.Error("NaN leaked into SVG")
	}
}

func TestTickFormatting(t *testing.T) {
	tests := []struct {
		v    float64
		want string
	}{
		{0, "0"},
		{150, "150"},
		{3.25, "3.2"}, // banker-style rounding of %.1f
		{0.05, "0.05"},
	}
	for _, tt := range tests {
		if got := tick(tt.v); got != tt.want {
			t.Errorf("tick(%v) = %q, want %q", tt.v, got, tt.want)
		}
	}
}
