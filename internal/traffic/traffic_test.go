package traffic

import (
	"testing"
	"time"

	"repro/internal/channel"
	"repro/internal/frame"
	"repro/internal/geom"
	"repro/internal/mac"
	"repro/internal/phy"
	"repro/internal/radio"
	"repro/internal/sim"
)

func buildPair(seed int64, sigmaDB, dist float64) (*sim.Engine, *Peer, *Peer) {
	eng := sim.New(seed)
	medium := channel.NewMedium(eng, radio.NewLogNormal2400(2.9, sigmaDB), -95)
	cfg := mac.Config{PHY: phy.DSSS(), CCAThresholdDBm: -81, FixedCW: 8}
	mk := func(id frame.NodeID, pos geom.Point) *Peer {
		tr := medium.AddNode(id, pos, 0, nil)
		m := mac.New(eng, tr, cfg)
		tr.SetListener(m)
		return NewPeer(eng, m)
	}
	return eng, mk(1, geom.Pt(0, 0)), mk(2, geom.Pt(10, 0))
}

func TestSaturatedSource(t *testing.T) {
	eng, tx, rx := buildPair(1, 0, 10)
	tx.StartSaturated(2, func() int { return 1000 })
	eng.RunUntil(time.Second)
	mbps := rx.Delivered().Mbps(time.Second)
	if mbps < 0.5 {
		t.Errorf("saturated goodput = %v Mbps on a clean 1 Mbps link", mbps)
	}
	if got := rx.DeliveredFrom(1).Bytes(); got != rx.Delivered().Bytes() {
		t.Errorf("per-src bytes %d != aggregate %d", got, rx.Delivered().Bytes())
	}
}

func TestCBRSourceRespectsRate(t *testing.T) {
	eng, tx, rx := buildPair(2, 0, 10)
	const offered = 100_000.0
	tx.StartCBR(2, func() int { return 250 }, offered)
	eng.RunUntil(2 * time.Second)
	got := rx.Delivered().BitsPerSecond(2 * time.Second)
	if got > 1.1*offered || got < 0.7*offered {
		t.Errorf("CBR goodput = %v, offered %v", got, offered)
	}
}

func TestPoissonSource(t *testing.T) {
	eng, tx, rx := buildPair(3, 0, 10)
	tx.StartPoisson(2, func() int { return 400 }, 50, eng.RNG("poisson"))
	eng.RunUntil(2 * time.Second)
	frames := rx.Delivered().Frames()
	// 50 frames/s for 2 s: ~100 arrivals; allow generous slack.
	if frames < 60 || frames > 140 {
		t.Errorf("poisson deliveries = %d, want ~100", frames)
	}
}

func TestStopHaltsSource(t *testing.T) {
	eng, tx, rx := buildPair(4, 0, 10)
	tx.StartSaturated(2, func() int { return 500 })
	eng.RunUntil(100 * time.Millisecond)
	tx.Stop()
	before := rx.Delivered().Frames()
	eng.RunUntil(time.Second)
	after := rx.Delivered().Frames()
	if after-before > queueTarget {
		t.Errorf("source kept flowing after Stop: %d extra", after-before)
	}
}

func TestSinkDedup(t *testing.T) {
	// A marginal link with shadowing causes ACK losses and therefore MAC
	// retransmissions of already-delivered frames; the sink must not double
	// count.
	eng, tx, rx := buildPair(5, 4, 66)
	tx.StartSaturated(2, func() int { return 500 })
	eng.RunUntil(2 * time.Second)
	if rx.Delivered().Frames() == 0 {
		t.Fatal("nothing delivered")
	}
	retries := tx.MAC().Stats().Get("tx.retry")
	if retries == 0 {
		t.Skip("no retransmissions occurred; dedup not exercised at this seed")
	}
	// Unique deliveries can never exceed distinct sequence numbers sent.
	sent := tx.MAC().Stats().Get("tx.data") - retries
	if rx.Delivered().Frames() > sent {
		t.Errorf("delivered %d > unique frames sent %d", rx.Delivered().Frames(), sent)
	}
}

func TestOnDeliverCallback(t *testing.T) {
	eng, tx, rx := buildPair(6, 0, 10)
	var seen int
	rx.OnDeliver(func(f frame.Frame) {
		if f.Src != 1 {
			t.Errorf("unexpected src %d", f.Src)
		}
		seen++
	})
	tx.StartSaturated(2, func() int { return 800 })
	eng.RunUntil(200 * time.Millisecond)
	if seen == 0 || int64(seen) != rx.Delivered().Frames() {
		t.Errorf("callback count %d vs frames %d", seen, rx.Delivered().Frames())
	}
}

func TestMultiSourceRoundRobin(t *testing.T) {
	eng := sim.New(7)
	medium := channel.NewMedium(eng, radio.NewLogNormal2400(2.9, 0), -95)
	cfg := mac.Config{PHY: phy.DSSS(), CCAThresholdDBm: -81, FixedCW: 8}
	mk := func(id frame.NodeID, pos geom.Point) *Peer {
		tr := medium.AddNode(id, pos, 0, nil)
		m := mac.New(eng, tr, cfg)
		tr.SetListener(m)
		return NewPeer(eng, m)
	}
	ap := mk(100, geom.Pt(0, 0))
	c1 := mk(1, geom.Pt(10, 0))
	c2 := mk(2, geom.Pt(0, 10))

	ap.StartSaturated(1, func() int { return 600 })
	ap.StartSaturated(2, func() int { return 600 })
	eng.RunUntil(time.Second)

	g1 := c1.DeliveredFrom(100).Frames()
	g2 := c2.DeliveredFrom(100).Frames()
	if g1 == 0 || g2 == 0 {
		t.Fatalf("starved destination: c1=%d c2=%d", g1, g2)
	}
	if ratio := float64(g1) / float64(g2); ratio < 0.8 || ratio > 1.25 {
		t.Errorf("unfair split: c1=%d c2=%d", g1, g2)
	}
}

func TestMixedCBRAndSaturatedSources(t *testing.T) {
	eng := sim.New(8)
	medium := channel.NewMedium(eng, radio.NewLogNormal2400(2.9, 0), -95)
	cfg := mac.Config{PHY: phy.DSSS(), CCAThresholdDBm: -81, FixedCW: 8}
	mk := func(id frame.NodeID, pos geom.Point) *Peer {
		tr := medium.AddNode(id, pos, 0, nil)
		m := mac.New(eng, tr, cfg)
		tr.SetListener(m)
		return NewPeer(eng, m)
	}
	ap := mk(100, geom.Pt(0, 0))
	c1 := mk(1, geom.Pt(10, 0))
	c2 := mk(2, geom.Pt(0, 10))

	ap.StartCBR(2, func() int { return 500 }, 80_000)
	ap.StartSaturated(1, func() int { return 500 })
	eng.RunUntil(2 * time.Second)

	cbr := c2.DeliveredFrom(100).BitsPerSecond(2 * time.Second)
	if cbr > 100_000 || cbr < 50_000 {
		t.Errorf("CBR delivery = %.0f bps, want ~80k", cbr)
	}
	if sat := c1.DeliveredFrom(100).BitsPerSecond(2 * time.Second); sat < 3*cbr {
		t.Errorf("saturated flow should dominate: %.0f vs %.0f", sat, cbr)
	}
}
