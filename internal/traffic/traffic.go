// Package traffic drives application load over plain-DCF stations: saturated
// sources (the paper's backlogged Iperf TCP senders), constant-bit-rate
// sources (the 3 Mbps CBR streams of Table I) and Poisson sources, plus a
// measuring sink with standard 802.11 duplicate suppression.
//
// CO-MAP stations use comap.Endpoint instead, which integrates the
// selective-repeat link layer; this package serves the baseline protocol.
package traffic

import (
	"math/rand"
	"time"

	"repro/internal/frame"
	"repro/internal/mac"
	"repro/internal/sim"
	"repro/internal/stats"
)

// queueTarget is how many frames a source keeps in the MAC queue.
const queueTarget = 2

// creditInterval is the CBR token-refill period.
const creditInterval = 10 * time.Millisecond

// source is one outgoing flow of a Peer.
type source struct {
	dst       frame.NodeID
	payloadFn func() int
	seq       uint16
	// credit is the CBR byte bucket; nil = saturated.
	credit   *float64
	rateBps  float64
	creditEv sim.Handle
	active   bool
}

// Peer binds traffic sources and a measuring sink to one MAC instance (a
// station can be either or both — APs with downlink traffic are both, and an
// AP carries one source per associated client).
type Peer struct {
	eng *sim.Engine
	m   *mac.MAC

	sources []*source
	rr      int

	// sink state: last sequence number per source for duplicate rejection.
	lastSeq   map[frame.NodeID]uint16
	hasLast   map[frame.NodeID]bool
	delivered stats.GoodputMeter
	bySrc     map[frame.NodeID]*stats.GoodputMeter
	onDeliver func(f frame.Frame)
}

// NewPeer wires a peer onto the MAC, installing its hooks.
func NewPeer(eng *sim.Engine, m *mac.MAC) *Peer {
	p := &Peer{
		eng:     eng,
		m:       m,
		lastSeq: make(map[frame.NodeID]uint16),
		hasLast: make(map[frame.NodeID]bool),
		bySrc:   make(map[frame.NodeID]*stats.GoodputMeter),
	}
	m.SetHooks(mac.Hooks{
		OnSendComplete: func(frame.Frame, bool) { p.pump() },
		OnReceive:      p.onReceive,
	})
	return p
}

// MAC returns the underlying MAC.
func (p *Peer) MAC() *mac.MAC { return p.m }

// Delivered returns the aggregate unique-payload meter of the sink.
func (p *Peer) Delivered() *stats.GoodputMeter { return &p.delivered }

// DeliveredFrom returns the per-source unique-payload meter (created on
// first use).
func (p *Peer) DeliveredFrom(src frame.NodeID) *stats.GoodputMeter {
	g, ok := p.bySrc[src]
	if !ok {
		g = &stats.GoodputMeter{}
		p.bySrc[src] = g
	}
	return g
}

// OnDeliver registers a callback for each newly delivered (unique) frame.
func (p *Peer) OnDeliver(fn func(f frame.Frame)) { p.onDeliver = fn }

// StartSaturated begins a backlogged stream towards dst; payloadFn is
// consulted per frame. Multiple streams to distinct destinations share the
// MAC round-robin.
func (p *Peer) StartSaturated(dst frame.NodeID, payloadFn func() int) {
	p.sources = append(p.sources, &source{dst: dst, payloadFn: payloadFn, active: true})
	p.pump()
}

// StartCBR begins a constant-bit-rate stream offering bitsPerSec towards
// dst.
func (p *Peer) StartCBR(dst frame.NodeID, payloadFn func() int, bitsPerSec float64) {
	credit := 0.0
	s := &source{dst: dst, payloadFn: payloadFn, credit: &credit, rateBps: bitsPerSec, active: true}
	p.sources = append(p.sources, s)
	p.scheduleCredit(s)
	p.pump()
}

func (p *Peer) scheduleCredit(s *source) {
	s.creditEv = p.eng.AfterTagged(creditInterval, sim.TagTraffic, int32(p.m.ID()), func() {
		*s.credit += s.rateBps / 8 * creditInterval.Seconds()
		if bucketCap := s.rateBps / 8; *s.credit > bucketCap {
			*s.credit = bucketCap
		}
		p.pump()
		p.scheduleCredit(s)
	})
}

// StartPoisson begins a Poisson arrival process with the given mean frame
// rate towards dst. Poisson arrivals bypass the pump: each arrival enqueues
// directly (queue overflow drops are counted by the MAC).
func (p *Peer) StartPoisson(dst frame.NodeID, payloadFn func() int, framesPerSec float64, rng *rand.Rand) {
	var seq uint16
	var arrive func()
	arrive = func() {
		f := frame.Frame{Kind: frame.Data, Dst: dst, Seq: seq, PayloadBytes: payloadFn()}
		seq++
		_ = p.m.Enqueue(f)
		gap := rng.ExpFloat64() / framesPerSec
		p.eng.AfterTagged(time.Duration(gap*float64(time.Second)), sim.TagTraffic, int32(p.m.ID()), arrive)
	}
	gap := rng.ExpFloat64() / framesPerSec
	p.eng.AfterTagged(time.Duration(gap*float64(time.Second)), sim.TagTraffic, int32(p.m.ID()), arrive)
}

// Stop halts all sources; queued frames drain normally.
func (p *Peer) Stop() {
	for _, s := range p.sources {
		p.pauseSource(s)
	}
}

func (p *Peer) pauseSource(s *source) {
	s.active = false
	if s.creditEv.Active() {
		p.eng.Cancel(s.creditEv)
		s.creditEv = sim.Handle{}
	}
}

func (p *Peer) resumeSource(s *source) (resumed bool) {
	if s.active {
		return false
	}
	s.active = true
	if s.credit != nil && !s.creditEv.Active() {
		p.scheduleCredit(s)
	}
	return true
}

// Pause suspends all sources so Resume can continue them — the station-churn
// "leave" transition (Stop with a way back).
func (p *Peer) Pause() { p.Stop() }

// Resume reactivates every paused source (the churn "re-join").
func (p *Peer) Resume() {
	resumed := false
	for _, s := range p.sources {
		resumed = p.resumeSource(s) || resumed
	}
	if resumed {
		p.pump()
	}
}

// PauseTo suspends only the sources towards dst (a serving station stops
// feeding a departed peer).
func (p *Peer) PauseTo(dst frame.NodeID) {
	for _, s := range p.sources {
		if s.dst == dst {
			p.pauseSource(s)
		}
	}
}

// ResumeTo reactivates the sources towards dst after it re-joined.
func (p *Peer) ResumeTo(dst frame.NodeID) {
	resumed := false
	for _, s := range p.sources {
		if s.dst == dst {
			resumed = p.resumeSource(s) || resumed
		}
	}
	if resumed {
		p.pump()
	}
}

func (p *Peer) pump() {
	if len(p.sources) == 0 {
		return
	}
	for p.m.QueueLen() < queueTarget {
		f, ok := p.nextFrame()
		if !ok {
			return
		}
		if err := p.m.Enqueue(f); err != nil {
			return
		}
	}
}

func (p *Peer) nextFrame() (frame.Frame, bool) {
	for i := 0; i < len(p.sources); i++ {
		s := p.sources[(p.rr+i)%len(p.sources)]
		if !s.active {
			continue
		}
		payload := s.payloadFn()
		if s.credit != nil && *s.credit < float64(payload) {
			continue
		}
		if s.credit != nil {
			*s.credit -= float64(payload)
		}
		f := frame.Frame{Kind: frame.Data, Dst: s.dst, Seq: s.seq, PayloadBytes: payload}
		s.seq++
		p.rr = (p.rr + i + 1) % len(p.sources)
		return f, true
	}
	return frame.Frame{}, false
}

// onReceive implements the sink with 802.11-style duplicate rejection: a
// retransmitted frame whose (src, seq) matches the last reception from that
// source is dropped.
func (p *Peer) onReceive(f frame.Frame, _ float64) {
	if f.Retry && p.hasLast[f.Src] && p.lastSeq[f.Src] == f.Seq {
		return
	}
	p.lastSeq[f.Src] = f.Seq
	p.hasLast[f.Src] = true
	p.delivered.AddPayload(f.PayloadBytes)
	p.DeliveredFrom(f.Src).AddPayload(f.PayloadBytes)
	if p.onDeliver != nil {
		p.onDeliver(f)
	}
}
