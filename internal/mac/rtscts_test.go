package mac

import (
	"testing"
	"time"

	"repro/internal/frame"
	"repro/internal/geom"
)

func rtsCfg() Config {
	cfg := basicCfg()
	cfg.FixedCW = 16
	cfg.RTSThresholdBytes = 1
	return cfg
}

func TestRTSCTSBasicExchange(t *testing.T) {
	n := newTestNet(21, 0)
	a := n.addStation(1, geom.Pt(0, 0), rtsCfg())
	b := n.addStation(2, geom.Pt(8, 0), rtsCfg())
	if err := a.mac.Enqueue(frame.Frame{Kind: frame.Data, Dst: 2, Seq: 1, PayloadBytes: 500}); err != nil {
		t.Fatal(err)
	}
	n.eng.Run()
	if len(b.received) != 1 {
		t.Fatalf("received %d frames", len(b.received))
	}
	if len(a.completed) != 1 || !a.completed[0].acked {
		t.Fatalf("completions = %+v", a.completed)
	}
	if a.mac.Stats().Get("tx.rts") != 1 {
		t.Errorf("tx.rts = %d", a.mac.Stats().Get("tx.rts"))
	}
	if b.mac.Stats().Get("rx.rts") != 1 {
		t.Errorf("rx.rts = %d", b.mac.Stats().Get("rx.rts"))
	}
	if a.mac.Stats().Get("cts.timeout") != 0 {
		t.Errorf("cts.timeout = %d", a.mac.Stats().Get("cts.timeout"))
	}
}

func TestRTSThresholdSelectsSmallFramesDirectly(t *testing.T) {
	n := newTestNet(22, 0)
	cfg := rtsCfg()
	cfg.RTSThresholdBytes = 400
	a := n.addStation(1, geom.Pt(0, 0), cfg)
	n.addStation(2, geom.Pt(8, 0), rtsCfg())
	_ = a.mac.Enqueue(frame.Frame{Kind: frame.Data, Dst: 2, Seq: 1, PayloadBytes: 100})
	_ = a.mac.Enqueue(frame.Frame{Kind: frame.Data, Dst: 2, Seq: 2, PayloadBytes: 900})
	n.eng.Run()
	if got := a.mac.Stats().Get("tx.rts"); got != 1 {
		t.Errorf("tx.rts = %d, want 1 (only the 900-byte frame)", got)
	}
	if len(a.completed) != 2 {
		t.Errorf("completions = %d", len(a.completed))
	}
}

func TestCTSTimeoutRetriesAndGivesUp(t *testing.T) {
	n := newTestNet(23, 0)
	cfg := rtsCfg()
	cfg.RetryLimit = 2
	a := n.addStation(1, geom.Pt(0, 0), cfg)
	// Destination 9 does not exist: no CTS ever comes.
	if err := a.mac.Enqueue(frame.Frame{Kind: frame.Data, Dst: 9, PayloadBytes: 500}); err != nil {
		t.Fatal(err)
	}
	n.eng.Run()
	if got := a.mac.Stats().Get("cts.timeout"); got != 3 { // initial + 2 retries
		t.Errorf("cts.timeout = %d, want 3", got)
	}
	if got := a.mac.Stats().Get("tx.data"); got != 0 {
		t.Errorf("data sent without CTS: %d", got)
	}
	if len(a.completed) != 1 || a.completed[0].acked {
		t.Errorf("completions = %+v", a.completed)
	}
}

// TestRTSCTSMitigatesHiddenTerminals is the classic motivation: two hidden
// senders and an AP in the middle. With RTS/CTS the AP's CTS reserves the
// medium at the opposite sender, so data collisions drop sharply versus the
// bare-DCF hidden-terminal scenario.
func TestRTSCTSMitigatesHiddenTerminals(t *testing.T) {
	run := func(rts bool) (delivered int, dataTimeouts int64) {
		n := newTestNet(24, 0)
		cfg := basicCfg()
		cfg.FixedCW = 16
		if rts {
			cfg.RTSThresholdBytes = 1
		}
		c1 := n.addStation(1, geom.Pt(0, 0), cfg)
		c2 := n.addStation(2, geom.Pt(36, 0), cfg)
		ap := n.addStation(10, geom.Pt(18, 0), cfg)
		for i := 0; i < 60; i++ {
			_ = c1.mac.Enqueue(frame.Frame{Kind: frame.Data, Dst: 10, Seq: uint16(i), PayloadBytes: 800})
			_ = c2.mac.Enqueue(frame.Frame{Kind: frame.Data, Dst: 10, Seq: uint16(i), PayloadBytes: 800})
		}
		n.eng.RunUntil(8 * time.Second)
		return len(ap.received),
			c1.mac.Stats().Get("ack.timeout") + c2.mac.Stats().Get("ack.timeout")
	}
	plainDelivered, plainTimeouts := run(false)
	rtsDelivered, rtsTimeouts := run(true)

	if plainTimeouts == 0 {
		t.Fatal("bare DCF hidden terminals produced no collisions (scenario broken)")
	}
	if rtsTimeouts >= plainTimeouts/2 {
		t.Errorf("RTS/CTS data timeouts %d not well below bare DCF %d", rtsTimeouts, plainTimeouts)
	}
	if rtsDelivered <= plainDelivered {
		t.Errorf("RTS/CTS delivered %d <= bare DCF %d", rtsDelivered, plainDelivered)
	}
}

func TestRTSCTSBystanderNAV(t *testing.T) {
	// A bystander that hears only the CTS must defer for the whole exchange.
	n := newTestNet(25, 0)
	cfg := rtsCfg()
	a := n.addStation(1, geom.Pt(0, 0), cfg)
	b := n.addStation(2, geom.Pt(8, 0), cfg)
	bystander := n.addStation(3, geom.Pt(14, 0), cfg)

	_ = a.mac.Enqueue(frame.Frame{Kind: frame.Data, Dst: 2, PayloadBytes: 1200})
	// The bystander has its own frame for a far node; it must wait for the
	// exchange (NAV) even though the air is locally idle between segments.
	done := false
	n.eng.Schedule(time.Microsecond, func() {
		_ = bystander.mac.Enqueue(frame.Frame{Kind: frame.Data, Dst: 2, Seq: 9, PayloadBytes: 100})
		done = true
	})
	n.eng.Run()
	if !done {
		t.Fatal("setup failed")
	}
	// Both frames must complete despite the contention.
	if len(a.completed) != 1 || !a.completed[0].acked {
		t.Errorf("a completions = %+v", a.completed)
	}
	if len(bystander.completed) != 1 {
		t.Errorf("bystander completions = %+v", bystander.completed)
	}
	if got := len(b.received); got != 2 {
		t.Errorf("b received %d frames, want 2", got)
	}
}
