package mac

import (
	"time"

	"repro/internal/audit"
	"repro/internal/sim"
)

// DigestState folds the station's MAC state machine into an audit deep
// digest: the transmit queue, backoff/contention state, carrier-sense view
// and every pending timer. Read-only; called at ledger deep-digest slices
// on the sim goroutine.
func (m *MAC) DigestState(h *audit.Hasher) {
	h.Int(len(m.queue))
	for i, f := range m.queue {
		h.Int(int(f.Kind))
		h.Int(int(f.Src))
		h.Int(int(f.Dst))
		h.Uint16(f.Seq)
		h.Int(f.PayloadBytes)
		h.Bool(f.Retry)
		h.Int64(int64(m.queuedAt[i]))
	}
	h.Int(m.retries)
	h.Int(m.cw)
	h.Int(m.counter)
	h.Int(int(m.st))
	h.Float64(m.curRate.BitsPerSec)
	h.Bool(m.busy)
	h.Float64(m.energyMW)
	h.Bool(m.eifs)
	h.Bool(m.navActive)
	h.Bool(m.ackPending)
	h.Bool(m.concurrent)
	h.Bool(m.concPending)
	h.Bool(m.persistent)
	h.Int(int(m.concSrc))
	h.Int(int(m.concDst))
	h.Float64(m.rssi1MW)
	digestTimer(h, m.navEv)
	digestTimer(h, m.difsEv)
	digestTimer(h, m.slotEv)
	digestTimer(h, m.ackTimeoutEv)
	digestTimer(h, m.ctsTimeoutEv)
	digestTimer(h, m.concExpiryEv)
}

// digestTimer folds a timer handle's liveness and deadline.
func digestTimer(h *audit.Hasher, ev sim.Handle) {
	active := ev.Active()
	h.Bool(active)
	var at time.Duration
	if active {
		at = ev.At()
	}
	h.Int64(int64(at))
}
