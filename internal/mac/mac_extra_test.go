package mac

import (
	"testing"
	"time"

	"repro/internal/frame"
	"repro/internal/geom"
	"repro/internal/phy"
)

func TestSetFixedCW(t *testing.T) {
	n := newTestNet(31, 0)
	a := n.addStation(1, geom.Pt(0, 0), basicCfg())
	a.mac.SetFixedCW(64)
	if a.mac.cw != 64 {
		t.Errorf("cw = %d", a.mac.cw)
	}
	a.mac.SetFixedCW(0) // invalid: ignored
	if a.mac.cw != 64 {
		t.Errorf("cw after invalid set = %d", a.mac.cw)
	}
}

func TestPersistentConcurrentAccessors(t *testing.T) {
	n := newTestNet(32, 0)
	a := n.addStation(1, geom.Pt(0, 0), basicCfg())
	if a.mac.PersistentConcurrent() {
		t.Error("persistent should default off")
	}
	a.mac.SetPersistentConcurrent(true)
	if !a.mac.PersistentConcurrent() {
		t.Error("persistent not set")
	}
	a.mac.SetPersistentConcurrent(true) // idempotent
	a.mac.SetPersistentConcurrent(false)
	if a.mac.PersistentConcurrent() {
		t.Error("persistent not cleared")
	}
}

func TestPersistentConcurrentTransmitsThroughBusy(t *testing.T) {
	// A station in persistent mode counts its backoff down through a foreign
	// transmission and sends concurrently.
	n := newTestNet(33, 0)
	cfg := basicCfg()
	cfg.FixedCW = 4
	a := n.addStation(1, geom.Pt(0, 0), cfg)
	b := n.addStation(2, geom.Pt(20, 0), cfg)
	n.addStation(11, geom.Pt(-8, 0), basicCfg())
	n.addStation(12, geom.Pt(28, 0), basicCfg())

	b.mac.SetPersistentConcurrent(true)
	// A long frame from A occupies the air; B enqueues during it.
	_ = a.mac.Enqueue(frame.Frame{Kind: frame.Data, Dst: 11, PayloadBytes: 1400})
	n.eng.After(2*time.Millisecond, func() {
		_ = b.mac.Enqueue(frame.Frame{Kind: frame.Data, Dst: 12, PayloadBytes: 200})
	})
	n.eng.Run()
	if got := b.mac.Stats().Get("et.concurrent_tx"); got != 1 {
		t.Errorf("et.concurrent_tx = %d, want 1", got)
	}
	if len(b.completed) != 1 || !b.completed[0].acked {
		t.Errorf("b completions = %+v", b.completed)
	}
}

func TestNAVDefersThroughAckTail(t *testing.T) {
	// C decodes A's data frame to B and must hold off through the SIFS+ACK
	// tail even though the medium is physically idle in the gap.
	n := newTestNet(34, 0)
	cfg := basicCfg()
	cfg.FixedCW = 1 // zero backoff: C would jump into the gap without NAV
	a := n.addStation(1, geom.Pt(0, 0), cfg)
	b := n.addStation(2, geom.Pt(8, 0), cfg)
	c := n.addStation(3, geom.Pt(4, 7), cfg)

	_ = a.mac.Enqueue(frame.Frame{Kind: frame.Data, Dst: 2, Seq: 1, PayloadBytes: 800})
	// C's frame becomes pending exactly when A's data is mid-air.
	n.eng.After(2*time.Millisecond, func() {
		_ = c.mac.Enqueue(frame.Frame{Kind: frame.Data, Dst: 2, Seq: 2, PayloadBytes: 100})
	})
	n.eng.Run()
	// Both exchanges must succeed: without NAV, C's frame would collide with
	// B's ACK at A (and cost a retry).
	if got := a.mac.Stats().Get("ack.timeout"); got != 0 {
		t.Errorf("A suffered %d ack timeouts (NAV not honoured?)", got)
	}
	if len(b.received) != 2 {
		t.Errorf("B received %d frames", len(b.received))
	}
}

func TestEIFSAfterCorruptedFrame(t *testing.T) {
	// After receiving a corrupted frame the next deferral uses EIFS.
	n := newTestNet(35, 0)
	a := n.addStation(1, geom.Pt(0, 0), basicCfg())
	a.mac.eifs = true
	a.mac.busy = false
	if err := a.mac.Enqueue(frame.Frame{Kind: frame.Data, Dst: 9, PayloadBytes: 10}); err != nil {
		t.Fatal(err)
	}
	// The first transmission must start no earlier than EIFS.
	start := a.mac.Config().PHY.EIFS()
	n.eng.RunUntil(start - time.Microsecond)
	if a.mac.Stats().Get("tx.data") != 0 {
		t.Error("transmitted before EIFS elapsed")
	}
	n.eng.RunUntil(start + time.Microsecond)
	if a.mac.Stats().Get("tx.data") != 1 {
		t.Error("did not transmit right after EIFS")
	}
}

// fixedCap caps every concurrent transmission to 1 Mbps.
type fixedCap struct{}

func (fixedCap) CapRate(_, _, _ frame.NodeID, chosen phy.Rate) phy.Rate {
	if chosen.BitsPerSec > 1e6 {
		return phy.RateDSSS1
	}
	return chosen
}

func TestRateCapAppliedOnlyWhenConcurrent(t *testing.T) {
	n := newTestNet(36, 0)
	cfg := basicCfg()
	cfg.FixedCW = 8
	cfg.SendDiscoveryHeader = true
	cfg.Concurrency = allowAll{}
	cfg.RateCap = fixedCap{}
	cfg.Rates = fixedRate{phy.RateDSSS11}
	a, bSt, _, _ := exposedTerminalTopology(n, cfg)

	for i := 0; i < 30; i++ {
		_ = a.mac.Enqueue(frame.Frame{Kind: frame.Data, Dst: 11, Seq: uint16(i), PayloadBytes: 400})
		_ = bSt.mac.Enqueue(frame.Frame{Kind: frame.Data, Dst: 12, Seq: uint16(i), PayloadBytes: 400})
	}
	n.eng.RunUntil(3 * time.Second)
	for _, s := range []*station{a, bSt} {
		conc := s.mac.Stats().Get("et.concurrent_tx")
		capped := s.mac.Stats().Get("tx.rate.1M")
		full := s.mac.Stats().Get("tx.rate.11M")
		if conc == 0 {
			t.Fatalf("station %d never transmitted concurrently", s.mac.ID())
		}
		if capped == 0 {
			t.Errorf("station %d: rate cap never applied (conc=%d)", s.mac.ID(), conc)
		}
		if full == 0 {
			t.Errorf("station %d: non-concurrent transmissions should stay at 11M", s.mac.ID())
		}
	}
}

// fixedRate is a RateSelector pinned to one rate.
type fixedRate struct{ r phy.Rate }

func (f fixedRate) RateFor(frame.NodeID) phy.Rate         { return f.r }
func (f fixedRate) Feedback(frame.NodeID, phy.Rate, bool) {}

func TestAckCovers(t *testing.T) {
	tests := []struct {
		name string
		ack  frame.Frame
		seq  uint16
		want bool
	}{
		{"direct match", frame.Frame{Kind: frame.Ack, Seq: 5}, 5, true},
		{"plain ack other seq", frame.Frame{Kind: frame.Ack, Seq: 6}, 5, false},
		{"srack direct", frame.Frame{Kind: frame.SRAck, Seq: 9}, 9, true},
		{"srack bitmap hit", frame.Frame{Kind: frame.SRAck, Seq: 9, Bitmap: 1 << 3}, 5, true},
		{"srack bitmap miss", frame.Frame{Kind: frame.SRAck, Seq: 9, Bitmap: 1 << 2}, 5, false},
		{"srack too old", frame.Frame{Kind: frame.SRAck, Seq: 100, Bitmap: ^uint32(0)}, 5, false},
		{"wraparound", frame.Frame{Kind: frame.SRAck, Seq: 2, Bitmap: 1 << 4}, 0xFFFD, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := ackCovers(tt.ack, tt.seq); got != tt.want {
				t.Errorf("ackCovers = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestLocationBeaconBroadcastPath(t *testing.T) {
	n := newTestNet(37, 0)
	a := n.addStation(1, geom.Pt(0, 0), basicCfg())
	obs := n.addStation(2, geom.Pt(8, 0), basicCfg())
	var beacons []frame.Frame
	obs.mac.SetHooks(Hooks{OnControl: func(f frame.Frame, _ float64) {
		beacons = append(beacons, f)
	}})
	_ = a.mac.Enqueue(frame.Frame{Kind: frame.LocationBeacon, Dst: frame.Broadcast, Seq: 1, X: 3, Y: 4})
	n.eng.Run()
	if len(beacons) != 1 || beacons[0].X != 3 || beacons[0].Y != 4 {
		t.Errorf("beacons = %+v", beacons)
	}
	// Beacons complete without an ACK exchange.
	if len(a.completed) != 1 || !a.completed[0].acked {
		t.Errorf("completions = %+v", a.completed)
	}
	if a.mac.Stats().Get("ack.timeout") != 0 {
		t.Error("beacon waited for an ACK")
	}
}

func TestTransceiverAccessor(t *testing.T) {
	n := newTestNet(38, 0)
	a := n.addStation(1, geom.Pt(0, 0), basicCfg())
	if a.mac.Transceiver() == nil || a.mac.Transceiver().ID() != 1 {
		t.Error("Transceiver accessor broken")
	}
}
