package mac

import (
	"testing"
	"time"

	"repro/internal/frame"
	"repro/internal/geom"
)

// pairPolicy allows concurrency only towards an explicit destination set.
type pairPolicy map[frame.NodeID]bool

func (p pairPolicy) Allowed(_, _, ourDst frame.NodeID) bool { return p[ourDst] }

// TestReceiverSwitchPromotesValidDestination reproduces the paper's §IV-C1
// alternative-receiver rule: the AP's head-of-queue frame targets a receiver
// too close to the ongoing transmitter, but a frame for a safer receiver
// waits behind it and must be promoted and sent concurrently.
func TestReceiverSwitchPromotesValidDestination(t *testing.T) {
	n := newTestNet(41, 0)
	cfg := basicCfg()
	cfg.FixedCW = 8
	cfg.SendDiscoveryHeader = true

	// Ongoing link: C(20,0) -> D(28,0). The AP at (0,0) serves two clients:
	// "near" (towards the ongoing pair — unsafe) and "far" (away — safe).
	apCfg := cfg
	apCfg.FixedCW = 16                      // the AP loses the first access race by construction
	apCfg.Concurrency = pairPolicy{5: true} // only the far client validates
	cCfg := cfg
	cCfg.FixedCW = 1 // C transmits right after DIFS
	ap := n.addStation(1, geom.Pt(0, 0), apCfg)
	c := n.addStation(2, geom.Pt(20, 0), cCfg)
	n.addStation(3, geom.Pt(28, 0), cfg) // D
	n.addStation(4, geom.Pt(12, 0), cfg) // near client (unsafe)
	far := n.addStation(5, geom.Pt(-8, 0), cfg)

	// Queue: unsafe destination first, safe one behind it; the ongoing
	// transmission is long enough to cover the AP's whole backoff.
	_ = ap.mac.Enqueue(frame.Frame{Kind: frame.Data, Dst: 4, Seq: 1, PayloadBytes: 400})
	_ = ap.mac.Enqueue(frame.Frame{Kind: frame.Data, Dst: 5, Seq: 2, PayloadBytes: 400})
	_ = c.mac.Enqueue(frame.Frame{Kind: frame.Data, Dst: 3, Seq: 9, PayloadBytes: 1400})
	n.eng.RunUntil(time.Second)

	if got := ap.mac.Stats().Get("et.receiver_switch"); got == 0 {
		t.Fatalf("receiver switch never happened: %v", ap.mac.Stats().Snapshot())
	}
	if got := ap.mac.Stats().Get("et.concurrent_tx"); got == 0 {
		t.Error("promoted frame was not sent concurrently")
	}
	// The far client's frame is delivered first.
	if len(far.received) == 0 {
		t.Fatal("far client received nothing")
	}
	if far.received[0].Seq != 2 {
		t.Errorf("far client first frame seq = %d", far.received[0].Seq)
	}
}

// TestReceiverSwitchLeavesOrderWhenNothingValidates: with no safe
// alternative the queue order is untouched.
func TestReceiverSwitchLeavesOrderWhenNothingValidates(t *testing.T) {
	n := newTestNet(42, 0)
	cfg := basicCfg()
	cfg.FixedCW = 8
	cfg.SendDiscoveryHeader = true
	cfg.Concurrency = denyAll{}
	ap := n.addStation(1, geom.Pt(0, 0), cfg)
	c := n.addStation(2, geom.Pt(20, 0), cfg)
	n.addStation(3, geom.Pt(28, 0), cfg)
	sink := n.addStation(4, geom.Pt(8, 0), cfg)

	_ = ap.mac.Enqueue(frame.Frame{Kind: frame.Data, Dst: 4, Seq: 1, PayloadBytes: 300})
	_ = ap.mac.Enqueue(frame.Frame{Kind: frame.Data, Dst: 4, Seq: 2, PayloadBytes: 300})
	n.eng.Schedule(30*time.Microsecond, func() {
		_ = c.mac.Enqueue(frame.Frame{Kind: frame.Data, Dst: 3, Seq: 9, PayloadBytes: 1000})
	})
	n.eng.RunUntil(time.Second)

	if got := ap.mac.Stats().Get("et.receiver_switch"); got != 0 {
		t.Errorf("receiver switch with deny-all policy: %d", got)
	}
	if len(sink.received) != 2 || sink.received[0].Seq != 1 || sink.received[1].Seq != 2 {
		t.Errorf("delivery order disturbed: %+v", sink.received)
	}
}
