package mac

import (
	"testing"
	"time"

	"repro/internal/frame"
)

// TestHeaderDecodeRate checks that in the saturated exposed-terminal square
// most discovery headers are actually decodable by the opposite sender — the
// prerequisite for CO-MAP's concurrency chain. A regression here (e.g. radios
// stuck locked on ACK tails) silently collapses all ET gains.
func TestHeaderDecodeRate(t *testing.T) {
	n := newTestNet(11, 0)
	cfg := basicCfg()
	cfg.FixedCW = 16
	cfg.SendDiscoveryHeader = true
	cfg.Concurrency = allowAll{}
	a, b, _, _ := exposedTerminalTopology(n, cfg)

	decoded := 0
	b.mac.SetHooks(Hooks{OnControl: func(f frame.Frame, _ float64) {
		if f.Kind == frame.ComapHeader && f.Src == 1 {
			decoded++
		}
	}})

	const frames = 20
	for i := 0; i < frames; i++ {
		_ = a.mac.Enqueue(frame.Frame{Kind: frame.Data, Dst: 11, Seq: uint16(i), PayloadBytes: 1000})
		_ = b.mac.Enqueue(frame.Frame{Kind: frame.Data, Dst: 12, Seq: uint16(i), PayloadBytes: 1000})
	}
	n.eng.RunUntil(time.Second)

	// B cannot decode headers sent while it is itself transmitting
	// (half-duplex), so 100% is unreachable; but in the alternating steady
	// state at least half must get through.
	if decoded < frames/2 {
		t.Errorf("B decoded %d/%d of A's headers", decoded, frames)
	}
	total := a.mac.Stats().Get("et.concurrent_tx") + b.mac.Stats().Get("et.concurrent_tx")
	if total < frames/2 {
		t.Errorf("only %d concurrent transmissions across %d frames", total, 2*frames)
	}
}
