package mac

import (
	"testing"
	"time"

	"repro/internal/channel"
	"repro/internal/frame"
	"repro/internal/geom"
	"repro/internal/phy"
	"repro/internal/radio"
	"repro/internal/sim"
)

// testNet wires stations over a shared medium for MAC tests.
type testNet struct {
	eng    *sim.Engine
	medium *channel.Medium
}

type station struct {
	mac       *MAC
	received  []frame.Frame
	completed []completion
}

type completion struct {
	f     frame.Frame
	acked bool
}

func newTestNet(seed int64, sigmaDB float64) *testNet {
	eng := sim.New(seed)
	m := channel.NewMedium(eng, radio.NewLogNormal2400(2.9, sigmaDB), -95)
	return &testNet{eng: eng, medium: m}
}

func (n *testNet) addStation(id frame.NodeID, pos geom.Point, cfg Config) *station {
	s := &station{}
	tr := n.medium.AddNode(id, pos, 0, nil)
	s.mac = New(n.eng, tr, cfg)
	s.mac.SetHooks(Hooks{
		OnReceive: func(f frame.Frame, _ float64) { s.received = append(s.received, f) },
		OnSendComplete: func(f frame.Frame, acked bool) {
			s.completed = append(s.completed, completion{f, acked})
		},
	})
	// The transceiver listener is the MAC itself.
	tr.SetListener(s.mac)
	return s
}

func basicCfg() Config {
	return Config{
		PHY:             phy.DSSS(),
		CCAThresholdDBm: -81,
		FixedCW:         1, // deterministic zero backoff for timing tests
	}
}

func TestSingleFrameDataAckExchange(t *testing.T) {
	n := newTestNet(1, 0)
	a := n.addStation(1, geom.Pt(0, 0), basicCfg())
	b := n.addStation(2, geom.Pt(8, 0), basicCfg())

	f := frame.Frame{Kind: frame.Data, Dst: 2, Seq: 42, PayloadBytes: 1000}
	if err := a.mac.Enqueue(f); err != nil {
		t.Fatal(err)
	}
	n.eng.Run()

	if len(b.received) != 1 {
		t.Fatalf("receiver got %d frames", len(b.received))
	}
	if b.received[0].Seq != 42 || b.received[0].Src != 1 {
		t.Errorf("frame = %+v", b.received[0])
	}
	if len(a.completed) != 1 || !a.completed[0].acked {
		t.Fatalf("completions = %+v", a.completed)
	}
	// Deterministic timing with FixedCW=1 (zero backoff):
	// DIFS + data airtime + SIFS + ack airtime.
	p := phy.DSSS()
	want := p.DIFS() +
		p.FrameAirtime(phy.RateDSSS1, phy.MACHeaderBytes+1000) +
		p.SIFS + p.ACKAirtime()
	if n.eng.Now() != want {
		t.Errorf("completion time = %v, want %v", n.eng.Now(), want)
	}
	if a.mac.Stats().Get("ack.timeout") != 0 {
		t.Error("unexpected ack timeout")
	}
}

func TestQueueDrainsInOrder(t *testing.T) {
	n := newTestNet(2, 0)
	a := n.addStation(1, geom.Pt(0, 0), basicCfg())
	b := n.addStation(2, geom.Pt(8, 0), basicCfg())
	for i := 0; i < 5; i++ {
		if err := a.mac.Enqueue(frame.Frame{Kind: frame.Data, Dst: 2, Seq: uint16(i), PayloadBytes: 200}); err != nil {
			t.Fatal(err)
		}
	}
	n.eng.Run()
	if len(b.received) != 5 {
		t.Fatalf("received %d frames", len(b.received))
	}
	for i, f := range b.received {
		if f.Seq != uint16(i) {
			t.Errorf("frame %d has seq %d", i, f.Seq)
		}
	}
	if a.mac.QueueLen() != 0 {
		t.Errorf("queue not drained: %d", a.mac.QueueLen())
	}
}

func TestQueueFull(t *testing.T) {
	n := newTestNet(3, 0)
	cfg := basicCfg()
	cfg.QueueCap = 2
	a := n.addStation(1, geom.Pt(0, 0), cfg)
	n.addStation(2, geom.Pt(8, 0), basicCfg())
	if err := a.mac.Enqueue(frame.Frame{Kind: frame.Data, Dst: 2}); err != nil {
		t.Fatal(err)
	}
	if err := a.mac.Enqueue(frame.Frame{Kind: frame.Data, Dst: 2}); err != nil {
		t.Fatal(err)
	}
	if err := a.mac.Enqueue(frame.Frame{Kind: frame.Data, Dst: 2}); err != ErrQueueFull {
		t.Errorf("err = %v, want ErrQueueFull", err)
	}
	if a.mac.Stats().Get("drop.queue_full") != 1 {
		t.Error("drop counter not incremented")
	}
}

func TestRetryLimitGivesUp(t *testing.T) {
	n := newTestNet(4, 0)
	cfg := basicCfg()
	cfg.FixedCW = 4
	cfg.RetryLimit = 3
	a := n.addStation(1, geom.Pt(0, 0), cfg)
	// Destination 9 does not exist: no ACK will ever come.
	if err := a.mac.Enqueue(frame.Frame{Kind: frame.Data, Dst: 9, PayloadBytes: 100}); err != nil {
		t.Fatal(err)
	}
	n.eng.Run()
	if len(a.completed) != 1 || a.completed[0].acked {
		t.Fatalf("completions = %+v", a.completed)
	}
	// 1 initial + 3 retries.
	if got := a.mac.Stats().Get("tx.data"); got != 4 {
		t.Errorf("tx.data = %d, want 4", got)
	}
	if got := a.mac.Stats().Get("ack.timeout"); got != 4 {
		t.Errorf("ack.timeout = %d, want 4", got)
	}
	if got := a.mac.Stats().Get("drop.retry_limit"); got != 1 {
		t.Errorf("drop.retry_limit = %d", got)
	}
}

func TestNoRetransmitMode(t *testing.T) {
	n := newTestNet(5, 0)
	cfg := basicCfg()
	cfg.NoRetransmit = true
	a := n.addStation(1, geom.Pt(0, 0), cfg)
	if err := a.mac.Enqueue(frame.Frame{Kind: frame.Data, Dst: 9, PayloadBytes: 100}); err != nil {
		t.Fatal(err)
	}
	n.eng.Run()
	if len(a.completed) != 1 || a.completed[0].acked {
		t.Fatalf("completions = %+v", a.completed)
	}
	if got := a.mac.Stats().Get("tx.data"); got != 1 {
		t.Errorf("tx.data = %d, want 1 (no retransmission)", got)
	}
}

func TestBroadcastNoAck(t *testing.T) {
	n := newTestNet(6, 0)
	a := n.addStation(1, geom.Pt(0, 0), basicCfg())
	b := n.addStation(2, geom.Pt(8, 0), basicCfg())
	c := n.addStation(3, geom.Pt(0, 8), basicCfg())
	if err := a.mac.Enqueue(frame.Frame{Kind: frame.Data, Dst: frame.Broadcast, PayloadBytes: 50}); err != nil {
		t.Fatal(err)
	}
	n.eng.Run()
	if len(a.completed) != 1 || !a.completed[0].acked {
		t.Fatalf("broadcast completion = %+v", a.completed)
	}
	if len(b.received) != 1 || len(c.received) != 1 {
		t.Errorf("broadcast delivery: b=%d c=%d", len(b.received), len(c.received))
	}
	if a.mac.Stats().Get("ack.timeout") != 0 {
		t.Error("broadcast must not wait for ACK")
	}
}

func TestCarrierSenseSerializesNeighbors(t *testing.T) {
	// Two saturated stations in CS range of each other, one receiver each:
	// CSMA must serialize them with no ACK timeouts (sigma=0 keeps the
	// geometry deterministic).
	n := newTestNet(7, 0)
	cfg := basicCfg()
	cfg.FixedCW = 16
	a := n.addStation(1, geom.Pt(0, 0), cfg)
	b := n.addStation(2, geom.Pt(10, 0), cfg)
	n.addStation(11, geom.Pt(0, 5), basicCfg())
	n.addStation(12, geom.Pt(10, 5), basicCfg())

	for i := 0; i < 20; i++ {
		if err := a.mac.Enqueue(frame.Frame{Kind: frame.Data, Dst: 11, Seq: uint16(i), PayloadBytes: 500}); err != nil {
			t.Fatal(err)
		}
		if err := b.mac.Enqueue(frame.Frame{Kind: frame.Data, Dst: 12, Seq: uint16(i), PayloadBytes: 500}); err != nil {
			t.Fatal(err)
		}
	}
	n.eng.Run()
	for _, s := range []*station{a, b} {
		if got := s.mac.Stats().Get("ack.timeout"); got != 0 {
			t.Errorf("station %d ack timeouts = %d, want 0 (carrier sense should prevent collisions)",
				s.mac.ID(), got)
		}
		if len(s.completed) != 20 {
			t.Errorf("station %d completed %d frames", s.mac.ID(), len(s.completed))
		}
	}
}

func TestHiddenTerminalsCollide(t *testing.T) {
	// C1 and C2 are out of each other's CS range; the AP sits between them.
	// Without RTS/CTS their saturated transmissions must collide sometimes.
	n := newTestNet(8, 0)
	cfg := basicCfg()
	cfg.FixedCW = 64
	c1 := n.addStation(1, geom.Pt(0, 0), cfg)
	c2 := n.addStation(2, geom.Pt(36, 0), cfg)
	ap := n.addStation(10, geom.Pt(18, 0), basicCfg())

	for i := 0; i < 50; i++ {
		_ = c1.mac.Enqueue(frame.Frame{Kind: frame.Data, Dst: 10, Seq: uint16(i), PayloadBytes: 300})
		_ = c2.mac.Enqueue(frame.Frame{Kind: frame.Data, Dst: 10, Seq: uint16(i), PayloadBytes: 300})
	}
	n.eng.RunUntil(5 * time.Second)
	timeouts := c1.mac.Stats().Get("ack.timeout") + c2.mac.Stats().Get("ack.timeout")
	if timeouts == 0 {
		t.Error("hidden terminals should produce ACK timeouts")
	}
	if len(ap.received) == 0 {
		t.Error("AP should still receive some frames")
	}
}

func TestBEBDoublesWindow(t *testing.T) {
	n := newTestNet(9, 0)
	cfg := basicCfg()
	cfg.FixedCW = 0 // binary exponential backoff
	cfg.RetryLimit = 2
	a := n.addStation(1, geom.Pt(0, 0), cfg)
	if err := a.mac.Enqueue(frame.Frame{Kind: frame.Data, Dst: 9, PayloadBytes: 10}); err != nil {
		t.Fatal(err)
	}
	n.eng.Run()
	// After giving up, the window must be back at CWMin+1.
	if a.mac.cw != a.mac.initialCW() {
		t.Errorf("cw = %d, want reset to %d", a.mac.cw, a.mac.initialCW())
	}
	if len(a.completed) != 1 || a.completed[0].acked {
		t.Errorf("completions = %+v", a.completed)
	}
}

func TestDiscoveryHeaderObserved(t *testing.T) {
	n := newTestNet(10, 0)
	cfg := basicCfg()
	cfg.SendDiscoveryHeader = true
	a := n.addStation(1, geom.Pt(0, 0), cfg)
	b := n.addStation(2, geom.Pt(8, 0), basicCfg())
	obs := n.addStation(3, geom.Pt(4, 8), basicCfg())

	var headers []frame.Frame
	obs.mac.SetHooks(Hooks{OnControl: func(f frame.Frame, _ float64) {
		if f.Kind == frame.ComapHeader {
			headers = append(headers, f)
		}
	}})

	if err := a.mac.Enqueue(frame.Frame{Kind: frame.Data, Dst: 2, PayloadBytes: 300}); err != nil {
		t.Fatal(err)
	}
	n.eng.Run()
	if len(headers) != 1 {
		t.Fatalf("observer saw %d headers", len(headers))
	}
	if headers[0].Src != 1 || headers[0].Dst != 2 {
		t.Errorf("header = %+v", headers[0])
	}
	if len(b.received) != 1 {
		t.Errorf("data not delivered: %d", len(b.received))
	}
	if a.mac.Stats().Get("tx.header") != 1 {
		t.Error("tx.header counter")
	}
}

// allowAll permits every concurrent transmission (stand-in for a
// co-occurrence map that validated the pair).
type allowAll struct{}

func (allowAll) Allowed(_, _, _ frame.NodeID) bool { return true }

// denyAll never permits concurrency.
type denyAll struct{}

func (denyAll) Allowed(_, _, _ frame.NodeID) bool { return false }

// exposedTerminalTopology builds the classic ET square: two links whose
// senders carrier-sense each other but whose receivers are interference-free.
//
//	APa(-8,0) <- A(0,0)    B(20,0) -> APb(28,0)
//
// The CCA threshold is lowered to -86 dBm so senders also defer through the
// remote AP's ACK tails (CS range ~38 m covers the whole square), keeping
// header transmissions cleanly decodable.
func exposedTerminalTopology(n *testNet, cfg Config) (a, b, apa, apb *station) {
	cfg.CCAThresholdDBm = -86
	apCfg := basicCfg()
	apCfg.CCAThresholdDBm = -86
	a = n.addStation(1, geom.Pt(0, 0), cfg)
	b = n.addStation(2, geom.Pt(20, 0), cfg)
	apa = n.addStation(11, geom.Pt(-8, 0), apCfg)
	apb = n.addStation(12, geom.Pt(28, 0), apCfg)
	return a, b, apa, apb
}

func runSaturatedET(t *testing.T, policy ConcurrencyPolicy, seed int64) (deliveredA, deliveredB int, concurrentTx int64) {
	t.Helper()
	n := newTestNet(seed, 0)
	cfg := basicCfg()
	cfg.FixedCW = 16
	cfg.SendDiscoveryHeader = true
	cfg.Concurrency = policy
	a, b, apa, apb := exposedTerminalTopology(n, cfg)
	for i := 0; i < 400; i++ {
		_ = a.mac.Enqueue(frame.Frame{Kind: frame.Data, Dst: 11, Seq: uint16(i), PayloadBytes: 1000})
		_ = b.mac.Enqueue(frame.Frame{Kind: frame.Data, Dst: 12, Seq: uint16(i), PayloadBytes: 1000})
	}
	n.eng.RunUntil(time.Second)
	return len(apa.received), len(apb.received),
		a.mac.Stats().Get("et.concurrent_tx") + b.mac.Stats().Get("et.concurrent_tx")
}

func TestExposedTerminalConcurrencyImprovesThroughput(t *testing.T) {
	dcfA, dcfB, dcfConc := runSaturatedET(t, denyAll{}, 11)
	if dcfConc != 0 {
		t.Fatalf("deny-all policy produced %d concurrent transmissions", dcfConc)
	}
	comapA, comapB, comapConc := runSaturatedET(t, allowAll{}, 11)
	if comapConc == 0 {
		t.Fatal("allow-all policy never transmitted concurrently")
	}
	dcfTotal := dcfA + dcfB
	comapTotal := comapA + comapB
	if comapTotal <= dcfTotal {
		t.Errorf("concurrency did not help: comap=%d dcf=%d", comapTotal, dcfTotal)
	}
	// The paper reports ~77.5%+ gains; at shape level expect at least +40%.
	if float64(comapTotal) < 1.4*float64(dcfTotal) {
		t.Errorf("gain too small: comap=%d dcf=%d", comapTotal, dcfTotal)
	}
	// Both links should benefit, not one starving the other.
	if comapA == 0 || comapB == 0 {
		t.Errorf("one link starved: a=%d b=%d", comapA, comapB)
	}
}

func TestConcurrentTransmissionsDoNotCorruptReceivers(t *testing.T) {
	n := newTestNet(13, 0)
	cfg := basicCfg()
	cfg.FixedCW = 16
	cfg.SendDiscoveryHeader = true
	cfg.Concurrency = allowAll{}
	a, b, _, _ := exposedTerminalTopology(n, cfg)
	for i := 0; i < 100; i++ {
		_ = a.mac.Enqueue(frame.Frame{Kind: frame.Data, Dst: 11, Seq: uint16(i), PayloadBytes: 1000})
		_ = b.mac.Enqueue(frame.Frame{Kind: frame.Data, Dst: 12, Seq: uint16(i), PayloadBytes: 1000})
	}
	n.eng.RunUntil(2 * time.Second)
	// In this geometry concurrent transmissions are SIR-safe, so ACK
	// timeouts should be rare (only ACK/data races).
	for _, s := range []*station{a, b} {
		total := s.mac.Stats().Get("tx.data")
		timeouts := s.mac.Stats().Get("ack.timeout")
		if total == 0 {
			t.Fatalf("station %d sent nothing", s.mac.ID())
		}
		if float64(timeouts) > 0.2*float64(total) {
			t.Errorf("station %d: %d timeouts out of %d transmissions", s.mac.ID(), timeouts, total)
		}
	}
}

func TestHeaderForOwnLinkDoesNotTriggerConcurrency(t *testing.T) {
	// A transmits to AP; AP has a frame queued for A. The header announcing
	// A->AP must not let AP treat it as a concurrency opportunity (its own
	// reception is the ongoing transmission).
	n := newTestNet(14, 0)
	cfg := basicCfg()
	cfg.FixedCW = 8
	cfg.SendDiscoveryHeader = true
	cfg.Concurrency = allowAll{}
	a := n.addStation(1, geom.Pt(0, 0), cfg)
	ap := n.addStation(10, geom.Pt(8, 0), cfg)
	for i := 0; i < 10; i++ {
		_ = a.mac.Enqueue(frame.Frame{Kind: frame.Data, Dst: 10, Seq: uint16(i), PayloadBytes: 500})
		_ = ap.mac.Enqueue(frame.Frame{Kind: frame.Data, Dst: 1, Seq: uint16(i), PayloadBytes: 500})
	}
	n.eng.RunUntil(2 * time.Second)
	if got := ap.mac.Stats().Get("et.opportunity"); got != 0 {
		t.Errorf("AP counted %d ET opportunities on its own link", got)
	}
	if got := a.mac.Stats().Get("et.opportunity"); got != 0 {
		t.Errorf("A counted %d ET opportunities on its own link", got)
	}
	// Bidirectional traffic must still flow.
	if len(a.received) == 0 || len(ap.received) == 0 {
		t.Errorf("deliveries: a=%d ap=%d", len(a.received), len(ap.received))
	}
}

func TestStatsNamesStable(t *testing.T) {
	n := newTestNet(15, 0)
	a := n.addStation(1, geom.Pt(0, 0), basicCfg())
	n.addStation(2, geom.Pt(8, 0), basicCfg())
	_ = a.mac.Enqueue(frame.Frame{Kind: frame.Data, Dst: 2, PayloadBytes: 10})
	n.eng.Run()
	if a.mac.Stats().Get("tx.data") != 1 {
		t.Error("tx.data should be 1")
	}
}

func TestConfigDefaults(t *testing.T) {
	n := newTestNet(16, 0)
	s := n.addStation(1, geom.Pt(0, 0), Config{PHY: phy.DSSS(), CCAThresholdDBm: -81})
	cfg := s.mac.Config()
	if cfg.RetryLimit != 7 || cfg.QueueCap != 128 {
		t.Errorf("defaults: %+v", cfg)
	}
	if cfg.ETDeltaDBm != -81 {
		t.Errorf("ETDeltaDBm default = %v", cfg.ETDeltaDBm)
	}
	if cfg.Rates == nil {
		t.Error("Rates default missing")
	}
}
