// Package mac implements the IEEE 802.11 Distributed Coordination Function
// (DCF) over the simulated channel: slotted binary-exponential (or fixed,
// Bianchi-style) backoff, DIFS/EIFS deferral, data/ACK exchange with
// retransmissions, and physical carrier sense. RTS/CTS is not implemented —
// the paper disables virtual carrier sense in all experiments.
//
// CO-MAP plugs in through three extension points:
//
//   - Config.SendDiscoveryHeader prepends the small CO-MAP header frame to
//     every data transmission so neighbors learn (src, dst) early;
//   - Config.Concurrency is consulted when such a header is decoded: if the
//     co-occurrence map allows it, the node keeps counting its backoff down
//     through the busy medium (an exposed-terminal concurrent transmission),
//     guarded by the RSSI-step rule (RSSI2 ≥ RSSI1 + T'cs ⇒ another exposed
//     terminal started first, abandon — paper Fig. 6);
//   - Hooks.MakeAck lets the link layer replace the plain ACK with a
//     selective-repeat ACK.
package mac

import (
	"errors"
	"math"
	"math/rand"
	"time"

	"repro/internal/channel"
	"repro/internal/frame"
	"repro/internal/metrics"
	"repro/internal/phy"
	"repro/internal/radio"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
)

// RateSelector chooses transmit rates and learns from per-frame feedback.
// Package rate provides implementations.
type RateSelector interface {
	RateFor(dst frame.NodeID) phy.Rate
	Feedback(dst frame.NodeID, r phy.Rate, ok bool)
}

// ConcurrencyPolicy decides whether this node may transmit concurrently with
// an announced ongoing transmission. CO-MAP implements it with the
// co-occurrence map; basic DCF uses nil (never).
type ConcurrencyPolicy interface {
	// Allowed is invoked when the discovery header of the ongoing
	// transmission ongoingSrc→ongoingDst is decoded while this node has a
	// frame queued for ourDst.
	Allowed(ongoingSrc, ongoingDst, ourDst frame.NodeID) bool
}

// RateCapper bounds the data rate of a concurrent (exposed-terminal)
// transmission: the paper derives from positions how strong the ongoing
// transmitter's interference is at our receiver and picks the fastest rate
// whose SIR requirement still holds ("a higher data rate could be adapted if
// it is located further away", §VI-A).
type RateCapper interface {
	// CapRate returns the rate to use instead of chosen while the link
	// ongoingSrc→ongoingDst is on the air.
	CapRate(ongoingSrc, ongoingDst, myDst frame.NodeID, chosen phy.Rate) phy.Rate
}

// Hooks are upper-layer callbacks. Any field may be nil.
type Hooks struct {
	// OnSendComplete fires when the MAC is done with a data frame: acked, or
	// given up (retry limit / no-retransmit mode).
	OnSendComplete func(f frame.Frame, acked bool)
	// OnReceive fires for every successfully decoded data frame addressed to
	// this node. Duplicate suppression is the caller's job (see package arq).
	OnReceive func(f frame.Frame, rssiDBm float64)
	// OnControl fires for decoded discovery headers and location beacons
	// (regardless of addressing), so upper layers can observe the air.
	OnControl func(f frame.Frame, rssiDBm float64)
	// OnAckInfo fires for every decoded (SR)ACK addressed to this node,
	// before sequence matching, so selective-repeat state can be repaired.
	OnAckInfo func(f frame.Frame)
	// MakeAck builds the acknowledgement for a received data frame. nil
	// uses the standard ACK; returning nil suppresses the ACK.
	MakeAck func(data frame.Frame) *frame.Frame
}

// Config parameterises a MAC instance.
type Config struct {
	// PHY supplies timing and the rate set.
	PHY phy.Params
	// CCAThresholdDBm is the energy-detection carrier-sense threshold
	// (the paper's Tcs).
	CCAThresholdDBm float64
	// FixedCW, when positive, uses a constant contention window of that many
	// slots (the Bianchi model's assumption and CO-MAP's adapted setting).
	// Otherwise binary exponential backoff runs between PHY.CWMin and CWMax.
	FixedCW int
	// RetryLimit is the maximum number of retransmissions per frame in
	// standard mode (default 7).
	RetryLimit int
	// NoRetransmit disables MAC retransmission: a missing ACK completes the
	// frame with acked=false. CO-MAP's selective-repeat layer sets this and
	// handles recovery itself (paper §IV-C4).
	NoRetransmit bool
	// QueueCap bounds the transmit queue (default 128).
	QueueCap int
	// RTSThresholdBytes enables the RTS/CTS handshake for data frames whose
	// payload is at least this size (0 disables it, as in all of the
	// paper's experiments; it is provided as a hidden-terminal-mitigation
	// baseline). Bystanders decode RTS/CTS and set their NAV across the
	// announced exchange. Not meant to be combined with the CO-MAP
	// extensions.
	RTSThresholdBytes int
	// SendDiscoveryHeader prepends the CO-MAP header frame to data frames.
	SendDiscoveryHeader bool
	// Concurrency enables exposed-terminal concurrent transmissions.
	Concurrency ConcurrencyPolicy
	// RateCap, when set, bounds the rate of concurrent transmissions by the
	// position-predicted interference (see RateCapper).
	RateCap RateCapper
	// ETDeltaDBm is T'cs: the rise in aggregate RSSI that signals a second
	// exposed terminal has started transmitting (defaults to CCAThresholdDBm).
	ETDeltaDBm float64
	// Rates selects transmit rates; nil uses the PHY's lowest rate.
	Rates RateSelector
	// Metrics, when set, receives the MAC's telemetry: the "mac.access_latency"
	// enqueue→ACK timing and the "mac" airtime state clock whose states
	// (tx/wait/busy/nav/defer/backoff/idle) partition the run duration.
	Metrics *metrics.Registry
	// Trace, when set, receives the MAC's protocol-decision events
	// (mac.enqueue / mac.bo_start / mac.bo_freeze / mac.tx / mac.ack /
	// mac.timeout / mac.drop and the et.join / et.abandon exposed-terminal
	// decisions). Purely observational; nil costs nothing.
	Trace trace.Sink
}

func (c *Config) applyDefaults() {
	if c.RetryLimit == 0 {
		c.RetryLimit = 7
	}
	if c.QueueCap == 0 {
		c.QueueCap = 128
	}
	if c.ETDeltaDBm == 0 {
		c.ETDeltaDBm = c.CCAThresholdDBm
	}
	if c.Rates == nil {
		c.Rates = fixedLowest{c.PHY.LowestRate()}
	}
}

type fixedLowest struct{ r phy.Rate }

func (f fixedLowest) RateFor(frame.NodeID) phy.Rate         { return f.r }
func (f fixedLowest) Feedback(frame.NodeID, phy.Rate, bool) {}

// ErrQueueFull is returned by Enqueue when the transmit queue is at capacity.
var ErrQueueFull = errors.New("mac: transmit queue full")

type phase int

const (
	phaseIdle phase = iota
	phaseAccess
	phaseTxHeader
	phaseTxRTS
	phaseWaitCTS
	phaseTxData
	phaseWaitAck
)

// MAC is one station's DCF instance. It implements channel.Listener.
type MAC struct {
	eng   *sim.Engine
	tr    *channel.Transceiver
	cfg   Config
	rng   *rand.Rand
	hooks Hooks
	stat  *stats.Counter

	queue []frame.Frame
	// queuedAt mirrors queue with each frame's enqueue time, feeding the
	// access-latency timing.
	queuedAt []time.Duration
	retries  int
	cw       int
	counter  int
	st       phase
	curRate  phy.Rate

	busy     bool
	energyMW float64
	eifs     bool
	// navActive implements the basic virtual carrier sense set from the
	// Duration field of decoded frames addressed to other stations: it keeps
	// the medium "busy" across the SIFS+ACK tail of their exchange. (This is
	// not RTS/CTS — that stays disabled as in the paper.)
	navActive bool
	navEv     sim.Handle

	difsEv       sim.Handle
	slotEv       sim.Handle
	ackTimeoutEv sim.Handle
	ctsTimeoutEv sim.Handle

	ackPending bool

	concurrent   bool
	concPending  bool
	concExpiryEv sim.Handle
	rssi1MW      float64
	// concSrc/concDst identify the ongoing link we are overlapping with.
	concSrc, concDst frame.NodeID
	// persistent mirrors the paper's testbed implementation: once the agent
	// has validated that every active neighbouring link can coexist with
	// ours, carrier sense is effectively disabled ("we enable the concurrent
	// transmissions of one ET by disabling its carrier sense with a high CCA
	// threshold", §VI-B) until the agent revokes it.
	persistent bool

	// rateKey caches "tx.rate.<name>" stat keys so the data hot path
	// never concatenates per frame.
	rateKey map[string]string

	accessLatency *metrics.Timing
	dropLatency   *metrics.Timing
	// latencyTo holds the per-destination access-latency timings behind the
	// per-flow delay tails in netsim.Report (p999, worst case).
	latencyTo map[frame.NodeID]*metrics.Timing
	air       *metrics.StateClock
	// owner is the station's ID as an attribution owner for the profiler's
	// tagged timers.
	owner int32

	trace *trace.Emitter
}

var _ channel.Listener = (*MAC)(nil)

// New creates a MAC bound to a transceiver slot on the medium. The caller
// supplies the node's ID and position through medium.AddNode indirectly:
// use Attach for the common construction.
func New(eng *sim.Engine, tr *channel.Transceiver, cfg Config) *MAC {
	cfg.applyDefaults()
	m := &MAC{
		eng:     eng,
		tr:      tr,
		cfg:     cfg,
		rng:     eng.RNG("mac.backoff." + itoa(int(tr.ID()))),
		stat:    stats.NewCounter(),
		counter: -1,
		cw:      0,
		owner:   int32(tr.ID()),
	}
	m.cw = m.initialCW()
	m.rateKey = make(map[string]string, len(cfg.PHY.Rates)+1)
	for _, r := range cfg.PHY.Rates {
		m.rateKey[r.Name] = "tx.rate." + r.Name
	}
	m.rateKey[cfg.PHY.BasicRate.Name] = "tx.rate." + cfg.PHY.BasicRate.Name
	// Nil-safe instruments: with no registry these stay nil and every
	// recording below is a no-op.
	m.accessLatency = cfg.Metrics.Timing("mac.access_latency")
	m.dropLatency = cfg.Metrics.Timing("mac.drop_latency")
	if cfg.Metrics != nil {
		m.latencyTo = make(map[frame.NodeID]*metrics.Timing)
	}
	m.air = cfg.Metrics.StateClock("mac", eng.Now, "idle")
	m.trace = trace.NewEmitter(eng, tr.ID(), cfg.Trace)
	return m
}

// after schedules a MAC-owned timer, attributed to this station under the
// "mac" profiling tag.
func (m *MAC) after(d time.Duration, fn func()) sim.Handle {
	return m.eng.AfterTagged(d, sim.TagMAC, m.owner, fn)
}

// latencyToDst returns the per-destination access-latency timing, creating
// it on first use ("mac.access_latency.to.<dst>"). nil without a registry.
func (m *MAC) latencyToDst(dst frame.NodeID) *metrics.Timing {
	if m.latencyTo == nil {
		return nil
	}
	t, ok := m.latencyTo[dst]
	if !ok {
		t = m.cfg.Metrics.Timing("mac.access_latency.to." + itoa(int(dst)))
		m.latencyTo[dst] = t
	}
	return t
}

// airtimeState derives the current airtime-accounting state. Priority
// matters: a transmitting radio is "tx" whatever the access phase, a busy
// medium masks a frozen backoff, and the DIFS/EIFS wait is split out from
// the slot countdown so defer time is visible separately.
func (m *MAC) airtimeState() string {
	switch {
	case m.tr.Transmitting():
		return "tx"
	case m.st == phaseWaitAck || m.st == phaseWaitCTS || m.ackPending:
		return "wait"
	case m.busy:
		return "busy"
	case m.navActive:
		return "nav"
	case m.st == phaseAccess:
		if m.difsEv.Active() {
			return "defer"
		}
		return "backoff"
	default:
		return "idle"
	}
}

// touchAir re-derives the airtime state; called after every transition that
// can change it.
func (m *MAC) touchAir() { m.air.Set(m.airtimeState()) }

// rateStatKey returns the cached "tx.rate.<name>" key, falling back to
// concatenation for rates outside the configured set.
func (m *MAC) rateStatKey(name string) string {
	if k, ok := m.rateKey[name]; ok {
		return k
	}
	return "tx.rate." + name
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for v > 0 {
		i--
		b[i] = byte('0' + v%10)
		v /= 10
	}
	return string(b[i:])
}

func (m *MAC) initialCW() int {
	if m.cfg.FixedCW > 0 {
		return m.cfg.FixedCW
	}
	return m.cfg.PHY.CWMin + 1
}

func (m *MAC) maxCW() int {
	if m.cfg.FixedCW > 0 {
		return m.cfg.FixedCW
	}
	return m.cfg.PHY.CWMax + 1
}

// ID returns the station's node ID.
func (m *MAC) ID() frame.NodeID { return m.tr.ID() }

// Transceiver returns the underlying radio.
func (m *MAC) Transceiver() *channel.Transceiver { return m.tr }

// Config returns the MAC configuration (with defaults applied).
func (m *MAC) Config() Config { return m.cfg }

// SetHooks installs the upper-layer callbacks. Call before traffic starts.
func (m *MAC) SetHooks(h Hooks) { m.hooks = h }

// Stats returns the MAC's protocol counters: "tx.data", "tx.retry",
// "tx.header", "rx.data", "rx.corrupt", "ack.timeout", "et.opportunity",
// "et.concurrent_tx", "et.abandon", "drop.retry_limit", "drop.queue_full".
func (m *MAC) Stats() *stats.Counter { return m.stat }

// QueueLen returns the number of frames waiting (including the one in
// service).
func (m *MAC) QueueLen() int { return len(m.queue) }

// SetFixedCW changes the constant contention window at runtime — CO-MAP's
// packet-size/CW adaptation calls this when the hidden-terminal count
// changes. It takes effect from the next backoff draw.
func (m *MAC) SetFixedCW(w int) {
	if w < 1 {
		return
	}
	m.cfg.FixedCW = w
	m.cw = w
}

// Enqueue queues a data frame (or location beacon) for transmission. The
// frame's Src is overwritten with this station's ID.
func (m *MAC) Enqueue(f frame.Frame) error {
	f.Src = m.ID()
	if len(m.queue) >= m.cfg.QueueCap {
		m.stat.Inc("drop.queue_full")
		if m.trace.Enabled() {
			e := trace.FrameEvent(trace.KindDrop, f)
			e.Reason = "queue_full"
			m.trace.Emit(e)
		}
		return ErrQueueFull
	}
	m.queue = append(m.queue, f)
	m.queuedAt = append(m.queuedAt, m.eng.Now())
	if m.trace.Enabled() {
		e := trace.FrameEvent(trace.KindEnqueue, f)
		e.Queue = len(m.queue)
		m.trace.Emit(e)
	}
	if m.st == phaseIdle && !m.ackPending {
		m.startAccess()
	}
	m.touchAir()
	return nil
}

// --- access procedure ---------------------------------------------------

func (m *MAC) startAccess() {
	m.st = phaseAccess
	if m.counter < 0 {
		m.counter = m.rng.Intn(m.cw)
		if m.trace.Enabled() && len(m.queue) > 0 {
			e := trace.FrameEvent(trace.KindBackoffStart, m.queue[0])
			e.CW = m.cw
			e.Slots = m.counter
			e.Retries = m.retries
			m.trace.Emit(e)
		}
	}
	if m.concurrent {
		// Refresh the RSSI baseline: energy seen now (the ongoing data) is
		// the reference against which a second exposed terminal's start is
		// detected.
		m.rssi1MW = m.energyMW
	}
	m.scheduleDefer()
}

// channelClear reports whether, for backoff purposes, the medium counts as
// available: physically idle with no NAV reservation, or busy with a
// transmission we are allowed to overlap (concurrent exposed-terminal mode,
// which deliberately ignores both physical CS and the NAV).
func (m *MAC) channelClear() bool {
	if m.ackPending {
		return false
	}
	if m.concurrent || m.persistent {
		return true
	}
	return !m.busy && !m.navActive
}

// SetPersistentConcurrent enables or revokes persistent concurrency (carrier
// sense effectively disabled). CO-MAP's agent toggles it when the set of
// active neighbouring links is fully coexistence-validated.
func (m *MAC) SetPersistentConcurrent(on bool) {
	if m.persistent == on {
		return
	}
	m.persistent = on
	m.reevaluateAccess()
	m.touchAir()
}

// PersistentConcurrent reports the current persistent-concurrency state.
func (m *MAC) PersistentConcurrent() bool { return m.persistent }

// setNAV reserves the medium until the end of another station's ACK
// exchange.
func (m *MAC) setNAV(d time.Duration) {
	until := m.eng.Now() + d
	if m.navActive && m.navEv.Active() && m.navEv.At() >= until {
		return // existing reservation already covers it
	}
	m.eng.Cancel(m.navEv)
	m.navActive = true
	m.navEv = m.after(d, func() {
		m.navEv = sim.Handle{}
		m.navActive = false
		m.reevaluateAccess()
		m.touchAir()
	})
	m.reevaluateAccess()
	m.touchAir()
}

func (m *MAC) cancelAccessTimers() {
	m.eng.Cancel(m.difsEv)
	m.difsEv = sim.Handle{}
	m.eng.Cancel(m.slotEv)
	m.slotEv = sim.Handle{}
}

func (m *MAC) scheduleDefer() {
	m.cancelAccessTimers()
	if m.st != phaseAccess || !m.channelClear() {
		m.touchAir()
		return
	}
	d := m.cfg.PHY.DIFS()
	if m.eifs {
		d = m.cfg.PHY.EIFS()
	}
	m.difsEv = m.after(d, m.onDeferComplete)
	m.touchAir()
}

func (m *MAC) onDeferComplete() {
	m.difsEv = sim.Handle{}
	m.eifs = false
	if m.counter == 0 {
		m.beginTx()
		return
	}
	m.slotEv = m.after(m.cfg.PHY.SlotTime, m.onSlot)
	m.touchAir()
}

func (m *MAC) onSlot() {
	m.slotEv = sim.Handle{}
	m.counter--
	if m.counter == 0 {
		m.beginTx()
		return
	}
	m.slotEv = m.after(m.cfg.PHY.SlotTime, m.onSlot)
}

// --- transmission -------------------------------------------------------

func (m *MAC) beginTx() {
	m.cancelAccessTimers()
	m.counter = -1
	if m.concurrent || (m.persistent && m.busy) {
		m.stat.Inc("et.concurrent_tx")
	}
	cur := m.queue[0]
	if m.useRTS(cur) {
		m.st = phaseTxRTS
		rts := frame.Frame{Kind: frame.RTS, Src: m.ID(), Dst: cur.Dst, PayloadBytes: cur.PayloadBytes}
		m.stat.Inc("tx.rts")
		m.transmit(rts, m.cfg.PHY.BasicRate)
		return
	}
	if m.cfg.SendDiscoveryHeader && cur.Kind == frame.Data {
		m.st = phaseTxHeader
		hdr := frame.Frame{Kind: frame.ComapHeader, Src: m.ID(), Dst: cur.Dst}
		m.stat.Inc("tx.header")
		m.transmit(hdr, m.cfg.PHY.BasicRate)
		return
	}
	m.sendData()
}

func (m *MAC) sendData() {
	cur := m.queue[0]
	m.st = phaseTxData
	r := m.cfg.PHY.BasicRate
	overlapping := m.concurrent || (m.persistent && m.busy)
	if cur.Kind == frame.Data {
		r = m.cfg.Rates.RateFor(cur.Dst)
		if overlapping && m.cfg.RateCap != nil && m.concSrc != 0 {
			r = m.cfg.RateCap.CapRate(m.concSrc, m.concDst, cur.Dst, r)
		}
	}
	m.curRate = r
	if m.trace.Enabled() {
		e := trace.FrameEvent(trace.KindTxAttempt, cur)
		e.Rate = r.Name
		e.Retries = m.retries
		e.Concurrent = overlapping
		m.trace.Emit(e)
	}
	m.stat.Inc("tx.data")
	m.stat.Inc(m.rateStatKey(r.Name))
	if cur.Retry {
		m.stat.Inc("tx.retry")
	}
	m.transmit(cur, r)
}

func (m *MAC) transmit(f frame.Frame, r phy.Rate) {
	airtime := m.cfg.PHY.FrameAirtime(r, f.AirBytes())
	if err := m.tr.Transmit(f, r, airtime); err != nil {
		// The radio is busy with an ACK we scheduled; treat as an internal
		// collision and retry through the normal timeout path.
		m.stat.Inc("tx.radio_busy")
		m.st = phaseAccess
		m.counter = -1
		m.startAccess()
	}
	m.touchAir()
}

// TransmitDone implements channel.Listener.
func (m *MAC) TransmitDone(f frame.Frame) {
	defer m.touchAir()
	switch {
	case f.Kind == frame.RTS && m.st == phaseTxRTS:
		m.st = phaseWaitCTS
		m.ctsTimeoutEv = m.after(m.ctsTimeout(), m.onCTSTimeout)
	case f.Kind == frame.ComapHeader && m.st == phaseTxHeader:
		m.sendData()
	case m.st == phaseTxData && (f.Kind == frame.Data || f.Kind == frame.LocationBeacon):
		if f.Kind != frame.Data || f.Dst == frame.Broadcast {
			m.completeCurrent(true, "broadcast")
			return
		}
		m.st = phaseWaitAck
		m.ackTimeoutEv = m.after(m.cfg.PHY.ACKTimeout(), m.onAckTimeout)
	case f.IsAck() || f.Kind == frame.CTS:
		m.ackPending = false
		m.resumeAfterAck()
	}
}

// useRTS reports whether the frame is sent behind an RTS/CTS handshake.
func (m *MAC) useRTS(f frame.Frame) bool {
	return m.cfg.RTSThresholdBytes > 0 && f.Kind == frame.Data &&
		f.Dst != frame.Broadcast && f.PayloadBytes >= m.cfg.RTSThresholdBytes
}

// ctsTimeout is how long the RTS sender waits for the CTS.
func (m *MAC) ctsTimeout() time.Duration {
	p := m.cfg.PHY
	return p.SIFS + p.FrameAirtime(p.BasicRate, frame.Frame{Kind: frame.CTS}.AirBytes()) + p.SlotTime
}

// onCTSTimeout handles a missing CTS: back off and retry like a collision.
func (m *MAC) onCTSTimeout() {
	defer m.touchAir()
	m.ctsTimeoutEv = sim.Handle{}
	m.stat.Inc("cts.timeout")
	if m.trace.Enabled() && len(m.queue) > 0 {
		e := trace.FrameEvent(trace.KindTimeout, m.queue[0])
		e.Reason = "cts"
		e.Retries = m.retries
		m.trace.Emit(e)
	}
	m.retries++
	if m.retries > m.cfg.RetryLimit {
		m.stat.Inc("drop.retry_limit")
		m.completeCurrent(false, "retry_limit")
		return
	}
	if m.cfg.FixedCW <= 0 {
		m.cw = min(m.cw*2, m.maxCW())
	}
	m.st = phaseAccess
	m.counter = -1
	m.startAccess()
}

// exchangeNAV is the virtual-carrier-sense reservation a bystander sets
// after decoding an RTS or CTS: the remaining handshake plus the announced
// data frame and its acknowledgement, computed at the lowest rate (the
// conservative stand-in for the 802.11 Duration field).
func (m *MAC) exchangeNAV(kind frame.Kind, payloadBytes int) time.Duration {
	p := m.cfg.PHY
	d := p.SIFS + p.DataFrameAirtime(p.LowestRate(), payloadBytes) +
		p.SIFS + p.FrameAirtime(p.BasicRate, phy.SRAckBytes)
	if kind == frame.RTS {
		d += p.SIFS + p.FrameAirtime(p.BasicRate, frame.Frame{Kind: frame.CTS}.AirBytes())
	}
	return d
}

func (m *MAC) resumeAfterAck() {
	switch m.st {
	case phaseAccess:
		m.scheduleDefer()
	case phaseIdle:
		if len(m.queue) > 0 {
			m.startAccess()
		}
	}
	m.touchAir()
}

func (m *MAC) onAckTimeout() {
	defer m.touchAir()
	m.ackTimeoutEv = sim.Handle{}
	m.stat.Inc("ack.timeout")
	cur := m.queue[0]
	if m.trace.Enabled() {
		e := trace.FrameEvent(trace.KindTimeout, cur)
		e.Reason = "ack"
		e.Retries = m.retries
		m.trace.Emit(e)
	}
	m.cfg.Rates.Feedback(cur.Dst, m.curRate, false)
	if m.cfg.NoRetransmit {
		m.completeCurrent(false, "no_retransmit")
		return
	}
	m.retries++
	if m.retries > m.cfg.RetryLimit {
		m.stat.Inc("drop.retry_limit")
		m.completeCurrent(false, "retry_limit")
		return
	}
	if m.cfg.FixedCW <= 0 {
		m.cw = min(m.cw*2, m.maxCW())
	}
	m.queue[0].Retry = true
	m.st = phaseAccess
	m.counter = -1
	m.startAccess()
}

// completeCurrent finishes service of the head-of-line frame and moves on.
// reason qualifies the trace event: the drop cause, or "broadcast" for
// frames that complete successfully without an acknowledgement.
func (m *MAC) completeCurrent(acked bool, reason string) {
	cur := m.queue[0]
	m.queue = m.queue[1:]
	elapsed := m.eng.Now() - m.queuedAt[0]
	m.queuedAt = m.queuedAt[1:]
	if acked {
		m.accessLatency.Observe(elapsed)
		if cur.Kind == frame.Data && cur.Dst != frame.Broadcast {
			m.latencyToDst(cur.Dst).Observe(elapsed)
		}
	} else {
		m.dropLatency.Observe(elapsed)
	}
	if m.trace.Enabled() {
		kind := trace.KindAck
		if !acked {
			kind = trace.KindDrop
		}
		e := trace.FrameEvent(kind, cur)
		e.Reason = reason
		e.Retries = m.retries
		e.DurUs = int64(elapsed / time.Microsecond)
		m.trace.Emit(e)
	}
	m.retries = 0
	m.cw = m.initialCW()
	m.counter = -1
	m.st = phaseIdle
	if m.hooks.OnSendComplete != nil {
		m.hooks.OnSendComplete(cur, acked)
	}
	if len(m.queue) > 0 && !m.ackPending {
		m.startAccess()
	}
	m.touchAir()
}

// --- reception ----------------------------------------------------------

// FrameReceived implements channel.Listener.
func (m *MAC) FrameReceived(f frame.Frame, ok bool, rssi float64) {
	defer m.touchAir()
	if !ok {
		m.stat.Inc("rx.corrupt")
		m.eifs = true
		return
	}
	switch f.Kind {
	case frame.Data:
		if f.Dst != m.ID() && f.Dst != frame.Broadcast {
			// Another station's data frame: honour its Duration field by
			// reserving the medium across the coming SIFS+ACK.
			m.setNAV(m.cfg.PHY.SIFS + m.cfg.PHY.FrameAirtime(m.cfg.PHY.BasicRate, phy.SRAckBytes))
			return
		}
		m.stat.Inc("rx.data")
		// Deliver before building the ACK so selective-repeat receivers can
		// include this frame in the ACK bitmap.
		if m.hooks.OnReceive != nil {
			m.hooks.OnReceive(f, rssi)
		}
		if f.Dst == m.ID() {
			m.scheduleAck(f)
		}
	case frame.Ack, frame.SRAck:
		if f.Dst != m.ID() {
			return
		}
		if m.hooks.OnAckInfo != nil {
			m.hooks.OnAckInfo(f)
		}
		if m.st == phaseWaitAck && len(m.queue) > 0 && ackCovers(f, m.queue[0].Seq) {
			m.eng.Cancel(m.ackTimeoutEv)
			m.ackTimeoutEv = sim.Handle{}
			m.cfg.Rates.Feedback(m.queue[0].Dst, m.curRate, true)
			m.completeCurrent(true, "")
		}
	case frame.ComapHeader:
		m.onHeaderDecoded(f, rssi)
		if m.hooks.OnControl != nil {
			m.hooks.OnControl(f, rssi)
		}
	case frame.LocationBeacon:
		if m.hooks.OnControl != nil {
			m.hooks.OnControl(f, rssi)
		}
	case frame.RTS:
		if f.Dst == m.ID() {
			m.stat.Inc("rx.rts")
			m.scheduleCTS(f)
			return
		}
		m.setNAV(m.exchangeNAV(frame.RTS, f.PayloadBytes))
	case frame.CTS:
		if f.Dst == m.ID() {
			if m.st != phaseWaitCTS {
				return
			}
			m.eng.Cancel(m.ctsTimeoutEv)
			m.ctsTimeoutEv = sim.Handle{}
			m.after(m.cfg.PHY.SIFS, func() {
				if m.st == phaseWaitCTS && !m.tr.Transmitting() {
					m.sendData()
				}
			})
			return
		}
		m.setNAV(m.exchangeNAV(frame.CTS, f.PayloadBytes))
	}
}

// promoteConcurrent searches the queue for a data frame whose destination
// passes concurrency validation against the ongoing link and moves it to the
// front (preserving the relative order of the rest). It reports whether a
// frame was promoted.
func (m *MAC) promoteConcurrent(ongoingSrc, ongoingDst frame.NodeID) bool {
	for i := 1; i < len(m.queue); i++ {
		f := m.queue[i]
		if f.Kind != frame.Data || f.Dst == m.queue[0].Dst {
			continue
		}
		if !m.cfg.Concurrency.Allowed(ongoingSrc, ongoingDst, f.Dst) {
			continue
		}
		at := m.queuedAt[i]
		copy(m.queue[1:i+1], m.queue[:i])
		m.queue[0] = f
		copy(m.queuedAt[1:i+1], m.queuedAt[:i])
		m.queuedAt[0] = at
		return true
	}
	return false
}

// scheduleCTS answers an RTS addressed to this node SIFS later.
func (m *MAC) scheduleCTS(rts frame.Frame) {
	cts := frame.Frame{Kind: frame.CTS, Src: m.ID(), Dst: rts.Src, PayloadBytes: rts.PayloadBytes}
	m.ackPending = true
	m.cancelAccessTimers()
	m.touchAir()
	m.after(m.cfg.PHY.SIFS, func() {
		if m.tr.Transmitting() {
			m.ackPending = false
			m.resumeAfterAck()
			return
		}
		airtime := m.cfg.PHY.FrameAirtime(m.cfg.PHY.BasicRate, cts.AirBytes())
		if err := m.tr.Transmit(cts, m.cfg.PHY.BasicRate, airtime); err != nil {
			m.ackPending = false
			m.resumeAfterAck()
		}
		m.touchAir()
	})
}

// ackCovers reports whether the acknowledgement frame confirms reception of
// sequence number seq: directly, or through a selective-repeat bitmap bit
// (bit i of an SRAck with number a acknowledges a-1-i).
func ackCovers(ack frame.Frame, seq uint16) bool {
	if ack.Seq == seq {
		return true
	}
	if ack.Kind != frame.SRAck {
		return false
	}
	diff := ack.Seq - 1 - seq
	return diff < 32 && ack.Bitmap&(1<<diff) != 0
}

// onHeaderDecoded implements CO-MAP's concurrency validation trigger: a
// neighbor announced an imminent transmission; consult the co-occurrence map
// and, if allowed, resume the backoff through the busy medium.
func (m *MAC) onHeaderDecoded(f frame.Frame, _ float64) {
	if f.Src != m.ID() && f.Dst != m.ID() {
		// Remember the most recent foreign link for concurrent rate capping
		// (also used in persistent mode, where no per-frame join happens).
		m.concSrc, m.concDst = f.Src, f.Dst
	}
	// The opportunity is latched regardless of MAC phase: a node in the
	// middle of its own ACK exchange can still join the announced
	// transmission once it re-enters the access procedure, as long as the
	// ongoing transmission is still on the air (concurrent clears at the
	// idle edge).
	if m.cfg.Concurrency == nil || m.concurrent || m.concPending {
		return
	}
	if f.Src == m.ID() || f.Dst == m.ID() || len(m.queue) == 0 {
		return
	}
	if !m.cfg.Concurrency.Allowed(f.Src, f.Dst, m.queue[0].Dst) {
		// "It may choose another receiver further away from the current
		// transmitter and verify again" (§IV-C1): an AP with several queued
		// receivers promotes the first one that passes validation. Only
		// legal while the head frame is not yet in service.
		if m.st != phaseAccess || !m.promoteConcurrent(f.Src, f.Dst) {
			return
		}
		m.stat.Inc("et.receiver_switch")
	}
	m.stat.Inc("et.opportunity")
	if f.Retry {
		// Embedded (in-flight) indication: the announced data frame is
		// already on the air, so the current energy is the RSSI1 baseline
		// and the backoff can resume right away.
		m.concurrent = true
		m.rssi1MW = m.energyMW
		if m.trace.Enabled() {
			m.trace.Emit(trace.Event{
				Kind: trace.KindETJoin, Src: f.Src, Dst: f.Dst,
				OurDst: m.queue[0].Dst, Reason: "embedded",
			})
		}
		if m.st == phaseAccess {
			m.scheduleDefer()
		}
		return
	}
	// Separate header frame: RSSI1 is captured at the next energy rise — the
	// start of the announced data frame. The header→data gap passes through
	// a momentarily idle channel, so the pending state must survive the idle
	// edge; a one-slot expiry bounds it in case the announced data never
	// appears.
	m.concPending = true
	m.concExpiryEv = m.after(m.cfg.PHY.SlotTime, func() {
		m.concExpiryEv = sim.Handle{}
		m.concPending = false
	})
}

func (m *MAC) scheduleAck(data frame.Frame) {
	ack := &frame.Frame{Kind: frame.Ack, Src: m.ID(), Dst: data.Src, Seq: data.Seq}
	if m.hooks.MakeAck != nil {
		ack = m.hooks.MakeAck(data)
	}
	if ack == nil {
		return
	}
	m.ackPending = true
	m.cancelAccessTimers()
	m.touchAir()
	m.after(m.cfg.PHY.SIFS, func() {
		if m.tr.Transmitting() {
			// Should not happen (half-duplex discipline), but never wedge.
			m.ackPending = false
			m.resumeAfterAck()
			return
		}
		m.transmitAck(*ack)
	})
}

func (m *MAC) transmitAck(ack frame.Frame) {
	airtime := m.cfg.PHY.FrameAirtime(m.cfg.PHY.BasicRate, ack.AirBytes())
	if err := m.tr.Transmit(ack, m.cfg.PHY.BasicRate, airtime); err != nil {
		m.ackPending = false
		m.resumeAfterAck()
	}
	m.touchAir()
}

// EnergyChanged implements channel.Listener.
func (m *MAC) EnergyChanged(aggDBm float64) {
	defer m.touchAir()
	oldMW := m.energyMW
	newMW := 0.0
	if !math.IsInf(aggDBm, -1) {
		newMW = radio.DBmToMilliwatts(aggDBm)
	}
	m.energyMW = newMW

	if m.concPending && newMW > oldMW {
		// The announced data frame hit the air: record RSSI1 and resume the
		// backoff through the busy medium (paper Fig. 6).
		m.concPending = false
		m.eng.Cancel(m.concExpiryEv)
		m.concExpiryEv = sim.Handle{}
		m.concurrent = true
		m.rssi1MW = newMW
		if m.trace.Enabled() {
			e := trace.Event{Kind: trace.KindETJoin, Src: m.concSrc, Dst: m.concDst, Reason: "energy_rise"}
			if len(m.queue) > 0 {
				e.OurDst = m.queue[0].Dst
			}
			m.trace.Emit(e)
		}
		if m.st == phaseAccess {
			m.scheduleDefer()
		}
	} else if m.concurrent && m.st == phaseAccess &&
		newMW-m.rssi1MW >= radio.DBmToMilliwatts(m.cfg.ETDeltaDBm) {
		// RSSI2 ≥ RSSI1 + T'cs: another exposed terminal began transmitting;
		// abandon the opportunity and fall back to normal deferral. The rule
		// only applies while counting down — outside the access phase an
		// energy step is our own ACK exchange, not a competing exposed
		// terminal.
		m.stat.Inc("et.abandon")
		if m.trace.Enabled() {
			e := trace.Event{Kind: trace.KindETAbandon, Src: m.concSrc, Dst: m.concDst, Reason: "rssi_step"}
			if len(m.queue) > 0 {
				e.OurDst = m.queue[0].Dst
			}
			m.trace.Emit(e)
		}
		m.concurrent = false
	}

	newBusy := aggDBm >= m.cfg.CCAThresholdDBm
	if newBusy == m.busy {
		// Still re-evaluate freeze/resume: concurrency state may have changed.
		m.reevaluateAccess()
		return
	}
	m.busy = newBusy
	if !newBusy {
		// The ongoing transmission left the air; concurrency mode ends.
		// concPending survives (it is bounded by its expiry timer) so the
		// idle instant between a discovery header and its data frame does
		// not erase the opportunity.
		m.concurrent = false
	}
	m.reevaluateAccess()
}

// reevaluateAccess freezes or resumes the backoff machinery according to the
// current channel state.
func (m *MAC) reevaluateAccess() {
	if m.st != phaseAccess {
		return
	}
	if m.channelClear() {
		if !m.difsEv.Active() && !m.slotEv.Active() {
			m.scheduleDefer()
		}
		return
	}
	if (m.difsEv.Active() || m.slotEv.Active()) && m.trace.Enabled() && len(m.queue) > 0 {
		e := trace.FrameEvent(trace.KindBackoffFreeze, m.queue[0])
		e.Slots = m.counter
		m.trace.Emit(e)
	}
	m.cancelAccessTimers()
}
