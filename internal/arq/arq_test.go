package arq

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSenderDefaults(t *testing.T) {
	s := NewSender(0, 0)
	if s.Window() != DefaultWindow {
		t.Errorf("Window = %d", s.Window())
	}
	s = NewSender(100, 5)
	if s.Window() != 32 {
		t.Errorf("Window should clamp to 32, got %d", s.Window())
	}
}

func TestSenderFillsWindowWithNewFrames(t *testing.T) {
	s := NewSender(4, 8)
	for i := 0; i < 4; i++ {
		seq, payload, retry := s.Next(100 + i)
		if retry {
			t.Fatalf("frame %d should be new", i)
		}
		if seq != uint16(i) {
			t.Errorf("seq = %d, want %d", seq, i)
		}
		if payload != 100+i {
			t.Errorf("payload = %d", payload)
		}
	}
	if s.InFlight() != 4 {
		t.Errorf("InFlight = %d", s.InFlight())
	}
	// Window full: the next call retransmits the oldest hole.
	seq, payload, retry := s.Next(999)
	if !retry || seq != 0 || payload != 100 {
		t.Errorf("got seq=%d payload=%d retry=%v, want retransmit of 0", seq, payload, retry)
	}
}

func TestRetransmissionsCycleThroughHoles(t *testing.T) {
	s := NewSender(3, 100)
	for i := 0; i < 3; i++ {
		s.Next(10)
	}
	var order []uint16
	for i := 0; i < 6; i++ {
		seq, _, retry := s.Next(10)
		if !retry {
			t.Fatal("window is full; expected retransmissions")
		}
		order = append(order, seq)
	}
	want := []uint16{0, 1, 2, 0, 1, 2}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("retransmit order = %v, want %v", order, want)
		}
	}
}

func TestOnAckSingle(t *testing.T) {
	s := NewSender(4, 8)
	s.Next(100)
	s.Next(200)
	frames, bytes := s.OnAck(0, 0)
	if frames != 1 || bytes != 100 {
		t.Errorf("frames=%d bytes=%d", frames, bytes)
	}
	if s.InFlight() != 1 || s.Acked() != 1 {
		t.Errorf("InFlight=%d Acked=%d", s.InFlight(), s.Acked())
	}
	// Duplicate ACK is a no-op.
	frames, bytes = s.OnAck(0, 0)
	if frames != 0 || bytes != 0 {
		t.Errorf("duplicate ack: frames=%d bytes=%d", frames, bytes)
	}
}

func TestOnAckBitmapRepairsEarlierLosses(t *testing.T) {
	s := NewSender(8, 8)
	for i := 0; i < 5; i++ {
		s.Next(10)
	}
	// ACK for seq 4 with a bitmap acknowledging 3, 1 and 0 (bit 0 -> seq 3,
	// bit 2 -> seq 1... bit i means 4-1-i).
	bitmap := uint32(1<<0 | 1<<2 | 1<<3)
	frames, bytes := s.OnAck(4, bitmap)
	if frames != 4 || bytes != 40 {
		t.Errorf("frames=%d bytes=%d, want 4/40", frames, bytes)
	}
	// Seq 2 remains the only hole.
	seq, _, retry := s.Next(10)
	if retry {
		// Window has room so a new frame comes first.
		t.Fatalf("expected new frame, got retransmit of %d", seq)
	}
	if s.InFlight() != 2 { // the hole (2) and the new frame (5)
		t.Errorf("InFlight = %d", s.InFlight())
	}
}

func TestDropAfterMaxAttempts(t *testing.T) {
	s := NewSender(1, 3)
	seq0, _, _ := s.Next(50)
	if seq0 != 0 {
		t.Fatal("first seq should be 0")
	}
	// Attempts: 1 (initial) + retransmissions.
	s.Next(50) // attempt 2
	s.Next(50) // attempt 3 -> at bound
	seq, _, retry := s.Next(60)
	if retry || seq != 1 {
		t.Errorf("after drop, got seq=%d retry=%v; want fresh seq 1", seq, retry)
	}
	if s.Dropped() != 1 {
		t.Errorf("Dropped = %d", s.Dropped())
	}
}

func TestReceiverDedup(t *testing.T) {
	r := NewReceiver()
	if !r.OnData(0) || !r.OnData(1) {
		t.Error("first receptions must be new")
	}
	if r.OnData(0) || r.OnData(1) {
		t.Error("duplicates must not be new")
	}
	if !r.OnData(5) {
		t.Error("gap frame must be new")
	}
}

func TestReceiverAckBitmap(t *testing.T) {
	r := NewReceiver()
	if _, _, ok := r.Ack(); ok {
		t.Error("Ack before data should report !ok")
	}
	r.OnData(0)
	r.OnData(1)
	r.OnData(3) // 2 is missing
	ackSeq, bitmap, ok := r.Ack()
	if !ok || ackSeq != 3 {
		t.Fatalf("ackSeq=%d ok=%v", ackSeq, ok)
	}
	// bit0 -> seq 2 (missing), bit1 -> seq 1 (seen), bit2 -> seq 0 (seen).
	if bitmap&1 != 0 {
		t.Error("bit for missing seq 2 must be clear")
	}
	if bitmap&(1<<1) == 0 || bitmap&(1<<2) == 0 {
		t.Error("bits for seqs 1 and 0 must be set")
	}
}

func TestReceiverOldDuplicateBeyondHorizon(t *testing.T) {
	r := NewReceiver()
	r.OnData(0)
	r.OnData(1000) // far ahead; 0 falls out of the horizon
	if r.OnData(0) {
		t.Error("frame beyond horizon should be treated as duplicate")
	}
}

func TestSequenceWraparound(t *testing.T) {
	s := NewSender(4, 8)
	s.next = 0xFFFE
	r := NewReceiver()
	for i := 0; i < 6; i++ {
		seq, _, retry := s.Next(10)
		if retry {
			t.Fatal("unexpected retransmission")
		}
		if !r.OnData(seq) {
			t.Fatalf("wrapped seq %d should be new", seq)
		}
		ackSeq, bitmap, _ := r.Ack()
		s.OnAck(ackSeq, bitmap)
	}
	if s.InFlight() != 0 || s.Acked() != 6 {
		t.Errorf("InFlight=%d Acked=%d", s.InFlight(), s.Acked())
	}
}

// TestLossyLinkEventuallyDeliversEverything simulates the full protocol over
// a lossy link: every data frame and every ACK is dropped independently.
// All frames must be delivered exactly once and the sender must learn it.
func TestLossyLinkEventuallyDeliversEverything(t *testing.T) {
	lossRates := []float64{0, 0.1, 0.3, 0.5}
	for _, loss := range lossRates {
		rng := rand.New(rand.NewSource(int64(loss*100) + 1))
		s := NewSender(8, 1000)
		r := NewReceiver()
		const total = 200
		newFrames := 0
		deliveredNew := 0
		for steps := 0; steps < 100000 && s.Acked() < total; steps++ {
			var seq uint16
			var retry bool
			if newFrames < total {
				seq, _, retry = s.Next(100)
				if !retry {
					newFrames++
				}
			} else if s.InFlight() > 0 {
				seq, _, retry = s.Next(0)
				if !retry {
					newFrames++ // window had room; count it anyway
				}
			} else {
				break
			}
			if rng.Float64() < loss {
				continue // data frame lost
			}
			if r.OnData(seq) {
				deliveredNew++
			}
			ackSeq, bitmap, ok := r.Ack()
			if ok && rng.Float64() >= loss {
				s.OnAck(ackSeq, bitmap)
			}
		}
		if s.Acked() < total {
			t.Errorf("loss=%.1f: only %d/%d acked", loss, s.Acked(), total)
		}
		if deliveredNew < total {
			t.Errorf("loss=%.1f: receiver got %d/%d unique frames", loss, deliveredNew, total)
		}
		if deliveredNew > newFrames {
			t.Errorf("loss=%.1f: delivered more unique frames than sent", loss)
		}
	}
}

// TestWindowNeverExceeded is a property test: whatever the ack pattern, the
// number of in-flight frames never exceeds the window.
func TestWindowNeverExceeded(t *testing.T) {
	f := func(ops []byte) bool {
		s := NewSender(5, 50)
		r := NewReceiver()
		for _, op := range ops {
			seq, _, _ := s.Next(10)
			if s.InFlight() > 5 {
				return false
			}
			if op%3 != 0 { // deliver 2/3 of frames
				r.OnData(seq)
			}
			if op%2 == 0 { // deliver half the acks
				if ackSeq, bitmap, ok := r.Ack(); ok {
					s.OnAck(ackSeq, bitmap)
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestNoDuplicateDeliveryProperty: the receiver never reports the same
// sequence number as new twice, regardless of retransmission pattern.
func TestNoDuplicateDeliveryProperty(t *testing.T) {
	f := func(seqs []uint16) bool {
		r := NewReceiver()
		newSeen := make(map[uint16]bool)
		for _, q := range seqs {
			q %= 64 // keep within the horizon so semantics are exact
			if r.OnData(q) {
				if newSeen[q] {
					return false
				}
				newSeen[q] = true
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestSenderString(t *testing.T) {
	s := NewSender(4, 8)
	s.Next(10)
	if got := s.String(); got == "" {
		t.Error("String should be non-empty")
	}
}

func TestAckForAnchorsAtReceivedSeq(t *testing.T) {
	r := NewReceiver()
	r.OnData(10)
	r.OnData(11)
	r.OnData(40) // highest jumps far ahead
	// A retransmission of seq 10 must be ack'able directly even though it is
	// 30 behind the highest.
	ackSeq, bitmap := r.AckFor(10)
	if ackSeq != 10 {
		t.Errorf("ackSeq = %d, want 10", ackSeq)
	}
	// The bitmap covers the 32 seqs before 10; none were received.
	if bitmap != 0 {
		t.Errorf("bitmap = %b, want 0", bitmap)
	}
	// Anchored at 12, bits 0 and 1 mark 11 and 10.
	_, bitmap = r.AckFor(12)
	if bitmap&0b11 != 0b11 {
		t.Errorf("bitmap = %b, want low bits set", bitmap)
	}
}
