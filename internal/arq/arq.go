// Package arq implements the selective-repeat ARQ scheme CO-MAP uses to
// survive ACK losses caused by asynchronously ending exposed-terminal
// transmissions (paper §IV-C4):
//
//   - the sender transmits up to WSend frames with consecutive sequence
//     numbers; a missing ACK does not trigger an immediate retransmission —
//     the sender moves on to the next frame in the window and resends the
//     holes afterwards;
//   - the receiver acknowledges every data frame with the received sequence
//     number plus a bitmap of the 32 preceding sequence numbers, so one
//     surviving ACK repairs the sender's view of many earlier losses.
//
// The package is pure protocol state; timers and radio access are driven by
// the MAC layer that owns it.
package arq

import (
	"fmt"
	"time"

	"repro/internal/metrics"
)

// DefaultWindow is the default send window size.
const DefaultWindow = 8

// DefaultMaxAttempts bounds transmissions per frame before it is dropped.
const DefaultMaxAttempts = 16

// seqBefore reports whether a precedes b in modular uint16 sequence space.
func seqBefore(a, b uint16) bool { return int16(a-b) < 0 }

type entry struct {
	seq      uint16
	payload  int
	attempts int
	sent     bool
	// firstAt is the virtual time the sequence number was minted; zero
	// unless the sender is instrumented.
	firstAt time.Duration
}

// Sender is the transmit side of the selective-repeat protocol.
type Sender struct {
	window      int
	maxAttempts int
	next        uint16
	inflight    []*entry // unacked frames, oldest first
	dropped     int
	delivered   int

	// Telemetry (nil unless Instrument was called; all recording nil-safe).
	now      func() time.Duration
	mOcc     *metrics.Dist
	mDeliver *metrics.Timing
	mRetx    *metrics.Timing
	mDropped *metrics.Counter
}

// NewSender creates a sender with the given window size and per-frame
// attempt bound. Non-positive arguments select the defaults.
func NewSender(window, maxAttempts int) *Sender {
	if window <= 0 {
		window = DefaultWindow
	}
	if window > 32 {
		// The ACK bitmap covers 32 sequence numbers; a larger window could
		// not be repaired by a single ACK.
		window = 32
	}
	if maxAttempts <= 0 {
		maxAttempts = DefaultMaxAttempts
	}
	return &Sender{window: window, maxAttempts: maxAttempts}
}

// Instrument attaches telemetry to the sender: the "arq.window_occupancy"
// distribution (in-flight frames sampled at every send decision), the
// "arq.delivery_latency" mint→ACK timing, its "arq.retx_latency" subset for
// frames that needed more than one attempt, and the "arq.dropped" counter.
// now supplies the virtual clock (typically sim.Engine.Now). The package
// stays timer-free: the clock is only read, never scheduled on.
func (s *Sender) Instrument(reg *metrics.Registry, now func() time.Duration) {
	s.now = now
	s.mOcc = reg.Dist("arq.window_occupancy")
	s.mDeliver = reg.Timing("arq.delivery_latency")
	s.mRetx = reg.Timing("arq.retx_latency")
	s.mDropped = reg.Counter("arq.dropped")
}

// Window returns the configured send window size.
func (s *Sender) Window() int { return s.window }

// InFlight returns the number of unacknowledged frames.
func (s *Sender) InFlight() int { return len(s.inflight) }

// Dropped returns the number of frames abandoned after MaxAttempts.
func (s *Sender) Dropped() int { return s.dropped }

// Acked returns the number of frames confirmed delivered.
func (s *Sender) Acked() int { return s.delivered }

// Next returns the sequence number and payload length of the next frame to
// transmit. While the window has room it mints a new sequence number with
// newPayload bytes; once the window is full it returns the oldest
// unacknowledged frame as a retransmission (retry=true). Frames exceeding
// the attempt bound are dropped and skipped.
func (s *Sender) Next(newPayload int) (seq uint16, payload int, retry bool) {
	if s.CanSendNew() {
		seq, _ = s.NextNew(newPayload)
		return seq, newPayload, false
	}
	seq, payload, _ = s.NextRetransmit()
	return seq, payload, true
}

// dropHopeless abandons frames that exhausted their attempt budget.
func (s *Sender) dropHopeless() {
	for len(s.inflight) > 0 && s.inflight[0].attempts >= s.maxAttempts {
		s.inflight = s.inflight[1:]
		s.dropped++
		s.mDropped.Inc()
	}
}

// CanSendNew reports whether the send window has room for a new frame.
func (s *Sender) CanSendNew() bool {
	s.dropHopeless()
	return len(s.inflight) < s.window
}

// NextNew mints a new sequence number carrying newPayload bytes. ok is
// false when the window is full (nothing is minted).
func (s *Sender) NextNew(newPayload int) (seq uint16, ok bool) {
	if !s.CanSendNew() {
		return 0, false
	}
	e := &entry{seq: s.next, payload: newPayload, attempts: 1, sent: true}
	if s.now != nil {
		e.firstAt = s.now()
	}
	s.next++
	s.inflight = append(s.inflight, e)
	s.mOcc.Observe(float64(len(s.inflight)))
	return e.seq, true
}

// NextRetransmit returns the oldest unacknowledged frame for retransmission,
// rotating the window so successive calls cycle through the holes rather
// than hammering one frame. ok is false when nothing is in flight.
func (s *Sender) NextRetransmit() (seq uint16, payload int, ok bool) {
	s.dropHopeless()
	if len(s.inflight) == 0 {
		return 0, 0, false
	}
	e := s.inflight[0]
	e.attempts++
	s.inflight = append(s.inflight[1:], e)
	s.mOcc.Observe(float64(len(s.inflight)))
	return e.seq, e.payload, true
}

// OnAck processes an acknowledgement: ackSeq itself plus every bitmap bit i
// acknowledging sequence number ackSeq-1-i. It returns the number of frames
// newly confirmed and their total payload bytes.
func (s *Sender) OnAck(ackSeq uint16, bitmap uint32) (frames, payloadBytes int) {
	acked := func(seq uint16) bool {
		if seq == ackSeq {
			return true
		}
		diff := uint16(ackSeq - 1 - seq)
		return diff < 32 && bitmap&(1<<diff) != 0
	}
	kept := s.inflight[:0]
	for _, e := range s.inflight {
		if acked(e.seq) {
			frames++
			payloadBytes += e.payload
			s.delivered++
			if s.now != nil {
				lat := s.now() - e.firstAt
				s.mDeliver.Observe(lat)
				if e.attempts > 1 {
					s.mRetx.Observe(lat)
				}
			}
			continue
		}
		kept = append(kept, e)
	}
	// Zero the tail so dropped entries are collectable.
	for i := len(kept); i < len(s.inflight); i++ {
		s.inflight[i] = nil
	}
	s.inflight = kept
	return frames, payloadBytes
}

// Receiver is the receive side: it deduplicates frames and produces
// bitmap ACKs.
type Receiver struct {
	started bool
	highest uint16
	seen    map[uint16]bool
}

// horizon is how far behind the highest sequence number the receiver
// remembers individual frames; anything older is treated as a duplicate.
const horizon = 256

// NewReceiver creates an empty receiver.
func NewReceiver() *Receiver {
	return &Receiver{seen: make(map[uint16]bool)}
}

// OnData records reception of seq and reports whether the frame is new
// (first delivery) as opposed to a duplicate retransmission.
func (r *Receiver) OnData(seq uint16) (isNew bool) {
	if !r.started {
		r.started = true
		r.highest = seq
		r.seen[seq] = true
		return true
	}
	if seqBefore(r.highest, seq) {
		r.highest = seq
		r.prune()
	} else if uint16(r.highest-seq) >= horizon {
		// Too old to track: assume we have seen it.
		return false
	}
	if r.seen[seq] {
		return false
	}
	r.seen[seq] = true
	return true
}

// prune forgets sequence numbers older than the horizon.
func (r *Receiver) prune() {
	for s := range r.seen {
		if uint16(r.highest-s) >= horizon {
			delete(r.seen, s)
		}
	}
}

// Ack returns the acknowledgement for the most recent reception: the highest
// received sequence number and a bitmap where bit i set means seq-1-i was
// received. Calling Ack before any data returns ok=false.
func (r *Receiver) Ack() (ackSeq uint16, bitmap uint32, ok bool) {
	if !r.started {
		return 0, 0, false
	}
	return r.highest, r.bitmapBefore(r.highest), true
}

// AckFor returns an acknowledgement anchored at the just-received sequence
// number seq (plus the bitmap of the 32 numbers preceding it). Anchoring at
// the received frame — not the highest — lets a retransmitted hole that has
// fallen more than 32 numbers behind still be acknowledged directly.
func (r *Receiver) AckFor(seq uint16) (ackSeq uint16, bitmap uint32) {
	return seq, r.bitmapBefore(seq)
}

func (r *Receiver) bitmapBefore(seq uint16) uint32 {
	var bitmap uint32
	for i := uint16(0); i < 32; i++ {
		if r.seen[seq-1-i] {
			bitmap |= 1 << i
		}
	}
	return bitmap
}

// String summarises sender state for traces.
func (s *Sender) String() string {
	return fmt.Sprintf("arq.Sender{next=%d inflight=%d acked=%d dropped=%d}",
		s.next, len(s.inflight), s.delivered, s.dropped)
}
