package prof

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync/atomic"
	"time"

	"repro/internal/sim"
)

// Flight is a lock-free ring buffer of the last N dispatched events — the
// engine's black box. The writer is the simulation goroutine; readers
// (the /flight endpoint, dump-on-panic) may snapshot it concurrently.
//
// Each record is packed into a single uint64 so slots can be read and
// written with plain atomics — no locks, no tearing, race-detector clean:
//
//	bits 63..23  virtual time in microseconds (41 bits, ~25 days)
//	bits 22..17  subsystem tag (6 bits)
//	bits 16..0   owner node + 1 (17 bits; 0 encodes sim.NoOwner)
//
// A reader that races a wrap-around may see a slot newer than the head it
// read — acceptable for a flight recorder, whose job is "what were the
// last few thousand events", not a serialized log.
type Flight struct {
	mask  uint64
	slots []atomic.Uint64
	head  atomic.Uint64 // total records ever written
}

// NewFlight returns a recorder holding the last n events (n rounded up to
// a power of two, minimum 16).
func NewFlight(n int) *Flight {
	size := 16
	for size < n {
		size <<= 1
	}
	return &Flight{mask: uint64(size - 1), slots: make([]atomic.Uint64, size)}
}

const (
	flightTimeShift = 23
	flightTagShift  = 17
	flightTagMask   = 0x3F
	flightOwnerMask = 0x1FFFF
)

func packRecord(at time.Duration, tag sim.Tag, owner int32) uint64 {
	us := uint64(at / time.Microsecond)
	ownerField := uint64(0)
	if owner >= 0 {
		ownerField = (uint64(owner) + 1) & flightOwnerMask
	}
	return us<<flightTimeShift | (uint64(tag)&flightTagMask)<<flightTagShift | ownerField
}

// Record is one decoded flight-recorder entry.
type Record struct {
	// AtUs is the event's virtual time in microseconds.
	AtUs int64 `json:"at_us"`
	// Tag is the subsystem the event was attributed to.
	Tag string `json:"tag"`
	// Owner is the owning node ID, or -1 for run-wide timers.
	Owner int32 `json:"owner"`
}

func unpackRecord(w uint64) Record {
	owner := int32(w&flightOwnerMask) - 1
	return Record{
		AtUs:  int64(w >> flightTimeShift),
		Tag:   sim.Tag((w >> flightTagShift) & flightTagMask).String(),
		Owner: owner,
	}
}

// Record appends one event. Simulation goroutine only; allocation-free.
func (f *Flight) Record(at time.Duration, tag sim.Tag, owner int32) {
	h := f.head.Load()
	f.slots[h&f.mask].Store(packRecord(at, tag, owner))
	f.head.Store(h + 1)
}

// Len returns the number of records currently held (capped at capacity).
// Safe for concurrent readers.
func (f *Flight) Len() int {
	if h := f.head.Load(); h < uint64(len(f.slots)) {
		return int(h)
	}
	return len(f.slots)
}

// Total returns the number of records ever written. Safe for concurrent
// readers.
func (f *Flight) Total() uint64 { return f.head.Load() }

// Snapshot decodes the ring's current contents, oldest first. Safe to call
// while the simulation keeps recording.
func (f *Flight) Snapshot() []Record {
	h := f.head.Load()
	n := uint64(len(f.slots))
	start := uint64(0)
	if h > n {
		start = h - n
	}
	out := make([]Record, 0, h-start)
	for i := start; i < h; i++ {
		out = append(out, unpackRecord(f.slots[i&f.mask].Load()))
	}
	return out
}

// FlightDump is the JSON layout of a flight-recorder dump file.
type FlightDump struct {
	// Reason records why the dump was taken ("panic", "fault-outage",
	// "on-demand", ...).
	Reason string `json:"reason"`
	// Total is the number of events ever recorded; Records holds the most
	// recent min(Total, capacity), oldest first.
	Total   uint64   `json:"total"`
	Records []Record `json:"records"`
}

// DumpTo writes the ring's contents as JSON into dir (created if needed)
// and returns the file path. The file name carries the run id (when given),
// the reason and the total-record count, so successive dumps of one run —
// and same-reason dumps of different runs sharing a directory — never
// collide.
func (f *Flight) DumpTo(dir, runID, reason string) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", fmt.Errorf("prof: flight dump dir: %w", err)
	}
	d := FlightDump{Reason: reason, Records: f.Snapshot(), Total: f.Total()}
	data, err := json.MarshalIndent(d, "", "  ")
	if err != nil {
		return "", err
	}
	name := fmt.Sprintf("flight-%s-%d.json", sanitizeReason(reason), d.Total)
	if runID != "" {
		name = fmt.Sprintf("flight-%s-%s-%d.json", sanitizeReason(runID), sanitizeReason(reason), d.Total)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return "", fmt.Errorf("prof: flight dump: %w", err)
	}
	return path, nil
}

// DumpFlight dumps the profiler's flight ring into its configured dir,
// namespaced by the profiler's run id. No-op ("" path, nil error) when the
// recorder is disabled.
func (p *Profiler) DumpFlight(reason string) (string, error) {
	if p == nil || p.flight == nil {
		return "", nil
	}
	return p.flight.DumpTo(p.cfg.Dir, p.cfg.RunID, reason)
}

// sanitizeReason keeps dump file names portable.
func sanitizeReason(r string) string {
	out := make([]byte, 0, len(r))
	for i := 0; i < len(r); i++ {
		c := r[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '-', c == '_':
			out = append(out, c)
		default:
			out = append(out, '_')
		}
	}
	if len(out) == 0 {
		return "dump"
	}
	return string(out)
}
