package prof

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/sim"
)

// TestAttributionCounts feeds a known event mix and checks the per-tag
// rollup: counts per tag, fixed tag order, zero rows included.
func TestAttributionCounts(t *testing.T) {
	p := New(Config{SampleEvery: 1, FlightEvents: -1})
	for i := 0; i < 5; i++ {
		p.OnEvent(time.Duration(i)*time.Microsecond, sim.TagMAC, 1)
	}
	p.OnEvent(time.Microsecond, sim.TagChannel, sim.NoOwner)
	p.OnEvent(time.Microsecond, sim.Tag(250), 0) // out of range -> other

	a := p.Attribution()
	if a.Events != 7 {
		t.Fatalf("Events = %d, want 7", a.Events)
	}
	if a.SampleEvery != 1 {
		t.Fatalf("SampleEvery = %d, want 1", a.SampleEvery)
	}
	if len(a.Tags) != int(sim.NumTags) {
		t.Fatalf("Tags rows = %d, want %d (zero rows included)", len(a.Tags), sim.NumTags)
	}
	byTag := make(map[string]TagStat)
	for i, ts := range a.Tags {
		if want := sim.Tag(i).String(); ts.Tag != want {
			t.Errorf("Tags[%d] = %q, want fixed order %q", i, ts.Tag, want)
		}
		byTag[ts.Tag] = ts
	}
	if byTag["mac"].Events != 5 || byTag["channel"].Events != 1 || byTag["other"].Events != 1 {
		t.Errorf("per-tag counts wrong: %+v", a.Tags)
	}
	if byTag["arq"].Events != 0 {
		t.Errorf("arq should be a zero row: %+v", byTag["arq"])
	}
	// Sampled every event: total share sums to ~100% when any time accrued.
	if a.SampledSec > 0 {
		var sum float64
		for _, ts := range a.Tags {
			sum += ts.SharePct
		}
		if sum < 99.9 || sum > 100.1 {
			t.Errorf("shares sum to %.2f%%, want 100%%", sum)
		}
	}
	if p.Flight() != nil {
		t.Error("FlightEvents<0 must disable the recorder")
	}
}

// TestFlightPackUnpack round-trips records through the packed uint64 layout,
// including the owner sentinel and field extremes.
func TestFlightPackUnpack(t *testing.T) {
	cases := []struct {
		at    time.Duration
		tag   sim.Tag
		owner int32
	}{
		{0, sim.TagOther, sim.NoOwner},
		{time.Microsecond, sim.TagMAC, 0},
		{5 * time.Second, sim.TagChannel, 1},
		{24 * time.Hour, sim.TagFaults, 65534},
		{123456 * time.Microsecond, sim.TagLocx, sim.NoOwner},
	}
	for _, c := range cases {
		r := unpackRecord(packRecord(c.at, c.tag, c.owner))
		if r.AtUs != int64(c.at/time.Microsecond) {
			t.Errorf("pack(%v,%v,%d): AtUs = %d, want %d", c.at, c.tag, c.owner, r.AtUs, c.at/time.Microsecond)
		}
		if r.Tag != c.tag.String() {
			t.Errorf("pack(%v,%v,%d): Tag = %q, want %q", c.at, c.tag, c.owner, r.Tag, c.tag.String())
		}
		if r.Owner != c.owner {
			t.Errorf("pack(%v,%v,%d): Owner = %d, want %d", c.at, c.tag, c.owner, r.Owner, c.owner)
		}
	}
}

// TestFlightWrap fills the ring past capacity and checks it keeps exactly
// the newest records, oldest first.
func TestFlightWrap(t *testing.T) {
	f := NewFlight(16)
	const writes = 40
	for i := 0; i < writes; i++ {
		f.Record(time.Duration(i)*time.Microsecond, sim.TagMAC, int32(i))
	}
	if f.Total() != writes {
		t.Fatalf("Total = %d, want %d", f.Total(), writes)
	}
	if f.Len() != 16 {
		t.Fatalf("Len = %d, want capacity 16", f.Len())
	}
	snap := f.Snapshot()
	if len(snap) != 16 {
		t.Fatalf("Snapshot len = %d, want 16", len(snap))
	}
	for i, r := range snap {
		if want := int64(writes - 16 + i); r.AtUs != want || r.Owner != int32(want) {
			t.Fatalf("Snapshot[%d] = %+v, want at/owner %d (newest 16, oldest first)", i, r, want)
		}
	}
}

// TestNewFlightRounding pins the capacity rounding: power of two, minimum 16.
func TestNewFlightRounding(t *testing.T) {
	for _, c := range []struct{ n, want int }{{0, 16}, {1, 16}, {16, 16}, {17, 32}, {4096, 4096}, {5000, 8192}} {
		if f := NewFlight(c.n); len(f.slots) != c.want {
			t.Errorf("NewFlight(%d) capacity = %d, want %d", c.n, len(f.slots), c.want)
		}
	}
}

// TestFlightConcurrentSnapshot races a recording writer against snapshot
// readers; run under -race this validates the lock-free access pattern.
func TestFlightConcurrentSnapshot(t *testing.T) {
	f := NewFlight(64)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				snap := f.Snapshot()
				if len(snap) > 64 {
					panic("snapshot exceeds capacity")
				}
				f.Len()
				f.Total()
			}
		}()
	}
	for i := 0; i < 100000; i++ {
		f.Record(time.Duration(i)*time.Microsecond, sim.TagChannel, 3)
	}
	close(stop)
	wg.Wait()
	if f.Total() != 100000 {
		t.Fatalf("Total = %d, want 100000", f.Total())
	}
}

// TestDumpToWritesJSON checks the dump file layout and the reason
// sanitization in its name.
func TestDumpToWritesJSON(t *testing.T) {
	dir := t.TempDir()
	f := NewFlight(16)
	f.Record(3*time.Millisecond, sim.TagMAC, 2)
	f.Record(4*time.Millisecond, sim.TagFaults, sim.NoOwner)
	path, err := f.DumpTo(filepath.Join(dir, "sub"), "", "fault outage/1")
	if err != nil {
		t.Fatal(err)
	}
	if base := filepath.Base(path); base != "flight-fault_outage_1-2.json" {
		t.Errorf("dump file name = %q (reason must be sanitized, total appended)", base)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var d FlightDump
	if err := json.Unmarshal(data, &d); err != nil {
		t.Fatalf("dump not valid JSON: %v\n%s", err, data)
	}
	if d.Reason != "fault outage/1" || d.Total != 2 || len(d.Records) != 2 {
		t.Fatalf("dump = %+v", d)
	}
	if d.Records[0].Tag != "mac" || d.Records[1].Owner != -1 {
		t.Fatalf("records = %+v", d.Records)
	}
	if !strings.HasSuffix(string(data), "\n") {
		t.Error("dump file must end with a newline")
	}
}

// TestDumpFlightRunIDNamespacing pins the fix for same-process collisions:
// two profilers dumping the same reason and record count into one directory
// must produce two files, and an explicit RunID lands in the name.
func TestDumpFlightRunIDNamespacing(t *testing.T) {
	dir := t.TempDir()
	dump := func(cfg Config) string {
		cfg.FlightEvents = 16
		cfg.Dir = dir
		p := New(cfg)
		p.OnEvent(time.Millisecond, sim.TagMAC, 1)
		path, err := p.DumpFlight("fault-outage")
		if err != nil {
			t.Fatal(err)
		}
		return path
	}
	a := dump(Config{})
	b := dump(Config{})
	if a == b {
		t.Fatalf("default run ids collided: both dumps landed at %s", a)
	}
	for _, p := range []string{a, b} {
		if _, err := os.Stat(p); err != nil {
			t.Fatalf("dump missing: %v", err)
		}
	}
	c := dump(Config{RunID: "seed 42"})
	if base := filepath.Base(c); base != "flight-seed_42-fault-outage-1.json" {
		t.Errorf("explicit RunID dump name = %q (run id must be sanitized into the name)", base)
	}
}

// TestDumpFlightNilSafe locks in the no-op contract for absent profilers and
// disabled recorders.
func TestDumpFlightNilSafe(t *testing.T) {
	var p *Profiler
	if path, err := p.DumpFlight("panic"); path != "" || err != nil {
		t.Fatalf("nil profiler DumpFlight = (%q, %v), want no-op", path, err)
	}
	p = New(Config{FlightEvents: -1, Dir: t.TempDir()})
	if path, err := p.DumpFlight("panic"); path != "" || err != nil {
		t.Fatalf("recorder-less DumpFlight = (%q, %v), want no-op", path, err)
	}
}

// TestSampleEveryStride checks wall-time sampling only fires on the stride.
func TestSampleEveryStride(t *testing.T) {
	p := New(Config{SampleEvery: 4, FlightEvents: -1})
	for i := 0; i < 3; i++ {
		p.OnEvent(0, sim.TagMAC, 0)
	}
	if a := p.Attribution(); a.SampledSec != 0 {
		t.Fatalf("SampledSec = %g before the stride, want 0", a.SampledSec)
	}
	p.OnEvent(0, sim.TagMAC, 0) // 4th event samples
	if a := p.Attribution(); a.Tags[sim.TagMAC].SampledSec <= 0 {
		t.Fatalf("no wall time charged on the stride: %+v", a.Tags[sim.TagMAC])
	}
}
