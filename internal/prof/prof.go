// Package prof is the simulator's hot-path attribution layer: an engine
// dispatch observer that charges event counts and sampled wall time to a
// small fixed set of subsystem tags (sim.Tag), plus a lock-free flight
// recorder of the last N dispatched events (flight.go).
//
// The profiler is always compiled and near-zero-overhead when not attached:
// the engine pays one nil-check branch per event. When attached it pays one
// atomic increment per event and one time.Now() every SampleEvery events,
// so the dispatch loop stays allocation-free and the run's virtual behavior
// — RNG streams, event order, reports — is bit-identical to an unprofiled
// run (asserted by the netsim golden-report suite).
//
// Wall-time attribution is sampled, not exact: every SampleEvery-th event
// the elapsed wall time since the previous sample is charged to that
// event's tag. Over the millions of events of a real run the per-tag
// shares converge on the true distribution, which is what capacity planning
// needs; individual nanosecond charges are meaningless and not exposed.
package prof

import (
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/sim"
)

// Config parameterises a Profiler.
type Config struct {
	// SampleEvery is the timestamp sampling stride: wall time is measured
	// once per this many events (default 64). 1 measures every event —
	// exact, but the clock reads dominate small runs.
	SampleEvery int
	// FlightEvents is the flight-recorder ring capacity, rounded up to a
	// power of two (default 4096; negative disables the recorder).
	FlightEvents int
	// Dir is where flight dumps land (default "results/profiles").
	Dir string
	// RunID namespaces this profiler's flight-dump filenames
	// (flight-<runid>-<reason>-<total>.json). Several runs in one process —
	// a comap-experiments grid — can dump the same reason and total into
	// one directory, which used to overwrite silently; a per-run id keeps
	// the files apart. Empty defaults to a process-unique "runN".
	RunID string
}

// runSeq numbers profilers process-wide for the RunID default.
var runSeq atomic.Uint64

func (c *Config) applyDefaults() {
	if c.SampleEvery <= 0 {
		c.SampleEvery = 64
	}
	if c.FlightEvents == 0 {
		c.FlightEvents = 4096
	}
	if c.Dir == "" {
		c.Dir = "results/profiles"
	}
	if c.RunID == "" {
		c.RunID = fmt.Sprintf("run%d", runSeq.Add(1))
	}
}

// Profiler implements sim.Observer. Writers are the simulation goroutine;
// the per-tag accumulators are atomics so Attribution may be called from
// scrape goroutines mid-run.
type Profiler struct {
	cfg    Config
	events [sim.NumTags]atomic.Uint64 // dispatched events per tag
	nanos  [sim.NumTags]atomic.Int64  // sampled wall nanos per tag

	// Sampling state, simulation goroutine only.
	sinceSample int
	lastSample  time.Time
	flight      *Flight
}

// New returns a profiler ready to be installed with sim.Engine.SetObserver.
func New(cfg Config) *Profiler {
	cfg.applyDefaults()
	p := &Profiler{cfg: cfg, lastSample: time.Now()}
	if cfg.FlightEvents > 0 {
		p.flight = NewFlight(cfg.FlightEvents)
	}
	return p
}

// OnEvent charges one dispatched event to tag and records it in the flight
// ring. Runs on the simulation goroutine inside the dispatch loop;
// allocation-free.
func (p *Profiler) OnEvent(at time.Duration, tag sim.Tag, owner int32) {
	if tag >= sim.NumTags {
		tag = sim.TagOther
	}
	p.events[tag].Add(1)
	if p.flight != nil {
		p.flight.Record(at, tag, owner)
	}
	p.sinceSample++
	if p.sinceSample >= p.cfg.SampleEvery {
		p.sinceSample = 0
		now := time.Now()
		p.nanos[tag].Add(now.Sub(p.lastSample).Nanoseconds())
		p.lastSample = now
	}
}

// Flight returns the flight recorder (nil when disabled).
func (p *Profiler) Flight() *Flight { return p.flight }

// Dir returns the configured dump directory.
func (p *Profiler) Dir() string { return p.cfg.Dir }

// TagStat is one subsystem's attribution line.
type TagStat struct {
	// Tag is the stable subsystem name (sim.Tag.String).
	Tag string `json:"tag"`
	// Events is the number of dispatched events charged to the tag.
	Events uint64 `json:"events"`
	// SampledSec is the wall time charged by timestamp sampling.
	SampledSec float64 `json:"sampled_sec"`
	// SharePct is SampledSec as a percentage of the total sampled time
	// (0 when nothing was sampled yet).
	SharePct float64 `json:"share_pct"`
}

// Attribution is the machine-readable profile: where the dispatch loop's
// events and wall time went, by subsystem. It is what /profile serves and
// what the comap-bench attribution block embeds.
type Attribution struct {
	// SampleEvery is the timestamp sampling stride the numbers were
	// collected at.
	SampleEvery int `json:"sample_every"`
	// Events is the total number of dispatched events observed.
	Events uint64 `json:"events"`
	// SampledSec is the total wall time charged across tags.
	SampledSec float64 `json:"sampled_sec"`
	// Tags lists every subsystem in fixed tag order, zero rows included,
	// so consumers can diff attributions positionally.
	Tags []TagStat `json:"tags"`
}

// Attribution snapshots the per-tag accumulators. Safe for concurrent use
// with a running simulation.
func (p *Profiler) Attribution() Attribution {
	a := Attribution{SampleEvery: p.cfg.SampleEvery}
	var totalNs int64
	for t := sim.Tag(0); t < sim.NumTags; t++ {
		a.Events += p.events[t].Load()
		totalNs += p.nanos[t].Load()
	}
	a.SampledSec = float64(totalNs) / 1e9
	a.Tags = make([]TagStat, 0, sim.NumTags)
	for t := sim.Tag(0); t < sim.NumTags; t++ {
		ns := p.nanos[t].Load()
		ts := TagStat{
			Tag:        t.String(),
			Events:     p.events[t].Load(),
			SampledSec: float64(ns) / 1e9,
		}
		if totalNs > 0 {
			ts.SharePct = float64(ns) / float64(totalNs) * 100
		}
		a.Tags = append(a.Tags, ts)
	}
	return a
}
