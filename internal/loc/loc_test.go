package loc

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/geom"
)

func TestPerfectRegistry(t *testing.T) {
	r := NewRegistry(rand.New(rand.NewSource(1)), 0, 5)
	r.Register(1, geom.Pt(10, 20))
	p, ok := r.Position(1)
	if !ok || p != geom.Pt(10, 20) {
		t.Errorf("Position = %v ok=%v", p, ok)
	}
	tp, ok := r.TruePosition(1)
	if !ok || tp != geom.Pt(10, 20) {
		t.Errorf("TruePosition = %v", tp)
	}
	if _, ok := r.Position(99); ok {
		t.Error("unknown node should not report")
	}
	if r.Updates() != 1 {
		t.Errorf("Updates = %d", r.Updates())
	}
}

func TestErrorWithinRange(t *testing.T) {
	const errRange = 10.0
	r := NewRegistry(rand.New(rand.NewSource(2)), errRange, 5)
	maxErr := 0.0
	var sumErr float64
	const n = 2000
	for i := 0; i < n; i++ {
		r.Register(1, geom.Pt(0, 0))
		p, _ := r.Position(1)
		e := p.DistanceTo(geom.Pt(0, 0))
		if e > errRange {
			t.Fatalf("error %v exceeds range %v", e, errRange)
		}
		if e > maxErr {
			maxErr = e
		}
		sumErr += e
	}
	// Uniform disc: mean distance = 2R/3, and the max should get close to R.
	if mean := sumErr / n; math.Abs(mean-2*errRange/3) > 0.5 {
		t.Errorf("mean error = %v, want ~%v", mean, 2*errRange/3)
	}
	if maxErr < 0.9*errRange {
		t.Errorf("max error %v suspiciously small for range %v", maxErr, errRange)
	}
}

func TestMovementThreshold(t *testing.T) {
	r := NewRegistry(rand.New(rand.NewSource(3)), 0, 5)
	r.Register(1, geom.Pt(0, 0))
	if r.Updates() != 1 {
		t.Fatalf("Updates = %d", r.Updates())
	}
	// Small move: no new report; the reported position stays stale.
	r.Move(1, geom.Pt(3, 0))
	if r.Updates() != 1 {
		t.Errorf("small move triggered report")
	}
	p, _ := r.Position(1)
	if p != geom.Pt(0, 0) {
		t.Errorf("reported position should be stale, got %v", p)
	}
	if tp, _ := r.TruePosition(1); tp != geom.Pt(3, 0) {
		t.Errorf("true position should track moves, got %v", tp)
	}
	// Cumulative move beyond the threshold from the LAST REPORT: reports.
	r.Move(1, geom.Pt(6, 0))
	if r.Updates() != 2 {
		t.Errorf("move beyond threshold did not report (updates=%d)", r.Updates())
	}
	p, _ = r.Position(1)
	if p != geom.Pt(6, 0) {
		t.Errorf("reported position = %v", p)
	}
}

func TestMoveOnUnregisteredNodeRegisters(t *testing.T) {
	r := NewRegistry(rand.New(rand.NewSource(4)), 0, 5)
	r.Move(7, geom.Pt(1, 1))
	if p, ok := r.Position(7); !ok || p != geom.Pt(1, 1) {
		t.Errorf("Position = %v ok=%v", p, ok)
	}
}

func TestForceReport(t *testing.T) {
	r := NewRegistry(rand.New(rand.NewSource(5)), 0, 100)
	r.Register(1, geom.Pt(0, 0))
	r.Move(1, geom.Pt(10, 0)) // below threshold, stale report
	if !r.ForceReport(1) {
		t.Error("ForceReport on a registered node should report ok")
	}
	if p, _ := r.Position(1); p != geom.Pt(10, 0) {
		t.Errorf("forced report = %v", p)
	}
	if r.ForceReport(99) { // unknown: no panic, no update, not ok
		t.Error("ForceReport on an unregistered node must return !ok")
	}
	if r.Updates() != 2 {
		t.Errorf("Updates = %d", r.Updates())
	}
}

func TestMovementExactlyAtThresholdDoesNotReport(t *testing.T) {
	// The paper's rule is strictly "more than" the threshold: a move of
	// exactly the threshold distance must NOT re-report.
	r := NewRegistry(rand.New(rand.NewSource(8)), 0, 5)
	r.Register(1, geom.Pt(0, 0))
	r.Move(1, geom.Pt(5, 0)) // exactly at threshold
	if r.Updates() != 1 {
		t.Errorf("move of exactly the threshold re-reported (updates=%d)", r.Updates())
	}
	if p, _ := r.Position(1); p != geom.Pt(0, 0) {
		t.Errorf("reported position should be stale, got %v", p)
	}
	// The tiniest excess past the threshold reports.
	r.Move(1, geom.Pt(5.000001, 0))
	if r.Updates() != 2 {
		t.Errorf("move past the threshold did not report (updates=%d)", r.Updates())
	}
}

func TestIDs(t *testing.T) {
	r := NewRegistry(rand.New(rand.NewSource(6)), 0, 5)
	r.Register(3, geom.Pt(0, 0))
	r.Register(1, geom.Pt(1, 0))
	ids := r.IDs()
	if len(ids) != 2 {
		t.Errorf("IDs = %v", ids)
	}
}

func TestStaticProvider(t *testing.T) {
	s := Static{5: geom.Pt(2, 3)}
	if p, ok := s.Position(5); !ok || p != geom.Pt(2, 3) {
		t.Errorf("Position = %v ok=%v", p, ok)
	}
	if _, ok := s.Position(6); ok {
		t.Error("missing id should be !ok")
	}
}

func TestErrorRangeAccessor(t *testing.T) {
	r := NewRegistry(rand.New(rand.NewSource(7)), 12.5, 5)
	if r.ErrorRange() != 12.5 {
		t.Errorf("ErrorRange = %v", r.ErrorRange())
	}
}

func TestErrorBoundProperty(t *testing.T) {
	f := func(seed int64, rRaw uint8, xRaw, yRaw int16) bool {
		errRange := 1 + float64(rRaw%30)
		r := NewRegistry(rand.New(rand.NewSource(seed)), errRange, 1)
		truth := geom.Pt(float64(xRaw), float64(yRaw))
		r.Register(5, truth)
		got, ok := r.Position(5)
		return ok && got.DistanceTo(truth) <= errRange+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
