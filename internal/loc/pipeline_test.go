package loc

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/frame"
	"repro/internal/geom"
	"repro/internal/sim"
)

// newClockedRegistry wires a registry to a simulation engine's clock and
// scheduler, as netsim.Build does.
func newClockedRegistry(eng *sim.Engine, errRange, threshold float64) *Registry {
	r := NewRegistry(rand.New(rand.NewSource(1)), errRange, threshold)
	r.SetClock(eng.Now)
	r.SetScheduler(func(d time.Duration, fn func()) { eng.After(d, fn) })
	return r
}

func TestFixCarriesReportTimeAndErrorRadius(t *testing.T) {
	eng := sim.New(1)
	r := newClockedRegistry(eng, 7, 1)
	r.Register(1, geom.Pt(0, 0))
	fix, ok := r.Fix(1)
	if !ok {
		t.Fatal("no fix after Register")
	}
	if fix.ReportedAt != 0 || fix.ErrorRadiusMeters != 7 {
		t.Errorf("fix = %+v", fix)
	}
	eng.After(time.Second, func() { r.Move(1, geom.Pt(10, 0)) })
	eng.Run()
	fix, _ = r.Fix(1)
	if fix.ReportedAt != time.Second {
		t.Errorf("ReportedAt = %v, want 1s", fix.ReportedAt)
	}
}

func TestDelayedReportCommitsLater(t *testing.T) {
	eng := sim.New(1)
	r := newClockedRegistry(eng, 0, 1)
	r.Register(1, geom.Pt(0, 0))

	r.SetPipelineFault(func(id frame.NodeID) (time.Duration, bool) { return 200 * time.Millisecond, false })
	eng.After(time.Second, func() { r.Move(1, geom.Pt(50, 0)) })
	var posAtCommitMinus, posAtCommitPlus geom.Point
	eng.After(time.Second+199*time.Millisecond, func() { posAtCommitMinus, _ = r.Position(1) })
	eng.After(time.Second+201*time.Millisecond, func() { posAtCommitPlus, _ = r.Position(1) })
	eng.Run()

	if posAtCommitMinus != geom.Pt(0, 0) {
		t.Errorf("report visible before its latency elapsed: %v", posAtCommitMinus)
	}
	if posAtCommitPlus != geom.Pt(50, 0) {
		t.Errorf("delayed report did not commit: %v", posAtCommitPlus)
	}
	if r.DelayedReports() != 1 {
		t.Errorf("DelayedReports = %d", r.DelayedReports())
	}
	// The fix's ReportedAt is the measurement time, not the commit time.
	fix, _ := r.Fix(1)
	if fix.ReportedAt != time.Second {
		t.Errorf("ReportedAt = %v, want 1s (measurement time)", fix.ReportedAt)
	}
}

func TestDroppedReportLeavesStaleFix(t *testing.T) {
	eng := sim.New(1)
	r := newClockedRegistry(eng, 0, 1)
	r.Register(1, geom.Pt(0, 0))
	r.SetPipelineFault(func(id frame.NodeID) (time.Duration, bool) { return 0, true })
	r.Move(1, geom.Pt(50, 0))
	if p, _ := r.Position(1); p != geom.Pt(0, 0) {
		t.Errorf("dropped report still committed: %v", p)
	}
	if r.DroppedReports() != 1 {
		t.Errorf("DroppedReports = %d", r.DroppedReports())
	}
	if r.Updates() != 2 {
		t.Errorf("Updates = %d (dropped reports still cost signalling)", r.Updates())
	}
}

func TestOutageFreezesFix(t *testing.T) {
	eng := sim.New(1)
	r := newClockedRegistry(eng, 0, 1)
	r.Register(1, geom.Pt(0, 0))
	r.SetFrozen(1, true)
	if !r.Frozen(1) {
		t.Fatal("Frozen not set")
	}
	eng.After(time.Second, func() { r.Move(1, geom.Pt(50, 0)) })
	eng.Run()
	fix, _ := r.Fix(1)
	if fix.Pos != geom.Pt(0, 0) || fix.ReportedAt != 0 {
		t.Errorf("outage did not freeze the fix: %+v", fix)
	}
	// Recovery: the next report lands again.
	r.SetFrozen(1, false)
	if !r.ForceReport(1) {
		t.Fatal("ForceReport !ok")
	}
	fix, _ = r.Fix(1)
	if fix.Pos != geom.Pt(50, 0) {
		t.Errorf("post-outage fix = %+v", fix)
	}
}

func TestBiasBurstShiftsReports(t *testing.T) {
	r := NewRegistry(rand.New(rand.NewSource(1)), 0, 1)
	r.Register(1, geom.Pt(10, 10))
	r.SetBias(1, geom.Vec(20, 0))
	r.ForceReport(1)
	if p, _ := r.Position(1); p != geom.Pt(30, 10) {
		t.Errorf("biased report = %v", p)
	}
	r.SetBias(1, geom.Vec(0, 0)) // clears
	r.ForceReport(1)
	if p, _ := r.Position(1); p != geom.Pt(10, 10) {
		t.Errorf("bias did not clear: %v", p)
	}
}

func TestDeregisterRemovesNode(t *testing.T) {
	eng := sim.New(1)
	r := newClockedRegistry(eng, 0, 1)
	r.Register(1, geom.Pt(0, 0))
	if !r.Deregister(1) {
		t.Fatal("Deregister !ok on a registered node")
	}
	if _, ok := r.Position(1); ok {
		t.Error("deregistered node still has a fix")
	}
	if _, ok := r.TruePosition(1); ok {
		t.Error("deregistered node still has truth")
	}
	if r.Deregister(1) {
		t.Error("double Deregister should be !ok")
	}
	if r.ForceReport(1) {
		t.Error("ForceReport after Deregister should be !ok")
	}
}

func TestDelayedReportDoesNotOvertakeNewerFix(t *testing.T) {
	eng := sim.New(1)
	r := newClockedRegistry(eng, 0, 1)
	r.Register(1, geom.Pt(0, 0))
	// First report is slow, second is instant: the slow one lands after the
	// fresh one and must not roll the table back.
	slow := true
	r.SetPipelineFault(func(id frame.NodeID) (time.Duration, bool) {
		if slow {
			slow = false
			return 500 * time.Millisecond, false
		}
		return 0, false
	})
	eng.After(100*time.Millisecond, func() { r.Move(1, geom.Pt(10, 0)) }) // commits at 600ms
	eng.After(200*time.Millisecond, func() { r.Move(1, geom.Pt(20, 0)) }) // commits at 200ms
	eng.Run()
	if p, _ := r.Position(1); p != geom.Pt(20, 0) {
		t.Errorf("stale delayed report overwrote a newer fix: %v", p)
	}
}

func TestDelayedReportAfterDeregisterDoesNotResurrect(t *testing.T) {
	eng := sim.New(1)
	r := newClockedRegistry(eng, 0, 1)
	r.Register(1, geom.Pt(0, 0))
	r.SetPipelineFault(func(id frame.NodeID) (time.Duration, bool) { return 300 * time.Millisecond, false })
	eng.After(100*time.Millisecond, func() { r.Move(1, geom.Pt(10, 0)) })
	eng.After(200*time.Millisecond, func() { r.Deregister(1) })
	eng.Run()
	if _, ok := r.Position(1); ok {
		t.Error("in-flight report resurrected a deregistered node")
	}
}
