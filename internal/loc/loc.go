// Package loc models the localization substrate CO-MAP consumes: every node
// reports its position to its AP and the positions are shared across nearby
// nodes (paper §IV-A). Since GPS and indoor localization give imperfect
// positions (the paper quotes ~13.7 m outdoor GPS error and room-level indoor
// accuracy), the registry injects a configurable uniform error into every
// report, exactly as the paper's NS-2 tolerance experiments do ("we add
// random error within a certain range to the coordinates of each node").
//
// Position updates follow the paper's mobility-management rule: a node
// re-reports only after moving more than a threshold distance (half the
// tolerable inaccuracy), which bounds the signalling overhead.
package loc

import (
	"math"
	"math/rand"

	"repro/internal/frame"
	"repro/internal/geom"
)

// Provider exposes the reported (possibly erroneous, possibly stale)
// position of a node. CO-MAP's neighbor tables are built from a Provider.
type Provider interface {
	// Position returns the last reported position of id. ok is false when
	// the node never reported.
	Position(id frame.NodeID) (geom.Point, bool)
}

// Registry is the in-simulation location service: it stores true positions,
// applies the error model at report time, and implements the
// movement-threshold update policy.
type Registry struct {
	rng *rand.Rand
	// errorRange is the radius of the uniform-disc error added to every
	// report, in meters (0 = perfect positions).
	errorRange float64
	// updateThreshold is the minimum movement since the last report that
	// triggers a new report, in meters.
	updateThreshold float64

	truth    map[frame.NodeID]geom.Point
	reported map[frame.NodeID]geom.Point
	// lastReportTrue remembers the true position at last report time, for
	// the movement-threshold rule.
	lastReportTrue map[frame.NodeID]geom.Point
	updates        int
}

var _ Provider = (*Registry)(nil)

// NewRegistry creates a registry with the given error radius and update
// threshold. rng drives the error sampling; it must not be shared with other
// consumers if reproducibility per subsystem is desired.
func NewRegistry(rng *rand.Rand, errorRangeMeters, updateThresholdMeters float64) *Registry {
	return &Registry{
		rng:             rng,
		errorRange:      errorRangeMeters,
		updateThreshold: updateThresholdMeters,
		truth:           make(map[frame.NodeID]geom.Point),
		reported:        make(map[frame.NodeID]geom.Point),
		lastReportTrue:  make(map[frame.NodeID]geom.Point),
	}
}

// ErrorRange returns the configured error radius in meters.
func (r *Registry) ErrorRange() float64 { return r.errorRange }

// Updates returns how many position reports have been issued — the paper's
// communication-overhead measure.
func (r *Registry) Updates() int { return r.updates }

// Register sets a node's initial true position and issues its first report.
func (r *Registry) Register(id frame.NodeID, p geom.Point) {
	r.truth[id] = p
	r.report(id)
}

// Move updates a node's true position; a new report is issued only if the
// node moved more than the update threshold since its last report.
func (r *Registry) Move(id frame.NodeID, p geom.Point) {
	r.truth[id] = p
	last, ok := r.lastReportTrue[id]
	if !ok {
		r.report(id)
		return
	}
	if last.DistanceTo(p) > r.updateThreshold {
		r.report(id)
	}
}

// ForceReport issues a report regardless of movement (e.g. on association).
func (r *Registry) ForceReport(id frame.NodeID) {
	if _, ok := r.truth[id]; ok {
		r.report(id)
	}
}

func (r *Registry) report(id frame.NodeID) {
	p := r.truth[id]
	r.lastReportTrue[id] = p
	r.reported[id] = r.addError(p)
	r.updates++
}

// addError perturbs p by a uniform sample from the disc of radius errorRange.
func (r *Registry) addError(p geom.Point) geom.Point {
	if r.errorRange <= 0 {
		return p
	}
	// Uniform on the disc: radius sqrt(u)*R, angle uniform.
	radius := r.errorRange * math.Sqrt(r.rng.Float64())
	theta := 2 * math.Pi * r.rng.Float64()
	return p.Add(geom.Vec(radius*math.Cos(theta), radius*math.Sin(theta)))
}

// Position implements Provider: the last reported (erroneous, possibly
// stale) position.
func (r *Registry) Position(id frame.NodeID) (geom.Point, bool) {
	p, ok := r.reported[id]
	return p, ok
}

// TruePosition returns the ground-truth position.
func (r *Registry) TruePosition(id frame.NodeID) (geom.Point, bool) {
	p, ok := r.truth[id]
	return p, ok
}

// IDs returns the registered node IDs in unspecified order.
func (r *Registry) IDs() []frame.NodeID {
	out := make([]frame.NodeID, 0, len(r.truth))
	for id := range r.truth {
		out = append(out, id)
	}
	return out
}

// Static is a fixed Provider for tests and hand-built scenarios.
type Static map[frame.NodeID]geom.Point

var _ Provider = Static{}

// Position implements Provider.
func (s Static) Position(id frame.NodeID) (geom.Point, bool) {
	p, ok := s[id]
	return p, ok
}
