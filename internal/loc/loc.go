// Package loc models the localization substrate CO-MAP consumes: every node
// reports its position to its AP and the positions are shared across nearby
// nodes (paper §IV-A). Since GPS and indoor localization give imperfect
// positions (the paper quotes ~13.7 m outdoor GPS error and room-level indoor
// accuracy), the registry injects a configurable uniform error into every
// report, exactly as the paper's NS-2 tolerance experiments do ("we add
// random error within a certain range to the coordinates of each node").
//
// Position updates follow the paper's mobility-management rule: a node
// re-reports only after moving more than a threshold distance (half the
// tolerable inaccuracy), which bounds the signalling overhead.
//
// Beyond the uniform-disc error the registry models an imperfect report
// *pipeline*: reports may commit only after a configurable latency, be
// dropped outright, carry a transient bias burst, or freeze entirely during
// a localization outage. Each committed fix carries its report time and
// error radius, so consumers (CO-MAP's location-health model) can reason
// about staleness instead of trusting every coordinate unconditionally.
package loc

import (
	"math"
	"math/rand"
	"sort"
	"time"

	"repro/internal/frame"
	"repro/internal/geom"
)

// Provider exposes the reported (possibly erroneous, possibly stale)
// position of a node. CO-MAP's neighbor tables are built from a Provider.
type Provider interface {
	// Position returns the last reported position of id. ok is false when
	// the node never reported.
	Position(id frame.NodeID) (geom.Point, bool)
}

// Fix is one committed position report: the (erroneous) position itself,
// the virtual time it was measured, and the reported error radius of the
// localization source. Consumers derive the fix's age from ReportedAt.
type Fix struct {
	Pos geom.Point
	// ReportedAt is the virtual time the position was measured (not the
	// commit time: a delayed report is already stale when it lands). A
	// negative value marks a fix without report-time metadata — an oracle
	// position that consumers must treat as always fresh.
	ReportedAt time.Duration
	// ErrorRadiusMeters is the localization error bound the source reports
	// alongside the fix (the registry's configured error range).
	ErrorRadiusMeters float64
}

// FixProvider is a Provider that also exposes fix metadata (report age and
// error radius). CO-MAP's health model consults it; providers that do not
// implement it are treated as always-fresh oracles.
type FixProvider interface {
	Provider
	// Fix returns the full last committed fix of id.
	Fix(id frame.NodeID) (Fix, bool)
}

// PipelineFault decides the fate of one issued report: commit after delay
// (0 = immediately), or drop it entirely. The faults package installs
// implementations; a nil fault function is a perfect pipeline.
type PipelineFault func(id frame.NodeID) (delay time.Duration, drop bool)

// Registry is the in-simulation location service: it stores true positions,
// applies the error model at report time, and implements the
// movement-threshold update policy.
type Registry struct {
	rng *rand.Rand
	// errorRange is the radius of the uniform-disc error added to every
	// report, in meters (0 = perfect positions).
	errorRange float64
	// updateThreshold is the minimum movement since the last report that
	// triggers a new report, in meters.
	updateThreshold float64

	truth    map[frame.NodeID]geom.Point
	reported map[frame.NodeID]Fix
	// lastReportTrue remembers the true position at last report time, for
	// the movement-threshold rule.
	lastReportTrue map[frame.NodeID]geom.Point
	updates        int

	// Report-pipeline state (all optional; zero values = oracle pipeline).
	now      func() time.Duration
	schedule func(d time.Duration, fn func())
	fault    PipelineFault
	frozen   map[frame.NodeID]bool
	bias     map[frame.NodeID]geom.Vector
	dropped  int
	delayed  int

	// Ingest hooks (optional): onCommit fires after every committed fix and
	// onDeregister after every successful deregistration, so a control-plane
	// client can mirror the registry's committed state as a change stream.
	onCommit     func(id frame.NodeID, fix Fix)
	onDeregister func(id frame.NodeID)
}

var _ FixProvider = (*Registry)(nil)

// NewRegistry creates a registry with the given error radius and update
// threshold. rng drives the error sampling; it must not be shared with other
// consumers if reproducibility per subsystem is desired.
func NewRegistry(rng *rand.Rand, errorRangeMeters, updateThresholdMeters float64) *Registry {
	return &Registry{
		rng:             rng,
		errorRange:      errorRangeMeters,
		updateThreshold: updateThresholdMeters,
		truth:           make(map[frame.NodeID]geom.Point),
		reported:        make(map[frame.NodeID]Fix),
		lastReportTrue:  make(map[frame.NodeID]geom.Point),
	}
}

// ErrorRange returns the configured error radius in meters.
func (r *Registry) ErrorRange() float64 { return r.errorRange }

// Updates returns how many position reports have been issued — the paper's
// communication-overhead measure. Dropped and delayed reports count: the
// node spent the signalling either way.
func (r *Registry) Updates() int { return r.updates }

// DroppedReports and DelayedReports expose the pipeline-fault tallies.
func (r *Registry) DroppedReports() int { return r.dropped }
func (r *Registry) DelayedReports() int { return r.delayed }

// SetClock installs the virtual-time source used to stamp fixes. Without a
// clock every fix reads as reported at time zero (age never accumulates),
// which preserves the oracle behavior of health-unaware consumers.
func (r *Registry) SetClock(now func() time.Duration) { r.now = now }

// SetScheduler installs the event scheduler used to commit delayed reports
// (typically sim.Engine.After). Without one, delayed reports commit
// immediately (the delay is recorded but not realised).
func (r *Registry) SetScheduler(after func(d time.Duration, fn func())) { r.schedule = after }

// SetPipelineFault installs the report loss/delay process. nil restores the
// perfect pipeline.
func (r *Registry) SetPipelineFault(f PipelineFault) { r.fault = f }

// SetFrozen starts or ends a localization outage for id: while frozen the
// node's committed fix stops updating (its age accumulates) even though true
// movement is still tracked and the movement rule still burns report budget.
func (r *Registry) SetFrozen(id frame.NodeID, frozen bool) {
	if r.frozen == nil {
		r.frozen = make(map[frame.NodeID]bool)
	}
	if frozen {
		r.frozen[id] = true
	} else {
		delete(r.frozen, id)
	}
}

// Frozen reports whether id is inside a localization outage window.
func (r *Registry) Frozen(id frame.NodeID) bool { return r.frozen[id] }

// SetBias adds a systematic offset to every subsequent report from id (a
// bias burst on top of the disc error); the zero vector clears it.
func (r *Registry) SetBias(id frame.NodeID, v geom.Vector) {
	if r.bias == nil {
		r.bias = make(map[frame.NodeID]geom.Vector)
	}
	if v.DX == 0 && v.DY == 0 {
		delete(r.bias, id)
	} else {
		r.bias[id] = v
	}
}

// Register sets a node's initial true position and issues its first report.
func (r *Registry) Register(id frame.NodeID, p geom.Point) {
	r.truth[id] = p
	r.report(id)
}

// Deregister removes a node entirely (station churn: it left the network).
// Its fix disappears — consumers must cope with a peer that no longer has a
// position. It reports whether the node was registered.
func (r *Registry) Deregister(id frame.NodeID) bool {
	_, ok := r.truth[id]
	if !ok {
		return false
	}
	delete(r.truth, id)
	delete(r.reported, id)
	delete(r.lastReportTrue, id)
	if r.frozen != nil {
		delete(r.frozen, id)
	}
	if r.bias != nil {
		delete(r.bias, id)
	}
	if r.onDeregister != nil {
		r.onDeregister(id)
	}
	return true
}

// Move updates a node's true position; a new report is issued only if the
// node moved more than the update threshold since its last report.
func (r *Registry) Move(id frame.NodeID, p geom.Point) {
	r.truth[id] = p
	last, ok := r.lastReportTrue[id]
	if !ok {
		r.report(id)
		return
	}
	if last.DistanceTo(p) > r.updateThreshold {
		r.report(id)
	}
}

// ForceReport issues a report regardless of movement (e.g. on association or
// churn re-join). It reports whether the node is registered; unregistered
// nodes are a no-op and callers must check ok rather than assume a fix
// landed.
func (r *Registry) ForceReport(id frame.NodeID) (ok bool) {
	if _, ok := r.truth[id]; !ok {
		return false
	}
	r.report(id)
	return true
}

// StartHeartbeat schedules a periodic re-report of every registered node
// (the location service's keepalive). With a healthy pipeline this bounds
// every fix's age to roughly the interval, so CO-MAP's health model only
// trips during genuine loss, delay, or outage windows. Requires a scheduler;
// nodes are visited in ID order so the error-sampling RNG draws are
// reproducible.
func (r *Registry) StartHeartbeat(every time.Duration) {
	if r.schedule == nil || every <= 0 {
		return
	}
	var tick func()
	tick = func() {
		ids := r.IDs()
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		for _, id := range ids {
			r.report(id)
		}
		r.schedule(every, tick)
	}
	r.schedule(every, tick)
}

// virtualNow returns the clock reading (zero without a clock).
func (r *Registry) virtualNow() time.Duration {
	if r.now == nil {
		return 0
	}
	return r.now()
}

// report pushes one position report into the pipeline: sample the erroneous
// fix now, then commit it immediately, after the fault-injected latency, or
// never.
func (r *Registry) report(id frame.NodeID) {
	p := r.truth[id]
	r.lastReportTrue[id] = p
	r.updates++
	if r.frozen[id] {
		// Localization outage: the fix source is down; nothing commits.
		return
	}
	fix := Fix{
		Pos:               r.addError(p).Add(r.bias[id]),
		ReportedAt:        r.virtualNow(),
		ErrorRadiusMeters: r.errorRange,
	}
	var delay time.Duration
	if r.fault != nil {
		d, drop := r.fault(id)
		if drop {
			r.dropped++
			return
		}
		delay = d
	}
	if delay <= 0 || r.schedule == nil {
		r.commit(id, fix)
		return
	}
	r.delayed++
	r.schedule(delay, func() { r.commit(id, fix) })
}

// commit lands a fix, unless a newer one already committed (delayed reports
// must not roll the table backwards).
func (r *Registry) commit(id frame.NodeID, fix Fix) {
	if _, registered := r.truth[id]; !registered {
		return // node left while the report was in flight
	}
	if cur, ok := r.reported[id]; ok && cur.ReportedAt > fix.ReportedAt {
		return
	}
	r.reported[id] = fix
	if r.onCommit != nil {
		r.onCommit(id, fix)
	}
}

// SetOnCommit installs a hook invoked after every committed fix (not for
// reports dropped, superseded, or voided by deregistration). The hook sees
// exactly the registry's committed-state change stream.
func (r *Registry) SetOnCommit(fn func(id frame.NodeID, fix Fix)) { r.onCommit = fn }

// SetOnDeregister installs a hook invoked after every successful
// deregistration.
func (r *Registry) SetOnDeregister(fn func(id frame.NodeID)) { r.onDeregister = fn }

// addError perturbs p by a uniform sample from the disc of radius errorRange.
func (r *Registry) addError(p geom.Point) geom.Point {
	if r.errorRange <= 0 {
		return p
	}
	// Uniform on the disc: radius sqrt(u)*R, angle uniform.
	radius := r.errorRange * math.Sqrt(r.rng.Float64())
	theta := 2 * math.Pi * r.rng.Float64()
	return p.Add(geom.Vec(radius*math.Cos(theta), radius*math.Sin(theta)))
}

// Position implements Provider: the last reported (erroneous, possibly
// stale) position.
func (r *Registry) Position(id frame.NodeID) (geom.Point, bool) {
	fix, ok := r.reported[id]
	return fix.Pos, ok
}

// Fix implements FixProvider: the last committed fix with its metadata.
func (r *Registry) Fix(id frame.NodeID) (Fix, bool) {
	fix, ok := r.reported[id]
	return fix, ok
}

// TruePosition returns the ground-truth position.
func (r *Registry) TruePosition(id frame.NodeID) (geom.Point, bool) {
	p, ok := r.truth[id]
	return p, ok
}

// IDs returns the registered node IDs in unspecified order.
func (r *Registry) IDs() []frame.NodeID {
	out := make([]frame.NodeID, 0, len(r.truth))
	for id := range r.truth {
		out = append(out, id)
	}
	return out
}

// Static is a fixed Provider for tests and hand-built scenarios.
type Static map[frame.NodeID]geom.Point

var _ Provider = Static{}

// Position implements Provider.
func (s Static) Position(id frame.NodeID) (geom.Point, bool) {
	p, ok := s[id]
	return p, ok
}
