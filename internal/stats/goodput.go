package stats

import (
	"sort"
	"time"
)

// GoodputMeter accumulates delivered payload bytes and converts them to a
// goodput in bits per second over a measurement window. Goodput counts only
// application payload delivered to the destination for the first time
// (retransmitted duplicates must not be added).
type GoodputMeter struct {
	payloadBytes int64
	frames       int64
}

// AddPayload records bytes of newly delivered application payload.
func (g *GoodputMeter) AddPayload(bytes int) {
	g.payloadBytes += int64(bytes)
	g.frames++
}

// Bytes returns the total delivered payload bytes.
func (g *GoodputMeter) Bytes() int64 { return g.payloadBytes }

// Frames returns the number of delivered frames.
func (g *GoodputMeter) Frames() int64 { return g.frames }

// BitsPerSecond returns the goodput over the given elapsed wall-clock
// (simulated) duration. It returns 0 for non-positive durations.
func (g *GoodputMeter) BitsPerSecond(elapsed time.Duration) float64 {
	if elapsed <= 0 {
		return 0
	}
	return float64(g.payloadBytes) * 8 / elapsed.Seconds()
}

// Mbps returns the goodput in megabits per second.
func (g *GoodputMeter) Mbps(elapsed time.Duration) float64 {
	return g.BitsPerSecond(elapsed) / 1e6
}

// Counter is a named monotonically increasing event counter set, used for
// protocol statistics (collisions, retries, deferrals, ...).
type Counter struct {
	counts map[string]int64
}

// NewCounter returns an empty counter set.
func NewCounter() *Counter { return &Counter{counts: make(map[string]int64)} }

// Inc increments the named counter by 1.
func (c *Counter) Inc(name string) { c.counts[name]++ }

// Addn increments the named counter by n.
func (c *Counter) Addn(name string, n int64) { c.counts[name] += n }

// Get returns the value of the named counter (0 if never incremented).
func (c *Counter) Get(name string) int64 { return c.counts[name] }

// Names returns the counter names in sorted order.
func (c *Counter) Names() []string {
	names := make([]string, 0, len(c.counts))
	for n := range c.counts {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Snapshot returns a copy of the underlying counts.
func (c *Counter) Snapshot() map[string]int64 {
	out := make(map[string]int64, len(c.counts))
	for k, v := range c.counts {
		out[k] = v
	}
	return out
}
