package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestOnlineBasics(t *testing.T) {
	var o Online
	if o.N() != 0 || o.Mean() != 0 || o.Variance() != 0 {
		t.Fatal("zero value should report zeros")
	}
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		o.Add(x)
	}
	if o.N() != 8 {
		t.Errorf("N = %d", o.N())
	}
	if got := o.Mean(); math.Abs(got-5) > 1e-12 {
		t.Errorf("Mean = %v, want 5", got)
	}
	// Population variance of this classic set is 4; sample variance 32/7.
	if got := o.Variance(); math.Abs(got-32.0/7.0) > 1e-12 {
		t.Errorf("Variance = %v, want %v", got, 32.0/7.0)
	}
	if o.Min() != 2 || o.Max() != 9 {
		t.Errorf("Min/Max = %v/%v", o.Min(), o.Max())
	}
	if got := o.Sum(); math.Abs(got-40) > 1e-9 {
		t.Errorf("Sum = %v, want 40", got)
	}
}

func TestOnlineSingleSample(t *testing.T) {
	var o Online
	o.Add(3.5)
	if o.Mean() != 3.5 || o.Variance() != 0 || o.StdDev() != 0 {
		t.Errorf("single-sample stats wrong: %+v", o)
	}
	if o.Min() != 3.5 || o.Max() != 3.5 {
		t.Errorf("Min/Max = %v/%v", o.Min(), o.Max())
	}
}

func TestOnlineMergeMatchesSequential(t *testing.T) {
	f := func(xs, ys []float64) bool {
		clean := func(in []float64) []float64 {
			out := in[:0]
			for _, v := range in {
				if !math.IsNaN(v) && !math.IsInf(v, 0) && math.Abs(v) < 1e6 {
					out = append(out, v)
				}
			}
			return out
		}
		xs, ys = clean(xs), clean(ys)
		var a, b, all Online
		for _, x := range xs {
			a.Add(x)
			all.Add(x)
		}
		for _, y := range ys {
			b.Add(y)
			all.Add(y)
		}
		a.Merge(b)
		if a.N() != all.N() {
			return false
		}
		if a.N() == 0 {
			return true
		}
		scale := math.Max(1, math.Abs(all.Mean()))
		return math.Abs(a.Mean()-all.Mean()) < 1e-6*scale &&
			math.Abs(a.Variance()-all.Variance()) < 1e-4*math.Max(1, all.Variance())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestOnlineMergeEmpty(t *testing.T) {
	var a, b Online
	a.Add(1)
	a.Merge(b) // merging empty is a no-op
	if a.N() != 1 || a.Mean() != 1 {
		t.Errorf("merge empty changed stats: %+v", a)
	}
	b.Merge(a) // merging into empty copies
	if b.N() != 1 || b.Mean() != 1 {
		t.Errorf("merge into empty: %+v", b)
	}
}

func TestECDFAt(t *testing.T) {
	e := NewECDF([]float64{1, 2, 2, 3})
	tests := []struct {
		x    float64
		want float64
	}{
		{0.5, 0},
		{1, 0.25},
		{1.5, 0.25},
		{2, 0.75},
		{3, 1},
		{10, 1},
	}
	for _, tt := range tests {
		if got := e.At(tt.x); got != tt.want {
			t.Errorf("At(%v) = %v, want %v", tt.x, got, tt.want)
		}
	}
}

func TestECDFEmpty(t *testing.T) {
	e := NewECDF(nil)
	if e.At(1) != 0 || e.N() != 0 || e.Mean() != 0 {
		t.Error("empty ECDF should report zeros")
	}
	if _, err := e.Quantile(0.5); err == nil {
		t.Error("Quantile on empty ECDF should error")
	}
}

func TestECDFQuantile(t *testing.T) {
	e := NewECDF([]float64{10, 20, 30, 40})
	tests := []struct {
		q    float64
		want float64
	}{
		{0, 10},
		{0.25, 10},
		{0.5, 20},
		{0.75, 30},
		{1, 40},
	}
	for _, tt := range tests {
		got, err := e.Quantile(tt.q)
		if err != nil {
			t.Fatalf("Quantile(%v): %v", tt.q, err)
		}
		if got != tt.want {
			t.Errorf("Quantile(%v) = %v, want %v", tt.q, got, tt.want)
		}
	}
	if _, err := e.Quantile(1.5); err == nil {
		t.Error("out-of-range quantile should error")
	}
}

func TestECDFMonotoneProperty(t *testing.T) {
	f := func(raw []float64, x1, x2 float64) bool {
		samples := raw[:0]
		for _, v := range raw {
			if !math.IsNaN(v) {
				samples = append(samples, v)
			}
		}
		if math.IsNaN(x1) || math.IsNaN(x2) {
			return true
		}
		e := NewECDF(samples)
		lo, hi := math.Min(x1, x2), math.Max(x1, x2)
		fl, fh := e.At(lo), e.At(hi)
		return fl <= fh && fl >= 0 && fh <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestECDFDoesNotAliasInput(t *testing.T) {
	in := []float64{3, 1, 2}
	e := NewECDF(in)
	in[0] = 100
	if e.At(3) != 1 {
		t.Error("ECDF must copy its input")
	}
	if sort.Float64sAreSorted(in) {
		t.Error("input slice must not be sorted in place")
	}
}

func TestECDFPoints(t *testing.T) {
	e := NewECDF([]float64{5, 1})
	pts := e.Points()
	if len(pts) != 2 {
		t.Fatalf("len = %d", len(pts))
	}
	if pts[0] != (CDFPoint{X: 1, F: 0.5}) || pts[1] != (CDFPoint{X: 5, F: 1}) {
		t.Errorf("Points = %+v", pts)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, x := range []float64{-1, 0, 1.9, 2, 9.999, 10, 42} {
		h.Add(x)
	}
	if h.Under != 1 || h.Over != 2 {
		t.Errorf("Under/Over = %d/%d", h.Under, h.Over)
	}
	want := []int{2, 1, 0, 0, 1}
	for i, c := range h.Counts {
		if c != want[i] {
			t.Errorf("bin %d = %d, want %d", i, c, want[i])
		}
	}
	if h.Total() != 7 {
		t.Errorf("Total = %d", h.Total())
	}
	if got := h.BinCenter(0); got != 1 {
		t.Errorf("BinCenter(0) = %v", got)
	}
}

func TestHistogramRejectsNaN(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	h.Add(math.NaN())
	h.Add(5)
	if h.NaN != 1 {
		t.Errorf("NaN = %d, want 1", h.NaN)
	}
	for i, c := range h.Counts {
		want := 0
		if i == 2 {
			want = 1
		}
		if c != want {
			t.Errorf("bin %d = %d after NaN, want %d", i, c, want)
		}
	}
	if h.Under != 0 || h.Over != 0 {
		t.Errorf("NaN leaked into Under/Over: %d/%d", h.Under, h.Over)
	}
	if h.Total() != 2 {
		t.Errorf("Total = %d, want 2", h.Total())
	}
}

func TestHistogramPanicsOnBadBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewHistogram(5, 5, 3)
}

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("Mean(nil) != 0")
	}
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Errorf("Mean = %v", got)
	}
}

func TestRelativeGain(t *testing.T) {
	if got := RelativeGain(10, 15); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("RelativeGain = %v, want 0.5", got)
	}
	if RelativeGain(0, 5) != 0 {
		t.Error("gain over zero baseline should be 0")
	}
	if got := RelativeGain(10, 5); math.Abs(got+0.5) > 1e-12 {
		t.Errorf("negative gain = %v, want -0.5", got)
	}
}

func TestGoodputMeter(t *testing.T) {
	var g GoodputMeter
	g.AddPayload(1000)
	g.AddPayload(500)
	if g.Bytes() != 1500 || g.Frames() != 2 {
		t.Errorf("Bytes/Frames = %d/%d", g.Bytes(), g.Frames())
	}
	if got := g.BitsPerSecond(time.Second); got != 12000 {
		t.Errorf("BitsPerSecond = %v, want 12000", got)
	}
	if got := g.Mbps(time.Second); math.Abs(got-0.012) > 1e-12 {
		t.Errorf("Mbps = %v", got)
	}
	if g.BitsPerSecond(0) != 0 || g.BitsPerSecond(-time.Second) != 0 {
		t.Error("non-positive elapsed must yield 0")
	}
}

func TestCounter(t *testing.T) {
	c := NewCounter()
	c.Inc("collisions")
	c.Inc("collisions")
	c.Addn("retries", 5)
	if c.Get("collisions") != 2 || c.Get("retries") != 5 || c.Get("missing") != 0 {
		t.Errorf("counter values wrong: %v", c.Snapshot())
	}
	names := c.Names()
	if len(names) != 2 || names[0] != "collisions" || names[1] != "retries" {
		t.Errorf("Names = %v", names)
	}
	snap := c.Snapshot()
	snap["collisions"] = 99
	if c.Get("collisions") != 2 {
		t.Error("Snapshot must be a copy")
	}
}
