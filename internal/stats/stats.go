// Package stats provides the measurement utilities used throughout the CO-MAP
// evaluation harness: streaming moments, empirical CDFs, percentiles and
// goodput accounting.
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrNoSamples is returned by queries on empty sample sets.
var ErrNoSamples = errors.New("stats: no samples")

// Online accumulates streaming mean and variance using Welford's algorithm.
// The zero value is ready to use.
type Online struct {
	n    int
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add incorporates one observation.
func (o *Online) Add(x float64) {
	o.n++
	if o.n == 1 {
		o.min, o.max = x, x
	} else {
		o.min = math.Min(o.min, x)
		o.max = math.Max(o.max, x)
	}
	d := x - o.mean
	o.mean += d / float64(o.n)
	o.m2 += d * (x - o.mean)
}

// N returns the number of observations seen so far.
func (o *Online) N() int { return o.n }

// Mean returns the sample mean, or 0 with no samples.
func (o *Online) Mean() float64 { return o.mean }

// Min returns the smallest observation, or 0 with no samples.
func (o *Online) Min() float64 { return o.min }

// Max returns the largest observation, or 0 with no samples.
func (o *Online) Max() float64 { return o.max }

// Variance returns the unbiased sample variance (n-1 denominator). It returns
// 0 for fewer than two samples.
func (o *Online) Variance() float64 {
	if o.n < 2 {
		return 0
	}
	return o.m2 / float64(o.n-1)
}

// StdDev returns the sample standard deviation.
func (o *Online) StdDev() float64 { return math.Sqrt(o.Variance()) }

// Sum returns the total of all observations.
func (o *Online) Sum() float64 { return o.mean * float64(o.n) }

// Merge folds the observations summarised by other into o.
func (o *Online) Merge(other Online) {
	if other.n == 0 {
		return
	}
	if o.n == 0 {
		*o = other
		return
	}
	n := o.n + other.n
	d := other.mean - o.mean
	mean := o.mean + d*float64(other.n)/float64(n)
	m2 := o.m2 + other.m2 + d*d*float64(o.n)*float64(other.n)/float64(n)
	o.min = math.Min(o.min, other.min)
	o.max = math.Max(o.max, other.max)
	o.n, o.mean, o.m2 = n, mean, m2
}

// ECDF is an empirical cumulative distribution function over a sample set.
type ECDF struct {
	sorted []float64
}

// NewECDF builds an ECDF from the given samples. The input slice is copied.
func NewECDF(samples []float64) *ECDF {
	s := make([]float64, len(samples))
	copy(s, samples)
	sort.Float64s(s)
	return &ECDF{sorted: s}
}

// N returns the number of samples.
func (e *ECDF) N() int { return len(e.sorted) }

// At returns the fraction of samples <= x, in [0, 1].
func (e *ECDF) At(x float64) float64 {
	if len(e.sorted) == 0 {
		return 0
	}
	// First index with sorted[i] > x.
	i := sort.Search(len(e.sorted), func(i int) bool { return e.sorted[i] > x })
	return float64(i) / float64(len(e.sorted))
}

// Quantile returns the q-th quantile (q in [0,1]) using the nearest-rank
// method. It returns an error for an empty sample set or q outside [0,1].
func (e *ECDF) Quantile(q float64) (float64, error) {
	if len(e.sorted) == 0 {
		return 0, ErrNoSamples
	}
	if q < 0 || q > 1 {
		return 0, errors.New("stats: quantile out of range")
	}
	if q == 0 {
		return e.sorted[0], nil
	}
	rank := int(math.Ceil(q*float64(len(e.sorted)))) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(e.sorted) {
		rank = len(e.sorted) - 1
	}
	return e.sorted[rank], nil
}

// Mean returns the sample mean of the underlying data.
func (e *ECDF) Mean() float64 {
	if len(e.sorted) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range e.sorted {
		sum += v
	}
	return sum / float64(len(e.sorted))
}

// Points returns (x, F(x)) pairs suitable for plotting: one step per sample.
func (e *ECDF) Points() []CDFPoint {
	pts := make([]CDFPoint, len(e.sorted))
	for i, x := range e.sorted {
		pts[i] = CDFPoint{X: x, F: float64(i+1) / float64(len(e.sorted))}
	}
	return pts
}

// CDFPoint is one step of an empirical CDF.
type CDFPoint struct {
	X float64 // sample value
	F float64 // cumulative probability at X
}

// Histogram counts samples into fixed-width bins over [Lo, Hi). Samples
// outside the range are counted in Under/Over.
type Histogram struct {
	Lo, Hi float64
	Counts []int
	Under  int
	Over   int
	// NaN counts rejected not-a-number samples, which belong in no bin.
	NaN   int
	width float64
}

// NewHistogram creates a histogram with the given number of bins over
// [lo, hi). It panics if bins <= 0 or hi <= lo, which indicates programmer
// error in experiment setup.
func NewHistogram(lo, hi float64, bins int) *Histogram {
	if bins <= 0 || hi <= lo {
		panic("stats: invalid histogram bounds")
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int, bins), width: (hi - lo) / float64(bins)}
}

// Add records one sample.
func (h *Histogram) Add(x float64) {
	switch {
	case math.IsNaN(x):
		// NaN compares false against both bounds and would index with an
		// undefined int conversion below.
		h.NaN++
	case x < h.Lo:
		h.Under++
	case x >= h.Hi:
		h.Over++
	default:
		i := int((x - h.Lo) / h.width)
		if i >= len(h.Counts) { // guard float rounding at the top edge
			i = len(h.Counts) - 1
		}
		h.Counts[i]++
	}
}

// Total returns the number of samples recorded, including out-of-range ones.
func (h *Histogram) Total() int {
	t := h.Under + h.Over + h.NaN
	for _, c := range h.Counts {
		t += c
	}
	return t
}

// BinCenter returns the midpoint of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	return h.Lo + (float64(i)+0.5)*h.width
}

// Mean of a float64 slice; returns 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// RelativeGain returns (b-a)/a, the fractional improvement of b over a.
// It returns 0 when a == 0 to keep experiment reports finite.
func RelativeGain(a, b float64) float64 {
	if a == 0 {
		return 0
	}
	return (b - a) / a
}
