// Package metrics is the simulator's unified telemetry layer: a
// zero-dependency registry of named counters, gauges, value distributions,
// fixed-bucket duration histograms and state clocks, plus a time-sliced
// series sampler driven by sim.Engine events (sampler.go).
//
// Writers are the simulation goroutine; readers may be anyone. Instruments
// never feed back into protocol behaviour, so attaching them — or scraping
// them live over the observability plane (internal/obs) — cannot perturb a
// deterministic run. To make live scraping safe, counters are atomic and
// the remaining instruments carry a small mutex; the costs are uncontended
// in a normal run and values still never flow back into the protocol, so
// runs stay bit-identical whether or not anyone is reading.
//
// Every instrument is nil-safe: methods on a nil *Counter, *Gauge, *Dist,
// *Timing or *StateClock are no-ops, and a nil *Registry hands out nil
// instruments. Instrumented code therefore records unconditionally and pays
// nothing when telemetry is not wired up.
package metrics

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/stats"
)

// Counter is a named monotonically increasing event count. Safe for
// concurrent use.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add increments by n.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count (0 on a nil counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a named last-written value. Safe for concurrent use.
type Gauge struct {
	mu  sync.Mutex
	v   float64
	set bool
}

// Set overwrites the gauge.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.mu.Lock()
		g.v, g.set = v, true
		g.mu.Unlock()
	}
}

// Add shifts the gauge by d.
func (g *Gauge) Add(d float64) {
	if g != nil {
		g.mu.Lock()
		g.v, g.set = g.v+d, true
		g.mu.Unlock()
	}
}

// Value returns the current value (0 on a nil or never-set gauge).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.v
}

// Dist is a streaming distribution of unitless values (window occupancy,
// queue lengths): count, mean, min, max and variance via stats.Online.
// Safe for concurrent use.
type Dist struct {
	mu sync.Mutex
	o  stats.Online
}

// Observe records one value.
func (d *Dist) Observe(x float64) {
	if d != nil {
		d.mu.Lock()
		d.o.Add(x)
		d.mu.Unlock()
	}
}

// N returns the number of observations.
func (d *Dist) N() int {
	if d == nil {
		return 0
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.o.N()
}

// Mean returns the sample mean.
func (d *Dist) Mean() float64 {
	if d == nil {
		return 0
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.o.Mean()
}

// Max returns the largest observation.
func (d *Dist) Max() float64 {
	if d == nil {
		return 0
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.o.Max()
}

func (d *Dist) snapshot() DistSnapshot {
	d.mu.Lock()
	defer d.mu.Unlock()
	return DistSnapshot{
		N: d.o.N(), Mean: d.o.Mean(), Min: d.o.Min(), Max: d.o.Max(), StdDev: d.o.StdDev(),
	}
}

// Timing is a duration distribution: streaming moments, a fixed-bucket
// histogram (stats.Histogram over seconds) and the raw samples, kept so
// reports can compute exact percentiles through stats.ECDF. Safe for
// concurrent use.
type Timing struct {
	mu      sync.Mutex
	o       stats.Online
	hist    *stats.Histogram
	samples []float64 // seconds
}

// Default histogram range for Registry.Timing: [0, 1s) in 50 bins of 20 ms.
// Out-of-range samples land in the histogram's Under/Over counts; exact
// values survive in the raw samples either way.
const (
	defaultTimingHi   = time.Second
	defaultTimingBins = 50
)

func newTiming(lo, hi time.Duration, bins int) *Timing {
	return &Timing{hist: stats.NewHistogram(lo.Seconds(), hi.Seconds(), bins)}
}

// Observe records one duration.
func (t *Timing) Observe(d time.Duration) {
	if t == nil {
		return
	}
	s := d.Seconds()
	t.mu.Lock()
	t.o.Add(s)
	t.hist.Add(s)
	t.samples = append(t.samples, s)
	t.mu.Unlock()
}

// N returns the number of observations.
func (t *Timing) N() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.o.N()
}

// Mean returns the mean duration.
func (t *Timing) Mean() time.Duration {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return secondsToDuration(t.o.Mean())
}

// Max returns the largest observed duration.
func (t *Timing) Max() time.Duration {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return secondsToDuration(t.o.Max())
}

// Quantile returns the q-th percentile (nearest rank) over all samples, or 0
// with no samples.
func (t *Timing) Quantile(q float64) time.Duration {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.samples) == 0 {
		return 0
	}
	v, err := stats.NewECDF(t.samples).Quantile(q)
	if err != nil {
		return 0
	}
	return secondsToDuration(v)
}

// Histogram exposes the fixed-bucket histogram (nil on a nil Timing). The
// returned histogram is the live one; only the simulation goroutine should
// touch it (snapshots copy under the lock instead).
func (t *Timing) Histogram() *stats.Histogram {
	if t == nil {
		return nil
	}
	return t.hist
}

func secondsToDuration(s float64) time.Duration {
	return time.Duration(s * float64(time.Second))
}

// StateClock partitions elapsed virtual time into named states: every Set
// closes the open interval and charges it to the previous state. By
// construction the buckets of a snapshot sum to exactly (now - creation
// time), which is what makes per-station airtime breakdowns auditable.
// Safe for concurrent use: Breakdown can be read mid-state from a scrape
// while the simulation keeps switching states.
type StateClock struct {
	mu    sync.Mutex
	now   func() time.Duration
	state string
	since time.Duration
	acc   map[string]time.Duration
}

func newStateClock(now func() time.Duration, initial string) *StateClock {
	return &StateClock{now: now, state: initial, since: now(), acc: make(map[string]time.Duration)}
}

// Set transitions to state, charging the time since the last transition to
// the previous state. Setting the current state is a no-op.
func (s *StateClock) Set(state string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if state == s.state {
		return
	}
	t := s.now()
	s.acc[s.state] += t - s.since
	s.state, s.since = state, t
}

// State returns the current state ("" on a nil clock).
func (s *StateClock) State() string {
	if s == nil {
		return ""
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.state
}

// In returns the total time charged to state, including the open interval if
// state is current.
func (s *StateClock) In(state string) time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	d := s.acc[state]
	if state == s.state {
		d += s.now() - s.since
	}
	return d
}

// Breakdown returns a copy of the per-state totals with the open interval
// charged up to now. The clock itself is not mutated.
func (s *StateClock) Breakdown() map[string]time.Duration {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]time.Duration, len(s.acc)+1)
	for k, v := range s.acc {
		out[k] = v
	}
	out[s.state] += s.now() - s.since
	return out
}

// Registry is a named collection of instruments with get-or-create
// semantics: asking twice for the same name returns the same instrument, so
// independent components can share an accumulator. Safe for concurrent use.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	dists    map[string]*Dist
	timings  map[string]*Timing
	clocks   map[string]*StateClock
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		dists:    make(map[string]*Dist),
		timings:  make(map[string]*Timing),
		clocks:   make(map[string]*StateClock),
	}
}

// Counter returns the named counter, creating it on first use. A nil
// registry returns a nil (no-op) counter.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	c, ok := r.counters[name]
	r.mu.RUnlock()
	if ok {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.counters[name]; ok {
		return c
	}
	c = &Counter{}
	r.counters[name] = c
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	g, ok := r.gauges[name]
	r.mu.RUnlock()
	if ok {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok := r.gauges[name]; ok {
		return g
	}
	g = &Gauge{}
	r.gauges[name] = g
	return g
}

// Dist returns the named distribution, creating it on first use.
func (r *Registry) Dist(name string) *Dist {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	d, ok := r.dists[name]
	r.mu.RUnlock()
	if ok {
		return d
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if d, ok := r.dists[name]; ok {
		return d
	}
	d = &Dist{}
	r.dists[name] = d
	return d
}

// Timing returns the named duration distribution with the default histogram
// buckets, creating it on first use.
func (r *Registry) Timing(name string) *Timing {
	return r.TimingBuckets(name, 0, defaultTimingHi, defaultTimingBins)
}

// TimingBuckets returns the named duration distribution with an explicit
// histogram range [lo, hi) split into bins. The range only applies on
// creation; later calls return the existing instrument.
func (r *Registry) TimingBuckets(name string, lo, hi time.Duration, bins int) *Timing {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	t, ok := r.timings[name]
	r.mu.RUnlock()
	if ok {
		return t
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if t, ok := r.timings[name]; ok {
		return t
	}
	t = newTiming(lo, hi, bins)
	r.timings[name] = t
	return t
}

// StateClock returns the named state clock, creating it on first use in the
// given initial state with now as its time source.
func (r *Registry) StateClock(name string, now func() time.Duration, initial string) *StateClock {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	c, ok := r.clocks[name]
	r.mu.RUnlock()
	if ok {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.clocks[name]; ok {
		return c
	}
	c = newStateClock(now, initial)
	r.clocks[name] = c
	return c
}

// --- exposition -----------------------------------------------------------

// Snapshot is a JSON-marshalable copy of a registry's instruments. Empty
// instrument classes are omitted. encoding/json writes map keys in sorted
// order, so marshalled snapshots are deterministic byte-for-byte; callers
// that iterate the maps themselves must sort the keys (see SortedKeys).
type Snapshot struct {
	Counters map[string]int64          `json:"counters,omitempty"`
	Gauges   map[string]float64        `json:"gauges,omitempty"`
	Dists    map[string]DistSnapshot   `json:"dists,omitempty"`
	Timings  map[string]TimingSnapshot `json:"timings,omitempty"`
	// AirtimeSec maps clock name -> state -> seconds; each clock's states
	// sum to the elapsed time since the clock was created.
	AirtimeSec map[string]map[string]float64 `json:"airtime_sec,omitempty"`
}

// DistSnapshot summarises a Dist.
type DistSnapshot struct {
	N      int     `json:"n"`
	Mean   float64 `json:"mean"`
	Min    float64 `json:"min"`
	Max    float64 `json:"max"`
	StdDev float64 `json:"stddev"`
}

// TimingSnapshot summarises a Timing in milliseconds.
type TimingSnapshot struct {
	N      int     `json:"n"`
	MeanMs float64 `json:"mean_ms"`
	MinMs  float64 `json:"min_ms"`
	MaxMs  float64 `json:"max_ms"`
	P50Ms  float64 `json:"p50_ms"`
	P90Ms  float64 `json:"p90_ms"`
	P99Ms  float64 `json:"p99_ms"`
	P999Ms float64 `json:"p999_ms"`
	// Buckets lists the non-empty histogram bins in ascending bin order.
	Buckets []TimingBucket `json:"buckets,omitempty"`
	// Under/Over count samples outside the histogram range (they are still
	// part of the moments and percentiles above).
	Under int `json:"under,omitempty"`
	Over  int `json:"over,omitempty"`
}

// TimingBucket is one non-empty histogram bin.
type TimingBucket struct {
	LoMs  float64 `json:"lo_ms"`
	HiMs  float64 `json:"hi_ms"`
	Count int     `json:"count"`
}

// Snapshot captures every instrument of the registry. A nil registry yields
// a zero Snapshot. Safe to call while the simulation is writing: each
// instrument is copied under its own lock, so a live scrape sees a coherent
// per-instrument view (the snapshot as a whole is not a single atomic cut —
// it cannot be without stopping the run, and a monitoring read does not
// need it to be).
func (r *Registry) Snapshot() Snapshot {
	var s Snapshot
	if r == nil {
		return s
	}
	r.mu.RLock()
	counters := copyRefs(r.counters)
	gauges := copyRefs(r.gauges)
	dists := copyRefs(r.dists)
	timings := copyRefs(r.timings)
	clocks := copyRefs(r.clocks)
	r.mu.RUnlock()

	if len(counters) > 0 {
		s.Counters = make(map[string]int64, len(counters))
		for n, c := range counters {
			s.Counters[n] = c.Value()
		}
	}
	if len(gauges) > 0 {
		s.Gauges = make(map[string]float64, len(gauges))
		for n, g := range gauges {
			s.Gauges[n] = g.Value()
		}
	}
	if len(dists) > 0 {
		s.Dists = make(map[string]DistSnapshot, len(dists))
		for n, d := range dists {
			s.Dists[n] = d.snapshot()
		}
	}
	if len(timings) > 0 {
		s.Timings = make(map[string]TimingSnapshot, len(timings))
		for n, t := range timings {
			s.Timings[n] = t.snapshot()
		}
	}
	if len(clocks) > 0 {
		s.AirtimeSec = make(map[string]map[string]float64, len(clocks))
		for n, c := range clocks {
			states := make(map[string]float64)
			for st, d := range c.Breakdown() {
				states[st] = d.Seconds()
			}
			s.AirtimeSec[n] = states
		}
	}
	return s
}

// copyRefs copies a name->instrument map so instruments can be read outside
// the registry lock.
func copyRefs[T any](m map[string]*T) map[string]*T {
	out := make(map[string]*T, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

func (t *Timing) snapshot() TimingSnapshot {
	t.mu.Lock()
	defer t.mu.Unlock()
	snap := TimingSnapshot{N: t.o.N()}
	if t.o.N() == 0 {
		return snap
	}
	const ms = 1e3
	snap.MeanMs = t.o.Mean() * ms
	snap.MinMs = t.o.Min() * ms
	snap.MaxMs = t.o.Max() * ms
	e := stats.NewECDF(t.samples)
	q := func(p float64) float64 {
		v, err := e.Quantile(p)
		if err != nil {
			return 0
		}
		return v * ms
	}
	snap.P50Ms, snap.P90Ms, snap.P99Ms, snap.P999Ms = q(0.5), q(0.9), q(0.99), q(0.999)
	snap.Under, snap.Over = t.hist.Under, t.hist.Over
	for i, c := range t.hist.Counts {
		if c == 0 {
			continue
		}
		lo := t.hist.Lo + float64(i)*(t.hist.Hi-t.hist.Lo)/float64(len(t.hist.Counts))
		hi := t.hist.Lo + float64(i+1)*(t.hist.Hi-t.hist.Lo)/float64(len(t.hist.Counts))
		snap.Buckets = append(snap.Buckets, TimingBucket{LoMs: lo * ms, HiMs: hi * ms, Count: c})
	}
	return snap
}

// CounterNames returns the registered counter names in sorted order.
func (r *Registry) CounterNames() []string {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.counters))
	for n := range r.counters {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// SortedKeys returns the keys of a snapshot map in sorted order — the
// iteration order every exposition format uses, so that /metrics responses
// and bench artifacts are diff-stable.
func SortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
