// Package metrics is the simulator's unified telemetry layer: a
// zero-dependency registry of named counters, gauges, value distributions,
// fixed-bucket duration histograms and state clocks, plus a time-sliced
// series sampler driven by sim.Engine events (sampler.go).
//
// The package follows the simulator's single-goroutine discipline — no
// locks, no atomics — and instruments never feed back into protocol
// behaviour, so attaching them cannot perturb a deterministic run.
//
// Every instrument is nil-safe: methods on a nil *Counter, *Gauge, *Dist,
// *Timing or *StateClock are no-ops, and a nil *Registry hands out nil
// instruments. Instrumented code therefore records unconditionally and pays
// nothing when telemetry is not wired up.
package metrics

import (
	"sort"
	"time"

	"repro/internal/stats"
)

// Counter is a named monotonically increasing event count.
type Counter struct{ v int64 }

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v++
	}
}

// Add increments by n.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v += n
	}
}

// Value returns the current count (0 on a nil counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v
}

// Gauge is a named last-written value.
type Gauge struct {
	v   float64
	set bool
}

// Set overwrites the gauge.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.v, g.set = v, true
	}
}

// Add shifts the gauge by d.
func (g *Gauge) Add(d float64) {
	if g != nil {
		g.v, g.set = g.v+d, true
	}
}

// Value returns the current value (0 on a nil or never-set gauge).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return g.v
}

// Dist is a streaming distribution of unitless values (window occupancy,
// queue lengths): count, mean, min, max and variance via stats.Online.
type Dist struct{ o stats.Online }

// Observe records one value.
func (d *Dist) Observe(x float64) {
	if d != nil {
		d.o.Add(x)
	}
}

// N returns the number of observations.
func (d *Dist) N() int {
	if d == nil {
		return 0
	}
	return d.o.N()
}

// Mean returns the sample mean.
func (d *Dist) Mean() float64 {
	if d == nil {
		return 0
	}
	return d.o.Mean()
}

// Max returns the largest observation.
func (d *Dist) Max() float64 {
	if d == nil {
		return 0
	}
	return d.o.Max()
}

// Timing is a duration distribution: streaming moments, a fixed-bucket
// histogram (stats.Histogram over seconds) and the raw samples, kept so
// reports can compute exact percentiles through stats.ECDF.
type Timing struct {
	o       stats.Online
	hist    *stats.Histogram
	samples []float64 // seconds
}

// Default histogram range for Registry.Timing: [0, 1s) in 50 bins of 20 ms.
// Out-of-range samples land in the histogram's Under/Over counts; exact
// values survive in the raw samples either way.
const (
	defaultTimingHi   = time.Second
	defaultTimingBins = 50
)

func newTiming(lo, hi time.Duration, bins int) *Timing {
	return &Timing{hist: stats.NewHistogram(lo.Seconds(), hi.Seconds(), bins)}
}

// Observe records one duration.
func (t *Timing) Observe(d time.Duration) {
	if t == nil {
		return
	}
	s := d.Seconds()
	t.o.Add(s)
	t.hist.Add(s)
	t.samples = append(t.samples, s)
}

// N returns the number of observations.
func (t *Timing) N() int {
	if t == nil {
		return 0
	}
	return t.o.N()
}

// Mean returns the mean duration.
func (t *Timing) Mean() time.Duration {
	if t == nil {
		return 0
	}
	return secondsToDuration(t.o.Mean())
}

// Max returns the largest observed duration.
func (t *Timing) Max() time.Duration {
	if t == nil {
		return 0
	}
	return secondsToDuration(t.o.Max())
}

// Quantile returns the q-th percentile (nearest rank) over all samples, or 0
// with no samples.
func (t *Timing) Quantile(q float64) time.Duration {
	if t == nil || len(t.samples) == 0 {
		return 0
	}
	v, err := stats.NewECDF(t.samples).Quantile(q)
	if err != nil {
		return 0
	}
	return secondsToDuration(v)
}

// Histogram exposes the fixed-bucket histogram (nil on a nil Timing).
func (t *Timing) Histogram() *stats.Histogram {
	if t == nil {
		return nil
	}
	return t.hist
}

func secondsToDuration(s float64) time.Duration {
	return time.Duration(s * float64(time.Second))
}

// StateClock partitions elapsed virtual time into named states: every Set
// closes the open interval and charges it to the previous state. By
// construction the buckets of a snapshot sum to exactly (now - creation
// time), which is what makes per-station airtime breakdowns auditable.
type StateClock struct {
	now   func() time.Duration
	state string
	since time.Duration
	acc   map[string]time.Duration
}

func newStateClock(now func() time.Duration, initial string) *StateClock {
	return &StateClock{now: now, state: initial, since: now(), acc: make(map[string]time.Duration)}
}

// Set transitions to state, charging the time since the last transition to
// the previous state. Setting the current state is a no-op.
func (s *StateClock) Set(state string) {
	if s == nil || state == s.state {
		return
	}
	t := s.now()
	s.acc[s.state] += t - s.since
	s.state, s.since = state, t
}

// State returns the current state ("" on a nil clock).
func (s *StateClock) State() string {
	if s == nil {
		return ""
	}
	return s.state
}

// In returns the total time charged to state, including the open interval if
// state is current.
func (s *StateClock) In(state string) time.Duration {
	if s == nil {
		return 0
	}
	d := s.acc[state]
	if state == s.state {
		d += s.now() - s.since
	}
	return d
}

// Breakdown returns a copy of the per-state totals with the open interval
// charged up to now. The clock itself is not mutated.
func (s *StateClock) Breakdown() map[string]time.Duration {
	if s == nil {
		return nil
	}
	out := make(map[string]time.Duration, len(s.acc)+1)
	for k, v := range s.acc {
		out[k] = v
	}
	out[s.state] += s.now() - s.since
	return out
}

// Registry is a named collection of instruments with get-or-create
// semantics: asking twice for the same name returns the same instrument, so
// independent components can share an accumulator.
type Registry struct {
	counters map[string]*Counter
	gauges   map[string]*Gauge
	dists    map[string]*Dist
	timings  map[string]*Timing
	clocks   map[string]*StateClock
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		dists:    make(map[string]*Dist),
		timings:  make(map[string]*Timing),
		clocks:   make(map[string]*StateClock),
	}
}

// Counter returns the named counter, creating it on first use. A nil
// registry returns a nil (no-op) counter.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Dist returns the named distribution, creating it on first use.
func (r *Registry) Dist(name string) *Dist {
	if r == nil {
		return nil
	}
	d, ok := r.dists[name]
	if !ok {
		d = &Dist{}
		r.dists[name] = d
	}
	return d
}

// Timing returns the named duration distribution with the default histogram
// buckets, creating it on first use.
func (r *Registry) Timing(name string) *Timing {
	return r.TimingBuckets(name, 0, defaultTimingHi, defaultTimingBins)
}

// TimingBuckets returns the named duration distribution with an explicit
// histogram range [lo, hi) split into bins. The range only applies on
// creation; later calls return the existing instrument.
func (r *Registry) TimingBuckets(name string, lo, hi time.Duration, bins int) *Timing {
	if r == nil {
		return nil
	}
	t, ok := r.timings[name]
	if !ok {
		t = newTiming(lo, hi, bins)
		r.timings[name] = t
	}
	return t
}

// StateClock returns the named state clock, creating it on first use in the
// given initial state with now as its time source.
func (r *Registry) StateClock(name string, now func() time.Duration, initial string) *StateClock {
	if r == nil {
		return nil
	}
	c, ok := r.clocks[name]
	if !ok {
		c = newStateClock(now, initial)
		r.clocks[name] = c
	}
	return c
}

// --- exposition -----------------------------------------------------------

// Snapshot is a JSON-marshalable copy of a registry's instruments. Empty
// instrument classes are omitted.
type Snapshot struct {
	Counters map[string]int64          `json:"counters,omitempty"`
	Gauges   map[string]float64        `json:"gauges,omitempty"`
	Dists    map[string]DistSnapshot   `json:"dists,omitempty"`
	Timings  map[string]TimingSnapshot `json:"timings,omitempty"`
	// AirtimeSec maps clock name -> state -> seconds; each clock's states
	// sum to the elapsed time since the clock was created.
	AirtimeSec map[string]map[string]float64 `json:"airtime_sec,omitempty"`
}

// DistSnapshot summarises a Dist.
type DistSnapshot struct {
	N      int     `json:"n"`
	Mean   float64 `json:"mean"`
	Min    float64 `json:"min"`
	Max    float64 `json:"max"`
	StdDev float64 `json:"stddev"`
}

// TimingSnapshot summarises a Timing in milliseconds.
type TimingSnapshot struct {
	N      int     `json:"n"`
	MeanMs float64 `json:"mean_ms"`
	MinMs  float64 `json:"min_ms"`
	MaxMs  float64 `json:"max_ms"`
	P50Ms  float64 `json:"p50_ms"`
	P90Ms  float64 `json:"p90_ms"`
	P99Ms  float64 `json:"p99_ms"`
	// Buckets lists the non-empty histogram bins.
	Buckets []TimingBucket `json:"buckets,omitempty"`
	// Under/Over count samples outside the histogram range (they are still
	// part of the moments and percentiles above).
	Under int `json:"under,omitempty"`
	Over  int `json:"over,omitempty"`
}

// TimingBucket is one non-empty histogram bin.
type TimingBucket struct {
	LoMs  float64 `json:"lo_ms"`
	HiMs  float64 `json:"hi_ms"`
	Count int     `json:"count"`
}

// Snapshot captures every instrument of the registry. A nil registry yields
// a zero Snapshot.
func (r *Registry) Snapshot() Snapshot {
	var s Snapshot
	if r == nil {
		return s
	}
	if len(r.counters) > 0 {
		s.Counters = make(map[string]int64, len(r.counters))
		for n, c := range r.counters {
			s.Counters[n] = c.Value()
		}
	}
	if len(r.gauges) > 0 {
		s.Gauges = make(map[string]float64, len(r.gauges))
		for n, g := range r.gauges {
			s.Gauges[n] = g.Value()
		}
	}
	if len(r.dists) > 0 {
		s.Dists = make(map[string]DistSnapshot, len(r.dists))
		for n, d := range r.dists {
			s.Dists[n] = DistSnapshot{
				N: d.o.N(), Mean: d.o.Mean(), Min: d.o.Min(), Max: d.o.Max(), StdDev: d.o.StdDev(),
			}
		}
	}
	if len(r.timings) > 0 {
		s.Timings = make(map[string]TimingSnapshot, len(r.timings))
		for n, t := range r.timings {
			s.Timings[n] = t.snapshot()
		}
	}
	if len(r.clocks) > 0 {
		s.AirtimeSec = make(map[string]map[string]float64, len(r.clocks))
		for n, c := range r.clocks {
			states := make(map[string]float64)
			for st, d := range c.Breakdown() {
				states[st] = d.Seconds()
			}
			s.AirtimeSec[n] = states
		}
	}
	return s
}

func (t *Timing) snapshot() TimingSnapshot {
	snap := TimingSnapshot{N: t.o.N()}
	if t.o.N() == 0 {
		return snap
	}
	const ms = 1e3
	snap.MeanMs = t.o.Mean() * ms
	snap.MinMs = t.o.Min() * ms
	snap.MaxMs = t.o.Max() * ms
	e := stats.NewECDF(t.samples)
	q := func(p float64) float64 {
		v, err := e.Quantile(p)
		if err != nil {
			return 0
		}
		return v * ms
	}
	snap.P50Ms, snap.P90Ms, snap.P99Ms = q(0.5), q(0.9), q(0.99)
	snap.Under, snap.Over = t.hist.Under, t.hist.Over
	for i, c := range t.hist.Counts {
		if c == 0 {
			continue
		}
		lo := t.hist.Lo + float64(i)*(t.hist.Hi-t.hist.Lo)/float64(len(t.hist.Counts))
		hi := t.hist.Lo + float64(i+1)*(t.hist.Hi-t.hist.Lo)/float64(len(t.hist.Counts))
		snap.Buckets = append(snap.Buckets, TimingBucket{LoMs: lo * ms, HiMs: hi * ms, Count: c})
	}
	return snap
}

// CounterNames returns the registered counter names in sorted order.
func (r *Registry) CounterNames() []string {
	if r == nil {
		return nil
	}
	names := make([]string, 0, len(r.counters))
	for n := range r.counters {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
