package metrics

import (
	"sync"
	"time"

	"repro/internal/sim"
)

// SamplePoint is one (time, value) observation of a Series.
type SamplePoint struct {
	TSec float64 `json:"t_sec"`
	V    float64 `json:"v"`
}

// Series is a time series filled in by a Sampler at fixed intervals. Safe
// for concurrent readers: the sampler appends from the simulation goroutine
// while live scrapes copy the accumulated points.
type Series struct {
	name   string
	mu     sync.Mutex
	at     []time.Duration
	values []float64
}

// Name returns the series name.
func (s *Series) Name() string { return s.name }

// Len returns the number of samples taken so far.
func (s *Series) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.at)
}

// append records one observation.
func (s *Series) append(t time.Duration, v float64) {
	s.mu.Lock()
	s.at = append(s.at, t)
	s.values = append(s.values, v)
	s.mu.Unlock()
}

// Samples returns copies of the time and value columns.
func (s *Series) Samples() ([]time.Duration, []float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	at := make([]time.Duration, len(s.at))
	copy(at, s.at)
	values := make([]float64, len(s.values))
	copy(values, s.values)
	return at, values
}

// Points converts the series to JSON-friendly sample points.
func (s *Series) Points() []SamplePoint {
	at, values := s.Samples()
	pts := make([]SamplePoint, len(at))
	for i := range at {
		pts[i] = SamplePoint{TSec: at[i].Seconds(), V: values[i]}
	}
	return pts
}

// Sampler periodically evaluates registered probe functions on the
// simulation engine's virtual clock. Ticks fire at interval, 2·interval, …
// relative to Start; probes run inside the simulation loop and must not
// mutate protocol state.
type Sampler struct {
	eng      *sim.Engine
	interval time.Duration
	names    []string
	probes   []func() float64
	series   []*Series
	onTick   []func(now time.Duration)
	ev       sim.Handle
}

// NewSampler creates a sampler on eng firing every interval (which must be
// positive; NewSampler panics otherwise, as a zero interval would wedge the
// event loop).
func NewSampler(eng *sim.Engine, interval time.Duration) *Sampler {
	if interval <= 0 {
		panic("metrics: non-positive sampler interval")
	}
	return &Sampler{eng: eng, interval: interval}
}

// Interval returns the sampling period.
func (s *Sampler) Interval() time.Duration { return s.interval }

// Track registers a probe evaluated on every tick; its values accumulate in
// the returned Series. Register before Start.
func (s *Sampler) Track(name string, probe func() float64) *Series {
	ser := &Series{name: name}
	s.names = append(s.names, name)
	s.probes = append(s.probes, probe)
	s.series = append(s.series, ser)
	return ser
}

// OnTick registers a callback invoked (after the probes) on every tick.
func (s *Sampler) OnTick(fn func(now time.Duration)) {
	s.onTick = append(s.onTick, fn)
}

// Start schedules the first tick one interval from now. Starting an already
// started sampler is a no-op.
func (s *Sampler) Start() {
	if s.ev.Active() {
		return
	}
	s.schedule()
}

// Stop cancels the pending tick.
func (s *Sampler) Stop() {
	if s.ev.Active() {
		s.eng.Cancel(s.ev)
		s.ev = sim.Handle{}
	}
}

func (s *Sampler) schedule() {
	s.ev = s.eng.AfterTagged(s.interval, sim.TagSampler, sim.NoOwner, func() {
		s.ev = sim.Handle{}
		now := s.eng.Now()
		for i, probe := range s.probes {
			s.series[i].append(now, probe())
		}
		for _, fn := range s.onTick {
			fn(now)
		}
		s.schedule()
	})
}
