package metrics

import (
	"time"

	"repro/internal/sim"
)

// SamplePoint is one (time, value) observation of a Series.
type SamplePoint struct {
	TSec float64 `json:"t_sec"`
	V    float64 `json:"v"`
}

// Series is a time series filled in by a Sampler at fixed intervals.
type Series struct {
	Name   string
	At     []time.Duration
	Values []float64
}

// Len returns the number of samples taken so far.
func (s *Series) Len() int { return len(s.At) }

// Points converts the series to JSON-friendly sample points.
func (s *Series) Points() []SamplePoint {
	pts := make([]SamplePoint, len(s.At))
	for i := range s.At {
		pts[i] = SamplePoint{TSec: s.At[i].Seconds(), V: s.Values[i]}
	}
	return pts
}

// Sampler periodically evaluates registered probe functions on the
// simulation engine's virtual clock. Ticks fire at interval, 2·interval, …
// relative to Start; probes run inside the simulation loop and must not
// mutate protocol state.
type Sampler struct {
	eng      *sim.Engine
	interval time.Duration
	names    []string
	probes   []func() float64
	series   []*Series
	onTick   []func(now time.Duration)
	ev       *sim.Event
}

// NewSampler creates a sampler on eng firing every interval (which must be
// positive; NewSampler panics otherwise, as a zero interval would wedge the
// event loop).
func NewSampler(eng *sim.Engine, interval time.Duration) *Sampler {
	if interval <= 0 {
		panic("metrics: non-positive sampler interval")
	}
	return &Sampler{eng: eng, interval: interval}
}

// Interval returns the sampling period.
func (s *Sampler) Interval() time.Duration { return s.interval }

// Track registers a probe evaluated on every tick; its values accumulate in
// the returned Series. Register before Start.
func (s *Sampler) Track(name string, probe func() float64) *Series {
	ser := &Series{Name: name}
	s.names = append(s.names, name)
	s.probes = append(s.probes, probe)
	s.series = append(s.series, ser)
	return ser
}

// OnTick registers a callback invoked (after the probes) on every tick.
func (s *Sampler) OnTick(fn func(now time.Duration)) {
	s.onTick = append(s.onTick, fn)
}

// Start schedules the first tick one interval from now. Starting an already
// started sampler is a no-op.
func (s *Sampler) Start() {
	if s.ev != nil {
		return
	}
	s.schedule()
}

// Stop cancels the pending tick.
func (s *Sampler) Stop() {
	if s.ev != nil {
		s.eng.Cancel(s.ev)
		s.ev = nil
	}
}

func (s *Sampler) schedule() {
	s.ev = s.eng.After(s.interval, func() {
		s.ev = nil
		now := s.eng.Now()
		for i, probe := range s.probes {
			s.series[i].At = append(s.series[i].At, now)
			s.series[i].Values = append(s.series[i].Values, probe())
		}
		for _, fn := range s.onTick {
			fn(now)
		}
		s.schedule()
	})
}
