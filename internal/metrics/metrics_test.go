package metrics

import (
	"encoding/json"
	"math"
	"testing"
	"time"

	"repro/internal/sim"
)

func TestNilSafety(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	c.Inc()
	c.Add(3)
	if c.Value() != 0 {
		t.Fatalf("nil counter value = %d", c.Value())
	}
	g := r.Gauge("g")
	g.Set(2)
	g.Add(1)
	if g.Value() != 0 {
		t.Fatalf("nil gauge value = %v", g.Value())
	}
	d := r.Dist("d")
	d.Observe(5)
	if d.N() != 0 || d.Mean() != 0 {
		t.Fatal("nil dist recorded")
	}
	tm := r.Timing("t")
	tm.Observe(time.Millisecond)
	if tm.N() != 0 || tm.Quantile(0.5) != 0 {
		t.Fatal("nil timing recorded")
	}
	sc := r.StateClock("c", func() time.Duration { return 0 }, "idle")
	sc.Set("busy")
	if sc.State() != "" || sc.In("busy") != 0 || sc.Breakdown() != nil {
		t.Fatal("nil state clock recorded")
	}
	snap := r.Snapshot()
	if snap.Counters != nil || snap.Timings != nil {
		t.Fatal("nil registry snapshot not empty")
	}
}

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("a")
	a.Inc()
	if got := r.Counter("a").Value(); got != 1 {
		t.Fatalf("counter not shared: %d", got)
	}
	if r.Gauge("g") != r.Gauge("g") || r.Dist("d") != r.Dist("d") || r.Timing("t") != r.Timing("t") {
		t.Fatal("instruments not shared by name")
	}
	names := r.CounterNames()
	if len(names) != 1 || names[0] != "a" {
		t.Fatalf("CounterNames = %v", names)
	}
}

func TestTimingPercentiles(t *testing.T) {
	r := NewRegistry()
	tm := r.Timing("lat")
	for i := 1; i <= 100; i++ {
		tm.Observe(time.Duration(i) * time.Millisecond)
	}
	if tm.N() != 100 {
		t.Fatalf("N = %d", tm.N())
	}
	if got := tm.Quantile(0.5); got != 50*time.Millisecond {
		t.Fatalf("p50 = %v", got)
	}
	if got := tm.Quantile(0.99); got != 99*time.Millisecond {
		t.Fatalf("p99 = %v", got)
	}
	if got := tm.Max(); got != 100*time.Millisecond {
		t.Fatalf("max = %v", got)
	}
	snap := tm.snapshot()
	if snap.P50Ms != 50 || snap.P90Ms != 90 || snap.P99Ms != 99 {
		t.Fatalf("snapshot percentiles: %+v", snap)
	}
	total := snap.Under + snap.Over
	for _, b := range snap.Buckets {
		total += b.Count
	}
	if total != 100 {
		t.Fatalf("bucket counts sum to %d", total)
	}
}

func TestStateClockSumsToElapsed(t *testing.T) {
	now := time.Duration(0)
	clock := func() time.Duration { return now }
	r := NewRegistry()
	sc := r.StateClock("mac", clock, "idle")

	now = 10 * time.Millisecond
	sc.Set("tx")
	now = 25 * time.Millisecond
	sc.Set("idle")
	now = 30 * time.Millisecond
	sc.Set("idle") // no-op transition
	now = 40 * time.Millisecond

	if got := sc.In("tx"); got != 15*time.Millisecond {
		t.Fatalf("tx = %v", got)
	}
	if got := sc.In("idle"); got != 25*time.Millisecond {
		t.Fatalf("idle = %v", got)
	}
	var total time.Duration
	for _, d := range sc.Breakdown() {
		total += d
	}
	if total != now {
		t.Fatalf("breakdown sums to %v, elapsed %v", total, now)
	}
	// Breakdown must not mutate the clock.
	if got := sc.In("idle"); got != 25*time.Millisecond {
		t.Fatalf("idle after Breakdown = %v", got)
	}
}

func TestSnapshotJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("tx").Add(7)
	r.Gauge("cw").Set(32)
	r.Dist("occ").Observe(3)
	r.Timing("lat").Observe(2 * time.Millisecond)
	now := time.Duration(0)
	r.StateClock("mac", func() time.Duration { return now }, "idle")
	now = 5 * time.Millisecond

	b, err := json.Marshal(r.Snapshot())
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var back Snapshot
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if back.Counters["tx"] != 7 || back.Gauges["cw"] != 32 {
		t.Fatalf("round trip: %+v", back)
	}
	if math.Abs(back.AirtimeSec["mac"]["idle"]-0.005) > 1e-9 {
		t.Fatalf("airtime: %+v", back.AirtimeSec)
	}
}

func TestSamplerTicks(t *testing.T) {
	eng := sim.New(1)
	s := NewSampler(eng, 100*time.Millisecond)
	v := 0.0
	ser := s.Track("v", func() float64 { return v })
	ticks := 0
	s.OnTick(func(time.Duration) { ticks++; v += 1 })
	s.Start()
	s.Start() // idempotent
	eng.RunUntil(time.Second)
	if ticks != 10 || ser.Len() != 10 {
		t.Fatalf("ticks = %d, samples = %d", ticks, ser.Len())
	}
	at, values := ser.Samples()
	if at[0] != 100*time.Millisecond || at[9] != time.Second {
		t.Fatalf("sample times: %v", at)
	}
	// Probe runs before OnTick: first sample sees v=0, last sees v=9.
	if values[0] != 0 || values[9] != 9 {
		t.Fatalf("sample values: %v", values)
	}
	pts := ser.Points()
	if pts[9].TSec != 1.0 || pts[9].V != 9 {
		t.Fatalf("points: %+v", pts[9])
	}
	s.Stop()
	eng.RunUntil(2 * time.Second)
	if ser.Len() != 10 {
		t.Fatalf("sampler kept ticking after Stop: %d", ser.Len())
	}
}
