package metrics

import (
	"strings"
	"testing"
	"time"
)

func TestSanitizeMetricName(t *testing.T) {
	cases := map[string]string{
		"mac.access_latency":  "mac_access_latency",
		"flow.1-2.bytes":      "flow_1_2_bytes",
		"faults/injected":     "faults_injected",
		"comap.fallback.dcf":  "comap_fallback_dcf",
		"9lives":              "_9lives",
		"ok_name:with:colons": "ok_name:with:colons",
		"":                    "_",
	}
	for in, want := range cases {
		if got := SanitizeMetricName(in); got != want {
			t.Errorf("SanitizeMetricName(%q) = %q, want %q", in, got, want)
		}
	}
}

// TestPromExpositionEscapesAndOrders builds a registry with the separators
// the simulator actually uses ('.' in instrument names, '/' in derived
// ones) and checks the exposition: sanitized names, one TYPE line per
// family, sorted stable output, escaped label values.
func TestPromExpositionEscapesAndOrders(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("tx.data").Add(5)
	reg.Counter("faults/injected.locloss").Inc()
	reg.Gauge("queue.len").Set(3)
	reg.Timing("mac.access_latency").Observe(4 * time.Millisecond)
	now := time.Duration(0)
	clk := reg.StateClock("mac", func() time.Duration { return now }, "idle")
	now = time.Second
	clk.Set("tx")

	render := func() string {
		pw := NewPromWriter()
		pw.Add(map[string]string{"source": `station "1"\odd`}, reg.Snapshot())
		var b strings.Builder
		if _, err := pw.WriteTo(&b); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}
	out := render()

	for _, want := range []string{
		"# TYPE faults_injected_locloss_total counter\n",
		"# TYPE tx_data_total counter\n",
		"# TYPE queue_len gauge\n",
		"# TYPE mac_access_latency_seconds summary\n",
		"# TYPE mac_airtime_seconds gauge\n",
		`mac_airtime_seconds{source="station \"1\"\\odd",state="idle"} 1`,
		`,quantile="0.5"} `,
		"mac_access_latency_seconds_count{",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "# TYPE mac_access_latency_seconds_count") ||
		strings.Contains(out, "# TYPE mac_access_latency_seconds_sum") {
		t.Errorf("summary helper rows must not redeclare TYPE:\n%s", out)
	}
	// No unsanitized separator may survive in a sample name (label values
	// are allowed to carry anything).
	for _, line := range strings.Split(out, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		name := line
		if i := strings.IndexAny(line, "{ "); i >= 0 {
			name = line[:i]
		}
		if strings.ContainsAny(name, "./-") {
			t.Errorf("unsanitized metric name in %q", line)
		}
	}
	// Stable ordering: a second render is byte-identical.
	if second := render(); second != out {
		t.Fatalf("exposition not stable:\n--- first\n%s\n--- second\n%s", out, second)
	}
}

// TestPromSampleFamilies covers the exported Sample path the /profile
// endpoint uses for the comap_prof_* families: names are sanitized, the
// TYPE line is declared once per family, labels render sorted, and the
// already-clean profiler family names pass through unchanged.
func TestPromSampleFamilies(t *testing.T) {
	pw := NewPromWriter()
	pw.Sample("comap_prof_events_total", "counter", map[string]string{"tag": "mac", "source": "et30"}, 42)
	pw.Sample("comap_prof_events_total", "counter", map[string]string{"tag": "channel", "source": "et30"}, 7)
	pw.Sample("comap_prof_sampled_seconds_total", "counter", map[string]string{"tag": "mac"}, 0.25)
	pw.Sample("comap_prof_flight_records_total", "counter", nil, 4096)
	pw.Sample("comap.prof/odd-name", "gauge", map[string]string{"tag": "metrics-sampler"}, 1)

	var b strings.Builder
	if _, err := pw.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE comap_prof_events_total counter\n",
		"# TYPE comap_prof_sampled_seconds_total counter\n",
		"# TYPE comap_prof_flight_records_total counter\n",
		"# TYPE comap_prof_odd_name gauge\n",
		`comap_prof_events_total{source="et30",tag="mac"} 42`,
		`comap_prof_events_total{source="et30",tag="channel"} 7`,
		`comap_prof_sampled_seconds_total{tag="mac"} 0.25`,
		"comap_prof_flight_records_total 4096",
		`comap_prof_odd_name{tag="metrics-sampler"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	if n := strings.Count(out, "# TYPE comap_prof_events_total"); n != 1 {
		t.Errorf("TYPE declared %d times for comap_prof_events_total, want 1:\n%s", n, out)
	}
}

// TestPromSummaryQuantilesInSeconds checks unit conversion: snapshots carry
// milliseconds, the exposition serves base-unit seconds.
func TestPromSummaryQuantilesInSeconds(t *testing.T) {
	reg := NewRegistry()
	tm := reg.Timing("lat")
	for i := 0; i < 10; i++ {
		tm.Observe(100 * time.Millisecond)
	}
	pw := NewPromWriter()
	pw.Add(nil, reg.Snapshot())
	var b strings.Builder
	if _, err := pw.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, `lat_seconds{quantile="0.5"} 0.1`) {
		t.Errorf("quantile not in seconds:\n%s", out)
	}
	if !strings.Contains(out, `lat_seconds{quantile="0.999"} 0.1`) {
		t.Errorf("p999 quantile row missing:\n%s", out)
	}
	if !strings.Contains(out, "lat_seconds_count 10") {
		t.Errorf("missing count:\n%s", out)
	}
	if !strings.Contains(out, "lat_seconds_sum 1") {
		t.Errorf("missing sum (10 × 0.1 s):\n%s", out)
	}
}
