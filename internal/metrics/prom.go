package metrics

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// PromWriter renders registry snapshots in the Prometheus text exposition
// format (version 0.0.4). Snapshots from several sources (stations, the
// medium) are merged into shared metric families distinguished by labels,
// so a scrape of a multi-registry sim is a single well-formed page: each
// family's # TYPE line appears exactly once and families and samples are
// emitted in sorted order, making consecutive scrapes of an idle registry
// byte-identical.
type PromWriter struct {
	fams map[string]*promFamily
}

type promFamily struct {
	typ     string
	samples []promSample
}

type promSample struct {
	labels string // pre-rendered, sorted label pairs (may be empty)
	value  float64
}

// NewPromWriter returns an empty writer.
func NewPromWriter() *PromWriter {
	return &PromWriter{fams: make(map[string]*promFamily)}
}

// SanitizeMetricName maps an arbitrary instrument name onto the Prometheus
// metric-name alphabet [a-zA-Z0-9_:]: every other rune (the registry's '.'
// and '/' separators in particular) becomes '_', and a leading digit gets a
// '_' prefix.
func SanitizeMetricName(name string) string {
	var b strings.Builder
	b.Grow(len(name) + 1)
	for i, r := range name {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(r >= '0' && r <= '9')
		if r >= '0' && r <= '9' && i == 0 {
			b.WriteByte('_')
		}
		if ok {
			b.WriteRune(r)
		} else {
			b.WriteByte('_')
		}
	}
	if b.Len() == 0 {
		return "_"
	}
	return b.String()
}

// escapeLabelValue escapes a label value per the exposition format.
func escapeLabelValue(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return v
}

// renderLabels renders label pairs sorted by key: `k1="v1",k2="v2"`.
func renderLabels(labels map[string]string) string {
	if len(labels) == 0 {
		return ""
	}
	keys := SortedKeys(labels)
	parts := make([]string, 0, len(keys))
	for _, k := range keys {
		parts = append(parts, SanitizeMetricName(k)+`="`+escapeLabelValue(labels[k])+`"`)
	}
	return strings.Join(parts, ",")
}

func (p *PromWriter) sample(family, typ, labels string, v float64) {
	f, ok := p.fams[family]
	if !ok {
		f = &promFamily{typ: typ}
		p.fams[family] = f
	}
	f.samples = append(f.samples, promSample{labels: labels, value: v})
}

// Sample adds one raw sample to a family of the given type ("counter",
// "gauge", "summary"), with the family name sanitized and the labels
// rendered sorted. It is the escape hatch for families that are not
// registry snapshots — the profiler's comap_prof_* attribution families use
// it.
func (p *PromWriter) Sample(family, typ string, labels map[string]string, v float64) {
	p.sample(SanitizeMetricName(family), typ, renderLabels(labels), v)
}

// Add merges one snapshot under the given labels (typically
// {"source": "station.3"}). Counters become `<name>_total` counter
// families; gauges keep their name; distributions expand to
// `<name>_{count,mean,min,max,stddev}` gauges; timings become
// `<name>_seconds` summaries (quantiles 0.5/0.9/0.99/0.999 plus _sum/_count);
// state clocks become `<name>_airtime_seconds` gauges with a state label.
func (p *PromWriter) Add(labels map[string]string, s Snapshot) {
	base := renderLabels(labels)
	for _, name := range SortedKeys(s.Counters) {
		p.sample(SanitizeMetricName(name)+"_total", "counter", base, float64(s.Counters[name]))
	}
	for _, name := range SortedKeys(s.Gauges) {
		p.sample(SanitizeMetricName(name), "gauge", base, s.Gauges[name])
	}
	for _, name := range SortedKeys(s.Dists) {
		d := s.Dists[name]
		n := SanitizeMetricName(name)
		p.sample(n+"_count", "gauge", base, float64(d.N))
		p.sample(n+"_mean", "gauge", base, d.Mean)
		p.sample(n+"_min", "gauge", base, d.Min)
		p.sample(n+"_max", "gauge", base, d.Max)
		p.sample(n+"_stddev", "gauge", base, d.StdDev)
	}
	for _, name := range SortedKeys(s.Timings) {
		t := s.Timings[name]
		n := SanitizeMetricName(name) + "_seconds"
		const toSec = 1e-3 // snapshots carry milliseconds
		for _, q := range []struct {
			q string
			v float64
		}{{"0.5", t.P50Ms}, {"0.9", t.P90Ms}, {"0.99", t.P99Ms}, {"0.999", t.P999Ms}} {
			l := `quantile="` + q.q + `"`
			if base != "" {
				l = base + "," + l
			}
			p.sample(n, "summary", l, q.v*toSec)
		}
		p.sample(n+"_sum", "summary", base, t.MeanMs*toSec*float64(t.N))
		p.sample(n+"_count", "summary", base, float64(t.N))
	}
	for _, clock := range SortedKeys(s.AirtimeSec) {
		states := s.AirtimeSec[clock]
		n := SanitizeMetricName(clock) + "_airtime_seconds"
		for _, st := range SortedKeys(states) {
			l := `state="` + escapeLabelValue(st) + `"`
			if base != "" {
				l = base + "," + l
			}
			p.sample(n, "gauge", l, states[st])
		}
	}
}

// WriteTo writes the accumulated families: sorted by family name, each with
// one # TYPE line, samples sorted by label string.
func (p *PromWriter) WriteTo(w io.Writer) (int64, error) {
	var written int64
	names := SortedKeys(p.fams)
	for _, name := range names {
		f := p.fams[name]
		// Summary helper rows share the parent family's TYPE declaration.
		family := strings.TrimSuffix(strings.TrimSuffix(name, "_sum"), "_count")
		declare := true
		if f.typ == "summary" && family != name {
			if _, ok := p.fams[family]; ok {
				declare = false
			}
		}
		if declare {
			n, err := fmt.Fprintf(w, "# TYPE %s %s\n", name, f.typ)
			written += int64(n)
			if err != nil {
				return written, err
			}
		}
		samples := make([]promSample, len(f.samples))
		copy(samples, f.samples)
		sort.Slice(samples, func(i, j int) bool { return samples[i].labels < samples[j].labels })
		for _, s := range samples {
			var (
				n   int
				err error
			)
			if s.labels == "" {
				n, err = fmt.Fprintf(w, "%s %v\n", name, s.value)
			} else {
				n, err = fmt.Fprintf(w, "%s{%s} %v\n", name, s.labels, s.value)
			}
			written += int64(n)
			if err != nil {
				return written, err
			}
		}
	}
	return written, nil
}
