package metrics

import (
	"encoding/json"
	"sync"
	"testing"
	"time"

	"repro/internal/sim"
)

// TestSnapshotConcurrentWithWriters locks in the live-scrape guarantee: a
// serving HTTP endpoint calls Registry.Snapshot from its own goroutines
// while the simulation goroutine keeps writing counters, timings, state
// clocks and the engine sampler keeps appending series. Run under -race in
// CI.
func TestSnapshotConcurrentWithWriters(t *testing.T) {
	eng := sim.New(1)
	reg := NewRegistry()
	c := reg.Counter("tx.data")
	g := reg.Gauge("queue.len")
	d := reg.Dist("window.occupancy")
	tm := reg.Timing("mac.access_latency")
	clock := reg.StateClock("mac", eng.Now, "idle")

	// The "simulation": one event per 100 µs for 200 ms of virtual time,
	// each touching every instrument class, with the sampler ticking at
	// 1 ms.
	sampler := NewSampler(eng, time.Millisecond)
	ser := sampler.Track("flow.bytes", func() float64 { return float64(c.Value()) })
	sampler.Start()
	states := []string{"tx", "busy", "idle", "backoff"}
	var tick func()
	i := 0
	tick = func() {
		c.Inc()
		g.Set(float64(i % 7))
		d.Observe(float64(i % 13))
		tm.Observe(time.Duration(i%900) * time.Microsecond)
		clock.Set(states[i%len(states)])
		i++
		eng.After(100*time.Microsecond, tick)
	}
	eng.After(0, tick)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				snap := reg.Snapshot()
				if _, err := json.Marshal(snap); err != nil {
					t.Errorf("marshal snapshot: %v", err)
					return
				}
				// The Prometheus path shares the scrape surface.
				pw := NewPromWriter()
				pw.Add(map[string]string{"source": "s"}, snap)
				// Series reads race with sampler appends without locking.
				ser.Points()
				// Instrument-level reads used by /healthz and /runs.
				c.Value()
				tm.Quantile(0.9)
				clock.Breakdown()
			}
		}()
	}

	eng.RunUntil(200 * time.Millisecond)
	close(stop)
	wg.Wait()

	snap := reg.Snapshot()
	if snap.Counters["tx.data"] != int64(i) {
		t.Fatalf("counter = %d, want %d", snap.Counters["tx.data"], i)
	}
	if snap.Timings["mac.access_latency"].N != i {
		t.Fatalf("timing N = %d, want %d", snap.Timings["mac.access_latency"].N, i)
	}
	if ser.Len() != 200 {
		t.Fatalf("sampler ticks = %d, want 200", ser.Len())
	}
}

// TestStateClockBreakdownMidState is the live-scrape shape: reading
// Breakdown while the clock is mid-state must charge the open interval up
// to "now" without mutating the clock, and the buckets must keep summing to
// the elapsed time.
func TestStateClockBreakdownMidState(t *testing.T) {
	now := time.Duration(0)
	clk := newStateClock(func() time.Duration { return now }, "idle")

	now = 10 * time.Millisecond
	clk.Set("tx")
	now = 25 * time.Millisecond // 15 ms into the open "tx" interval

	b := clk.Breakdown()
	if b["idle"] != 10*time.Millisecond {
		t.Fatalf("idle = %v, want 10ms", b["idle"])
	}
	if b["tx"] != 15*time.Millisecond {
		t.Fatalf("open tx interval = %v, want 15ms", b["tx"])
	}
	var sum time.Duration
	for _, d := range b {
		sum += d
	}
	if sum != now {
		t.Fatalf("breakdown sums to %v, want %v", sum, now)
	}

	// The read must not have closed the interval: advancing the clock and
	// reading again shows the same open state, grown.
	now = 40 * time.Millisecond
	if clk.State() != "tx" {
		t.Fatalf("state = %q after Breakdown, want tx", clk.State())
	}
	b2 := clk.Breakdown()
	if b2["tx"] != 30*time.Millisecond {
		t.Fatalf("tx after growth = %v, want 30ms", b2["tx"])
	}
	// In() agrees with Breakdown for the open state.
	if clk.In("tx") != 30*time.Millisecond {
		t.Fatalf("In(tx) = %v, want 30ms", clk.In("tx"))
	}
}
