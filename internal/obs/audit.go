package obs

import (
	"net/http"

	"repro/internal/audit"
	"repro/internal/metrics"
)

// AddLedger registers a named determinism ledger (internal/audit). It backs
// /audit: the ledger's head digest, per-tag chains and slice/event totals,
// as JSON or the comap_audit_* Prometheus families with ?format=prom.
// Ledger.Head is a mutex-guarded snapshot published at slice closes, so
// scraping never touches the sim goroutine's state. Nil server or ledger is
// a no-op.
func (s *Server) AddLedger(name string, l *audit.Ledger) {
	if s == nil || l == nil {
		return
	}
	s.mu.Lock()
	s.ledgers[name] = l
	s.mu.Unlock()
}

// ledgerFuncs copies the registered ledgers for iteration outside the lock.
func (s *Server) ledgerFuncs() map[string]*audit.Ledger {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]*audit.Ledger, len(s.ledgers))
	for k, v := range s.ledgers {
		out[k] = v
	}
	return out
}

// handleAudit serves every ledger's head: JSON keyed by source name, or
// with ?format=prom the comap_audit_slices_total / comap_audit_events_total
// / comap_audit_deep_slices_total counters plus a comap_audit_head_info
// gauge whose "head" label carries the combined digest (the standard
// info-metric idiom for exposing a hash through Prometheus).
func (s *Server) handleAudit(w http.ResponseWriter, r *http.Request) {
	ledgers := s.ledgerFuncs()
	names := metrics.SortedKeys(ledgers)
	if r.URL.Query().Get("format") == "prom" {
		pw := metrics.NewPromWriter()
		for _, name := range names {
			h := ledgers[name].Head()
			labels := func(extra map[string]string) map[string]string {
				m := map[string]string{}
				if len(names) > 1 || name != "" {
					m["source"] = name
				}
				for k, v := range extra {
					m[k] = v
				}
				return m
			}
			pw.Sample("comap_audit_slices_total", "counter", labels(nil), float64(h.Slices))
			pw.Sample("comap_audit_events_total", "counter", labels(nil), float64(h.Events))
			pw.Sample("comap_audit_deep_slices_total", "counter", labels(nil), float64(h.DeepSlices))
			pw.Sample("comap_audit_head_info", "gauge", labels(map[string]string{"head": h.Head, "scenario": h.Scenario}), 1)
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		pw.WriteTo(w) //nolint:errcheck // client went away
		return
	}
	out := make(map[string]audit.Head, len(names))
	for _, name := range names {
		out[name] = ledgers[name].Head()
	}
	writeJSON(w, out)
}
