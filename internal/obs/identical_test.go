package obs

import (
	"bytes"
	"io"
	"net/http"
	"testing"

	"repro/internal/netsim"
)

// reportJSON renders a full netsim.Report with the wall-clock-derived
// engine fields (WallSec, EventsPerSec) zeroed — they measure the host, not
// the run, and are the only fields allowed to differ between a served and
// an unserved run.
func reportJSON(t *testing.T, n *netsim.Network, res *netsim.Results) []byte {
	t.Helper()
	r := n.Report(res)
	r.Engine.WallSec = 0
	r.Engine.EventsPerSec = 0
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestServedRunBitIdentical is the plane's core guarantee: attaching the
// admin server and hammering every endpoint throughout the run leaves the
// full report — flows, slices, station counters, airtime, fault block —
// bit-identical to the unserved run with the same seed.
func TestServedRunBitIdentical(t *testing.T) {
	const seed = 11

	// Unserved reference run.
	ref := buildFaulted(t, seed)
	refJSON := reportJSON(t, ref, ref.Run())

	// Served run: scrape continuously while it executes.
	n := buildFaulted(t, seed)
	s := NewServer(Options{CaptureDir: t.TempDir()})
	AttachNetwork(s, "run", n)
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	client := &http.Client{}
	done := make(chan struct{})
	stopped := make(chan struct{})
	go func() {
		defer close(stopped)
		for {
			select {
			case <-done:
				return
			default:
			}
			for _, ep := range []string{"/metrics", "/metrics?format=prom", "/healthz", "/runs"} {
				resp, err := client.Get("http://" + addr + ep)
				if err == nil {
					io.Copy(io.Discard, resp.Body) //nolint:errcheck
					resp.Body.Close()
				}
			}
		}
	}()
	res := n.Run()
	close(done)
	<-stopped
	servedJSON := reportJSON(t, n, res)

	if !bytes.Equal(refJSON, servedJSON) {
		t.Fatalf("served run diverged from unserved run:\n--- unserved\n%.2000s\n--- served\n%.2000s", refJSON, servedJSON)
	}
}
