package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"
	"time"

	"repro/internal/faults"
	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/topology"
)

// TestNilServerIsNoOp locks in trace.Sink-style nil-safety: a main can wire
// the plane unconditionally and pay nothing when it is not enabled.
func TestNilServerIsNoOp(t *testing.T) {
	var s *Server
	s.AddMetrics("x", func() metrics.Snapshot { return metrics.Snapshot{} })
	s.AddRun("x", func() any { return nil })
	s.AddHealth("x", func() (string, any) { return "ok", nil })
	if h := s.Handler(); h != nil {
		t.Fatalf("nil server Handler = %v, want nil", h)
	}
	addr, err := s.Start("127.0.0.1:0")
	if addr != "" || err != nil {
		t.Fatalf("nil server Start = (%q, %v), want no-op", addr, err)
	}
	if got := s.Addr(); got != "" {
		t.Fatalf("nil server Addr = %q", got)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("nil server Close: %v", err)
	}
	AttachNetwork(nil, "run", nil)
}

func buildFaulted(t *testing.T, seed int64) *netsim.Network {
	t.Helper()
	spec, err := faults.Parse("locloss:p=0.4;outage:node=1,at=100ms,dur=300ms")
	if err != nil {
		t.Fatal(err)
	}
	opts := netsim.TestbedOptions()
	opts.Protocol = netsim.ProtocolComap
	opts.Seed = seed
	opts.Duration = 600 * time.Millisecond
	opts.Faults = spec
	n, err := netsim.Build(topology.ETSweep(30), opts)
	if err != nil {
		t.Fatal(err)
	}
	n.StartSlicing(100 * time.Millisecond)
	return n
}

func get(t *testing.T, client *http.Client, url string) (int, []byte) {
	t.Helper()
	resp, err := client.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read: %v", url, err)
	}
	return resp.StatusCode, body
}

// TestEndpointsServeLiveRun attaches a faulted CO-MAP run, serves it over a
// real listener, scrapes every endpoint while the run is in flight, and
// checks the post-run payloads.
func TestEndpointsServeLiveRun(t *testing.T) {
	n := buildFaulted(t, 7)
	s := NewServer(Options{CaptureDir: t.TempDir()})
	AttachNetwork(s, "et30", n)
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	base := "http://" + addr
	client := &http.Client{Timeout: 5 * time.Second}

	endpoints := []string{"/", "/metrics", "/metrics?format=prom", "/healthz", "/runs", "/debug/pprof/"}
	// Before the run: every endpoint answers, run state is "built".
	for _, ep := range endpoints {
		if code, _ := get(t, client, base+ep); code != http.StatusOK {
			t.Fatalf("GET %s before run: status %d", ep, code)
		}
	}

	// Scrape continuously while the run executes.
	done := make(chan struct{})
	scraped := make(chan int, 1)
	go func() {
		defer close(scraped)
		count := 0
		for {
			select {
			case <-done:
				scraped <- count
				return
			default:
			}
			for _, ep := range endpoints {
				resp, err := client.Get(base + ep)
				if err == nil {
					io.Copy(io.Discard, resp.Body) //nolint:errcheck
					resp.Body.Close()
					count++
				}
			}
		}
	}()
	n.Run()
	close(done)
	if got := <-scraped; got == 0 {
		t.Logf("run finished before any mid-run scrape completed (fast machine); post-run assertions still apply")
	}

	// /runs reflects the finished run.
	_, body := get(t, client, base+"/runs")
	var runs []struct {
		Name     string          `json:"name"`
		Progress netsim.Progress `json:"progress"`
	}
	if err := json.Unmarshal(body, &runs); err != nil {
		t.Fatalf("/runs: %v\n%s", err, body)
	}
	if len(runs) != 1 || runs[0].Name != "et30" {
		t.Fatalf("/runs = %+v", runs)
	}
	p := runs[0].Progress
	if p.State != netsim.RunStateDone || p.SimSec != 0.6 || p.Events == 0 {
		t.Fatalf("progress = %+v", p)
	}
	if p.WallSec <= 0 || p.Speedup <= 0 || p.EventsPerSec <= 0 {
		t.Fatalf("wall-time stats missing: %+v", p)
	}
	if len(p.Flows) == 0 || len(p.Flows[0].Slices) == 0 {
		t.Fatalf("sliced goodput missing: %+v", p.Flows)
	}

	// /metrics (JSON) carries the medium and both stations' registries.
	_, body = get(t, client, base+"/metrics")
	var snaps map[string]metrics.Snapshot
	if err := json.Unmarshal(body, &snaps); err != nil {
		t.Fatalf("/metrics: %v", err)
	}
	for _, want := range []string{"et30.medium", "et30.station.1", "et30.station.2"} {
		if _, ok := snaps[want]; !ok {
			t.Fatalf("/metrics missing source %q (have %v)", want, metrics.SortedKeys(snaps))
		}
	}

	// /metrics?format=prom is text exposition with source labels.
	_, body = get(t, client, base+"/metrics?format=prom")
	prom := string(body)
	if !strings.Contains(prom, "# TYPE") || !strings.Contains(prom, `source="et30.medium"`) {
		t.Fatalf("prom exposition malformed:\n%.500s", prom)
	}

	// /healthz summarises the injector and fallback counters.
	_, body = get(t, client, base+"/healthz")
	var health struct {
		Status  string                         `json:"status"`
		Sources map[string]netsim.HealthStatus `json:"sources"`
	}
	if err := json.Unmarshal(body, &health); err != nil {
		t.Fatalf("/healthz: %v\n%s", err, body)
	}
	hs, ok := health.Sources["et30"]
	if !ok {
		t.Fatalf("/healthz missing source: %s", body)
	}
	if hs.Faults == nil || hs.Faults.Injected == 0 {
		t.Fatalf("healthz shows no injected faults: %+v", hs)
	}
	if hs.HealthPolicy == nil || hs.HealthPolicy.MaxFixAgeSec <= 0 {
		t.Fatalf("healthz missing health policy: %+v", hs)
	}
}

// TestProfileCapture exercises the on-demand CPU/heap capture endpoints.
func TestProfileCapture(t *testing.T) {
	dir := t.TempDir()
	s := NewServer(Options{CaptureDir: dir})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	client := ts.Client()

	var out map[string]string
	code, body := get(t, client, ts.URL+"/debug/profile/heap")
	if code != http.StatusOK {
		t.Fatalf("heap capture: status %d: %s", code, body)
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if fi, err := os.Stat(out["profile"]); err != nil || fi.Size() == 0 {
		t.Fatalf("heap profile %q: %v", out["profile"], err)
	}

	code, body = get(t, client, ts.URL+"/debug/profile/cpu?seconds=1")
	if code != http.StatusOK {
		t.Fatalf("cpu capture: status %d: %s", code, body)
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(out["profile"]); err != nil {
		t.Fatalf("cpu profile: %v", err)
	}

	if code, _ = get(t, client, ts.URL+"/debug/profile/cpu?seconds=0"); code != http.StatusBadRequest {
		t.Fatalf("seconds=0: status %d, want 400", code)
	}
	if code, _ = get(t, client, ts.URL+"/debug/profile/cpu?seconds=999"); code != http.StatusBadRequest {
		t.Fatalf("seconds=999: status %d, want 400", code)
	}
}

// TestMetricsDeterministicAcrossScrapes locks in diff-stability: two
// scrapes of an idle registry are byte-identical, in both formats.
func TestMetricsDeterministicAcrossScrapes(t *testing.T) {
	reg := metrics.NewRegistry()
	reg.Counter("b.count").Add(2)
	reg.Counter("a/count").Inc()
	reg.Gauge("load").Set(0.5)
	reg.Timing("lat").Observe(3 * time.Millisecond)
	reg.Dist("occ").Observe(1)

	s := NewServer(Options{})
	s.AddMetrics("src", reg.Snapshot)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for _, ep := range []string{"/metrics", "/metrics?format=prom"} {
		_, first := get(t, ts.Client(), ts.URL+ep)
		_, second := get(t, ts.Client(), ts.URL+ep)
		if string(first) != string(second) {
			t.Fatalf("%s not diff-stable:\n--- first\n%s\n--- second\n%s", ep, first, second)
		}
	}
}
