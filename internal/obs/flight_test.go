package obs

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"
	"time"

	"repro/internal/netsim"
	"repro/internal/prof"
	"repro/internal/topology"
)

func buildProfiled(t *testing.T, dir string) *netsim.Network {
	t.Helper()
	opts := netsim.TestbedOptions()
	opts.Protocol = netsim.ProtocolComap
	opts.Seed = 7
	opts.Duration = 400 * time.Millisecond
	opts.Profile = &prof.Config{SampleEvery: 8, FlightEvents: 256, Dir: dir}
	n, err := netsim.Build(topology.ETSweep(30), opts)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

// TestProfileAndFlightEndpoints runs a profiled network while goroutines
// hammer /profile and /flight (the -race build validates the lock-free
// scrape path), then checks both payloads and the ?dump=1 side effect.
func TestProfileAndFlightEndpoints(t *testing.T) {
	dumpDir := t.TempDir()
	n := buildProfiled(t, dumpDir)
	s := NewServer(Options{})
	AttachNetwork(s, "et30", n)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	client := ts.Client()

	// Concurrent scrapers during the run.
	done := make(chan struct{})
	finished := make(chan struct{})
	go func() {
		defer close(finished)
		for {
			select {
			case <-done:
				return
			default:
			}
			for _, ep := range []string{"/profile", "/profile?format=prom", "/flight"} {
				if code, _ := get(t, client, ts.URL+ep); code != http.StatusOK {
					panic("scrape failed: " + ep)
				}
			}
		}
	}()
	n.Run()
	close(done)
	<-finished

	// /profile JSON: one attribution keyed by source, mac events dominant.
	_, body := get(t, client, ts.URL+"/profile")
	var profiles map[string]prof.Attribution
	if err := json.Unmarshal(body, &profiles); err != nil {
		t.Fatalf("/profile: %v\n%s", err, body)
	}
	a, ok := profiles["et30"]
	if !ok {
		t.Fatalf("/profile missing source et30: %s", body)
	}
	if a.Events == 0 || a.SampleEvery != 8 {
		t.Fatalf("attribution = %+v", a)
	}
	var macEvents uint64
	for _, tagStat := range a.Tags {
		if tagStat.Tag == "mac" {
			macEvents = tagStat.Events
		}
	}
	if macEvents == 0 {
		t.Fatalf("no mac-tagged events in a saturated run: %+v", a.Tags)
	}

	// /profile?format=prom: the comap_prof_* families with tag labels.
	_, body = get(t, client, ts.URL+"/profile?format=prom")
	promOut := string(body)
	for _, want := range []string{
		"# TYPE comap_prof_events_total counter",
		`comap_prof_events_total{source="et30",tag="mac"}`,
		"# TYPE comap_prof_sampled_seconds_total counter",
		"# TYPE comap_prof_flight_records_total counter",
	} {
		if !strings.Contains(promOut, want) {
			t.Errorf("prom exposition missing %q:\n%.800s", want, promOut)
		}
	}

	// /flight: the ring's tail, newest Total matches the recorder.
	_, body = get(t, client, ts.URL+"/flight")
	var flights map[string]struct {
		Total   uint64        `json:"total"`
		Records []prof.Record `json:"records"`
		Dumped  string        `json:"dumped"`
	}
	if err := json.Unmarshal(body, &flights); err != nil {
		t.Fatalf("/flight: %v\n%s", err, body)
	}
	fv, ok := flights["et30"]
	if !ok {
		t.Fatalf("/flight missing source et30: %s", body)
	}
	if fv.Total == 0 || len(fv.Records) == 0 || len(fv.Records) > 256 {
		t.Fatalf("flight view = total %d, %d records", fv.Total, len(fv.Records))
	}
	if fv.Records[0].Tag == "" {
		t.Fatalf("undecoded record: %+v", fv.Records[0])
	}
	if fv.Dumped != "" {
		t.Fatalf("dump written without ?dump=1: %q", fv.Dumped)
	}

	// ?dump=1 writes the ring to the profiler's dir and returns the path.
	_, body = get(t, client, ts.URL+"/flight?dump=1")
	if err := json.Unmarshal(body, &flights); err != nil {
		t.Fatalf("/flight?dump=1: %v\n%s", err, body)
	}
	dumped := flights["et30"].Dumped
	if dumped == "" {
		t.Fatalf("?dump=1 returned no path: %s", body)
	}
	data, err := os.ReadFile(dumped)
	if err != nil {
		t.Fatal(err)
	}
	var d prof.FlightDump
	if err := json.Unmarshal(data, &d); err != nil {
		t.Fatalf("dump file: %v", err)
	}
	if d.Reason != "on-demand" || len(d.Records) == 0 {
		t.Fatalf("dump = reason %q, %d records", d.Reason, len(d.Records))
	}
}

// TestProfileEndpointsWithoutProfiler locks in the empty-state payloads: an
// unprofiled plane serves empty objects, not errors.
func TestProfileEndpointsWithoutProfiler(t *testing.T) {
	s := NewServer(Options{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	for _, ep := range []string{"/profile", "/flight"} {
		code, body := get(t, ts.Client(), ts.URL+ep)
		if code != http.StatusOK {
			t.Fatalf("GET %s: status %d", ep, code)
		}
		if got := strings.TrimSpace(string(body)); got != "{}" {
			t.Fatalf("GET %s = %q, want empty object", ep, got)
		}
	}
	// AddProfiler is nil-safe on both sides.
	s.AddProfiler("x", nil)
	var nilServer *Server
	nilServer.AddProfiler("x", prof.New(prof.Config{FlightEvents: -1}))
}
