package obs

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/audit"
	"repro/internal/netsim"
	"repro/internal/topology"
)

func buildAudited(t *testing.T, sink *bytes.Buffer) *netsim.Network {
	t.Helper()
	opts := netsim.TestbedOptions()
	opts.Protocol = netsim.ProtocolComap
	opts.Seed = 7
	opts.Duration = 400 * time.Millisecond
	opts.Audit = &netsim.AuditConfig{
		Scenario: "et30",
		Config:   audit.Config{Sink: sink},
	}
	n, err := netsim.Build(topology.ETSweep(30), opts)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

// TestAuditEndpoint runs an audited network while a goroutine hammers
// /audit, /audit?format=prom and /healthz (the -race build validates that
// the ledger's head snapshot is safely scrapeable mid-run), then checks the
// JSON and Prometheus payloads against the finished ledger.
func TestAuditEndpoint(t *testing.T) {
	var sink bytes.Buffer
	n := buildAudited(t, &sink)
	s := NewServer(Options{})
	AttachNetwork(s, "et30", n)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	client := ts.Client()

	done := make(chan struct{})
	finished := make(chan struct{})
	go func() {
		defer close(finished)
		for {
			select {
			case <-done:
				return
			default:
			}
			for _, ep := range []string{"/audit", "/audit?format=prom", "/healthz"} {
				if code, _ := get(t, client, ts.URL+ep); code != http.StatusOK {
					panic("scrape failed: " + ep)
				}
			}
		}
	}()
	n.Run()
	close(done)
	<-finished

	// /audit JSON: one head keyed by source, finished and internally
	// consistent with the ledger the run serialized.
	_, body := get(t, client, ts.URL+"/audit")
	var heads map[string]audit.Head
	if err := json.Unmarshal(body, &heads); err != nil {
		t.Fatalf("/audit: %v\n%s", err, body)
	}
	h, ok := heads["et30"]
	if !ok {
		t.Fatalf("/audit missing source et30: %s", body)
	}
	if !h.Finished || h.Events == 0 || h.Slices == 0 || h.Head == "" {
		t.Fatalf("head = %+v", h)
	}
	if h.Chains["mac"] == "" || h.Chains["channel"] == "" {
		t.Fatalf("head chains incomplete: %+v", h.Chains)
	}
	if h.Err != "" {
		t.Fatalf("ledger error surfaced: %s", h.Err)
	}
	want := n.Audit.Head()
	if h.Head != want.Head || h.Events != want.Events {
		t.Fatalf("served head %+v != ledger head %+v", h, want)
	}

	// /audit?format=prom: the comap_audit_* families with the head digest
	// carried as an info-metric label.
	_, body = get(t, client, ts.URL+"/audit?format=prom")
	promOut := string(body)
	for _, wantLine := range []string{
		"# TYPE comap_audit_events_total counter",
		`comap_audit_events_total{source="et30"}`,
		"# TYPE comap_audit_slices_total counter",
		"# TYPE comap_audit_deep_slices_total counter",
		"# TYPE comap_audit_head_info gauge",
		`head="` + want.Head + `"`,
	} {
		if !strings.Contains(promOut, wantLine) {
			t.Errorf("prom exposition missing %q:\n%.800s", wantLine, promOut)
		}
	}

	// /healthz carries the ledger head alongside the fault summary.
	_, body = get(t, client, ts.URL+"/healthz")
	if !strings.Contains(string(body), `"audit"`) {
		t.Fatalf("/healthz does not embed the audit head:\n%s", body)
	}
}

// TestAuditEndpointWithoutLedger locks in the empty-state payload and the
// nil-safety of AddLedger on both sides.
func TestAuditEndpointWithoutLedger(t *testing.T) {
	s := NewServer(Options{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	code, body := get(t, ts.Client(), ts.URL+"/audit")
	if code != http.StatusOK {
		t.Fatalf("GET /audit: status %d", code)
	}
	if got := strings.TrimSpace(string(body)); got != "{}" {
		t.Fatalf("GET /audit = %q, want empty object", got)
	}
	s.AddLedger("x", nil)
	var nilServer *Server
	nilServer.AddLedger("x", audit.NewLedger(audit.Config{}, audit.Manifest{Scenario: "x"}))
}
