package obs

import (
	"net/http"

	"repro/internal/metrics"
	"repro/internal/prof"
)

// AddProfiler registers a named attribution profiler. It backs two
// endpoints: /profile (per-tag event counts and sampled wall time, JSON or
// comap_prof_* Prometheus families with ?format=prom) and /flight (the
// flight recorder's current ring as JSON; ?dump=1 also writes it to the
// profiler's dump dir and returns the path). Both read only atomics, so
// scraping never perturbs the run. Nil server or profiler is a no-op.
func (s *Server) AddProfiler(name string, p *prof.Profiler) {
	if s == nil || p == nil {
		return
	}
	s.mu.Lock()
	s.profilers[name] = p
	s.mu.Unlock()
}

// profilerFuncs copies the registered profilers for iteration outside the
// lock.
func (s *Server) profilerFuncs() map[string]*prof.Profiler {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]*prof.Profiler, len(s.profilers))
	for k, v := range s.profilers {
		out[k] = v
	}
	return out
}

// handleProfile serves every profiler's attribution: JSON keyed by source
// name, or the comap_prof_events_total / comap_prof_sampled_seconds_total /
// comap_prof_flight_records_total Prometheus families with ?format=prom.
func (s *Server) handleProfile(w http.ResponseWriter, r *http.Request) {
	profilers := s.profilerFuncs()
	names := metrics.SortedKeys(profilers)
	if r.URL.Query().Get("format") == "prom" {
		pw := metrics.NewPromWriter()
		for _, name := range names {
			p := profilers[name]
			a := p.Attribution()
			for _, ts := range a.Tags {
				labels := map[string]string{"tag": ts.Tag}
				if len(names) > 1 || name != "" {
					labels["source"] = name
				}
				pw.Sample("comap_prof_events_total", "counter", labels, float64(ts.Events))
				pw.Sample("comap_prof_sampled_seconds_total", "counter", labels, ts.SampledSec)
			}
			if f := p.Flight(); f != nil {
				labels := map[string]string{}
				if len(names) > 1 || name != "" {
					labels["source"] = name
				}
				pw.Sample("comap_prof_flight_records_total", "counter", labels, float64(f.Total()))
			}
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		pw.WriteTo(w) //nolint:errcheck // client went away
		return
	}
	out := make(map[string]prof.Attribution, len(names))
	for _, name := range names {
		out[name] = profilers[name].Attribution()
	}
	writeJSON(w, out)
}

// flightView is one profiler's /flight payload.
type flightView struct {
	// Total counts records ever written; Records holds the ring's current
	// contents, oldest first. Dumped names the file written for ?dump=1.
	Total   uint64        `json:"total"`
	Records []prof.Record `json:"records"`
	Dumped  string        `json:"dumped,omitempty"`
}

// handleFlight serves every flight recorder's ring, keyed by source name.
// Profilers without a recorder are omitted. ?dump=1 additionally writes each
// ring to its profiler's dump dir.
func (s *Server) handleFlight(w http.ResponseWriter, r *http.Request) {
	profilers := s.profilerFuncs()
	dump := r.URL.Query().Get("dump") == "1"
	out := make(map[string]flightView)
	for _, name := range metrics.SortedKeys(profilers) {
		p := profilers[name]
		f := p.Flight()
		if f == nil {
			continue
		}
		v := flightView{Records: f.Snapshot(), Total: f.Total()}
		if dump {
			path, err := p.DumpFlight("on-demand")
			if err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
			v.Dumped = path
		}
		out[name] = v
	}
	writeJSON(w, out)
}
