package obs

import (
	"fmt"
	"runtime"
	"runtime/pprof"
	"time"
)

// captureCPU records a CPU profile for the given duration into the capture
// dir and returns the file path. The caller holds profMu.
func (s *Server) captureCPU(d time.Duration) (string, error) {
	f, err := s.captureFile("cpu")
	if err != nil {
		return "", err
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return "", fmt.Errorf("obs: start cpu profile: %w", err)
	}
	time.Sleep(d)
	pprof.StopCPUProfile()
	if err := f.Close(); err != nil {
		return "", fmt.Errorf("obs: close cpu profile: %w", err)
	}
	return f.Name(), nil
}

// captureHeap records an up-to-date heap profile into the capture dir and
// returns the file path.
func (s *Server) captureHeap() (string, error) {
	f, err := s.captureFile("heap")
	if err != nil {
		return "", err
	}
	runtime.GC() // up-to-date allocation data, as net/http/pprof does with gc=1
	if err := pprof.Lookup("heap").WriteTo(f, 0); err != nil {
		f.Close()
		return "", fmt.Errorf("obs: write heap profile: %w", err)
	}
	if err := f.Close(); err != nil {
		return "", fmt.Errorf("obs: close heap profile: %w", err)
	}
	return f.Name(), nil
}
