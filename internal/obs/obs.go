// Package obs is the simulator's live observability plane: an embeddable
// HTTP admin endpoint any long-running sim can attach. It serves
//
//   - /metrics  — every attached metrics.Registry snapshot, as JSON or
//     Prometheus text exposition (?format=prom),
//   - /healthz  — degraded-mode summary (fault-injector state, CO-MAP
//     location-health fallback counters),
//   - /runs     — live run progress (sim-time vs wall-time speedup,
//     events/s, per-slice goodput, engine queue/pool gauges),
//   - /profile  — the attribution profiler's per-subsystem event counts and
//     sampled wall time (JSON, or comap_prof_* families with ?format=prom),
//   - /flight   — the flight recorder's ring of recent events (?dump=1 also
//     writes it to the profile dir),
//   - /audit    — the determinism ledger's live head digest, per-subsystem
//     hash chains and slice/event totals (JSON, or comap_audit_* families
//     with ?format=prom),
//   - /debug/pprof/ — the standard Go profiling endpoints, plus
//     /debug/profile/{cpu,heap} capturing profiles into a results dir.
//
// The plane is strictly pull-only: handlers read atomic counters, locked
// snapshots and wall clocks, and never call into protocol state, so a
// served run is bit-identical to an unserved one (asserted by test against
// the full netsim.Report).
//
// Like trace.Sink, the server is nil-safe: every method on a nil *Server is
// a no-op, so instrumented mains can wire it unconditionally and pay
// nothing when no -http flag is given.
package obs

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"sync"
	"time"

	"repro/internal/audit"
	"repro/internal/metrics"
	"repro/internal/prof"
	"repro/internal/slo"
)

// Options configures a Server.
type Options struct {
	// CaptureDir is where on-demand CPU/heap profiles are written
	// (/debug/profile/...). Empty defaults to "results/profiles".
	CaptureDir string
}

// SnapshotFunc produces a point-in-time metrics snapshot. It must be safe
// to call from any goroutine (metrics.Registry.Snapshot is).
type SnapshotFunc func() metrics.Snapshot

// RunFunc produces a live run-progress value (JSON-marshalable). It must be
// safe to call from any goroutine (netsim.Network.Progress is).
type RunFunc func() any

// HealthFunc produces a health status ("ok" or "degraded") plus a detail
// payload. It must be safe to call from any goroutine.
type HealthFunc func() (status string, detail any)

// SLOFunc produces a point-in-time SLO snapshot. It must be safe to call
// from any goroutine (slo.Tracker.Status is).
type SLOFunc func() slo.Status

// Server is the admin plane. Register sources, then Start (or mount
// Handler yourself). Zero value is usable; nil is a no-op.
type Server struct {
	opts Options

	mu        sync.Mutex
	sources   map[string]SnapshotFunc
	runs      map[string]RunFunc
	health    map[string]HealthFunc
	profilers map[string]*prof.Profiler
	ledgers   map[string]*audit.Ledger
	slos      map[string]SLOFunc
	extra     map[string]http.Handler

	srv *http.Server
	ln  net.Listener

	// profMu serialises CPU profile captures (the runtime allows one).
	profMu sync.Mutex
}

// NewServer returns an empty admin plane.
func NewServer(opts Options) *Server {
	if opts.CaptureDir == "" {
		opts.CaptureDir = filepath.Join("results", "profiles")
	}
	return &Server{
		opts:      opts,
		sources:   make(map[string]SnapshotFunc),
		runs:      make(map[string]RunFunc),
		health:    make(map[string]HealthFunc),
		profilers: make(map[string]*prof.Profiler),
		ledgers:   make(map[string]*audit.Ledger),
		slos:      make(map[string]SLOFunc),
	}
}

// AddMetrics registers a named snapshot source served under /metrics.
func (s *Server) AddMetrics(name string, fn SnapshotFunc) {
	if s == nil || fn == nil {
		return
	}
	s.mu.Lock()
	s.sources[name] = fn
	s.mu.Unlock()
}

// AddRun registers a named run-progress source served under /runs.
func (s *Server) AddRun(name string, fn RunFunc) {
	if s == nil || fn == nil {
		return
	}
	s.mu.Lock()
	s.runs[name] = fn
	s.mu.Unlock()
}

// AddHealth registers a named health source served under /healthz.
func (s *Server) AddHealth(name string, fn HealthFunc) {
	if s == nil || fn == nil {
		return
	}
	s.mu.Lock()
	s.health[name] = fn
	s.mu.Unlock()
}

// AddSLO registers a named SLO snapshot source served under /slo.
func (s *Server) AddSLO(name string, fn SLOFunc) {
	if s == nil || fn == nil {
		return
	}
	s.mu.Lock()
	s.slos[name] = fn
	s.mu.Unlock()
}

// Handle mounts an application handler on the admin mux under pattern
// (e.g. "/v1/") — how comap-mapd serves its control-plane API and its
// observability endpoints from one listener. Call before Start/Handler.
func (s *Server) Handle(pattern string, h http.Handler) {
	if s == nil || h == nil {
		return
	}
	s.mu.Lock()
	if s.extra == nil {
		s.extra = make(map[string]http.Handler)
	}
	s.extra[pattern] = h
	s.mu.Unlock()
}

// snapshotFuncs copies the registered sources for iteration outside the
// lock (source functions may themselves take instrument locks).
func (s *Server) snapshotFuncs() (map[string]SnapshotFunc, map[string]RunFunc, map[string]HealthFunc) {
	s.mu.Lock()
	defer s.mu.Unlock()
	src := make(map[string]SnapshotFunc, len(s.sources))
	for k, v := range s.sources {
		src[k] = v
	}
	runs := make(map[string]RunFunc, len(s.runs))
	for k, v := range s.runs {
		runs[k] = v
	}
	health := make(map[string]HealthFunc, len(s.health))
	for k, v := range s.health {
		health[k] = v
	}
	return src, runs, health
}

// Handler returns the admin mux (nil on a nil server).
func (s *Server) Handler() http.Handler {
	if s == nil {
		return nil
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/", s.handleIndex)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/runs", s.handleRuns)
	mux.HandleFunc("/profile", s.handleProfile)
	mux.HandleFunc("/flight", s.handleFlight)
	mux.HandleFunc("/audit", s.handleAudit)
	mux.HandleFunc("/slo", s.handleSLO)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/debug/profile/cpu", s.handleCaptureCPU)
	mux.HandleFunc("/debug/profile/heap", s.handleCaptureHeap)
	s.mu.Lock()
	for pattern, h := range s.extra {
		mux.Handle(pattern, h)
	}
	s.mu.Unlock()
	return mux
}

// Start listens on addr (host:port; port 0 picks a free one) and serves in
// a background goroutine. It returns the bound address. A nil server
// returns "" with no error, so callers can start unconditionally.
func (s *Server) Start(addr string) (string, error) {
	if s == nil {
		return "", nil
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	h := s.Handler()
	s.mu.Lock()
	s.ln = ln
	s.srv = &http.Server{Handler: h}
	srv := s.srv
	s.mu.Unlock()
	go srv.Serve(ln) //nolint:errcheck // ErrServerClosed on shutdown
	return ln.Addr().String(), nil
}

// Addr returns the bound address ("" before Start or on a nil server).
func (s *Server) Addr() string {
	if s == nil {
		return ""
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Close stops the listener. Safe on a nil or never-started server.
func (s *Server) Close() error {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	srv := s.srv
	s.srv, s.ln = nil, nil
	s.mu.Unlock()
	if srv == nil {
		return nil
	}
	return srv.Close()
}

func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "comap observability plane")
	fmt.Fprintln(w, "  /metrics            registry snapshots (JSON; ?format=prom for Prometheus text)")
	fmt.Fprintln(w, "  /healthz            fault-injector and location-health summary")
	fmt.Fprintln(w, "  /runs               live run progress (speedup, events/s, sliced goodput)")
	fmt.Fprintln(w, "  /profile            per-subsystem event/wall-time attribution (JSON; ?format=prom)")
	fmt.Fprintln(w, "  /flight             flight-recorder ring of recent events (?dump=1 writes a file)")
	fmt.Fprintln(w, "  /audit              determinism-ledger head digest and per-tag chains (JSON; ?format=prom)")
	fmt.Fprintln(w, "  /slo                per-endpoint latency objectives, error budgets, burn rates (JSON; ?format=prom)")
	fmt.Fprintln(w, "  /debug/pprof/       Go profiling endpoints")
	fmt.Fprintln(w, "  /debug/profile/cpu  capture a CPU profile to the results dir (?seconds=N)")
	fmt.Fprintln(w, "  /debug/profile/heap capture a heap profile to the results dir")
}

// handleMetrics serves every source's snapshot: JSON keyed by source name
// (sorted by encoding/json), or Prometheus text exposition with a source
// label when ?format=prom is given.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	sources, _, _ := s.snapshotFuncs()
	names := metrics.SortedKeys(sources)
	if r.URL.Query().Get("format") == "prom" {
		pw := metrics.NewPromWriter()
		for _, name := range names {
			labels := map[string]string{}
			if len(names) > 1 || name != "" {
				labels["source"] = name
			}
			pw.Add(labels, sources[name]())
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		pw.WriteTo(w) //nolint:errcheck // client went away
		return
	}
	out := make(map[string]metrics.Snapshot, len(names))
	for _, name := range names {
		out[name] = sources[name]()
	}
	writeJSON(w, out)
}

// healthResponse is the /healthz payload.
type healthResponse struct {
	// Status is "ok" unless any source reports otherwise, in which case it
	// carries the first non-ok status (sources sorted by name).
	Status  string         `json:"status"`
	Sources map[string]any `json:"sources,omitempty"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	_, _, health := s.snapshotFuncs()
	resp := healthResponse{Status: "ok"}
	if len(health) > 0 {
		resp.Sources = make(map[string]any, len(health))
	}
	for _, name := range metrics.SortedKeys(health) {
		status, detail := health[name]()
		if status != "ok" && resp.Status == "ok" {
			resp.Status = status
		}
		resp.Sources[name] = detail
	}
	writeJSON(w, resp)
}

func (s *Server) handleRuns(w http.ResponseWriter, r *http.Request) {
	_, runs, _ := s.snapshotFuncs()
	type namedRun struct {
		Name     string `json:"name"`
		Progress any    `json:"progress"`
	}
	out := make([]namedRun, 0, len(runs))
	for _, name := range metrics.SortedKeys(runs) {
		out = append(out, namedRun{Name: name, Progress: runs[name]()})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	writeJSON(w, out)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // client went away
}

// handleCaptureCPU profiles the process for ?seconds=N (default 2, max 120)
// and writes the profile into the capture dir, responding with the path.
func (s *Server) handleCaptureCPU(w http.ResponseWriter, r *http.Request) {
	seconds := 2
	if q := r.URL.Query().Get("seconds"); q != "" {
		n, err := strconv.Atoi(q)
		if err != nil || n <= 0 || n > 120 {
			http.Error(w, "seconds must be an integer in [1, 120]", http.StatusBadRequest)
			return
		}
		seconds = n
	}
	if !s.profMu.TryLock() {
		http.Error(w, "a CPU profile capture is already running", http.StatusConflict)
		return
	}
	defer s.profMu.Unlock()
	path, err := s.captureCPU(time.Duration(seconds) * time.Second)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	writeJSON(w, map[string]string{"profile": path})
}

func (s *Server) handleCaptureHeap(w http.ResponseWriter, r *http.Request) {
	path, err := s.captureHeap()
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	writeJSON(w, map[string]string{"profile": path})
}

// captureFile opens a timestamped profile file in the capture dir.
func (s *Server) captureFile(kind string) (*os.File, error) {
	if err := os.MkdirAll(s.opts.CaptureDir, 0o755); err != nil {
		return nil, fmt.Errorf("obs: capture dir: %w", err)
	}
	name := fmt.Sprintf("%s-%s.pprof", kind, time.Now().UTC().Format("20060102T150405.000"))
	f, err := os.Create(filepath.Join(s.opts.CaptureDir, name))
	if err != nil {
		return nil, fmt.Errorf("obs: create profile: %w", err)
	}
	return f, nil
}
