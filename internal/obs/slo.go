package obs

import (
	"net/http"

	"repro/internal/metrics"
	"repro/internal/slo"
)

// sloFuncs copies the registered SLO sources for iteration off the lock.
func (s *Server) sloFuncs() map[string]SLOFunc {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]SLOFunc, len(s.slos))
	for k, v := range s.slos {
		out[k] = v
	}
	return out
}

// handleSLO serves every tracker's per-endpoint objectives: JSON keyed by
// source name, or comap_slo_* Prometheus families with ?format=prom.
func (s *Server) handleSLO(w http.ResponseWriter, r *http.Request) {
	slos := s.sloFuncs()
	names := metrics.SortedKeys(slos)
	if r.URL.Query().Get("format") == "prom" {
		pw := metrics.NewPromWriter()
		for _, name := range names {
			st := slos[name]()
			for _, ep := range st.Endpoints {
				labels := func() map[string]string {
					m := map[string]string{"endpoint": ep.Endpoint}
					if len(names) > 1 || name != "" {
						m["source"] = name
					}
					return m
				}
				pw.Sample("comap_slo_requests_total", "counter", labels(), float64(ep.Requests))
				pw.Sample("comap_slo_errors_total", "counter", labels(), float64(ep.Errors))
				pw.Sample("comap_slo_slow_total", "counter", labels(), float64(ep.Slow))
				pw.Sample("comap_slo_good_fraction", "gauge", labels(), ep.GoodFraction)
				pw.Sample("comap_slo_budget_remaining", "gauge", labels(), ep.BudgetRemaining)
				pw.Sample("comap_slo_burn_rate", "gauge", labels(), ep.BurnRate)
				pw.Sample("comap_slo_latency_p99_ms", "gauge", labels(), ep.P99Ms)
				pw.Sample("comap_slo_latency_p999_ms", "gauge", labels(), ep.P999Ms)
				pw.Sample("comap_slo_latency_max_ms", "gauge", labels(), ep.MaxMs)
			}
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		pw.WriteTo(w) //nolint:errcheck // client went away
		return
	}
	out := make(map[string]slo.Status, len(names))
	for _, name := range names {
		out[name] = slos[name]()
	}
	writeJSON(w, out)
}
