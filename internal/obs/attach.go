package obs

import (
	"fmt"
	"sort"

	"repro/internal/frame"
	"repro/internal/netsim"
)

// AttachNetwork wires a built netsim.Network into the admin plane under the
// given name: the medium and every station registry become /metrics
// sources ("<name>.medium", "<name>.station.<id>"), the network's live
// Progress is served under /runs, and its degraded-mode HealthStatus under
// /healthz. Call after netsim.Build (and StartSlicing, if slices should
// show up in /runs) and before Run.
//
// Attaching is pull-only: every registered function reads atomics and
// locked snapshots, so the served run stays bit-identical to an unserved
// one. Attaching to a nil server is a no-op.
func AttachNetwork(s *Server, name string, n *netsim.Network) {
	if s == nil || n == nil {
		return
	}
	s.AddMetrics(name+".medium", n.MediumMetrics.Snapshot)
	ids := make([]int, 0, len(n.Stations))
	for id := range n.Stations {
		ids = append(ids, int(id))
	}
	sort.Ints(ids)
	for _, id := range ids {
		st := n.Stations[frame.NodeID(id)]
		s.AddMetrics(fmt.Sprintf("%s.station.%d", name, id), st.Metrics.Snapshot)
	}
	s.AddRun(name, func() any { return n.Progress() })
	s.AddHealth(name, func() (string, any) {
		h := n.HealthStatus()
		return h.Status, h
	})
	if n.Prof != nil {
		s.AddProfiler(name, n.Prof)
	}
	if n.Audit != nil {
		s.AddLedger(name, n.Audit)
	}
	if n.SLO != nil {
		s.AddSLO(name+".mapsvc", n.SLO.Status)
	}
}
