// Package rate implements transmit bit-rate selection. Two controllers are
// provided: a fixed-rate controller (the NS-2 Table I configuration) and a
// Minstrel-style sampler, modelling the mac80211 Minstrel algorithm the
// paper's testbed runs ("the default data rate adaptation algorithm in
// MAC80211, Minstrel, is enabled").
package rate

import (
	"math/rand"
	"time"

	"repro/internal/frame"
	"repro/internal/phy"
)

// Controller selects the transmit rate for each destination and learns from
// per-frame success feedback.
type Controller interface {
	// RateFor returns the rate to use for the next data frame to dst.
	RateFor(dst frame.NodeID) phy.Rate
	// Feedback reports whether the frame sent to dst at rate r was
	// acknowledged.
	Feedback(dst frame.NodeID, r phy.Rate, ok bool)
}

// Fixed always returns one rate; Feedback is ignored.
type Fixed struct {
	Rate phy.Rate
}

var _ Controller = Fixed{}

// RateFor implements Controller.
func (f Fixed) RateFor(frame.NodeID) phy.Rate { return f.Rate }

// Feedback implements Controller.
func (f Fixed) Feedback(frame.NodeID, phy.Rate, bool) {}

// Minstrel is a simplified Minstrel controller: it maintains an EWMA success
// probability per (destination, rate), normally transmits at the rate with
// the highest expected throughput (probability × bitrate), and dedicates
// every SampleInterval-th frame to probing a randomly chosen other rate.
type Minstrel struct {
	rates []phy.Rate
	rng   *rand.Rand
	// EWMAWeight is the weight of the newest observation, default 0.1
	// (roughly matching Minstrel's 100 ms smoothing windows).
	ewmaWeight float64
	// sampleInterval is the probe cadence in frames, default 16.
	sampleInterval int
	// frameTime estimates the full channel time of one frame exchange at a
	// rate (preambles, headers, ACK, contention overhead). When set, the
	// expected-throughput metric becomes prob/frameTime — like the real
	// Minstrel, which maximises goodput over airtime rather than raw
	// bitrate, so a reliable slower rate beats a lossy faster one.
	frameTime func(r phy.Rate) time.Duration
	perDst    map[frame.NodeID]*minstrelState
}

var _ Controller = (*Minstrel)(nil)

type minstrelState struct {
	// prob is the EWMA success probability per rate index; rates start
	// optimistic (1.0) so each gets tried.
	prob    []float64
	counter int
	// probing is the rate index currently being probed, or -1.
	probing int
}

// NewMinstrel creates a Minstrel controller over the given rate set, using
// rng for probe selection.
func NewMinstrel(rates []phy.Rate, rng *rand.Rand) *Minstrel {
	if len(rates) == 0 {
		panic("rate: empty rate set")
	}
	rs := make([]phy.Rate, len(rates))
	copy(rs, rates)
	return &Minstrel{
		rates:          rs,
		rng:            rng,
		ewmaWeight:     0.1,
		sampleInterval: 12,
		perDst:         make(map[frame.NodeID]*minstrelState),
	}
}

func (m *Minstrel) state(dst frame.NodeID) *minstrelState {
	s, ok := m.perDst[dst]
	if !ok {
		s = &minstrelState{prob: make([]float64, len(m.rates)), probing: -1}
		for i := range s.prob {
			s.prob[i] = 1
		}
		m.perDst[dst] = s
	}
	return s
}

// RateFor implements Controller.
func (m *Minstrel) RateFor(dst frame.NodeID) phy.Rate {
	s := m.state(dst)
	s.counter++
	best := m.bestIndex(s)
	if m.sampleInterval > 0 && s.counter%m.sampleInterval == 0 && len(m.rates) > 1 {
		// Probe a random rate other than the current best.
		probe := m.rng.Intn(len(m.rates) - 1)
		if probe >= best {
			probe++
		}
		s.probing = probe
		return m.rates[probe]
	}
	s.probing = -1
	return m.rates[best]
}

// SetFrameTime installs the per-rate frame-exchange time estimator (see the
// frameTime field). Call before traffic starts.
func (m *Minstrel) SetFrameTime(fn func(r phy.Rate) time.Duration) { m.frameTime = fn }

// bestIndex returns the rate index with the highest expected throughput.
func (m *Minstrel) bestIndex(s *minstrelState) int {
	best, bestTp := 0, -1.0
	for i, r := range m.rates {
		var tp float64
		if m.frameTime != nil {
			if ft := m.frameTime(r).Seconds(); ft > 0 {
				tp = s.prob[i] / ft
			}
		} else {
			tp = s.prob[i] * r.BitsPerSec
		}
		if tp > bestTp {
			best, bestTp = i, tp
		}
	}
	return best
}

// Feedback implements Controller.
func (m *Minstrel) Feedback(dst frame.NodeID, r phy.Rate, ok bool) {
	s := m.state(dst)
	for i, candidate := range m.rates {
		if candidate.Name == r.Name && candidate.BitsPerSec == r.BitsPerSec {
			obs := 0.0
			if ok {
				obs = 1
			}
			s.prob[i] = (1-m.ewmaWeight)*s.prob[i] + m.ewmaWeight*obs
			return
		}
	}
}

// CurrentBest returns the rate Minstrel would pick for dst without probing.
// It is exposed for tests and diagnostics.
func (m *Minstrel) CurrentBest(dst frame.NodeID) phy.Rate {
	return m.rates[m.bestIndex(m.state(dst))]
}
