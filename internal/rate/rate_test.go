package rate

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/frame"
	"repro/internal/phy"
)

func TestFixed(t *testing.T) {
	c := Fixed{Rate: phy.RateOFDM6}
	if got := c.RateFor(1); got != phy.RateOFDM6 {
		t.Errorf("RateFor = %v", got)
	}
	c.Feedback(1, phy.RateOFDM6, false) // must not panic or change anything
	if got := c.RateFor(1); got != phy.RateOFDM6 {
		t.Errorf("RateFor after feedback = %v", got)
	}
}

func bgRates() []phy.Rate {
	return []phy.Rate{phy.RateDSSS1, phy.RateDSSS11, phy.RateOFDM24, phy.RateOFDM54}
}

func TestMinstrelPanicsOnEmptyRates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewMinstrel(nil, rand.New(rand.NewSource(1)))
}

func TestMinstrelStartsOptimistic(t *testing.T) {
	m := NewMinstrel(bgRates(), rand.New(rand.NewSource(1)))
	// With all probabilities at 1, the best expected throughput is the
	// fastest rate.
	if got := m.CurrentBest(5); got != phy.RateOFDM54 {
		t.Errorf("initial best = %v, want 54M", got)
	}
}

func TestMinstrelConvergesDownOnFailure(t *testing.T) {
	m := NewMinstrel(bgRates(), rand.New(rand.NewSource(1)))
	const dst = frame.NodeID(7)
	// The link only sustains 11M: every faster rate fails, slower succeed.
	for i := 0; i < 400; i++ {
		r := m.RateFor(dst)
		ok := r.BitsPerSec <= 11e6
		m.Feedback(dst, r, ok)
	}
	if got := m.CurrentBest(dst); got != phy.RateDSSS11 {
		t.Errorf("converged best = %v, want 11M", got)
	}
}

func TestMinstrelRecoversWhenLinkImproves(t *testing.T) {
	m := NewMinstrel(bgRates(), rand.New(rand.NewSource(2)))
	const dst = frame.NodeID(3)
	for i := 0; i < 300; i++ {
		r := m.RateFor(dst)
		m.Feedback(dst, r, r.BitsPerSec <= 1e6)
	}
	if got := m.CurrentBest(dst); got != phy.RateDSSS1 {
		t.Fatalf("should be at 1M, got %v", got)
	}
	// Link improves: everything succeeds. Probing must rediscover 54M.
	for i := 0; i < 2000; i++ {
		r := m.RateFor(dst)
		m.Feedback(dst, r, true)
	}
	if got := m.CurrentBest(dst); got != phy.RateOFDM54 {
		t.Errorf("after recovery best = %v, want 54M", got)
	}
}

func TestMinstrelProbesOtherRates(t *testing.T) {
	m := NewMinstrel(bgRates(), rand.New(rand.NewSource(3)))
	const dst = frame.NodeID(1)
	seen := make(map[string]bool)
	for i := 0; i < 200; i++ {
		r := m.RateFor(dst)
		seen[r.Name] = true
		m.Feedback(dst, r, true)
	}
	if len(seen) < 2 {
		t.Errorf("expected probing to try multiple rates, saw %v", seen)
	}
}

func TestMinstrelPerDestinationIsolation(t *testing.T) {
	m := NewMinstrel(bgRates(), rand.New(rand.NewSource(4)))
	// Destination 1 has a terrible link; destination 2 is perfect.
	for i := 0; i < 300; i++ {
		r := m.RateFor(1)
		m.Feedback(1, r, r.BitsPerSec <= 1e6)
		r2 := m.RateFor(2)
		m.Feedback(2, r2, true)
	}
	if got := m.CurrentBest(1); got != phy.RateDSSS1 {
		t.Errorf("dst1 best = %v, want 1M", got)
	}
	if got := m.CurrentBest(2); got != phy.RateOFDM54 {
		t.Errorf("dst2 best = %v, want 54M", got)
	}
}

func TestMinstrelFeedbackForUnknownRateIgnored(t *testing.T) {
	m := NewMinstrel(bgRates(), rand.New(rand.NewSource(5)))
	m.Feedback(1, phy.Rate{Name: "weird", BitsPerSec: 3e6}, false)
	if got := m.CurrentBest(1); got != phy.RateOFDM54 {
		t.Errorf("unknown-rate feedback changed state: %v", got)
	}
}

func TestMinstrelCopiesRateSlice(t *testing.T) {
	rates := bgRates()
	m := NewMinstrel(rates, rand.New(rand.NewSource(6)))
	rates[3] = phy.RateDSSS1
	if got := m.CurrentBest(1); got != phy.RateOFDM54 {
		t.Errorf("controller aliased caller slice: %v", got)
	}
}

func TestMinstrelSingleRateNeverProbes(t *testing.T) {
	m := NewMinstrel([]phy.Rate{phy.RateOFDM6}, rand.New(rand.NewSource(7)))
	for i := 0; i < 100; i++ {
		if got := m.RateFor(9); got != phy.RateOFDM6 {
			t.Fatalf("single-rate controller returned %v", got)
		}
	}
}

func TestMinstrelAirtimeAwareMetric(t *testing.T) {
	// With a frame-time estimator whose fixed overhead dominates, a lossy
	// fast rate loses to a reliable slower one — unlike the raw
	// prob×bitrate metric.
	p := phy.DSSS()
	m := NewMinstrel(bgRates(), rand.New(rand.NewSource(9)))
	m.SetFrameTime(func(r phy.Rate) time.Duration {
		return 800*time.Microsecond + p.DataFrameAirtime(r, 1000)
	})
	const dst = frame.NodeID(4)
	// 54M succeeds 55% of the time; 11M always succeeds.
	for i := 0; i < 600; i++ {
		r := m.RateFor(dst)
		ok := true
		if r.BitsPerSec > 11e6 {
			ok = i%9 < 5
		}
		m.Feedback(dst, r, ok)
	}
	best := m.CurrentBest(dst)
	if best.BitsPerSec > 24e6 {
		t.Errorf("airtime-aware metric picked %v despite heavy losses", best)
	}
}

func TestMinstrelFrameTimeZeroGuard(t *testing.T) {
	m := NewMinstrel(bgRates(), rand.New(rand.NewSource(10)))
	m.SetFrameTime(func(phy.Rate) time.Duration { return 0 })
	// Degenerate estimator must not panic or divide by zero.
	if got := m.RateFor(1); got.IsZero() {
		t.Errorf("RateFor returned zero rate")
	}
}
