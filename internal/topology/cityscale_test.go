package topology

import (
	"strings"
	"testing"

	"repro/internal/frame"
	"repro/internal/geom"
)

func TestCityScaleThousandStations(t *testing.T) {
	top, err := CityScale(DefaultCityConfig(1000, 42))
	if err != nil {
		t.Fatal(err)
	}
	if top.World == nil {
		t.Fatal("city topology must carry a shard grid")
	}
	apGrid, err := NewGrid(top.World.Origin(), top.World.SizeMeters(), 3)
	if err != nil {
		t.Fatal(err)
	}
	aps, stations := 0, 0
	for _, n := range top.Nodes {
		if n.IsAP {
			aps++
			continue
		}
		stations++
		if n.ID < CityStationBase {
			t.Fatalf("station ID %d below CityStationBase", n.ID)
		}
		if !top.World.Contains(n.Pos) {
			t.Fatalf("station %d placed outside the world: %v", n.ID, n.Pos)
		}
	}
	if aps != 64 || stations != 1000 {
		t.Fatalf("got %d APs / %d stations, want 64 / 1000", aps, stations)
	}
	if len(top.Flows) != 1000 {
		t.Fatalf("got %d flows, want one uplink per station", len(top.Flows))
	}
	// Every uplink must target the AP whose grid cell contains the station —
	// the quadtree loc→AP mapping.
	byID := map[int]Node{}
	for _, n := range top.Nodes {
		byID[int(n.ID)] = n
	}
	for _, f := range top.Flows {
		src, ok := byID[int(f.Src)]
		if !ok {
			t.Fatalf("flow source %d not in topology", f.Src)
		}
		cell, err := apGrid.CellOf(src.Pos)
		if err != nil {
			t.Fatal(err)
		}
		if want := CityAPBase + frame.NodeID(cell); f.Dst != want {
			t.Fatalf("station %d in AP cell %d flows to %d, want %d", f.Src, cell, f.Dst, want)
		}
	}
}

func TestCityScaleDeterministic(t *testing.T) {
	a, err := CityScale(DefaultCityConfig(200, 9))
	if err != nil {
		t.Fatal(err)
	}
	b, err := CityScale(DefaultCityConfig(200, 9))
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Nodes) != len(b.Nodes) {
		t.Fatalf("node counts differ: %d != %d", len(a.Nodes), len(b.Nodes))
	}
	for i := range a.Nodes {
		if a.Nodes[i] != b.Nodes[i] {
			t.Fatalf("node %d differs across same-seed builds", i)
		}
	}
	c, err := CityScale(DefaultCityConfig(200, 10))
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a.Nodes {
		if a.Nodes[i] != c.Nodes[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical placements")
	}
}

func TestCityScaleValidation(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*CityConfig)
		want string
	}{
		{"no stations", func(c *CityConfig) { c.Stations = 0 }, "at least 1 station"},
		{"shard coarser than APs", func(c *CityConfig) { c.CellOrder = 2 }, "shard order"},
		{"bad annulus", func(c *CityConfig) { c.AnnulusMinMeters = 90 }, "annulus"},
		{"annulus spills cells", func(c *CityConfig) { c.AnnulusMaxMeters = 400 }, "foreign AP cells"},
		{"bad world", func(c *CityConfig) { c.WorldMeters = -5 }, "positive"},
		{"ap id overflow", func(c *CityConfig) { c.APOrder = 5; c.CellOrder = 5 }, "AP ID range"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := DefaultCityConfig(100, 1)
			tc.mut(&cfg)
			if _, err := CityScale(cfg); err == nil {
				t.Fatal("bad config accepted")
			} else if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not contain %q", err, tc.want)
			}
		})
	}
}

func TestValidateRejectsOutOfWorldNodes(t *testing.T) {
	top, err := CityScale(DefaultCityConfig(10, 1))
	if err != nil {
		t.Fatal(err)
	}
	if err := top.Validate(); err != nil {
		t.Fatalf("valid city fails validation: %v", err)
	}
	for i := range top.Nodes {
		if !top.Nodes[i].IsAP {
			top.Nodes[i].Pos = geom.Pt(-50, 10)
			break
		}
	}
	err = top.Validate()
	if err == nil {
		t.Fatal("out-of-world station passed validation")
	}
	if !strings.Contains(err.Error(), "outside grid") {
		t.Fatalf("error %q does not describe the world bounds", err)
	}
}
