// Package topology builds the node layouts of the paper's experiments: the
// exposed-terminal sweep of Figs. 1/8, the hidden-terminal payload study of
// Fig. 2, the model-validation network of Fig. 7, the ten 3-client
// hidden-terminal configurations of Fig. 9 and the 3-AP/9-client office
// floor of Fig. 10.
//
// Geometry regimes: the testbed scenarios use 0 dBm transmit power with
// α=2.9/σ=4 (CS range ≈26 m), the NS-2 scenarios use Table I's 20 dBm with
// α=3.3/σ=5 (CS range ≈66 m, hidden-terminal zone beyond ≈103 m from the
// sender). Distances below are chosen to land each node unambiguously in its
// intended role under those models.
package topology

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/frame"
	"repro/internal/geom"
)

// Well-known node IDs. Clients are small integers, APs start at 101.
const (
	AP1 frame.NodeID = 101
	AP2 frame.NodeID = 102
	AP3 frame.NodeID = 103

	C1 frame.NodeID = 1
	C2 frame.NodeID = 2
	C3 frame.NodeID = 3
	C4 frame.NodeID = 4
)

// Node is one station placement.
type Node struct {
	ID   frame.NodeID
	Pos  geom.Point
	IsAP bool
}

// Flow is one directed traffic stream.
type Flow struct {
	Src frame.NodeID
	Dst frame.NodeID
}

// Topology is a named node layout with its traffic matrix.
type Topology struct {
	Name  string
	Nodes []Node
	Flows []Flow
	// World, when non-nil, bounds the layout to a spatial grid: Validate
	// then rejects nodes placed outside it, and the channel shards its
	// per-pair state by grid cell instead of keeping dense N×N matrices.
	// Paper-scale topologies leave it nil (single implicit cell, dense
	// behavior bit-for-bit).
	World *Grid
}

// Node returns the placement of id, or ok=false.
func (t Topology) Node(id frame.NodeID) (Node, bool) {
	for _, n := range t.Nodes {
		if n.ID == id {
			return n, true
		}
	}
	return Node{}, false
}

// Senders returns the distinct flow sources, in flow order.
func (t Topology) Senders() []frame.NodeID {
	seen := make(map[frame.NodeID]bool)
	var out []frame.NodeID
	for _, f := range t.Flows {
		if !seen[f.Src] {
			seen[f.Src] = true
			out = append(out, f.Src)
		}
	}
	return out
}

// Validate checks that node IDs are unique and every flow references
// existing nodes.
func (t Topology) Validate() error {
	seen := make(map[frame.NodeID]bool, len(t.Nodes))
	for _, n := range t.Nodes {
		if seen[n.ID] {
			return fmt.Errorf("topology %q: duplicate node %d", t.Name, n.ID)
		}
		seen[n.ID] = true
		if t.World != nil {
			if _, err := t.World.CellOf(n.Pos); err != nil {
				return fmt.Errorf("topology %q: node %d: %w", t.Name, n.ID, err)
			}
		}
	}
	for _, f := range t.Flows {
		if !seen[f.Src] || !seen[f.Dst] {
			return fmt.Errorf("topology %q: flow %d->%d references missing node", t.Name, f.Src, f.Dst)
		}
		if f.Src == f.Dst {
			return fmt.Errorf("topology %q: self flow at %d", t.Name, f.Src)
		}
	}
	return nil
}

// ETSweep is the Fig. 1/8 testbed: AP1 and AP2 36 m apart, C1 8 m from AP1
// transmitting uplink, and C2 (uplink to AP2) placed c2FromAP1 meters from
// AP1 along the AP1–AP2 line. For c2FromAP1 roughly in [20, 34] under the
// testbed radio model, C2 is an exposed terminal of the C1→AP1 link.
func ETSweep(c2FromAP1 float64) Topology {
	return Topology{
		Name: fmt.Sprintf("et-sweep-%.0fm", c2FromAP1),
		Nodes: []Node{
			{ID: AP1, Pos: geom.Pt(0, 0), IsAP: true},
			{ID: AP2, Pos: geom.Pt(36, 0), IsAP: true},
			{ID: C1, Pos: geom.Pt(8, 0)},
			{ID: C2, Pos: geom.Pt(c2FromAP1, 0)},
		},
		Flows: []Flow{
			{Src: C1, Dst: AP1},
			{Src: C2, Dst: AP2},
		},
	}
}

// Role classifies a client of the second AP relative to the measured
// C1→AP1 link (Fig. 9's ten configurations permute these roles).
type Role int

// Role values.
const (
	// RoleContender shares C1's channel via carrier sense.
	RoleContender Role = iota + 1
	// RoleHidden cannot sense C1 but interferes at AP1.
	RoleHidden
	// RoleIndependent neither senses C1 nor reaches AP1.
	RoleIndependent
)

// String implements fmt.Stringer.
func (r Role) String() string {
	switch r {
	case RoleContender:
		return "contender"
	case RoleHidden:
		return "hidden"
	case RoleIndependent:
		return "independent"
	default:
		return fmt.Sprintf("Role(%d)", int(r))
	}
}

// Role zone anchors in the NS-2 radio regime (20 dBm, α=3.3, Tcs=-80 dBm):
// the measured link is C1(0,0)→AP1(60,0). A contender sits well inside C1's
// ~103 m 90%-CS-miss range (it senses C1 reliably); a hidden terminal sits
// beyond it yet lands its signal at AP1 as strongly as C1's own (SIR ≈ 0 dB
// — every overlap corrupts the frame); an independent node is outside both
// C1's CS range and AP1's T_SIR=10 interference range (~271 m for a 60 m
// link). Multiple clients of the same role fan out perpendicular to the
// link axis.
var roleAnchors = map[Role]geom.Point{
	RoleContender:   geom.Pt(45, 25),
	RoleHidden:      geom.Pt(120, 0),
	RoleIndependent: geom.Pt(340, 0),
}

// rolePos places the i-th client of a role, spreading same-role clients
// 12 m apart perpendicular to the link axis.
func rolePos(r Role, i int) geom.Point {
	anchor := roleAnchors[r]
	return anchor.Add(geom.Vec(0, float64(i)*12))
}

// HTRoles builds a Fig. 9-style network: the measured link C1→AP1 plus one
// client per entry of roles. Contenders and hidden terminals associate with
// AP2 (placed so that even its ACK bursts stay SIR-harmless at AP1);
// independents are too far from AP2 and get their own AP3 (the paper's
// "independent node whose transmission has no impact on C1's" only requires
// an active unrelated link).
func HTRoles(roles []Role) Topology {
	t := Topology{
		Name: fmt.Sprintf("ht-roles-%v", roles),
		Nodes: []Node{
			{ID: AP1, Pos: geom.Pt(60, 0), IsAP: true},
			{ID: AP2, Pos: geom.Pt(140, 70), IsAP: true},
			{ID: AP3, Pos: geom.Pt(350, 40), IsAP: true},
			{ID: C1, Pos: geom.Pt(0, 0)},
		},
		Flows: []Flow{{Src: C1, Dst: AP1}},
	}
	counts := make(map[Role]int)
	for i, r := range roles {
		id := frame.NodeID(2 + i)
		t.Nodes = append(t.Nodes, Node{ID: id, Pos: rolePos(r, counts[r])})
		counts[r]++
		dst := AP2
		if r == RoleIndependent {
			dst = AP3
		}
		t.Flows = append(t.Flows, Flow{Src: id, Dst: dst})
	}
	return t
}

// Fig9Roles enumerates the ten distinct multisets of three roles over
// {contender, hidden, independent} — the paper's "10 different network
// topologies" formed by repositioning three clients.
func Fig9Roles() [][]Role {
	all := []Role{RoleContender, RoleHidden, RoleIndependent}
	var out [][]Role
	for i, a := range all {
		for j := i; j < len(all); j++ {
			for k := j; k < len(all); k++ {
				out = append(out, []Role{a, all[j], all[k]})
			}
		}
	}
	return out
}

// HTPayload is the Fig. 2 testbed shape in the NS-2 radio regime: the
// measured link C1→AP1 with nHidden hidden terminals (clients of AP2 placed
// in the hidden zone). nHidden = 0 places the second client in the
// independent zone instead, reproducing the "no HT" curve.
func HTPayload(nHidden int) Topology {
	roles := make([]Role, 0, maxInt(nHidden, 1))
	for i := 0; i < nHidden; i++ {
		roles = append(roles, RoleHidden)
	}
	if nHidden == 0 {
		roles = append(roles, RoleIndependent)
	}
	t := HTRoles(roles)
	t.Name = fmt.Sprintf("ht-payload-%dht", nHidden)
	return t
}

// Fig7 builds the model-validation network: the measured link C1→AP1 (60 m)
// with contenders clustered around C1 (all transmitting to AP1, mutual
// carrier sense) and hidden terminals clustered at 120 m (transmitting to
// their own AP2) whose signals land at AP1 as strongly as C1's — so any
// overlap corrupts the frame, matching the analytical model's collision
// assumption.
func Fig7(contenders, hidden int) Topology {
	t := Topology{
		Name: fmt.Sprintf("fig7-c%d-h%d", contenders, hidden),
		Nodes: []Node{
			{ID: AP1, Pos: geom.Pt(60, 0), IsAP: true},
			{ID: AP2, Pos: geom.Pt(180, 0), IsAP: true},
			{ID: C1, Pos: geom.Pt(0, 0)},
		},
		Flows: []Flow{{Src: C1, Dst: AP1}},
	}
	next := frame.NodeID(2)
	for i := 0; i < contenders; i++ {
		// Contenders ring C1 at 10 m: mutual carrier sense with C1 and each
		// other, same receiver.
		angle := 2 * math.Pi * float64(i) / float64(maxInt(contenders, 1))
		pos := geom.Pt(10*math.Cos(angle), 10*math.Sin(angle))
		t.Nodes = append(t.Nodes, Node{ID: next, Pos: pos})
		t.Flows = append(t.Flows, Flow{Src: next, Dst: AP1})
		next++
	}
	for i := 0; i < hidden; i++ {
		id := frame.NodeID(50 + i)
		angle := 2 * math.Pi * float64(i) / float64(maxInt(hidden, 1))
		pos := geom.Pt(120+8*math.Cos(angle), 8*math.Sin(angle))
		t.Nodes = append(t.Nodes, Node{ID: id, Pos: pos})
		t.Flows = append(t.Flows, Flow{Src: id, Dst: AP2})
	}
	return t
}

// LargeScale builds one Fig. 10 office-floor instance: three co-channel APs
// roughly 60 m apart and nine clients placed uniformly at random around
// them, each associated with its nearest AP, with two-way traffic on every
// client (uplink and downlink), as in Table I's setup.
func LargeScale(rng *rand.Rand) Topology {
	aps := []Node{
		{ID: AP1, Pos: geom.Pt(0, 0), IsAP: true},
		{ID: AP2, Pos: geom.Pt(95, 0), IsAP: true},
		{ID: AP3, Pos: geom.Pt(190, 0), IsAP: true},
	}
	t := Topology{Name: "large-scale", Nodes: aps}
	for i := 0; i < 9; i++ {
		// Place the client near a random AP, uniform in a 5–35 m annulus:
		// close enough that its uplink tolerates cross-cell concurrency,
		// far enough that exposed/hidden relations appear (matching the
		// paper's reported 47.6% ET / 19.4% HT link shares).
		home := aps[rng.Intn(len(aps))]
		radius := 5 + 30*math.Sqrt(rng.Float64())
		theta := 2 * math.Pi * rng.Float64()
		pos := home.Pos.Add(geom.Vec(radius*math.Cos(theta), radius*math.Sin(theta)))
		id := frame.NodeID(1 + i)
		t.Nodes = append(t.Nodes, Node{ID: id, Pos: pos})
		// Associate with the nearest AP (which may differ from the home AP
		// the position was drawn around).
		best := aps[0]
		for _, ap := range aps[1:] {
			if pos.DistanceTo(ap.Pos) < pos.DistanceTo(best.Pos) {
				best = ap
			}
		}
		t.Flows = append(t.Flows,
			Flow{Src: id, Dst: best.ID},
			Flow{Src: best.ID, Dst: id},
		)
	}
	return t
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
