package topology

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/frame"
	"repro/internal/geom"
)

// LocOp is one kind of trace-driven station event.
type LocOp int

// LocOp values.
const (
	// LocMove relocates a station (mobility step).
	LocMove LocOp = iota + 1
	// LocLeave churns the station off the network (traffic and location
	// pause; the radio stays registered, as in netsim's churn model).
	LocLeave
	// LocJoin brings a previously departed station back.
	LocJoin
)

// String implements fmt.Stringer.
func (op LocOp) String() string {
	switch op {
	case LocMove:
		return "move"
	case LocLeave:
		return "leave"
	case LocJoin:
		return "join"
	default:
		return fmt.Sprintf("LocOp(%d)", int(op))
	}
}

// LocEvent is one timestamped station event of a .loc trace.
type LocEvent struct {
	At   time.Duration
	Op   LocOp
	Node frame.NodeID
	Pos  geom.Point // meaningful for LocMove only
}

// LocTrace is a time-ordered station movement/churn script, the simulator's
// equivalent of the SFC_migration .loc files (per-slot "users that joined /
// users that moved" records). Events at equal times keep file order.
type LocTrace struct {
	Events []LocEvent
}

// ParseLocTrace reads the textual .loc format: one event per line,
//
//	<time> move <node> <x> <y>
//	<time> leave <node>
//	<time> join <node>
//
// where <time> is a Go duration ("1.5s", "300ms"). Blank lines and lines
// starting with '#' are skipped. Errors name the line number. Events are
// stably sorted by time so out-of-order files still replay deterministically.
func ParseLocTrace(r io.Reader) (*LocTrace, error) {
	tr := &LocTrace{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 3 {
			return nil, fmt.Errorf("loc trace line %d: want \"<time> <op> <node> [x y]\", got %q", lineNo, line)
		}
		at, err := time.ParseDuration(fields[0])
		if err != nil {
			return nil, fmt.Errorf("loc trace line %d: bad time %q: %v", lineNo, fields[0], err)
		}
		if at < 0 {
			return nil, fmt.Errorf("loc trace line %d: negative time %v", lineNo, at)
		}
		node, err := strconv.ParseUint(fields[2], 10, 16)
		if err != nil {
			return nil, fmt.Errorf("loc trace line %d: bad node id %q: %v", lineNo, fields[2], err)
		}
		ev := LocEvent{At: at, Node: frame.NodeID(node)}
		switch fields[1] {
		case "move":
			if len(fields) != 5 {
				return nil, fmt.Errorf("loc trace line %d: move wants \"<time> move <node> <x> <y>\"", lineNo)
			}
			x, errX := strconv.ParseFloat(fields[3], 64)
			y, errY := strconv.ParseFloat(fields[4], 64)
			if errX != nil || errY != nil || math.IsNaN(x) || math.IsNaN(y) || math.IsInf(x, 0) || math.IsInf(y, 0) {
				return nil, fmt.Errorf("loc trace line %d: bad coordinates %q %q", lineNo, fields[3], fields[4])
			}
			ev.Op = LocMove
			ev.Pos = geom.Pt(x, y)
		case "leave":
			if len(fields) != 3 {
				return nil, fmt.Errorf("loc trace line %d: leave wants \"<time> leave <node>\"", lineNo)
			}
			ev.Op = LocLeave
		case "join":
			if len(fields) != 3 {
				return nil, fmt.Errorf("loc trace line %d: join wants \"<time> join <node>\"", lineNo)
			}
			ev.Op = LocJoin
		default:
			return nil, fmt.Errorf("loc trace line %d: unknown op %q (want move, leave or join)", lineNo, fields[1])
		}
		tr.Events = append(tr.Events, ev)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("loc trace: %v", err)
	}
	sort.SliceStable(tr.Events, func(i, j int) bool { return tr.Events[i].At < tr.Events[j].At })
	return tr, nil
}

// WriteTo renders the trace in the textual .loc format ParseLocTrace reads.
func (tr *LocTrace) WriteTo(w io.Writer) (int64, error) {
	var total int64
	for _, ev := range tr.Events {
		var line string
		switch ev.Op {
		case LocMove:
			line = fmt.Sprintf("%s move %d %g %g\n", ev.At, ev.Node, ev.Pos.X, ev.Pos.Y)
		default:
			line = fmt.Sprintf("%s %s %d\n", ev.At, ev.Op, ev.Node)
		}
		n, err := io.WriteString(w, line)
		total += int64(n)
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// CityTraceConfig parameterizes SynthesizeCityTrace.
type CityTraceConfig struct {
	// Duration is the span events are generated for.
	Duration time.Duration
	// Tick is the mobility step cadence (default 100ms, the netsim walk
	// tick).
	Tick time.Duration
	// WalkerFraction is the share of stations that move (default 0.1).
	WalkerFraction float64
	// SpeedMps is the walker speed (default 1.5, pedestrian).
	SpeedMps float64
	// RoamRadiusMeters bounds each walker's wander around its start
	// position (default 150 m — far enough to cross shard-cell borders in
	// a city grid, near enough to keep its AP association meaningful).
	RoamRadiusMeters float64
	// ChurnFraction is the share of stations that leave and later rejoin
	// (default 0.05).
	ChurnFraction float64
}

func (c CityTraceConfig) withDefaults() CityTraceConfig {
	if c.Tick <= 0 {
		c.Tick = 100 * time.Millisecond
	}
	if c.WalkerFraction == 0 {
		c.WalkerFraction = 0.1
	}
	if c.SpeedMps <= 0 {
		c.SpeedMps = 1.5
	}
	if c.RoamRadiusMeters <= 0 {
		c.RoamRadiusMeters = 150
	}
	if c.ChurnFraction == 0 {
		c.ChurnFraction = 0.05
	}
	return c
}

// SynthesizeCityTrace generates a deterministic .loc trace for the non-AP
// stations of a topology: a fraction of stations random-walk waypoint legs
// inside a roam disc around their start position (clamped to the world), and
// a fraction churns off and back on. All draws come from rng, so a (seed,
// topology, config) triple always yields the same trace.
func SynthesizeCityTrace(top Topology, rng *rand.Rand, cfg CityTraceConfig) *LocTrace {
	cfg = cfg.withDefaults()
	tr := &LocTrace{}
	var stations []Node
	for _, n := range top.Nodes {
		if !n.IsAP {
			stations = append(stations, n)
		}
	}
	if len(stations) == 0 || cfg.Duration <= cfg.Tick {
		return tr
	}
	nWalk := int(float64(len(stations)) * cfg.WalkerFraction)
	nChurn := int(float64(len(stations)) * cfg.ChurnFraction)
	// Walkers first, churners from the tail, so the two sets never overlap
	// (a departed walker would emit moves while off the network).
	for i := 0; i < nWalk && i < len(stations); i++ {
		st := stations[i]
		pos := st.Pos
		home := st.Pos
		dest := roamPoint(rng, home, cfg.RoamRadiusMeters, top.World)
		for at := cfg.Tick; at <= cfg.Duration; at += cfg.Tick {
			step := cfg.SpeedMps * cfg.Tick.Seconds()
			for {
				d := pos.DistanceTo(dest)
				if d > step {
					pos = geom.OnLine(pos, dest, step)
					break
				}
				// Arrived mid-tick: spend the remainder toward a new waypoint.
				step -= d
				pos = dest
				dest = roamPoint(rng, home, cfg.RoamRadiusMeters, top.World)
			}
			tr.Events = append(tr.Events, LocEvent{At: at, Op: LocMove, Node: st.ID, Pos: pos})
		}
	}
	for i := 0; i < nChurn; i++ {
		j := len(stations) - 1 - i
		if j < nWalk {
			break
		}
		st := stations[j]
		span := cfg.Duration.Seconds()
		leave := time.Duration((0.1 + 0.4*rng.Float64()) * span * float64(time.Second))
		back := leave + time.Duration((0.1+0.3*rng.Float64())*span*float64(time.Second))
		tr.Events = append(tr.Events, LocEvent{At: leave, Op: LocLeave, Node: st.ID})
		if back < cfg.Duration {
			tr.Events = append(tr.Events, LocEvent{At: back, Op: LocJoin, Node: st.ID})
		}
	}
	sort.SliceStable(tr.Events, func(i, j int) bool { return tr.Events[i].At < tr.Events[j].At })
	return tr
}

// roamPoint draws a uniform waypoint in the roam disc around home, clamped
// into the world when a grid is present.
func roamPoint(rng *rand.Rand, home geom.Point, radius float64, world *Grid) geom.Point {
	r := radius * math.Sqrt(rng.Float64())
	theta := 2 * math.Pi * rng.Float64()
	p := home.Add(geom.Vec(r*math.Cos(theta), r*math.Sin(theta)))
	if world != nil {
		o := world.Origin()
		p.X = clamp(p.X, o.X, o.X+world.SizeMeters())
		p.Y = clamp(p.Y, o.Y, o.Y+world.SizeMeters())
	}
	return p
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
