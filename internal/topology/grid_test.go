package topology

import (
	"math"
	"strings"
	"testing"

	"repro/internal/geom"
)

func TestNewGridRejectsBadInputs(t *testing.T) {
	cases := []struct {
		name   string
		origin geom.Point
		size   float64
		order  int
		want   string
	}{
		{"zero size", geom.Pt(0, 0), 0, 2, "positive"},
		{"negative size", geom.Pt(0, 0), -10, 2, "positive"},
		{"nan size", geom.Pt(0, 0), math.NaN(), 2, "positive"},
		{"inf size", geom.Pt(0, 0), math.Inf(1), 2, "positive"},
		{"nan origin", geom.Pt(math.NaN(), 0), 100, 2, "origin"},
		{"inf origin", geom.Pt(0, math.Inf(-1)), 100, 2, "origin"},
		{"negative order", geom.Pt(0, 0), 100, -1, "order"},
		{"huge order", geom.Pt(0, 0), 100, MaxGridOrder + 1, "order"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := NewGrid(tc.origin, tc.size, tc.order)
			if err == nil {
				t.Fatalf("NewGrid(%v, %g, %d) accepted bad input", tc.origin, tc.size, tc.order)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestGridGeometry(t *testing.T) {
	g, err := NewGrid(geom.Pt(10, 20), 400, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got := g.Cells(); got != 16 {
		t.Fatalf("Cells() = %d, want 16", got)
	}
	if got := g.Side(); got != 4 {
		t.Fatalf("Side() = %d, want 4", got)
	}
	if got := g.CellSizeMeters(); got != 100 {
		t.Fatalf("CellSizeMeters() = %g, want 100", got)
	}
	// Morton round trip for every cell.
	for c := 0; c < g.Cells(); c++ {
		row, col := g.CellRowCol(c)
		if row < 0 || row >= 4 || col < 0 || col >= 4 {
			t.Fatalf("cell %d decodes to out-of-range (%d, %d)", c, row, col)
		}
		center := g.CellCenter(c)
		back, err := g.CellOf(center)
		if err != nil {
			t.Fatalf("CellOf(center of %d): %v", c, err)
		}
		if back != c {
			t.Fatalf("CellOf(CellCenter(%d)) = %d", c, back)
		}
	}
	// z-order: cell 0 is the origin quadrant corner; cell 3 is its diagonal.
	if r, c := g.CellRowCol(0); r != 0 || c != 0 {
		t.Fatalf("cell 0 at (%d, %d), want (0, 0)", r, c)
	}
	if r, c := g.CellRowCol(3); r != 1 || c != 1 {
		t.Fatalf("cell 3 at (%d, %d), want (1, 1) under z-order", r, c)
	}
}

func TestCellOfErrorsOutsideWorld(t *testing.T) {
	g, err := NewGrid(geom.Pt(0, 0), 100, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !g.Contains(geom.Pt(100, 100)) {
		t.Fatal("far corner should be inside (inclusive bounds)")
	}
	for _, p := range []geom.Point{geom.Pt(-1, 50), geom.Pt(50, -0.5), geom.Pt(101, 50), geom.Pt(50, 100.1)} {
		if _, err := g.CellOf(p); err == nil {
			t.Fatalf("CellOf(%v) accepted an outside point", p)
		} else if !strings.Contains(err.Error(), "outside grid") {
			t.Fatalf("CellOf(%v) error %q does not describe the bounds", p, err)
		}
		// The clamped variant maps it to a valid edge cell instead.
		c := g.ClampedCellOf(p)
		if c < 0 || c >= g.Cells() {
			t.Fatalf("ClampedCellOf(%v) = %d out of range", p, c)
		}
	}
}

func TestMinCellDistance(t *testing.T) {
	g, err := NewGrid(geom.Pt(0, 0), 400, 2) // 4×4 cells of 100 m
	if err != nil {
		t.Fatal(err)
	}
	cell := func(row, col int) int {
		return int(interleave(uint32(row))<<1 | interleave(uint32(col)))
	}
	if d := g.MinCellDistance(cell(0, 0), cell(0, 0)); d != 0 {
		t.Fatalf("same cell distance %g", d)
	}
	if d := g.MinCellDistance(cell(0, 0), cell(1, 1)); d != 0 {
		t.Fatalf("diagonal-adjacent distance %g, want 0", d)
	}
	if d := g.MinCellDistance(cell(0, 0), cell(0, 2)); d != 100 {
		t.Fatalf("one-gap distance %g, want 100", d)
	}
	if d := g.MinCellDistance(cell(0, 0), cell(3, 3)); math.Abs(d-200*math.Sqrt2) > 1e-9 {
		t.Fatalf("far diagonal distance %g, want %g", d, 200*math.Sqrt2)
	}
}

func TestCellsWithin(t *testing.T) {
	g, err := NewGrid(geom.Pt(0, 0), 400, 2)
	if err != nil {
		t.Fatal(err)
	}
	center := g.ClampedCellOf(geom.Pt(150, 150)) // cell (1,1)

	// Radius 0 still reaches every adjacent cell (min distance 0).
	got := g.CellsWithin(center, 0)
	if len(got) != 9 {
		t.Fatalf("CellsWithin(r=0) returned %d cells, want the 3×3 block", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i-1] >= got[i] {
			t.Fatalf("result not strictly ascending: %v", got)
		}
	}
	// Radius past one full cell reaches the 4×4 world minus nothing.
	if got := g.CellsWithin(center, 150); len(got) != 16 {
		t.Fatalf("CellsWithin(r=150) returned %d cells, want all 16", len(got))
	}
	// +Inf means everything, from any cell.
	if got := g.CellsWithin(0, math.Inf(1)); len(got) != g.Cells() {
		t.Fatalf("CellsWithin(+Inf) returned %d cells", len(got))
	}
	// Every returned cell really is within the radius; every omitted one is not.
	const r = 120.0
	within := make(map[int32]bool)
	for _, c := range g.CellsWithin(center, r) {
		within[c] = true
	}
	for c := 0; c < g.Cells(); c++ {
		d := g.MinCellDistance(center, c)
		if (d <= r) != within[int32(c)] {
			t.Fatalf("cell %d at min distance %g: within=%v", c, d, within[int32(c)])
		}
	}
}
