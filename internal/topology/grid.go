package topology

import (
	"fmt"
	"math"

	"repro/internal/geom"
)

// MaxGridOrder bounds the grid resolution: 4^8 = 65,536 cells is already far
// finer than any audibility radius warrants, and per-cell bookkeeping beyond
// it costs more than it prunes.
const MaxGridOrder = 8

// Grid partitions a square world into 4^order equal square cells, indexed in
// quadtree (Morton / z-order) fashion: at every level the world quadrant
// contributes two bits, the y half the higher one — the loc→cell scheme of
// the SFC_migration loc2ap exemplar. The same grid doubles as the loc→AP
// mapping: an AP layer is just a coarser Grid whose cell index names the AP
// covering a location.
//
// A Grid is immutable after construction and safe for concurrent readers.
type Grid struct {
	origin geom.Point
	size   float64 // world edge length, meters
	order  int     // cells = 4^order, side = 2^order
	side   int
	cell   float64 // cell edge length, meters
}

// NewGrid builds a grid over the square [origin, origin+size)² split into
// 4^order cells. It rejects non-positive or non-finite world sizes and
// out-of-range orders with a descriptive error instead of clamping.
func NewGrid(origin geom.Point, sizeMeters float64, order int) (*Grid, error) {
	if math.IsNaN(sizeMeters) || math.IsInf(sizeMeters, 0) || sizeMeters <= 0 {
		return nil, fmt.Errorf("topology: grid world size must be positive and finite, got %g m", sizeMeters)
	}
	if math.IsNaN(origin.X) || math.IsNaN(origin.Y) || math.IsInf(origin.X, 0) || math.IsInf(origin.Y, 0) {
		return nil, fmt.Errorf("topology: grid origin must be finite, got %v", origin)
	}
	if order < 0 || order > MaxGridOrder {
		return nil, fmt.Errorf("topology: grid order must be in [0, %d], got %d", MaxGridOrder, order)
	}
	side := 1 << order
	return &Grid{
		origin: origin,
		size:   sizeMeters,
		order:  order,
		side:   side,
		cell:   sizeMeters / float64(side),
	}, nil
}

// Origin returns the world's minimum corner.
func (g *Grid) Origin() geom.Point { return g.origin }

// SizeMeters returns the world edge length.
func (g *Grid) SizeMeters() float64 { return g.size }

// Order returns the power-of-4 exponent (Cells() == 4^Order()).
func (g *Grid) Order() int { return g.order }

// Cells returns the number of cells, always a power of 4.
func (g *Grid) Cells() int { return g.side * g.side }

// Side returns the number of cells per axis (2^order).
func (g *Grid) Side() int { return g.side }

// CellSizeMeters returns one cell's edge length.
func (g *Grid) CellSizeMeters() float64 { return g.cell }

// Contains reports whether p lies inside the world (both bounds inclusive,
// so stations placed exactly on the far edge are valid).
func (g *Grid) Contains(p geom.Point) bool {
	return p.X >= g.origin.X && p.X <= g.origin.X+g.size &&
		p.Y >= g.origin.Y && p.Y <= g.origin.Y+g.size
}

// CellOf maps a location to its Morton cell index. Locations outside the
// world are an error naming the offending coordinate and the bounds — the
// caller decides whether clamping is acceptable (see ClampedCellOf).
func (g *Grid) CellOf(p geom.Point) (int, error) {
	if !g.Contains(p) {
		return 0, fmt.Errorf("topology: point %v outside grid [%g, %g]×[%g, %g]",
			p, g.origin.X, g.origin.X+g.size, g.origin.Y, g.origin.Y+g.size)
	}
	return g.ClampedCellOf(p), nil
}

// ClampedCellOf maps a location to its Morton cell index, clamping
// out-of-world coordinates to the nearest edge cell. Use only for
// mid-run drift (mobility integrating slightly past the boundary); initial
// placements go through CellOf / Topology.Validate.
func (g *Grid) ClampedCellOf(p geom.Point) int {
	col := g.axisCell(p.X - g.origin.X)
	row := g.axisCell(p.Y - g.origin.Y)
	return int(interleave(uint32(row))<<1 | interleave(uint32(col)))
}

// axisCell maps a world-relative coordinate to a clamped cell ordinate.
func (g *Grid) axisCell(v float64) int {
	i := int(math.Floor(v / g.cell))
	if i < 0 {
		return 0
	}
	if i >= g.side {
		return g.side - 1
	}
	return i
}

// CellRowCol decodes a Morton cell index into (row, col).
func (g *Grid) CellRowCol(c int) (row, col int) {
	return int(compact(uint32(c) >> 1)), int(compact(uint32(c)))
}

// CellRect returns a cell's axis-aligned bounds.
func (g *Grid) CellRect(c int) (min, max geom.Point) {
	row, col := g.CellRowCol(c)
	min = geom.Pt(g.origin.X+float64(col)*g.cell, g.origin.Y+float64(row)*g.cell)
	max = geom.Pt(min.X+g.cell, min.Y+g.cell)
	return min, max
}

// CellCenter returns a cell's center point — where the AP layer places its
// access points.
func (g *Grid) CellCenter(c int) geom.Point {
	min, _ := g.CellRect(c)
	return geom.Pt(min.X+g.cell/2, min.Y+g.cell/2)
}

// MinCellDistance returns the minimum distance between any point of cell a
// and any point of cell b (0 for the same or adjacent cells). It is the
// lower bound the sharded channel tests against the audibility radius: if
// even this distance attenuates every signal below the floor, no station
// pair across the two cells can ever be audible.
func (g *Grid) MinCellDistance(a, b int) float64 {
	ra, ca := g.CellRowCol(a)
	rb, cb := g.CellRowCol(b)
	dx := axisGap(ca, cb) * g.cell
	dy := axisGap(ra, rb) * g.cell
	return math.Hypot(dx, dy)
}

// axisGap returns the number of whole cells strictly between ordinates a and
// b (0 when equal or adjacent).
func axisGap(a, b int) float64 {
	d := a - b
	if d < 0 {
		d = -d
	}
	if d <= 1 {
		return 0
	}
	return float64(d - 1)
}

// CellsWithin returns, in ascending Morton order, every cell whose minimum
// distance to cell c is at most radius (always including c itself). A
// non-finite radius returns all cells. The scan is bounded to the rows and
// columns the radius can reach, so cost is O(k) in the result size, not
// O(Cells).
func (g *Grid) CellsWithin(c int, radius float64) []int32 {
	if math.IsNaN(radius) || radius < 0 {
		radius = 0
	}
	out := make([]int32, 0, 16)
	if math.IsInf(radius, 1) {
		for i := 0; i < g.Cells(); i++ {
			out = append(out, int32(i))
		}
		return out
	}
	row, col := g.CellRowCol(c)
	// A cell at axis gap k has min axis distance (k-1)·cell, so the radius
	// reaches gaps up to floor(radius/cell)+1.
	reach := int(radius/g.cell) + 1
	lo := func(v int) int {
		if v -= reach; v < 0 {
			v = 0
		}
		return v
	}
	hi := func(v int) int {
		if v += reach; v >= g.side {
			v = g.side - 1
		}
		return v
	}
	for r := lo(row); r <= hi(row); r++ {
		for cc := lo(col); cc <= hi(col); cc++ {
			cand := int(interleave(uint32(r))<<1 | interleave(uint32(cc)))
			if g.MinCellDistance(c, cand) <= radius {
				out = append(out, int32(cand))
			}
		}
	}
	sortInt32s(out)
	return out
}

// interleave spreads the low 16 bits of v so bit i lands at position 2i
// (Morton part1by1).
func interleave(v uint32) uint32 {
	v &= 0x0000ffff
	v = (v | v<<8) & 0x00ff00ff
	v = (v | v<<4) & 0x0f0f0f0f
	v = (v | v<<2) & 0x33333333
	v = (v | v<<1) & 0x55555555
	return v
}

// compact is the inverse of interleave: it gathers every even bit of v.
func compact(v uint32) uint32 {
	v &= 0x55555555
	v = (v | v>>1) & 0x33333333
	v = (v | v>>2) & 0x0f0f0f0f
	v = (v | v>>4) & 0x00ff00ff
	v = (v | v>>8) & 0x0000ffff
	return v
}

// sortInt32s sorts ascending (insertion sort: CellsWithin emits
// near-sorted row-major runs and result sizes are small).
func sortInt32s(s []int32) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
