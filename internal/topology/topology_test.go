package topology

import (
	"math/rand"
	"testing"

	"repro/internal/frame"
	"repro/internal/geom"
	"repro/internal/radio"
)

func TestAllBuildersValidate(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	tops := []Topology{
		ETSweep(12), ETSweep(36),
		HTPayload(0), HTPayload(1), HTPayload(3),
		Fig7(5, 0), Fig7(5, 3), Fig7(5, 5), Fig7(0, 0),
		LargeScale(rng),
	}
	for _, roles := range Fig9Roles() {
		tops = append(tops, HTRoles(roles))
	}
	for _, top := range tops {
		if err := top.Validate(); err != nil {
			t.Errorf("%s: %v", top.Name, err)
		}
	}
}

func TestValidateCatchesErrors(t *testing.T) {
	dup := Topology{Name: "dup", Nodes: []Node{{ID: 1}, {ID: 1}}}
	if dup.Validate() == nil {
		t.Error("duplicate node accepted")
	}
	missing := Topology{Name: "missing", Nodes: []Node{{ID: 1}}, Flows: []Flow{{Src: 1, Dst: 2}}}
	if missing.Validate() == nil {
		t.Error("missing flow endpoint accepted")
	}
	self := Topology{Name: "self", Nodes: []Node{{ID: 1}}, Flows: []Flow{{Src: 1, Dst: 1}}}
	if self.Validate() == nil {
		t.Error("self flow accepted")
	}
}

func TestNodeLookupAndSenders(t *testing.T) {
	top := ETSweep(20)
	n, ok := top.Node(C1)
	if !ok || n.Pos != geom.Pt(8, 0) {
		t.Errorf("C1 = %+v ok=%v", n, ok)
	}
	if _, ok := top.Node(99); ok {
		t.Error("missing node found")
	}
	s := top.Senders()
	if len(s) != 2 || s[0] != C1 || s[1] != C2 {
		t.Errorf("Senders = %v", s)
	}
}

func TestETSweepGeometry(t *testing.T) {
	top := ETSweep(25)
	c2, _ := top.Node(C2)
	ap1, _ := top.Node(AP1)
	if got := c2.Pos.DistanceTo(ap1.Pos); got != 25 {
		t.Errorf("C2-AP1 distance = %v", got)
	}
	// In the ET region, C1 and C2 are inside each other's deterministic CS
	// range under the testbed model (0 dBm, alpha 2.9, Tcs -81: ~26 m).
	model := radio.NewLogNormal2400(2.9, 4)
	csRange := model.MeanRangeFor(0, -81)
	c1, _ := top.Node(C1)
	if d := c1.Pos.DistanceTo(c2.Pos); d >= csRange {
		t.Errorf("C1-C2 distance %v not inside CS range %v", d, csRange)
	}
}

func TestFig9RolesEnumeration(t *testing.T) {
	roles := Fig9Roles()
	if len(roles) != 10 {
		t.Fatalf("Fig9Roles returned %d configurations, want 10", len(roles))
	}
	seen := make(map[string]bool)
	for _, r := range roles {
		if len(r) != 3 {
			t.Fatalf("config %v has %d roles", r, len(r))
		}
		key := r[0].String() + r[1].String() + r[2].String()
		if seen[key] {
			t.Errorf("duplicate configuration %v", r)
		}
		seen[key] = true
	}
}

func TestHTRolesZones(t *testing.T) {
	// Verify the role anchors land in the intended zones under the NS-2
	// model (20 dBm, alpha 3.3, sigma 5, Tcs -80).
	model := radio.NewLogNormal2400(3.3, 5)
	top := HTRoles([]Role{RoleContender, RoleHidden, RoleIndependent})
	c1, _ := top.Node(C1)
	ap1, _ := top.Node(AP1)

	contender, _ := top.Node(2)
	hidden, _ := top.Node(3)
	indep, _ := top.Node(4)

	// Contender senses C1 with high probability.
	if p := model.ProbBelowCS(-80, 20, c1.Pos.DistanceTo(contender.Pos)); p > 0.5 {
		t.Errorf("contender CS-miss prob = %v, want low", p)
	}
	// Hidden node misses C1 with > 90% probability (the paper's HT rule)...
	if p := model.ProbBelowCS(-80, 20, c1.Pos.DistanceTo(hidden.Pos)); p <= 0.9 {
		t.Errorf("hidden CS-miss prob = %v, want > 0.9", p)
	}
	// ...and still threatens AP1's reception (PRR below 95%).
	d := c1.Pos.DistanceTo(ap1.Pos)
	r := hidden.Pos.DistanceTo(ap1.Pos)
	if prr := model.PRR(10, d, r); prr >= 0.95 {
		t.Errorf("hidden node PRR impact = %v, want < 0.95", prr)
	}
	// Independent node neither senses C1 nor threatens AP1.
	if p := model.ProbBelowCS(-80, 20, c1.Pos.DistanceTo(indep.Pos)); p <= 0.9 {
		t.Errorf("independent CS-miss prob = %v, want > 0.9", p)
	}
	if prr := model.PRR(10, d, indep.Pos.DistanceTo(ap1.Pos)); prr < 0.95 {
		t.Errorf("independent node harms the link: PRR %v", prr)
	}
}

func TestHTRolesSpreadsSameRoleClients(t *testing.T) {
	top := HTRoles([]Role{RoleHidden, RoleHidden, RoleHidden})
	a, _ := top.Node(2)
	b, _ := top.Node(3)
	c, _ := top.Node(4)
	if a.Pos == b.Pos || b.Pos == c.Pos || a.Pos == c.Pos {
		t.Error("same-role clients must not overlap")
	}
}

func TestHTPayload(t *testing.T) {
	none := HTPayload(0)
	if len(none.Nodes) != 5 { // 3 APs + C1 + 1 independent client
		t.Errorf("HTPayload(0) nodes = %d", len(none.Nodes))
	}
	three := HTPayload(3)
	if len(three.Nodes) != 7 {
		t.Errorf("HTPayload(3) nodes = %d", len(three.Nodes))
	}
}

func TestFig7Population(t *testing.T) {
	top := Fig7(5, 3)
	clients, hts := 0, 0
	for _, n := range top.Nodes {
		if n.IsAP {
			continue
		}
		if n.ID >= 50 {
			hts++
		} else {
			clients++
		}
	}
	if clients != 6 { // C1 + 5 contenders
		t.Errorf("clients = %d", clients)
	}
	if hts != 3 {
		t.Errorf("hidden terminals = %d", hts)
	}
	// All contenders mutually within the NS-2 CS range (~66 m): max pairwise
	// distance on the 10 m ring is 20 m.
	model := radio.NewLogNormal2400(3.3, 5)
	cs := model.MeanRangeFor(20, -80)
	for _, a := range top.Nodes {
		for _, b := range top.Nodes {
			if a.IsAP || b.IsAP || a.ID >= 50 || b.ID >= 50 || a.ID == b.ID {
				continue
			}
			if d := a.Pos.DistanceTo(b.Pos); d >= cs {
				t.Errorf("contenders %d-%d at %v m exceed CS range %v", a.ID, b.ID, d, cs)
			}
		}
	}
}

func TestLargeScaleProperties(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		rng := rand.New(rand.NewSource(seed))
		top := LargeScale(rng)
		if err := top.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		aps, clients := 0, 0
		for _, n := range top.Nodes {
			if n.IsAP {
				aps++
			} else {
				clients++
			}
		}
		if aps != 3 || clients != 9 {
			t.Fatalf("seed %d: %d APs, %d clients", seed, aps, clients)
		}
		if len(top.Flows) != 18 {
			t.Fatalf("seed %d: %d flows, want 18 (two-way per client)", seed, len(top.Flows))
		}
		// Every client's flow destination is its nearest AP.
		for _, f := range top.Flows {
			if f.Src >= 100 {
				continue // downlink
			}
			client, _ := top.Node(f.Src)
			ap, _ := top.Node(f.Dst)
			for _, n := range top.Nodes {
				if n.IsAP && client.Pos.DistanceTo(n.Pos) < client.Pos.DistanceTo(ap.Pos)-1e-9 {
					t.Errorf("seed %d: client %d associated with %d but %d is closer",
						seed, f.Src, f.Dst, n.ID)
				}
			}
		}
	}
}

func TestRoleString(t *testing.T) {
	if RoleContender.String() != "contender" || RoleHidden.String() != "hidden" ||
		RoleIndependent.String() != "independent" {
		t.Error("role strings wrong")
	}
	if Role(42).String() == "" {
		t.Error("unknown role should stringify")
	}
}

var _ = frame.NodeID(0)
