package topology

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/frame"
	"repro/internal/geom"
)

// CityStationBase is the first station ID of city-scale topologies. City
// stations start above the AP range (APs occupy 101..100+nAPs) so a
// 1,000-station layout never collides with the AP ID convention.
const CityStationBase frame.NodeID = 1001

// CityAPBase is the first AP ID of city-scale topologies, continuing the
// "APs start at 101" convention.
const CityAPBase frame.NodeID = 101

// CityConfig parameterizes the city-scale topology generator.
type CityConfig struct {
	// Stations is the number of client stations (≥ 1).
	Stations int
	// WorldMeters is the square world edge length.
	WorldMeters float64
	// APOrder sets the AP layer: 4^APOrder access points, one at the
	// center of each cell of a power-of-4 AP grid. Every station is
	// associated with the AP whose grid cell contains it — the quadtree
	// loc→AP mapping.
	APOrder int
	// CellOrder sets the channel shard grid: 4^CellOrder cells. Must be at
	// least APOrder (shard cells at least as fine as AP cells).
	CellOrder int
	// Seed drives station placement and must be fixed for reproducible
	// topologies.
	Seed int64
	// AnnulusMinMeters / AnnulusMaxMeters bound the uniform annulus around
	// a station's home AP center where it is placed — near enough for a
	// live uplink under the city radio regime, far enough for contention
	// and cell-boundary structure. Defaults 10 / 80.
	AnnulusMinMeters float64
	AnnulusMaxMeters float64
}

// DefaultCityConfig is the canonical 1k-station city: a 3 km square served
// by 64 APs (order 3) sharded into 256 channel cells (order 4).
func DefaultCityConfig(stations int, seed int64) CityConfig {
	return CityConfig{
		Stations:         stations,
		WorldMeters:      3000,
		APOrder:          3,
		CellOrder:        4,
		Seed:             seed,
		AnnulusMinMeters: 10,
		AnnulusMaxMeters: 80,
	}
}

// CityScale builds a city topology: 4^APOrder APs on the centers of a
// power-of-4 AP grid, Stations clients placed uniformly in an annulus
// around seeded-random AP centers, each with a saturated uplink flow to the
// AP covering its location (loc→AP by containing AP cell, which for a
// uniform center grid is also the nearest AP). The returned topology carries
// the shard grid in World, so netsim builds a cell-sharded channel.
func CityScale(cfg CityConfig) (Topology, error) {
	if cfg.AnnulusMinMeters == 0 && cfg.AnnulusMaxMeters == 0 {
		cfg.AnnulusMinMeters, cfg.AnnulusMaxMeters = 10, 80
	}
	if cfg.Stations < 1 {
		return Topology{}, fmt.Errorf("topology: city wants at least 1 station, got %d", cfg.Stations)
	}
	if cfg.CellOrder < cfg.APOrder {
		return Topology{}, fmt.Errorf("topology: city shard order %d must be >= AP order %d", cfg.CellOrder, cfg.APOrder)
	}
	if cfg.AnnulusMinMeters < 0 || cfg.AnnulusMaxMeters < cfg.AnnulusMinMeters {
		return Topology{}, fmt.Errorf("topology: bad city annulus [%g, %g]", cfg.AnnulusMinMeters, cfg.AnnulusMaxMeters)
	}
	world, err := NewGrid(geom.Pt(0, 0), cfg.WorldMeters, cfg.CellOrder)
	if err != nil {
		return Topology{}, err
	}
	apGrid, err := NewGrid(geom.Pt(0, 0), cfg.WorldMeters, cfg.APOrder)
	if err != nil {
		return Topology{}, err
	}
	nAPs := apGrid.Cells()
	if int(CityAPBase)+nAPs > int(CityStationBase) {
		return Topology{}, fmt.Errorf("topology: city AP order %d yields %d APs, overflowing the AP ID range", cfg.APOrder, nAPs)
	}

	t := Topology{
		Name:  fmt.Sprintf("city-%ds-%dap", cfg.Stations, nAPs),
		World: world,
	}
	for c := 0; c < nAPs; c++ {
		t.Nodes = append(t.Nodes, Node{
			ID:   CityAPBase + frame.NodeID(c),
			Pos:  apGrid.CellCenter(c),
			IsAP: true,
		})
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	half := apGrid.CellSizeMeters() / 2
	if cfg.AnnulusMaxMeters > half {
		return Topology{}, fmt.Errorf("topology: city annulus max %g m exceeds the half AP cell (%g m); stations would spill into foreign AP cells",
			cfg.AnnulusMaxMeters, half)
	}
	for i := 0; i < cfg.Stations; i++ {
		home := apGrid.CellCenter(rng.Intn(nAPs))
		// Uniform in the annulus, rejected (and redrawn) if it would leave
		// the home AP cell — association by containing cell then always
		// matches the placement AP, keeping every uplink short.
		var pos geom.Point
		for {
			radius := cfg.AnnulusMinMeters + (cfg.AnnulusMaxMeters-cfg.AnnulusMinMeters)*math.Sqrt(rng.Float64())
			theta := 2 * math.Pi * rng.Float64()
			pos = home.Add(geom.Vec(radius*math.Cos(theta), radius*math.Sin(theta)))
			if math.Abs(pos.X-home.X) <= half && math.Abs(pos.Y-home.Y) <= half && world.Contains(pos) {
				break
			}
		}
		id := CityStationBase + frame.NodeID(i)
		apCell, err := apGrid.CellOf(pos)
		if err != nil {
			return Topology{}, fmt.Errorf("topology: city station %d: %w", id, err)
		}
		t.Nodes = append(t.Nodes, Node{ID: id, Pos: pos})
		t.Flows = append(t.Flows, Flow{Src: id, Dst: CityAPBase + frame.NodeID(apCell)})
	}
	if err := t.Validate(); err != nil {
		return Topology{}, err
	}
	return t, nil
}
