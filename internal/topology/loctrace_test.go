package topology

import (
	"math/rand"
	"strings"
	"testing"
	"time"

	"repro/internal/geom"
)

func TestParseLocTrace(t *testing.T) {
	const src = `# comment, then a blank line

500ms move 1001 12.5 -3
1s leave 1002
2s join 1002
250ms move 1003 0 0
`
	tr, err := ParseLocTrace(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Events) != 4 {
		t.Fatalf("parsed %d events, want 4", len(tr.Events))
	}
	// Sorted by time: the 250ms move leads despite appearing last.
	if tr.Events[0].Node != 1003 || tr.Events[0].Op != LocMove {
		t.Fatalf("first event = %+v, want the 250ms move", tr.Events[0])
	}
	ev := tr.Events[1]
	if ev.At != 500*time.Millisecond || ev.Op != LocMove || ev.Node != 1001 || ev.Pos != geom.Pt(12.5, -3) {
		t.Fatalf("second event = %+v", ev)
	}
	if tr.Events[2].Op != LocLeave || tr.Events[3].Op != LocJoin {
		t.Fatalf("churn events out of order: %+v %+v", tr.Events[2], tr.Events[3])
	}
}

func TestParseLocTraceErrorsNameLines(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"short line", "1s move\n", "line 1"},
		{"bad time", "xyz move 1 0 0\n", "bad time"},
		{"negative time", "-1s move 1 0 0\n", "negative time"},
		{"bad node", "1s move 99999 0 0\n", "bad node id"},
		{"bad op", "1s teleport 1\n", "unknown op"},
		{"move arity", "1s move 1 5\n", "move wants"},
		{"leave arity", "1s leave 1 5\n", "leave wants"},
		{"nan coord", "1s move 1 NaN 0\n", "bad coordinates"},
		{"line number", "# ok\n1s move 1 0 0\nbroken\n", "line 3"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseLocTrace(strings.NewReader(tc.src))
			if err == nil {
				t.Fatalf("accepted %q", tc.src)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not contain %q", err, tc.want)
			}
		})
	}
}

func TestLocTraceRoundTrip(t *testing.T) {
	top, err := CityScale(DefaultCityConfig(40, 7))
	if err != nil {
		t.Fatal(err)
	}
	tr := SynthesizeCityTrace(top, rand.New(rand.NewSource(11)), CityTraceConfig{Duration: 2 * time.Second})
	if len(tr.Events) == 0 {
		t.Fatal("synthesized trace is empty")
	}
	var sb strings.Builder
	if _, err := tr.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	back, err := ParseLocTrace(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatalf("reparse: %v", err)
	}
	if len(back.Events) != len(tr.Events) {
		t.Fatalf("round trip changed event count: %d != %d", len(back.Events), len(tr.Events))
	}
	for i := range tr.Events {
		if tr.Events[i] != back.Events[i] {
			t.Fatalf("event %d changed: %+v != %+v", i, tr.Events[i], back.Events[i])
		}
	}
}

func TestSynthesizeCityTraceDeterministicAndDisjoint(t *testing.T) {
	top, err := CityScale(DefaultCityConfig(60, 3))
	if err != nil {
		t.Fatal(err)
	}
	cfg := CityTraceConfig{Duration: 3 * time.Second}
	a := SynthesizeCityTrace(top, rand.New(rand.NewSource(5)), cfg)
	b := SynthesizeCityTrace(top, rand.New(rand.NewSource(5)), cfg)
	if len(a.Events) != len(b.Events) {
		t.Fatalf("same seed, different event counts: %d != %d", len(a.Events), len(b.Events))
	}
	for i := range a.Events {
		if a.Events[i] != b.Events[i] {
			t.Fatalf("same seed diverges at event %d", i)
		}
	}
	movers, churners := map[int]bool{}, map[int]bool{}
	for _, ev := range a.Events {
		switch ev.Op {
		case LocMove:
			movers[int(ev.Node)] = true
			if !top.World.Contains(ev.Pos) {
				t.Fatalf("move of node %d leaves the world: %v", ev.Node, ev.Pos)
			}
		case LocLeave, LocJoin:
			churners[int(ev.Node)] = true
		}
	}
	if len(movers) == 0 || len(churners) == 0 {
		t.Fatalf("want both walkers and churners, got %d / %d", len(movers), len(churners))
	}
	for id := range churners {
		if movers[id] {
			t.Fatalf("node %d both walks and churns; the sets must be disjoint", id)
		}
	}
}
