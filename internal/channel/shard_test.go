package channel

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"time"

	"repro/internal/audit"
	"repro/internal/frame"
	"repro/internal/geom"
	"repro/internal/phy"
	"repro/internal/radio"
	"repro/internal/sim"
	"repro/internal/topology"
)

// shardFixture builds a medium over a scattered field of stations, optionally
// sharded by a grid, and exercises a deterministic schedule of transmissions
// and moves. It returns per-node received frames and the final state digest,
// the complete observable footprint of the channel.
type shardFixture struct {
	eng   *sim.Engine
	m     *Medium
	recs  map[frame.NodeID]*recorder
	nodes []*Transceiver
}

func newShardFixture(t *testing.T, seed int64, n int, grid *topology.Grid) *shardFixture {
	t.Helper()
	eng := sim.New(seed)
	eng.EnableRNGAccounting()
	m := NewMedium(eng, radio.NewLogNormal2400(4.0, 2.0), -95)
	if grid != nil {
		m.SetGrid(grid)
	}
	fx := &shardFixture{eng: eng, m: m, recs: map[frame.NodeID]*recorder{}}
	// Scatter stations deterministically over a 1 km field, independent of
	// the engine's streams.
	rng := rand.New(rand.NewSource(seed + 1000))
	for i := 0; i < n; i++ {
		id := frame.NodeID(i + 1)
		pos := geom.Pt(rng.Float64()*1000, rng.Float64()*1000)
		rec := &recorder{}
		fx.recs[id] = rec
		fx.nodes = append(fx.nodes, m.AddNode(id, pos, 20, rec))
	}
	return fx
}

// run fires a fixed schedule: staggered transmissions from every node with
// interleaved random-walk moves of a rotating subset.
func (fx *shardFixture) run() {
	rng := rand.New(rand.NewSource(99))
	rate := phy.RateOFDM6
	at := time.Millisecond
	for round := 0; round < 6; round++ {
		for i, tr := range fx.nodes {
			tr := tr
			dst := fx.nodes[(i+1)%len(fx.nodes)]
			f := frame.Frame{Kind: frame.Data, Src: tr.ID(), Dst: dst.ID(), Seq: uint16(round), PayloadBytes: 200}
			fx.eng.Schedule(at, func() { _ = tr.Transmit(f, rate, 300*time.Microsecond) })
			at += 173 * time.Microsecond
		}
		// Move a third of the stations between rounds, far enough to hop
		// shard cells.
		for i := round % 3; i < len(fx.nodes); i += 3 {
			tr := fx.nodes[i]
			dx, dy := (rng.Float64()-0.5)*400, (rng.Float64()-0.5)*400
			p := geom.Pt(clampF(tr.Position().X+dx, 0, 1000), clampF(tr.Position().Y+dy, 0, 1000))
			fx.eng.Schedule(at, func() { tr.SetPosition(p) })
			at += 50 * time.Microsecond
		}
	}
	fx.eng.Run()
}

func clampF(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func (fx *shardFixture) digest() uint64 {
	h := audit.NewHasher()
	fx.m.DigestState(h)
	return h.Sum()
}

// footprint renders every delivery observed by every node, in node order.
func (fx *shardFixture) footprint() string {
	out := ""
	for _, tr := range fx.nodes {
		rec := fx.recs[tr.ID()]
		out += fmt.Sprintf("node %d: %d frames %d energies\n", tr.ID(), len(rec.frames), len(rec.energies))
		for _, r := range rec.frames {
			out += fmt.Sprintf("  %d->%d seq %d ok=%v rssi=%.9f\n", r.f.Src, r.f.Dst, r.f.Seq, r.ok, r.rssi)
		}
	}
	return out
}

// TestShardedMatchesUnsharded drives the same node field with and without a
// shard grid under a generous audibility margin (so nothing is actually
// pruned) and demands identical deliveries, RNG cursors and state digests:
// sharding is a layout change, not a behavior change.
func TestShardedMatchesUnsharded(t *testing.T) {
	grid, err := topology.NewGrid(geom.Pt(0, 0), 1000, 3)
	if err != nil {
		t.Fatal(err)
	}
	dense := newShardFixture(t, 7, 24, nil)
	dense.run()
	sharded := newShardFixture(t, 7, 24, grid)
	sharded.run()

	if d, s := dense.footprint(), sharded.footprint(); d != s {
		t.Fatalf("sharded deliveries diverge from dense:\ndense:\n%s\nsharded:\n%s", d, s)
	}
	if d, s := dense.digest(), sharded.digest(); d != s {
		t.Fatalf("state digests diverge: dense %x, sharded %x", d, s)
	}
	dc, sc := dense.eng.RNGCursors(), sharded.eng.RNGCursors()
	if len(dc) != len(sc) {
		t.Fatalf("RNG stream sets diverge: %d vs %d streams", len(dc), len(sc))
	}
	for name, n := range dc {
		if sc[name] != n {
			t.Fatalf("stream %q cursor %d (dense) != %d (sharded)", name, n, sc[name])
		}
	}
}

// TestIncrementalMatchesFullRebuild pins the incremental neighbor-maintenance
// path (single-node moves splicing cell lists and reverse entries) against
// the legacy full-rebuild-on-move path: identical deliveries, identical RNG
// stream cursors — the incremental path may not shift a single draw — and
// identical digests. This is the RNG-stream-identity guarantee for mobility.
func TestIncrementalMatchesFullRebuild(t *testing.T) {
	grid, err := topology.NewGrid(geom.Pt(0, 0), 1000, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, gr := range []*topology.Grid{nil, grid} {
		name := "dense"
		if gr != nil {
			name = "sharded"
		}
		t.Run(name, func(t *testing.T) {
			inc := newShardFixture(t, 3, 18, gr)
			inc.run()
			full := newShardFixture(t, 3, 18, gr)
			full.m.FullRebuildOnMove = true
			full.run()

			if a, b := inc.footprint(), full.footprint(); a != b {
				t.Fatalf("incremental deliveries diverge from full rebuild:\nincremental:\n%s\nfull:\n%s", a, b)
			}
			ic, fc := inc.eng.RNGCursors(), full.eng.RNGCursors()
			if len(ic) != len(fc) {
				t.Fatalf("RNG stream sets diverge: %d vs %d", len(ic), len(fc))
			}
			for name, n := range fc {
				if ic[name] != n {
					t.Fatalf("stream %q cursor %d (incremental) != %d (full)", name, ic[name], n)
				}
			}
			if a, b := inc.digest(), full.digest(); a != b {
				t.Fatalf("state digests diverge: incremental %x, full %x", a, b)
			}
		})
	}
}

// TestGridPrunesStaticDraws verifies the sharding actually prunes: distant
// cells never become neighbor candidates, so far pairs draw no static shadow
// stream, while the dense medium draws one per pair.
func TestGridPrunesStaticDraws(t *testing.T) {
	grid, err := topology.NewGrid(geom.Pt(0, 0), 8000, 3) // 1 km cells
	if err != nil {
		t.Fatal(err)
	}
	build := func(g *topology.Grid) *Medium {
		eng := sim.New(5)
		m := NewMedium(eng, radio.NewLogNormal2400(4.0, 2.0), -95)
		if g != nil {
			m.SetGrid(g)
		}
		// Two clusters in opposite corners, kilometers apart.
		m.AddNode(1, geom.Pt(100, 100), 20, &recorder{})
		m.AddNode(2, geom.Pt(130, 120), 20, &recorder{})
		m.AddNode(3, geom.Pt(7900, 7900), 20, &recorder{})
		m.AddNode(4, geom.Pt(7870, 7880), 20, &recorder{})
		m.rebuildGeometry()
		return m
	}
	dense := build(nil)
	if got := len(dense.staticShadow); got != 6 {
		t.Fatalf("dense medium drew %d static shadows, want all 6 pairs", got)
	}
	sharded := build(grid)
	if got := len(sharded.staticShadow); got != 2 {
		t.Fatalf("sharded medium drew %d static shadows, want 2 (one per near pair)", got)
	}
	// Cross-cluster transmissions still draw the per-node fading stream but
	// deliver nothing.
	a := sharded.Node(1)
	if aud := sharded.audibleOf(a); len(aud) != 1 || aud[0].ID() != 2 {
		t.Fatalf("node 1 audibility list = %v, want just node 2", aud)
	}
}

// TestShardedMoveAcrossCells walks one station across the whole grid and
// checks the invariant that its neighbor entries always mirror the reverse
// direction: s has an entry for t exactly when t has one for s.
func TestShardedMoveAcrossCells(t *testing.T) {
	grid, err := topology.NewGrid(geom.Pt(0, 0), 4000, 3)
	if err != nil {
		t.Fatal(err)
	}
	eng := sim.New(11)
	m := NewMedium(eng, radio.NewLogNormal2400(4.0, 2.0), -95)
	m.SetGrid(grid)
	var nodes []*Transceiver
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 30; i++ {
		nodes = append(nodes, m.AddNode(frame.NodeID(i+1), geom.Pt(rng.Float64()*4000, rng.Float64()*4000), 20, &recorder{}))
	}
	m.rebuildGeometry()
	walker := nodes[0]
	for step := 0; step < 40; step++ {
		walker.SetPosition(geom.Pt(rng.Float64()*4000, rng.Float64()*4000))
		for _, s := range nodes {
			if s == walker {
				continue
			}
			fwd := hasEntry(walker, s)
			rev := hasEntry(s, walker)
			if fwd != rev {
				t.Fatalf("step %d: asymmetric neighbor entries between %d and %d (fwd=%v rev=%v)",
					step, walker.ID(), s.ID(), fwd, rev)
			}
			if fwd {
				d := walker.Position().DistanceTo(s.Position())
				if d > 2*m.nbrRadius+2*grid.CellSizeMeters() {
					t.Fatalf("step %d: pair %d-%d at %g m still neighbors (radius %g)",
						step, walker.ID(), s.ID(), d, m.nbrRadius)
				}
			}
		}
	}
	if math.IsInf(m.nbrRadius, 1) {
		t.Fatal("audibility radius is infinite; the walk exercised nothing")
	}
}

func hasEntry(t, r *Transceiver) bool {
	k := searchEntry(t.nbs, r.ID())
	return k < len(t.nbs) && t.nbs[k].rx == r
}
