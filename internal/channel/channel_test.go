package channel

import (
	"math"
	"testing"
	"time"

	"repro/internal/frame"
	"repro/internal/geom"
	"repro/internal/phy"
	"repro/internal/radio"
	"repro/internal/sim"
)

// recorder is a test Listener that records all PHY indications.
type recorder struct {
	energies []float64
	frames   []recvd
	txDone   []frame.Frame
}

type recvd struct {
	f    frame.Frame
	ok   bool
	rssi float64
}

func (r *recorder) EnergyChanged(agg float64) { r.energies = append(r.energies, agg) }
func (r *recorder) FrameReceived(f frame.Frame, ok bool, rssi float64) {
	r.frames = append(r.frames, recvd{f, ok, rssi})
}
func (r *recorder) TransmitDone(f frame.Frame) { r.txDone = append(r.txDone, f) }

// noShadow returns a deterministic propagation model (sigma = 0).
func noShadow() radio.LogNormal { return radio.NewLogNormal2400(2.9, 0) }

func newTestMedium(t *testing.T, seed int64) (*sim.Engine, *Medium) {
	t.Helper()
	eng := sim.New(seed)
	return eng, NewMedium(eng, noShadow(), -95)
}

func TestSingleFrameDelivered(t *testing.T) {
	eng, m := newTestMedium(t, 1)
	rx := &recorder{}
	a := m.AddNode(1, geom.Pt(0, 0), 0, &recorder{})
	b := m.AddNode(2, geom.Pt(10, 0), 0, rx)

	f := frame.Frame{Kind: frame.Data, Src: 1, Dst: 2, Seq: 1, PayloadBytes: 100}
	if err := a.Transmit(f, phy.RateDSSS1, time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if !a.Transmitting() {
		t.Error("sender should be transmitting")
	}
	if !b.Receiving() {
		t.Error("receiver should have locked")
	}
	eng.Run()
	if len(rx.frames) != 1 {
		t.Fatalf("received %d frames, want 1", len(rx.frames))
	}
	got := rx.frames[0]
	if !got.ok {
		t.Error("clean frame should decode ok")
	}
	if got.f != f {
		t.Errorf("frame = %+v", got.f)
	}
	wantRSSI := m.Model().MeanReceivedDBm(0, 10)
	if math.Abs(got.rssi-wantRSSI) > 1e-9 {
		t.Errorf("rssi = %v, want %v", got.rssi, wantRSSI)
	}
	if a.Transmitting() || b.Receiving() {
		t.Error("states must clear after transmission end")
	}
}

func TestTransmitDoneCallback(t *testing.T) {
	eng, m := newTestMedium(t, 1)
	rec := &recorder{}
	a := m.AddNode(1, geom.Pt(0, 0), 0, rec)
	m.AddNode(2, geom.Pt(5, 0), 0, &recorder{})
	f := frame.Frame{Kind: frame.Ack, Src: 1, Dst: 2}
	if err := a.Transmit(f, phy.RateDSSS1, 304*time.Microsecond); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if len(rec.txDone) != 1 || rec.txDone[0] != f {
		t.Errorf("txDone = %v", rec.txDone)
	}
	if eng.Now() != 304*time.Microsecond {
		t.Errorf("end time = %v", eng.Now())
	}
}

func TestBelowSensitivityNotLocked(t *testing.T) {
	eng, m := newTestMedium(t, 1)
	rx := &recorder{}
	a := m.AddNode(1, geom.Pt(0, 0), 0, &recorder{})
	b := m.AddNode(2, geom.Pt(5000, 0), 0, rx) // ~-147 dBm, far below -94

	f := frame.Frame{Kind: frame.Data, Src: 1, Dst: 2, PayloadBytes: 100}
	if err := a.Transmit(f, phy.RateDSSS1, time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if b.Receiving() {
		t.Error("should not lock below sensitivity")
	}
	eng.Run()
	if len(rx.frames) != 0 {
		t.Errorf("received %d frames, want 0", len(rx.frames))
	}
	// At ~-147 dBm the pair is 50+ dB under the audibility floor
	// (noise − margin = -135 dBm), so pruning skips the energy callbacks
	// entirely.
	if len(rx.energies) != 0 {
		t.Errorf("energy callbacks = %d, want 0 (pair pruned as inaudible)", len(rx.energies))
	}
}

func TestBelowSensitivityEnergyReportedWithoutPruning(t *testing.T) {
	eng, m := newTestMedium(t, 1)
	m.AudibilityMarginDB = math.Inf(1) // disable pruning
	rx := &recorder{}
	a := m.AddNode(1, geom.Pt(0, 0), 0, &recorder{})
	b := m.AddNode(2, geom.Pt(5000, 0), 0, rx)

	f := frame.Frame{Kind: frame.Data, Src: 1, Dst: 2, PayloadBytes: 100}
	if err := a.Transmit(f, phy.RateDSSS1, time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if b.Receiving() {
		t.Error("should not lock below sensitivity")
	}
	eng.Run()
	// Energy is still reported (it changed from silence to a weak signal).
	if len(rx.energies) != 2 {
		t.Errorf("energy callbacks = %d, want 2 (start+end)", len(rx.energies))
	}
}

// TestPruningKeepsDrawOrder runs the same shadowed scenario twice — once
// with the default audibility margin (which prunes a node 50 km away) and
// once with pruning disabled — and requires every PHY indication at the
// near nodes to be bit-identical. This is the "keep the draw, skip the
// work" contract: pruning must not shift the shared fading stream.
func TestPruningKeepsDrawOrder(t *testing.T) {
	run := func(margin float64) (near []*recorder, far *recorder) {
		eng := sim.New(42)
		m := NewMedium(eng, radio.NewLogNormal2400(2.9, 4), -95)
		m.AudibilityMarginDB = margin
		near = []*recorder{{}, {}, {}}
		a := m.AddNode(1, geom.Pt(0, 0), 15, near[0])
		b := m.AddNode(2, geom.Pt(30, 0), 15, near[1])
		m.AddNode(3, geom.Pt(60, 0), 15, near[2])
		far = &recorder{}
		m.AddNode(9, geom.Pt(50000, 0), 15, far)

		eng.Schedule(0, func() {
			_ = a.Transmit(frame.Frame{Kind: frame.Data, Src: 1, Dst: 2, PayloadBytes: 500}, phy.RateDSSS1, time.Millisecond)
		})
		eng.Schedule(500*time.Microsecond, func() {
			_ = b.Transmit(frame.Frame{Kind: frame.Data, Src: 2, Dst: 3, PayloadBytes: 500}, phy.RateDSSS1, time.Millisecond)
		})
		eng.Schedule(3*time.Millisecond, func() {
			_ = a.Transmit(frame.Frame{Kind: frame.Data, Src: 1, Dst: 3, PayloadBytes: 200}, phy.RateDSSS1, time.Millisecond)
		})
		eng.Run()
		return near, far
	}

	nearPruned, farPruned := run(DefaultAudibilityMarginDB)
	nearFull, farFull := run(math.Inf(1))

	if len(farPruned.energies) != 0 {
		t.Errorf("far node got %d energy callbacks with pruning, want 0", len(farPruned.energies))
	}
	if len(farFull.energies) == 0 {
		t.Error("far node got no energy callbacks with pruning disabled")
	}
	for i := range nearPruned {
		p, f := nearPruned[i], nearFull[i]
		if len(p.energies) != len(f.energies) || len(p.frames) != len(f.frames) {
			t.Fatalf("node %d: callback counts diverged: %d/%d energies, %d/%d frames",
				i+1, len(p.energies), len(f.energies), len(p.frames), len(f.frames))
		}
		for j := range p.energies {
			if p.energies[j] != f.energies[j] {
				t.Errorf("node %d energy[%d]: %v (pruned) != %v (full)", i+1, j, p.energies[j], f.energies[j])
			}
		}
		for j := range p.frames {
			if p.frames[j] != f.frames[j] {
				t.Errorf("node %d frame[%d]: %+v != %+v", i+1, j, p.frames[j], f.frames[j])
			}
		}
	}
}

func TestCollisionCorruptsFrame(t *testing.T) {
	eng, m := newTestMedium(t, 1)
	rx := &recorder{}
	a := m.AddNode(1, geom.Pt(0, 0), 0, &recorder{})
	c := m.AddNode(3, geom.Pt(24, 0), 0, &recorder{})
	m.AddNode(2, geom.Pt(12, 0), 0, rx) // equidistant receiver

	fa := frame.Frame{Kind: frame.Data, Src: 1, Dst: 2, PayloadBytes: 500}
	fc := frame.Frame{Kind: frame.Data, Src: 3, Dst: 2, PayloadBytes: 500}
	if err := a.Transmit(fa, phy.RateDSSS1, time.Millisecond); err != nil {
		t.Fatal(err)
	}
	// Overlapping transmission from equal distance: SIR = 0 dB < 4 dB.
	eng.After(100*time.Microsecond, func() {
		if err := c.Transmit(fc, phy.RateDSSS1, time.Millisecond); err != nil {
			t.Error(err)
		}
	})
	eng.Run()
	if len(rx.frames) != 1 {
		t.Fatalf("received %d frames, want 1 (the locked one)", len(rx.frames))
	}
	if rx.frames[0].ok {
		t.Error("collided frame should be corrupted")
	}
	if rx.frames[0].f.Src != 1 {
		t.Errorf("locked frame src = %d, want first transmitter", rx.frames[0].f.Src)
	}
}

func TestWeakInterferenceDoesNotCorrupt(t *testing.T) {
	eng, m := newTestMedium(t, 1)
	rx := &recorder{}
	a := m.AddNode(1, geom.Pt(0, 0), 0, &recorder{})
	far := m.AddNode(3, geom.Pt(500, 10), 0, &recorder{})
	m.AddNode(2, geom.Pt(10, 0), 0, rx)

	if err := a.Transmit(frame.Frame{Kind: frame.Data, Src: 1, Dst: 2, PayloadBytes: 500},
		phy.RateDSSS1, time.Millisecond); err != nil {
		t.Fatal(err)
	}
	eng.After(50*time.Microsecond, func() {
		// ~-118 dBm at the receiver: 49 dB below the useful signal.
		if err := far.Transmit(frame.Frame{Kind: frame.Data, Src: 3, Dst: 99, PayloadBytes: 500},
			phy.RateDSSS1, time.Millisecond); err != nil {
			t.Error(err)
		}
	})
	eng.Run()
	if len(rx.frames) != 1 || !rx.frames[0].ok {
		t.Errorf("frame should survive weak interference: %+v", rx.frames)
	}
}

func TestSecondFrameDuringLockIsNotReceived(t *testing.T) {
	eng, m := newTestMedium(t, 1)
	rx := &recorder{}
	a := m.AddNode(1, geom.Pt(0, 0), 0, &recorder{})
	c := m.AddNode(3, geom.Pt(24, 0), 0, &recorder{})
	m.AddNode(2, geom.Pt(12, 0), 0, rx)

	if err := a.Transmit(frame.Frame{Kind: frame.Data, Src: 1, Dst: 2}, phy.RateDSSS1, 200*time.Microsecond); err != nil {
		t.Fatal(err)
	}
	eng.After(50*time.Microsecond, func() {
		if err := c.Transmit(frame.Frame{Kind: frame.Data, Src: 3, Dst: 2}, phy.RateDSSS1, 200*time.Microsecond); err != nil {
			t.Error(err)
		}
	})
	eng.Run()
	// Only the first frame is delivered (corrupted); the second was never
	// locked because the radio was busy with the first.
	if len(rx.frames) != 1 {
		t.Fatalf("frames = %+v", rx.frames)
	}
	if rx.frames[0].f.Src != 1 {
		t.Errorf("delivered src = %d", rx.frames[0].f.Src)
	}
}

func TestHalfDuplexTransmitAbortsReception(t *testing.T) {
	eng, m := newTestMedium(t, 1)
	rxB := &recorder{}
	a := m.AddNode(1, geom.Pt(0, 0), 0, &recorder{})
	b := m.AddNode(2, geom.Pt(10, 0), 0, rxB)
	m.AddNode(3, geom.Pt(20, 0), 0, &recorder{})

	if err := a.Transmit(frame.Frame{Kind: frame.Data, Src: 1, Dst: 2}, phy.RateDSSS1, time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if !b.Receiving() {
		t.Fatal("b should be locked")
	}
	eng.After(100*time.Microsecond, func() {
		if err := b.Transmit(frame.Frame{Kind: frame.Data, Src: 2, Dst: 3}, phy.RateDSSS1, 100*time.Microsecond); err != nil {
			t.Error(err)
		}
		if b.Receiving() {
			t.Error("transmit must abort reception")
		}
	})
	eng.Run()
	if len(rxB.frames) != 0 {
		t.Errorf("aborted reception still delivered: %+v", rxB.frames)
	}
}

func TestTransmitWhileTransmittingErrors(t *testing.T) {
	_, m := newTestMedium(t, 1)
	a := m.AddNode(1, geom.Pt(0, 0), 0, &recorder{})
	m.AddNode(2, geom.Pt(10, 0), 0, &recorder{})
	if err := a.Transmit(frame.Frame{Kind: frame.Data, Src: 1, Dst: 2}, phy.RateDSSS1, time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if err := a.Transmit(frame.Frame{Kind: frame.Data, Src: 1, Dst: 2}, phy.RateDSSS1, time.Millisecond); err == nil {
		t.Error("second Transmit should error")
	}
}

func TestNonPositiveAirtimeErrors(t *testing.T) {
	_, m := newTestMedium(t, 1)
	a := m.AddNode(1, geom.Pt(0, 0), 0, &recorder{})
	if err := a.Transmit(frame.Frame{Kind: frame.Data}, phy.RateDSSS1, 0); err == nil {
		t.Error("zero airtime should error")
	}
}

func TestEnergyAggregation(t *testing.T) {
	eng, m := newTestMedium(t, 1)
	rx := &recorder{}
	a := m.AddNode(1, geom.Pt(0, 0), 0, &recorder{})
	c := m.AddNode(3, geom.Pt(0, 10), 0, &recorder{})
	obs := m.AddNode(2, geom.Pt(10, 0), 0, rx)

	if math.IsInf(obs.AggregateSignalDBm(), -1) != true {
		t.Error("silent channel should be -Inf")
	}
	if err := a.Transmit(frame.Frame{Kind: frame.Data, Src: 1, Dst: 9}, phy.RateDSSS1, time.Millisecond); err != nil {
		t.Fatal(err)
	}
	p1 := obs.AggregateSignalDBm()
	want1 := m.Model().MeanReceivedDBm(0, 10)
	if math.Abs(p1-want1) > 1e-9 {
		t.Errorf("single-tx aggregate = %v, want %v", p1, want1)
	}
	eng.After(100*time.Microsecond, func() {
		if err := c.Transmit(frame.Frame{Kind: frame.Data, Src: 3, Dst: 9}, phy.RateDSSS1, time.Millisecond); err != nil {
			t.Error(err)
		}
		// Two equal-power signals: +3.01 dB.
		p2 := obs.AggregateSignalDBm()
		d := obs.Position().DistanceTo(geom.Pt(0, 10))
		want2 := radio.CombineDBm(want1, m.Model().MeanReceivedDBm(0, d))
		if math.Abs(p2-want2) > 1e-9 {
			t.Errorf("dual-tx aggregate = %v, want %v", p2, want2)
		}
	})
	eng.Run()
	// Energy callbacks: tx1 start, tx2 start, tx1 end, tx2 end = 4.
	if len(rx.energies) != 4 {
		t.Errorf("energy callbacks = %d, want 4", len(rx.energies))
	}
	last := rx.energies[len(rx.energies)-1]
	if !math.IsInf(last, -1) {
		t.Errorf("final energy = %v, want -Inf", last)
	}
}

func TestHiddenTerminalCollisionScenario(t *testing.T) {
	// Classic HT: C1 -> AP1 while C2 (out of C1's CS range, near AP1)
	// transmits concurrently; AP1's reception is corrupted.
	eng, m := newTestMedium(t, 1)
	ap1 := &recorder{}
	c1 := m.AddNode(1, geom.Pt(0, 0), 0, &recorder{})
	m.AddNode(10, geom.Pt(8, 0), 0, ap1)
	c2 := m.AddNode(2, geom.Pt(20, 0), 0, &recorder{}) // 12 m from AP1, 20 m from C1

	if err := c1.Transmit(frame.Frame{Kind: frame.Data, Src: 1, Dst: 10, PayloadBytes: 1000},
		phy.RateDSSS1, 8*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	eng.After(time.Millisecond, func() {
		if err := c2.Transmit(frame.Frame{Kind: frame.Data, Src: 2, Dst: 11, PayloadBytes: 1000},
			phy.RateDSSS1, 8*time.Millisecond); err != nil {
			t.Error(err)
		}
	})
	eng.Run()
	if len(ap1.frames) != 1 {
		t.Fatalf("AP1 frames = %+v", ap1.frames)
	}
	// SIR = 10*2.9*log10(12/8) = 5.1 dB... above the 4 dB threshold, so to
	// corrupt we need the interferer closer. Verify the actual outcome
	// against first principles instead of hard-coding.
	sir := m.Model().MeanReceivedDBm(0, 8) -
		radio.CombineDBm(m.NoiseFloorDBm(), m.Model().MeanReceivedDBm(0, 12))
	wantOK := sir >= phy.RateDSSS1.MinSIRdB
	if ap1.frames[0].ok != wantOK {
		t.Errorf("ok = %v, want %v (sinr %.2f)", ap1.frames[0].ok, wantOK, sir)
	}
}

func TestDuplicateNodePanics(t *testing.T) {
	_, m := newTestMedium(t, 1)
	m.AddNode(1, geom.Pt(0, 0), 0, &recorder{})
	defer func() {
		if recover() == nil {
			t.Error("expected panic on duplicate id")
		}
	}()
	m.AddNode(1, geom.Pt(5, 5), 0, &recorder{})
}

func TestNodeLookupAndOrder(t *testing.T) {
	_, m := newTestMedium(t, 1)
	m.AddNode(5, geom.Pt(0, 0), 0, &recorder{})
	m.AddNode(2, geom.Pt(1, 0), 0, &recorder{})
	m.AddNode(9, geom.Pt(2, 0), 0, &recorder{})
	if m.Node(2) == nil || m.Node(2).ID() != 2 {
		t.Error("Node lookup failed")
	}
	if m.Node(99) != nil {
		t.Error("missing node should be nil")
	}
	nodes := m.Nodes()
	if len(nodes) != 3 || nodes[0].ID() != 2 || nodes[1].ID() != 5 || nodes[2].ID() != 9 {
		t.Errorf("nodes out of order: %v %v %v", nodes[0].ID(), nodes[1].ID(), nodes[2].ID())
	}
}

func TestShadowingMakesReceptionProbabilistic(t *testing.T) {
	// With sigma=4 and a marginal link, some frames succeed and some fail.
	eng := sim.New(7)
	m := NewMedium(eng, radio.NewLogNormal2400(2.9, 4), -95)
	rx := &recorder{}
	a := m.AddNode(1, geom.Pt(0, 0), 0, &recorder{})
	m.AddNode(2, geom.Pt(70, 0), 0, rx) // mean power ~ -93.5, near sensitivity

	const n = 400
	for i := 0; i < n; i++ {
		i := i
		eng.Schedule(time.Duration(i)*10*time.Millisecond, func() {
			_ = a.Transmit(frame.Frame{Kind: frame.Data, Src: 1, Dst: 2, Seq: uint16(i)},
				phy.RateDSSS1, time.Millisecond)
		})
	}
	eng.Run()
	if len(rx.frames) == 0 || len(rx.frames) == n {
		t.Errorf("marginal link delivered %d/%d locks; expected partial locking", len(rx.frames), n)
	}
}

func TestMobilityChangesReception(t *testing.T) {
	eng, m := newTestMedium(t, 3)
	rx := &recorder{}
	a := m.AddNode(1, geom.Pt(0, 0), 0, &recorder{})
	b := m.AddNode(2, geom.Pt(10, 0), 0, rx)

	send := func() {
		_ = a.Transmit(frame.Frame{Kind: frame.Data, Src: 1, Dst: 2}, phy.RateDSSS11, 100*time.Microsecond)
	}
	send()
	eng.Run()
	if len(rx.frames) != 1 {
		t.Fatal("near frame should deliver")
	}
	b.SetPosition(geom.Pt(200, 0)) // beyond 11M sensitivity (-82 dBm at ~30 m)
	send()
	eng.Run()
	if len(rx.frames) != 1 {
		t.Error("far frame should not lock at 11M")
	}
}

func TestReceivedPowerSampleDeterministic(t *testing.T) {
	run := func() []float64 {
		eng := sim.New(11)
		m := NewMedium(eng, radio.NewLogNormal2400(2.9, 4), -95)
		a := m.AddNode(1, geom.Pt(0, 0), 0, &recorder{})
		b := m.AddNode(2, geom.Pt(25, 0), 0, &recorder{})
		var out []float64
		for i := 0; i < 5; i++ {
			out = append(out, m.ReceivedPowerSampleDBm(a, b))
		}
		return out
	}
	x, y := run(), run()
	for i := range x {
		if x[i] != y[i] {
			t.Fatalf("samples diverge at %d", i)
		}
	}
}
