// Package channel models the shared wireless medium: it propagates frames
// between transceivers using the log-normal shadowing model, tracks the
// aggregate energy each node senses (for carrier sense and for CO-MAP's
// RSSI-step rule) and decides frame reception by an SINR threshold, exactly
// the reception model underlying the paper's eqs. (2)–(3).
//
// The medium is single-threaded and driven by a sim.Engine; all state
// transitions happen inside simulator events, so runs are deterministic.
package channel

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"

	"repro/internal/frame"
	"repro/internal/geom"
	"repro/internal/metrics"
	"repro/internal/phy"
	"repro/internal/radio"
	"repro/internal/sim"
)

// Listener receives PHY indications from a Transceiver. Implementations are
// MAC layers.
type Listener interface {
	// EnergyChanged reports the new aggregate in-band signal power (dBm,
	// excluding the noise floor; -Inf when the air is silent). It fires on
	// every transmission start/end heard by this node, including ones below
	// the CCA threshold.
	EnergyChanged(aggregateDBm float64)
	// FrameReceived delivers a frame this node's radio locked onto. ok is
	// false when interference pushed SINR below the rate's threshold at any
	// moment during reception. rssiDBm is the received signal strength of
	// the frame itself.
	FrameReceived(f frame.Frame, ok bool, rssiDBm float64)
	// TransmitDone indicates this node's own transmission left the air.
	TransmitDone(f frame.Frame)
}

// DefaultCaptureMarginDB is the power advantage a newly arriving frame needs
// over the frame currently being received for the radio to re-lock onto it
// (message-in-message / physical-layer capture, as on commodity 802.11
// hardware).
const DefaultCaptureMarginDB = 10.0

// Medium is the shared wireless channel.
type Medium struct {
	eng    *sim.Engine
	model  radio.LogNormal
	noise  float64
	rng    *rand.Rand
	nodes  []*Transceiver
	byID   map[frame.NodeID]*Transceiver
	active []*transmission

	// CaptureMarginDB controls mid-frame re-locking; set negative to
	// disable capture entirely.
	CaptureMarginDB float64

	// StaticShadowFraction is the fraction of the shadowing variance that is
	// a fixed property of each node pair (walls, furniture — constant for
	// stationary nodes), with the remainder redrawn per frame (fast fading).
	// The composite per-frame deviation always equals the model's SigmaDB,
	// so the ensemble PRR statistics of the paper's eqs. (2)–(4) hold
	// exactly; the split only controls how much of the randomness is frozen
	// per topology instance. Default 0.7.
	StaticShadowFraction float64
	staticShadow         map[pairKey]float64

	// OnTransmitStart, when set, observes every transmission at the instant
	// it is put on the air (transmitter, frame, rate, airtime). Tracing uses
	// it to reconstruct on-air intervals; implementations must be pure
	// observers — mutating protocol state from here breaks determinism.
	OnTransmitStart func(from frame.NodeID, f frame.Frame, rate phy.Rate, airtime time.Duration)

	// HeaderIndicationAt, when set, enables the paper's embedded discovery
	// header (§V method one): every data frame's source and destination
	// addresses become decodable this long into the frame (PLCP preamble +
	// MAC header + the extra 4-byte FCS). Nodes locked onto the frame
	// receive a synthetic ComapHeader indication (marked Retry to say "the
	// announced data is already on the air").
	HeaderIndicationAt func(r phy.Rate) time.Duration

	// extraPathLossDB is additional attenuation applied to every received-
	// power sample (burst fading injected by the faults layer). It affects
	// frames put on the air after the change; in-flight frames keep their
	// start-of-transmission samples.
	extraPathLossDB float64

	metrics    *metrics.Registry
	air        *metrics.StateClock
	collisions *metrics.Counter
	txStarts   *metrics.Counter
}

// pairKey identifies an unordered node pair (radio reciprocity makes the
// static shadowing component symmetric).
type pairKey struct {
	lo, hi frame.NodeID
}

func makePairKey(a, b frame.NodeID) pairKey {
	if a > b {
		a, b = b, a
	}
	return pairKey{lo: a, hi: b}
}

// NewMedium creates a medium over the given propagation model and noise
// floor (dBm). Shadowing draws come from the engine's "channel.shadowing"
// random stream.
func NewMedium(eng *sim.Engine, model radio.LogNormal, noiseFloorDBm float64) *Medium {
	return &Medium{
		eng:                  eng,
		model:                model,
		noise:                noiseFloorDBm,
		rng:                  eng.RNG("channel.shadowing"),
		byID:                 make(map[frame.NodeID]*Transceiver),
		CaptureMarginDB:      DefaultCaptureMarginDB,
		StaticShadowFraction: 0.7,
		staticShadow:         make(map[pairKey]float64),
	}
}

// SetMetrics attaches a telemetry registry to the medium. It records the
// "medium" busy/idle airtime clock, the "tx_starts" and "collisions"
// counters and a per-node "collision.node.<id>" counter incremented whenever
// interference corrupts a frame that node's radio was locked onto. Call
// before traffic starts; a nil registry detaches.
func (m *Medium) SetMetrics(reg *metrics.Registry) {
	m.metrics = reg
	m.air = reg.StateClock("medium", m.eng.Now, "idle")
	m.collisions = reg.Counter("collisions")
	m.txStarts = reg.Counter("tx_starts")
}

// Metrics returns the attached registry (nil if none).
func (m *Medium) Metrics() *metrics.Registry { return m.metrics }

func (m *Medium) touchAir() {
	if len(m.active) > 0 {
		m.air.Set("busy")
	} else {
		m.air.Set("idle")
	}
}

// Engine returns the driving simulation engine.
func (m *Medium) Engine() *sim.Engine { return m.eng }

// Model returns the propagation model in use.
func (m *Medium) Model() radio.LogNormal { return m.model }

// NoiseFloorDBm returns the receiver noise floor.
func (m *Medium) NoiseFloorDBm() float64 { return m.noise }

// SetNoiseFloorDBm changes the receiver noise floor mid-run (an injected
// interference event, e.g. a microwave oven or a co-channel BSS powering
// up). Every locked reception is immediately re-evaluated against the new
// floor, so a jump can corrupt frames already in flight.
func (m *Medium) SetNoiseFloorDBm(dbm float64) {
	if dbm == m.noise {
		return
	}
	m.noise = dbm
	for _, n := range m.nodes {
		m.updateSINR(n)
	}
}

// ExtraPathLossDB returns the current injected burst-fading attenuation.
func (m *Medium) ExtraPathLossDB() float64 { return m.extraPathLossDB }

// SetExtraPathLossDB sets a uniform extra attenuation on all links (a burst-
// fading window injected by the faults layer). It applies to frames
// transmitted after the call; in-flight frames keep the powers sampled at
// their start. Zero restores the nominal channel.
func (m *Medium) SetExtraPathLossDB(db float64) { m.extraPathLossDB = db }

// AddNode registers a transceiver on the medium. Adding a duplicate ID
// panics: node identity is fixed at topology-construction time and a
// collision is a programming error.
func (m *Medium) AddNode(id frame.NodeID, pos geom.Point, txPowerDBm float64, l Listener) *Transceiver {
	if _, dup := m.byID[id]; dup {
		panic(fmt.Sprintf("channel: duplicate node id %d", id))
	}
	tr := &Transceiver{id: id, pos: pos, txPower: txPowerDBm, medium: m, listener: l}
	m.byID[id] = tr
	m.nodes = append(m.nodes, tr)
	sort.Slice(m.nodes, func(i, j int) bool { return m.nodes[i].id < m.nodes[j].id })
	return tr
}

// Node returns the transceiver with the given ID, or nil.
func (m *Medium) Node(id frame.NodeID) *Transceiver { return m.byID[id] }

// Nodes returns all transceivers in ID order. The returned slice is shared;
// callers must not modify it.
func (m *Medium) Nodes() []*Transceiver { return m.nodes }

// transmission is one frame in flight.
type transmission struct {
	from *Transceiver
	f    frame.Frame
	rate phy.Rate
	// rxDBm holds the shadowing-resolved received power of this frame at
	// every other node, sampled once at transmission start.
	rxDBm map[frame.NodeID]float64
}

// reception tracks a radio locked onto a frame.
type reception struct {
	tx        *transmission
	signalDBm float64
	corrupted bool
}

// Transceiver is one node's radio front-end.
type Transceiver struct {
	id       frame.NodeID
	pos      geom.Point
	txPower  float64
	medium   *Medium
	listener Listener
	sending  *transmission
	lock     *reception
}

// ID returns the node identifier.
func (t *Transceiver) ID() frame.NodeID { return t.id }

// SetListener installs the PHY-indication receiver (typically a MAC built
// after the node was added to the medium).
func (t *Transceiver) SetListener(l Listener) { t.listener = l }

// Listener returns the currently installed PHY-indication receiver (nil if
// none). Tracing wrappers use it to interpose themselves.
func (t *Transceiver) Listener() Listener { return t.listener }

// Position returns the node's current true position.
func (t *Transceiver) Position() geom.Point { return t.pos }

// SetPosition moves the node (mobility). In-flight frames keep the powers
// sampled at their transmission start.
func (t *Transceiver) SetPosition(p geom.Point) { t.pos = p }

// TxPowerDBm returns the node's transmit power.
func (t *Transceiver) TxPowerDBm() float64 { return t.txPower }

// SetTxPowerDBm changes the node's transmit power for future frames.
func (t *Transceiver) SetTxPowerDBm(p float64) { t.txPower = p }

// Transmitting reports whether the node currently has a frame on the air.
func (t *Transceiver) Transmitting() bool { return t.sending != nil }

// Receiving reports whether the radio is locked onto an incoming frame.
func (t *Transceiver) Receiving() bool { return t.lock != nil }

// AggregateSignalDBm returns the summed in-band power of all transmissions
// currently heard by this node (excluding its own and excluding the noise
// floor). Returns -Inf on a silent channel. This is the RSSI the CO-MAP
// enhanced scheduler monitors.
func (t *Transceiver) AggregateSignalDBm() float64 {
	sumMW := 0.0
	for _, tx := range t.medium.active {
		if tx.from == t {
			continue
		}
		sumMW += radio.DBmToMilliwatts(tx.rxDBm[t.id])
	}
	return radio.MilliwattsToDBm(sumMW)
}

// Transmit puts a frame on the air for the given airtime at the given rate.
// It returns an error if the node is already transmitting. Any reception in
// progress is aborted (half-duplex radio).
func (t *Transceiver) Transmit(f frame.Frame, rate phy.Rate, airtime time.Duration) error {
	if t.sending != nil {
		return fmt.Errorf("channel: node %d already transmitting", t.id)
	}
	if airtime <= 0 {
		return fmt.Errorf("channel: non-positive airtime %v", airtime)
	}
	m := t.medium
	tx := &transmission{from: t, f: f, rate: rate, rxDBm: make(map[frame.NodeID]float64, len(m.nodes))}
	for _, n := range m.nodes {
		if n == t {
			continue
		}
		d := t.pos.DistanceTo(n.pos)
		tx.rxDBm[n.id] = m.model.MeanReceivedDBm(t.txPower, d) + m.shadowDB(t.id, n.id) - m.extraPathLossDB
	}
	t.sending = tx
	t.lock = nil // half-duplex: abort any reception
	m.active = append(m.active, tx)
	m.txStarts.Inc()
	m.touchAir()
	if m.OnTransmitStart != nil {
		m.OnTransmitStart(t.id, f, rate, airtime)
	}

	for _, n := range m.nodes {
		if n == t {
			continue
		}
		m.onAirChanged(n)
		m.maybeLock(n, tx)
	}

	if m.HeaderIndicationAt != nil && f.Kind == frame.Data {
		if at := m.HeaderIndicationAt(rate); at > 0 && at < airtime {
			m.eng.After(at, func() { m.emitHeaderIndication(tx) })
		}
	}

	m.eng.After(airtime, func() { m.endTransmission(tx) })
	return nil
}

// emitHeaderIndication delivers the embedded discovery header of an
// in-flight data frame to every node whose radio is locked onto it and has
// decoded it cleanly so far.
func (m *Medium) emitHeaderIndication(tx *transmission) {
	hdr := frame.Frame{Kind: frame.ComapHeader, Src: tx.f.Src, Dst: tx.f.Dst, Retry: true}
	for _, n := range m.nodes {
		if n == tx.from || n.listener == nil {
			continue
		}
		if n.lock != nil && n.lock.tx == tx && !n.lock.corrupted {
			n.listener.FrameReceived(hdr, true, n.lock.signalDBm)
		}
	}
}

// maybeLock lets node n attempt to lock onto freshly started transmission tx,
// including re-locking from a weaker ongoing reception (capture).
func (m *Medium) maybeLock(n *Transceiver, tx *transmission) {
	if n.sending != nil {
		return
	}
	p := tx.rxDBm[n.id]
	if p < tx.rate.SensitivityDBm {
		return
	}
	if n.lock != nil {
		// Message-in-message capture: a sufficiently stronger new frame
		// steals the radio; the old frame is lost (it would be corrupted by
		// the strong arrival anyway).
		if m.CaptureMarginDB < 0 || p < n.lock.signalDBm+m.CaptureMarginDB {
			return
		}
	}
	rec := &reception{tx: tx, signalDBm: p}
	n.lock = rec
	m.updateSINR(n)
}

// updateSINR re-evaluates the SINR of n's current lock against all other
// active transmissions and latches corruption if it falls below the rate's
// threshold.
func (m *Medium) updateSINR(n *Transceiver) {
	rec := n.lock
	if rec == nil || rec.corrupted {
		return
	}
	var interferers []float64
	for _, other := range m.active {
		if other == rec.tx || other.from == n {
			continue
		}
		interferers = append(interferers, other.rxDBm[n.id])
	}
	sinr := radio.SINRdB(rec.signalDBm, m.noise, interferers...)
	if sinr < rec.tx.rate.MinSIRdB {
		rec.corrupted = true
		// A collision overlap: interference pushed this node's locked frame
		// below its SINR threshold. Latched once per reception.
		m.collisions.Inc()
		if m.metrics != nil {
			m.metrics.Counter(fmt.Sprintf("collision.node.%d", n.id)).Inc()
		}
	}
}

// onAirChanged notifies node n that the set of audible transmissions changed
// and re-checks its lock's SINR.
func (m *Medium) onAirChanged(n *Transceiver) {
	m.updateSINR(n)
	if n.listener != nil {
		n.listener.EnergyChanged(n.AggregateSignalDBm())
	}
}

// endTransmission removes tx from the air, delivers it to any locked
// receiver and notifies everyone of the energy change.
func (m *Medium) endTransmission(tx *transmission) {
	for i, a := range m.active {
		if a == tx {
			m.active = append(m.active[:i], m.active[i+1:]...)
			break
		}
	}
	tx.from.sending = nil
	m.touchAir()

	for _, n := range m.nodes {
		if n == tx.from {
			continue
		}
		if n.lock != nil && n.lock.tx == tx {
			rec := n.lock
			n.lock = nil
			if n.listener != nil {
				n.listener.FrameReceived(tx.f, !rec.corrupted, rec.signalDBm)
			}
		}
		m.onAirChanged(n)
	}
	if tx.from.listener != nil {
		tx.from.listener.TransmitDone(tx.f)
	}
}

// ReceivedPowerSampleDBm draws one shadowed received-power sample from src to
// dst using the medium's model and random stream. It is exposed for
// diagnostic tools; protocol logic uses the per-frame samples.
func (m *Medium) ReceivedPowerSampleDBm(src, dst *Transceiver) float64 {
	d := src.pos.DistanceTo(dst.pos)
	return m.model.MeanReceivedDBm(src.txPower, d) + m.shadowDB(src.id, dst.id) - m.extraPathLossDB
}

// shadowDB returns the shadowing term (dB) for a frame from a to b: the
// frozen static component of the pair plus a fresh per-frame fading draw.
// The static component is derived deterministically from the engine seed and
// the pair, so runs replay exactly regardless of event order.
func (m *Medium) shadowDB(a, b frame.NodeID) float64 {
	sigma := m.model.SigmaDB
	if sigma == 0 {
		return 0
	}
	f := m.StaticShadowFraction
	if f < 0 {
		f = 0
	} else if f > 1 {
		f = 1
	}
	fading := math.Sqrt(1-f) * sigma * m.rng.NormFloat64()
	if f == 0 {
		return fading
	}
	key := makePairKey(a, b)
	static, ok := m.staticShadow[key]
	if !ok {
		pairRNG := m.eng.RNG(fmt.Sprintf("channel.static.%d.%d", key.lo, key.hi))
		static = math.Sqrt(f) * sigma * pairRNG.NormFloat64()
		m.staticShadow[key] = static
	}
	return static + fading
}

// SilentDBm is the aggregate power reported on an idle channel.
var SilentDBm = math.Inf(-1)
