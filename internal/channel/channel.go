// Package channel models the shared wireless medium: it propagates frames
// between transceivers using the log-normal shadowing model, tracks the
// aggregate energy each node senses (for carrier sense and for CO-MAP's
// RSSI-step rule) and decides frame reception by an SINR threshold, exactly
// the reception model underlying the paper's eqs. (2)–(3).
//
// The medium is single-threaded and driven by a sim.Engine; all state
// transitions happen inside simulator events, so runs are deterministic.
//
// Hot-path layout: every transceiver carries a compact dense index (its
// registration order) and a sparse, ID-ordered neighbor list holding the
// precomputed mean received power and frozen static shadowing toward every
// station that could plausibly hear it. With a spatial grid installed
// (SetGrid), neighbor candidates come only from cells within the
// conservative audibility radius — cost per station is the local
// neighborhood, not N. Without a grid the world is one implicit cell, every
// pair is a candidate, and the computed state is exactly the old dense
// matrices', so paper-scale runs stay byte-identical. Per-frame received
// powers live in a pooled dense slice; the fading stream is drawn for every
// node in ID order whether or not the pair was pruned, so sharding never
// shifts the RNG draw order of a run (see DESIGN.md, "Performance model").
package channel

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"

	"repro/internal/frame"
	"repro/internal/geom"
	"repro/internal/metrics"
	"repro/internal/phy"
	"repro/internal/radio"
	"repro/internal/sim"
	"repro/internal/topology"
)

// Listener receives PHY indications from a Transceiver. Implementations are
// MAC layers.
type Listener interface {
	// EnergyChanged reports the new aggregate in-band signal power (dBm,
	// excluding the noise floor; -Inf when the air is silent). It fires on
	// every transmission start/end heard by this node, including ones below
	// the CCA threshold.
	EnergyChanged(aggregateDBm float64)
	// FrameReceived delivers a frame this node's radio locked onto. ok is
	// false when interference pushed SINR below the rate's threshold at any
	// moment during reception. rssiDBm is the received signal strength of
	// the frame itself.
	FrameReceived(f frame.Frame, ok bool, rssiDBm float64)
	// TransmitDone indicates this node's own transmission left the air.
	TransmitDone(f frame.Frame)
}

// DefaultCaptureMarginDB is the power advantage a newly arriving frame needs
// over the frame currently being received for the radio to re-lock onto it
// (message-in-message / physical-layer capture, as on commodity 802.11
// hardware).
const DefaultCaptureMarginDB = 10.0

// DefaultAudibilityMarginDB is how far below the noise floor a pair's
// loudest plausible received power must fall before the pair is pruned from
// the audibility lists. 40 dB under the noise floor, a signal contributes
// less than a ten-thousandth of the noise power to any SINR denominator and
// sits ~50 dB under every rate's sensitivity — physically inaudible.
const DefaultAudibilityMarginDB = 40.0

// audibilityFadeCapSigmas caps the per-frame fading excursion assumed when
// classifying a pair as inaudible: mean + static + K·σ_fade must still be
// under the floor. K = 6 puts the probability that a single draw exceeds the
// cap at Φ(−6) ≈ 1e-9 (see DESIGN.md for the derivation).
const audibilityFadeCapSigmas = 6.0

// Medium is the shared wireless channel.
type Medium struct {
	eng    *sim.Engine
	model  radio.LogNormal
	noise  float64
	rng    *rand.Rand
	nodes  []*Transceiver
	byID   map[frame.NodeID]*Transceiver
	active []*transmission

	// CaptureMarginDB controls mid-frame re-locking; set negative to
	// disable capture entirely.
	CaptureMarginDB float64

	// AudibilityMarginDB sets the audibility floor at noise − margin:
	// transmitter→receiver pairs whose precomputed mean power plus static
	// shadow plus a 6σ fading excursion stays below the floor are skipped on
	// the per-transmission hot path. Set to math.Inf(1) to disable pruning.
	// Changes take effect at the next geometry rebuild. Default
	// DefaultAudibilityMarginDB.
	AudibilityMarginDB float64

	// StaticShadowFraction is the fraction of the shadowing variance that is
	// a fixed property of each node pair (walls, furniture — constant for
	// stationary nodes), with the remainder redrawn per frame (fast fading).
	// The composite per-frame deviation always equals the model's SigmaDB,
	// so the ensemble PRR statistics of the paper's eqs. (2)–(4) hold
	// exactly; the split only controls how much of the randomness is frozen
	// per topology instance. Default 0.7.
	StaticShadowFraction float64
	staticShadow         map[pairKey]float64

	// geomDirty schedules a full geometry rebuild before the next
	// transmission (node added, power/noise changed, grid installed).
	// Single-node position changes after the first build are applied
	// incrementally instead (see moveNode) unless FullRebuildOnMove forces
	// the legacy lazy path.
	geomDirty bool

	// Spatial sharding. grid == nil means one implicit cell: every node is
	// a neighbor candidate of every other, reproducing the dense per-pair
	// behavior bit for bit. With a grid, cells[c] holds the stations of
	// cell c in ID order and nbrCells[c] the ascending cell indexes within
	// nbrRadius (the conservative audibility distance) of c.
	grid      *topology.Grid
	cells     [][]*Transceiver
	nbrCells  [][]int32
	nbrRadius float64

	// FullRebuildOnMove disables incremental neighbor maintenance: every
	// SetPosition marks the geometry dirty for a full lazy rebuild, as the
	// dense implementation did. The incremental path must be
	// indistinguishable from this (same values, same RNG stream set) — a
	// test knob, not a tuning knob.
	FullRebuildOnMove bool

	// txPool recycles transmission records (and their dense power slices);
	// sinrScratch is the reusable interferer buffer of updateSINR and
	// candScratch the reusable candidate buffer of neighborCandidates.
	txPool      []*transmission
	sinrScratch []float64
	candScratch []*Transceiver

	// OnTransmitStart, when set, observes every transmission at the instant
	// it is put on the air (transmitter, frame, rate, airtime). Tracing uses
	// it to reconstruct on-air intervals; implementations must be pure
	// observers — mutating protocol state from here breaks determinism.
	OnTransmitStart func(from frame.NodeID, f frame.Frame, rate phy.Rate, airtime time.Duration)

	// HeaderIndicationAt, when set, enables the paper's embedded discovery
	// header (§V method one): every data frame's source and destination
	// addresses become decodable this long into the frame (PLCP preamble +
	// MAC header + the extra 4-byte FCS). Nodes locked onto the frame
	// receive a synthetic ComapHeader indication (marked Retry to say "the
	// announced data is already on the air").
	HeaderIndicationAt func(r phy.Rate) time.Duration

	// extraPathLossDB is additional attenuation applied to every received-
	// power sample (burst fading injected by the faults layer). It affects
	// frames put on the air after the change; in-flight frames keep their
	// start-of-transmission samples.
	extraPathLossDB float64

	metrics    *metrics.Registry
	air        *metrics.StateClock
	collisions *metrics.Counter
	txStarts   *metrics.Counter
}

// pairKey identifies an unordered node pair (radio reciprocity makes the
// static shadowing component symmetric).
type pairKey struct {
	lo, hi frame.NodeID
}

func makePairKey(a, b frame.NodeID) pairKey {
	if a > b {
		a, b = b, a
	}
	return pairKey{lo: a, hi: b}
}

// NewMedium creates a medium over the given propagation model and noise
// floor (dBm). Shadowing draws come from the engine's "channel.shadowing"
// random stream.
func NewMedium(eng *sim.Engine, model radio.LogNormal, noiseFloorDBm float64) *Medium {
	return &Medium{
		eng:                  eng,
		model:                model,
		noise:                noiseFloorDBm,
		rng:                  eng.RNG("channel.shadowing"),
		byID:                 make(map[frame.NodeID]*Transceiver),
		CaptureMarginDB:      DefaultCaptureMarginDB,
		AudibilityMarginDB:   DefaultAudibilityMarginDB,
		StaticShadowFraction: 0.7,
		staticShadow:         make(map[pairKey]float64),
	}
}

// SetMetrics attaches a telemetry registry to the medium. It records the
// "medium" busy/idle airtime clock, the "tx_starts" and "collisions"
// counters and a per-node "collision.node.<id>" counter incremented whenever
// interference corrupts a frame that node's radio was locked onto. Call
// before traffic starts; a nil registry detaches.
func (m *Medium) SetMetrics(reg *metrics.Registry) {
	m.metrics = reg
	m.air = reg.StateClock("medium", m.eng.Now, "idle")
	m.collisions = reg.Counter("collisions")
	m.txStarts = reg.Counter("tx_starts")
	for _, n := range m.nodes {
		n.collisions = m.nodeCollisionCounter(n.id)
	}
}

// nodeCollisionCounter resolves the per-node collision counter once, so the
// hot path never rebuilds the "collision.node.<id>" key. With no registry
// attached it returns nil, and nil counters ignore Inc.
func (m *Medium) nodeCollisionCounter(id frame.NodeID) *metrics.Counter {
	if m.metrics == nil {
		return nil
	}
	return m.metrics.Counter(fmt.Sprintf("collision.node.%d", id))
}

// Metrics returns the attached registry (nil if none).
func (m *Medium) Metrics() *metrics.Registry { return m.metrics }

func (m *Medium) touchAir() {
	if len(m.active) > 0 {
		m.air.Set("busy")
	} else {
		m.air.Set("idle")
	}
}

// Engine returns the driving simulation engine.
func (m *Medium) Engine() *sim.Engine { return m.eng }

// Model returns the propagation model in use.
func (m *Medium) Model() radio.LogNormal { return m.model }

// NoiseFloorDBm returns the receiver noise floor.
func (m *Medium) NoiseFloorDBm() float64 { return m.noise }

// SetNoiseFloorDBm changes the receiver noise floor mid-run (an injected
// interference event, e.g. a microwave oven or a co-channel BSS powering
// up). Every locked reception is immediately re-evaluated against the new
// floor, so a jump can corrupt frames already in flight.
func (m *Medium) SetNoiseFloorDBm(dbm float64) {
	if dbm == m.noise {
		return
	}
	m.noise = dbm
	m.geomDirty = true // the audibility floor moved with it
	for _, n := range m.nodes {
		m.updateSINR(n)
	}
}

// ExtraPathLossDB returns the current injected burst-fading attenuation.
func (m *Medium) ExtraPathLossDB() float64 { return m.extraPathLossDB }

// SetExtraPathLossDB sets a uniform extra attenuation on all links (a burst-
// fading window injected by the faults layer). It applies to frames
// transmitted after the call; in-flight frames keep the powers sampled at
// their start. Zero restores the nominal channel.
func (m *Medium) SetExtraPathLossDB(db float64) {
	if (db < 0) != (m.extraPathLossDB < 0) {
		// A gain (negative loss) can lift otherwise-inaudible pairs over the
		// floor; the rebuild disables pruning while one is in effect.
		m.geomDirty = true
	}
	m.extraPathLossDB = db
}

// AddNode registers a transceiver on the medium. Adding a duplicate ID
// panics: node identity is fixed at topology-construction time and a
// collision is a programming error.
func (m *Medium) AddNode(id frame.NodeID, pos geom.Point, txPowerDBm float64, l Listener) *Transceiver {
	if _, dup := m.byID[id]; dup {
		panic(fmt.Sprintf("channel: duplicate node id %d", id))
	}
	// idx is the registration order — stable under the ID re-sort below, so
	// dense per-pair state never moves once assigned.
	tr := &Transceiver{id: id, idx: len(m.nodes), pos: pos, txPower: txPowerDBm, medium: m, listener: l}
	tr.collisions = m.nodeCollisionCounter(id)
	m.byID[id] = tr
	m.nodes = append(m.nodes, tr)
	sort.Slice(m.nodes, func(i, j int) bool { return m.nodes[i].id < m.nodes[j].id })
	m.geomDirty = true
	return tr
}

// Node returns the transceiver with the given ID, or nil.
func (m *Medium) Node(id frame.NodeID) *Transceiver { return m.byID[id] }

// Nodes returns all transceivers in ID order. The returned slice is shared;
// callers must not modify it.
func (m *Medium) Nodes() []*Transceiver { return m.nodes }

// transmission is one frame in flight.
type transmission struct {
	from *Transceiver
	f    frame.Frame
	rate phy.Rate
	// rx holds the shadowing-resolved received power of this frame at every
	// node (indexed by Transceiver.idx), sampled once at transmission start.
	// Pruned (inaudible) receivers hold -Inf, which contributes exactly
	// 0 mW to every power sum.
	rx []float64
	// heard is the transmitter's audibility list snapshotted at start, so
	// the end-of-transmission sweep visits exactly the nodes notified at
	// start even if geometry was rebuilt mid-flight.
	heard []*Transceiver
	// activeIdx is this record's position in Medium.active.
	activeIdx int
}

// rxAt returns the received power at dense index i. Out-of-range indexes
// (a node registered after this frame started — never happens in shipped
// scenarios) report 0 dBm, matching the old map's zero value.
func (tx *transmission) rxAt(i int) float64 {
	if i < len(tx.rx) {
		return tx.rx[i]
	}
	return 0
}

// reception tracks a radio locked onto a frame.
type reception struct {
	tx        *transmission
	signalDBm float64
	corrupted bool
}

// pairEntry is one directed sparse neighbor record: the precomputed mean
// received power and frozen static shadow from the owning transmitter to rx,
// plus the audibility classification against the floor. Entries live in
// Transceiver.nbs sorted by rx ID, so the per-transmission merge against the
// global ID-ordered node list is a single linear walk.
type pairEntry struct {
	rx       *Transceiver
	meanDBm  float64
	staticDB float64
	audible  bool
}

// Transceiver is one node's radio front-end.
type Transceiver struct {
	id         frame.NodeID
	idx        int // dense index: registration order
	pos        geom.Point
	txPower    float64
	medium     *Medium
	listener   Listener
	sending    *transmission
	lock       *reception
	rec        reception // the single lock slot, reused across receptions
	collisions *metrics.Counter

	// Sparse shard state: the containing grid cell, the ID-ordered
	// neighbor entries, and the lazily built audible snapshot (aud is
	// never mutated in place — in-flight transmissions alias it as their
	// heard list, so changes invalidate and rebuild it fresh).
	cell     int32
	nbs      []pairEntry
	aud      []*Transceiver
	audValid bool
}

// ID returns the node identifier.
func (t *Transceiver) ID() frame.NodeID { return t.id }

// SetListener installs the PHY-indication receiver (typically a MAC built
// after the node was added to the medium).
func (t *Transceiver) SetListener(l Listener) { t.listener = l }

// Listener returns the currently installed PHY-indication receiver (nil if
// none). Tracing wrappers use it to interpose themselves.
func (t *Transceiver) Listener() Listener { return t.listener }

// Position returns the node's current true position.
func (t *Transceiver) Position() geom.Point { return t.pos }

// SetPosition moves the node (mobility). In-flight frames keep the powers
// sampled at their transmission start. After the first geometry build the
// move is applied incrementally — only the moved station's neighbor entries
// and the reverse entries within its old and new neighborhoods are touched,
// never the full N×N state.
func (t *Transceiver) SetPosition(p geom.Point) {
	m := t.medium
	if m.geomDirty || m.FullRebuildOnMove {
		// No valid incremental base yet (or the test knob forces the legacy
		// lazy path): fold the move into the pending full rebuild.
		t.pos = p
		m.geomDirty = true
		return
	}
	m.moveNode(t, p)
}

// TxPowerDBm returns the node's transmit power.
func (t *Transceiver) TxPowerDBm() float64 { return t.txPower }

// SetTxPowerDBm changes the node's transmit power for future frames.
func (t *Transceiver) SetTxPowerDBm(p float64) {
	t.txPower = p
	t.medium.geomDirty = true
}

// Transmitting reports whether the node currently has a frame on the air.
func (t *Transceiver) Transmitting() bool { return t.sending != nil }

// Receiving reports whether the radio is locked onto an incoming frame.
func (t *Transceiver) Receiving() bool { return t.lock != nil }

// AggregateSignalDBm returns the summed in-band power of all transmissions
// currently heard by this node (excluding its own and excluding the noise
// floor). Returns -Inf on a silent channel. This is the RSSI the CO-MAP
// enhanced scheduler monitors.
func (t *Transceiver) AggregateSignalDBm() float64 {
	sumMW := 0.0
	for _, tx := range t.medium.active {
		if tx.from == t {
			continue
		}
		sumMW += radio.DBmToMilliwatts(tx.rxAt(t.idx))
	}
	return radio.MilliwattsToDBm(sumMW)
}

// SetGrid installs a spatial shard grid: neighbor candidates are then drawn
// only from cells within the conservative audibility radius of each
// station's cell, making per-station cost proportional to the local
// neighborhood instead of N. Call before the run starts (it forces a full
// geometry rebuild). A nil grid restores the single-implicit-cell behavior.
// Station positions outside the grid are clamped to the nearest edge cell —
// topology validation rejects out-of-world initial placements before the
// medium ever sees them.
func (m *Medium) SetGrid(g *topology.Grid) {
	m.grid = g
	m.cells = nil
	m.nbrCells = nil
	m.geomDirty = true
}

// Grid returns the installed shard grid (nil for the implicit single cell).
func (m *Medium) Grid() *topology.Grid { return m.grid }

// audParams returns the audibility floor and the capped per-frame fading
// excursion of the current environment. A floor of -Inf disables pruning
// (margin set to +Inf, or an injected gain in effect).
func (m *Medium) audParams() (floor, fadeCap float64) {
	sigma := m.model.SigmaDB
	if sigma != 0 {
		fadeCap = audibilityFadeCapSigmas * math.Sqrt(1-m.staticFraction()) * sigma
	}
	floor = m.noise - m.AudibilityMarginDB
	if m.extraPathLossDB < 0 {
		// An injected gain could lift arbitrary pairs above the floor;
		// disable pruning entirely while one is active.
		floor = math.Inf(-1)
	}
	return floor, fadeCap
}

// audibilityRadius returns the conservative distance beyond which no pair
// can ever be classified audible: mean power at the strongest transmit
// power, plus the 6σ caps on both the static shadow and the per-frame fade,
// still falls below the floor. Cell pairs farther apart than this are not
// neighbors, and their stations never even draw a static shadow.
func (m *Medium) audibilityRadius(floor, fadeCap float64) float64 {
	if math.IsInf(floor, -1) {
		return math.Inf(1)
	}
	sigma := m.model.SigmaDB
	staticCap := 0.0
	if sigma != 0 {
		staticCap = audibilityFadeCapSigmas * math.Sqrt(m.staticFraction()) * sigma
	}
	maxPower := math.Inf(-1)
	for _, n := range m.nodes {
		if n.txPower > maxPower {
			maxPower = n.txPower
		}
	}
	if math.IsInf(maxPower, -1) {
		return 0
	}
	// MeanReceivedDBm is monotonically non-increasing in distance; bisect
	// for the largest distance still clearing the floor.
	lo, hi := 0.0, 1.0
	for m.model.MeanReceivedDBm(maxPower, hi)+staticCap+fadeCap >= floor {
		lo, hi = hi, hi*2
		if hi > 1e9 { // the whole planet is audible; don't prune by cell
			return math.Inf(1)
		}
	}
	for i := 0; i < 60; i++ {
		mid := (lo + hi) / 2
		if m.model.MeanReceivedDBm(maxPower, mid)+staticCap+fadeCap >= floor {
			lo = mid
		} else {
			hi = mid
		}
	}
	return hi
}

// rebuildGeometry refreshes the sharded per-pair state: cell assignments,
// neighbor-cell sets and every station's sparse neighbor entries (mean
// received power, frozen static shadow, audibility). It runs lazily on the
// first transmission after a structural change, so bursts of updates cost
// one rebuild.
func (m *Medium) rebuildGeometry() {
	floor, fadeCap := m.audParams()
	m.rebuildCells(floor, fadeCap)
	for _, t := range m.nodes {
		m.rebuildNeighborsOf(t, floor, fadeCap)
	}
	m.geomDirty = false
}

// rebuildCells reassigns every station to its grid cell and refreshes the
// per-cell neighbor sets when the audibility radius changed. No-op without
// a grid.
func (m *Medium) rebuildCells(floor, fadeCap float64) {
	if m.grid == nil {
		return
	}
	nCells := m.grid.Cells()
	if len(m.cells) != nCells {
		m.cells = make([][]*Transceiver, nCells)
	} else {
		for i := range m.cells {
			m.cells[i] = m.cells[i][:0]
		}
	}
	for _, t := range m.nodes { // ID order, so per-cell lists stay sorted
		t.cell = int32(m.grid.ClampedCellOf(t.pos))
		m.cells[t.cell] = append(m.cells[t.cell], t)
	}
	radius := m.audibilityRadius(floor, fadeCap)
	if m.nbrCells == nil || radius != m.nbrRadius {
		m.nbrRadius = radius
		m.nbrCells = make([][]int32, nCells)
		for c := 0; c < nCells; c++ {
			m.nbrCells[c] = m.grid.CellsWithin(c, radius)
		}
	}
}

// neighborCandidates returns the ID-ordered candidate receivers for t: all
// stations of t's neighbor cells (including t itself; callers skip it).
// Without a grid every node is a candidate — the dense behavior. The
// returned slice aliases m.candScratch and is only valid until the next
// call.
func (m *Medium) neighborCandidates(t *Transceiver) []*Transceiver {
	if m.grid == nil {
		return m.nodes
	}
	cand := m.candScratch[:0]
	for _, c := range m.nbrCells[t.cell] {
		cand = append(cand, m.cells[c]...)
	}
	// Each cell list is ID-ordered but their concatenation is not; sort so
	// neighbor entries (and with them static-shadow stream creation and
	// audible lists) keep the global ID order.
	sort.Slice(cand, func(i, j int) bool { return cand[i].id < cand[j].id })
	m.candScratch = cand
	return cand
}

// rebuildNeighborsOf recomputes t's sparse neighbor entries from its
// current candidates, drawing static shadows lazily for pairs first seen.
func (m *Medium) rebuildNeighborsOf(t *Transceiver, floor, fadeCap float64) {
	nbs := t.nbs[:0]
	for _, r := range m.neighborCandidates(t) {
		if r == t {
			continue
		}
		d := t.pos.DistanceTo(r.pos)
		mean := m.model.MeanReceivedDBm(t.txPower, d)
		static := m.staticShadowFor(t.id, r.id)
		nbs = append(nbs, pairEntry{
			rx:       r,
			meanDBm:  mean,
			staticDB: static,
			audible:  mean+static+fadeCap >= floor,
		})
	}
	t.nbs = nbs
	t.audValid = false
}

// audibleOf returns t's audible receivers in ID order, rebuilding the
// snapshot lazily. The slice is freshly allocated whenever entries changed,
// so in-flight transmissions holding an older snapshot as their heard list
// never see it mutate.
func (m *Medium) audibleOf(t *Transceiver) []*Transceiver {
	if !t.audValid {
		aud := make([]*Transceiver, 0, len(t.nbs))
		for i := range t.nbs {
			if t.nbs[i].audible {
				aud = append(aud, t.nbs[i].rx)
			}
		}
		t.aud = aud
		t.audValid = true
	}
	return t.aud
}

// moveNode applies a single-station position change incrementally: the
// station migrates between cell lists, its own neighbor entries are rebuilt
// from the new neighborhood, and the reverse entries of every station in
// the old and new neighborhoods are updated in place — no full N×N rebuild.
// The result is indistinguishable from a full rebuild: the same entry
// values (pure functions of current positions) and the same static-shadow
// streams (per-pair, order-independent).
func (m *Medium) moveNode(t *Transceiver, p geom.Point) {
	floor, fadeCap := m.audParams()
	t.pos = p
	oldCell := t.cell
	if m.grid != nil {
		newCell := int32(m.grid.ClampedCellOf(p))
		if newCell != oldCell {
			m.cells[oldCell] = removeStation(m.cells[oldCell], t)
			m.cells[newCell] = insertStation(m.cells[newCell], t)
			t.cell = newCell
		}
	}
	m.rebuildNeighborsOf(t, floor, fadeCap)

	if m.grid == nil {
		for _, s := range m.nodes {
			if s != t {
				m.updateEntryFor(s, t, floor, fadeCap)
			}
		}
		return
	}
	// Walk the union of the old and new neighbor-cell sets (both
	// ascending): stations still in range get their entry for t refreshed,
	// stations only in the old neighborhood drop it.
	oldNbrs, newNbrs := m.nbrCells[oldCell], m.nbrCells[t.cell]
	i, j := 0, 0
	for i < len(oldNbrs) || j < len(newNbrs) {
		var c int32
		inNew := false
		switch {
		case i >= len(oldNbrs):
			c, inNew = newNbrs[j], true
			j++
		case j >= len(newNbrs):
			c = oldNbrs[i]
			i++
		case oldNbrs[i] < newNbrs[j]:
			c = oldNbrs[i]
			i++
		case newNbrs[j] < oldNbrs[i]:
			c, inNew = newNbrs[j], true
			j++
		default:
			c, inNew = oldNbrs[i], true
			i, j = i+1, j+1
		}
		for _, s := range m.cells[c] {
			if s == t {
				continue
			}
			if inNew {
				m.updateEntryFor(s, t, floor, fadeCap)
			} else {
				m.dropEntryFor(s, t)
			}
		}
	}
}

// updateEntryFor refreshes (or inserts) s's neighbor entry toward r after r
// moved, invalidating s's audible snapshot only when membership or
// audibility actually changed.
func (m *Medium) updateEntryFor(s, r *Transceiver, floor, fadeCap float64) {
	d := s.pos.DistanceTo(r.pos)
	mean := m.model.MeanReceivedDBm(s.txPower, d)
	static := m.staticShadowFor(s.id, r.id)
	audible := mean+static+fadeCap >= floor
	k := searchEntry(s.nbs, r.id)
	if k < len(s.nbs) && s.nbs[k].rx == r {
		if s.nbs[k].audible != audible {
			s.audValid = false
		}
		s.nbs[k].meanDBm = mean
		s.nbs[k].staticDB = static
		s.nbs[k].audible = audible
		return
	}
	s.nbs = append(s.nbs, pairEntry{})
	copy(s.nbs[k+1:], s.nbs[k:])
	s.nbs[k] = pairEntry{rx: r, meanDBm: mean, staticDB: static, audible: audible}
	s.audValid = false
}

// dropEntryFor removes s's neighbor entry toward r (r moved out of range).
func (m *Medium) dropEntryFor(s, r *Transceiver) {
	k := searchEntry(s.nbs, r.id)
	if k < len(s.nbs) && s.nbs[k].rx == r {
		if s.nbs[k].audible {
			s.audValid = false
		}
		s.nbs = append(s.nbs[:k], s.nbs[k+1:]...)
	}
}

// searchEntry returns the insertion index of id in the ID-ordered entries.
func searchEntry(nbs []pairEntry, id frame.NodeID) int {
	return sort.Search(len(nbs), func(i int) bool { return nbs[i].rx.id >= id })
}

// removeStation deletes t from an ID-ordered cell list, preserving order.
func removeStation(cell []*Transceiver, t *Transceiver) []*Transceiver {
	k := sort.Search(len(cell), func(i int) bool { return cell[i].id >= t.id })
	if k < len(cell) && cell[k] == t {
		return append(cell[:k], cell[k+1:]...)
	}
	return cell
}

// insertStation adds t to an ID-ordered cell list, preserving order.
func insertStation(cell []*Transceiver, t *Transceiver) []*Transceiver {
	k := sort.Search(len(cell), func(i int) bool { return cell[i].id >= t.id })
	cell = append(cell, nil)
	copy(cell[k+1:], cell[k:])
	cell[k] = t
	return cell
}

// newTransmission takes a pooled transmission record (or allocates the first
// time) sized for the current node count.
func (m *Medium) newTransmission(t *Transceiver, f frame.Frame, rate phy.Rate) *transmission {
	var tx *transmission
	if n := len(m.txPool); n > 0 {
		tx = m.txPool[n-1]
		m.txPool[n-1] = nil
		m.txPool = m.txPool[:n-1]
	} else {
		tx = &transmission{}
	}
	tx.from, tx.f, tx.rate = t, f, rate
	if cap(tx.rx) < len(m.nodes) {
		tx.rx = make([]float64, len(m.nodes))
	} else {
		tx.rx = tx.rx[:len(m.nodes)]
	}
	return tx
}

// releaseTransmission returns a finished record to the pool. The dense power
// slice is kept for reuse; reference fields are cleared so pooled records do
// not retain transceivers or payload metadata.
func (m *Medium) releaseTransmission(tx *transmission) {
	tx.from = nil
	tx.f = frame.Frame{}
	tx.heard = nil
	m.txPool = append(m.txPool, tx)
}

// Transmit puts a frame on the air for the given airtime at the given rate.
// It returns an error if the node is already transmitting. Any reception in
// progress is aborted (half-duplex radio).
func (t *Transceiver) Transmit(f frame.Frame, rate phy.Rate, airtime time.Duration) error {
	if t.sending != nil {
		return fmt.Errorf("channel: node %d already transmitting", t.id)
	}
	if airtime <= 0 {
		return fmt.Errorf("channel: non-positive airtime %v", airtime)
	}
	m := t.medium
	if m.geomDirty {
		m.rebuildGeometry()
	}
	tx := m.newTransmission(t, f, rate)
	// Received powers: precomputed mean + (frozen static + fresh fading) −
	// extra loss, with the fading draw taken for every node in ID order —
	// including pruned ones — so the shared shadowing stream advances
	// identically whether or not pruning skips any pair ("keep the draw,
	// skip the work").
	sigma := m.model.SigmaDB
	fadeScale := 0.0
	if sigma != 0 {
		fadeScale = math.Sqrt(1-m.staticFraction()) * sigma
	}
	// Merge the sparse ID-ordered neighbor entries against the global
	// ID-ordered node list: nodes without an entry (pruned by the shard
	// grid) still draw, then land at -Inf.
	nbs := t.nbs
	j := 0
	for _, n := range m.nodes {
		if n == t {
			continue
		}
		var e *pairEntry
		if j < len(nbs) && nbs[j].rx == n {
			e = &nbs[j]
			j++
		}
		shadow := 0.0
		if sigma != 0 {
			draw := m.rng.NormFloat64()
			if e != nil {
				shadow = e.staticDB + fadeScale*draw
			}
		}
		if e != nil && e.audible {
			tx.rx[n.idx] = e.meanDBm + shadow - m.extraPathLossDB
		} else {
			tx.rx[n.idx] = math.Inf(-1)
		}
	}
	tx.rx[t.idx] = math.Inf(-1)
	tx.heard = m.audibleOf(t)
	t.sending = tx
	t.lock = nil // half-duplex: abort any reception
	tx.activeIdx = len(m.active)
	m.active = append(m.active, tx)
	m.txStarts.Inc()
	m.touchAir()
	if m.OnTransmitStart != nil {
		m.OnTransmitStart(t.id, f, rate, airtime)
	}

	for _, n := range tx.heard {
		m.onAirChanged(n)
		m.maybeLock(n, tx)
	}

	if m.HeaderIndicationAt != nil && f.Kind == frame.Data {
		if at := m.HeaderIndicationAt(rate); at > 0 && at < airtime {
			m.eng.AfterTagged(at, sim.TagChannel, int32(t.id), func() { m.emitHeaderIndication(tx) })
		}
	}

	m.eng.AfterTagged(airtime, sim.TagChannel, int32(t.id), func() { m.endTransmission(tx) })
	return nil
}

// staticFraction returns StaticShadowFraction clamped to [0, 1].
func (m *Medium) staticFraction() float64 {
	f := m.StaticShadowFraction
	if f < 0 {
		return 0
	}
	if f > 1 {
		return 1
	}
	return f
}

// emitHeaderIndication delivers the embedded discovery header of an
// in-flight data frame to every node whose radio is locked onto it and has
// decoded it cleanly so far. Only nodes audible at transmission start can
// hold such a lock.
func (m *Medium) emitHeaderIndication(tx *transmission) {
	hdr := frame.Frame{Kind: frame.ComapHeader, Src: tx.f.Src, Dst: tx.f.Dst, Retry: true}
	for _, n := range tx.heard {
		if n.listener == nil {
			continue
		}
		if n.lock != nil && n.lock.tx == tx && !n.lock.corrupted {
			n.listener.FrameReceived(hdr, true, n.lock.signalDBm)
		}
	}
}

// maybeLock lets node n attempt to lock onto freshly started transmission tx,
// including re-locking from a weaker ongoing reception (capture).
func (m *Medium) maybeLock(n *Transceiver, tx *transmission) {
	if n.sending != nil {
		return
	}
	p := tx.rxAt(n.idx)
	if p < tx.rate.SensitivityDBm {
		return
	}
	if n.lock != nil {
		// Message-in-message capture: a sufficiently stronger new frame
		// steals the radio; the old frame is lost (it would be corrupted by
		// the strong arrival anyway).
		if m.CaptureMarginDB < 0 || p < n.lock.signalDBm+m.CaptureMarginDB {
			return
		}
	}
	n.rec = reception{tx: tx, signalDBm: p}
	n.lock = &n.rec
	m.updateSINR(n)
}

// updateSINR re-evaluates the SINR of n's current lock against all other
// active transmissions and latches corruption if it falls below the rate's
// threshold.
func (m *Medium) updateSINR(n *Transceiver) {
	rec := n.lock
	if rec == nil || rec.corrupted {
		return
	}
	interferers := m.sinrScratch[:0]
	for _, other := range m.active {
		if other == rec.tx || other.from == n {
			continue
		}
		interferers = append(interferers, other.rxAt(n.idx))
	}
	m.sinrScratch = interferers[:0]
	sinr := radio.SINRdB(rec.signalDBm, m.noise, interferers...)
	if sinr < rec.tx.rate.MinSIRdB {
		rec.corrupted = true
		// A collision overlap: interference pushed this node's locked frame
		// below its SINR threshold. Latched once per reception.
		m.collisions.Inc()
		n.collisions.Inc()
	}
}

// onAirChanged notifies node n that the set of audible transmissions changed
// and re-checks its lock's SINR.
func (m *Medium) onAirChanged(n *Transceiver) {
	m.updateSINR(n)
	if n.listener != nil {
		n.listener.EnergyChanged(n.AggregateSignalDBm())
	}
}

// endTransmission removes tx from the air, delivers it to any locked
// receiver and notifies every node that heard it of the energy change.
func (m *Medium) endTransmission(tx *transmission) {
	// Ordered removal at the stored index: the order of m.active fixes the
	// floating-point summation order of every power aggregate, so a
	// swap-remove would change low-order result bits whenever three or more
	// transmissions overlap (see DESIGN.md).
	i := tx.activeIdx
	copy(m.active[i:], m.active[i+1:])
	m.active[len(m.active)-1] = nil
	m.active = m.active[:len(m.active)-1]
	for j := i; j < len(m.active); j++ {
		m.active[j].activeIdx = j
	}
	tx.from.sending = nil
	m.touchAir()

	for _, n := range tx.heard {
		if n == tx.from {
			continue
		}
		if n.lock != nil && n.lock.tx == tx {
			rec := n.lock
			ok, rssi := !rec.corrupted, rec.signalDBm
			n.lock = nil
			if n.listener != nil {
				n.listener.FrameReceived(tx.f, ok, rssi)
			}
		}
		m.onAirChanged(n)
	}
	if tx.from.listener != nil {
		tx.from.listener.TransmitDone(tx.f)
	}
	// Recycle only after the last callback: a synchronous re-Transmit from
	// TransmitDone takes a different pooled record.
	m.releaseTransmission(tx)
}

// ReceivedPowerSampleDBm draws one shadowed received-power sample from src to
// dst using the medium's model and random stream. It is exposed for
// diagnostic tools; protocol logic uses the per-frame samples.
func (m *Medium) ReceivedPowerSampleDBm(src, dst *Transceiver) float64 {
	d := src.pos.DistanceTo(dst.pos)
	return m.model.MeanReceivedDBm(src.txPower, d) + m.shadowDB(src.id, dst.id) - m.extraPathLossDB
}

// shadowDB returns the shadowing term (dB) for a frame from a to b: the
// frozen static component of the pair plus a fresh per-frame fading draw.
// The static component is derived deterministically from the engine seed and
// the pair, so runs replay exactly regardless of event order.
func (m *Medium) shadowDB(a, b frame.NodeID) float64 {
	sigma := m.model.SigmaDB
	if sigma == 0 {
		return 0
	}
	f := m.staticFraction()
	fading := math.Sqrt(1-f) * sigma * m.rng.NormFloat64()
	if f == 0 {
		return fading
	}
	return m.staticShadowFor(a, b) + fading
}

// staticShadowFor returns the frozen static shadowing component of the pair,
// drawing it on first use from the pair's own named stream — so the value
// depends only on (seed, pair), never on when or in what order pairs are
// first used.
func (m *Medium) staticShadowFor(a, b frame.NodeID) float64 {
	sigma := m.model.SigmaDB
	f := m.staticFraction()
	if sigma == 0 || f == 0 {
		return 0
	}
	key := makePairKey(a, b)
	static, ok := m.staticShadow[key]
	if !ok {
		pairRNG := m.eng.RNG(fmt.Sprintf("channel.static.%d.%d", key.lo, key.hi))
		static = math.Sqrt(f) * sigma * pairRNG.NormFloat64()
		m.staticShadow[key] = static
	}
	return static
}

// SilentDBm is the aggregate power reported on an idle channel.
var SilentDBm = math.Inf(-1)
