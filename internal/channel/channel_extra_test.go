package channel

import (
	"math"
	"testing"
	"time"

	"repro/internal/frame"
	"repro/internal/geom"
	"repro/internal/phy"
	"repro/internal/radio"
	"repro/internal/sim"
)

func TestCaptureRelocksOntoStrongFrame(t *testing.T) {
	eng, m := newTestMedium(t, 1)
	rx := &recorder{}
	far := m.AddNode(1, geom.Pt(40, 0), 0, &recorder{})
	near := m.AddNode(3, geom.Pt(5, 0), 0, &recorder{})
	m.AddNode(2, geom.Pt(0, 0), 0, rx)

	// Weak frame first, then a much stronger one: the radio must re-lock.
	if err := far.Transmit(frame.Frame{Kind: frame.Data, Src: 1, Dst: 2, PayloadBytes: 800},
		phy.RateDSSS1, 4*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	eng.After(time.Millisecond, func() {
		if err := near.Transmit(frame.Frame{Kind: frame.Data, Src: 3, Dst: 2, PayloadBytes: 200},
			phy.RateDSSS1, time.Millisecond); err != nil {
			t.Error(err)
		}
	})
	eng.Run()
	// The strong frame is delivered (capture); the weak one is silently lost.
	if len(rx.frames) != 1 {
		t.Fatalf("frames = %+v", rx.frames)
	}
	if rx.frames[0].f.Src != 3 || !rx.frames[0].ok {
		t.Errorf("capture delivered %+v", rx.frames[0])
	}
}

func TestCaptureDisabled(t *testing.T) {
	eng, m := newTestMedium(t, 1)
	m.CaptureMarginDB = -1 // disable capture entirely
	rx := &recorder{}
	far := m.AddNode(1, geom.Pt(40, 0), 0, &recorder{})
	near := m.AddNode(3, geom.Pt(5, 0), 0, &recorder{})
	m.AddNode(2, geom.Pt(0, 0), 0, rx)

	_ = far.Transmit(frame.Frame{Kind: frame.Data, Src: 1, Dst: 2, PayloadBytes: 800},
		phy.RateDSSS1, 4*time.Millisecond)
	eng.After(time.Millisecond, func() {
		_ = near.Transmit(frame.Frame{Kind: frame.Data, Src: 3, Dst: 2, PayloadBytes: 200},
			phy.RateDSSS1, time.Millisecond)
	})
	eng.Run()
	// The radio stays on the weak frame, which the strong one corrupts.
	if len(rx.frames) != 1 {
		t.Fatalf("frames = %+v", rx.frames)
	}
	if rx.frames[0].f.Src != 1 || rx.frames[0].ok {
		t.Errorf("no-capture delivered %+v", rx.frames[0])
	}
}

func TestHeaderIndicationEmitted(t *testing.T) {
	eng, m := newTestMedium(t, 1)
	p := phy.DSSS()
	m.HeaderIndicationAt = func(r phy.Rate) time.Duration {
		return p.PreambleHeader + p.PayloadAirtime(r, phy.MACHeaderBytes+4)
	}
	rx := &recorder{}
	a := m.AddNode(1, geom.Pt(0, 0), 0, &recorder{})
	m.AddNode(2, geom.Pt(10, 0), 0, rx)

	if err := a.Transmit(frame.Frame{Kind: frame.Data, Src: 1, Dst: 2, Seq: 7, PayloadBytes: 500},
		phy.RateDSSS11, 2*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	// Expect the in-flight header indication (Retry=true) before the data.
	if len(rx.frames) != 2 {
		t.Fatalf("frames = %+v", rx.frames)
	}
	hdr := rx.frames[0]
	if hdr.f.Kind != frame.ComapHeader || !hdr.f.Retry || hdr.f.Src != 1 || hdr.f.Dst != 2 {
		t.Errorf("header indication = %+v", hdr.f)
	}
	if rx.frames[1].f.Kind != frame.Data {
		t.Errorf("second delivery = %+v", rx.frames[1].f)
	}
}

func TestHeaderIndicationSkipsCorruptedLocks(t *testing.T) {
	eng, m := newTestMedium(t, 1)
	p := phy.DSSS()
	m.HeaderIndicationAt = func(r phy.Rate) time.Duration {
		return p.PreambleHeader + p.PayloadAirtime(r, phy.MACHeaderBytes+4)
	}
	rx := &recorder{}
	a := m.AddNode(1, geom.Pt(12, 0), 0, &recorder{})
	c := m.AddNode(3, geom.Pt(-12, 0), 0, &recorder{})
	m.AddNode(2, geom.Pt(0, 0), 0, rx)

	// Two equal-power frames collide immediately; the indication (scheduled
	// after the preamble) must not fire for the corrupted lock.
	_ = a.Transmit(frame.Frame{Kind: frame.Data, Src: 1, Dst: 2, PayloadBytes: 800},
		phy.RateDSSS1, 7*time.Millisecond)
	eng.After(10*time.Microsecond, func() {
		_ = c.Transmit(frame.Frame{Kind: frame.Data, Src: 3, Dst: 2, PayloadBytes: 800},
			phy.RateDSSS1, 7*time.Millisecond)
	})
	eng.Run()
	for _, r := range rx.frames {
		if r.f.Kind == frame.ComapHeader {
			t.Errorf("indication emitted from corrupted reception: %+v", r.f)
		}
	}
}

func TestStaticShadowFractionZeroMatchesPureFading(t *testing.T) {
	eng := sim.New(3)
	m := NewMedium(eng, radio.NewLogNormal2400(2.9, 4), -95)
	m.StaticShadowFraction = 0
	a := m.AddNode(1, geom.Pt(0, 0), 0, &recorder{})
	b := m.AddNode(2, geom.Pt(30, 0), 0, &recorder{})
	// With no static component, repeated samples vary frame to frame.
	seen := make(map[float64]bool)
	for i := 0; i < 10; i++ {
		seen[m.ReceivedPowerSampleDBm(a, b)] = true
	}
	if len(seen) < 9 {
		t.Errorf("samples not varying: %d distinct of 10", len(seen))
	}
}

func TestStaticShadowFullyFrozen(t *testing.T) {
	eng := sim.New(4)
	m := NewMedium(eng, radio.NewLogNormal2400(2.9, 4), -95)
	m.StaticShadowFraction = 1
	a := m.AddNode(1, geom.Pt(0, 0), 0, &recorder{})
	b := m.AddNode(2, geom.Pt(30, 0), 0, &recorder{})
	first := m.ReceivedPowerSampleDBm(a, b)
	for i := 0; i < 5; i++ {
		if got := m.ReceivedPowerSampleDBm(a, b); got != first {
			t.Fatalf("fully static shadowing varied: %v vs %v", got, first)
		}
	}
	// Reciprocity: the static component is symmetric, and with f=1 the whole
	// sample is.
	if got := m.ReceivedPowerSampleDBm(b, a); got != first {
		t.Errorf("asymmetric static shadowing: %v vs %v", got, first)
	}
}

func TestStaticShadowStatistics(t *testing.T) {
	// Whatever the split, the composite per-frame deviation must equal the
	// model's sigma (here 4 dB) across pairs.
	eng := sim.New(5)
	m := NewMedium(eng, radio.NewLogNormal2400(2.9, 4), -95)
	mean := m.Model().MeanReceivedDBm(0, 30)
	var sum, sum2 float64
	const pairs = 400
	for i := 0; i < pairs; i++ {
		a := m.AddNode(frame.NodeID(2*i+1), geom.Pt(0, 0), 0, nil)
		b := m.AddNode(frame.NodeID(2*i+2), geom.Pt(30, 0), 0, nil)
		v := m.ReceivedPowerSampleDBm(a, b) - mean
		sum += v
		sum2 += v * v
	}
	sampleMean := sum / pairs
	std := math.Sqrt(sum2/pairs - sampleMean*sampleMean)
	if math.Abs(sampleMean) > 0.5 {
		t.Errorf("shadow mean = %v, want ~0", sampleMean)
	}
	if math.Abs(std-4) > 0.5 {
		t.Errorf("shadow std = %v, want ~4", std)
	}
}

func TestSetTxPower(t *testing.T) {
	_, m := newTestMedium(t, 1)
	a := m.AddNode(1, geom.Pt(0, 0), 0, &recorder{})
	b := m.AddNode(2, geom.Pt(10, 0), 0, &recorder{})
	before := m.ReceivedPowerSampleDBm(a, b)
	a.SetTxPowerDBm(10)
	if a.TxPowerDBm() != 10 {
		t.Errorf("TxPowerDBm = %v", a.TxPowerDBm())
	}
	after := m.ReceivedPowerSampleDBm(a, b)
	if math.Abs((after-before)-10) > 1e-9 {
		t.Errorf("power change = %v, want +10 dB", after-before)
	}
}

func TestMediumAccessors(t *testing.T) {
	eng, m := newTestMedium(t, 1)
	if m.Engine() != eng {
		t.Error("Engine accessor")
	}
	if m.NoiseFloorDBm() != -95 {
		t.Error("NoiseFloorDBm accessor")
	}
	if m.Model().Alpha != 2.9 {
		t.Error("Model accessor")
	}
}
