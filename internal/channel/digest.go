package channel

import (
	"sort"

	"repro/internal/audit"
	"repro/internal/frame"
)

// DigestState folds the medium's causal state into an audit deep digest:
// environment knobs, every transceiver's radio state (position, power,
// transmit/lock status) in dense-index order, in-flight transmissions in
// active order, and the frozen static-shadow table in sorted pair order.
// Read-only; called at ledger deep-digest slices on the sim goroutine.
func (m *Medium) DigestState(h *audit.Hasher) {
	h.Float64(m.noise)
	h.Float64(m.extraPathLossDB)
	h.Int(len(m.nodes))
	for _, t := range m.nodes {
		h.Int(int(t.id))
		h.Float64(t.pos.X)
		h.Float64(t.pos.Y)
		h.Float64(t.txPower)
		h.Bool(t.sending != nil)
		if t.sending != nil {
			digestFrame(h, t.sending.f)
		}
		h.Bool(t.lock != nil)
		if t.lock != nil {
			digestFrame(h, t.lock.tx.f)
			h.Float64(t.lock.signalDBm)
			h.Bool(t.lock.corrupted)
		}
	}
	h.Int(len(m.active))
	for _, tx := range m.active {
		h.Int(int(tx.from.id))
		digestFrame(h, tx.f)
		h.Float64(tx.rate.BitsPerSec)
	}
	// Static shadowing is frozen per topology instance; a run that redrew
	// it (geometry rebuild after churn) digests differently from one that
	// kept the old table.
	pairs := make([]pairKey, 0, len(m.staticShadow))
	for k := range m.staticShadow {
		pairs = append(pairs, k)
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].lo != pairs[j].lo {
			return pairs[i].lo < pairs[j].lo
		}
		return pairs[i].hi < pairs[j].hi
	})
	h.Int(len(pairs))
	for _, k := range pairs {
		h.Int(int(k.lo))
		h.Int(int(k.hi))
		h.Float64(m.staticShadow[k])
	}
}

// digestFrame folds every field of a frame.
func digestFrame(h *audit.Hasher, f frame.Frame) {
	h.Int(int(f.Kind))
	h.Int(int(f.Src))
	h.Int(int(f.Dst))
	h.Uint16(f.Seq)
	h.Int(f.PayloadBytes)
	h.Bool(f.Retry)
	h.Uint64(uint64(f.Bitmap))
	h.Float64(f.X)
	h.Float64(f.Y)
}
