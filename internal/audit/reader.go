package audit

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// ReadFile parses a JSONL ledger from disk.
func ReadFile(path string) (*LedgerFile, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	lf, err := Read(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return lf, nil
}

// Read parses a JSONL ledger: a manifest line followed by typed slice /
// event / end records. A missing end record is not an error (the run may
// have crashed mid-flight — comparing a truncated ledger is exactly how a
// crash site gets localized); an unknown record type is.
func Read(r io.Reader) (*LedgerFile, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lf := &LedgerFile{}
	line := 0
	for sc.Scan() {
		raw := sc.Bytes()
		line++
		if len(raw) == 0 {
			continue
		}
		if line == 1 {
			if err := json.Unmarshal(raw, &lf.Manifest); err != nil {
				return nil, fmt.Errorf("line 1: manifest: %w", err)
			}
			if lf.Manifest.Version != ManifestVersion {
				return nil, fmt.Errorf("line 1: unsupported ledger version %q (want %q)", lf.Manifest.Version, ManifestVersion)
			}
			continue
		}
		var probe struct {
			Type string `json:"type"`
		}
		if err := json.Unmarshal(raw, &probe); err != nil {
			return nil, fmt.Errorf("line %d: %w", line, err)
		}
		switch probe.Type {
		case "slice":
			var rec SliceRecord
			if err := json.Unmarshal(raw, &rec); err != nil {
				return nil, fmt.Errorf("line %d: slice: %w", line, err)
			}
			lf.Slices = append(lf.Slices, rec)
		case "event":
			var rec EventRecord
			if err := json.Unmarshal(raw, &rec); err != nil {
				return nil, fmt.Errorf("line %d: event: %w", line, err)
			}
			lf.Events = append(lf.Events, rec)
		case "end":
			var rec EndRecord
			if err := json.Unmarshal(raw, &rec); err != nil {
				return nil, fmt.Errorf("line %d: end: %w", line, err)
			}
			lf.End = &rec
		default:
			return nil, fmt.Errorf("line %d: unknown record type %q", line, probe.Type)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if line == 0 {
		return nil, fmt.Errorf("empty ledger")
	}
	return lf, nil
}
