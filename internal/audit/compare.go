package audit

import (
	"fmt"
	"sort"
	"strings"
)

// EventDiff pinpoints the first divergent captured event. One side is nil
// when that ledger's capture stream ended early.
type EventDiff struct {
	Seq uint64 // dispatch sequence where the streams split (min of the two)
	A   *EventRecord
	B   *EventRecord
}

// Divergence describes the first point where two ledgers split. Kind is one
// of "manifest", "event", "slice", "end", "length".
type Divergence struct {
	Kind   string
	Reason string // populated for manifest/end/length kinds

	// Slice-level localization (kind "slice", and "event" when the event
	// falls inside a recorded slice).
	SliceIdx     int64
	SliceStartUs int64
	SliceEndUs   int64
	Tags         []string // per-tag chains that split in that slice
	Deep         []string // deep digests that split in that slice

	Event *EventDiff // kind "event" only
}

// String renders the divergence as the one-line-per-fact report the CLI
// prints.
func (d *Divergence) String() string {
	var b strings.Builder
	switch d.Kind {
	case "manifest":
		fmt.Fprintf(&b, "manifests differ: %s", d.Reason)
	case "event":
		fmt.Fprintf(&b, "first divergent event at dispatch seq %d", d.Event.Seq)
		if d.SliceEndUs > d.SliceStartUs {
			fmt.Fprintf(&b, " (slice %d, [%dus, %dus))", d.SliceIdx, d.SliceStartUs, d.SliceEndUs)
		}
		b.WriteString("\n")
		describe := func(side string, e *EventRecord) {
			if e == nil {
				fmt.Fprintf(&b, "  %s: <no event — stream ended>\n", side)
				return
			}
			fmt.Fprintf(&b, "  %s: tag=%s sim-time=%dns owner=%d\n", side, e.Tag, e.AtNs, e.Owner)
		}
		describe("A", d.Event.A)
		describe("B", d.Event.B)
	case "slice":
		fmt.Fprintf(&b, "first divergent slice: %d [%dus, %dus)\n", d.SliceIdx, d.SliceStartUs, d.SliceEndUs)
		if len(d.Tags) > 0 {
			fmt.Fprintf(&b, "  subsystem chains split: %s\n", strings.Join(d.Tags, ", "))
		}
		if len(d.Deep) > 0 {
			fmt.Fprintf(&b, "  deep digests split: %s\n", strings.Join(d.Deep, ", "))
		}
		if len(d.Tags) == 0 && len(d.Deep) == 0 {
			b.WriteString("  event counts differ with identical chains (slice bookkeeping)\n")
		}
	case "length", "end":
		fmt.Fprintf(&b, "%s mismatch: %s", d.Kind, d.Reason)
	default:
		fmt.Fprintf(&b, "%s: %s", d.Kind, d.Reason)
	}
	return strings.TrimRight(b.String(), "\n")
}

// Compare returns the first divergence between two ledgers, or nil when
// they are semantically equal. Environment manifest fields (host, go
// version, timestamps) are ignored; everything causal — configuration keys,
// captured events, every slice's chains and deep digests, the end record —
// must match.
func Compare(a, b *LedgerFile) *Divergence {
	if reason, ok := a.Manifest.Comparable(&b.Manifest); !ok {
		return &Divergence{Kind: "manifest", Reason: reason}
	}
	// Captured events are the finest-grained stream: when both ledgers
	// recorded a capture window, the first split there precedes (and
	// explains) any slice split inside the window.
	if len(a.Events) > 0 || len(b.Events) > 0 {
		if d := compareEvents(a, b); d != nil {
			return d
		}
	}
	if d := compareSlices(a, b); d != nil {
		return d
	}
	switch {
	case a.End == nil && b.End == nil:
		return nil
	case a.End == nil || b.End == nil:
		side := "A"
		if b.End == nil {
			side = "B"
		}
		return &Divergence{Kind: "end", Reason: fmt.Sprintf("ledger %s has no end record (truncated run?)", side)}
	case a.End.Events != b.End.Events:
		return &Divergence{Kind: "end", Reason: fmt.Sprintf("total events %d vs %d", a.End.Events, b.End.Events)}
	case a.End.Head != b.End.Head:
		return &Divergence{Kind: "end", Reason: fmt.Sprintf("head digest %s vs %s", a.End.Head, b.End.Head)}
	}
	return nil
}

func compareEvents(a, b *LedgerFile) *Divergence {
	n := len(a.Events)
	if len(b.Events) < n {
		n = len(b.Events)
	}
	for i := 0; i < n; i++ {
		ea, eb := a.Events[i], b.Events[i]
		if ea.Seq == eb.Seq && ea.AtNs == eb.AtNs && ea.Tag == eb.Tag && ea.Owner == eb.Owner {
			continue
		}
		return eventDivergence(a, &ea, &eb)
	}
	if len(a.Events) != len(b.Events) {
		var ea, eb *EventRecord
		if n < len(a.Events) {
			ea = &a.Events[n]
		}
		if n < len(b.Events) {
			eb = &b.Events[n]
		}
		return eventDivergence(a, ea, eb)
	}
	return nil
}

// eventDivergence wraps the first split pair, locating it in ledger A's
// slice grid for context.
func eventDivergence(a *LedgerFile, ea, eb *EventRecord) *Divergence {
	d := &Divergence{Kind: "event", Event: &EventDiff{A: ea, B: eb}}
	switch {
	case ea != nil && eb != nil:
		d.Event.Seq = ea.Seq
		if eb.Seq < ea.Seq {
			d.Event.Seq = eb.Seq
		}
	case ea != nil:
		d.Event.Seq = ea.Seq
	case eb != nil:
		d.Event.Seq = eb.Seq
	}
	atNs := int64(-1)
	if ea != nil {
		atNs = ea.AtNs
	} else if eb != nil {
		atNs = eb.AtNs
	}
	if atNs >= 0 {
		atUs := atNs / 1e3
		for _, s := range a.Slices {
			if atUs >= s.StartUs && atUs < s.EndUs {
				d.SliceIdx, d.SliceStartUs, d.SliceEndUs = s.Idx, s.StartUs, s.EndUs
				break
			}
		}
	}
	return d
}

func compareSlices(a, b *LedgerFile) *Divergence {
	n := len(a.Slices)
	if len(b.Slices) < n {
		n = len(b.Slices)
	}
	for i := 0; i < n; i++ {
		sa, sb := &a.Slices[i], &b.Slices[i]
		if sa.Idx != sb.Idx || sa.StartUs != sb.StartUs || sa.EndUs != sb.EndUs {
			return &Divergence{Kind: "length", Reason: fmt.Sprintf(
				"slice grids misaligned at record %d: A slice %d [%dus,%dus) vs B slice %d [%dus,%dus)",
				i, sa.Idx, sa.StartUs, sa.EndUs, sb.Idx, sb.StartUs, sb.EndUs)}
		}
		tags := mapDiffKeys(sa.Chains, sb.Chains)
		deep := mapDiffKeys(sa.Deep, sb.Deep)
		if len(tags) > 0 || len(deep) > 0 || sa.Events != sb.Events {
			return &Divergence{
				Kind: "slice", SliceIdx: sa.Idx,
				SliceStartUs: sa.StartUs, SliceEndUs: sa.EndUs,
				Tags: tags, Deep: deep,
			}
		}
	}
	if len(a.Slices) != len(b.Slices) {
		return &Divergence{Kind: "length", Reason: fmt.Sprintf("slice count %d vs %d", len(a.Slices), len(b.Slices))}
	}
	return nil
}

// mapDiffKeys returns the sorted union of keys whose values differ (missing
// counts as different).
func mapDiffKeys(a, b map[string]string) []string {
	var out []string
	for k, va := range a {
		if vb, ok := b[k]; !ok || vb != va {
			out = append(out, k)
		}
	}
	for k := range b {
		if _, ok := a[k]; !ok {
			out = append(out, k)
		}
	}
	sort.Strings(out)
	return out
}
