package audit

import (
	"fmt"
	"os"
	"runtime"
	"time"
)

// ManifestVersion identifies the ledger format. Bump when record shapes
// change incompatibly; readers reject unknown versions.
const ManifestVersion = "comap-audit/1"

// Manifest is the first line of every ledger: enough provenance to decide
// whether two ledgers are even comparable (same scenario, seed, options,
// topology) and to explain a mismatch that is config drift rather than
// nondeterminism. Host, GoVersion, GOOS, GOARCH and CreatedUTC are
// informational — Compare reports them but never fails on them.
type Manifest struct {
	Version      string `json:"version"`
	Scenario     string `json:"scenario"`
	Seed         int64  `json:"seed"`
	OptionsFP    string `json:"options_fp"`    // %016x FNV-1a over netsim.Options knobs (excluding Seed)
	Topology     string `json:"topology"`      // topology name, human hint only
	TopologyHash string `json:"topology_hash"` // %016x FNV-1a over nodes+flows
	SliceUs      int64  `json:"slice_us"`
	DeepEvery    int    `json:"deep_every"`
	GoVersion    string `json:"go_version"`
	GOOS         string `json:"goos"`
	GOARCH       string `json:"goarch"`
	Host         string `json:"host"`
	CreatedUTC   string `json:"created_utc"`
}

// FillEnv stamps the version and the informational environment fields.
// NewLedger calls it; other manifest embedders (comap-bench artifacts) call
// it themselves before serializing.
func (m *Manifest) FillEnv() {
	m.Version = ManifestVersion
	m.GoVersion = runtime.Version()
	m.GOOS = runtime.GOOS
	m.GOARCH = runtime.GOARCH
	if host, err := os.Hostname(); err == nil {
		m.Host = host
	}
	m.CreatedUTC = time.Now().UTC().Format(time.RFC3339)
}

// Comparable reports whether two manifests describe the same run
// configuration, returning a reason when they do not. Environment fields
// are deliberately ignored: ledgers recorded on different hosts or Go
// versions must still compare equal when the simulation is deterministic.
func (m *Manifest) Comparable(o *Manifest) (string, bool) {
	switch {
	case m.Version != o.Version:
		return fmt.Sprintf("ledger version %q vs %q", m.Version, o.Version), false
	case m.Scenario != o.Scenario:
		return fmt.Sprintf("scenario %q vs %q", m.Scenario, o.Scenario), false
	case m.Seed != o.Seed:
		return fmt.Sprintf("seed %d vs %d", m.Seed, o.Seed), false
	case m.OptionsFP != o.OptionsFP:
		return fmt.Sprintf("options fingerprint %s vs %s", m.OptionsFP, o.OptionsFP), false
	case m.TopologyHash != o.TopologyHash:
		return fmt.Sprintf("topology hash %s vs %s (%q vs %q)", m.TopologyHash, o.TopologyHash, m.Topology, o.Topology), false
	case m.SliceUs != o.SliceUs:
		return fmt.Sprintf("slice interval %dus vs %dus", m.SliceUs, o.SliceUs), false
	case m.DeepEvery != o.DeepEvery:
		return fmt.Sprintf("deep-digest cadence %d vs %d", m.DeepEvery, o.DeepEvery), false
	}
	return "", true
}
