package audit

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"repro/internal/sim"
)

func TestHasherDistinguishesInputs(t *testing.T) {
	sum := func(fold func(h *Hasher)) uint64 {
		h := NewHasher()
		fold(h)
		return h.Sum()
	}
	a := sum(func(h *Hasher) { h.String("ab"); h.String("c") })
	b := sum(func(h *Hasher) { h.String("a"); h.String("bc") })
	if a == b {
		t.Fatal("length-prefixed strings must not be concatenation-ambiguous")
	}
	if sum(func(h *Hasher) { h.Bool(true) }) == sum(func(h *Hasher) { h.Bool(false) }) {
		t.Fatal("bool folds collide")
	}
	if sum(func(h *Hasher) { h.Int64(-1) }) == sum(func(h *Hasher) { h.Uint64(1) }) {
		t.Fatal("sign must survive the fold")
	}
	if sum(func(h *Hasher) { h.Float64(1.5) }) != sum(func(h *Hasher) { h.Float64(1.5) }) {
		t.Fatal("identical floats must fold identically")
	}
}

func testManifest() Manifest {
	return Manifest{
		Scenario: "unit", Seed: 7,
		OptionsFP: "00000000000000aa", Topology: "t", TopologyHash: "00000000000000bb",
	}
}

// feed replays a fixed event schedule into a ledger.
func feed(l *Ledger, events [][3]int64) {
	for _, e := range events {
		l.OnEvent(time.Duration(e[0]), sim.Tag(e[1]), int32(e[2]))
	}
}

var fixedEvents = [][3]int64{
	{int64(10 * time.Millisecond), int64(sim.TagMAC), 1},
	{int64(20 * time.Millisecond), int64(sim.TagChannel), 2},
	{int64(120 * time.Millisecond), int64(sim.TagMAC), 1},   // closes slice 0
	{int64(250 * time.Millisecond), int64(sim.TagComap), 3}, // closes slice 1
}

func TestLedgerSliceAccounting(t *testing.T) {
	var buf bytes.Buffer
	l := NewLedger(Config{Sink: &buf, DeepEvery: 2}, testManifest())
	l.RegisterDeep("probe", func(h *Hasher) { h.Int(42) })
	feed(l, fixedEvents)
	l.Finish(300 * time.Millisecond)

	f := l.File()
	// Slices: 0,1 closed by events, 2 closed by Finish, plus the final
	// partial slice [300ms, 300ms).
	if len(f.Slices) != 4 {
		t.Fatalf("want 4 slice records, got %d", len(f.Slices))
	}
	if f.Slices[0].Events != 2 || f.Slices[1].Events != 3 || f.Slices[2].Events != 4 {
		t.Fatalf("cumulative event counts wrong: %+v", f.Slices)
	}
	// DeepEvery=2: slices 1 and 3 would be deep among regular closes
	// (idx+1 divisible by 2); the final Finish slice is always deep.
	if f.Slices[0].Deep != nil {
		t.Fatal("slice 0 unexpectedly deep")
	}
	if f.Slices[1].Deep == nil {
		t.Fatal("slice 1 should be deep (DeepEvery=2)")
	}
	if f.Slices[3].Deep == nil {
		t.Fatal("final slice must always be deep")
	}
	if f.End == nil || f.End.Events != 4 || f.End.Slices != 4 {
		t.Fatalf("end record wrong: %+v", f.End)
	}
	// Chains are cumulative: the mac chain must be identical in slices 1..3
	// (no mac events after the third event) and different from slice 0.
	if f.Slices[1].Chains["mac"] == f.Slices[0].Chains["mac"] {
		t.Fatal("mac chain did not advance across its second event")
	}
	if f.Slices[2].Chains["mac"] != f.Slices[1].Chains["mac"] {
		t.Fatal("mac chain advanced without mac events")
	}
}

func TestReaderRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	l := NewLedger(Config{Sink: &buf, DeepEvery: 2, CaptureFrom: 0, CaptureUntil: 50 * time.Millisecond}, testManifest())
	l.RegisterDeep("probe", func(h *Hasher) { h.Int(42) })
	feed(l, fixedEvents)
	l.Finish(300 * time.Millisecond)

	parsed, err := Read(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("read back: %v", err)
	}
	if d := Compare(l.File(), parsed); d != nil {
		t.Fatalf("round trip diverged: %s", d)
	}
	if len(parsed.Events) != 2 {
		t.Fatalf("capture window [0,50ms) should hold 2 events, got %d", len(parsed.Events))
	}
	if parsed.Events[0].Tag != "mac" || parsed.Events[0].Seq != 1 {
		t.Fatalf("first captured event wrong: %+v", parsed.Events[0])
	}
}

func TestCompareLocalizesChainSplit(t *testing.T) {
	mk := func(perturb bool) *LedgerFile {
		l := NewLedger(Config{}, testManifest())
		ev := fixedEvents
		if perturb {
			ev = append([][3]int64{}, fixedEvents...)
			ev[3] = [3]int64{int64(250 * time.Millisecond), int64(sim.TagComap), 99} // owner differs
		}
		feed(l, ev)
		l.Finish(300 * time.Millisecond)
		return l.File()
	}
	d := Compare(mk(false), mk(true))
	if d == nil {
		t.Fatal("perturbed owner not detected")
	}
	if d.Kind != "slice" || d.SliceIdx != 2 {
		t.Fatalf("want slice divergence at idx 2, got %+v", d)
	}
	if len(d.Tags) != 1 || d.Tags[0] != "comap" {
		t.Fatalf("want the comap chain named, got %v", d.Tags)
	}
	if !strings.Contains(d.String(), "comap") {
		t.Fatalf("report does not name the subsystem: %s", d)
	}
}

func TestCompareRefusesForeignManifests(t *testing.T) {
	a := NewLedger(Config{}, testManifest())
	a.Finish(100 * time.Millisecond)
	m := testManifest()
	m.Seed = 8
	b := NewLedger(Config{}, m)
	b.Finish(100 * time.Millisecond)
	d := Compare(a.File(), b.File())
	if d == nil || d.Kind != "manifest" || !strings.Contains(d.Reason, "seed") {
		t.Fatalf("seed mismatch not reported: %+v", d)
	}
}

func TestCompareIgnoresEnvironmentFields(t *testing.T) {
	a := NewLedger(Config{}, testManifest())
	feed(a, fixedEvents)
	a.Finish(300 * time.Millisecond)
	b := NewLedger(Config{}, testManifest())
	feed(b, fixedEvents)
	b.Finish(300 * time.Millisecond)
	bf := *b.File()
	bf.Manifest.Host = "elsewhere"
	bf.Manifest.GoVersion = "go999"
	bf.Manifest.CreatedUTC = "1970-01-01T00:00:00Z"
	if d := Compare(a.File(), &bf); d != nil {
		t.Fatalf("environment fields must not affect comparison: %s", d)
	}
}

func TestHeadSnapshot(t *testing.T) {
	l := NewLedger(Config{}, testManifest())
	feed(l, fixedEvents)
	h := l.Head()
	if h.Scenario != "unit" || h.Finished {
		t.Fatalf("unexpected head: %+v", h)
	}
	// Head advances at slice closes: events 3 and 4 closed slices 0 and 1.
	if h.Slices != 2 {
		t.Fatalf("want 2 closed slices in head, got %d", h.Slices)
	}
	l.Finish(300 * time.Millisecond)
	h = l.Head()
	if !h.Finished || h.Events != 4 || h.Chains["mac"] == "" {
		t.Fatalf("finished head wrong: %+v", h)
	}
}
