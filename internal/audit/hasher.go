// Package audit is the simulator's determinism ledger: an engine dispatch
// observer that folds the causal state of a run into per-time-slice digests,
// attributed per subsystem via the sim.Tag plane, plus periodic deep digests
// of protocol state (channel pair-state, MAC per-station state, CO-MAP
// co-occurrence maps, named RNG stream cursors). The ledger is written as a
// compact JSONL stream headed by a run manifest, so two runs of the same
// scenario can be compared slice by slice and a divergence localized to the
// first slice — and, with event capture enabled, to the first divergent
// event — instead of collapsing into "the final report differs".
//
// The ledger is always compiled and off by default: an unaudited run pays
// nothing (the engine's observer stays nil), and an audited run is purely
// observational — it reads protocol state but never mutates it, schedules
// nothing and draws from no RNG stream, so audited runs stay bit-identical
// to unaudited ones (asserted by the golden-ledger suite).
package audit

import "math"

// FNV-1a 64-bit parameters. The rolling chains and deep digests all use the
// same primitive so a digest is reproducible from the ledger spec alone.
const (
	fnvOffset uint64 = 14695981039346656037
	fnvPrime  uint64 = 1099511628211
)

// foldByte advances an FNV-1a chain by one byte.
func foldByte(h uint64, b byte) uint64 {
	return (h ^ uint64(b)) * fnvPrime
}

// foldUint64 advances an FNV-1a chain by the 8 little-endian bytes of v.
// It is the hot-path fold behind the per-tag chains: three calls per event,
// no allocation.
func foldUint64(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h = foldByte(h, byte(v))
		v >>= 8
	}
	return h
}

// Hasher is an incremental FNV-1a 64 digest with typed fold helpers, handed
// to subsystem DigestState methods. The zero value is NOT ready; use
// NewHasher (it seeds the offset basis).
type Hasher struct {
	h uint64
}

// NewHasher returns a hasher seeded with the FNV-1a offset basis.
func NewHasher() *Hasher { return &Hasher{h: fnvOffset} }

// Sum returns the current digest.
func (h *Hasher) Sum() uint64 { return h.h }

// Reset rewinds the hasher to the offset basis.
func (h *Hasher) Reset() { h.h = fnvOffset }

// Uint64 folds the 8 little-endian bytes of v.
func (h *Hasher) Uint64(v uint64) { h.h = foldUint64(h.h, v) }

// Int64 folds v as its two's-complement bit pattern.
func (h *Hasher) Int64(v int64) { h.Uint64(uint64(v)) }

// Int folds v as an int64.
func (h *Hasher) Int(v int) { h.Int64(int64(v)) }

// Int32 folds v widened to int64 (so NoOwner's sign survives).
func (h *Hasher) Int32(v int32) { h.Int64(int64(v)) }

// Uint16 folds v widened to uint64.
func (h *Hasher) Uint16(v uint16) { h.Uint64(uint64(v)) }

// Bool folds one byte: 1 for true, 0 for false.
func (h *Hasher) Bool(v bool) {
	if v {
		h.h = foldByte(h.h, 1)
	} else {
		h.h = foldByte(h.h, 0)
	}
}

// Float64 folds the IEEE-754 bit pattern of v. Identical runs produce
// identical bit patterns (the simulator never manufactures NaNs with
// differing payloads), so no normalization is applied.
func (h *Hasher) Float64(v float64) { h.Uint64(math.Float64bits(v)) }

// String folds the length and bytes of s, so ("ab","c") and ("a","bc")
// digest differently.
func (h *Hasher) String(s string) {
	h.Int(len(s))
	for i := 0; i < len(s); i++ {
		h.h = foldByte(h.h, s[i])
	}
}
