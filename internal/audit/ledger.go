package audit

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"

	"repro/internal/sim"
)

// Default ledger cadence: slices of 100ms of virtual time, with a deep
// protocol-state digest every 8th slice close. At the golden scenarios'
// 1s duration that is 10 slice records and 2 deep digests per run.
const (
	DefaultSliceInterval = 100 * time.Millisecond
	DefaultDeepEvery     = 8

	// maxCapturedEvents bounds the per-event capture buffer so a
	// mis-sized bisect window cannot balloon the ledger; the end record
	// carries a truncation flag when the cap is hit.
	maxCapturedEvents = 1 << 20
)

// Config controls one ledger. The zero value plus a Manifest is a valid
// in-memory ledger at the default cadence; set Sink to also stream JSONL.
type Config struct {
	// SliceInterval is the virtual-time width of one digest slice.
	// Defaults to DefaultSliceInterval.
	SliceInterval time.Duration
	// DeepEvery emits the deep protocol-state digests every Nth slice
	// close (plus always on the final Finish slice). Defaults to
	// DefaultDeepEvery. 1 digests every slice (bisect densification).
	DeepEvery int
	// Sink, when non-nil, receives the ledger as JSONL while the run
	// progresses. Records are always also retained in memory (File).
	Sink io.Writer
	// CaptureFrom/CaptureUntil bound an optional per-event capture
	// window [CaptureFrom, CaptureUntil): every dispatched event inside
	// it is recorded individually, which is how bisect names the first
	// divergent event. Capture is off unless CaptureUntil > CaptureFrom.
	CaptureFrom  time.Duration
	CaptureUntil time.Duration
	// InjectNondet is a test-only hook consumed by netsim.Build: it
	// installs a recurring tick that iterates a Go map and schedules a
	// no-op event per entry, deliberately leaking map-iteration order
	// into the dispatch sequence. It exists so the bisect acceptance
	// test (and EXPERIMENTS.md walkthrough) have a real nondeterminism
	// to localize. Never set outside tests.
	InjectNondet bool
}

func (c Config) withDefaults() Config {
	if c.SliceInterval <= 0 {
		c.SliceInterval = DefaultSliceInterval
	}
	if c.DeepEvery <= 0 {
		c.DeepEvery = DefaultDeepEvery
	}
	return c
}

// DeepSource is a registered protocol-state digest: Fn folds one
// subsystem's current state into the hasher at deep-digest slices. Fn runs
// on the simulation goroutine and must only read state, never mutate it.
type DeepSource struct {
	Name string
	Fn   func(*Hasher)
}

// SliceRecord is one closed time slice: the cumulative per-tag chains as of
// the slice boundary (chains never reset, so pairwise slice comparison
// localizes the first divergent slice), plus deep digests on deep slices.
type SliceRecord struct {
	Type    string            `json:"type"` // "slice"
	Idx     int64             `json:"idx"`
	StartUs int64             `json:"start_us"`
	EndUs   int64             `json:"end_us"`
	Events  uint64            `json:"events"` // cumulative dispatched events at slice close
	Chains  map[string]string `json:"chains"` // tag name -> %016x rolling chain
	Deep    map[string]string `json:"deep,omitempty"`
}

// EventRecord is one dispatched event inside the capture window.
type EventRecord struct {
	Type  string `json:"type"` // "event"
	Seq   uint64 `json:"seq"`  // global dispatch sequence (1-based)
	AtNs  int64  `json:"at_ns"`
	Tag   string `json:"tag"`
	Owner int32  `json:"owner"`
}

// EndRecord closes the ledger: totals plus the combined head digest (the
// fold of every per-tag chain in tag order and the dispatch count).
type EndRecord struct {
	Type      string `json:"type"` // "end"
	Events    uint64 `json:"events"`
	Slices    int64  `json:"slices"`
	Head      string `json:"head"`
	Truncated bool   `json:"truncated,omitempty"` // event capture hit its cap
}

// LedgerFile is a fully parsed (or in-memory) ledger.
type LedgerFile struct {
	Manifest Manifest
	Slices   []SliceRecord
	Events   []EventRecord
	End      *EndRecord
}

// Head is a point-in-time snapshot of the ledger for concurrent scrapers
// (the obs plane's /audit endpoint). It advances at slice granularity: the
// chains lag the sim goroutine by at most one open slice.
type Head struct {
	Scenario   string            `json:"scenario"`
	Slices     int64             `json:"slices"`
	SliceEndUs int64             `json:"slice_end_us"`
	Events     uint64            `json:"events"`
	Head       string            `json:"head"` // combined digest over current chains
	Chains     map[string]string `json:"chains"`
	DeepSlices int64             `json:"deep_slices"`
	Finished   bool              `json:"finished"`
	Err        string            `json:"err,omitempty"`
}

// Ledger folds the dispatch stream into per-slice digests. It implements
// sim.Observer; all methods except Head and Err must run on the simulation
// goroutine.
type Ledger struct {
	cfg     Config
	capture bool

	chains   [sim.NumTags]uint64
	events   uint64 // global dispatch counter (folded into every chain step)
	sliceIdx int64
	sliceEnd time.Duration
	deep     []DeepSource
	deepN    int64
	finished bool

	file     LedgerFile
	captured int
	trunc    bool

	enc *json.Encoder
	err error

	hasher Hasher

	mu   sync.Mutex
	head Head
}

// NewLedger opens a ledger: it stamps the manifest's environment fields,
// writes the manifest line to the sink (when configured) and arms the first
// slice. The caller then installs the ledger as the engine's observer (or
// tees it with the profiler) and calls Finish once the run completes.
func NewLedger(cfg Config, m Manifest) *Ledger {
	cfg = cfg.withDefaults()
	m.FillEnv()
	m.SliceUs = cfg.SliceInterval.Microseconds()
	m.DeepEvery = cfg.DeepEvery
	l := &Ledger{
		cfg:      cfg,
		capture:  cfg.CaptureUntil > cfg.CaptureFrom,
		sliceEnd: cfg.SliceInterval,
	}
	for i := range l.chains {
		l.chains[i] = fnvOffset
	}
	l.file.Manifest = m
	if cfg.Sink != nil {
		l.enc = json.NewEncoder(cfg.Sink)
		l.write(&m)
	}
	l.publishHead()
	return l
}

// RegisterDeep adds a protocol-state digest source. Call during network
// construction, before the run starts.
func (l *Ledger) RegisterDeep(name string, fn func(*Hasher)) {
	l.deep = append(l.deep, DeepSource{Name: name, Fn: fn})
}

// OnEvent implements sim.Observer: it closes any slices the clock has moved
// past, then folds (dispatch sequence, event time, owner) into the tag's
// rolling chain. Steady-state cost is one branch, three folds and a few
// integer ops; slice closes (every SliceInterval of virtual time) take the
// mutex and may allocate.
func (l *Ledger) OnEvent(at time.Duration, tag sim.Tag, owner int32) {
	if at >= l.sliceEnd {
		l.closeSlicesUntil(at)
	}
	l.events++
	c := l.chains[tag]
	c = foldUint64(c, l.events)
	c = foldUint64(c, uint64(int64(at)))
	c = foldUint64(c, uint64(int64(owner)))
	l.chains[tag] = c
	if l.capture && at >= l.cfg.CaptureFrom && at < l.cfg.CaptureUntil {
		l.captureEvent(at, tag, owner)
	}
}

func (l *Ledger) captureEvent(at time.Duration, tag sim.Tag, owner int32) {
	if l.captured >= maxCapturedEvents {
		l.trunc = true
		return
	}
	l.captured++
	rec := EventRecord{Type: "event", Seq: l.events, AtNs: int64(at), Tag: tag.String(), Owner: owner}
	l.file.Events = append(l.file.Events, rec)
	l.write(&rec)
}

// closeSlicesUntil emits a slice record for every slice boundary at or
// before at, so empty slices still appear in the ledger.
func (l *Ledger) closeSlicesUntil(at time.Duration) {
	for l.sliceEnd <= at {
		deep := l.cfg.DeepEvery > 0 && (l.sliceIdx+1)%int64(l.cfg.DeepEvery) == 0
		l.emitSlice(l.sliceEnd, deep)
		l.sliceIdx++
		l.sliceEnd += l.cfg.SliceInterval
		l.publishHead()
	}
}

// emitSlice records the slice ending at end with the current cumulative
// chains (and deep digests when requested).
func (l *Ledger) emitSlice(end time.Duration, deep bool) {
	rec := SliceRecord{
		Type:    "slice",
		Idx:     l.sliceIdx,
		StartUs: (end - l.cfg.SliceInterval).Microseconds(),
		EndUs:   end.Microseconds(),
		Events:  l.events,
		Chains:  l.chainMap(),
	}
	if rec.StartUs < 0 {
		rec.StartUs = 0
	}
	if deep {
		rec.Deep = l.deepMap()
		l.deepN++
	}
	l.file.Slices = append(l.file.Slices, rec)
	l.write(&rec)
}

func (l *Ledger) chainMap() map[string]string {
	m := make(map[string]string, sim.NumTags)
	for t := sim.Tag(0); t < sim.NumTags; t++ {
		m[t.String()] = fmt.Sprintf("%016x", l.chains[t])
	}
	return m
}

func (l *Ledger) deepMap() map[string]string {
	m := make(map[string]string, len(l.deep))
	for _, src := range l.deep {
		l.hasher.Reset()
		src.Fn(&l.hasher)
		m[src.Name] = fmt.Sprintf("%016x", l.hasher.Sum())
	}
	return m
}

// combinedHead folds every per-tag chain (in tag order) and the dispatch
// count into one digest — the single value surfaced on /audit and /healthz.
func (l *Ledger) combinedHead() uint64 {
	h := fnvOffset
	for t := sim.Tag(0); t < sim.NumTags; t++ {
		h = foldUint64(h, l.chains[t])
	}
	return foldUint64(h, l.events)
}

// Finish closes the ledger at the run's end time: remaining whole slices
// are emitted, then one final (possibly partial) slice carrying deep
// digests unconditionally, then the end record. Call exactly once, on the
// simulation goroutine, after the run completes.
func (l *Ledger) Finish(end time.Duration) {
	if l.finished {
		return
	}
	l.closeSlicesUntil(end)
	// Final partial slice [sliceEnd-interval, end): always deep, so every
	// ledger closes on a full protocol-state digest even when the duration
	// is not slice-aligned.
	final := SliceRecord{
		Type:    "slice",
		Idx:     l.sliceIdx,
		StartUs: (l.sliceEnd - l.cfg.SliceInterval).Microseconds(),
		EndUs:   end.Microseconds(),
		Events:  l.events,
		Chains:  l.chainMap(),
		Deep:    l.deepMap(),
	}
	if final.StartUs < 0 {
		final.StartUs = 0
	}
	l.deepN++
	l.sliceIdx++
	l.file.Slices = append(l.file.Slices, final)
	l.write(&final)
	endRec := EndRecord{
		Type:      "end",
		Events:    l.events,
		Slices:    l.sliceIdx,
		Head:      fmt.Sprintf("%016x", l.combinedHead()),
		Truncated: l.trunc,
	}
	l.file.End = &endRec
	l.write(&endRec)
	l.finished = true
	l.publishHead()
}

func (l *Ledger) write(v any) {
	if l.enc == nil || l.err != nil {
		return
	}
	if err := l.enc.Encode(v); err != nil {
		l.err = err
	}
}

// publishHead refreshes the concurrent-read snapshot. Simulation goroutine.
func (l *Ledger) publishHead() {
	h := Head{
		Scenario:   l.file.Manifest.Scenario,
		Slices:     l.sliceIdx,
		SliceEndUs: (l.sliceEnd - l.cfg.SliceInterval).Microseconds(),
		Events:     l.events,
		Head:       fmt.Sprintf("%016x", l.combinedHead()),
		Chains:     l.chainMap(),
		DeepSlices: l.deepN,
		Finished:   l.finished,
	}
	if l.err != nil {
		h.Err = l.err.Error()
	}
	l.mu.Lock()
	l.head = h
	l.mu.Unlock()
}

// Head returns the latest published snapshot. Safe for concurrent readers;
// advances at slice closes, so it lags the sim goroutine by at most one
// open slice.
func (l *Ledger) Head() Head {
	l.mu.Lock()
	defer l.mu.Unlock()
	h := l.head
	// Shallow chain-map copy so scrapers can't race a later publish.
	chains := make(map[string]string, len(h.Chains))
	for k, v := range h.Chains {
		chains[k] = v
	}
	h.Chains = chains
	return h
}

// Err returns the first sink write error, if any. Safe after the run.
func (l *Ledger) Err() error { return l.err }

// File returns the in-memory ledger. Valid after Finish; the in-process
// bisector compares two of these without touching the filesystem.
func (l *Ledger) File() *LedgerFile { return &l.file }
