// Package geom provides the 2-D geometry primitives used by the CO-MAP
// simulator: points, vectors, distances and placement helpers.
//
// All coordinates are in meters. The plane is flat (no elevation); the paper's
// testbed and NS-2 scenarios are all single-floor deployments.
package geom

import (
	"fmt"
	"math"
)

// Point is a position on the 2-D plane, in meters.
type Point struct {
	X float64
	Y float64
}

// Pt is shorthand for Point{x, y}.
func Pt(x, y float64) Point { return Point{X: x, Y: y} }

// String renders the point as "(x, y)" with centimeter precision.
func (p Point) String() string { return fmt.Sprintf("(%.2f, %.2f)", p.X, p.Y) }

// Add returns p translated by v.
func (p Point) Add(v Vector) Point { return Point{X: p.X + v.DX, Y: p.Y + v.DY} }

// Sub returns the vector from q to p.
func (p Point) Sub(q Point) Vector { return Vector{DX: p.X - q.X, DY: p.Y - q.Y} }

// DistanceTo returns the Euclidean distance between p and q, in meters.
func (p Point) DistanceTo(q Point) float64 {
	return math.Hypot(p.X-q.X, p.Y-q.Y)
}

// Vector is a displacement on the plane, in meters.
type Vector struct {
	DX float64
	DY float64
}

// Vec is shorthand for Vector{dx, dy}.
func Vec(dx, dy float64) Vector { return Vector{DX: dx, DY: dy} }

// Length returns the Euclidean norm of v.
func (v Vector) Length() float64 { return math.Hypot(v.DX, v.DY) }

// Scale returns v scaled by k.
func (v Vector) Scale(k float64) Vector { return Vector{DX: v.DX * k, DY: v.DY * k} }

// Add returns the vector sum v+w.
func (v Vector) Add(w Vector) Vector { return Vector{DX: v.DX + w.DX, DY: v.DY + w.DY} }

// Unit returns the unit vector in the direction of v. The zero vector is
// returned unchanged.
func (v Vector) Unit() Vector {
	l := v.Length()
	if l == 0 {
		return v
	}
	return v.Scale(1 / l)
}

// Midpoint returns the point halfway between p and q.
func Midpoint(p, q Point) Point {
	return Point{X: (p.X + q.X) / 2, Y: (p.Y + q.Y) / 2}
}

// Lerp linearly interpolates between p (t=0) and q (t=1). t outside [0,1]
// extrapolates along the same line.
func Lerp(p, q Point, t float64) Point {
	return Point{X: p.X + (q.X-p.X)*t, Y: p.Y + (q.Y-p.Y)*t}
}

// OnLine returns a point d meters from origin along the direction towards
// target. If origin == target the origin is returned.
func OnLine(origin, target Point, d float64) Point {
	u := target.Sub(origin).Unit()
	return origin.Add(u.Scale(d))
}

// Centroid returns the arithmetic mean of the given points. It returns the
// origin for an empty slice.
func Centroid(pts []Point) Point {
	if len(pts) == 0 {
		return Point{}
	}
	var c Point
	for _, p := range pts {
		c.X += p.X
		c.Y += p.Y
	}
	c.X /= float64(len(pts))
	c.Y /= float64(len(pts))
	return c
}

// BoundingBox returns the axis-aligned bounding box (min, max corners) of the
// given points. It returns zero points for an empty slice.
func BoundingBox(pts []Point) (min, max Point) {
	if len(pts) == 0 {
		return Point{}, Point{}
	}
	min, max = pts[0], pts[0]
	for _, p := range pts[1:] {
		min.X = math.Min(min.X, p.X)
		min.Y = math.Min(min.Y, p.Y)
		max.X = math.Max(max.X, p.X)
		max.Y = math.Max(max.Y, p.Y)
	}
	return min, max
}
