package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestDistanceTo(t *testing.T) {
	tests := []struct {
		name string
		p, q Point
		want float64
	}{
		{"same point", Pt(1, 2), Pt(1, 2), 0},
		{"horizontal", Pt(0, 0), Pt(3, 0), 3},
		{"vertical", Pt(0, 0), Pt(0, 4), 4},
		{"3-4-5", Pt(0, 0), Pt(3, 4), 5},
		{"negative coords", Pt(-1, -1), Pt(2, 3), 5},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.p.DistanceTo(tt.q); !almostEqual(got, tt.want, 1e-12) {
				t.Errorf("DistanceTo = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestDistanceSymmetry(t *testing.T) {
	f := func(ax, ay, bx, by float64) bool {
		a, b := Pt(ax, ay), Pt(bx, by)
		return a.DistanceTo(b) == b.DistanceTo(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDistanceTriangleInequality(t *testing.T) {
	f := func(ax, ay, bx, by, cx, cy int16) bool {
		a := Pt(float64(ax), float64(ay))
		b := Pt(float64(bx), float64(by))
		c := Pt(float64(cx), float64(cy))
		return a.DistanceTo(c) <= a.DistanceTo(b)+b.DistanceTo(c)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAddSubRoundTrip(t *testing.T) {
	f := func(px, py, qx, qy int32) bool {
		p := Pt(float64(px), float64(py))
		q := Pt(float64(qx), float64(qy))
		return q.Add(p.Sub(q)) == p
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestVectorLength(t *testing.T) {
	if got := Vec(3, 4).Length(); got != 5 {
		t.Errorf("Length = %v, want 5", got)
	}
	if got := Vec(0, 0).Length(); got != 0 {
		t.Errorf("zero vector Length = %v, want 0", got)
	}
}

func TestVectorScaleAdd(t *testing.T) {
	v := Vec(1, -2).Scale(3).Add(Vec(-1, 1))
	if v != Vec(2, -5) {
		t.Errorf("got %+v, want {2 -5}", v)
	}
}

func TestUnit(t *testing.T) {
	u := Vec(10, 0).Unit()
	if !almostEqual(u.DX, 1, 1e-12) || u.DY != 0 {
		t.Errorf("Unit = %+v, want {1 0}", u)
	}
	if z := Vec(0, 0).Unit(); z != Vec(0, 0) {
		t.Errorf("Unit of zero = %+v, want zero", z)
	}
}

func TestUnitHasLengthOne(t *testing.T) {
	f := func(dx, dy int16) bool {
		v := Vec(float64(dx), float64(dy))
		if v.Length() == 0 {
			return true
		}
		return almostEqual(v.Unit().Length(), 1, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMidpoint(t *testing.T) {
	m := Midpoint(Pt(0, 0), Pt(10, 4))
	if m != Pt(5, 2) {
		t.Errorf("Midpoint = %v", m)
	}
}

func TestLerp(t *testing.T) {
	p, q := Pt(0, 0), Pt(10, 20)
	tests := []struct {
		t    float64
		want Point
	}{
		{0, p},
		{1, q},
		{0.5, Pt(5, 10)},
		{2, Pt(20, 40)}, // extrapolation
	}
	for _, tt := range tests {
		if got := Lerp(p, q, tt.t); got != tt.want {
			t.Errorf("Lerp(t=%v) = %v, want %v", tt.t, got, tt.want)
		}
	}
}

func TestOnLine(t *testing.T) {
	got := OnLine(Pt(0, 0), Pt(100, 0), 36)
	if !almostEqual(got.X, 36, 1e-9) || got.Y != 0 {
		t.Errorf("OnLine = %v, want (36,0)", got)
	}
	// Degenerate: origin == target.
	if got := OnLine(Pt(1, 1), Pt(1, 1), 10); got != Pt(1, 1) {
		t.Errorf("degenerate OnLine = %v, want (1,1)", got)
	}
}

func TestOnLineDistanceProperty(t *testing.T) {
	f := func(ox, oy, tx, ty int16, dRaw uint8) bool {
		o := Pt(float64(ox), float64(oy))
		tg := Pt(float64(tx), float64(ty))
		if o.DistanceTo(tg) == 0 {
			return true
		}
		d := float64(dRaw)
		got := OnLine(o, tg, d)
		return almostEqual(o.DistanceTo(got), d, 1e-6)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCentroid(t *testing.T) {
	if got := Centroid(nil); got != (Point{}) {
		t.Errorf("empty Centroid = %v", got)
	}
	got := Centroid([]Point{Pt(0, 0), Pt(2, 0), Pt(1, 3)})
	if !almostEqual(got.X, 1, 1e-12) || !almostEqual(got.Y, 1, 1e-12) {
		t.Errorf("Centroid = %v, want (1,1)", got)
	}
}

func TestBoundingBox(t *testing.T) {
	min, max := BoundingBox([]Point{Pt(1, 5), Pt(-2, 3), Pt(4, -1)})
	if min != Pt(-2, -1) || max != Pt(4, 5) {
		t.Errorf("BoundingBox = %v %v", min, max)
	}
	min, max = BoundingBox(nil)
	if min != (Point{}) || max != (Point{}) {
		t.Errorf("empty BoundingBox = %v %v", min, max)
	}
}

func TestPointString(t *testing.T) {
	if got := Pt(1.234, -5).String(); got != "(1.23, -5.00)" {
		t.Errorf("String = %q", got)
	}
}
