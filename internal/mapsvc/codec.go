package mapsvc

import (
	"encoding/binary"
	"fmt"
	"math"
	"time"

	"repro/internal/frame"
	"repro/internal/loc"
)

// Ingest-record operations.
const (
	// RecReport upserts a node's committed fix.
	RecReport uint8 = 1
	// RecDeregister removes a node's fix (the node left the network).
	RecDeregister uint8 = 2
)

// IngestRecord is one entry of the registry change stream: a committed fix
// or a deregistration. The same record is the wire format of the streaming
// ingest endpoint and the on-disk WAL entry, so replay and re-ingest share
// one codec.
type IngestRecord struct {
	Op   uint8
	Node frame.NodeID
	Fix  loc.Fix
}

// recordSize is the fixed binary encoding length of one IngestRecord:
// op(1) + node(2) + x(8) + y(8) + reportedAtNs(8) + errRadius(8).
const recordSize = 35

// AppendRecord encodes one record (little-endian, fixed 35 bytes) onto buf.
func AppendRecord(buf []byte, r IngestRecord) []byte {
	var b [recordSize]byte
	b[0] = r.Op
	binary.LittleEndian.PutUint16(b[1:3], uint16(r.Node))
	binary.LittleEndian.PutUint64(b[3:11], math.Float64bits(r.Fix.Pos.X))
	binary.LittleEndian.PutUint64(b[11:19], math.Float64bits(r.Fix.Pos.Y))
	binary.LittleEndian.PutUint64(b[19:27], uint64(r.Fix.ReportedAt.Nanoseconds()))
	binary.LittleEndian.PutUint64(b[27:35], math.Float64bits(r.Fix.ErrorRadiusMeters))
	return append(buf, b[:]...)
}

// EncodeRecords encodes a batch as concatenated fixed-size records.
func EncodeRecords(recs []IngestRecord) []byte {
	buf := make([]byte, 0, len(recs)*recordSize)
	for _, r := range recs {
		buf = AppendRecord(buf, r)
	}
	return buf
}

// DecodeRecords decodes concatenated records. A trailing partial record
// (torn tail of a WAL cut short by a crash) is tolerated and dropped;
// a record with an unknown op is an error.
func DecodeRecords(data []byte) ([]IngestRecord, error) {
	recs := make([]IngestRecord, 0, len(data)/recordSize)
	for len(data) >= recordSize {
		b := data[:recordSize]
		data = data[recordSize:]
		r := IngestRecord{
			Op:   b[0],
			Node: frame.NodeID(binary.LittleEndian.Uint16(b[1:3])),
		}
		if r.Op != RecReport && r.Op != RecDeregister {
			return nil, fmt.Errorf("mapsvc: unknown ingest op %d", r.Op)
		}
		r.Fix = loc.Fix{
			ReportedAt:        time.Duration(int64(binary.LittleEndian.Uint64(b[19:27]))),
			ErrorRadiusMeters: math.Float64frombits(binary.LittleEndian.Uint64(b[27:35])),
		}
		r.Fix.Pos.X = math.Float64frombits(binary.LittleEndian.Uint64(b[3:11]))
		r.Fix.Pos.Y = math.Float64frombits(binary.LittleEndian.Uint64(b[11:19]))
		recs = append(recs, r)
	}
	return recs, nil
}
