package mapsvc

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"repro/internal/comap"
	"repro/internal/frame"
	"repro/internal/slo"
)

// Causal-context headers: the client's CallContext travels with every call
// so server-side events join their client-side attempts.
const (
	HeaderRun     = "X-Comap-Run"
	HeaderReq     = "X-Comap-Req"
	HeaderAttempt = "X-Comap-Attempt"
)

// ctxFromHeaders recovers the caller's causal context; absent headers
// yield the zero context (an untraced caller).
func ctxFromHeaders(r *http.Request) CallContext {
	ctx := CallContext{Run: r.Header.Get(HeaderRun)}
	if v := r.Header.Get(HeaderReq); v != "" {
		ctx.Req, _ = strconv.ParseUint(v, 10, 64)
	}
	if v := r.Header.Get(HeaderAttempt); v != "" {
		ctx.Attempt, _ = strconv.Atoi(v)
	}
	return ctx
}

// StatusWithSLO is the /v1/status payload: the service counters plus, when
// a tracker is attached, the per-endpoint SLO snapshot.
type StatusWithSLO struct {
	ServiceStatus
	SLO *slo.Status `json:"slo,omitempty"`
}

// NewHTTPHandler exposes the service over HTTP for cmd/comap-mapd:
//
//	POST /v1/ingest      body: concatenated binary IngestRecords
//	GET  /v1/verdict     ?obs=&src=&dst=&mydst=   → JSON verdict + epoch
//	POST /v1/invalidate  ?node=N or ?all=1
//	GET  /v1/status      → ServiceStatus JSON (+ SLO block when tracked)
//
// maxPendingIngest bounds concurrently admitted ingest requests: beyond it
// the handler sheds with 503 before the batch is decoded, so verdict
// traffic keeps its capacity under ingest overload (admission control
// protects reads from writes, not the reverse).
//
// Requests carrying X-Comap-Run/Req/Attempt headers have their causal
// context forwarded to the service's event stream. tracker (optional)
// observes every endpoint's wall-clock latency and outcome — sheds and
// unavailability count against the error budget.
func NewHTTPHandler(svc *Service, maxPendingIngest int, tracker *slo.Tracker) http.Handler {
	if maxPendingIngest <= 0 {
		maxPendingIngest = 64
	}
	sem := make(chan struct{}, maxPendingIngest)
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/ingest", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		start := time.Now()
		ctx := ctxFromHeaders(r)
		select {
		case sem <- struct{}{}:
			defer func() { <-sem }()
		default:
			svc.noteShed(1, ctx)
			tracker.Observe(OpName(OpIngest), time.Since(start), false)
			http.Error(w, "ingest shed: admission control full", http.StatusServiceUnavailable)
			return
		}
		body, err := io.ReadAll(r.Body)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		recs, err := DecodeRecords(body)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if err := svc.ApplyCtx(recs, ctx); err != nil {
			tracker.Observe(OpName(OpIngest), time.Since(start), false)
			http.Error(w, err.Error(), http.StatusServiceUnavailable)
			return
		}
		tracker.Observe(OpName(OpIngest), time.Since(start), true)
		writeHTTPJSON(w, map[string]any{"ingested": len(recs), "epoch": svc.Epoch()})
	})
	mux.HandleFunc("/v1/verdict", func(w http.ResponseWriter, r *http.Request) {
		key, err := keyFromQuery(r)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		start := time.Now()
		v, err := svc.VerdictForCtx(key, ctxFromHeaders(r))
		if err != nil {
			tracker.Observe(OpName(OpVerdict), time.Since(start), false)
			http.Error(w, err.Error(), http.StatusServiceUnavailable)
			return
		}
		tracker.Observe(OpName(OpVerdict), time.Since(start), true)
		writeHTTPJSON(w, map[string]any{"verdict": v, "epoch": svc.Epoch()})
	})
	mux.HandleFunc("/v1/invalidate", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		start := time.Now()
		ctx := ctxFromHeaders(r)
		if r.URL.Query().Get("all") != "" {
			svc.InvalidateAllCtx(ctx)
			tracker.Observe(OpName(OpInvalidateAll), time.Since(start), !svc.Down())
		} else {
			node, err := nodeParam(r, "node")
			if err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			svc.InvalidateNodeCtx(node, ctx)
			tracker.Observe(OpName(OpInvalidateNode), time.Since(start), !svc.Down())
		}
		writeHTTPJSON(w, map[string]any{"epoch": svc.Epoch()})
	})
	mux.HandleFunc("/v1/status", func(w http.ResponseWriter, r *http.Request) {
		st := StatusWithSLO{ServiceStatus: svc.Status()}
		if tracker != nil {
			s := tracker.Status()
			st.SLO = &s
		}
		writeHTTPJSON(w, st)
	})
	return mux
}

func keyFromQuery(r *http.Request) (Key, error) {
	obs, err1 := nodeParam(r, "obs")
	src, err2 := nodeParam(r, "src")
	dst, err3 := nodeParam(r, "dst")
	myDst, err4 := nodeParam(r, "mydst")
	for _, err := range []error{err1, err2, err3, err4} {
		if err != nil {
			return Key{}, err
		}
	}
	return Key{Observer: obs, Ongoing: comap.Link{Src: src, Dst: dst}, MyDst: myDst}, nil
}

func nodeParam(r *http.Request, name string) (frame.NodeID, error) {
	v := r.URL.Query().Get(name)
	if v == "" {
		return 0, fmt.Errorf("missing query parameter %q", name)
	}
	n, err := strconv.ParseUint(v, 10, 16)
	if err != nil {
		return 0, fmt.Errorf("bad %s=%q: %v", name, v, err)
	}
	return frame.NodeID(n), nil
}

func writeHTTPJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// HTTPTransport runs the same Client against a real comap-mapd over HTTP.
// Calls are synchronous (Invoke blocks and completes inline); the HTTP
// client's own timeout doubles as the transport-level deadline.
type HTTPTransport struct {
	// Base is the server root, e.g. "http://127.0.0.1:9090".
	Base string
	// Client is the HTTP client (http.DefaultClient when nil); set its
	// Timeout to bound calls.
	Client *http.Client
}

// Invoke implements Transport over HTTP.
func (t *HTTPTransport) Invoke(req *Request, done func(*Response, error)) bool {
	resp, err := t.do(req)
	done(resp, err)
	return true
}

// roundTrip issues one HTTP request with the call's causal context in the
// X-Comap-* headers.
func (t *HTTPTransport) roundTrip(hc *http.Client, method, url, contentType string, body io.Reader, ctx CallContext) (*http.Response, error) {
	hreq, err := http.NewRequest(method, url, body)
	if err != nil {
		return nil, err
	}
	if contentType != "" {
		hreq.Header.Set("Content-Type", contentType)
	}
	if ctx.Run != "" {
		hreq.Header.Set(HeaderRun, ctx.Run)
	}
	if ctx.Req != 0 {
		hreq.Header.Set(HeaderReq, strconv.FormatUint(ctx.Req, 10))
		hreq.Header.Set(HeaderAttempt, strconv.Itoa(ctx.Attempt))
	}
	return hc.Do(hreq)
}

func (t *HTTPTransport) do(req *Request) (*Response, error) {
	hc := t.Client
	if hc == nil {
		hc = http.DefaultClient
	}
	var (
		httpResp *http.Response
		err      error
	)
	switch req.Op {
	case OpVerdict:
		url := fmt.Sprintf("%s/v1/verdict?obs=%d&src=%d&dst=%d&mydst=%d",
			t.Base, req.Key.Observer, req.Key.Ongoing.Src, req.Key.Ongoing.Dst, req.Key.MyDst)
		httpResp, err = t.roundTrip(hc, http.MethodGet, url, "", nil, req.Ctx)
		if err != nil {
			return nil, err
		}
		defer httpResp.Body.Close()
		if httpResp.StatusCode != http.StatusOK {
			return nil, fmt.Errorf("mapsvc: verdict: HTTP %d", httpResp.StatusCode)
		}
		var out struct {
			Verdict Verdict `json:"verdict"`
			Epoch   uint64  `json:"epoch"`
		}
		if err := json.NewDecoder(httpResp.Body).Decode(&out); err != nil {
			return nil, err
		}
		return &Response{Verdict: out.Verdict, Epoch: out.Epoch}, nil
	case OpIngest:
		httpResp, err = t.roundTrip(hc, http.MethodPost, t.Base+"/v1/ingest",
			"application/octet-stream", bytes.NewReader(EncodeRecords(req.Recs)), req.Ctx)
	case OpInvalidateNode:
		httpResp, err = t.roundTrip(hc, http.MethodPost,
			fmt.Sprintf("%s/v1/invalidate?node=%d", t.Base, req.Node), "", nil, req.Ctx)
	case OpInvalidateAll:
		httpResp, err = t.roundTrip(hc, http.MethodPost, t.Base+"/v1/invalidate?all=1", "", nil, req.Ctx)
	default:
		return nil, fmt.Errorf("mapsvc: unknown op %d", req.Op)
	}
	if err != nil {
		return nil, err
	}
	defer httpResp.Body.Close()
	if httpResp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, httpResp.Body)
		return nil, fmt.Errorf("mapsvc: op %d: HTTP %d", req.Op, httpResp.StatusCode)
	}
	var out struct {
		Epoch uint64 `json:"epoch"`
	}
	if err := json.NewDecoder(httpResp.Body).Decode(&out); err != nil {
		return nil, err
	}
	return &Response{Epoch: out.Epoch}, nil
}
