package mapsvc

import (
	"repro/internal/faults"
	"repro/internal/frame"
	"repro/internal/sim"
)

// Op is a control-plane operation.
type Op uint8

// The control-plane operations.
const (
	// OpVerdict asks for one concurrency verdict.
	OpVerdict Op = iota + 1
	// OpIngest streams a batch of registry change records.
	OpIngest
	// OpInvalidateNode drops cached verdicts involving a node.
	OpInvalidateNode
	// OpInvalidateAll empties the verdict cache.
	OpInvalidateAll
)

// OpName names an operation for trace events and SLO endpoints.
func OpName(op Op) string {
	switch op {
	case OpVerdict:
		return "verdict"
	case OpIngest:
		return "ingest"
	case OpInvalidateNode:
		return "invalidate_node"
	case OpInvalidateAll:
		return "invalidate_all"
	default:
		return "unknown"
	}
}

// CallContext is the causal context propagated with every control-plane
// call so client attempts and server-side events can be stitched into one
// span: the run fingerprint, the client-assigned request ID (monotonic,
// never zero) and the 1-based attempt sequence within the request. Over
// HTTP it travels as the X-Comap-Run/X-Comap-Req/X-Comap-Attempt headers.
type CallContext struct {
	Run     string
	Req     uint64
	Attempt int
}

// Request is one control-plane call.
type Request struct {
	Op   Op
	Key  Key            // OpVerdict
	Recs []IngestRecord // OpIngest
	Node frame.NodeID   // OpInvalidateNode
	Ctx  CallContext    // causal context for tracing; zero when untraced
}

// Response is the service's answer.
type Response struct {
	Verdict Verdict // OpVerdict only
	Epoch   uint64  // always: clients detect restarts by epoch change
}

// Transport carries control-plane calls. Invoke issues one call and
// arranges for done to run at most once with the outcome: inline before
// returning (completed=true — the synchronous fast path), later (a delayed
// response; completed=false, the caller arms its deadline), or never (the
// request was lost; completed=false and only the deadline ends the call).
type Transport interface {
	Invoke(req *Request, done func(*Response, error)) (completed bool)
}

// SimTransport is the deterministic in-process transport: calls execute
// against the Service on the simulation clock, with per-call fates (loss,
// delay, partition, service down) drawn by the fault injector from seeded
// engine streams. With no fault fate installed every call completes inline,
// making the remote stack observationally identical to in-process CO-MAP.
type SimTransport struct {
	eng  *sim.Engine
	svc  *Service
	fate func() faults.RPCFate
	down bool
}

var _ faults.RPCSink = (*SimTransport)(nil)

// NewSimTransport builds a transport over an in-process service.
func NewSimTransport(eng *sim.Engine, svc *Service) *SimTransport {
	return &SimTransport{eng: eng, svc: svc}
}

// SetFateFn implements faults.RPCSink: installs the per-call fate oracle.
func (t *SimTransport) SetFateFn(fn func() faults.RPCFate) { t.fate = fn }

// SetDown implements faults.RPCSink: an rpcrestart window opening crashes
// the service; the window closing recovers it (snapshot + WAL replay).
func (t *SimTransport) SetDown(down bool) {
	t.down = down
	if down {
		t.svc.Crash()
	} else {
		// Recovery failures leave the service down; the client keeps
		// failing fast and stays on the degraded rungs.
		_ = t.svc.Recover()
	}
}

// Invoke applies the call's fault fate, then executes it on the service.
func (t *SimTransport) Invoke(req *Request, done func(*Response, error)) bool {
	var fate faults.RPCFate
	if t.fate != nil {
		fate = t.fate()
	}
	if t.down || fate.Down {
		done(nil, ErrUnavailable)
		return true
	}
	if fate.Lost || fate.Partitioned {
		return false
	}
	if fate.Delay > 0 {
		t.eng.AfterTagged(fate.Delay, sim.TagFaults, sim.NoOwner, func() {
			done(t.apply(req))
		})
		return false
	}
	done(t.apply(req))
	return true
}

func (t *SimTransport) apply(req *Request) (*Response, error) {
	switch req.Op {
	case OpVerdict:
		v, err := t.svc.VerdictForCtx(req.Key, req.Ctx)
		if err != nil {
			return nil, err
		}
		return &Response{Verdict: v, Epoch: t.svc.Epoch()}, nil
	case OpIngest:
		if err := t.svc.ApplyCtx(req.Recs, req.Ctx); err != nil {
			return nil, err
		}
	case OpInvalidateNode:
		if t.svc.Down() {
			return nil, ErrUnavailable
		}
		t.svc.InvalidateNodeCtx(req.Node, req.Ctx)
	case OpInvalidateAll:
		if t.svc.Down() {
			return nil, ErrUnavailable
		}
		t.svc.InvalidateAllCtx(req.Ctx)
	}
	return &Response{Epoch: t.svc.Epoch()}, nil
}
