package mapsvc

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/comap"
	"repro/internal/frame"
	"repro/internal/geom"
	"repro/internal/loc"
	"repro/internal/phy"
	"repro/internal/radio"
)

// ---------------------------------------------------------------------------
// Codec

func sampleRecords() []IngestRecord {
	return []IngestRecord{
		{Op: RecReport, Node: 1, Fix: loc.Fix{Pos: geom.Point{X: 1.5, Y: -2.25}, ReportedAt: 123 * time.Millisecond, ErrorRadiusMeters: 3}},
		{Op: RecReport, Node: 300, Fix: loc.Fix{Pos: geom.Point{X: -7, Y: 0}, ReportedAt: 0, ErrorRadiusMeters: 0}},
		{Op: RecDeregister, Node: 1},
	}
}

func TestCodecRoundTrip(t *testing.T) {
	recs := sampleRecords()
	enc := EncodeRecords(recs)
	if len(enc) != len(recs)*recordSize {
		t.Fatalf("encoded %d bytes, want %d", len(enc), len(recs)*recordSize)
	}
	dec, err := DecodeRecords(enc)
	if err != nil {
		t.Fatal(err)
	}
	if len(dec) != len(recs) {
		t.Fatalf("decoded %d records, want %d", len(dec), len(recs))
	}
	for i := range recs {
		if dec[i] != recs[i] {
			t.Errorf("record %d: got %+v, want %+v", i, dec[i], recs[i])
		}
	}
}

func TestCodecTornTailDropped(t *testing.T) {
	recs := sampleRecords()
	enc := EncodeRecords(recs)
	// A crash mid-append leaves a partial last record; replay must keep the
	// complete prefix and drop the tail.
	torn := enc[:len(enc)-10]
	dec, err := DecodeRecords(torn)
	if err != nil {
		t.Fatal(err)
	}
	if len(dec) != len(recs)-1 {
		t.Fatalf("torn decode kept %d records, want %d", len(dec), len(recs)-1)
	}
}

func TestCodecUnknownOpRejected(t *testing.T) {
	enc := EncodeRecords(sampleRecords())
	enc[0] = 99
	if _, err := DecodeRecords(enc); err == nil {
		t.Fatal("unknown op decoded without error")
	}
}

// ---------------------------------------------------------------------------
// Stores

func TestMemStoreSnapshotTruncatesWAL(t *testing.T) {
	m := NewMemStore()
	recs := sampleRecords()
	if err := m.AppendWAL(recs); err != nil {
		t.Fatal(err)
	}
	if err := m.WriteSnapshot(recs[:1]); err != nil {
		t.Fatal(err)
	}
	if err := m.AppendWAL(recs[1:2]); err != nil {
		t.Fatal(err)
	}
	snap, wal, err := m.Load()
	if err != nil {
		t.Fatal(err)
	}
	if len(snap) != 1 || snap[0] != recs[0] {
		t.Errorf("snapshot = %+v, want just %+v", snap, recs[0])
	}
	if len(wal) != 1 || wal[0] != recs[1] {
		t.Errorf("wal after snapshot = %+v, want just %+v", wal, recs[1])
	}
}

func TestDirStorePersistsAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	recs := sampleRecords()

	d, err := NewDirStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.AppendWAL(recs); err != nil {
		t.Fatal(err)
	}
	if err := d.WriteSnapshot(recs[:2]); err != nil {
		t.Fatal(err)
	}
	if err := d.AppendWAL(recs[2:]); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	// A new store over the same directory is the post-SIGKILL restart.
	d2, err := NewDirStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	snap, wal, err := d2.Load()
	if err != nil {
		t.Fatal(err)
	}
	if len(snap) != 2 || snap[0] != recs[0] || snap[1] != recs[1] {
		t.Errorf("snapshot after reopen = %+v", snap)
	}
	if len(wal) != 1 || wal[0] != recs[2] {
		t.Errorf("wal after reopen = %+v, want just %+v", wal, recs[2])
	}
}

func TestDirStoreToleratesTornWALTail(t *testing.T) {
	dir := t.TempDir()
	d, err := NewDirStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	recs := sampleRecords()
	if err := d.AppendWAL(recs[:2]); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	// Tear the last record in half, as a crash mid-write would.
	path := filepath.Join(dir, "wal.dat")
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, b[:len(b)-recordSize/2], 0o644); err != nil {
		t.Fatal(err)
	}
	d2, err := NewDirStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	snap, wal, err := d2.Load()
	if err != nil {
		t.Fatalf("torn WAL tail must load, got %v", err)
	}
	if len(snap) != 0 {
		t.Errorf("unexpected snapshot %+v", snap)
	}
	if len(wal) != 1 || wal[0] != recs[0] {
		t.Errorf("torn wal = %+v, want just the intact record %+v", wal, recs[0])
	}
}

// ---------------------------------------------------------------------------
// Service

// testJudge returns a Judge over the paper's Table I model (NS2Options):
// verdicts are pure geometry, so the tests below pick layouts that are
// unambiguously allowed (links 300 m apart) or denied (interferer 1 m from
// the receiver).
func testJudge(health comap.HealthPolicy, now func() time.Duration) comap.Judge {
	prop := radio.NewLogNormal2400(3.3, 5)
	return comap.Judge{
		Model: comap.Model{
			Prop:           prop,
			TxPowerDBm:     20,
			TSIRdB:         10,
			TPRR:           0.95,
			TcsDBm:         -80,
			CSMissProb:     0.9,
			SensitivityDBm: -94,
		},
		Rates:  phy.NS2Table1().Rates,
		Health: health,
		Now:    now,
	}
}

// testTopologyRecords lays out two 10 m links 300 m apart (a clear exposed-
// terminal pairing) plus node 5 one meter from node 2 (a hopeless
// interferer).
func testTopologyRecords(at time.Duration) []IngestRecord {
	fix := func(x, y float64) loc.Fix {
		return loc.Fix{Pos: geom.Point{X: x, Y: y}, ReportedAt: at}
	}
	return []IngestRecord{
		{Op: RecReport, Node: 1, Fix: fix(0, 0)},
		{Op: RecReport, Node: 2, Fix: fix(0, 10)},
		{Op: RecReport, Node: 3, Fix: fix(300, 0)},
		{Op: RecReport, Node: 4, Fix: fix(300, 10)},
		{Op: RecReport, Node: 5, Fix: fix(0, 11)},
	}
}

var (
	farKey  = Key{Observer: 3, Ongoing: comap.Link{Src: 1, Dst: 2}, MyDst: 4}
	nearKey = Key{Observer: 5, Ongoing: comap.Link{Src: 1, Dst: 2}, MyDst: 4}
)

func TestServiceVerdictComputeCacheInvalidate(t *testing.T) {
	svc := NewService(ServiceConfig{Judge: testJudge(comap.HealthPolicy{}, nil)})
	if err := svc.Apply(testTopologyRecords(0)); err != nil {
		t.Fatal(err)
	}

	v, err := svc.VerdictFor(farKey)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Allowed || !v.Wide || v.Cached {
		t.Fatalf("far ET verdict = %+v, want allowed+wide uncached", v)
	}
	v2, err := svc.VerdictFor(farKey)
	if err != nil {
		t.Fatal(err)
	}
	if !v2.Cached || v2.Allowed != v.Allowed || v2.Wide != v.Wide {
		t.Fatalf("second verdict = %+v, want cached copy of %+v", v2, v)
	}
	vn, err := svc.VerdictFor(nearKey)
	if err != nil {
		t.Fatal(err)
	}
	if vn.Allowed || vn.Wide {
		t.Fatalf("1m-from-receiver verdict = %+v, want denied", vn)
	}

	st := svc.Status()
	if st.VerdictsServed != 3 || st.VerdictsComputed != 2 || st.CacheEntries != 2 {
		t.Fatalf("served=%d computed=%d cache=%d, want 3/2/2",
			st.VerdictsServed, st.VerdictsComputed, st.CacheEntries)
	}

	// Invalidating a link endpoint drops every verdict involving it; the
	// next ask recomputes.
	svc.InvalidateNode(2)
	if st := svc.Status(); st.CacheEntries != 0 {
		t.Fatalf("cache entries after InvalidateNode(2) = %d, want 0", st.CacheEntries)
	}
	v3, err := svc.VerdictFor(farKey)
	if err != nil {
		t.Fatal(err)
	}
	if v3.Cached {
		t.Fatal("verdict served from cache after invalidation")
	}
	if svc.Status().VerdictsComputed != 3 {
		t.Fatalf("computed = %d after invalidation, want 3", svc.Status().VerdictsComputed)
	}
}

func TestServiceUnhealthyVerdictsNeverCached(t *testing.T) {
	now := time.Duration(0)
	svc := NewService(ServiceConfig{
		Judge: testJudge(comap.DefaultHealthPolicy(), func() time.Duration { return now }),
	})
	recs := testTopologyRecords(0)
	// Leave node 4 (myDst) out: the health gate must refuse the verdict.
	if err := svc.Apply(recs[:3]); err != nil {
		t.Fatal(err)
	}
	v, err := svc.VerdictFor(farKey)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Unhealthy {
		t.Fatalf("missing-fix verdict = %+v, want unhealthy", v)
	}
	if st := svc.Status(); st.VerdictsComputed != 0 || st.CacheEntries != 0 {
		t.Fatalf("unhealthy verdict computed/cached: %+v", st)
	}

	// The fix arriving heals the key with no invalidation needed.
	if err := svc.Apply(recs[3:4]); err != nil {
		t.Fatal(err)
	}
	v, err = svc.VerdictFor(farKey)
	if err != nil {
		t.Fatal(err)
	}
	if v.Unhealthy || !v.Allowed {
		t.Fatalf("healed verdict = %+v, want allowed", v)
	}

	// Ageing every fix past the confidence bound makes fresh keys unhealthy
	// again — but the cached verdict for farKey still serves (staleness
	// gating of cached entries is the client ladder's job, not the cache's).
	now = comap.DefaultHealthPolicy().MaxFixAge + time.Second
	v, err = svc.VerdictFor(nearKey)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Unhealthy {
		t.Fatalf("aged-fix verdict = %+v, want unhealthy", v)
	}
}

func TestServiceCrashRecoverReplaysWAL(t *testing.T) {
	store := NewMemStore()
	svc := NewService(ServiceConfig{
		Judge:         testJudge(comap.HealthPolicy{}, nil),
		Store:         store,
		SnapshotEvery: 4,
	})
	recs := testTopologyRecords(0)
	// First batch of 4 hits the snapshot cadence; the second lands in the
	// WAL only.
	if err := svc.Apply(recs[:4]); err != nil {
		t.Fatal(err)
	}
	if err := svc.Apply(recs[4:]); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.VerdictFor(farKey); err != nil {
		t.Fatal(err)
	}
	st := svc.Status()
	if st.Snapshots != 1 || st.WALRecords != 5 || st.Fixes != 5 || st.Epoch != 1 {
		t.Fatalf("pre-crash status %+v", st)
	}

	svc.Crash()
	if !svc.Down() {
		t.Fatal("service not down after Crash")
	}
	if err := svc.Apply(recs[:1]); err != ErrUnavailable {
		t.Fatalf("Apply on crashed service = %v, want ErrUnavailable", err)
	}
	if _, err := svc.VerdictFor(farKey); err != ErrUnavailable {
		t.Fatalf("VerdictFor on crashed service = %v, want ErrUnavailable", err)
	}
	if st := svc.Status(); st.Fixes != 0 || st.CacheEntries != 0 {
		t.Fatalf("volatile state survived the crash: %+v", st)
	}

	if err := svc.Recover(); err != nil {
		t.Fatal(err)
	}
	st = svc.Status()
	if st.Down || st.Epoch != 2 || st.Recoveries != 1 {
		t.Fatalf("post-recover status %+v", st)
	}
	if st.Fixes != 5 || st.WALReplayed != 1 {
		t.Fatalf("recovery rebuilt fixes=%d wal_replayed=%d, want 5 fixes via snapshot+1 WAL record",
			st.Fixes, st.WALReplayed)
	}
	// The rebuilt table answers identically.
	v, err := svc.VerdictFor(farKey)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Allowed || v.Cached {
		t.Fatalf("post-recovery verdict = %+v, want recomputed allow", v)
	}

	// A deregistration round-trips through the persistence plane too.
	if err := svc.Apply([]IngestRecord{{Op: RecDeregister, Node: 5}}); err != nil {
		t.Fatal(err)
	}
	svc.Crash()
	if err := svc.Recover(); err != nil {
		t.Fatal(err)
	}
	if got := svc.Status().Fixes; got != 4 {
		t.Fatalf("fixes after deregister+crash+recover = %d, want 4", got)
	}
}

// ---------------------------------------------------------------------------
// Client

// fakeClock is a manual sim clock for client tests: Now reads a variable,
// After registers timers, advance fires them in time order (timers may arm
// further timers while firing).
type fakeClock struct {
	now    time.Duration
	timers []*fakeTimer
}

type fakeTimer struct {
	at    time.Duration
	fn    func()
	fired bool
	dead  bool
}

func (fc *fakeClock) Now() time.Duration { return fc.now }

func (fc *fakeClock) After(d time.Duration, fn func()) func() {
	tm := &fakeTimer{at: fc.now + d, fn: fn}
	fc.timers = append(fc.timers, tm)
	return func() { tm.dead = true }
}

func (fc *fakeClock) advance(d time.Duration) {
	target := fc.now + d
	for {
		var next *fakeTimer
		for _, tm := range fc.timers {
			if tm.fired || tm.dead || tm.at > target {
				continue
			}
			if next == nil || tm.at < next.at {
				next = tm
			}
		}
		if next == nil {
			break
		}
		fc.now = next.at
		next.fired = true
		next.fn()
	}
	fc.now = target
}

// scriptTransport answers calls per its mode: "ok" completes inline with the
// scripted verdict, "err" fails inline, "lost" never completes.
type scriptTransport struct {
	mode    string
	verdict Verdict
	epoch   uint64
	reqs    []Request
}

func (s *scriptTransport) Invoke(req *Request, done func(*Response, error)) bool {
	cp := *req
	cp.Recs = append([]IngestRecord(nil), req.Recs...)
	s.reqs = append(s.reqs, cp)
	switch s.mode {
	case "ok":
		done(&Response{Verdict: s.verdict, Epoch: s.epoch}, nil)
		return true
	case "err":
		done(nil, ErrUnavailable)
		return true
	default: // lost
		return false
	}
}

func (s *scriptTransport) ops() []Op {
	var out []Op
	for _, r := range s.reqs {
		out = append(out, r.Op)
	}
	return out
}

func clientHarness(cfg ClientConfig) (*Client, *scriptTransport, *fakeClock) {
	fc := &fakeClock{}
	cfg.Now = fc.Now
	cfg.After = fc.After
	tr := &scriptTransport{mode: "ok", epoch: 1}
	c := NewClient(tr, cfg, 0)
	c.AdoptEpoch(1)
	return c, tr, fc
}

func notFound() (bool, bool) { return false, false }

func verdictKey(obs frame.NodeID) Key {
	return Key{Observer: obs, Ongoing: comap.Link{Src: 1, Dst: 2}, MyDst: frame.NodeID(obs + 1)}
}

func askRemote(c *Client, obs frame.NodeID) comap.RemoteVerdict {
	k := verdictKey(obs)
	return c.Verdict(k.Observer, k.Ongoing, k.MyDst, notFound)
}

func TestClientFreshInlineAndCachedFresh(t *testing.T) {
	c, tr, _ := clientHarness(DefaultClientConfig())
	tr.verdict = Verdict{Allowed: true, Wide: true}

	v := askRemote(c, 3)
	if v.Source != comap.RemoteValidated || !v.Allowed {
		t.Fatalf("inline round trip = %+v, want validated allow", v)
	}
	// With the map hit present and the breaker closed, the client must not
	// call the service again.
	k := verdictKey(3)
	v = c.Verdict(k.Observer, k.Ongoing, k.MyDst, func() (bool, bool) { return true, true })
	if v.Source != comap.RemoteCachedFresh || !v.Allowed {
		t.Fatalf("cached-fresh verdict = %+v", v)
	}
	st := c.Status()
	if st.Calls != 1 {
		t.Fatalf("calls = %d, want 1 (cached-fresh must not re-call)", st.Calls)
	}
	if st.RungDecisions["fresh"] != 2 || st.LadderTransitions != 0 {
		t.Fatalf("zero-fault client left fresh: %+v", st.RungDecisions)
	}
	if st.Breaker != "closed" || st.Rung != "fresh" {
		t.Fatalf("status = %+v", st)
	}
}

func TestClientUnhealthyVerdictPropagates(t *testing.T) {
	c, tr, _ := clientHarness(DefaultClientConfig())
	tr.verdict = Verdict{Unhealthy: true}
	v := askRemote(c, 3)
	if v.Source != comap.RemoteValidated || !v.Unhealthy {
		t.Fatalf("unhealthy verdict = %+v, want validated+unhealthy", v)
	}
	// Unhealthy answers must not enter the stale cache: with the transport
	// now failing, the same key lands on the DCF floor, not the stale rung.
	tr.mode = "err"
	v = askRemote(c, 3)
	if v.Source != comap.RemoteUnavailable {
		t.Fatalf("post-unhealthy degraded verdict = %+v, want unavailable", v)
	}
}

func TestClientBreakerOpensAndRecovers(t *testing.T) {
	cfg := DefaultClientConfig()
	cfg.BreakerFailures = 2
	cfg.BreakerCooldown = 100 * time.Millisecond
	cfg.MaxRetries = 0
	c, tr, fc := clientHarness(cfg)
	tr.mode = "err"

	askRemote(c, 3)
	askRemote(c, 5)
	if st := c.Status(); st.Breaker != "open" || st.Failures != 2 {
		t.Fatalf("breaker after %d failures: %+v", cfg.BreakerFailures, st)
	}
	// Open breaker: fail fast, no transport traffic.
	before := len(tr.reqs)
	v := askRemote(c, 7)
	if v.Source != comap.RemoteUnavailable {
		t.Fatalf("open-breaker verdict = %+v, want unavailable", v)
	}
	if len(tr.reqs) != before {
		t.Fatal("open breaker still sent a call")
	}

	// After the cooldown the breaker half-opens, admits one probe, and a
	// success closes it.
	fc.advance(cfg.BreakerCooldown)
	tr.mode = "ok"
	tr.verdict = Verdict{Allowed: true, Wide: true}
	v = askRemote(c, 9)
	if v.Source != comap.RemoteValidated || !v.Allowed {
		t.Fatalf("probe verdict = %+v, want validated allow", v)
	}
	if st := c.Status(); st.Breaker != "closed" {
		t.Fatalf("breaker after successful probe: %q", st.Breaker)
	}
}

func TestClientDeadlineEndsLostCall(t *testing.T) {
	cfg := DefaultClientConfig()
	cfg.MaxRetries = 0
	c, tr, fc := clientHarness(cfg)
	tr.mode = "lost"

	v := askRemote(c, 3)
	if v.Source != comap.RemoteUnavailable {
		t.Fatalf("in-flight verdict = %+v, want unavailable floor", v)
	}
	if st := c.Status(); st.PendingCalls != 1 || st.Timeouts != 0 {
		t.Fatalf("pre-deadline status %+v", st)
	}
	fc.advance(cfg.Deadline)
	st := c.Status()
	if st.PendingCalls != 0 || st.Timeouts != 1 || st.Failures != 1 {
		t.Fatalf("post-deadline status %+v, want the deadline to end the call", st)
	}
}

func TestClientRetryBackoffAndBudget(t *testing.T) {
	cfg := DefaultClientConfig()
	cfg.MaxRetries = 3
	cfg.BreakerFailures = 100 // keep the breaker out of this test
	cfg.RetryBudgetPerSec = 0.0001
	cfg.Burst = 1 // exactly one retry token, effectively no refill
	c, tr, fc := clientHarness(cfg)
	tr.mode = "err"

	askRemote(c, 3)
	if st := c.Status(); st.Retries != 1 {
		t.Fatalf("retries after first failure = %d, want 1 scheduled", st.Retries)
	}
	if len(tr.reqs) != 1 {
		t.Fatal("retry fired before its backoff elapsed")
	}
	fc.advance(cfg.RetryBase - time.Millisecond)
	if len(tr.reqs) != 1 {
		t.Fatal("retry fired early")
	}
	fc.advance(time.Millisecond)
	if len(tr.reqs) != 2 {
		t.Fatalf("retry did not fire at RetryBase; %d calls", len(tr.reqs))
	}
	// The retry failed too, but the token bucket is empty: no further
	// attempts, and the exhaustion is counted.
	fc.advance(time.Second)
	st := c.Status()
	if st.Calls != 2 || st.Retries != 1 || st.BudgetExhausted != 1 {
		t.Fatalf("budget-exhausted status %+v, want calls=2 retries=1 budget_exhausted=1", st)
	}
}

func TestClientLadderStaleCoarseDCF(t *testing.T) {
	cfg := DefaultClientConfig()
	cfg.BreakerFailures = 1
	cfg.MaxRetries = 0
	cfg.StaleFor = time.Second
	c, tr, fc := clientHarness(cfg)

	// Seed the stale cache with keys disjoint from the geometry keys below:
	// observer 30 allowed wide, observer 50 allowed but narrow.
	tr.verdict = Verdict{Allowed: true, Wide: true}
	askRemote(c, 30)
	tr.verdict = Verdict{Allowed: true, Wide: false}
	askRemote(c, 50)

	// Install the coarse tier over the far/near layout.
	fixes := make(map[frame.NodeID]loc.Fix)
	for _, r := range testTopologyRecords(0) {
		fixes[r.Node] = r.Fix
	}
	c.SetJudge(testJudge(comap.HealthPolicy{}, nil))
	c.SetFixes(func(id frame.NodeID) (loc.Fix, bool) {
		f, ok := fixes[id]
		return f, ok
	})

	// One failure trips the breaker; the ladder takes over.
	tr.mode = "err"
	askRemote(c, 7)

	// Stale rung: the wide cached verdict still justifies concurrency.
	v := askRemote(c, 30)
	if v.Source != comap.RemoteStale || !v.Allowed {
		t.Fatalf("stale verdict = %+v, want stale allow", v)
	}
	// A cached narrow verdict cannot: DCF floor.
	v = askRemote(c, 50)
	if v.Source != comap.RemoteUnavailable {
		t.Fatalf("narrow-cached verdict = %+v, want the DCF floor", v)
	}
	// No cache entry, but coarse geometry over the local registry clears the
	// far pairing.
	v = c.Verdict(farKey.Observer, farKey.Ongoing, farKey.MyDst, notFound)
	if v.Source != comap.RemoteCoarse || !v.Allowed {
		t.Fatalf("coarse verdict = %+v, want coarse allow", v)
	}
	// The hopeless interferer is denied even at the coarse rung: DCF.
	v = c.Verdict(nearKey.Observer, nearKey.Ongoing, nearKey.MyDst, notFound)
	if v.Source != comap.RemoteUnavailable {
		t.Fatalf("near coarse verdict = %+v, want the DCF floor", v)
	}

	// Past StaleFor the stale entry expires and observer 30 (no local fix)
	// falls through the coarse tier to the DCF floor.
	fc.advance(2 * time.Second)
	v = askRemote(c, 30)
	if v.Source != comap.RemoteUnavailable {
		t.Fatalf("expired-entry verdict = %+v, want the DCF floor", v)
	}

	st := c.Status()
	if st.RungDecisions["stale"] == 0 || st.RungDecisions["coarse"] == 0 || st.RungDecisions["dcf"] == 0 {
		t.Fatalf("ladder rungs not all exercised: %+v", st.RungDecisions)
	}
	if st.LadderTransitions == 0 {
		t.Fatal("no ladder transitions recorded")
	}
}

func TestClientEpochChangeTriggersResync(t *testing.T) {
	cfg := DefaultClientConfig()
	cfg.BreakerFailures = 1
	cfg.MaxRetries = 0
	c, tr, fc := clientHarness(cfg)

	resyncRecs := []IngestRecord{
		{Op: RecReport, Node: 1, Fix: loc.Fix{Pos: geom.Point{X: 1}}},
		{Op: RecReport, Node: 2, Fix: loc.Fix{Pos: geom.Point{X: 2}}},
	}
	c.SetResync(func() []IngestRecord { return resyncRecs })

	// A failed invalidation must be queued, not lost: the breaker is closed
	// so the fire happens, fails, and trips the breaker.
	tr.mode = "err"
	c.InvalidateNode(5)
	if st := c.Status(); st.Breaker != "open" {
		t.Fatalf("breaker after failed invalidation: %q", st.Breaker)
	}
	// While the breaker is open, ingest traffic is suppressed entirely.
	before := len(tr.reqs)
	c.IngestFix(6, loc.Fix{})
	if len(tr.reqs) != before {
		t.Fatal("open breaker still sent ingest traffic")
	}

	// Service restarts: epoch bumps. The next successful call must notice
	// and resync — queued invalidations first, then the registry dump.
	fc.advance(cfg.BreakerCooldown)
	tr.mode = "ok"
	tr.epoch = 2
	tr.verdict = Verdict{Allowed: true, Wide: true}
	askRemote(c, 3)

	st := c.Status()
	if st.Resyncs != 1 || st.Epoch != 2 {
		t.Fatalf("resyncs=%d epoch=%d, want 1/2", st.Resyncs, st.Epoch)
	}
	ops := tr.ops()
	// [failed OpInvalidateNode, probe OpVerdict, replayed OpInvalidateNode,
	// resync OpIngest]
	want := []Op{OpInvalidateNode, OpVerdict, OpInvalidateNode, OpIngest}
	if len(ops) != len(want) {
		t.Fatalf("ops = %v, want %v", ops, want)
	}
	for i := range want {
		if ops[i] != want[i] {
			t.Fatalf("ops = %v, want %v", ops, want)
		}
	}
	if last := tr.reqs[len(tr.reqs)-1]; len(last.Recs) != 2 || last.Recs[0].Node != 1 {
		t.Fatalf("resync ingest = %+v, want the registry dump", last.Recs)
	}
	if tr.reqs[2].Node != 5 {
		t.Fatalf("replayed invalidation for node %d, want 5", tr.reqs[2].Node)
	}
}

func TestClientIngestStreams(t *testing.T) {
	c, tr, _ := clientHarness(DefaultClientConfig())
	c.IngestFix(7, loc.Fix{Pos: geom.Point{X: 3, Y: 4}})
	c.IngestDeregister(7)
	st := c.Status()
	if st.IngestCalls != 2 {
		t.Fatalf("ingest calls = %d, want 2", st.IngestCalls)
	}
	if len(tr.reqs) != 2 || tr.reqs[0].Op != OpIngest || tr.reqs[1].Op != OpIngest {
		t.Fatalf("ops = %v", tr.ops())
	}
	if tr.reqs[0].Recs[0].Op != RecReport || tr.reqs[1].Recs[0].Op != RecDeregister {
		t.Fatalf("record ops = %d,%d", tr.reqs[0].Recs[0].Op, tr.reqs[1].Recs[0].Op)
	}
}

// TestClientStatusJSONStable pins that Status marshals (the /healthz
// contract) without nil maps or surprises.
func TestClientStatusJSONStable(t *testing.T) {
	c, _, _ := clientHarness(DefaultClientConfig())
	st := c.Status()
	if st.RungDecisions == nil || len(st.RungDecisions) != 4 {
		t.Fatalf("rung decisions map %+v, want all four rungs present", st.RungDecisions)
	}
	for _, r := range []Rung{RungFresh, RungStale, RungCoarse, RungDCF} {
		if _, ok := st.RungDecisions[r.String()]; !ok {
			t.Errorf("rung %q missing from status", r)
		}
	}
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(st); err != nil {
		t.Fatal(err)
	}
}
