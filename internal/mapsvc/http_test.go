package mapsvc

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/comap"
	"repro/internal/geom"
	"repro/internal/loc"
	"repro/internal/slo"
	"repro/internal/trace"
)

// newHTTPFixture stands up the comap-mapd stack — Service behind
// NewHTTPHandler on a loopback listener — with the server-side event
// stream captured and an SLO tracker attached.
func newHTTPFixture(t *testing.T) (*httptest.Server, *Service, *slo.Tracker, func() []trace.Event) {
	t.Helper()
	start := time.Now()
	now := func() time.Duration { return time.Since(start) }
	svc := NewService(ServiceConfig{
		Judge: testJudge(comap.HealthPolicy{}, nil),
		Now:   now,
	})
	if err := svc.Recover(); err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var events []trace.Event
	svc.SetEvents(func(e trace.Event) {
		mu.Lock()
		events = append(events, e)
		mu.Unlock()
	})
	tracker := slo.NewTracker(now, slo.DefaultObjectives()...)
	srv := httptest.NewServer(NewHTTPHandler(svc, 0, tracker))
	t.Cleanup(srv.Close)
	snapshot := func() []trace.Event {
		mu.Lock()
		defer mu.Unlock()
		out := make([]trace.Event, len(events))
		copy(out, events)
		return out
	}
	return srv, svc, tracker, snapshot
}

// TestHTTPCausalHeadersReachServerEvents drives the real HTTP transport
// with a populated call context and asserts the X-Comap-* headers carry
// the request identity into the server-side rpc.srv events — the join key
// comap-trace rpc stitches on.
func TestHTTPCausalHeadersReachServerEvents(t *testing.T) {
	srv, _, _, snapshot := newHTTPFixture(t)
	tr := &HTTPTransport{Base: srv.URL, Client: srv.Client()}

	ingest := &Request{
		Op: OpIngest,
		Recs: []IngestRecord{{
			Op: RecReport, Node: 1,
			Fix: loc.Fix{Pos: geom.Pt(10, 10), ReportedAt: time.Second, ErrorRadiusMeters: 2},
		}},
		Ctx: CallContext{Run: "deadbeef-7", Req: 42, Attempt: 1},
	}
	var callErr error
	tr.Invoke(ingest, func(_ *Response, err error) { callErr = err })
	if callErr != nil {
		t.Fatalf("ingest over HTTP: %v", callErr)
	}
	verdict := &Request{
		Op:  OpVerdict,
		Key: Key{Observer: 1, Ongoing: comap.Link{Src: 1, Dst: 2}, MyDst: 3},
		Ctx: CallContext{Run: "deadbeef-7", Req: 43, Attempt: 2},
	}
	tr.Invoke(verdict, func(_ *Response, err error) { callErr = err })
	if callErr != nil {
		t.Fatalf("verdict over HTTP: %v", callErr)
	}

	byReq := make(map[uint64]trace.Event)
	for _, e := range snapshot() {
		if e.Kind == trace.KindRPCServer && e.Req != 0 {
			byReq[e.Req] = e
		}
	}
	admit, ok := byReq[42]
	if !ok {
		t.Fatal("ingest produced no rpc.srv event carrying req 42 — headers dropped")
	}
	if admit.Reason != "admit" || admit.Op != "ingest" || admit.Attempt != 1 || admit.Count != 1 {
		t.Errorf("ingest server event = %+v, want admit/ingest attempt 1 count 1", admit)
	}
	miss, ok := byReq[43]
	if !ok {
		t.Fatal("verdict produced no rpc.srv event carrying req 43 — headers dropped")
	}
	if miss.Reason != "miss" || miss.Op != "verdict" || miss.Attempt != 2 {
		t.Errorf("verdict server event = %+v, want miss/verdict attempt 2", miss)
	}
}

// TestHTTPStatusCarriesSLO asserts /v1/status folds the tracker's
// per-endpoint SLO block in, with the handler-observed request counted.
func TestHTTPStatusCarriesSLO(t *testing.T) {
	srv, _, _, _ := newHTTPFixture(t)
	tr := &HTTPTransport{Base: srv.URL, Client: srv.Client()}
	req := &Request{
		Op:  OpVerdict,
		Key: Key{Observer: 1, Ongoing: comap.Link{Src: 1, Dst: 2}, MyDst: 3},
		Ctx: CallContext{Req: 1, Attempt: 1},
	}
	var callErr error
	tr.Invoke(req, func(_ *Response, err error) { callErr = err })
	if callErr != nil {
		t.Fatal(callErr)
	}

	resp, err := srv.Client().Get(srv.URL + "/v1/status")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st StatusWithSLO
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.SLO == nil {
		t.Fatal("/v1/status has no slo block with a tracker attached")
	}
	found := false
	for _, ep := range st.SLO.Endpoints {
		if ep.Endpoint == "verdict" {
			found = true
			if ep.Requests < 1 {
				t.Errorf("verdict endpoint requests = %d, want >= 1", ep.Requests)
			}
		}
	}
	if !found {
		t.Error("slo block missing the verdict endpoint")
	}
}

// TestHTTPRequestsWithoutHeadersStillServe pins backward compatibility:
// a plain client with no X-Comap-* headers gets served, and the server
// events carry the zero request ID (collected as request-less admissions,
// not joined spans).
func TestHTTPRequestsWithoutHeadersStillServe(t *testing.T) {
	srv, _, _, snapshot := newHTTPFixture(t)
	resp, err := srv.Client().Get(srv.URL + "/v1/verdict?obs=1&src=1&dst=2&mydst=3")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("bare verdict request: status %d", resp.StatusCode)
	}
	for _, e := range snapshot() {
		if e.Kind == trace.KindRPCServer && e.Op == "verdict" {
			if e.Req != 0 || e.Attempt != 0 {
				t.Fatalf("header-less request produced ctx-stamped event %+v", e)
			}
			return
		}
	}
	t.Fatal("no verdict server event at all")
}
