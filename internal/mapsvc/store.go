package mapsvc

import (
	"fmt"
	"os"
	"path/filepath"
)

// Store is the service's persistence backend: an append-only write-ahead
// log of ingest records plus periodic full snapshots. WriteSnapshot
// atomically replaces the snapshot and truncates the WAL; Load returns the
// last snapshot (as RecReport records) followed by the WAL records to
// replay over it.
//
// MemStore backs the deterministic in-simulation crash/recover model;
// DirStore persists to real files so comap-mapd survives a SIGKILL.
type Store interface {
	AppendWAL(recs []IngestRecord) error
	WriteSnapshot(recs []IngestRecord) error
	Load() (snapshot, wal []IngestRecord, err error)
}

// MemStore is an in-memory Store. It survives a Service.Crash (which only
// wipes the service's volatile state) exactly like a disk file survives a
// process kill, making in-sim recovery deterministic and I/O-free.
type MemStore struct {
	snap []IngestRecord
	wal  []IngestRecord
}

// NewMemStore returns an empty in-memory store.
func NewMemStore() *MemStore { return &MemStore{} }

// AppendWAL appends copies of recs to the log.
func (m *MemStore) AppendWAL(recs []IngestRecord) error {
	m.wal = append(m.wal, recs...)
	return nil
}

// WriteSnapshot replaces the snapshot and truncates the WAL.
func (m *MemStore) WriteSnapshot(recs []IngestRecord) error {
	m.snap = append(m.snap[:0:0], recs...)
	m.wal = m.wal[:0:0]
	return nil
}

// Load returns the stored snapshot and WAL.
func (m *MemStore) Load() (snapshot, wal []IngestRecord, err error) {
	return append([]IngestRecord(nil), m.snap...), append([]IngestRecord(nil), m.wal...), nil
}

// DirStore persists the snapshot and WAL as binary files in a directory
// ("snapshot.dat", "wal.dat"). Snapshots are written to a temp file and
// renamed into place, so a crash mid-snapshot leaves the previous snapshot
// intact; a torn WAL tail is dropped at load time.
type DirStore struct {
	dir string
	wal *os.File
}

// NewDirStore opens (creating if needed) a directory-backed store.
func NewDirStore(dir string) (*DirStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("mapsvc: create store dir: %w", err)
	}
	wal, err := os.OpenFile(filepath.Join(dir, "wal.dat"), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("mapsvc: open wal: %w", err)
	}
	return &DirStore{dir: dir, wal: wal}, nil
}

// Dir returns the backing directory.
func (d *DirStore) Dir() string { return d.dir }

// Close closes the WAL file.
func (d *DirStore) Close() error { return d.wal.Close() }

// AppendWAL appends the encoded batch and syncs it to disk.
func (d *DirStore) AppendWAL(recs []IngestRecord) error {
	if _, err := d.wal.Write(EncodeRecords(recs)); err != nil {
		return fmt.Errorf("mapsvc: append wal: %w", err)
	}
	if err := d.wal.Sync(); err != nil {
		return fmt.Errorf("mapsvc: sync wal: %w", err)
	}
	return nil
}

// WriteSnapshot atomically replaces the snapshot file, then truncates the
// WAL (the snapshot subsumes it).
func (d *DirStore) WriteSnapshot(recs []IngestRecord) error {
	tmp := filepath.Join(d.dir, "snapshot.tmp")
	if err := os.WriteFile(tmp, EncodeRecords(recs), 0o644); err != nil {
		return fmt.Errorf("mapsvc: write snapshot: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(d.dir, "snapshot.dat")); err != nil {
		return fmt.Errorf("mapsvc: publish snapshot: %w", err)
	}
	if err := d.wal.Close(); err != nil {
		return fmt.Errorf("mapsvc: rotate wal: %w", err)
	}
	wal, err := os.OpenFile(filepath.Join(d.dir, "wal.dat"), os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("mapsvc: rotate wal: %w", err)
	}
	d.wal = wal
	return nil
}

// Load reads the snapshot and WAL files; missing files read as empty.
func (d *DirStore) Load() (snapshot, wal []IngestRecord, err error) {
	snapBytes, err := os.ReadFile(filepath.Join(d.dir, "snapshot.dat"))
	if err != nil && !os.IsNotExist(err) {
		return nil, nil, fmt.Errorf("mapsvc: read snapshot: %w", err)
	}
	walBytes, err := os.ReadFile(filepath.Join(d.dir, "wal.dat"))
	if err != nil && !os.IsNotExist(err) {
		return nil, nil, fmt.Errorf("mapsvc: read wal: %w", err)
	}
	if snapshot, err = DecodeRecords(snapBytes); err != nil {
		return nil, nil, err
	}
	if wal, err = DecodeRecords(walBytes); err != nil {
		return nil, nil, err
	}
	return snapshot, wal, nil
}
