// Package mapsvc extracts the CO-MAP control plane — the location registry
// mirror, the co-occurrence verdict computation and its caches — behind a
// client/server boundary. The Service holds a sharded fix table fed by a
// streaming ingest of registry commits, a sharded per-observer verdict
// cache with per-node invalidation, and snapshot + write-ahead-log
// persistence with replay-on-restart recovery. The Client wraps every call
// in the full robustness toolkit (per-call deadlines, bounded retries with
// jittered exponential backoff, a retry budget, a circuit breaker) and
// degrades through a four-rung ladder — fresh verdicts → cached-but-stale
// with widened error-radius margins → coarse registry-only geometry →
// plain DCF — when the control plane is slow, partitioned or restarting.
//
// The same client runs over two transports: SimTransport executes calls
// in-process on the simulation clock with fault fates drawn from seeded
// engine streams (bit-reproducible chaos), and HTTPTransport talks real
// HTTP to the standalone cmd/comap-mapd server for load testing.
package mapsvc

import (
	"errors"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/comap"
	"repro/internal/frame"
	"repro/internal/loc"
	"repro/internal/trace"
)

// ErrUnavailable reports a call that reached a crashed or shedding service.
var ErrUnavailable = errors.New("mapsvc: control plane unavailable")

// ErrDeadline reports a call abandoned by the client's per-call deadline.
var ErrDeadline = errors.New("mapsvc: call deadline exceeded")

// Key identifies one verdict: observer hearing ongoing while wanting to
// send to MyDst — the co-occurrence map key plus the deciding node.
type Key struct {
	Observer frame.NodeID
	Ongoing  comap.Link
	MyDst    frame.NodeID
}

// Verdict is the service's answer for a Key.
type Verdict struct {
	// Allowed is the full eq.-(3) + rate-economy verdict.
	Allowed bool `json:"allowed"`
	// Wide is the conservative degraded-tier verdict (worst-case geometry
	// with widened error radii, no rate economy); the client serves it from
	// its stale cache when the service is unreachable.
	Wide bool `json:"wide"`
	// Unhealthy marks a verdict the service's health gate refused to
	// compute (a fix involved is missing or past the confidence bound).
	Unhealthy bool `json:"unhealthy"`
	// Cached reports whether the answer came from the verdict cache.
	Cached bool `json:"cached"`
}

// DefaultWidenMeters is the extra error-radius inflation applied to the
// Wide verdict and the client's coarse-geometry tier.
const DefaultWidenMeters = 5.0

// DefaultSnapshotEvery is the WAL-record count between snapshots.
const DefaultSnapshotEvery = 4096

// ServiceConfig configures a Service.
type ServiceConfig struct {
	// Judge is the verdict oracle (model, rates, health policy, clock) —
	// the exact computation the in-process agent runs.
	Judge comap.Judge
	// WidenMeters inflates error radii for the Wide verdict
	// (DefaultWidenMeters when 0).
	WidenMeters float64
	// Shards is the fix-table and verdict-cache shard count (8 when 0).
	Shards int
	// Store is the snapshot+WAL backend; nil disables persistence (a
	// crash then recovers to an empty state).
	Store Store
	// SnapshotEvery is the WAL-record count that triggers a snapshot
	// (DefaultSnapshotEvery when 0; negative disables snapshots).
	SnapshotEvery int
	// Now supplies time for snapshot-age reporting; nil disables it.
	Now func() time.Duration
}

type fixShard struct {
	mu    sync.RWMutex
	fixes map[frame.NodeID]loc.Fix
}

type cachedVerdict struct {
	allowed bool
	wide    bool
}

type verdictShard struct {
	mu sync.RWMutex
	m  map[Key]cachedVerdict
}

// Service is the control-plane server: the fix table, the verdict cache,
// and the persistence plane. All methods are safe for concurrent use; the
// stats are atomics so the observability plane can scrape mid-load.
type Service struct {
	cfg    ServiceConfig
	fixFn  comap.FixFunc
	events func(trace.Event)

	shards  []*fixShard
	vshards []*verdictShard

	down  atomic.Bool
	epoch atomic.Uint64

	// walMu serializes WAL appends, the snapshot cadence counter and
	// snapshot writes.
	walMu    sync.Mutex
	walSince int

	nFixes         atomic.Int64
	nCache         atomic.Int64
	ingested       atomic.Int64
	shed           atomic.Int64
	served         atomic.Int64
	computed       atomic.Int64
	invalidations  atomic.Int64
	walRecords     atomic.Int64
	walReplayed    atomic.Int64
	snapshots      atomic.Int64
	recoveries     atomic.Int64
	lastSnapshotNs atomic.Int64
}

// NewService builds a service. The epoch starts at 1; every Recover
// increments it, which is how clients detect a restart and resync.
func NewService(cfg ServiceConfig) *Service {
	if cfg.WidenMeters == 0 {
		cfg.WidenMeters = DefaultWidenMeters
	}
	if cfg.Shards <= 0 {
		cfg.Shards = 8
	}
	if cfg.SnapshotEvery == 0 {
		cfg.SnapshotEvery = DefaultSnapshotEvery
	}
	s := &Service{cfg: cfg}
	s.shards = make([]*fixShard, cfg.Shards)
	s.vshards = make([]*verdictShard, cfg.Shards)
	for i := range s.shards {
		s.shards[i] = &fixShard{fixes: make(map[frame.NodeID]loc.Fix)}
		s.vshards[i] = &verdictShard{m: make(map[Key]cachedVerdict)}
	}
	s.fixFn = s.fixOf
	s.epoch.Store(1)
	s.lastSnapshotNs.Store(-1)
	return s
}

// SetEvents installs the server-side structured event sink: every
// admission, shed, verdict hit/miss, invalidation, epoch bump and WAL
// replay is reported as a trace.Event of kind "rpc.srv" carrying the
// caller's causal context. The sink runs on the serving path (the sim
// loop, or an HTTP handler goroutine) so it must be cheap; stamping the
// event with a time and node is the sink's job. Emission is purely
// observational — a nil sink (the default) records nothing at zero cost.
func (s *Service) SetEvents(fn func(trace.Event)) { s.events = fn }

// emit reports one server-side event under the caller's causal context.
func (s *Service) emit(reason, op string, ctx CallContext, count int) {
	if s.events == nil {
		return
	}
	s.events(trace.Event{
		Kind:    trace.KindRPCServer,
		Reason:  reason,
		Op:      op,
		Req:     ctx.Req,
		Attempt: ctx.Attempt,
		Count:   count,
		Epoch:   s.epoch.Load(),
	})
}

// Epoch returns the current service epoch.
func (s *Service) Epoch() uint64 { return s.epoch.Load() }

// Down reports whether the service is crashed.
func (s *Service) Down() bool { return s.down.Load() }

func (s *Service) fixShardOf(id frame.NodeID) *fixShard {
	return s.shards[int(id)%len(s.shards)]
}

func (s *Service) vShardOf(observer frame.NodeID) *verdictShard {
	return s.vshards[int(observer)%len(s.vshards)]
}

func (s *Service) fixOf(id frame.NodeID) (loc.Fix, bool) {
	sh := s.fixShardOf(id)
	sh.mu.RLock()
	f, ok := sh.fixes[id]
	sh.mu.RUnlock()
	return f, ok
}

// Apply ingests a batch of registry change records: WAL-append first (when
// persistence is on), then apply to the fix table, then snapshot if the
// cadence came due.
func (s *Service) Apply(recs []IngestRecord) error {
	return s.ApplyCtx(recs, CallContext{})
}

// ApplyCtx is Apply carrying the caller's causal context for tracing.
func (s *Service) ApplyCtx(recs []IngestRecord, ctx CallContext) error {
	if s.down.Load() {
		return ErrUnavailable
	}
	doSnap := false
	if s.cfg.Store != nil {
		s.walMu.Lock()
		if err := s.cfg.Store.AppendWAL(recs); err != nil {
			s.walMu.Unlock()
			return err
		}
		s.walRecords.Add(int64(len(recs)))
		s.walSince += len(recs)
		doSnap = s.cfg.SnapshotEvery > 0 && s.walSince >= s.cfg.SnapshotEvery
		s.walMu.Unlock()
	}
	for _, rec := range recs {
		s.applyOne(rec)
	}
	s.ingested.Add(int64(len(recs)))
	s.emit("admit", "ingest", ctx, len(recs))
	if doSnap {
		if err := s.Snapshot(); err != nil {
			return err
		}
	}
	return nil
}

func (s *Service) applyOne(rec IngestRecord) {
	sh := s.fixShardOf(rec.Node)
	sh.mu.Lock()
	_, had := sh.fixes[rec.Node]
	switch rec.Op {
	case RecReport:
		sh.fixes[rec.Node] = rec.Fix
		if !had {
			s.nFixes.Add(1)
		}
	case RecDeregister:
		if had {
			delete(sh.fixes, rec.Node)
			s.nFixes.Add(-1)
		}
	}
	sh.mu.Unlock()
}

// VerdictFor answers one verdict request: cache hit, or health gate +
// Judge computation + cache insert. Unhealthy answers are never cached —
// transient ill-health must not poison the verdict cache, mirroring the
// in-process agent.
func (s *Service) VerdictFor(k Key) (Verdict, error) {
	return s.VerdictForCtx(k, CallContext{})
}

// VerdictForCtx is VerdictFor carrying the caller's causal context: it
// reports the request's fate ("hit", "miss", "unhealthy") on the
// server-side event stream.
func (s *Service) VerdictForCtx(k Key, ctx CallContext) (Verdict, error) {
	if s.down.Load() {
		return Verdict{}, ErrUnavailable
	}
	s.served.Add(1)
	vs := s.vShardOf(k.Observer)
	vs.mu.RLock()
	c, ok := vs.m[k]
	vs.mu.RUnlock()
	if ok {
		s.emit("hit", "verdict", ctx, 0)
		return Verdict{Allowed: c.allowed, Wide: c.wide, Cached: true}, nil
	}
	j := s.cfg.Judge
	if _, _, healthy := j.FixHealth(s.fixFn, k.Observer, k.MyDst, k.Ongoing.Src, k.Ongoing.Dst); !healthy {
		s.emit("unhealthy", "verdict", ctx, 0)
		return Verdict{Unhealthy: true}, nil
	}
	s.emit("miss", "verdict", ctx, 0)
	s.computed.Add(1)
	allowed := j.Decide(s.fixFn, k.Observer, k.Ongoing, k.MyDst)
	wide, wideOK := j.DecideWide(s.fixFn, k.Observer, k.Ongoing, k.MyDst, s.cfg.WidenMeters)
	if !wideOK {
		wide = false
	}
	vs.mu.Lock()
	if _, exists := vs.m[k]; !exists {
		vs.m[k] = cachedVerdict{allowed: allowed, wide: wide}
		s.nCache.Add(1)
	}
	vs.mu.Unlock()
	return Verdict{Allowed: allowed, Wide: wide}, nil
}

// InvalidateNode drops every cached verdict involving id as a link endpoint
// or destination — the service-side mirror of Agent.OnStationChanged.
func (s *Service) InvalidateNode(id frame.NodeID) {
	s.InvalidateNodeCtx(id, CallContext{})
}

// InvalidateNodeCtx is InvalidateNode carrying the caller's causal context.
func (s *Service) InvalidateNodeCtx(id frame.NodeID, ctx CallContext) {
	if s.down.Load() {
		return
	}
	s.invalidations.Add(1)
	dropped := 0
	for _, vs := range s.vshards {
		vs.mu.Lock()
		for k := range vs.m {
			if k.Ongoing.Src == id || k.Ongoing.Dst == id || k.MyDst == id {
				delete(vs.m, k)
				s.nCache.Add(-1)
				dropped++
			}
		}
		vs.mu.Unlock()
	}
	if s.events != nil {
		e := trace.Event{
			Kind: trace.KindRPCServer, Reason: "invalidate", Op: "invalidate_node",
			Req: ctx.Req, Attempt: ctx.Attempt, Count: dropped, Epoch: s.epoch.Load(), Src: id,
		}
		s.events(e)
	}
}

// InvalidateAll empties the verdict cache.
func (s *Service) InvalidateAll() {
	s.InvalidateAllCtx(CallContext{})
}

// InvalidateAllCtx is InvalidateAll carrying the caller's causal context.
func (s *Service) InvalidateAllCtx(ctx CallContext) {
	if s.down.Load() {
		return
	}
	s.invalidations.Add(1)
	dropped := 0
	for _, vs := range s.vshards {
		vs.mu.Lock()
		dropped += len(vs.m)
		s.nCache.Add(-int64(len(vs.m)))
		vs.m = make(map[Key]cachedVerdict)
		vs.mu.Unlock()
	}
	s.emit("invalidate_all", "invalidate_all", ctx, dropped)
}

// Snapshot persists the full fix table (sorted by node for determinism)
// and truncates the WAL.
func (s *Service) Snapshot() error {
	if s.cfg.Store == nil {
		return nil
	}
	s.walMu.Lock()
	defer s.walMu.Unlock()
	recs := s.fixRecords()
	if err := s.cfg.Store.WriteSnapshot(recs); err != nil {
		return err
	}
	s.walSince = 0
	s.snapshots.Add(1)
	if s.cfg.Now != nil {
		s.lastSnapshotNs.Store(s.cfg.Now().Nanoseconds())
	}
	return nil
}

// fixRecords dumps the fix table as RecReport records sorted by node.
func (s *Service) fixRecords() []IngestRecord {
	var recs []IngestRecord
	for _, sh := range s.shards {
		sh.mu.RLock()
		for id, f := range sh.fixes {
			recs = append(recs, IngestRecord{Op: RecReport, Node: id, Fix: f})
		}
		sh.mu.RUnlock()
	}
	sort.Slice(recs, func(i, j int) bool { return recs[i].Node < recs[j].Node })
	return recs
}

// Crash simulates the service process dying: all volatile state (fix
// table, verdict cache) is lost; only the Store survives. Calls fail with
// ErrUnavailable until Recover.
func (s *Service) Crash() {
	s.down.Store(true)
	s.clearVolatile()
	s.emit("crash", "", CallContext{}, 0)
}

func (s *Service) clearVolatile() {
	for _, sh := range s.shards {
		sh.mu.Lock()
		sh.fixes = make(map[frame.NodeID]loc.Fix)
		sh.mu.Unlock()
	}
	for _, vs := range s.vshards {
		vs.mu.Lock()
		vs.m = make(map[Key]cachedVerdict)
		vs.mu.Unlock()
	}
	s.nFixes.Store(0)
	s.nCache.Store(0)
}

// Recover restarts the service: volatile state is rebuilt by replaying the
// snapshot then the WAL, the epoch increments (clients detect it and
// resync), and the service comes back up. Safe to call on a fresh service
// with an empty store.
func (s *Service) Recover() error {
	s.clearVolatile()
	walLen := 0
	if s.cfg.Store != nil {
		snap, wal, err := s.cfg.Store.Load()
		if err != nil {
			return err
		}
		for _, rec := range snap {
			s.applyOne(rec)
		}
		for _, rec := range wal {
			s.applyOne(rec)
		}
		walLen = len(wal)
		s.walReplayed.Add(int64(walLen))
	}
	s.walMu.Lock()
	s.walSince = walLen
	s.walMu.Unlock()
	s.epoch.Add(1)
	s.recoveries.Add(1)
	s.down.Store(false)
	s.emit("wal_replay", "", CallContext{}, walLen)
	s.emit("epoch_bump", "", CallContext{}, 0)
	return nil
}

// noteShed counts ingest records refused by admission control and reports
// the shed on the server-side event stream.
func (s *Service) noteShed(n int, ctx CallContext) {
	s.shed.Add(int64(n))
	s.emit("shed", "ingest", ctx, n)
}

// ServiceStatus is a race-safe snapshot for /healthz and /v1/status.
type ServiceStatus struct {
	Down             bool   `json:"down"`
	Epoch            uint64 `json:"epoch"`
	Fixes            int64  `json:"fixes"`
	CacheEntries     int64  `json:"cache_entries"`
	Ingested         int64  `json:"ingested"`
	IngestShed       int64  `json:"ingest_shed"`
	VerdictsServed   int64  `json:"verdicts_served"`
	VerdictsComputed int64  `json:"verdicts_computed"`
	Invalidations    int64  `json:"invalidations"`
	WALRecords       int64  `json:"wal_records"`
	WALReplayed      int64  `json:"wal_replayed"`
	Snapshots        int64  `json:"snapshots"`
	Recoveries       int64  `json:"recoveries"`
	// LastSnapshotAgeSec is -1 when no snapshot has been taken (or no
	// clock is configured).
	LastSnapshotAgeSec float64 `json:"last_snapshot_age_sec"`
}

// Status snapshots the service counters. Safe for concurrent use.
func (s *Service) Status() ServiceStatus {
	st := ServiceStatus{
		Down:               s.down.Load(),
		Epoch:              s.epoch.Load(),
		Fixes:              s.nFixes.Load(),
		CacheEntries:       s.nCache.Load(),
		Ingested:           s.ingested.Load(),
		IngestShed:         s.shed.Load(),
		VerdictsServed:     s.served.Load(),
		VerdictsComputed:   s.computed.Load(),
		Invalidations:      s.invalidations.Load(),
		WALRecords:         s.walRecords.Load(),
		WALReplayed:        s.walReplayed.Load(),
		Snapshots:          s.snapshots.Load(),
		Recoveries:         s.recoveries.Load(),
		LastSnapshotAgeSec: -1,
	}
	if ns := s.lastSnapshotNs.Load(); ns >= 0 && s.cfg.Now != nil {
		st.LastSnapshotAgeSec = (s.cfg.Now() - time.Duration(ns)).Seconds()
	}
	return st
}
