package mapsvc

import (
	"math/rand"
	"sync"
	"time"

	"repro/internal/comap"
	"repro/internal/frame"
	"repro/internal/loc"
	"repro/internal/slo"
	"repro/internal/trace"
)

// Rung is a degradation-ladder position.
type Rung int

// The ladder, healthiest first.
const (
	// RungFresh serves full verdicts: local map hits while the breaker is
	// closed, and synchronous round trips to the service.
	RungFresh Rung = iota
	// RungStale serves the client's cached conservative (widened-margin)
	// verdicts while they are younger than StaleFor.
	RungStale
	// RungCoarse computes worst-case geometry over the local registry view
	// only — no rate economy, no service.
	RungCoarse
	// RungDCF is the floor: behave like plain DCF (deny concurrency).
	RungDCF
)

// String names the rung for status endpoints and trace reasons.
func (r Rung) String() string {
	switch r {
	case RungFresh:
		return "fresh"
	case RungStale:
		return "stale"
	case RungCoarse:
		return "coarse"
	default:
		return "dcf"
	}
}

// Breaker states.
const (
	breakerClosed = iota
	breakerOpen
	breakerHalfOpen
)

func breakerName(s int) string {
	switch s {
	case breakerClosed:
		return "closed"
	case breakerOpen:
		return "open"
	default:
		return "half-open"
	}
}

// ClientConfig tunes the control-plane client. Now and After abstract the
// clock and timer plane: the simulator passes the engine's virtual clock so
// deadlines, backoff and budget refill all run in sim-time; WallClock()
// supplies real time for load tests against comap-mapd.
type ClientConfig struct {
	// Deadline bounds each call attempt.
	Deadline time.Duration
	// MaxRetries bounds retry attempts per decision (first attempt free).
	MaxRetries int
	// RetryBase is the first backoff; attempt k waits RetryBase<<(k-1),
	// capped at RetryMax, jittered into [d/2, d] when Jitter is set.
	RetryBase time.Duration
	RetryMax  time.Duration
	// RetryBudgetPerSec refills the retry token bucket; Burst caps it.
	// First attempts are free — the budget only meters retries, so retry
	// storms cannot amplify an outage.
	RetryBudgetPerSec float64
	Burst             float64
	// BreakerFailures consecutive failures open the circuit breaker;
	// BreakerCooldown later it half-opens and admits one probe.
	BreakerFailures int
	BreakerCooldown time.Duration
	// StaleFor bounds how old a cached verdict the stale rung may serve.
	StaleFor time.Duration

	Now    func() time.Duration
	After  func(d time.Duration, fn func()) (cancel func())
	Jitter *rand.Rand
}

// DefaultClientConfig returns the simulator's tuning: tight deadlines (the
// control plane is co-located), a small bounded retry budget, and a breaker
// that trips well inside one fault window.
func DefaultClientConfig() ClientConfig {
	return ClientConfig{
		Deadline:          20 * time.Millisecond,
		MaxRetries:        3,
		RetryBase:         10 * time.Millisecond,
		RetryMax:          160 * time.Millisecond,
		RetryBudgetPerSec: 10,
		Burst:             20,
		BreakerFailures:   5,
		BreakerCooldown:   250 * time.Millisecond,
		StaleFor:          3 * time.Second,
	}
}

// WallClock returns Now/After implementations over real time, for running
// the client against comap-mapd outside the simulator.
func WallClock() (now func() time.Duration, after func(time.Duration, func()) func()) {
	start := time.Now()
	now = func() time.Duration { return time.Since(start) }
	after = func(d time.Duration, fn func()) func() {
		t := time.AfterFunc(d, fn)
		return func() { t.Stop() }
	}
	return now, after
}

type entry struct {
	allowed bool
	wide    bool
	at      time.Duration
}

type call struct {
	key       Key
	attempt   int
	req       uint64 // client-assigned request ID, stable across retries
	start     time.Duration
	completed bool
	resp      *Response
	err       error
	cancel    func()
}

// fireCall tracks one fire-and-forget (ingest/invalidate) call.
type fireCall struct {
	req       uint64
	op        Op
	start     time.Duration
	completed bool
	cancel    func()
	onFail    func() // runs under the client mutex
}

// Client is the simulator-side control-plane client. It implements
// comap.RemoteVerdicts: every co-occurrence-map miss becomes a control-plane
// call wrapped in a deadline, bounded jittered retries metered by a token
// budget, and a circuit breaker; when a fresh verdict cannot be had it walks
// the degradation ladder (stale cache → coarse geometry → DCF). One client
// serves every agent — control-plane health is global.
//
// All state is guarded by one mutex; the transport is always invoked with
// the mutex released, so inline completions (the zero-fault fast path) and
// status scrapes under load are both safe.
type Client struct {
	cfg       ClientConfig
	transport Transport
	judge     comap.Judge
	fixes     comap.FixFunc
	resyncFn  func() []IngestRecord
	tr        *trace.Emitter
	slo       *slo.Tracker
	run       string
	widen     float64

	mu      sync.Mutex
	entries map[Key]entry
	pending map[Key]*call

	breaker   int
	probing   bool
	failures  int // consecutive, closed-state
	openUntil time.Duration

	tokensMilli int64
	lastRefill  time.Duration

	rung          Rung
	rungSince     time.Duration
	rungDecisions [4]int64
	transitions   int64

	nextReq      uint64
	breakerOpens int64

	lastEpoch       uint64
	needResync      bool
	resyncing       bool
	pendingInval    map[frame.NodeID]bool
	pendingInvalAll bool

	calls           int64
	failuresTotal   int64
	timeouts        int64
	retries         int64
	budgetExhausted int64
	resyncs         int64
	ingestCalls     int64
}

var _ comap.RemoteVerdicts = (*Client)(nil)

// NewClient builds a client over the given transport. widenMeters inflates
// the coarse-geometry rung (DefaultWidenMeters when 0).
func NewClient(transport Transport, cfg ClientConfig, widenMeters float64) *Client {
	if widenMeters == 0 {
		widenMeters = DefaultWidenMeters
	}
	c := &Client{
		cfg:          cfg,
		transport:    transport,
		widen:        widenMeters,
		entries:      make(map[Key]entry),
		pending:      make(map[Key]*call),
		pendingInval: make(map[frame.NodeID]bool),
		tokensMilli:  int64(cfg.Burst * 1000),
		rung:         RungFresh,
	}
	if cfg.Now != nil {
		c.lastRefill = cfg.Now()
		c.rungSince = cfg.Now()
	}
	return c
}

// SetJudge installs the local verdict calculator for the coarse rung.
func (c *Client) SetJudge(j comap.Judge) { c.judge = j }

// SetFixes installs the local registry view for the coarse rung; nil skips
// the coarse rung entirely.
func (c *Client) SetFixes(f comap.FixFunc) { c.fixes = f }

// SetResync installs the full-state dump used to re-seed the service after
// a detected restart (records must be in deterministic order).
func (c *Client) SetResync(fn func() []IngestRecord) { c.resyncFn = fn }

// SetTrace attaches an emitter for ladder-transition ("co.ladder") and
// client-side RPC lifecycle ("rpc.*") events.
func (c *Client) SetTrace(em *trace.Emitter) { c.tr = em }

// SetSLO attaches a per-endpoint SLO tracker; every call attempt's outcome
// and latency is observed under its operation name. nil detaches.
func (c *Client) SetSLO(t *slo.Tracker) { c.slo = t }

// SetRun stamps the run fingerprint propagated in every call's causal
// context (the X-Comap-Run header over HTTP).
func (c *Client) SetRun(fp string) { c.run = fp }

// AdoptEpoch primes the client's view of the service epoch so the first
// successful call is not mistaken for a restart.
func (c *Client) AdoptEpoch(epoch uint64) {
	c.mu.Lock()
	c.lastEpoch = epoch
	c.mu.Unlock()
}

// Verdict implements comap.RemoteVerdicts. cached is called exactly once.
func (c *Client) Verdict(observer frame.NodeID, ongoing comap.Link, myDst frame.NodeID, cached func() (allowed, found bool)) comap.RemoteVerdict {
	cachedAllowed, found := cached()
	key := Key{Observer: observer, Ongoing: ongoing, MyDst: myDst}
	now := c.cfg.Now()

	c.mu.Lock()
	if c.breakerStateLocked(now) == breakerClosed && found {
		c.serveRungLocked(RungFresh, 0)
		c.mu.Unlock()
		return comap.RemoteVerdict{Source: comap.RemoteCachedFresh, Allowed: cachedAllowed}
	}
	var cl *call
	if _, busy := c.pending[key]; !busy {
		if c.allowCallLocked(now) {
			cl = c.newCallLocked(key, 0, 0)
		} else if c.tr.Enabled() {
			// The breaker refused to issue the call: no request ID is
			// assigned, the decision degrades immediately.
			c.tr.Emit(trace.Event{Kind: trace.KindRPCDrop, Op: OpName(OpVerdict), Reason: "breaker_open"})
		}
	}
	c.mu.Unlock()

	if cl != nil {
		c.send(cl)
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	var req uint64
	if cl != nil {
		req = cl.req
	}
	if cl != nil && cl.completed && cl.err == nil {
		// Synchronous round trip: still the fresh rung.
		c.serveRungLocked(RungFresh, req)
		v := cl.resp.Verdict
		if v.Unhealthy {
			return comap.RemoteVerdict{Source: comap.RemoteValidated, Unhealthy: true, Req: req}
		}
		return comap.RemoteVerdict{Source: comap.RemoteValidated, Allowed: v.Allowed, Req: req}
	}
	// Degraded: the call is in flight, failed, or the breaker refused it.
	// A degraded tier may only JUSTIFY concurrency — a conservative deny is
	// served from the DCF floor, because denying concurrency is exactly what
	// plain DCF does (the rung reflects the behaviour actually delivered).
	if e, ok := c.entries[key]; ok && now-e.at <= c.cfg.StaleFor {
		if e.wide {
			c.serveRungLocked(RungStale, req)
			return comap.RemoteVerdict{Source: comap.RemoteStale, Allowed: true, Req: req}
		}
		c.serveRungLocked(RungDCF, req)
		return comap.RemoteVerdict{Source: comap.RemoteUnavailable, Req: req}
	}
	if c.fixes != nil {
		if allowed, ok := c.judge.DecideWide(c.fixes, observer, ongoing, myDst, c.widen); ok && allowed {
			c.serveRungLocked(RungCoarse, req)
			return comap.RemoteVerdict{Source: comap.RemoteCoarse, Allowed: true, Req: req}
		}
	}
	c.serveRungLocked(RungDCF, req)
	return comap.RemoteVerdict{Source: comap.RemoteUnavailable, Req: req}
}

// serveRungLocked counts a decision served from the given rung and records
// the transition when the rung changed. req is the control-plane request
// that decided (or failed to decide) this verdict — a transition's event
// carries it so the analyzer can attribute the ladder drop to the specific
// request that caused it (0 when no RPC was issued).
func (c *Client) serveRungLocked(r Rung, req uint64) {
	c.rungDecisions[r]++
	if r != c.rung {
		if c.tr.Enabled() {
			c.tr.Emit(trace.Event{
				Kind:   trace.KindCoLadder,
				Reason: c.rung.String() + "->" + r.String(),
				Req:    req,
			})
		}
		c.rung = r
		if c.cfg.Now != nil {
			c.rungSince = c.cfg.Now()
		}
		c.transitions++
	}
}

// newCallLocked opens a call attempt. req 0 assigns a fresh request ID
// (first attempt); retries pass the original request's ID through.
func (c *Client) newCallLocked(key Key, attempt int, req uint64) *call {
	if req == 0 {
		c.nextReq++
		req = c.nextReq
	}
	cl := &call{key: key, attempt: attempt, req: req, start: c.cfg.Now()}
	c.pending[key] = cl
	c.calls++
	if c.breaker == breakerHalfOpen {
		c.probing = true
	}
	if c.tr.Enabled() {
		c.tr.Emit(trace.Event{
			Kind: trace.KindRPCCall, Op: OpName(OpVerdict),
			Req: req, Attempt: attempt + 1,
		})
	}
	return cl
}

// send issues the call with the mutex released; done may run inline.
func (c *Client) send(cl *call) {
	req := &Request{
		Op:  OpVerdict,
		Key: cl.key,
		Ctx: CallContext{Run: c.run, Req: cl.req, Attempt: cl.attempt + 1},
	}
	completed := c.transport.Invoke(req, func(r *Response, err error) {
		c.onDone(cl, r, err)
	})
	if !completed {
		c.mu.Lock()
		if !cl.completed && c.pending[cl.key] == cl {
			cl.cancel = c.cfg.After(c.cfg.Deadline, func() { c.onDeadline(cl) })
		}
		c.mu.Unlock()
	}
}

func (c *Client) onDone(cl *call, r *Response, err error) {
	doResync := false
	c.mu.Lock()
	if cl.completed || c.pending[cl.key] != cl {
		c.mu.Unlock()
		return // the deadline already ended this call
	}
	cl.completed = true
	cl.resp, cl.err = r, err
	if cl.cancel != nil {
		cl.cancel()
		cl.cancel = nil
	}
	delete(c.pending, cl.key)
	now := c.cfg.Now()
	c.observeLocked(OpVerdict, now-cl.start, err == nil)
	if err != nil {
		c.failuresTotal++
		if c.tr.Enabled() {
			c.tr.Emit(trace.Event{
				Kind: trace.KindRPCDone, Op: OpName(OpVerdict), Reason: errReason(err),
				Req: cl.req, Attempt: cl.attempt + 1, DurUs: int64((now - cl.start) / time.Microsecond),
			})
		}
		c.onFailureLocked(now)
		c.maybeRetryLocked(cl, now)
	} else {
		if c.tr.Enabled() {
			c.tr.Emit(trace.Event{
				Kind: trace.KindRPCDone, Op: OpName(OpVerdict), Reason: "ok",
				Req: cl.req, Attempt: cl.attempt + 1, DurUs: int64((now - cl.start) / time.Microsecond),
			})
		}
		doResync = c.onSuccessLocked(r)
		if !r.Verdict.Unhealthy {
			c.entries[cl.key] = entry{allowed: r.Verdict.Allowed, wide: r.Verdict.Wide, at: now}
		}
	}
	c.mu.Unlock()
	if doResync {
		c.doResync()
	}
}

func (c *Client) onDeadline(cl *call) {
	c.mu.Lock()
	if cl.completed || c.pending[cl.key] != cl {
		c.mu.Unlock()
		return
	}
	cl.completed = true
	cl.err = ErrDeadline
	delete(c.pending, cl.key)
	now := c.cfg.Now()
	c.timeouts++
	c.failuresTotal++
	c.observeLocked(OpVerdict, now-cl.start, false)
	if c.tr.Enabled() {
		c.tr.Emit(trace.Event{
			Kind: trace.KindRPCTimeout, Op: OpName(OpVerdict),
			Req: cl.req, Attempt: cl.attempt + 1, DurUs: int64((now - cl.start) / time.Microsecond),
		})
	}
	c.onFailureLocked(now)
	c.maybeRetryLocked(cl, now)
	c.mu.Unlock()
}

// observeLocked feeds one attempt outcome to the SLO tracker.
func (c *Client) observeLocked(op Op, latency time.Duration, ok bool) {
	if c.slo != nil {
		c.slo.Observe(OpName(op), latency, ok)
	}
}

// errReason classifies a call error for trace events.
func errReason(err error) string {
	switch err {
	case ErrUnavailable:
		return "unavailable"
	case ErrDeadline:
		return "deadline"
	default:
		return "error"
	}
}

func (c *Client) maybeRetryLocked(cl *call, now time.Duration) {
	if cl.attempt >= c.cfg.MaxRetries {
		if c.tr.Enabled() {
			c.tr.Emit(trace.Event{
				Kind: trace.KindRPCDrop, Op: OpName(OpVerdict), Reason: "retries_exhausted",
				Req: cl.req, Attempt: cl.attempt + 1,
			})
		}
		return
	}
	if !c.allowCallLocked(now) {
		if c.tr.Enabled() {
			c.tr.Emit(trace.Event{
				Kind: trace.KindRPCDrop, Op: OpName(OpVerdict), Reason: "breaker_open",
				Req: cl.req, Attempt: cl.attempt + 1,
			})
		}
		return
	}
	if !c.takeTokenLocked(now) {
		c.budgetExhausted++
		if c.tr.Enabled() {
			c.tr.Emit(trace.Event{
				Kind: trace.KindRPCDrop, Op: OpName(OpVerdict), Reason: "budget_exhausted",
				Req: cl.req, Attempt: cl.attempt + 1,
			})
		}
		return
	}
	c.retries++
	attempt := cl.attempt + 1
	key := cl.key
	req := cl.req
	backoff := c.backoffLocked(attempt)
	if c.tr.Enabled() {
		c.tr.Emit(trace.Event{
			Kind: trace.KindRPCRetry, Op: OpName(OpVerdict), Req: req,
			Attempt: attempt + 1, DurUs: int64(backoff / time.Microsecond),
		})
	}
	c.cfg.After(backoff, func() { c.retryCall(key, attempt, req) })
}

func (c *Client) retryCall(key Key, attempt int, req uint64) {
	c.mu.Lock()
	busy := false
	if _, ok := c.pending[key]; ok {
		busy = true
	}
	if busy || !c.allowCallLocked(c.cfg.Now()) {
		if c.tr.Enabled() {
			reason := "breaker_open"
			if busy {
				reason = "busy"
			}
			c.tr.Emit(trace.Event{
				Kind: trace.KindRPCDrop, Op: OpName(OpVerdict), Reason: reason,
				Req: req, Attempt: attempt + 1,
			})
		}
		c.mu.Unlock()
		return
	}
	cl := c.newCallLocked(key, attempt, req)
	c.mu.Unlock()
	c.send(cl)
}

// backoffLocked is exponential in the attempt number, capped, and jittered
// into [d/2, d] when a jitter stream is installed (the simulator installs a
// named engine stream only for fault-enabled runs, so zero-fault runs draw
// no RNG).
func (c *Client) backoffLocked(attempt int) time.Duration {
	d := c.cfg.RetryBase << (attempt - 1)
	if c.cfg.RetryMax > 0 && d > c.cfg.RetryMax {
		d = c.cfg.RetryMax
	}
	if c.cfg.Jitter != nil && d > 1 {
		half := int64(d) / 2
		d = time.Duration(half + c.cfg.Jitter.Int63n(half+1))
	}
	return d
}

// breakerStateLocked returns the breaker state, lazily half-opening an
// expired open circuit.
func (c *Client) breakerStateLocked(now time.Duration) int {
	if c.breaker == breakerOpen && now >= c.openUntil {
		c.setBreakerLocked(breakerHalfOpen)
		c.probing = false
	}
	return c.breaker
}

// setBreakerLocked moves the breaker and records the transition.
func (c *Client) setBreakerLocked(state int) {
	if state == c.breaker {
		return
	}
	if c.tr.Enabled() {
		c.tr.Emit(trace.Event{
			Kind:   trace.KindRPCBreaker,
			Reason: breakerName(c.breaker) + "->" + breakerName(state),
		})
	}
	if state == breakerOpen {
		c.breakerOpens++
	}
	c.breaker = state
}

func (c *Client) allowCallLocked(now time.Duration) bool {
	switch c.breakerStateLocked(now) {
	case breakerClosed:
		return true
	case breakerHalfOpen:
		return !c.probing // one probe at a time
	default:
		return false
	}
}

func (c *Client) onFailureLocked(now time.Duration) {
	switch c.breaker {
	case breakerClosed:
		c.failures++
		if c.failures >= c.cfg.BreakerFailures {
			c.setBreakerLocked(breakerOpen)
			c.openUntil = now + c.cfg.BreakerCooldown
			c.failures = 0
		}
	case breakerHalfOpen:
		c.setBreakerLocked(breakerOpen)
		c.openUntil = now + c.cfg.BreakerCooldown
		c.probing = false
	}
}

// onSuccessLocked closes the breaker and reports whether a resync is due
// (epoch change detected, or failed ingest traffic flagged one).
func (c *Client) onSuccessLocked(r *Response) bool {
	c.failures = 0
	if c.breaker != breakerClosed {
		c.setBreakerLocked(breakerClosed)
		c.probing = false
	}
	doResync := false
	if c.lastEpoch == 0 {
		c.lastEpoch = r.Epoch
	} else if r.Epoch != c.lastEpoch {
		c.lastEpoch = r.Epoch
		doResync = true
	}
	if c.needResync {
		doResync = true
	}
	return doResync && !c.resyncing
}

// takeTokenLocked spends one retry token, refilling by elapsed time first.
func (c *Client) takeTokenLocked(now time.Duration) bool {
	if c.cfg.RetryBudgetPerSec <= 0 {
		return true
	}
	elapsed := now - c.lastRefill
	if elapsed > 0 {
		c.tokensMilli += int64(elapsed.Seconds() * c.cfg.RetryBudgetPerSec * 1000)
		if max := int64(c.cfg.Burst * 1000); c.tokensMilli > max {
			c.tokensMilli = max
		}
		c.lastRefill = now
	}
	if c.tokensMilli < 1000 {
		return false
	}
	c.tokensMilli -= 1000
	return true
}

// IngestFix streams one committed registry fix to the service.
func (c *Client) IngestFix(id frame.NodeID, fix loc.Fix) {
	c.sendIngest([]IngestRecord{{Op: RecReport, Node: id, Fix: fix}}, nil)
}

// IngestDeregister streams one deregistration to the service.
func (c *Client) IngestDeregister(id frame.NodeID) {
	c.sendIngest([]IngestRecord{{Op: RecDeregister, Node: id}}, nil)
}

// InvalidateNode mirrors Agent.OnStationChanged on the control plane: the
// client's own verdict entries involving id are dropped immediately, and
// the service is told to do the same. A failed delivery queues the node for
// replay at the next resync, so invalidations are never silently lost.
func (c *Client) InvalidateNode(id frame.NodeID) {
	now := c.cfg.Now()
	c.mu.Lock()
	for k := range c.entries {
		if k.Ongoing.Src == id || k.Ongoing.Dst == id || k.MyDst == id {
			delete(c.entries, k)
		}
	}
	allowed := c.allowCallLocked(now)
	if !allowed {
		c.pendingInval[id] = true
		c.needResync = true
		if c.tr.Enabled() {
			c.tr.Emit(trace.Event{Kind: trace.KindRPCDrop, Op: OpName(OpInvalidateNode), Reason: "breaker_open"})
		}
	}
	c.mu.Unlock()
	if allowed {
		c.fire(&Request{Op: OpInvalidateNode, Node: id}, func() {
			c.pendingInval[id] = true
		})
	}
}

// sendIngest fires an ingest batch; onFail (optional, runs locked) records
// what to replay if delivery fails.
func (c *Client) sendIngest(recs []IngestRecord, onFail func()) {
	now := c.cfg.Now()
	c.mu.Lock()
	allowed := c.allowCallLocked(now)
	if allowed {
		c.ingestCalls++
	} else {
		// Breaker open: don't hammer a down service with the fix stream;
		// the post-recovery resync replays the full registry instead.
		c.needResync = true
		if c.tr.Enabled() {
			c.tr.Emit(trace.Event{
				Kind: trace.KindRPCDrop, Op: OpName(OpIngest),
				Reason: "breaker_open", Count: len(recs),
			})
		}
		if onFail != nil {
			onFail()
		}
	}
	c.mu.Unlock()
	if allowed {
		c.fire(&Request{Op: OpIngest, Recs: recs}, onFail)
	}
}

// fire issues a fire-and-forget call with deadline tracking: failures and
// timeouts feed the breaker and flag a resync, successes feed epoch-change
// detection. Fire-and-forget requests are single-attempt — they are never
// retried, the resync plane replays them instead.
func (c *Client) fire(req *Request, onFail func()) {
	f := &fireCall{onFail: onFail, op: req.Op}
	c.mu.Lock()
	c.nextReq++
	f.req = c.nextReq
	f.start = c.cfg.Now()
	req.Ctx = CallContext{Run: c.run, Req: f.req, Attempt: 1}
	if c.tr.Enabled() {
		c.tr.Emit(trace.Event{
			Kind: trace.KindRPCCall, Op: OpName(req.Op),
			Req: f.req, Attempt: 1, Count: len(req.Recs),
		})
	}
	c.mu.Unlock()
	completed := c.transport.Invoke(req, func(r *Response, err error) { c.onFireDone(f, r, err) })
	if !completed {
		c.mu.Lock()
		if !f.completed {
			f.cancel = c.cfg.After(c.cfg.Deadline, func() { c.onFireTimeout(f) })
		}
		c.mu.Unlock()
	}
}

func (c *Client) onFireDone(f *fireCall, r *Response, err error) {
	doResync := false
	c.mu.Lock()
	if f.completed {
		c.mu.Unlock()
		return
	}
	f.completed = true
	if f.cancel != nil {
		f.cancel()
		f.cancel = nil
	}
	now := c.cfg.Now()
	c.observeLocked(f.op, now-f.start, err == nil)
	if err != nil {
		c.failuresTotal++
		if c.tr.Enabled() {
			c.tr.Emit(trace.Event{
				Kind: trace.KindRPCDone, Op: OpName(f.op), Reason: errReason(err),
				Req: f.req, Attempt: 1, DurUs: int64((now - f.start) / time.Microsecond),
			})
		}
		c.onFailureLocked(now)
		c.needResync = true
		if f.onFail != nil {
			f.onFail()
		}
	} else {
		if c.tr.Enabled() {
			c.tr.Emit(trace.Event{
				Kind: trace.KindRPCDone, Op: OpName(f.op), Reason: "ok",
				Req: f.req, Attempt: 1, DurUs: int64((now - f.start) / time.Microsecond),
			})
		}
		doResync = c.onSuccessLocked(r)
	}
	c.mu.Unlock()
	if doResync {
		c.doResync()
	}
}

func (c *Client) onFireTimeout(f *fireCall) {
	c.mu.Lock()
	if f.completed {
		c.mu.Unlock()
		return
	}
	f.completed = true
	c.timeouts++
	c.failuresTotal++
	now := c.cfg.Now()
	c.observeLocked(f.op, now-f.start, false)
	if c.tr.Enabled() {
		c.tr.Emit(trace.Event{
			Kind: trace.KindRPCTimeout, Op: OpName(f.op),
			Req: f.req, Attempt: 1, DurUs: int64((now - f.start) / time.Microsecond),
		})
	}
	c.onFailureLocked(now)
	c.needResync = true
	if f.onFail != nil {
		f.onFail()
	}
	c.mu.Unlock()
}

// doResync re-seeds a restarted (or missed-writes) service: pending
// invalidations replay first in node order, then the full registry dump
// re-ingests. Everything is deterministic — sorted replay over the
// registry's ID-ordered state.
func (c *Client) doResync() {
	c.mu.Lock()
	if c.resyncing {
		c.mu.Unlock()
		return
	}
	c.resyncing = true
	c.needResync = false
	c.resyncs++
	var invals []frame.NodeID
	for id := range c.pendingInval {
		invals = append(invals, id)
	}
	c.pendingInval = make(map[frame.NodeID]bool)
	all := c.pendingInvalAll
	c.pendingInvalAll = false
	fn := c.resyncFn
	c.mu.Unlock()

	sortNodeIDs(invals)
	if all {
		c.fire(&Request{Op: OpInvalidateAll}, func() { c.pendingInvalAll = true })
	}
	for _, id := range invals {
		node := id
		c.fire(&Request{Op: OpInvalidateNode, Node: node}, func() { c.pendingInval[node] = true })
	}
	if fn != nil {
		if recs := fn(); len(recs) > 0 {
			c.fire(&Request{Op: OpIngest, Recs: recs}, nil)
		}
	}
	c.mu.Lock()
	c.resyncing = false
	c.mu.Unlock()
}

func sortNodeIDs(ids []frame.NodeID) {
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
}

// ClientStatus is a race-safe snapshot for /healthz.
type ClientStatus struct {
	Breaker string `json:"breaker"`
	// BreakerOpens counts circuit-breaker trips (transitions into open).
	BreakerOpens int64  `json:"breaker_opens"`
	Rung         string `json:"rung"`
	// RungDwellSec is how long the client has been serving from the
	// current ladder rung — a degraded run is diagnosable from one scrape
	// (is this a blip or a stuck degradation?).
	RungDwellSec float64 `json:"rung_dwell_sec"`
	// RetryBudget is the remaining retry tokens.
	RetryBudget float64 `json:"retry_budget"`
	// RungDecisions counts decisions served per rung.
	RungDecisions     map[string]int64 `json:"rung_decisions"`
	LadderTransitions int64            `json:"ladder_transitions"`
	Calls             int64            `json:"calls"`
	IngestCalls       int64            `json:"ingest_calls"`
	Failures          int64            `json:"failures"`
	Timeouts          int64            `json:"timeouts"`
	Retries           int64            `json:"retries"`
	BudgetExhausted   int64            `json:"budget_exhausted"`
	Resyncs           int64            `json:"resyncs"`
	PendingCalls      int              `json:"pending_calls"`
	Epoch             uint64           `json:"epoch"`
}

// Status snapshots the client. Safe for concurrent use with the sim.
func (c *Client) Status() ClientStatus {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := ClientStatus{
		Breaker:           breakerName(c.breaker),
		BreakerOpens:      c.breakerOpens,
		Rung:              c.rung.String(),
		RetryBudget:       float64(c.tokensMilli) / 1000,
		LadderTransitions: c.transitions,
		Calls:             c.calls,
		IngestCalls:       c.ingestCalls,
		Failures:          c.failuresTotal,
		Timeouts:          c.timeouts,
		Retries:           c.retries,
		BudgetExhausted:   c.budgetExhausted,
		Resyncs:           c.resyncs,
		PendingCalls:      len(c.pending),
		Epoch:             c.lastEpoch,
	}
	if c.cfg.Now != nil {
		st.RungDwellSec = (c.cfg.Now() - c.rungSince).Seconds()
	}
	st.RungDecisions = map[string]int64{
		RungFresh.String():  c.rungDecisions[RungFresh],
		RungStale.String():  c.rungDecisions[RungStale],
		RungCoarse.String(): c.rungDecisions[RungCoarse],
		RungDCF.String():    c.rungDecisions[RungDCF],
	}
	return st
}
