package sim

import (
	"testing"
	"time"
)

// TestRNGAccountingPreservesStreams is the bit-compatibility gate for the
// audit plane: an accounted stream must produce exactly the values an
// unaccounted one does, across every draw style rand.Rand offers (Float64
// and Intn exercise the Source64 fast path; a wrapper that dropped the
// interface would shift the stream).
func TestRNGAccountingPreservesStreams(t *testing.T) {
	plain := New(42).RNG("stream")
	counted := New(42)
	counted.EnableRNGAccounting()
	rng := counted.RNG("stream")
	for i := 0; i < 1000; i++ {
		switch i % 4 {
		case 0:
			if a, b := plain.Float64(), rng.Float64(); a != b {
				t.Fatalf("draw %d: Float64 %v != %v", i, a, b)
			}
		case 1:
			if a, b := plain.Intn(97), rng.Intn(97); a != b {
				t.Fatalf("draw %d: Intn %v != %v", i, a, b)
			}
		case 2:
			if a, b := plain.NormFloat64(), rng.NormFloat64(); a != b {
				t.Fatalf("draw %d: NormFloat64 %v != %v", i, a, b)
			}
		case 3:
			if a, b := plain.Uint64(), rng.Uint64(); a != b {
				t.Fatalf("draw %d: Uint64 %v != %v", i, a, b)
			}
		}
	}
	cursors := counted.RNGCursors()
	if cursors["stream"] == 0 {
		t.Fatal("accounted stream recorded no draws")
	}
}

func TestRNGCursorsPerStream(t *testing.T) {
	e := New(7)
	e.EnableRNGAccounting()
	a := e.RNG("a")
	b := e.RNG("b")
	a.Float64()
	a.Float64()
	b.Float64()
	c := e.RNGCursors()
	if c["a"] == 0 || c["b"] == 0 || c["a"] == c["b"] {
		t.Fatalf("cursors do not separate streams: %v", c)
	}
	if len(e.RNGCursors()) != 2 {
		t.Fatalf("want 2 streams, got %v", e.RNGCursors())
	}
}

func TestRNGCursorsEmptyWithoutAccounting(t *testing.T) {
	e := New(7)
	e.RNG("a").Float64()
	if len(e.RNGCursors()) != 0 {
		t.Fatal("cursors present without accounting enabled")
	}
}

type recordObserver struct {
	events []Tag
}

func (r *recordObserver) OnEvent(_ time.Duration, tag Tag, _ int32) {
	r.events = append(r.events, tag)
}

func TestTeeObservers(t *testing.T) {
	if TeeObservers() != nil {
		t.Fatal("empty tee must be nil")
	}
	a := &recordObserver{}
	if TeeObservers(nil, a, nil) != Observer(a) {
		t.Fatal("single-survivor tee must unwrap")
	}
	b := &recordObserver{}
	tee := TeeObservers(a, b)
	e := New(1)
	e.SetObserver(tee)
	e.ScheduleTagged(0, TagMAC, 3, func() {})
	e.Run()
	if len(a.events) != 1 || len(b.events) != 1 || a.events[0] != TagMAC || b.events[0] != TagMAC {
		t.Fatalf("tee did not fan out: a=%v b=%v", a.events, b.events)
	}
}
