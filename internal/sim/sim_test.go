package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestScheduleOrdering(t *testing.T) {
	e := New(1)
	var order []int
	e.Schedule(30*time.Microsecond, func() { order = append(order, 3) })
	e.Schedule(10*time.Microsecond, func() { order = append(order, 1) })
	e.Schedule(20*time.Microsecond, func() { order = append(order, 2) })
	e.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Errorf("order = %v", order)
	}
	if e.Now() != 30*time.Microsecond {
		t.Errorf("Now = %v", e.Now())
	}
}

func TestTieBreakBySchedulingOrder(t *testing.T) {
	e := New(1)
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(time.Millisecond, func() { order = append(order, i) })
	}
	e.Run()
	if !sort.IntsAreSorted(order) {
		t.Errorf("same-time events out of scheduling order: %v", order)
	}
}

func TestAfterRelative(t *testing.T) {
	e := New(1)
	var at time.Duration
	e.Schedule(5*time.Second, func() {
		e.After(2*time.Second, func() { at = e.Now() })
	})
	e.Run()
	if at != 7*time.Second {
		t.Errorf("nested After fired at %v, want 7s", at)
	}
}

func TestPastScheduleClampsToNow(t *testing.T) {
	e := New(1)
	var at time.Duration
	e.Schedule(10*time.Second, func() {
		e.Schedule(time.Second, func() { at = e.Now() }) // in the past
	})
	e.Run()
	if at != 10*time.Second {
		t.Errorf("past event fired at %v, want clamp to 10s", at)
	}
	if e.EventsFired() != 2 {
		t.Errorf("fired = %d", e.EventsFired())
	}
}

func TestNegativeAfterClamps(t *testing.T) {
	e := New(1)
	fired := false
	e.After(-time.Second, func() { fired = true })
	e.Run()
	if !fired || e.Now() != 0 {
		t.Errorf("fired=%v now=%v", fired, e.Now())
	}
}

func TestCancel(t *testing.T) {
	e := New(1)
	fired := false
	ev := e.After(time.Second, func() { fired = true })
	e.Cancel(ev)
	e.Run()
	if fired {
		t.Error("cancelled event fired")
	}
	if ev.Active() {
		t.Error("Active() should be false after cancel")
	}
	// Double cancel and zero-handle cancel are no-ops.
	e.Cancel(ev)
	e.Cancel(Handle{})
}

func TestCancelFromWithinEvent(t *testing.T) {
	e := New(1)
	fired := false
	var victim Handle
	e.Schedule(time.Second, func() { e.Cancel(victim) })
	victim = e.Schedule(2*time.Second, func() { fired = true })
	e.Run()
	if fired {
		t.Error("event cancelled mid-run still fired")
	}
}

func TestRunUntil(t *testing.T) {
	e := New(1)
	var fired []time.Duration
	for _, d := range []time.Duration{1, 2, 3, 4} {
		d := d * time.Second
		e.Schedule(d, func() { fired = append(fired, d) })
	}
	e.RunUntil(2500 * time.Millisecond)
	if len(fired) != 2 {
		t.Errorf("fired %v events, want 2", fired)
	}
	if e.Now() != 2500*time.Millisecond {
		t.Errorf("Now = %v, want deadline", e.Now())
	}
	if e.Pending() != 2 {
		t.Errorf("Pending = %d", e.Pending())
	}
	e.RunUntil(10 * time.Second)
	if len(fired) != 4 {
		t.Errorf("after second RunUntil fired = %v", fired)
	}
}

func TestRunUntilExactDeadlineInclusive(t *testing.T) {
	e := New(1)
	fired := false
	e.Schedule(time.Second, func() { fired = true })
	e.RunUntil(time.Second)
	if !fired {
		t.Error("event exactly at deadline should fire")
	}
}

func TestHalt(t *testing.T) {
	e := New(1)
	count := 0
	for i := 1; i <= 5; i++ {
		e.Schedule(time.Duration(i)*time.Second, func() {
			count++
			if count == 2 {
				e.Halt()
			}
		})
	}
	e.Run()
	if count != 2 {
		t.Errorf("count = %d, want 2 (halted)", count)
	}
	// Run can resume afterwards.
	e.Run()
	if count != 5 {
		t.Errorf("after resume count = %d", count)
	}
}

func TestClockNeverGoesBackwards(t *testing.T) {
	f := func(delaysRaw []uint16, seed int64) bool {
		e := New(seed)
		last := time.Duration(-1)
		ok := true
		for _, d := range delaysRaw {
			e.Schedule(time.Duration(d)*time.Microsecond, func() {
				if e.Now() < last {
					ok = false
				}
				last = e.Now()
			})
		}
		e.Run()
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestDeterministicReplay(t *testing.T) {
	run := func(seed int64) []time.Duration {
		e := New(seed)
		rng := e.RNG("traffic")
		var fired []time.Duration
		var schedule func()
		n := 0
		schedule = func() {
			if n >= 50 {
				return
			}
			n++
			fired = append(fired, e.Now())
			e.After(time.Duration(rng.Intn(1000))*time.Microsecond, schedule)
		}
		e.After(0, schedule)
		e.Run()
		return fired
	}
	a, b := run(7), run(7)
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("replay diverged at %d: %v vs %v", i, a[i], b[i])
		}
	}
	c := run(8)
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("different seeds produced identical runs (suspicious)")
	}
}

func TestRNGStreamsIndependent(t *testing.T) {
	e := New(99)
	a := e.RNG("channel")
	b := e.RNG("traffic")
	c := e.RNG("channel")
	av := []int{a.Intn(1000), a.Intn(1000), a.Intn(1000)}
	cv := []int{c.Intn(1000), c.Intn(1000), c.Intn(1000)}
	for i := range av {
		if av[i] != cv[i] {
			t.Fatal("same-name streams must be identical")
		}
	}
	bv := []int{b.Intn(1000), b.Intn(1000), b.Intn(1000)}
	if av[0] == bv[0] && av[1] == bv[1] && av[2] == bv[2] {
		t.Error("different-name streams look identical")
	}
}

func TestEventAt(t *testing.T) {
	e := New(1)
	ev := e.Schedule(3*time.Second, func() {})
	if ev.At() != 3*time.Second {
		t.Errorf("At = %v", ev.At())
	}
}

func TestStepReturnsFalseWhenEmpty(t *testing.T) {
	e := New(1)
	if e.Step() {
		t.Error("Step on empty queue should be false")
	}
	ev := e.After(time.Second, func() {})
	e.Cancel(ev)
	if e.Step() {
		t.Error("Step with only cancelled events should be false")
	}
}

func TestManyEventsStress(t *testing.T) {
	e := New(5)
	rng := rand.New(rand.NewSource(5))
	const n = 20000
	fired := 0
	for i := 0; i < n; i++ {
		e.Schedule(time.Duration(rng.Intn(1_000_000))*time.Microsecond, func() { fired++ })
	}
	e.Run()
	if fired != n {
		t.Errorf("fired = %d, want %d", fired, n)
	}
	if e.Pending() != 0 {
		t.Errorf("pending = %d", e.Pending())
	}
}

func TestSeedAccessor(t *testing.T) {
	if New(42).Seed() != 42 {
		t.Error("Seed accessor")
	}
}

func TestPendingAfterCancel(t *testing.T) {
	e := New(1)
	a := e.After(time.Second, func() {})
	e.After(2*time.Second, func() {})
	if e.Pending() != 2 {
		t.Fatalf("Pending = %d", e.Pending())
	}
	e.Cancel(a)
	if e.Pending() != 1 {
		t.Errorf("Pending after cancel = %d", e.Pending())
	}
}

func TestCancelPropertyNeverFires(t *testing.T) {
	f := func(delays []uint16, cancelMask []bool) bool {
		e := New(3)
		fired := make(map[int]bool)
		events := make([]Handle, len(delays))
		for i, d := range delays {
			i := i
			events[i] = e.Schedule(time.Duration(d)*time.Microsecond, func() { fired[i] = true })
		}
		for i := range events {
			if i < len(cancelMask) && cancelMask[i] {
				e.Cancel(events[i])
			}
		}
		e.Run()
		for i := range events {
			cancelled := i < len(cancelMask) && cancelMask[i]
			if cancelled == fired[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestRunUntilThenRunDrains(t *testing.T) {
	e := New(1)
	count := 0
	for i := 1; i <= 5; i++ {
		e.Schedule(time.Duration(i)*time.Second, func() { count++ })
	}
	e.RunUntil(2 * time.Second)
	if count != 2 {
		t.Fatalf("count = %d", count)
	}
	e.Run()
	if count != 5 {
		t.Errorf("after Run count = %d", count)
	}
}

func TestStaleHandleAfterFire(t *testing.T) {
	e := New(1)
	h := e.After(time.Second, func() {})
	if !h.Active() {
		t.Fatal("handle should be active before firing")
	}
	e.Run()
	if h.Active() {
		t.Error("handle should be inactive after firing")
	}
	if h.At() != 0 {
		t.Errorf("stale At = %v, want 0", h.At())
	}
	// Cancelling a fired handle is a no-op even though its slot is free.
	e.Cancel(h)
	if e.Pending() != 0 {
		t.Errorf("Pending = %d", e.Pending())
	}
}

func TestStaleHandleDoesNotCancelRecycledSlot(t *testing.T) {
	e := New(1)
	// Fire one event so its slot lands on the free list, then schedule a
	// new one that reuses the slot. The stale handle must not cancel it.
	old := e.After(time.Second, func() {})
	e.Run()
	fired := false
	fresh := e.After(time.Second, func() { fired = true })
	if old.Active() {
		t.Fatal("old handle claims to be active")
	}
	e.Cancel(old)
	if !fresh.Active() {
		t.Fatal("stale cancel killed the recycled slot's new event")
	}
	e.Run()
	if !fired {
		t.Error("recycled event did not fire")
	}
}

func TestHandleInactiveInsideOwnCallback(t *testing.T) {
	e := New(1)
	var h Handle
	activeInside := true
	h = e.After(time.Second, func() { activeInside = h.Active() })
	e.Run()
	if activeInside {
		t.Error("handle should report inactive inside its own callback")
	}
}

func TestEventSlotsAreRecycled(t *testing.T) {
	e := New(1)
	// Steady-state schedule/fire churn must plateau the free list at the
	// max concurrent depth, i.e. slots really are reused.
	for i := 0; i < 1000; i++ {
		e.After(time.Duration(i)*time.Microsecond, func() {})
	}
	e.Run()
	if got := len(e.free); got != 1000 {
		t.Fatalf("free list = %d slots, want 1000", got)
	}
	for i := 0; i < 1000; i++ {
		e.After(time.Duration(i)*time.Microsecond, func() {})
	}
	if got := len(e.free); got != 0 {
		t.Errorf("free list = %d slots after rescheduling, want 0 (slots reused)", got)
	}
	e.Run()
}

func TestPendingIncrementalMatchesQueue(t *testing.T) {
	e := New(9)
	rng := rand.New(rand.NewSource(9))
	var handles []Handle
	for i := 0; i < 500; i++ {
		handles = append(handles, e.Schedule(time.Duration(rng.Intn(1000))*time.Microsecond, func() {}))
	}
	cancelled := 0
	for i, h := range handles {
		if i%3 == 0 {
			e.Cancel(h)
			cancelled++
		}
	}
	if e.Pending() != len(handles)-cancelled {
		t.Fatalf("Pending = %d, want %d", e.Pending(), len(handles)-cancelled)
	}
	if e.Pending() != e.queue.Len() {
		t.Fatalf("Pending = %d but queue holds %d", e.Pending(), e.queue.Len())
	}
	e.Run()
	if e.Pending() != 0 {
		t.Errorf("Pending after drain = %d", e.Pending())
	}
}
