package sim

import (
	"testing"
	"time"
)

// recordObs records every dispatched event for assertions.
type recordObs struct {
	events []obsEvent
}

type obsEvent struct {
	at    time.Duration
	tag   Tag
	owner int32
}

func (r *recordObs) OnEvent(at time.Duration, tag Tag, owner int32) {
	r.events = append(r.events, obsEvent{at, tag, owner})
}

// TestObserverSeesEveryEvent checks the observer hook fires once per
// dispatched event with the stamped attribution.
func TestObserverSeesEveryEvent(t *testing.T) {
	e := New(1)
	obs := &recordObs{}
	e.SetObserver(obs)
	e.AfterTagged(time.Millisecond, TagMAC, 3, func() {})
	e.AfterTagged(2*time.Millisecond, TagChannel, NoOwner, func() {})
	e.After(3*time.Millisecond, func() {}) // untagged -> other/NoOwner
	e.Run()
	want := []obsEvent{
		{time.Millisecond, TagMAC, 3},
		{2 * time.Millisecond, TagChannel, NoOwner},
		{3 * time.Millisecond, TagOther, NoOwner},
	}
	if len(obs.events) != len(want) {
		t.Fatalf("observed %d events, want %d: %+v", len(obs.events), len(want), obs.events)
	}
	for i, w := range want {
		if obs.events[i] != w {
			t.Errorf("event %d = %+v, want %+v", i, obs.events[i], w)
		}
	}
}

// TestTagInheritance is the core attribution contract: events scheduled from
// inside a tagged event's callback inherit its tag and owner, transitively,
// until an explicit *Tagged call overrides them.
func TestTagInheritance(t *testing.T) {
	e := New(1)
	obs := &recordObs{}
	e.SetObserver(obs)
	e.AfterTagged(time.Millisecond, TagMAC, 7, func() {
		e.After(time.Millisecond, func() { // inherits mac/7
			e.After(time.Millisecond, func() {}) // still mac/7
			e.AfterTagged(2*time.Millisecond, TagComap, 9, func() {
				e.After(time.Millisecond, func() {}) // comap/9
			})
		})
	})
	e.Run()
	want := []obsEvent{
		{1 * time.Millisecond, TagMAC, 7},
		{2 * time.Millisecond, TagMAC, 7},
		{3 * time.Millisecond, TagMAC, 7},
		{4 * time.Millisecond, TagComap, 9},
		{5 * time.Millisecond, TagComap, 9},
	}
	if len(obs.events) != len(want) {
		t.Fatalf("observed %+v, want %+v", obs.events, want)
	}
	for i, w := range want {
		if obs.events[i] != w {
			t.Errorf("event %d = %+v, want %+v", i, obs.events[i], w)
		}
	}
}

// TestScheduleTaggedRestoresContext checks the explicit-tag window closes:
// scheduling after an AfterTagged call (but within the same callback) uses
// the enclosing dispatch context again.
func TestScheduleTaggedRestoresContext(t *testing.T) {
	e := New(1)
	obs := &recordObs{}
	e.SetObserver(obs)
	e.AfterTagged(time.Millisecond, TagTraffic, 2, func() {
		e.AfterTagged(time.Millisecond, TagLocx, 5, func() {})
		if tag, owner := e.Context(); tag != TagTraffic || owner != 2 {
			t.Errorf("Context after AfterTagged = (%v, %d), want (traffic, 2)", tag, owner)
		}
		e.After(2*time.Millisecond, func() {}) // back to traffic/2
	})
	e.Run()
	want := []obsEvent{
		{1 * time.Millisecond, TagTraffic, 2},
		{2 * time.Millisecond, TagLocx, 5},
		{3 * time.Millisecond, TagTraffic, 2},
	}
	for i, w := range want {
		if obs.events[i] != w {
			t.Errorf("event %d = %+v, want %+v", i, obs.events[i], w)
		}
	}
}

// TestTagNamesStable pins the attribution names: they are part of the
// /profile and BENCH_*.json schemas.
func TestTagNamesStable(t *testing.T) {
	want := map[Tag]string{
		TagOther:   "other",
		TagMAC:     "mac",
		TagChannel: "channel",
		TagComap:   "comap",
		TagARQ:     "arq",
		TagTraffic: "traffic",
		TagLocx:    "locx",
		TagSampler: "metrics-sampler",
		TagFaults:  "faults",
	}
	for tag, name := range want {
		if got := tag.String(); got != name {
			t.Errorf("Tag(%d).String() = %q, want %q", tag, got, name)
		}
	}
	if got := Tag(200).String(); got != "other" {
		t.Errorf("out-of-range tag String() = %q, want other", got)
	}
	for tag := Tag(0); tag < NumTags; tag++ {
		if tagNames[tag] == "" {
			t.Errorf("tag %d has no name", tag)
		}
	}
}

// TestLiveGaugesPublished checks the amortized queue/pool mirror: the gauges
// are refreshed at least every livePublishMask+1 dispatches and at Run exit,
// and are safe for a concurrent reader.
func TestLiveGaugesPublished(t *testing.T) {
	e := New(1)
	const events = 4 * (livePublishMask + 1)
	for i := 0; i < events; i++ {
		e.Schedule(time.Duration(i)*time.Microsecond, func() {})
	}
	done := make(chan struct{})
	go func() { // concurrent scraper; -race validates the access pattern
		defer close(done)
		for i := 0; i < 100; i++ {
			if e.LivePending() < 0 || e.LivePoolSize() < 0 {
				panic("negative live gauge")
			}
		}
	}()
	midSeen := false
	e.Schedule(time.Duration(events/2)*time.Microsecond, func() {
		midSeen = e.LivePending() > 0
	})
	e.Run()
	<-done
	if !midSeen {
		t.Error("LivePending stayed 0 mid-run")
	}
	if got := e.LivePending(); got != 0 {
		t.Errorf("LivePending after Run = %d, want 0", got)
	}
	if got, want := e.LivePoolSize(), e.PoolSize(); got != want {
		t.Errorf("LivePoolSize after Run = %d, want PoolSize %d", got, want)
	}
	if e.LivePoolSize() == 0 {
		t.Error("event pool empty after recycling thousands of events")
	}
}
