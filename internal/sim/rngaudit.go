package sim

import (
	"math/rand"
	"time"
)

// RNG stream accounting for the determinism audit plane (internal/audit):
// when enabled, every named stream handed out by Engine.RNG is wrapped in a
// draw-counting source, and the per-stream cursors (source-level draws
// consumed so far) become part of the ledger's deep digests. Two runs that
// have consumed a different number of draws from any stream have already
// diverged, even if their event chains happen to still agree — the cursor
// digest catches RNG-consuming divergences at the slice they occur.

// EnableRNGAccounting turns on draw counting for all subsequently created
// RNG streams. It must be called before the first RNG() call (stream
// construction order is part of the deterministic contract, so retrofitting
// existing streams is deliberately unsupported). Counters are maintained
// and read on the simulation goroutine only.
func (e *Engine) EnableRNGAccounting() {
	if e.rngCounts == nil {
		e.rngCounts = make(map[string]*uint64)
	}
}

// RNGCursors returns a snapshot of per-stream draw counts (source-level
// draws, which rand.Rand consumes deterministically per call). Empty unless
// EnableRNGAccounting was called. Simulation goroutine only.
func (e *Engine) RNGCursors() map[string]uint64 {
	out := make(map[string]uint64, len(e.rngCounts))
	for name, n := range e.rngCounts {
		out[name] = *n
	}
	return out
}

// wrapCounting wraps src so every source-level draw bumps *n. The wrapper
// preserves the Source64 fast path when the underlying source has one:
// rand.Rand draws differently from a plain Source (two Int63 calls per
// Uint64) than from a Source64, so dropping the interface would change the
// stream and break bit-compatibility with unaudited runs.
func wrapCounting(src rand.Source, n *uint64) rand.Source {
	if s64, ok := src.(rand.Source64); ok {
		return &countingSource64{src: s64, n: n}
	}
	return &countingSource{src: src, n: n}
}

type countingSource struct {
	src rand.Source
	n   *uint64
}

func (c *countingSource) Int63() int64 {
	*c.n++
	return c.src.Int63()
}

func (c *countingSource) Seed(seed int64) { c.src.Seed(seed) }

type countingSource64 struct {
	src rand.Source64
	n   *uint64
}

func (c *countingSource64) Int63() int64 {
	*c.n++
	return c.src.Int63()
}

func (c *countingSource64) Uint64() uint64 {
	*c.n++
	return c.src.Uint64()
}

func (c *countingSource64) Seed(seed int64) { c.src.Seed(seed) }

// TeeObservers composes dispatch observers: each OnEvent fans out in
// argument order. Nil interface entries are dropped (note: a typed nil
// pointer stored in an Observer is NOT nil here — callers must only pass
// concrete observers they have nil-checked). Returns nil when nothing
// remains — safe to hand to SetObserver either way.
func TeeObservers(obs ...Observer) Observer {
	live := obs[:0:0]
	for _, o := range obs {
		if o != nil {
			live = append(live, o)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	}
	return teeObserver(live)
}

type teeObserver []Observer

func (t teeObserver) OnEvent(at time.Duration, tag Tag, owner int32) {
	for _, o := range t {
		o.OnEvent(at, tag, owner)
	}
}
