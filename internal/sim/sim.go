// Package sim is a deterministic discrete-event simulation engine: a virtual
// clock, a cancellable event queue and seeded random-number streams. It is
// the substrate that replaces the paper's NS-2 runs and testbed time base.
//
// Determinism guarantees: events scheduled for the same instant fire in
// scheduling order (ties broken by a monotone sequence number), and every
// random stream is derived from the engine seed by name, so a run is fully
// reproducible from (seed, program).
package sim

import (
	"container/heap"
	"hash/fnv"
	"math/rand"
	"sync/atomic"
	"time"
)

// Event is a scheduled callback's queue slot. Events are pooled: once an
// event fires or is cancelled, its slot is recycled for a future Schedule, so
// the hot path allocates nothing in steady state. Callers never hold *Event
// directly — Schedule/After return a Handle that stays safe across recycling.
type Event struct {
	at    time.Duration
	seq   uint64
	fn    func()
	index int    // position in the heap, -1 once removed
	gen   uint64 // bumped on every recycle; stale Handles detect the mismatch
	tag   Tag    // attribution subsystem (tags.go), stamped at schedule time
	owner int32  // owning node, or NoOwner
}

// Handle identifies a scheduled event. The zero Handle is valid and inert:
// it is never Active and cancelling it is a no-op. A Handle outlives its
// event safely — once the event fires, is cancelled, or its slot is reused
// for a later Schedule, the generation counters no longer match and the
// Handle reports inactive.
type Handle struct {
	ev  *Event
	gen uint64
}

// Active reports whether the event is still pending in the queue.
func (h Handle) Active() bool { return h.ev != nil && h.ev.gen == h.gen }

// At returns the virtual time the event is scheduled for, or 0 if the
// handle is no longer active.
func (h Handle) At() time.Duration {
	if !h.Active() {
		return 0
	}
	return h.ev.at
}

// Engine is a single-threaded discrete-event scheduler. It is not safe for
// concurrent use; simulations are deterministic single-goroutine programs.
//
// Exception: the virtual clock, the fired-event count and the amortized
// queue/pool mirrors are stored atomically, so Now, EventsFired,
// LivePending and LivePoolSize may be read from other goroutines (the live
// observability plane scrapes all of them mid-run). All scheduling and
// mutation must still happen on the simulation goroutine.
type Engine struct {
	now     atomic.Int64 // virtual time in nanoseconds
	queue   eventQueue
	seq     uint64
	seed    int64
	fired   atomic.Uint64
	halted  bool
	free    []*Event // recycled event slots
	pending int      // queue length, maintained incrementally

	// Attribution context (tags.go): the tag/owner stamped on newly
	// scheduled events. Dispatch sets it from the firing event so derived
	// events inherit their scheduler's subsystem.
	curTag   Tag
	curOwner int32
	obs      Observer

	// Amortized mirrors of pending / len(free) for concurrent scrapers
	// (tags.go).
	livePending atomic.Int64
	livePool    atomic.Int64

	// Per-stream RNG draw counters for the audit plane (rngaudit.go);
	// nil unless EnableRNGAccounting was called before stream creation.
	rngCounts map[string]*uint64
}

// New returns an engine with its clock at zero, seeded with seed.
func New(seed int64) *Engine {
	return &Engine{seed: seed, curOwner: NoOwner}
}

// Now returns the current virtual time. Safe for concurrent readers.
func (e *Engine) Now() time.Duration { return time.Duration(e.now.Load()) }

// Seed returns the engine seed.
func (e *Engine) Seed() int64 { return e.seed }

// EventsFired returns the number of events executed so far. Safe for
// concurrent readers.
func (e *Engine) EventsFired() uint64 { return e.fired.Load() }

// Schedule registers fn to run at absolute virtual time at. Times in the past
// are clamped to Now (the event runs as the next zero-delay event).
func (e *Engine) Schedule(at time.Duration, fn func()) Handle {
	if now := e.Now(); at < now {
		at = now
	}
	var ev *Event
	if n := len(e.free); n > 0 {
		ev = e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
		ev.at, ev.seq, ev.fn = at, e.seq, fn
	} else {
		ev = &Event{at: at, seq: e.seq, fn: fn}
	}
	ev.tag, ev.owner = e.curTag, e.curOwner
	e.seq++
	heap.Push(&e.queue, ev)
	e.pending++
	return Handle{ev: ev, gen: ev.gen}
}

// After registers fn to run d after the current virtual time. Negative delays
// are clamped to zero.
func (e *Engine) After(d time.Duration, fn func()) Handle {
	return e.Schedule(e.Now()+d, fn)
}

// Cancel removes a pending event. Cancelling a zero Handle or one whose
// event already fired, was already cancelled, or whose slot has since been
// recycled is a no-op.
func (e *Engine) Cancel(h Handle) {
	if !h.Active() {
		return
	}
	heap.Remove(&e.queue, h.ev.index)
	e.pending--
	e.recycle(h.ev)
}

// recycle invalidates outstanding handles to ev and returns its slot to the
// free list.
func (e *Engine) recycle(ev *Event) {
	ev.gen++
	ev.fn = nil
	e.free = append(e.free, ev)
}

// Step executes the next pending event, advancing the clock to its time.
// It reports whether an event was executed.
//
// The event's slot is recycled before its callback runs, so handles to the
// firing event already report inactive inside the callback, and the slot may
// be reused by anything the callback schedules.
func (e *Engine) Step() bool {
	if e.queue.Len() == 0 {
		return false
	}
	ev := heap.Pop(&e.queue).(*Event)
	e.pending--
	fn := ev.fn
	at, tag, owner := ev.at, ev.tag, ev.owner
	e.curTag, e.curOwner = tag, owner
	e.now.Store(int64(at))
	e.recycle(ev)
	if e.fired.Add(1)&livePublishMask == 0 {
		e.publishLive()
	}
	if e.obs != nil {
		e.obs.OnEvent(at, tag, owner)
	}
	fn()
	return true
}

// RunUntil executes events in order until the queue holds no event at or
// before the deadline, then advances the clock to exactly the deadline.
// Events scheduled beyond the deadline remain pending.
func (e *Engine) RunUntil(deadline time.Duration) {
	e.halted = false
	for !e.halted && e.queue.Len() > 0 && e.queue[0].at <= deadline {
		e.Step()
	}
	if !e.halted && e.Now() < deadline {
		e.now.Store(int64(deadline))
	}
	e.publishLive()
}

// Run executes every pending event (including ones scheduled by other
// events) until the queue drains or Halt is called.
func (e *Engine) Run() {
	e.halted = false
	for !e.halted && e.Step() {
	}
	e.publishLive()
}

// Halt stops Run/RunUntil after the currently executing event returns.
func (e *Engine) Halt() { e.halted = true }

// Pending returns the number of events in the queue. O(1): cancellation
// removes events eagerly, so the queue never holds dead entries.
func (e *Engine) Pending() int { return e.pending }

// RNG returns a deterministic random stream derived from the engine seed and
// the stream name. Equal (seed, name) pairs always produce identical streams,
// so adding a new consumer does not perturb existing ones.
func (e *Engine) RNG(name string) *rand.Rand {
	h := fnv.New64a()
	h.Write([]byte(name))
	src := rand.NewSource(e.seed ^ int64(h.Sum64()))
	if e.rngCounts != nil {
		n := e.rngCounts[name]
		if n == nil {
			n = new(uint64)
			e.rngCounts[name] = n
		}
		src = wrapCounting(src, n)
	}
	return rand.New(src)
}

// eventQueue is a min-heap ordered by (at, seq).
type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

func (q *eventQueue) Push(x any) {
	ev := x.(*Event)
	ev.index = len(*q)
	*q = append(*q, ev)
}

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*q = old[:n-1]
	return ev
}
