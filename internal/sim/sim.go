// Package sim is a deterministic discrete-event simulation engine: a virtual
// clock, a cancellable event queue and seeded random-number streams. It is
// the substrate that replaces the paper's NS-2 runs and testbed time base.
//
// Determinism guarantees: events scheduled for the same instant fire in
// scheduling order (ties broken by a monotone sequence number), and every
// random stream is derived from the engine seed by name, so a run is fully
// reproducible from (seed, program).
package sim

import (
	"container/heap"
	"hash/fnv"
	"math/rand"
	"sync/atomic"
	"time"
)

// Event is a scheduled callback. It is returned by Schedule/After so callers
// can cancel it.
type Event struct {
	at        time.Duration
	seq       uint64
	fn        func()
	index     int // position in the heap, -1 once removed
	cancelled bool
}

// At returns the virtual time the event is (or was) scheduled for.
func (e *Event) At() time.Duration { return e.at }

// Cancelled reports whether Cancel was called on the event.
func (e *Event) Cancelled() bool { return e.cancelled }

// Engine is a single-threaded discrete-event scheduler. It is not safe for
// concurrent use; simulations are deterministic single-goroutine programs.
//
// Exception: the virtual clock and the fired-event count are stored
// atomically, so Now and EventsFired may be read from other goroutines (the
// live observability plane scrapes both mid-run). All scheduling and
// mutation must still happen on the simulation goroutine.
type Engine struct {
	now    atomic.Int64 // virtual time in nanoseconds
	queue  eventQueue
	seq    uint64
	seed   int64
	fired  atomic.Uint64
	halted bool
}

// New returns an engine with its clock at zero, seeded with seed.
func New(seed int64) *Engine {
	return &Engine{seed: seed}
}

// Now returns the current virtual time. Safe for concurrent readers.
func (e *Engine) Now() time.Duration { return time.Duration(e.now.Load()) }

// Seed returns the engine seed.
func (e *Engine) Seed() int64 { return e.seed }

// EventsFired returns the number of events executed so far. Safe for
// concurrent readers.
func (e *Engine) EventsFired() uint64 { return e.fired.Load() }

// Schedule registers fn to run at absolute virtual time at. Times in the past
// are clamped to Now (the event runs as the next zero-delay event).
func (e *Engine) Schedule(at time.Duration, fn func()) *Event {
	if now := e.Now(); at < now {
		at = now
	}
	ev := &Event{at: at, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.queue, ev)
	return ev
}

// After registers fn to run d after the current virtual time. Negative delays
// are clamped to zero.
func (e *Engine) After(d time.Duration, fn func()) *Event {
	return e.Schedule(e.Now()+d, fn)
}

// Cancel removes a pending event. Cancelling a nil, already-fired or
// already-cancelled event is a no-op.
func (e *Engine) Cancel(ev *Event) {
	if ev == nil || ev.cancelled || ev.index < 0 {
		if ev != nil {
			ev.cancelled = true
		}
		return
	}
	ev.cancelled = true
	heap.Remove(&e.queue, ev.index)
}

// Step executes the next pending event, advancing the clock to its time.
// It reports whether an event was executed.
func (e *Engine) Step() bool {
	for e.queue.Len() > 0 {
		ev := heap.Pop(&e.queue).(*Event)
		if ev.cancelled {
			continue
		}
		e.now.Store(int64(ev.at))
		e.fired.Add(1)
		ev.fn()
		return true
	}
	return false
}

// RunUntil executes events in order until the queue holds no event at or
// before the deadline, then advances the clock to exactly the deadline.
// Events scheduled beyond the deadline remain pending.
func (e *Engine) RunUntil(deadline time.Duration) {
	e.halted = false
	for !e.halted && e.queue.Len() > 0 {
		next := e.queue[0]
		if next.cancelled {
			heap.Pop(&e.queue)
			continue
		}
		if next.at > deadline {
			break
		}
		e.Step()
	}
	if !e.halted && e.Now() < deadline {
		e.now.Store(int64(deadline))
	}
}

// Run executes every pending event (including ones scheduled by other
// events) until the queue drains or Halt is called.
func (e *Engine) Run() {
	e.halted = false
	for !e.halted && e.Step() {
	}
}

// Halt stops Run/RunUntil after the currently executing event returns.
func (e *Engine) Halt() { e.halted = true }

// Pending returns the number of not-yet-cancelled events in the queue.
func (e *Engine) Pending() int {
	n := 0
	for _, ev := range e.queue {
		if !ev.cancelled {
			n++
		}
	}
	return n
}

// RNG returns a deterministic random stream derived from the engine seed and
// the stream name. Equal (seed, name) pairs always produce identical streams,
// so adding a new consumer does not perturb existing ones.
func (e *Engine) RNG(name string) *rand.Rand {
	h := fnv.New64a()
	h.Write([]byte(name))
	return rand.New(rand.NewSource(e.seed ^ int64(h.Sum64())))
}

// eventQueue is a min-heap ordered by (at, seq).
type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

func (q *eventQueue) Push(x any) {
	ev := x.(*Event)
	ev.index = len(*q)
	*q = append(*q, ev)
}

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*q = old[:n-1]
	return ev
}
