package sim

import (
	"testing"
	"time"
)

// BenchmarkScheduleStep measures raw event throughput: schedule one event,
// fire it. This is the hot loop of every simulation run.
func BenchmarkScheduleStep(b *testing.B) {
	eng := New(1)
	fn := func() {}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		eng.Schedule(eng.Now()+time.Microsecond, fn)
		eng.Step()
	}
}

// BenchmarkScheduleCancel measures the cancel path (timeouts that never
// fire: ACK timers, NAV guards) against a populated queue.
func BenchmarkScheduleCancel(b *testing.B) {
	eng := New(1)
	fn := func() {}
	// A standing queue so cancellation pays realistic heap-fixup costs.
	for i := 0; i < 256; i++ {
		eng.Schedule(time.Duration(i)*time.Millisecond+time.Hour, fn)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ev := eng.Schedule(eng.Now()+time.Second, fn)
		eng.Cancel(ev)
	}
}

// BenchmarkDeepQueueStep measures stepping with many pending events, the
// regime of large-scale topologies where every station keeps timers armed.
func BenchmarkDeepQueueStep(b *testing.B) {
	eng := New(1)
	fn := func() {}
	for i := 0; i < 4096; i++ {
		eng.Schedule(time.Duration(i)*time.Microsecond+time.Hour, fn)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		eng.Schedule(eng.Now()+time.Nanosecond, fn)
		eng.Step()
	}
}

// BenchmarkRunUntil measures a self-rescheduling event chain driven through
// RunUntil, the pattern of beacons, credit refills and metric samplers.
func BenchmarkRunUntil(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		eng := New(1)
		var tick func()
		tick = func() { eng.After(time.Millisecond, tick) }
		eng.After(time.Millisecond, tick)
		eng.RunUntil(time.Second)
	}
}
