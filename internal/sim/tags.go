package sim

import "time"

// Tag identifies the subsystem an event is charged to by the attribution
// profiler (internal/prof). Tags are stamped on events at schedule time:
// either explicitly through ScheduleTagged/AfterTagged, or inherited from
// the event whose callback performed the scheduling, so chains of derived
// events stay attributed to the subsystem that started them.
type Tag uint8

// The fixed subsystem tag set. Adding a tag here automatically adds it to
// attribution reports and the comap_prof_* metric families.
const (
	// TagOther is the default for events scheduled outside any tagged
	// context (test harnesses, ad-hoc engine use).
	TagOther Tag = iota
	// TagMAC covers the DCF state machine's timers: backoff slots, DIFS/EIFS
	// defers, NAV expiry, SIFS responses and ACK/CTS timeouts.
	TagMAC
	// TagChannel covers the medium's transmission lifecycle: airtime-end
	// delivery and early header-indication events.
	TagChannel
	// TagComap covers the CO-MAP endpoint's stream machinery (CBR credit
	// pump and everything it chains).
	TagComap
	// TagARQ is reserved for the selective-repeat layer's own timers. The
	// current ARQ implementation runs synchronously inside mac/comap events,
	// so this tag reads zero unless a future ARQ grows retransmission
	// timers of its own.
	TagARQ
	// TagTraffic covers the DCF traffic peers: CBR credit and Poisson
	// arrival processes.
	TagTraffic
	// TagLocx covers the location input plane: in-band beacon ticks and the
	// location registry's report pipeline (delays, heartbeats).
	TagLocx
	// TagSampler covers the metrics sampler's periodic probe ticks.
	TagSampler
	// TagFaults covers the fault injector's window open/close schedule.
	TagFaults

	// NumTags is the size of the tag space (always last).
	NumTags
)

// tagNames indexes Tag -> stable attribution name. The names are part of
// the /profile and BENCH_*.json schemas; do not rename casually.
var tagNames = [NumTags]string{
	TagOther:   "other",
	TagMAC:     "mac",
	TagChannel: "channel",
	TagComap:   "comap",
	TagARQ:     "arq",
	TagTraffic: "traffic",
	TagLocx:    "locx",
	TagSampler: "metrics-sampler",
	TagFaults:  "faults",
}

// String returns the tag's stable attribution name.
func (t Tag) String() string {
	if t < NumTags {
		return tagNames[t]
	}
	return "other"
}

// NoOwner marks an event with no owning node (medium-wide or run-wide
// timers).
const NoOwner int32 = -1

// Observer receives a notification for every dispatched event. It is the
// hook the attribution profiler and flight recorder hang off: OnEvent runs
// on the simulation goroutine inside the dispatch loop, so implementations
// must be allocation-free and must never call back into the engine.
type Observer interface {
	OnEvent(at time.Duration, tag Tag, owner int32)
}

// SetObserver installs the dispatch observer (nil disables). Call before
// the run; the engine takes one branch per event when no observer is set.
func (e *Engine) SetObserver(o Observer) { e.obs = o }

// ScheduleTagged is Schedule with an explicit attribution context: the event
// (and, transitively, events its callback schedules without their own tag)
// is charged to tag/owner instead of inheriting the dispatch context.
func (e *Engine) ScheduleTagged(at time.Duration, tag Tag, owner int32, fn func()) Handle {
	prevTag, prevOwner := e.curTag, e.curOwner
	e.curTag, e.curOwner = tag, owner
	h := e.Schedule(at, fn)
	e.curTag, e.curOwner = prevTag, prevOwner
	return h
}

// AfterTagged is After with an explicit attribution context.
func (e *Engine) AfterTagged(d time.Duration, tag Tag, owner int32, fn func()) Handle {
	return e.ScheduleTagged(e.Now()+d, tag, owner, fn)
}

// Context returns the current attribution context: the tag/owner of the
// event being dispatched (or the values set by an enclosing
// ScheduleTagged). Exposed for tests and instrumentation.
func (e *Engine) Context() (Tag, int32) { return e.curTag, e.curOwner }

// livePublishMask amortizes the live-gauge mirror: queue length and event-
// pool size are published to atomics every (mask+1) dispatched events, so
// the hot loop pays a masked branch instead of two atomic stores per event.
const livePublishMask = 1023

// publishLive mirrors the queue length and free-list size into atomics for
// concurrent scrapers. Simulation goroutine only.
func (e *Engine) publishLive() {
	e.livePending.Store(int64(e.pending))
	e.livePool.Store(int64(len(e.free)))
}

// LivePending returns the engine's queue length as last published (every
// 1024 dispatches and at the end of Run/RunUntil). Safe for concurrent
// readers; the value lags the sim goroutine's O(1) Pending by at most one
// publish interval.
func (e *Engine) LivePending() int { return int(e.livePending.Load()) }

// LivePoolSize returns the recycled-event free-list size as last published.
// Safe for concurrent readers. A pool that grows without bound while
// LivePending stays flat is the signature of an event leak.
func (e *Engine) LivePoolSize() int { return int(e.livePool.Load()) }

// PoolSize returns the current free-list size. Simulation goroutine only
// (concurrent readers must use LivePoolSize).
func (e *Engine) PoolSize() int { return len(e.free) }
