package frame

import "hash/crc32"

// crc32ChecksumIEEE is a test-local alias so helper code reads clearly.
func crc32ChecksumIEEE(b []byte) uint32 { return crc32.ChecksumIEEE(b) }
