package frame

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"
)

func TestKindString(t *testing.T) {
	tests := []struct {
		k    Kind
		want string
	}{
		{Data, "DATA"},
		{Ack, "ACK"},
		{ComapHeader, "HDR"},
		{SRAck, "SRACK"},
		{LocationBeacon, "LOC"},
		{Kind(42), "Kind(42)"},
	}
	for _, tt := range tests {
		if got := tt.k.String(); got != tt.want {
			t.Errorf("String(%d) = %q, want %q", tt.k, got, tt.want)
		}
	}
}

func TestAirBytes(t *testing.T) {
	tests := []struct {
		f    Frame
		want int
	}{
		{Frame{Kind: Data, PayloadBytes: 1000}, 1028},
		{Frame{Kind: Data}, 28},
		{Frame{Kind: Ack}, 14},
		{Frame{Kind: SRAck}, 20},
		{Frame{Kind: ComapHeader}, 16},
		{Frame{Kind: LocationBeacon}, 34},
		{Frame{}, 28}, // unknown kinds fall back to a bare header
	}
	for _, tt := range tests {
		if got := tt.f.AirBytes(); got != tt.want {
			t.Errorf("AirBytes(%v) = %d, want %d", tt.f.Kind, got, tt.want)
		}
	}
}

func TestIsAck(t *testing.T) {
	if !(Frame{Kind: Ack}).IsAck() || !(Frame{Kind: SRAck}).IsAck() {
		t.Error("ACK kinds must report IsAck")
	}
	if (Frame{Kind: Data}).IsAck() || (Frame{Kind: ComapHeader}).IsAck() {
		t.Error("non-ACK kinds must not report IsAck")
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	f := Frame{
		Kind:         Data,
		Src:          3,
		Dst:          7,
		Seq:          1234,
		PayloadBytes: 900,
		Retry:        true,
		Bitmap:       0xDEADBEEF,
		X:            12.5,
		Y:            -3.25,
	}
	got, err := Unmarshal(f.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if got != f {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", got, f)
	}
}

func TestMarshalRoundTripProperty(t *testing.T) {
	f := func(kindRaw uint8, src, dst, seq uint16, payload uint16, retry bool, bitmap uint32, x, y float64) bool {
		kind := Kind(kindRaw%5) + Data
		in := Frame{
			Kind: kind, Src: NodeID(src), Dst: NodeID(dst), Seq: seq,
			PayloadBytes: int(payload), Retry: retry, Bitmap: bitmap, X: x, Y: y,
		}
		out, err := Unmarshal(in.Marshal())
		if err != nil {
			return false
		}
		// NaN positions don't compare equal; accept them bit-for-bit via
		// re-marshal instead.
		if x != x || y != y {
			return string(out.Marshal()) == string(in.Marshal())
		}
		return out == in
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestUnmarshalShort(t *testing.T) {
	if _, err := Unmarshal([]byte{1, 2, 3}); !errors.Is(err, ErrShortFrame) {
		t.Errorf("err = %v, want ErrShortFrame", err)
	}
}

func TestUnmarshalCorruption(t *testing.T) {
	buf := Frame{Kind: Data, Src: 1, Dst: 2, Seq: 9}.Marshal()
	for i := range buf {
		corrupted := make([]byte, len(buf))
		copy(corrupted, buf)
		corrupted[i] ^= 0x40
		if _, err := Unmarshal(corrupted); err == nil {
			t.Errorf("flipping byte %d went undetected", i)
		}
	}
}

func TestUnmarshalBadKind(t *testing.T) {
	f := Frame{Kind: Data}
	buf := f.Marshal()
	buf[0] = 99
	// Recompute a valid FCS so only the kind is bad.
	valid := Frame{Kind: Data}
	_ = valid
	// Easiest: marshal a frame and patch both kind and FCS via Marshal of a
	// struct we can't build; instead simulate by re-checksumming.
	patched := patchKind(buf, 99)
	if _, err := Unmarshal(patched); !errors.Is(err, ErrBadKind) {
		t.Errorf("err = %v, want ErrBadKind", err)
	}
}

// patchKind rewrites the kind byte and fixes up the FCS.
func patchKind(buf []byte, kind byte) []byte {
	out := make([]byte, len(buf))
	copy(out, buf)
	out[0] = kind
	f := Frame{Kind: Kind(kind)}
	_ = f
	// Recompute FCS over the header region.
	hdr := out[:len(out)-4]
	fcs := crc32ChecksumIEEE(hdr)
	out[len(out)-4] = byte(fcs >> 24)
	out[len(out)-3] = byte(fcs >> 16)
	out[len(out)-2] = byte(fcs >> 8)
	out[len(out)-1] = byte(fcs)
	return out
}

func TestFrameString(t *testing.T) {
	s := Frame{Kind: Data, Src: 1, Dst: 2, Seq: 5, PayloadBytes: 100}.String()
	for _, want := range []string{"DATA", "1->2", "seq=5", "len=100"} {
		if !strings.Contains(s, want) {
			t.Errorf("String %q missing %q", s, want)
		}
	}
}

func TestBroadcastConstant(t *testing.T) {
	if Broadcast != 0xFFFF {
		t.Errorf("Broadcast = %v", Broadcast)
	}
}
