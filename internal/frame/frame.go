// Package frame defines the over-the-air frame types exchanged by the
// simulated 802.11 MAC and by CO-MAP: data frames, ACKs (plain and
// selective-repeat), the CO-MAP discovery header and location beacons.
//
// Frames are carried through the simulator as structs; Marshal/Unmarshal
// provide the byte-level wire form (with a CRC-32 FCS) used by the paper's
// testbed variant, so sizes and integrity checks are real.
package frame

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
)

// NodeID identifies a station (client or AP) in the network.
type NodeID uint16

// Broadcast is the all-stations destination.
const Broadcast NodeID = 0xFFFF

// Kind enumerates frame types.
type Kind uint8

// Frame kinds. Values start at 1 so the zero Frame is recognisably invalid.
const (
	// Data carries application payload.
	Data Kind = iota + 1
	// Ack is the plain 802.11 acknowledgement.
	Ack
	// ComapHeader is the small discovery header transmitted immediately
	// before a data frame so neighbors learn (src, dst) of the coming
	// transmission (paper §IV-C1 and §V).
	ComapHeader
	// SRAck is a selective-repeat acknowledgement carrying a cumulative
	// sequence number plus a bitmap of the previous 32 sequence numbers
	// (paper §IV-C4).
	SRAck
	// LocationBeacon announces a node's position to its neighbors
	// (paper §IV-A location exchange).
	LocationBeacon
	// RTS/CTS implement the optional virtual-carrier-sense handshake. The
	// paper disables it in all experiments; this library provides it as a
	// comparison baseline for hidden-terminal mitigation. PayloadBytes on an
	// RTS/CTS carries the announced data payload so bystanders can compute
	// the NAV duration.
	RTS
	CTS
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Data:
		return "DATA"
	case Ack:
		return "ACK"
	case ComapHeader:
		return "HDR"
	case SRAck:
		return "SRACK"
	case LocationBeacon:
		return "LOC"
	case RTS:
		return "RTS"
	case CTS:
		return "CTS"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Frame is one over-the-air MAC frame.
type Frame struct {
	Kind Kind
	Src  NodeID
	Dst  NodeID
	// Seq is the MAC/ARQ sequence number of a data frame, or the
	// acknowledged sequence number of an (SR)ACK.
	Seq uint16
	// PayloadBytes is the application payload length of a data frame.
	PayloadBytes int
	// Retry marks a retransmission.
	Retry bool
	// Bitmap, on an SRAck, reports reception of the 32 sequence numbers
	// preceding Seq: bit i set means Seq-1-i was received.
	Bitmap uint32
	// X, Y carry the reported position (meters) of a LocationBeacon.
	X, Y float64
}

// Frame sizes on the wire, in bytes (matching internal/phy constants).
const (
	macHeaderBytes   = 28 // 24-byte 3-address header + 4-byte FCS
	ackBytes         = 14
	srAckBytes       = 20 // ACK + cumulative seq + 32-bit bitmap
	comapHeaderBytes = 16 // src + dst addresses + own FCS
	locationBytes    = 34 // MAC header-sized beacon carrying two float32s... kept simple
	rtsBytes         = 20
	ctsBytes         = 14
)

// AirBytes returns the frame's on-air size in bytes, the number used for
// airtime computation.
func (f Frame) AirBytes() int {
	switch f.Kind {
	case Data:
		return macHeaderBytes + f.PayloadBytes
	case Ack:
		return ackBytes
	case SRAck:
		return srAckBytes
	case ComapHeader:
		return comapHeaderBytes
	case LocationBeacon:
		return locationBytes
	case RTS:
		return rtsBytes
	case CTS:
		return ctsBytes
	default:
		return macHeaderBytes
	}
}

// IsAck reports whether the frame acknowledges data (plain or selective
// repeat).
func (f Frame) IsAck() bool { return f.Kind == Ack || f.Kind == SRAck }

// String renders a compact human-readable form for traces.
func (f Frame) String() string {
	return fmt.Sprintf("%s %d->%d seq=%d len=%d", f.Kind, f.Src, f.Dst, f.Seq, f.PayloadBytes)
}

// Errors returned by Unmarshal.
var (
	ErrShortFrame = errors.New("frame: buffer too short")
	ErrBadFCS     = errors.New("frame: FCS mismatch")
	ErrBadKind    = errors.New("frame: unknown kind")
)

// marshalled header layout (before FCS):
//
//	kind(1) flags(1) src(2) dst(2) seq(2) payloadLen(4) bitmap(4) x(8) y(8)
const wireHeaderLen = 1 + 1 + 2 + 2 + 2 + 4 + 4 + 8 + 8

const flagRetry = 0x01

// Marshal encodes the frame's wire header followed by a CRC-32 FCS. The
// application payload itself is simulated (only its length is carried), so
// the encoding covers metadata integrity, mirroring the testbed's separate
// FCS-protected discovery header.
func (f Frame) Marshal() []byte {
	buf := make([]byte, wireHeaderLen+4)
	buf[0] = byte(f.Kind)
	if f.Retry {
		buf[1] |= flagRetry
	}
	binary.BigEndian.PutUint16(buf[2:], uint16(f.Src))
	binary.BigEndian.PutUint16(buf[4:], uint16(f.Dst))
	binary.BigEndian.PutUint16(buf[6:], f.Seq)
	binary.BigEndian.PutUint32(buf[8:], uint32(f.PayloadBytes))
	binary.BigEndian.PutUint32(buf[12:], f.Bitmap)
	binary.BigEndian.PutUint64(buf[16:], math.Float64bits(f.X))
	binary.BigEndian.PutUint64(buf[24:], math.Float64bits(f.Y))
	fcs := crc32.ChecksumIEEE(buf[:wireHeaderLen])
	binary.BigEndian.PutUint32(buf[wireHeaderLen:], fcs)
	return buf
}

// Unmarshal decodes a frame previously produced by Marshal, verifying the
// FCS.
func Unmarshal(buf []byte) (Frame, error) {
	if len(buf) < wireHeaderLen+4 {
		return Frame{}, ErrShortFrame
	}
	want := binary.BigEndian.Uint32(buf[wireHeaderLen:])
	if crc32.ChecksumIEEE(buf[:wireHeaderLen]) != want {
		return Frame{}, ErrBadFCS
	}
	k := Kind(buf[0])
	if k < Data || k > CTS {
		return Frame{}, ErrBadKind
	}
	f := Frame{
		Kind:         k,
		Retry:        buf[1]&flagRetry != 0,
		Src:          NodeID(binary.BigEndian.Uint16(buf[2:])),
		Dst:          NodeID(binary.BigEndian.Uint16(buf[4:])),
		Seq:          binary.BigEndian.Uint16(buf[6:]),
		PayloadBytes: int(binary.BigEndian.Uint32(buf[8:])),
		Bitmap:       binary.BigEndian.Uint32(buf[12:]),
		X:            math.Float64frombits(binary.BigEndian.Uint64(buf[16:])),
		Y:            math.Float64frombits(binary.BigEndian.Uint64(buf[24:])),
	}
	return f, nil
}
