package faults

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync/atomic"
	"time"

	"repro/internal/channel"
	"repro/internal/frame"
	"repro/internal/geom"
	"repro/internal/loc"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/trace"
)

// ChurnController performs station leave/re-join transitions. netsim.Network
// implements it; the injector only decides when.
type ChurnController interface {
	// StationLeave takes the station off the network: traffic pauses, its
	// location fix disappears and peers invalidate cached verdicts about it.
	StationLeave(id frame.NodeID)
	// StationRejoin brings the station back: it re-registers its position,
	// traffic resumes and peers invalidate again (it may have moved).
	StationRejoin(id frame.NodeID)
}

// BeaconLossSink accepts an in-band beacon-loss process (locx.Node).
type BeaconLossSink interface {
	SetLossFn(func() bool)
}

// RPCFate is the fault verdict for one control-plane call at the moment it
// is issued.
type RPCFate struct {
	// Lost marks the request silently dropped: no response and no error —
	// the caller's per-call deadline is the only way out.
	Lost bool
	// Partitioned black-holes the call like Lost, but as a window state
	// rather than a per-call probability draw.
	Partitioned bool
	// Down reports the service process is crashed: the call fails fast.
	Down bool
	// Delay is the added round-trip latency.
	Delay time.Duration
}

// RPCSink is the control-plane transport the injector drives
// (mapsvc.SimTransport in the simulator).
type RPCSink interface {
	// SetFateFn installs the per-call fate oracle. The transport must call
	// it exactly once per issued request: active rpcloss processes consume
	// one RNG draw per call, so the call count is part of the deterministic
	// replay surface.
	SetFateFn(func() RPCFate)
	// SetDown crashes (true) or recovers (false) the service process behind
	// the transport; recovery replays the snapshot + WAL.
	SetDown(down bool)
}

// Targets are the subsystems the injector drives. Any field may be nil/empty;
// processes without a target are simply inert.
type Targets struct {
	// Loc is the out-of-band location registry (report loss/delay, outages,
	// bias bursts, and the fix removal side of churn happen here).
	Loc *loc.Registry
	// Medium receives burst-fading and noise-floor events.
	Medium *channel.Medium
	// Churn performs station leave/re-join.
	Churn ChurnController
	// Beacons are the in-band location-exchange endpoints; locloss installs
	// its loss process on each of them.
	Beacons []BeaconLossSink
	// Nodes are all station IDs, in ID order, for processes that apply to
	// every station (bias with no node=).
	Nodes []frame.NodeID
	// RPC is the control-plane transport; the rpc* fault kinds drive it.
	RPC RPCSink
}

// Injector schedules a Spec's fault processes on a simulation engine. All
// randomness comes from named engine streams ("faults.<idx>.<kind>"), so two
// runs with the same seed and spec inject identical faults.
//
// The window flags and the activation count are atomics so the live
// observability plane can summarize injector state (Status) while the run
// is in flight; everything else is sim-goroutine-only.
type Injector struct {
	eng  *sim.Engine
	spec *Spec
	t    Targets

	// active[i] reports whether process i's window is currently open.
	active []atomic.Bool
	rngs   []*rand.Rand

	baseNoiseDBm float64

	tr       *trace.Emitter
	counters map[Kind]*metrics.Counter
	injected atomic.Int64

	// onWindowOpen fires on every fault-window activation (after the
	// counters). The observability layer hangs flight-recorder dumps off it.
	onWindowOpen func(kind Kind)
}

// OnWindowOpen installs a callback invoked each time a fault window opens,
// with the fault kind. Call before Start; nil disables. A nil injector
// ignores it.
func (in *Injector) OnWindowOpen(fn func(kind Kind)) {
	if in == nil {
		return
	}
	in.onWindowOpen = fn
}

// NewInjector builds an injector for the given spec and targets. A nil spec
// yields a nil injector; every method on a nil injector is a no-op, so
// callers need no fault-enabled branches.
func NewInjector(eng *sim.Engine, spec *Spec, t Targets) *Injector {
	if spec == nil || len(spec.Procs) == 0 {
		return nil
	}
	in := &Injector{
		eng:    eng,
		spec:   spec,
		t:      t,
		active: make([]atomic.Bool, len(spec.Procs)),
		rngs:   make([]*rand.Rand, len(spec.Procs)),
	}
	for i, p := range spec.Procs {
		in.rngs[i] = eng.RNG(fmt.Sprintf("faults.%d.%s", i, p.Kind))
	}
	return in
}

// SetTrace attaches a trace emitter: every window opening emits a "fault"
// event (Reason = kind, Src = targeted node or broadcast, DurUs = window
// length) so analyzers can attribute goodput dips to injected faults.
func (in *Injector) SetTrace(em *trace.Emitter) {
	if in == nil {
		return
	}
	in.tr = em
}

// SetMetrics attaches a registry recording "faults.injected.<kind>" counters.
func (in *Injector) SetMetrics(reg *metrics.Registry) {
	if in == nil || reg == nil {
		return
	}
	in.counters = make(map[Kind]*metrics.Counter)
	for _, p := range in.spec.Procs {
		if _, ok := in.counters[p.Kind]; !ok {
			in.counters[p.Kind] = reg.Counter("faults.injected." + string(p.Kind))
		}
	}
}

// Injected returns how many fault activations fired (window openings, plus
// one per whole-run loss/delay process armed at start). Safe for concurrent
// readers.
func (in *Injector) Injected() int {
	if in == nil {
		return 0
	}
	return int(in.injected.Load())
}

// Status is a race-safe summary of the injector for the live health
// endpoint.
type Status struct {
	// Spec is the fault specification text the injector runs.
	Spec string `json:"spec"`
	// Processes is the number of fault processes in the spec.
	Processes int `json:"processes"`
	// Injected counts activations so far (see Injector.Injected).
	Injected int `json:"injected"`
	// ActiveWindows is the number of processes whose window is open now.
	ActiveWindows int `json:"active_windows"`
	// ActiveKinds lists the kinds with an open window, sorted and deduped.
	ActiveKinds []string `json:"active_kinds,omitempty"`
}

// Status summarises the injector mid-run. Safe for concurrent readers; a
// nil injector reports a zero Status.
func (in *Injector) Status() Status {
	if in == nil {
		return Status{}
	}
	st := Status{
		Spec:      in.spec.String(),
		Processes: len(in.spec.Procs),
		Injected:  in.Injected(),
	}
	kinds := make(map[string]bool)
	for i := range in.active {
		if in.active[i].Load() {
			st.ActiveWindows++
			kinds[string(in.spec.Procs[i].Kind)] = true
		}
	}
	for k := range kinds {
		st.ActiveKinds = append(st.ActiveKinds, k)
	}
	sort.Strings(st.ActiveKinds)
	return st
}

// Start schedules every process. Call once, before the run.
func (in *Injector) Start() {
	if in == nil {
		return
	}
	if in.t.Medium != nil {
		in.baseNoiseDBm = in.t.Medium.NoiseFloorDBm()
	}
	needPipeline := false
	needRPC := false
	for i, p := range in.spec.Procs {
		switch p.Kind {
		case LocLoss, LocDelay:
			needPipeline = true
			if p.windowed() {
				in.scheduleWindows(i, p, nil, nil)
			} else {
				in.active[i].Store(true)
				in.record(p) // armed for the whole run
			}
		case RPCLoss, RPCDelay:
			needRPC = true
			if p.windowed() {
				in.scheduleWindows(i, p, nil, nil)
			} else {
				in.active[i].Store(true)
				in.record(p) // armed for the whole run
			}
		case RPCPartition:
			needRPC = true
			in.scheduleWindows(i, p, nil, nil)
		case RPCRestart:
			needRPC = true
			in.scheduleWindows(i, p,
				func() { in.setRPCDown(true) },
				func() { in.setRPCDown(false) })
		case Outage:
			in.scheduleWindows(i, p,
				func() { in.setFrozen(p.Node, true) },
				func() { in.setFrozen(p.Node, false) })
		case Bias:
			idx := i
			in.scheduleWindows(i, p,
				func() { in.applyBias(idx, p) },
				func() { in.clearBias(p) })
		case Churn:
			in.scheduleWindows(i, p,
				func() { in.churn(p.Node, true) },
				func() { in.churn(p.Node, false) })
		case Fade:
			in.scheduleWindows(i, p,
				func() { in.setFade(p.DB) },
				func() { in.setFade(0) })
		case Noise:
			in.scheduleWindows(i, p,
				func() { in.setNoise(in.baseNoiseDBm + p.DB) },
				func() { in.setNoise(in.baseNoiseDBm) })
		}
	}
	if needPipeline {
		if in.t.Loc != nil {
			in.t.Loc.SetPipelineFault(in.pipelineFault)
		}
		for _, b := range in.t.Beacons {
			b.SetLossFn(in.beaconLost)
		}
	}
	if needRPC && in.t.RPC != nil {
		in.t.RPC.SetFateFn(in.rpcFate)
	}
}

// rpcFate composes every active rpc* window into the fate of one
// control-plane call. Each active rpcloss process draws exactly once per
// call regardless of earlier verdicts, so the per-process streams advance
// identically on every seeded replay.
func (in *Injector) rpcFate() RPCFate {
	var f RPCFate
	for i, p := range in.spec.Procs {
		if !in.active[i].Load() {
			continue
		}
		switch p.Kind {
		case RPCLoss:
			if in.rngs[i].Float64() < p.P {
				f.Lost = true
			}
		case RPCDelay:
			if p.D > f.Delay {
				f.Delay = p.D
			}
		case RPCPartition:
			f.Partitioned = true
		case RPCRestart:
			f.Down = true
		}
	}
	return f
}

func (in *Injector) setRPCDown(down bool) {
	if in.t.RPC != nil {
		in.t.RPC.SetDown(down)
	}
}

// scheduleWindows opens process i's window at p.At (recurring every p.Every)
// and closes it p.Dur later. open/close may be nil for processes whose
// effect is purely the active flag (pipeline loss/delay windows).
func (in *Injector) scheduleWindows(i int, p Process, open, close func()) {
	var start func()
	start = func() {
		in.active[i].Store(true)
		in.record(p)
		if open != nil {
			open()
		}
		if p.Dur > 0 {
			in.eng.AfterTagged(p.Dur, sim.TagFaults, sim.NoOwner, func() {
				in.active[i].Store(false)
				if close != nil {
					close()
				}
			})
		}
		if p.Every > 0 {
			in.eng.AfterTagged(p.Every, sim.TagFaults, sim.NoOwner, start)
		}
	}
	in.eng.AfterTagged(p.At, sim.TagFaults, sim.NoOwner, start)
}

// record counts one activation in metrics and trace.
func (in *Injector) record(p Process) {
	in.injected.Add(1)
	if c := in.counters[p.Kind]; c != nil {
		c.Inc()
	}
	if in.tr.Enabled() {
		src := frame.Broadcast
		if p.HasNode {
			src = frame.NodeID(p.Node)
		}
		in.tr.Emit(trace.Event{
			Kind:   trace.KindFault,
			Src:    src,
			Reason: string(p.Kind),
			DurUs:  p.Dur.Microseconds(),
		})
	}
	if in.onWindowOpen != nil {
		in.onWindowOpen(p.Kind)
	}
}

// pipelineFault is the composed report loss/delay process installed on the
// location registry: any active locloss process may drop the report, and the
// largest active locdelay latency applies otherwise.
func (in *Injector) pipelineFault(id frame.NodeID) (time.Duration, bool) {
	var delay time.Duration
	for i, p := range in.spec.Procs {
		if !in.active[i].Load() || !p.applies(id) {
			continue
		}
		switch p.Kind {
		case LocLoss:
			if in.rngs[i].Float64() < p.P {
				return 0, true
			}
		case LocDelay:
			if p.D > delay {
				delay = p.D
			}
		}
	}
	return delay, false
}

// beaconLost is the in-band twin of pipelineFault: active locloss processes
// consume outgoing location beacons with the same probability.
func (in *Injector) beaconLost() bool {
	for i, p := range in.spec.Procs {
		if p.Kind == LocLoss && in.active[i].Load() {
			if in.rngs[i].Float64() < p.P {
				return true
			}
		}
	}
	return false
}

// applies reports whether the process targets the given node.
func (p Process) applies(id frame.NodeID) bool {
	return !p.HasNode || frame.NodeID(p.Node) == id
}

func (in *Injector) setFrozen(node uint16, frozen bool) {
	if in.t.Loc == nil {
		return
	}
	id := frame.NodeID(node)
	in.t.Loc.SetFrozen(id, frozen)
	if !frozen {
		// Outage over: the stale fix refreshes with the next report; force
		// one so recovery does not wait for movement or a heartbeat.
		in.t.Loc.ForceReport(id)
	}
}

// applyBias shifts every targeted node's reports by p.M meters in a
// direction drawn from the process's own stream, then forces a report so the
// corrupted fix is what peers see during the window.
func (in *Injector) applyBias(i int, p Process) {
	if in.t.Loc == nil {
		return
	}
	for _, id := range in.biasTargets(p) {
		theta := 2 * math.Pi * in.rngs[i].Float64()
		in.t.Loc.SetBias(id, geom.Vec(p.M*math.Cos(theta), p.M*math.Sin(theta)))
		in.t.Loc.ForceReport(id)
	}
}

func (in *Injector) clearBias(p Process) {
	if in.t.Loc == nil {
		return
	}
	for _, id := range in.biasTargets(p) {
		in.t.Loc.SetBias(id, geom.Vec(0, 0))
		in.t.Loc.ForceReport(id)
	}
}

func (in *Injector) biasTargets(p Process) []frame.NodeID {
	if p.HasNode {
		return []frame.NodeID{frame.NodeID(p.Node)}
	}
	return in.t.Nodes
}

func (in *Injector) churn(node uint16, leave bool) {
	if in.t.Churn == nil {
		return
	}
	if leave {
		in.t.Churn.StationLeave(frame.NodeID(node))
	} else {
		in.t.Churn.StationRejoin(frame.NodeID(node))
	}
}

func (in *Injector) setFade(db float64) {
	if in.t.Medium != nil {
		in.t.Medium.SetExtraPathLossDB(db)
	}
}

func (in *Injector) setNoise(dbm float64) {
	if in.t.Medium != nil {
		in.t.Medium.SetNoiseFloorDBm(dbm)
	}
}
