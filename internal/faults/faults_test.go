package faults

import (
	"strings"
	"testing"
	"time"

	"repro/internal/channel"
	"repro/internal/frame"
	"repro/internal/geom"
	"repro/internal/loc"
	"repro/internal/radio"
	"repro/internal/sim"
)

func TestParseFullGrammar(t *testing.T) {
	spec, err := Parse("locloss:p=0.3; locdelay:d=200ms,at=1s,dur=2s; outage:node=2,at=1s,dur=2s; bias:at=1s,dur=500ms,m=20; churn:node=3,at=1s,dur=2s,every=4s; fade:at=2s,dur=300ms,db=10; noise:at=2s,dur=300ms,db=-5")
	if err != nil {
		t.Fatal(err)
	}
	if len(spec.Procs) != 7 {
		t.Fatalf("parsed %d processes", len(spec.Procs))
	}
	p := spec.Procs[0]
	if p.Kind != LocLoss || p.P != 0.3 || p.windowed() {
		t.Errorf("locloss = %+v", p)
	}
	if c := spec.Procs[4]; c.Kind != Churn || !c.HasNode || c.Node != 3 || c.Every != 4*time.Second {
		t.Errorf("churn = %+v", c)
	}
	if n := spec.Procs[6]; n.DB != -5 {
		t.Errorf("noise = %+v", n)
	}
}

func TestParseEmptyIsNil(t *testing.T) {
	spec, err := Parse("  ")
	if err != nil || spec != nil {
		t.Errorf("Parse(blank) = %v, %v", spec, err)
	}
}

func TestParseRejectsMalformedSpecs(t *testing.T) {
	cases := []struct{ spec, wantErr string }{
		{"explode:p=1", "unknown fault kind"},
		{"locloss", "p in (0,1]"},
		{"locloss:p=1.5", "p in (0,1]"},
		{"locloss:p=-0.1", "p in (0,1]"},
		{"locloss:pp=0.5", "unknown parameter"},
		{"locloss:p", "malformed parameter"},
		{"locdelay:d=0s", "d > 0"},
		{"locdelay:d=-5ms", "must not be negative"},
		{"outage:at=1s,dur=1s", "needs node="},
		{"outage:node=1,at=1s", "dur > 0"},
		{"bias:at=1s,dur=1s", "m > 0"},
		{"churn:node=1,dur=1s,every=500ms", "must exceed dur"},
		{"fade:at=1s,dur=1s,db=-3", "db > 0"},
		{"noise:at=1s,dur=1s", "db != 0"},
		{"outage:node=banana,at=1s,dur=1s", "node"},
		{"locloss:p=0.5,at=oops", "at"},
		{";;", "no processes"},
	}
	for _, c := range cases {
		if _, err := Parse(c.spec); err == nil {
			t.Errorf("Parse(%q) accepted", c.spec)
		} else if !strings.Contains(err.Error(), c.wantErr) {
			t.Errorf("Parse(%q) error = %v, want substring %q", c.spec, err, c.wantErr)
		}
	}
}

func newFaultedRegistry(eng *sim.Engine) *loc.Registry {
	r := loc.NewRegistry(eng.RNG("loc"), 0, 1)
	r.SetClock(eng.Now)
	r.SetScheduler(func(d time.Duration, fn func()) { eng.After(d, fn) })
	return r
}

func TestWindowedLossOnlyDropsInsideWindow(t *testing.T) {
	eng := sim.New(7)
	reg := newFaultedRegistry(eng)
	reg.Register(1, geom.Pt(0, 0))
	spec, err := Parse("locloss:p=1,at=1s,dur=1s")
	if err != nil {
		t.Fatal(err)
	}
	in := NewInjector(eng, spec, Targets{Loc: reg})
	in.Start()
	// Reports at 0.5 s (before), 1.5 s (inside), 2.5 s (after).
	for _, at := range []time.Duration{500, 1500, 2500} {
		eng.After(at*time.Millisecond, func() { reg.ForceReport(1) })
	}
	eng.Run()
	if reg.DroppedReports() != 1 {
		t.Errorf("DroppedReports = %d, want exactly the in-window report", reg.DroppedReports())
	}
	if in.Injected() != 1 {
		t.Errorf("Injected = %d", in.Injected())
	}
}

func TestRecurringWindowReopens(t *testing.T) {
	eng := sim.New(7)
	reg := newFaultedRegistry(eng)
	reg.Register(1, geom.Pt(0, 0))
	spec, _ := Parse("locloss:p=1,at=0s,dur=100ms,every=1s")
	in := NewInjector(eng, spec, Targets{Loc: reg})
	in.Start()
	eng.RunUntil(3500 * time.Millisecond)
	if in.Injected() != 4 { // windows at 0, 1, 2, 3 s
		t.Errorf("Injected = %d, want 4 window openings", in.Injected())
	}
}

func TestDelayProcessDelaysCommits(t *testing.T) {
	eng := sim.New(7)
	reg := newFaultedRegistry(eng)
	reg.Register(1, geom.Pt(0, 0))
	spec, _ := Parse("locdelay:d=250ms")
	NewInjector(eng, spec, Targets{Loc: reg}).Start()
	eng.After(time.Second, func() { reg.Move(1, geom.Pt(50, 0)) })
	var before geom.Point
	eng.After(1200*time.Millisecond, func() { before, _ = reg.Position(1) })
	eng.Run()
	if before != geom.Pt(0, 0) {
		t.Errorf("position before the delay elapsed = %v", before)
	}
	if p, _ := reg.Position(1); p != geom.Pt(50, 0) {
		t.Errorf("delayed report never committed")
	}
	if reg.DelayedReports() != 1 {
		t.Errorf("DelayedReports = %d", reg.DelayedReports())
	}
}

func TestOutageFreezesAndRecovers(t *testing.T) {
	eng := sim.New(7)
	reg := newFaultedRegistry(eng)
	reg.Register(2, geom.Pt(0, 0))
	spec, _ := Parse("outage:node=2,at=1s,dur=1s")
	NewInjector(eng, spec, Targets{Loc: reg}).Start()
	eng.After(1500*time.Millisecond, func() { reg.Move(2, geom.Pt(80, 0)) })
	var during geom.Point
	eng.After(1800*time.Millisecond, func() { during, _ = reg.Position(2) })
	eng.Run()
	if during != geom.Pt(0, 0) {
		t.Errorf("fix moved during outage: %v", during)
	}
	// Window close force-reports: the node recovers without further movement.
	if p, _ := reg.Position(2); p != geom.Pt(80, 0) {
		t.Errorf("fix after outage = %v, want recovery", p)
	}
}

func TestBiasBurstAppliesAndClears(t *testing.T) {
	eng := sim.New(7)
	reg := newFaultedRegistry(eng)
	reg.Register(1, geom.Pt(0, 0))
	spec, _ := Parse("bias:node=1,at=1s,dur=1s,m=40")
	NewInjector(eng, spec, Targets{Loc: reg, Nodes: []frame.NodeID{1}}).Start()
	var during geom.Point
	eng.After(1500*time.Millisecond, func() { during, _ = reg.Position(1) })
	eng.Run()
	if d := during.DistanceTo(geom.Pt(0, 0)); d < 39.999 || d > 40.001 {
		t.Errorf("bias magnitude = %v, want 40", d)
	}
	if p, _ := reg.Position(1); p.DistanceTo(geom.Pt(0, 0)) > 0.001 {
		t.Errorf("bias did not clear: %v", p)
	}
}

type churnLog struct {
	events []string
}

func (c *churnLog) StationLeave(id frame.NodeID)  { c.events = append(c.events, "leave") }
func (c *churnLog) StationRejoin(id frame.NodeID) { c.events = append(c.events, "rejoin") }

func TestChurnDrivesController(t *testing.T) {
	eng := sim.New(7)
	spec, _ := Parse("churn:node=3,at=1s,dur=2s")
	cl := &churnLog{}
	NewInjector(eng, spec, Targets{Churn: cl}).Start()
	eng.RunUntil(5 * time.Second)
	if len(cl.events) != 2 || cl.events[0] != "leave" || cl.events[1] != "rejoin" {
		t.Errorf("churn events = %v", cl.events)
	}
}

func TestFadeAndNoiseWindows(t *testing.T) {
	eng := sim.New(7)
	med := channel.NewMedium(eng, radio.NewLogNormal2400(2.9, 0), -96)
	spec, _ := Parse("fade:at=1s,dur=1s,db=10; noise:at=3s,dur=1s,db=15")
	NewInjector(eng, spec, Targets{Medium: med}).Start()
	type sample struct{ fade, noise float64 }
	samples := map[time.Duration]*sample{}
	for _, at := range []time.Duration{500, 1500, 2500, 3500, 4500} {
		at := at * time.Millisecond
		samples[at] = &sample{}
		eng.After(at, func() { *samples[at] = sample{med.ExtraPathLossDB(), med.NoiseFloorDBm()} })
	}
	eng.Run()
	for at, want := range map[time.Duration]sample{
		500 * time.Millisecond:  {0, -96},
		1500 * time.Millisecond: {10, -96},
		2500 * time.Millisecond: {0, -96},
		3500 * time.Millisecond: {0, -81},
		4500 * time.Millisecond: {0, -96},
	} {
		if got := *samples[at]; got != want {
			t.Errorf("at %v: (fade, noise) = %v, want %v", at, got, want)
		}
	}
}

func TestNilInjectorIsInert(t *testing.T) {
	in := NewInjector(sim.New(1), nil, Targets{})
	if in != nil {
		t.Fatal("nil spec should yield a nil injector")
	}
	in.Start() // must not panic
	in.SetTrace(nil)
	in.SetMetrics(nil)
	if in.Injected() != 0 {
		t.Error("nil injector injected something")
	}
}

func TestInjectionIsDeterministicPerSeed(t *testing.T) {
	run := func() (dropped int, pos geom.Point) {
		eng := sim.New(42)
		reg := newFaultedRegistry(eng)
		reg.Register(1, geom.Pt(0, 0))
		spec, _ := Parse("locloss:p=0.5; bias:node=1,at=1s,dur=1s,m=10")
		NewInjector(eng, spec, Targets{Loc: reg, Nodes: []frame.NodeID{1}}).Start()
		for i := 1; i <= 20; i++ {
			eng.After(time.Duration(i)*100*time.Millisecond, func() { reg.ForceReport(1) })
		}
		eng.Run()
		p, _ := reg.Position(1)
		return reg.DroppedReports(), p
	}
	d1, p1 := run()
	d2, p2 := run()
	if d1 != d2 || p1 != p2 {
		t.Errorf("runs diverged: (%d, %v) vs (%d, %v)", d1, p1, d2, p2)
	}
	if d1 == 0 || d1 == 21 {
		t.Errorf("p=0.5 loss dropped %d of 21 reports — fault likely inert", d1)
	}
}
