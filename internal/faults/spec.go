// Package faults is the deterministic fault-injection layer: it parses a
// compact fault-spec grammar and drives schedulable fault processes —
// location-report loss and delay, localization outages, position-bias
// bursts, station churn, channel burst fading and noise-floor jumps —
// entirely off the simulation clock and named engine RNG streams, so a run
// with the same seed and spec is bit-reproducible.
//
// The spec grammar is a semicolon-separated list of processes, each
// "kind:key=value,key=value":
//
//	locloss:p=0.3                      drop 30% of location reports (whole run)
//	locloss:p=0.5,at=2s,dur=1s         ... only inside a window
//	locdelay:d=200ms                   commit reports 200 ms late
//	outage:node=2,at=1s,dur=2s         node 2's fixes freeze for 2 s
//	bias:at=1s,dur=500ms,m=20          all reports shift 20 m for 500 ms
//	churn:node=3,at=1s,dur=2s          node 3 leaves at 1 s, re-joins at 3 s
//	fade:at=2s,dur=300ms,db=10         10 dB extra path loss on all links
//	noise:at=2s,dur=300ms,db=15        noise floor jumps +15 dB
//	rpcloss:p=0.3                      30% of control-plane calls vanish
//	rpcdelay:d=5ms,at=1s,dur=500ms     control-plane RTT +5 ms in a window
//	rpcpartition:at=1s,dur=300ms       control plane unreachable for 300 ms
//	rpcrestart:at=1s,dur=300ms         control plane crashes, recovers at 1.3 s
//
// Windowed processes accept "every=" to recur (the window re-opens each
// period until the run ends). The rpc* kinds drive the mapsvc control-plane
// transport and are only legal in a -rpc-faults spec alongside -comap-remote.
package faults

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Kind names a fault process.
type Kind string

// The supported fault processes.
const (
	LocLoss  Kind = "locloss"  // location reports dropped with probability p
	LocDelay Kind = "locdelay" // location reports commit d late
	Outage   Kind = "outage"   // a node's fixes freeze (ages accumulate)
	Bias     Kind = "bias"     // reports shift by m meters (random direction)
	Churn    Kind = "churn"    // a station leaves and later re-joins
	Fade     Kind = "fade"     // burst fading: db extra path loss, all links
	Noise    Kind = "noise"    // noise floor jumps by db

	// The RPC fault classes target the CO-MAP control-plane transport (the
	// mapsvc client/server boundary) rather than the location pipeline.
	// They are global — the control plane serves every station — so node=
	// is rejected.

	// RPCLoss silently drops control-plane requests with probability p; the
	// caller's per-call deadline is the only way out.
	RPCLoss Kind = "rpcloss"
	// RPCDelay adds d of round-trip latency to every control-plane call.
	RPCDelay Kind = "rpcdelay"
	// RPCPartition black-holes the control plane for the window (requests
	// vanish like rpcloss p=1, but as a window state, not per-call draws).
	RPCPartition Kind = "rpcpartition"
	// RPCRestart crashes the control-plane service at the window open (calls
	// fail fast, in-memory state is lost) and recovers it — snapshot + WAL
	// replay — at the window close.
	RPCRestart Kind = "rpcrestart"
)

// IsRPC reports whether the kind targets the control-plane transport.
func (k Kind) IsRPC() bool {
	switch k {
	case RPCLoss, RPCDelay, RPCPartition, RPCRestart:
		return true
	}
	return false
}

// Process is one parsed fault process.
type Process struct {
	Kind Kind
	// Node is the targeted station; HasNode is false when the process
	// applies to every station (allowed for locloss/locdelay/bias).
	Node    uint16
	HasNode bool
	// At is the window start; Dur its length (0 = the whole run, only legal
	// for locloss/locdelay); Every re-opens the window each period.
	At, Dur, Every time.Duration
	// P is the loss probability (locloss), D the commit latency (locdelay),
	// M the bias magnitude in meters (bias), DB the attenuation or
	// noise-floor jump in dB (fade/noise).
	P  float64
	D  time.Duration
	M  float64
	DB float64
}

// windowed reports whether the process has a bounded activation window.
func (p Process) windowed() bool { return p.Dur > 0 }

// Spec is a parsed fault specification.
type Spec struct {
	raw   string
	Procs []Process
}

// String returns the original spec text (for reports and reproduction).
func (s *Spec) String() string {
	if s == nil {
		return ""
	}
	return s.raw
}

// HasRPC reports whether any process targets the control-plane transport.
func (s *Spec) HasRPC() bool {
	if s == nil {
		return false
	}
	for _, p := range s.Procs {
		if p.Kind.IsRPC() {
			return true
		}
	}
	return false
}

// HasNonRPC reports whether any process targets the location/channel planes.
func (s *Spec) HasNonRPC() bool {
	if s == nil {
		return false
	}
	for _, p := range s.Procs {
		if !p.Kind.IsRPC() {
			return true
		}
	}
	return false
}

// Merge combines two specs into one injector input, appending b's processes
// after a's so a's per-process RNG stream names ("faults.<idx>.<kind>") are
// unchanged. When either side is nil the other is returned as-is (pointer
// identity preserved, so callers comparing against the original spec — e.g.
// report blocks — see no difference).
func Merge(a, b *Spec) *Spec {
	if b == nil {
		return a
	}
	if a == nil {
		return b
	}
	m := &Spec{raw: a.raw + ";" + b.raw}
	m.Procs = append(append([]Process{}, a.Procs...), b.Procs...)
	return m
}

// Parse parses and validates a fault spec. An empty string yields a nil
// Spec (no faults).
func Parse(text string) (*Spec, error) {
	trimmed := strings.TrimSpace(text)
	if trimmed == "" {
		return nil, nil
	}
	spec := &Spec{raw: trimmed}
	for _, part := range strings.Split(trimmed, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		p, err := parseProcess(part)
		if err != nil {
			return nil, fmt.Errorf("faults: %q: %w", part, err)
		}
		spec.Procs = append(spec.Procs, p)
	}
	if len(spec.Procs) == 0 {
		return nil, fmt.Errorf("faults: spec %q contains no processes", trimmed)
	}
	return spec, nil
}

func parseProcess(text string) (Process, error) {
	kindStr, params, _ := strings.Cut(text, ":")
	p := Process{Kind: Kind(strings.TrimSpace(kindStr))}
	switch p.Kind {
	case LocLoss, LocDelay, Outage, Bias, Churn, Fade, Noise,
		RPCLoss, RPCDelay, RPCPartition, RPCRestart:
	default:
		return p, fmt.Errorf("unknown fault kind %q (want one of %s)", p.Kind, kindList())
	}
	if params != "" {
		for _, kv := range strings.Split(params, ",") {
			key, val, found := strings.Cut(strings.TrimSpace(kv), "=")
			if !found || val == "" {
				return p, fmt.Errorf("malformed parameter %q (want key=value)", kv)
			}
			if err := p.setParam(strings.TrimSpace(key), strings.TrimSpace(val)); err != nil {
				return p, err
			}
		}
	}
	return p, p.validate()
}

func kindList() string {
	kinds := []string{string(LocLoss), string(LocDelay), string(Outage), string(Bias), string(Churn), string(Fade), string(Noise),
		string(RPCLoss), string(RPCDelay), string(RPCPartition), string(RPCRestart)}
	sort.Strings(kinds)
	return strings.Join(kinds, "/")
}

func (p *Process) setParam(key, val string) error {
	switch key {
	case "node":
		n, err := strconv.ParseUint(val, 10, 16)
		if err != nil {
			return fmt.Errorf("node=%q: %v", val, err)
		}
		p.Node = uint16(n)
		p.HasNode = true
	case "at":
		return parseDur(val, key, &p.At)
	case "dur":
		return parseDur(val, key, &p.Dur)
	case "every":
		return parseDur(val, key, &p.Every)
	case "d":
		return parseDur(val, key, &p.D)
	case "p":
		f, err := strconv.ParseFloat(val, 64)
		if err != nil {
			return fmt.Errorf("p=%q: %v", val, err)
		}
		p.P = f
	case "m":
		f, err := strconv.ParseFloat(val, 64)
		if err != nil {
			return fmt.Errorf("m=%q: %v", val, err)
		}
		p.M = f
	case "db":
		f, err := strconv.ParseFloat(val, 64)
		if err != nil {
			return fmt.Errorf("db=%q: %v", val, err)
		}
		p.DB = f
	default:
		return fmt.Errorf("unknown parameter %q for %s", key, p.Kind)
	}
	return nil
}

func parseDur(val, key string, into *time.Duration) error {
	d, err := time.ParseDuration(val)
	if err != nil {
		return fmt.Errorf("%s=%q: %v", key, val, err)
	}
	if d < 0 {
		return fmt.Errorf("%s=%q: must not be negative", key, val)
	}
	*into = d
	return nil
}

func (p *Process) validate() error {
	switch p.Kind {
	case LocLoss:
		if p.P <= 0 || p.P > 1 {
			return fmt.Errorf("locloss needs p in (0,1], got %v", p.P)
		}
	case LocDelay:
		if p.D <= 0 {
			return fmt.Errorf("locdelay needs d > 0, got %v", p.D)
		}
	case Outage, Churn:
		if !p.HasNode {
			return fmt.Errorf("%s needs node=", p.Kind)
		}
		if !p.windowed() {
			return fmt.Errorf("%s needs dur > 0", p.Kind)
		}
	case Bias:
		if p.M <= 0 {
			return fmt.Errorf("bias needs m > 0, got %v", p.M)
		}
		if !p.windowed() {
			return fmt.Errorf("bias needs dur > 0")
		}
	case Fade:
		if p.DB <= 0 {
			return fmt.Errorf("fade needs db > 0, got %v", p.DB)
		}
		if !p.windowed() {
			return fmt.Errorf("fade needs dur > 0")
		}
	case Noise:
		if p.DB == 0 {
			return fmt.Errorf("noise needs db != 0")
		}
		if !p.windowed() {
			return fmt.Errorf("noise needs dur > 0")
		}
	case RPCLoss:
		if p.P <= 0 || p.P > 1 {
			return fmt.Errorf("rpcloss needs p in (0,1], got %v", p.P)
		}
	case RPCDelay:
		if p.D <= 0 {
			return fmt.Errorf("rpcdelay needs d > 0, got %v", p.D)
		}
	case RPCPartition, RPCRestart:
		if !p.windowed() {
			return fmt.Errorf("%s needs dur > 0", p.Kind)
		}
	}
	if p.Kind.IsRPC() && p.HasNode {
		return fmt.Errorf("%s is global (the control plane serves every station); node= is not allowed", p.Kind)
	}
	if p.Every > 0 && p.Every <= p.Dur {
		return fmt.Errorf("every=%v must exceed dur=%v (windows would overlap)", p.Every, p.Dur)
	}
	return nil
}
