// Package goldenscn is the shared registry of golden fixture scenarios:
// the fixed (topology, options) runs whose reports — and, since the audit
// plane, determinism ledgers — are pinned as checked-in goldens. The
// netsim golden suites and cmd/comap-audit (verify/bisect re-run scenarios
// by name) both resolve scenarios here, so a ledger's manifest scenario
// name is always reproducible from the binary alone.
package goldenscn

import (
	"time"

	"repro/internal/bianchi"
	"repro/internal/faults"
	"repro/internal/netsim"
	"repro/internal/topology"
)

// Scenario is one fixed golden run.
type Scenario struct {
	Name string
	Top  topology.Topology
	Opts netsim.Options
}

// All returns the golden fixture scenarios. The chh role string (one
// contender, two hidden terminals) is the same fixture the trace analyzer's
// goldens are built on.
func All() []Scenario {
	chh := topology.HTRoles([]topology.Role{
		topology.RoleContender, topology.RoleHidden, topology.RoleHidden,
	})

	dcf := netsim.NS2Options()
	dcf.Protocol = netsim.ProtocolDCF
	dcf.Seed = 7
	dcf.Duration = time.Second

	cm := netsim.NS2Options()
	cm.Protocol = netsim.ProtocolComap
	base := bianchi.FromPHY(cm.PHY, cm.PHY.LowestRate())
	cm.AdaptTable = bianchi.NewAdaptationTable(base, 5, 8, nil, nil)
	cm.Seed = 7
	cm.Duration = time.Second

	spec, err := faults.Parse("locloss:p=0.3;outage:node=2,at=300ms,dur=200ms")
	if err != nil {
		panic(err)
	}
	faulted := cm
	faulted.Faults = spec

	et := netsim.TestbedOptions()
	et.Protocol = netsim.ProtocolComap
	et.Seed = 11
	et.Duration = time.Second

	return []Scenario{
		{Name: "chh-dcf", Top: chh, Opts: dcf},
		{Name: "chh-comap", Top: chh, Opts: cm},
		{Name: "chh-comap-faulted", Top: chh, Opts: faulted},
		{Name: "et30-comap", Top: topology.ETSweep(30), Opts: et},
	}
}

// Get resolves a scenario by name.
func Get(name string) (Scenario, bool) {
	for _, sc := range All() {
		if sc.Name == name {
			return sc, true
		}
	}
	return Scenario{}, false
}

// Names lists the registered scenario names in order.
func Names() []string {
	all := All()
	out := make([]string, len(all))
	for i, sc := range all {
		out[i] = sc.Name
	}
	return out
}
