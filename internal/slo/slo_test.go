package slo

import (
	"sync"
	"testing"
	"time"
)

// clock is a settable test clock.
type clock struct{ at time.Duration }

func (c *clock) now() time.Duration { return c.at }

func find(t *testing.T, st Status, name string) EndpointStatus {
	t.Helper()
	for _, ep := range st.Endpoints {
		if ep.Endpoint == name {
			return ep
		}
	}
	t.Fatalf("endpoint %q missing from status %+v", name, st)
	return EndpointStatus{}
}

func TestQuantilesConservativeAndMaxExact(t *testing.T) {
	c := &clock{}
	tr := NewTracker(c.now, Objective{Endpoint: "verdict", Latency: 5 * time.Millisecond, Target: 0.999, Window: time.Second})
	// 99 fast requests and one slow outlier: p50/p90 must bound the fast
	// cohort from above (never under-report), p999 and max must see the
	// outlier exactly.
	for i := 0; i < 99; i++ {
		tr.Observe("verdict", 100*time.Microsecond, true)
	}
	outlier := 42 * time.Millisecond
	tr.Observe("verdict", outlier, false)

	ep := find(t, tr.Status(), "verdict")
	if ep.Requests != 100 {
		t.Fatalf("requests = %d, want 100", ep.Requests)
	}
	if ep.P50Ms < 0.1 {
		t.Errorf("p50 %.4fms under-reports the 0.1ms cohort", ep.P50Ms)
	}
	// One geometric bucket is a factor of 2^(1/8) ≈ 1.09 wide; the
	// conservative bound stays within one bucket of the true value.
	if ep.P50Ms > 0.1*1.1 {
		t.Errorf("p50 %.4fms more than one bucket above the 0.1ms cohort", ep.P50Ms)
	}
	if want := outlier.Seconds() * 1e3; ep.MaxMs != want {
		t.Errorf("max %.4fms, want exact %.4fms", ep.MaxMs, want)
	}
	if ep.P999Ms != ep.MaxMs {
		t.Errorf("p999 %.4fms should hit the exact max %.4fms at 100 samples", ep.P999Ms, ep.MaxMs)
	}
}

func TestErrorsAndSlowSpendBudget(t *testing.T) {
	c := &clock{}
	tr := NewTracker(c.now, Objective{Endpoint: "ingest", Latency: time.Millisecond, Target: 0.99, Window: time.Second})
	// 1% budget: 98 good + 1 error + 1 slow = 2% bad, budget overspent.
	for i := 0; i < 98; i++ {
		tr.Observe("ingest", 10*time.Microsecond, true)
	}
	tr.Observe("ingest", 10*time.Microsecond, false) // error
	tr.Observe("ingest", 20*time.Millisecond, true)  // slow: ok but over objective
	st := tr.Status()
	ep := find(t, st, "ingest")
	if ep.Errors != 1 || ep.Slow != 1 {
		t.Fatalf("errors=%d slow=%d, want 1 and 1", ep.Errors, ep.Slow)
	}
	if ep.GoodFraction != 0.98 {
		t.Errorf("good fraction %.4f, want 0.98", ep.GoodFraction)
	}
	if ep.BudgetRemaining >= 0 {
		t.Errorf("budget remaining %.3f, want negative (2%% bad against a 1%% budget)", ep.BudgetRemaining)
	}
	if st.Met() {
		t.Error("Met() true with an overspent endpoint")
	}
}

func TestBudgetWithinObjective(t *testing.T) {
	c := &clock{}
	tr := NewTracker(c.now, Objective{Endpoint: "verdict", Latency: 5 * time.Millisecond, Target: 0.99, Window: time.Second})
	for i := 0; i < 1000; i++ {
		tr.Observe("verdict", 50*time.Microsecond, true)
	}
	tr.Observe("verdict", 50*time.Microsecond, false) // ~0.1% bad of 1% budget
	st := tr.Status()
	ep := find(t, st, "verdict")
	if ep.BudgetRemaining <= 0.8 {
		t.Errorf("budget remaining %.3f, want ~0.9 (a tenth of the budget spent)", ep.BudgetRemaining)
	}
	if !st.Met() {
		t.Error("Met() false inside the objective")
	}
}

func TestBurnRateAgesOut(t *testing.T) {
	c := &clock{}
	tr := NewTracker(c.now, Objective{Endpoint: "verdict", Latency: 5 * time.Millisecond, Target: 0.9, Window: time.Second})
	// A burst of failures inside the window burns at 10x (100% bad over a
	// 10% budget).
	for i := 0; i < 10; i++ {
		tr.Observe("verdict", time.Millisecond, false)
	}
	if br := find(t, tr.Status(), "verdict").BurnRate; br < 9.9 {
		t.Fatalf("burn rate %.2f right after an all-bad burst, want ~10", br)
	}
	// Two windows later the burst has aged out of the trailing window; the
	// whole-run budget stays spent.
	c.at = 2 * time.Second
	ep := find(t, tr.Status(), "verdict")
	if ep.BurnRate != 0 {
		t.Errorf("burn rate %.2f two windows after the burst, want 0", ep.BurnRate)
	}
	if ep.BudgetRemaining >= 0 {
		t.Errorf("budget remaining %.3f, want still overspent (whole-run)", ep.BudgetRemaining)
	}
}

func TestUnknownEndpointAdopted(t *testing.T) {
	c := &clock{}
	tr := NewTracker(c.now) // defaults
	tr.Observe("exotic", 10*time.Microsecond, true)
	ep := find(t, tr.Status(), "exotic")
	if ep.Requests != 1 {
		t.Fatalf("adopted endpoint requests = %d, want 1", ep.Requests)
	}
	if ep.ObjectiveLatencyMs != 5 {
		t.Errorf("adopted objective latency %.1fms, want the 5ms default", ep.ObjectiveLatencyMs)
	}
}

func TestNilTrackerSafe(t *testing.T) {
	var tr *Tracker
	tr.Observe("verdict", time.Millisecond, true) // must not panic
	if st := tr.Status(); len(st.Endpoints) != 0 {
		t.Fatalf("nil tracker status has %d endpoints", len(st.Endpoints))
	}
}

func TestConcurrentObserve(t *testing.T) {
	c := &clock{}
	tr := NewTracker(c.now)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				tr.Observe("verdict", time.Duration(i%500)*time.Microsecond, i%100 != 0)
				if i%100 == 0 {
					_ = tr.Status()
				}
			}
		}(w)
	}
	wg.Wait()
	if got := find(t, tr.Status(), "verdict").Requests; got != 8000 {
		t.Fatalf("concurrent observations lost: %d, want 8000", got)
	}
}
