// Package slo tracks service-level objectives for the CO-MAP control
// plane: per-endpoint latency objectives with long-tail percentiles,
// error budgets and burn rates. One Tracker watches every RPC endpoint
// (verdict/ingest/invalidate); the simulator feeds it attempt outcomes on
// the virtual clock (so SLO reports are bit-reproducible), and comap-mapd
// feeds it wall-clock handler latencies.
//
// Memory is bounded: latencies land in a fixed geometric-bucket histogram
// (8 buckets per octave from 1µs to ~68s) rather than a raw sample log,
// so the tracker is safe to leave on for the lifetime of a daemon. All
// methods are safe for concurrent use.
package slo

import (
	"math"
	"sort"
	"sync"
	"time"
)

// Objective is one endpoint's service-level objective: at least Target of
// requests answer successfully within Latency, judged over the run for the
// error budget and over a trailing Window for the burn rate.
type Objective struct {
	// Endpoint names the RPC operation ("verdict", "ingest", ...).
	Endpoint string `json:"endpoint"`
	// Latency is the per-request latency objective.
	Latency time.Duration `json:"latency_ns"`
	// Target is the goal fraction of good requests, e.g. 0.999.
	Target float64 `json:"target"`
	// Window is the trailing burn-rate window.
	Window time.Duration `json:"window_ns"`
}

// DefaultObjectives returns the control-plane defaults: every endpoint
// must answer within 5ms (a quarter of the client's 20ms call deadline),
// 99.9% good, with a one-second burn-rate window.
func DefaultObjectives() []Objective {
	obj := func(ep string) Objective {
		return Objective{Endpoint: ep, Latency: 5 * time.Millisecond, Target: 0.999, Window: time.Second}
	}
	return []Objective{obj("verdict"), obj("ingest"), obj("invalidate_node"), obj("invalidate_all")}
}

// Histogram geometry: 8 buckets per octave starting at 1µs. 208 buckets
// reach 2^26 µs ≈ 67s; anything slower clamps into the last bucket (its
// exact value still drives Max).
const (
	bucketsPerOctave = 8
	numBuckets       = 26 * bucketsPerOctave
	minLatency       = time.Microsecond
)

// bucketOf maps a latency to its histogram bucket.
func bucketOf(d time.Duration) int {
	if d <= minLatency {
		return 0
	}
	b := int(math.Floor(math.Log2(float64(d)/float64(minLatency)) * bucketsPerOctave))
	if b < 0 {
		return 0
	}
	if b >= numBuckets {
		return numBuckets - 1
	}
	return b
}

// bucketHi is the inclusive upper bound of a bucket — percentiles report
// it, so they are conservative (never under-report a tail).
func bucketHi(b int) time.Duration {
	return time.Duration(float64(minLatency) * math.Exp2(float64(b+1)/bucketsPerOctave))
}

// burnSlots subdivide the burn-rate window; expired slots age out as the
// clock advances across them.
const burnSlots = 16

type burnSlot struct {
	epoch     int64
	good, bad int64
}

// endpoint is one tracked endpoint's state.
type endpoint struct {
	obj     Objective
	total   int64
	errors  int64 // failed requests
	slow    int64 // succeeded but over the latency objective
	maxLat  time.Duration
	buckets [numBuckets]int64
	slots   [burnSlots]burnSlot
}

// Tracker tracks objectives for a set of endpoints. The clock is injected:
// the simulator passes the engine's virtual clock, comap-mapd a monotonic
// wall clock.
type Tracker struct {
	now func() time.Duration
	def Objective

	mu   sync.Mutex
	eps  map[string]*endpoint
	keys []string // sorted endpoint names, for deterministic snapshots
}

// NewTracker builds a tracker over the given clock and objectives. An
// endpoint observed without a declared objective is adopted on first use
// with the first objective's latency/target/window as the default (or
// DefaultObjectives' verdict entry when none were given).
func NewTracker(now func() time.Duration, objectives ...Objective) *Tracker {
	t := &Tracker{now: now, eps: make(map[string]*endpoint)}
	if len(objectives) == 0 {
		objectives = DefaultObjectives()
	}
	t.def = objectives[0]
	for _, o := range objectives {
		t.addLocked(o)
	}
	return t
}

func (t *Tracker) addLocked(o Objective) *endpoint {
	if o.Latency <= 0 {
		o.Latency = t.def.Latency
	}
	if o.Target <= 0 || o.Target >= 1 {
		o.Target = t.def.Target
	}
	if o.Window <= 0 {
		o.Window = t.def.Window
	}
	ep := &endpoint{obj: o}
	t.eps[o.Endpoint] = ep
	t.keys = append(t.keys, o.Endpoint)
	sort.Strings(t.keys)
	return ep
}

// Observe records one request outcome: whether it succeeded and how long
// it took. A nil tracker records nothing.
func (t *Tracker) Observe(name string, latency time.Duration, ok bool) {
	if t == nil {
		return
	}
	now := t.now()
	t.mu.Lock()
	ep := t.eps[name]
	if ep == nil {
		o := t.def
		o.Endpoint = name
		ep = t.addLocked(o)
	}
	ep.total++
	good := ok
	if !ok {
		ep.errors++
	} else if latency > ep.obj.Latency {
		ep.slow++
		good = false
	}
	if latency > ep.maxLat {
		ep.maxLat = latency
	}
	ep.buckets[bucketOf(latency)]++
	slotW := ep.obj.Window / burnSlots
	epoch := int64(now / slotW)
	s := &ep.slots[epoch%burnSlots]
	if s.epoch != epoch {
		s.epoch, s.good, s.bad = epoch, 0, 0
	}
	if good {
		s.good++
	} else {
		s.bad++
	}
	t.mu.Unlock()
}

// quantileLocked returns the conservative q-th latency percentile: the
// upper bound of the bucket holding the nearest-rank sample (the exact
// max for q hitting the last sample).
func (ep *endpoint) quantileLocked(q float64) time.Duration {
	if ep.total == 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(ep.total)))
	if rank < 1 {
		rank = 1
	}
	if rank >= ep.total {
		return ep.maxLat
	}
	var seen int64
	for b, n := range ep.buckets {
		seen += n
		if seen >= rank {
			hi := bucketHi(b)
			if hi > ep.maxLat {
				return ep.maxLat
			}
			return hi
		}
	}
	return ep.maxLat
}

// EndpointStatus is one endpoint's SLO snapshot.
type EndpointStatus struct {
	Endpoint           string  `json:"endpoint"`
	ObjectiveLatencyMs float64 `json:"objective_latency_ms"`
	Target             float64 `json:"target"`
	WindowSec          float64 `json:"window_sec"`

	Requests int64 `json:"requests"`
	// Errors are failed requests; Slow succeeded but missed the latency
	// objective. Both spend error budget.
	Errors int64 `json:"errors"`
	Slow   int64 `json:"slow"`
	// GoodFraction is the delivered objective so far (1 with no traffic).
	GoodFraction float64 `json:"good_fraction"`

	// Latency tail over the whole run, conservative (bucket upper bounds).
	P50Ms  float64 `json:"p50_ms"`
	P90Ms  float64 `json:"p90_ms"`
	P99Ms  float64 `json:"p99_ms"`
	P999Ms float64 `json:"p999_ms"`
	MaxMs  float64 `json:"max_ms"`

	// BudgetRemaining is the unspent error budget: 1 untouched, 0
	// exhausted, negative overspent.
	BudgetRemaining float64 `json:"budget_remaining"`
	// BurnRate is the trailing-window bad-request rate over the allowed
	// rate: 1 spends exactly the budget, >1 burns it faster.
	BurnRate float64 `json:"burn_rate"`
}

// Status is a full tracker snapshot, endpoints in name order.
type Status struct {
	Endpoints []EndpointStatus `json:"endpoints"`
}

// Met reports whether every endpoint is currently inside its objective.
func (s Status) Met() bool {
	for _, ep := range s.Endpoints {
		if ep.BudgetRemaining < 0 {
			return false
		}
	}
	return true
}

// Status snapshots every endpoint. Safe for concurrent use; deterministic
// given the same observation history and clock.
func (t *Tracker) Status() Status {
	if t == nil {
		return Status{}
	}
	now := t.now()
	t.mu.Lock()
	defer t.mu.Unlock()
	st := Status{Endpoints: make([]EndpointStatus, 0, len(t.keys))}
	ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
	for _, name := range t.keys {
		ep := t.eps[name]
		es := EndpointStatus{
			Endpoint:           name,
			ObjectiveLatencyMs: ms(ep.obj.Latency),
			Target:             ep.obj.Target,
			WindowSec:          ep.obj.Window.Seconds(),
			Requests:           ep.total,
			Errors:             ep.errors,
			Slow:               ep.slow,
			GoodFraction:       1,
			BudgetRemaining:    1,
			P50Ms:              ms(ep.quantileLocked(0.50)),
			P90Ms:              ms(ep.quantileLocked(0.90)),
			P99Ms:              ms(ep.quantileLocked(0.99)),
			P999Ms:             ms(ep.quantileLocked(0.999)),
			MaxMs:              ms(ep.maxLat),
		}
		if ep.total > 0 {
			bad := ep.errors + ep.slow
			es.GoodFraction = float64(ep.total-bad) / float64(ep.total)
			budget := 1 - ep.obj.Target
			es.BudgetRemaining = 1 - (float64(bad)/float64(ep.total))/budget
		}
		// Burn rate over the live trailing-window slots.
		slotW := ep.obj.Window / burnSlots
		epoch := int64(now / slotW)
		var wGood, wBad int64
		for _, s := range ep.slots {
			if s.epoch > epoch-burnSlots && s.epoch <= epoch {
				wGood += s.good
				wBad += s.bad
			}
		}
		if wGood+wBad > 0 {
			es.BurnRate = (float64(wBad) / float64(wGood+wBad)) / (1 - ep.obj.Target)
		}
		st.Endpoints = append(st.Endpoints, es)
	}
	return st
}
