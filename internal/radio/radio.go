// Package radio implements the radio propagation and packet-reception models
// that CO-MAP is built on (paper §IV-B):
//
//   - the log-normal shadowing propagation model (eq. 1),
//   - the pairwise packet reception rate under one interferer (eqs. 2–3),
//   - the probability that a sender's signal falls below the carrier-sense
//     threshold at a neighbor (eq. 4).
//
// All powers are in dBm and all distances in meters unless stated otherwise.
package radio

import (
	"errors"
	"math"
)

// DefaultNoiseFloorDBm is the typical noise floor in 2.4 GHz WiFi networks
// used throughout the paper.
const DefaultNoiseFloorDBm = -95.0

// SpeedOfLight in meters per second.
const speedOfLight = 299_792_458.0

// DBmToMilliwatts converts a power in dBm to milliwatts.
func DBmToMilliwatts(dbm float64) float64 { return math.Pow(10, dbm/10) }

// MilliwattsToDBm converts a power in milliwatts to dBm. Zero or negative
// power maps to -infinity dBm.
func MilliwattsToDBm(mw float64) float64 {
	if mw <= 0 {
		return math.Inf(-1)
	}
	return 10 * math.Log10(mw)
}

// CombineDBm returns the dBm value of the sum of the given powers
// (powers add in the linear milliwatt domain, not in dB).
func CombineDBm(dbms ...float64) float64 {
	sum := 0.0
	for _, p := range dbms {
		if !math.IsInf(p, -1) {
			sum += DBmToMilliwatts(p)
		}
	}
	return MilliwattsToDBm(sum)
}

// Phi is the cumulative distribution function of the standard normal
// distribution.
func Phi(x float64) float64 { return 0.5 * (1 + math.Erf(x/math.Sqrt2)) }

// PhiInv is the inverse standard normal CDF (quantile function), computed by
// bisection on Phi. It is used to derive range cut-offs from probability
// thresholds; accuracy is ~1e-9 which is far below any physical precision.
func PhiInv(p float64) (float64, error) {
	if p <= 0 || p >= 1 {
		return 0, errors.New("radio: PhiInv argument must be in (0, 1)")
	}
	lo, hi := -40.0, 40.0
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		if Phi(mid) < p {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2, nil
}

// FriisRefLossDB returns the free-space path loss in dB at reference distance
// d0 (meters) for carrier frequency freqHz, per the Friis equation with unity
// antenna gains. The paper obtains the reference power P(d0) either by field
// measurement or from this equation.
func FriisRefLossDB(freqHz, d0 float64) float64 {
	if freqHz <= 0 || d0 <= 0 {
		panic("radio: frequency and reference distance must be positive")
	}
	lambda := speedOfLight / freqHz
	return 20 * math.Log10(4*math.Pi*d0/lambda)
}

// LogNormal is the log-normal shadowing propagation model of eq. (1):
//
//	P(d) = P(d0) - 10 α log10(d/d0) + Xσ
//
// where Xσ is a zero-mean Gaussian with standard deviation SigmaDB modelling
// the path-loss variation caused by artifacts in the environment.
type LogNormal struct {
	// RefDistance d0 in meters (typically 1 m).
	RefDistance float64
	// RefLossDB is the path loss at RefDistance in dB, so that the received
	// power at d0 is txPower - RefLossDB.
	RefLossDB float64
	// Alpha is the path loss exponent (2.9 in the paper's testbed, 3.3 in the
	// NS-2 floor).
	Alpha float64
	// SigmaDB is the shadowing standard deviation (4 dB testbed, 5 dB NS-2).
	SigmaDB float64
}

// NewLogNormal2400 returns a log-normal model with the free-space Friis
// reference loss at 1 m for the 2.4 GHz band and the given path-loss exponent
// and shadowing deviation.
func NewLogNormal2400(alpha, sigmaDB float64) LogNormal {
	return LogNormal{
		RefDistance: 1,
		RefLossDB:   FriisRefLossDB(2.4e9, 1),
		Alpha:       alpha,
		SigmaDB:     sigmaDB,
	}
}

// PathLossDB returns the mean path loss in dB at distance d. Distances below
// the reference distance are clamped to it (the model is not defined closer
// than d0).
func (m LogNormal) PathLossDB(d float64) float64 {
	if d < m.RefDistance {
		d = m.RefDistance
	}
	return m.RefLossDB + 10*m.Alpha*math.Log10(d/m.RefDistance)
}

// MeanReceivedDBm returns the mean received power at distance d for the given
// transmit power (no shadowing sample).
func (m LogNormal) MeanReceivedDBm(txDBm, d float64) float64 {
	return txDBm - m.PathLossDB(d)
}

// Gaussian abstracts the normal-variate source so that callers can supply a
// seeded *rand.Rand (which has NormFloat64) or a deterministic stub in tests.
type Gaussian interface {
	NormFloat64() float64
}

// SampleReceivedDBm returns one shadowing-affected received power draw at
// distance d: mean + σ·N(0,1).
func (m LogNormal) SampleReceivedDBm(txDBm, d float64, g Gaussian) float64 {
	return m.MeanReceivedDBm(txDBm, d) + m.SigmaDB*g.NormFloat64()
}

// PRR implements eq. (3): the probability that a receiver decodes a packet
// when the useful sender is d meters away and a single equal-power interferer
// is r meters away, given the SIR decoding threshold tSIRdB:
//
//	PRR = 1 - Φ( (T_SIR + 10 α log10(d/r)) / (√2 σ) )
//
// Both the useful and the interfering signal carry independent shadowing, so
// the composed variable has standard deviation √2·σ.
func (m LogNormal) PRR(tSIRdB, d, r float64) float64 {
	if d < m.RefDistance {
		d = m.RefDistance
	}
	if r < m.RefDistance {
		r = m.RefDistance
	}
	num := tSIRdB + 10*m.Alpha*math.Log10(d/r)
	return 1 - Phi(num/(math.Sqrt2*m.SigmaDB))
}

// ProbBelowCS implements eq. (4): the probability that the signal of a sender
// transmitting at txDBm is received below the carrier-sense threshold tcsDBm
// by a neighbor r meters away:
//
//	Pr{Pr < Tcs} = Φ( (Tcs - P(d0) + 10 α log10(r/d0)) / σ )
//
// This probability is monotonically increasing in r; a node is treated as a
// hidden terminal when it exceeds HiddenTerminalCSMissProb.
func (m LogNormal) ProbBelowCS(tcsDBm, txDBm, r float64) float64 {
	if r < m.RefDistance {
		r = m.RefDistance
	}
	pd0 := txDBm - m.RefLossDB
	num := tcsDBm - pd0 + 10*m.Alpha*math.Log10(r/m.RefDistance)
	return Phi(num / m.SigmaDB)
}

// HiddenTerminalCSMissProb is the paper's cut-off: a neighbor is treated as
// hidden when the probability that it misses the sender's signal by carrier
// sense exceeds 90%.
const HiddenTerminalCSMissProb = 0.9

// MeanRangeFor returns the distance at which the mean received power equals
// thresholdDBm for the given transmit power. It is the deterministic
// (no-shadowing) communication/CS/interference range.
func (m LogNormal) MeanRangeFor(txDBm, thresholdDBm float64) float64 {
	// txDBm - RefLossDB - 10α log10(d/d0) = threshold
	exp := (txDBm - m.RefLossDB - thresholdDBm) / (10 * m.Alpha)
	d := m.RefDistance * math.Pow(10, exp)
	if d < m.RefDistance {
		return m.RefDistance
	}
	return d
}

// CSMissRangeFor returns the distance beyond which a neighbor misses the
// sender's signal by carrier sense with probability at least missProb
// (inverting eq. 4 for r).
func (m LogNormal) CSMissRangeFor(tcsDBm, txDBm, missProb float64) (float64, error) {
	z, err := PhiInv(missProb)
	if err != nil {
		return 0, err
	}
	// z*σ = Tcs - P(d0) + 10α log10(r/d0)
	pd0 := txDBm - m.RefLossDB
	exp := (z*m.SigmaDB - tcsDBm + pd0) / (10 * m.Alpha)
	r := m.RefDistance * math.Pow(10, exp)
	if r < m.RefDistance {
		r = m.RefDistance
	}
	return r, nil
}

// SINRdB computes the signal-to-interference-plus-noise ratio in dB for a
// signal power, a set of interferer powers and a noise floor, all in dBm.
func SINRdB(signalDBm, noiseFloorDBm float64, interferersDBm ...float64) float64 {
	denom := DBmToMilliwatts(noiseFloorDBm)
	for _, p := range interferersDBm {
		if !math.IsInf(p, -1) {
			denom += DBmToMilliwatts(p)
		}
	}
	return signalDBm - MilliwattsToDBm(denom)
}
