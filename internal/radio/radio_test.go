package radio

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDBmConversionRoundTrip(t *testing.T) {
	tests := []struct {
		dbm float64
		mw  float64
	}{
		{0, 1},
		{10, 10},
		{20, 100}, // the paper's NS-2 TX power: 20 dBm = 100 mW
		{-30, 0.001},
	}
	for _, tt := range tests {
		if got := DBmToMilliwatts(tt.dbm); math.Abs(got-tt.mw) > 1e-9*tt.mw {
			t.Errorf("DBmToMilliwatts(%v) = %v, want %v", tt.dbm, got, tt.mw)
		}
		if got := MilliwattsToDBm(tt.mw); math.Abs(got-tt.dbm) > 1e-9 {
			t.Errorf("MilliwattsToDBm(%v) = %v, want %v", tt.mw, got, tt.dbm)
		}
	}
	if !math.IsInf(MilliwattsToDBm(0), -1) {
		t.Error("0 mW should be -inf dBm")
	}
}

func TestCombineDBm(t *testing.T) {
	// Two equal powers sum to +3.01 dB.
	got := CombineDBm(-50, -50)
	if math.Abs(got-(-50+10*math.Log10(2))) > 1e-9 {
		t.Errorf("CombineDBm(-50,-50) = %v", got)
	}
	// -inf contributes nothing.
	if got := CombineDBm(-60, math.Inf(-1)); math.Abs(got-(-60)) > 1e-9 {
		t.Errorf("CombineDBm with -inf = %v", got)
	}
	if !math.IsInf(CombineDBm(), -1) {
		t.Error("empty combine should be -inf")
	}
}

func TestPhi(t *testing.T) {
	tests := []struct {
		x, want float64
	}{
		{0, 0.5},
		{1.6449, 0.95},
		{-1.6449, 0.05},
		{1.2816, 0.9},
		{3, 0.99865},
	}
	for _, tt := range tests {
		if got := Phi(tt.x); math.Abs(got-tt.want) > 1e-4 {
			t.Errorf("Phi(%v) = %v, want %v", tt.x, got, tt.want)
		}
	}
}

func TestPhiInv(t *testing.T) {
	for _, p := range []float64{0.01, 0.1, 0.5, 0.9, 0.95, 0.999} {
		x, err := PhiInv(p)
		if err != nil {
			t.Fatalf("PhiInv(%v): %v", p, err)
		}
		if got := Phi(x); math.Abs(got-p) > 1e-9 {
			t.Errorf("Phi(PhiInv(%v)) = %v", p, got)
		}
	}
	for _, p := range []float64{0, 1, -0.5, 2} {
		if _, err := PhiInv(p); err == nil {
			t.Errorf("PhiInv(%v) should error", p)
		}
	}
}

func TestFriisRefLoss2400(t *testing.T) {
	// The classic 2.4 GHz free-space loss at 1 m is ~40.05 dB.
	got := FriisRefLossDB(2.4e9, 1)
	if math.Abs(got-40.05) > 0.05 {
		t.Errorf("FriisRefLossDB = %v, want ~40.05", got)
	}
}

func TestFriisPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on non-positive frequency")
		}
	}()
	FriisRefLossDB(0, 1)
}

func testbedModel() LogNormal { return NewLogNormal2400(2.9, 4) }

func TestPathLossMonotone(t *testing.T) {
	m := testbedModel()
	f := func(a, b uint16) bool {
		d1 := 1 + float64(a%5000)/10
		d2 := 1 + float64(b%5000)/10
		if d1 > d2 {
			d1, d2 = d2, d1
		}
		return m.PathLossDB(d1) <= m.PathLossDB(d2)+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPathLossClampsBelowRefDistance(t *testing.T) {
	m := testbedModel()
	if m.PathLossDB(0.01) != m.PathLossDB(1) {
		t.Error("path loss should clamp below d0")
	}
}

func TestMeanReceivedDBm(t *testing.T) {
	m := testbedModel()
	// At d0 the received power is tx - refLoss.
	if got := m.MeanReceivedDBm(0, 1); math.Abs(got-(-m.RefLossDB)) > 1e-12 {
		t.Errorf("at d0: %v", got)
	}
	// Every decade of distance costs 10*alpha dB.
	p10 := m.MeanReceivedDBm(0, 10)
	p100 := m.MeanReceivedDBm(0, 100)
	if math.Abs((p10-p100)-29) > 1e-9 {
		t.Errorf("decade loss = %v, want 29 dB", p10-p100)
	}
}

func TestSampleReceivedStatistics(t *testing.T) {
	m := testbedModel()
	rng := rand.New(rand.NewSource(42))
	const n = 20000
	var sum, sum2 float64
	for i := 0; i < n; i++ {
		p := m.SampleReceivedDBm(0, 20, rng)
		sum += p
		sum2 += p * p
	}
	mean := sum / n
	std := math.Sqrt(sum2/n - mean*mean)
	if math.Abs(mean-m.MeanReceivedDBm(0, 20)) > 0.15 {
		t.Errorf("sample mean %v, want %v", mean, m.MeanReceivedDBm(0, 20))
	}
	if math.Abs(std-4) > 0.15 {
		t.Errorf("sample std %v, want 4", std)
	}
}

func TestPRRBoundaries(t *testing.T) {
	m := testbedModel()
	// Interferer at the same distance as the sender with positive SIR
	// threshold: PRR < 0.5.
	if got := m.PRR(4, 10, 10); got >= 0.5 {
		t.Errorf("equal-distance PRR = %v, want < 0.5", got)
	}
	// Very far interferer: PRR -> 1.
	if got := m.PRR(4, 8, 1e6); got < 0.999 {
		t.Errorf("far-interferer PRR = %v, want ~1", got)
	}
	// Interferer on top of the receiver: PRR -> 0.
	if got := m.PRR(4, 100, 1); got > 0.01 {
		t.Errorf("close-interferer PRR = %v, want ~0", got)
	}
}

func TestPRRInRangeAndMonotoneInR(t *testing.T) {
	m := testbedModel()
	f := func(a, b uint16, dRaw uint8) bool {
		d := 1 + float64(dRaw)
		r1 := 1 + float64(a%2000)/4
		r2 := 1 + float64(b%2000)/4
		if r1 > r2 {
			r1, r2 = r2, r1
		}
		p1 := m.PRR(4, d, r1)
		p2 := m.PRR(4, d, r2)
		// Pushing the interferer away can only help.
		return p1 >= 0 && p2 <= 1 && p1 <= p2+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPRRMonotoneInThreshold(t *testing.T) {
	m := testbedModel()
	// A stricter (larger) SIR threshold can only reduce PRR.
	prev := 1.1
	for _, tsir := range []float64{0, 4, 10, 20} {
		p := m.PRR(tsir, 8, 30)
		if p > prev {
			t.Errorf("PRR increased with threshold: %v after %v", p, prev)
		}
		prev = p
	}
}

func TestPRRPaperScenario(t *testing.T) {
	// Paper Fig. 5: with C2 far from the link C11->AP1 the PRR is ~97%,
	// while C1 (near the receiver) gives ~0%. Reconstruct the spirit of this:
	// sender at 8 m, interferer at 30 m should give high PRR under the
	// testbed model; interferer at 4 m should kill the link.
	m := testbedModel()
	if p := m.PRR(4, 8, 30); p < 0.9 {
		t.Errorf("remote interferer PRR = %v, want > 0.9", p)
	}
	if p := m.PRR(4, 8, 4); p > 0.2 {
		t.Errorf("nearby interferer PRR = %v, want < 0.2", p)
	}
}

func TestProbBelowCSMonotoneInR(t *testing.T) {
	m := testbedModel()
	f := func(a, b uint16) bool {
		r1 := 1 + float64(a%4000)/10
		r2 := 1 + float64(b%4000)/10
		if r1 > r2 {
			r1, r2 = r2, r1
		}
		p1 := m.ProbBelowCS(-81, 0, r1)
		p2 := m.ProbBelowCS(-81, 0, r2)
		return p1 <= p2+1e-12 && p1 >= 0 && p2 <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestProbBelowCSAtMeanRange(t *testing.T) {
	m := testbedModel()
	// At the deterministic CS range the miss probability is exactly 50%.
	r := m.MeanRangeFor(0, -81)
	if p := m.ProbBelowCS(-81, 0, r); math.Abs(p-0.5) > 1e-9 {
		t.Errorf("ProbBelowCS at mean range = %v, want 0.5", p)
	}
}

func TestMeanRangeFor(t *testing.T) {
	m := testbedModel()
	r := m.MeanRangeFor(0, -81)
	// Inverting: mean received power at r must equal the threshold.
	if got := m.MeanReceivedDBm(0, r); math.Abs(got-(-81)) > 1e-9 {
		t.Errorf("power at range = %v, want -81", got)
	}
	// Threshold above P(d0) clamps to the reference distance.
	if got := m.MeanRangeFor(0, 0); got != m.RefDistance {
		t.Errorf("clamped range = %v", got)
	}
}

func TestCSMissRangeFor(t *testing.T) {
	m := testbedModel()
	r, err := m.CSMissRangeFor(-81, 0, HiddenTerminalCSMissProb)
	if err != nil {
		t.Fatal(err)
	}
	// By construction the miss probability at that distance is 90%.
	if p := m.ProbBelowCS(-81, 0, r); math.Abs(p-0.9) > 1e-6 {
		t.Errorf("miss prob at range = %v, want 0.9", p)
	}
	// The 90%-miss range lies beyond the deterministic range.
	if r <= m.MeanRangeFor(0, -81) {
		t.Errorf("90%% miss range %v should exceed mean range %v", r, m.MeanRangeFor(0, -81))
	}
	if _, err := m.CSMissRangeFor(-81, 0, 0); err == nil {
		t.Error("missProb=0 should error")
	}
}

func TestSINRdB(t *testing.T) {
	// No interferers: SINR = signal - noise.
	if got := SINRdB(-60, -95); math.Abs(got-35) > 1e-9 {
		t.Errorf("SINR = %v, want 35", got)
	}
	// One dominant interferer well above the noise floor: SINR ~ SIR.
	got := SINRdB(-60, -95, -70)
	if math.Abs(got-9.986) > 0.01 { // 10 dB minus tiny noise contribution
		t.Errorf("SINR = %v, want ~9.99", got)
	}
	// -inf interferers are ignored.
	if got := SINRdB(-60, -95, math.Inf(-1)); math.Abs(got-35) > 1e-9 {
		t.Errorf("SINR with -inf interferer = %v", got)
	}
}

func TestNS2ModelRanges(t *testing.T) {
	// With the paper's Table I parameters (alpha=3.3, sigma=5, tx=20 dBm,
	// Tcs=-80 dBm) the CS range must comfortably cover an AP-client cell but
	// not the whole 3-AP floor (~120 m across).
	m := NewLogNormal2400(3.3, 5)
	r := m.MeanRangeFor(20, -80)
	if r < 40 || r > 120 {
		t.Errorf("NS-2 CS range = %v m, want within [40, 120]", r)
	}
}
