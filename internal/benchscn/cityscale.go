package benchscn

import (
	"fmt"
	"math/rand"

	"repro/internal/netsim"
	"repro/internal/topology"
)

// cityScenario builds the city-scale benchmark at the given station count:
// a trace-driven mobility+churn run over the sharded channel, reporting the
// dispatch rate (events/s). Comparing events_per_sec across n = 100 / 300 /
// 1000 exposes the channel's scaling: with spatial sharding the per-event
// cost tracks the local neighborhood size, so the rate should fall far
// slower than the quadratic dense model would predict.
func cityScenario(n int, quick bool) Scenario {
	return Scenario{
		Name:  fmt.Sprintf("cityscale-n%d", n),
		Desc:  fmt.Sprintf("trace-driven %d-station city on the sharded channel", n),
		Quick: quick,
		Prepare: func(sc Scale) (func() (Metrics, error), error) {
			top, err := topology.CityScale(topology.DefaultCityConfig(n, 42))
			if err != nil {
				return nil, err
			}
			tr := topology.SynthesizeCityTrace(top, rand.New(rand.NewSource(42)), topology.CityTraceConfig{
				Duration: sc.ETDuration,
			})
			return func() (Metrics, error) {
				opts := netsim.CityOptions()
				opts.Seed = 42
				opts.Duration = sc.ETDuration
				net, err := netsim.Build(top, opts)
				if err != nil {
					return nil, err
				}
				if err := net.ScheduleLocTrace(tr); err != nil {
					return nil, err
				}
				net.Run()
				p := net.Progress()
				return Metrics{"events_per_sec": p.EventsPerSec}, nil
			}, nil
		},
	}
}

// CityScenarios returns the city-scale sweep, smallest first. The whole
// sweep is in the quick subset: the scaling claim (events/s across n) only
// means something when all three points come from the same artifact, and at
// quick scale even n=1000 finishes in seconds.
func CityScenarios() []Scenario {
	return []Scenario{
		cityScenario(100, true),
		cityScenario(300, true),
		cityScenario(1000, true),
	}
}
