// Package benchscn defines the canonical benchmark scenarios shared by the
// repository's `go test -bench` targets (bench_test.go) and the
// comap-bench perf observatory. Each scenario prepares once and then
// exposes a per-iteration body returning domain metrics (goodput in Mbps,
// CO-MAP gain in percent, simulator events/s) under the same unit-suffixed
// names the bench targets report with b.ReportMetric, so `go test -bench`
// output and BENCH_*.json artifacts stay comparable.
package benchscn

import (
	"fmt"
	"time"

	"repro/internal/audit"
	"repro/internal/bianchi"
	"repro/internal/experiments"
	"repro/internal/netsim"
	"repro/internal/phy"
	"repro/internal/prof"
	"repro/internal/topology"
)

// Metrics carries the domain metrics one iteration reports, keyed by
// unit-suffixed name (e.g. "far_Mbps", "gain_pct", "events_per_sec"). A nil
// map is allowed for pure hot-path scenarios.
type Metrics map[string]float64

// Scale sets the per-iteration cost of every scenario.
type Scale struct {
	// Fig scales the figure-regeneration scenarios (seeds per point,
	// simulated duration, Fig. 10 topology count).
	Fig experiments.Opts
	// ETDuration is the simulated time of the single-run exposed-terminal
	// scenarios (ablations, simulator-second).
	ETDuration time.Duration
}

// Default is the scale the `go test -bench` targets run at. Workers is
// pinned to 1: the observatory measures sequential hot-path cost, so ns/op
// and allocs/op stay comparable across baselines regardless of the host's
// core count (the parallel runner's scaling is validated separately).
func Default() Scale {
	return Scale{
		Fig:        experiments.Opts{Seeds: 1, Duration: 500 * time.Millisecond, Topologies: 2, Workers: 1},
		ETDuration: time.Second,
	}
}

// QuickScale is the reduced scale behind `comap-bench -quick` (CI smoke).
func QuickScale() Scale {
	return Scale{
		Fig:        experiments.Opts{Seeds: 1, Duration: 150 * time.Millisecond, Topologies: 1, Workers: 1},
		ETDuration: 250 * time.Millisecond,
	}
}

// Scenario is one named benchmark target.
type Scenario struct {
	// Name identifies the scenario in artifacts and -run filters.
	Name string
	// Desc is a one-line description for `comap-bench -list`.
	Desc string
	// Quick marks the scenario as part of the -quick CI smoke subset.
	Quick bool
	// Prepare builds per-scenario state once and returns the measured
	// per-iteration body.
	Prepare func(sc Scale) (func() (Metrics, error), error)
}

// etRun runs the 30 m exposed-terminal testbed once and returns aggregate
// goodput in Mbps.
func etRun(dur time.Duration, seed int64, mutate func(*netsim.Options)) (float64, error) {
	opts := netsim.TestbedOptions()
	opts.Protocol = netsim.ProtocolComap
	opts.Seed = seed
	opts.Duration = dur
	if mutate != nil {
		mutate(&opts)
	}
	res, err := netsim.RunScenario(topology.ETSweep(30), opts)
	if err != nil {
		return 0, err
	}
	return res.Total() / 1e6, nil
}

func ablation(quick bool, mutate func(*netsim.Options)) func(sc Scale) (func() (Metrics, error), error) {
	return func(sc Scale) (func() (Metrics, error), error) {
		return func() (Metrics, error) {
			g, err := etRun(sc.ETDuration, 7, mutate)
			if err != nil {
				return nil, err
			}
			return Metrics{"Mbps": g}, nil
		}, nil
	}
}

// AttributionRun executes one profiled exposed-terminal run at the given
// scale and returns the per-subsystem attribution. It is what comap-bench
// embeds as the artifact's attribution block: alongside the ns/op numbers it
// says where the dispatch loop's events and wall time went, so a regression
// can be localized to a subsystem without rerunning anything.
func AttributionRun(sc Scale) (prof.Attribution, error) {
	opts := netsim.TestbedOptions()
	opts.Protocol = netsim.ProtocolComap
	opts.Seed = 7
	opts.Duration = sc.ETDuration
	opts.Profile = &prof.Config{FlightEvents: -1}
	n, err := netsim.Build(topology.ETSweep(30), opts)
	if err != nil {
		return prof.Attribution{}, err
	}
	n.Run()
	return n.Prof.Attribution(), nil
}

// ReferenceManifest identifies the attribution reference run the same way a
// determinism ledger would: scenario name, seed, options fingerprint and
// topology hash (see internal/audit). comap-bench embeds it in BENCH_*.json
// artifacts, so a benchmark diff can tell "the code got slower" apart from
// "the reference scenario changed" without re-running anything.
func ReferenceManifest(sc Scale) audit.Manifest {
	opts := netsim.TestbedOptions()
	opts.Protocol = netsim.ProtocolComap
	opts.Seed = 7
	opts.Duration = sc.ETDuration
	return netsim.ManifestFor("bench-attribution-et30", topology.ETSweep(30), opts)
}

// Scenarios returns the canonical list: figures first, then the hot-path and
// ablation targets, then the city-scale sweep, in stable order.
func Scenarios() []Scenario {
	return append([]Scenario{
		{
			Name:  "fig1-exposed-terminal-sweep",
			Desc:  "802.11 exposed-terminal distance sweep (Fig. 1)",
			Quick: true,
			Prepare: func(sc Scale) (func() (Metrics, error), error) {
				return func() (Metrics, error) {
					res, err := experiments.Fig1(sc.Fig)
					if err != nil {
						return nil, err
					}
					return Metrics{"far_Mbps": res.C1Goodput.Points[len(res.C1Goodput.Points)-1].Y}, nil
				}, nil
			},
		},
		{
			Name: "fig2-hidden-terminal-payload",
			Desc: "hidden-terminal payload study (Fig. 2)",
			Prepare: func(sc Scale) (func() (Metrics, error), error) {
				return func() (Metrics, error) {
					res, err := experiments.Fig2(sc.Fig)
					if err != nil {
						return nil, err
					}
					last := len(res.NoHT.Points) - 1
					return Metrics{
						"noHT_Mbps":  res.NoHT.Points[last].Y,
						"oneHT_Mbps": res.OneHT.Points[last].Y,
					}, nil
				}, nil
			},
		},
		{
			Name: "fig7-model-validation",
			Desc: "analytical-model vs simulation validation (Fig. 7)",
			Prepare: func(sc Scale) (func() (Metrics, error), error) {
				return func() (Metrics, error) {
					panels, err := experiments.Fig7(sc.Fig)
					if err != nil {
						return nil, err
					}
					m := panels[0].Model[0].Points
					s := panels[0].Sim[0].Points
					return Metrics{
						"model_Mbps": m[len(m)-1].Y,
						"sim_Mbps":   s[len(s)-1].Y,
					}, nil
				}, nil
			},
		},
		{
			Name:  "fig8-comap-exposed-terminal",
			Desc:  "CO-MAP vs 802.11 exposed-terminal gain (Fig. 8)",
			Quick: true,
			Prepare: func(sc Scale) (func() (Metrics, error), error) {
				return func() (Metrics, error) {
					res, err := experiments.Fig8(sc.Fig)
					if err != nil {
						return nil, err
					}
					return Metrics{"gain_pct": res.ETRegionGainPct}, nil
				}, nil
			},
		},
		{
			Name: "fig9-comap-hidden-terminal",
			Desc: "CO-MAP hidden-terminal topologies (Fig. 9)",
			Prepare: func(sc Scale) (func() (Metrics, error), error) {
				return func() (Metrics, error) {
					res, err := experiments.Fig9(sc.Fig)
					if err != nil {
						return nil, err
					}
					return Metrics{"gain_pct": res.MeanGainPct}, nil
				}, nil
			},
		},
		{
			Name: "fig10-large-scale",
			Desc: "large-scale office floor with location error (Fig. 10)",
			Prepare: func(sc Scale) (func() (Metrics, error), error) {
				return func() (Metrics, error) {
					res, err := experiments.Fig10(sc.Fig)
					if err != nil {
						return nil, err
					}
					return Metrics{
						"gain_pct":     res.GainPerfectPct,
						"gain_err_pct": res.GainErrorPct,
					}, nil
				}, nil
			},
		},
		{
			Name:  "table1-adaptation-table",
			Desc:  "CO-MAP adaptation-table construction (Table I)",
			Quick: true,
			Prepare: func(sc Scale) (func() (Metrics, error), error) {
				base := bianchi.FromPHY(phy.NS2Table1(), phy.RateOFDM6)
				return func() (Metrics, error) {
					tbl := bianchi.NewAdaptationTable(base, 5, 8, nil, nil)
					if tbl.Lookup(3, 5).GoodputBps <= 0 {
						return nil, fmt.Errorf("empty adaptation-table entry")
					}
					return nil, nil
				}, nil
			},
		},
		{
			Name:    "ablation-header-embedded",
			Desc:    "CO-MAP with embedded location headers (default)",
			Quick:   true,
			Prepare: ablation(true, nil),
		},
		{
			Name:    "ablation-header-frame",
			Desc:    "CO-MAP with dedicated location frames",
			Prepare: ablation(false, func(o *netsim.Options) { o.Header = netsim.HeaderFrame }),
		},
		{
			Name:    "ablation-dcf-baseline",
			Desc:    "802.11 DCF baseline on the ET testbed",
			Quick:   true,
			Prepare: ablation(true, func(o *netsim.Options) { o.Protocol = netsim.ProtocolDCF }),
		},
		mapsvcIngest(),
		{
			Name:  "bianchi-goodput",
			Desc:  "hot path: one Bianchi goodput evaluation",
			Quick: true,
			Prepare: func(sc Scale) (func() (Metrics, error), error) {
				p := bianchi.FromPHY(phy.NS2Table1(), phy.RateOFDM6)
				p.W = 255
				p.Contenders = 5
				p.Hidden = 3
				return func() (Metrics, error) {
					if p.Goodput(1000) <= 0 {
						return nil, fmt.Errorf("zero goodput")
					}
					return nil, nil
				}, nil
			},
		},
		{
			Name:  "simulator-second",
			Desc:  "simulate the saturated two-link testbed end to end",
			Quick: true,
			Prepare: func(sc Scale) (func() (Metrics, error), error) {
				seed := int64(0)
				return func() (Metrics, error) {
					opts := netsim.TestbedOptions()
					opts.Protocol = netsim.ProtocolComap
					opts.Seed = seed
					opts.Duration = sc.ETDuration
					seed++
					n, err := netsim.Build(topology.ETSweep(30), opts)
					if err != nil {
						return nil, err
					}
					n.Run()
					p := n.Progress()
					return Metrics{"events_per_sec": p.EventsPerSec}, nil
				}, nil
			},
		},
	}, CityScenarios()...)
}

// Lookup returns the scenario with the given name.
func Lookup(name string) (Scenario, bool) {
	for _, s := range Scenarios() {
		if s.Name == name {
			return s, true
		}
	}
	return Scenario{}, false
}
