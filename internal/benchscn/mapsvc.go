package benchscn

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/comap"
	"repro/internal/frame"
	"repro/internal/geom"
	"repro/internal/loc"
	"repro/internal/mapsvc"
	"repro/internal/netsim"
	"repro/internal/obs"
)

// mapsvcIngest saturates the CO-MAP control-plane server (the exact stack
// comap-mapd runs: mapsvc.Service behind mapsvc.NewHTTPHandler on an
// obs.Server listener) with a concurrent binary fix stream over real
// loopback HTTP, node-churn invalidations racing the ingest, and verdict
// readers measuring tail latency through mapsvc.HTTPTransport. One
// iteration drives the load for a wall-clock window scaled by
// Scale.ETDuration and reports:
//
//	fixes_per_sec  — accepted ingest records per second (target >= 1M/s)
//	verdict_p99_us — p99 verdict latency under ingest+churn load
//	shed_pct       — percent of offered records shed by admission control
func mapsvcIngest() Scenario {
	const (
		batchRecords = 2048
		nodeSpace    = 4096
	)
	return Scenario{
		Name: "mapsvc-ingest",
		Desc: "control-plane ingest saturation over HTTP with churn and verdict tail latency",
		// In the quick subset so the CI bench diff gate watches the
		// control-plane server path (the rpc tracing/SLO instrumentation
		// rides on it) for regressions.
		Quick: true,
		Prepare: func(sc Scale) (func() (Metrics, error), error) {
			no := netsim.NS2Options()
			start := time.Now()
			svc := mapsvc.NewService(mapsvc.ServiceConfig{
				Judge: comap.Judge{Model: no.ComapModel, Rates: no.PHY.Rates},
				Now:   func() time.Duration { return time.Since(start) },
			})
			if err := svc.Recover(); err != nil {
				return nil, err
			}
			admin := obs.NewServer(obs.Options{})
			admin.Handle("/v1/", mapsvc.NewHTTPHandler(svc, 0, nil))
			addr, err := admin.Start("127.0.0.1:0")
			if err != nil {
				return nil, err
			}
			base := "http://" + addr
			workers := runtime.GOMAXPROCS(0)
			if workers < 4 {
				workers = 4
			}
			hc := &http.Client{
				Timeout: 5 * time.Second,
				Transport: &http.Transport{
					MaxIdleConns:        workers + 8,
					MaxIdleConnsPerHost: workers + 8,
				},
			}

			// Pre-encode rotating ingest bodies per worker: distinct node
			// ranges and positions per rotation, so replays keep moving
			// stations (and invalidating their cached verdicts) without
			// paying encode cost inside the measured window.
			bodies := make([][][]byte, workers)
			for w := range bodies {
				bodies[w] = make([][]byte, 4)
				for bi := range bodies[w] {
					recs := make([]mapsvc.IngestRecord, batchRecords)
					for i := range recs {
						node := 1 + (w*batchRecords+i*131)%nodeSpace
						recs[i] = mapsvc.IngestRecord{
							Op:   mapsvc.RecReport,
							Node: frame.NodeID(node),
							Fix: loc.Fix{
								Pos:               geom.Pt(float64((node*7+bi*13)%500), float64((node*11+bi*17)%500)),
								ReportedAt:        time.Second,
								ErrorRadiusMeters: 2,
							},
						}
					}
					bodies[w][bi] = mapsvc.EncodeRecords(recs)
				}
			}

			return func() (Metrics, error) {
				var accepted, shed, failed int64
				var stop atomic.Bool
				var wg sync.WaitGroup

				for w := 0; w < workers; w++ {
					wg.Add(1)
					go func(w int) {
						defer wg.Done()
						for i := 0; !stop.Load(); i++ {
							resp, err := hc.Post(base+"/v1/ingest", "application/octet-stream",
								bytes.NewReader(bodies[w][i%len(bodies[w])]))
							if err != nil {
								atomic.AddInt64(&failed, 1)
								continue
							}
							io.Copy(io.Discard, resp.Body) //nolint:errcheck // drain for keep-alive
							resp.Body.Close()
							switch resp.StatusCode {
							case http.StatusOK:
								atomic.AddInt64(&accepted, batchRecords)
							case http.StatusServiceUnavailable:
								atomic.AddInt64(&shed, batchRecords)
							default:
								atomic.AddInt64(&failed, 1)
							}
						}
					}(w)
				}

				// Churn: cycle per-node invalidations through the whole node
				// space, racing the ingest stream's cache fills.
				wg.Add(1)
				go func() {
					defer wg.Done()
					for n := 1; !stop.Load(); n++ {
						resp, err := hc.Post(fmt.Sprintf("%s/v1/invalidate?node=%d", base, 1+n%nodeSpace), "", nil)
						if err == nil {
							io.Copy(io.Discard, resp.Body) //nolint:errcheck
							resp.Body.Close()
						}
						time.Sleep(2 * time.Millisecond)
					}
				}()

				// Verdict readers: tail latency through the same transport
				// the simulator's remote client uses.
				var latMu sync.Mutex
				lats := make([]time.Duration, 0, 4096)
				for v := 0; v < 2; v++ {
					wg.Add(1)
					go func(v int) {
						defer wg.Done()
						tr := &mapsvc.HTTPTransport{Base: base, Client: hc}
						for i := 0; !stop.Load(); i++ {
							key := mapsvc.Key{
								Observer: frame.NodeID(1 + (v*997+i)%nodeSpace),
								Ongoing: comap.Link{
									Src: frame.NodeID(1 + (i*3)%nodeSpace),
									Dst: frame.NodeID(1 + (i*5+1)%nodeSpace),
								},
								MyDst: frame.NodeID(1 + (i*7+2)%nodeSpace),
							}
							var callErr error
							t0 := time.Now()
							tr.Invoke(&mapsvc.Request{Op: mapsvc.OpVerdict, Key: key},
								func(_ *mapsvc.Response, err error) { callErr = err })
							d := time.Since(t0)
							if callErr != nil {
								atomic.AddInt64(&failed, 1)
								continue
							}
							latMu.Lock()
							lats = append(lats, d)
							latMu.Unlock()
						}
					}(v)
				}

				t0 := time.Now()
				time.Sleep(sc.ETDuration)
				stop.Store(true)
				wg.Wait()
				elapsed := time.Since(t0)

				acc, sh := atomic.LoadInt64(&accepted), atomic.LoadInt64(&shed)
				if acc == 0 {
					return nil, fmt.Errorf("no ingest records accepted (%d failed calls)", atomic.LoadInt64(&failed))
				}
				if len(lats) == 0 {
					return nil, fmt.Errorf("no verdicts served")
				}
				sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
				p99 := lats[len(lats)*99/100]
				m := Metrics{
					"fixes_per_sec":  float64(acc) / elapsed.Seconds(),
					"verdict_p99_us": float64(p99.Microseconds()),
					"shed_pct":       100 * float64(sh) / float64(acc+sh),
				}
				return m, nil
			}, nil
		},
	}
}
