package bianchi

import (
	"math"
	"testing"
	"time"

	"repro/internal/phy"
)

func baseParams() Params {
	p := FromPHY(phy.DSSS(), phy.RateDSSS11)
	p.W = 63
	p.Contenders = 5
	return p
}

func TestTau(t *testing.T) {
	p := baseParams()
	p.W = 63
	if got := p.Tau(); math.Abs(got-2.0/64.0) > 1e-12 {
		t.Errorf("Tau = %v", got)
	}
	p.W = 1
	if got := p.Tau(); got != 1 {
		t.Errorf("Tau(W=1) = %v, want 1", got)
	}
}

func TestValidate(t *testing.T) {
	good := baseParams()
	if err := good.Validate(); err != nil {
		t.Errorf("valid params rejected: %v", err)
	}
	bad := []Params{
		func() Params { p := baseParams(); p.W = 0; return p }(),
		func() Params { p := baseParams(); p.Contenders = -1; return p }(),
		func() Params { p := baseParams(); p.Hidden = -2; return p }(),
		func() Params { p := baseParams(); p.DataRate = 0; return p }(),
		func() Params { p := baseParams(); p.Slot = 0; return p }(),
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: invalid params accepted", i)
		}
	}
}

func TestTimingComponents(t *testing.T) {
	p := baseParams()
	ph := phy.DSSS()
	wantHdr := ph.PreambleHeader + ph.PayloadAirtime(phy.RateDSSS11, phy.MACHeaderBytes)
	if p.HeaderTime != wantHdr {
		t.Errorf("HeaderTime = %v, want %v", p.HeaderTime, wantHdr)
	}
	// T_s - T_c = SIFS + ACK.
	if p.SuccessTime(1000)-p.CollisionTime(1000) != p.SIFS+p.ACKTime {
		t.Error("T_s - T_c must equal SIFS + ACK")
	}
	// Larger payload, longer times.
	if p.SuccessTime(1500) <= p.SuccessTime(100) {
		t.Error("SuccessTime must grow with payload")
	}
}

func TestGoodputPositiveAndBounded(t *testing.T) {
	p := baseParams()
	for _, h := range []int{0, 1, 3, 5, 10} {
		p.Hidden = h
		for _, l := range []int{50, 500, 1000, 1500} {
			g := p.Goodput(l)
			if g <= 0 {
				t.Errorf("h=%d l=%d: goodput %v not positive", h, l, g)
			}
			if g >= p.DataRate {
				t.Errorf("h=%d l=%d: goodput %v exceeds channel rate", h, l, g)
			}
		}
	}
}

func TestGoodputZeroForDegenerateInput(t *testing.T) {
	p := baseParams()
	if p.Goodput(0) != 0 || p.Goodput(-5) != 0 {
		t.Error("non-positive payload must give 0 goodput")
	}
	p.W = 0
	if p.Goodput(1000) != 0 {
		t.Error("invalid params must give 0 goodput")
	}
}

func TestHiddenTerminalsReduceGoodput(t *testing.T) {
	p := baseParams()
	prev := math.Inf(1)
	for _, h := range []int{0, 1, 3, 5, 8} {
		p.Hidden = h
		g := p.Goodput(1000)
		if g >= prev {
			t.Errorf("goodput did not decrease at h=%d: %v >= %v", h, g, prev)
		}
		prev = g
	}
}

func TestNoHiddenLargestPayloadWins(t *testing.T) {
	// Paper: "The highest goodput of a link without HT is achieved with the
	// largest payload length."
	p := baseParams()
	p.Hidden = 0
	best := OptimalSetting(p, []int{p.W}, nil)
	if best.PayloadBytes != 1500 {
		t.Errorf("best payload without HT = %d, want 1500", best.PayloadBytes)
	}
}

func TestManyHiddenPreferSmallerPayload(t *testing.T) {
	// Paper: "when the number of HTs is large, a small payload length should
	// be used to shorten the channel occupancy time."
	p := baseParams()
	p.Hidden = 0
	bestNoHT := OptimalSetting(p, []int{63}, nil)
	p.Hidden = 8
	bestManyHT := OptimalSetting(p, []int{63}, nil)
	if bestManyHT.PayloadBytes >= bestNoHT.PayloadBytes {
		t.Errorf("payload with 8 HTs (%d) should be below payload with none (%d)",
			bestManyHT.PayloadBytes, bestNoHT.PayloadBytes)
	}
}

func TestHiddenTerminalsPreferLargerWindow(t *testing.T) {
	// Paper: "When the number of HTs increases, CW size should be set to the
	// maximum value to slow down the transmission of all nodes."
	p := baseParams()
	p.Hidden = 5
	best := OptimalSetting(p, nil, nil)
	p.Hidden = 0
	bestNoHT := OptimalSetting(p, nil, nil)
	if best.W <= bestNoHT.W {
		t.Errorf("W with 5 HTs (%d) should exceed W with none (%d)", best.W, bestNoHT.W)
	}
}

func TestSuccessProbabilityMonotoneInHidden(t *testing.T) {
	p := baseParams()
	prev := 1.0
	for h := 0; h <= 10; h++ {
		p.Hidden = h
		ps := p.SuccessProbability(1000)
		if ps < 0 || ps > 1 {
			t.Fatalf("h=%d: P_s = %v out of range", h, ps)
		}
		if ps > prev {
			t.Errorf("P_s increased at h=%d", h)
		}
		prev = ps
	}
}

func TestSlotLengthBounds(t *testing.T) {
	p := baseParams()
	e := p.SlotLength(1000)
	if e < p.Slot {
		t.Errorf("E[slot] %v below empty slot %v", e, p.Slot)
	}
	if e > p.SuccessTime(1000) {
		t.Errorf("E[slot] %v above T_s %v", e, p.SuccessTime(1000))
	}
	// Zero contenders and W=1: every slot is a guaranteed transmission.
	p.Contenders = 0
	p.W = 1
	if got := p.SlotLength(1000); got != p.SuccessTime(1000) {
		t.Errorf("deterministic slot = %v, want T_s %v", got, p.SuccessTime(1000))
	}
}

func TestSingleStationGoodputNearChannelEfficiency(t *testing.T) {
	// One saturated station, no contenders, W=2: goodput should approach
	// payload/(T_s + small backoff overhead).
	p := baseParams()
	p.Contenders = 0
	p.W = 2
	g := p.Goodput(1000)
	ideal := float64(1000*8) / p.SuccessTime(1000).Seconds()
	if g > ideal {
		t.Errorf("goodput %v exceeds ideal %v", g, ideal)
	}
	if g < 0.5*ideal {
		t.Errorf("goodput %v below half of ideal %v", g, ideal)
	}
}

func TestOptimalSettingUsesDefaults(t *testing.T) {
	p := baseParams()
	s := OptimalSetting(p, nil, nil)
	if s.GoodputBps <= 0 {
		t.Fatal("no setting found")
	}
	found := false
	for _, w := range DefaultWindows {
		if s.W == w {
			found = true
		}
	}
	if !found {
		t.Errorf("W=%d not from default grid", s.W)
	}
	if s.PayloadBytes < 50 || s.PayloadBytes > 1500 {
		t.Errorf("payload %d outside default grid", s.PayloadBytes)
	}
}

func TestAdaptationTable(t *testing.T) {
	base := FromPHY(phy.DSSS(), phy.RateDSSS11)
	tbl := NewAdaptationTable(base, 3, 6, []int{63, 255, 1023}, []int{100, 500, 1000, 1500})
	if tbl.MaxHidden() != 3 || tbl.MaxContenders() != 6 {
		t.Fatalf("dims = %d x %d", tbl.MaxHidden(), tbl.MaxContenders())
	}
	s := tbl.Lookup(0, 5)
	if s.GoodputBps <= 0 {
		t.Error("empty setting in table")
	}
	// Clamping.
	if got := tbl.Lookup(99, 99); got != tbl.Lookup(3, 6) {
		t.Error("out-of-range lookup should clamp")
	}
	if got := tbl.Lookup(-1, -1); got != tbl.Lookup(0, 0) {
		t.Error("negative lookup should clamp to 0")
	}
	// More hidden terminals must not increase the chosen payload.
	for c := 0; c <= 6; c++ {
		if tbl.Lookup(3, c).PayloadBytes > tbl.Lookup(0, c).PayloadBytes {
			t.Errorf("c=%d: payload grows with hidden terminals", c)
		}
	}
}

func TestDefaultPayloadsGrid(t *testing.T) {
	g := DefaultPayloads()
	if len(g) != 30 || g[0] != 50 || g[len(g)-1] != 1500 {
		t.Errorf("grid = %v", g)
	}
}

func TestPaperFig7Shape(t *testing.T) {
	// Fig. 7 qualitative checks with c=5 contenders:
	// (a) no HT: goodput increases with payload for every W, and W=63 beats
	//     W=1023 at large payloads (small window wastes less idle time);
	// (c) 5 HTs: the best payload for W=63 is interior (not the maximum).
	base := baseParams()

	base.Hidden = 0
	for _, w := range []int{63, 255, 1023} {
		p := base
		p.W = w
		if p.Goodput(1500) <= p.Goodput(100) {
			t.Errorf("no-HT goodput not increasing with payload at W=%d", w)
		}
	}
	p63, p1023 := base, base
	p63.W, p1023.W = 63, 1023
	if p63.Goodput(1500) <= p1023.Goodput(1500) {
		t.Error("without HTs, W=63 should beat W=1023")
	}

	base.Hidden = 5
	p := base
	p.W = 63
	bestL, bestG := 0, 0.0
	for l := 50; l <= 1500; l += 50 {
		if g := p.Goodput(l); g > bestG {
			bestL, bestG = l, g
		}
	}
	if bestL == 1500 {
		t.Error("with 5 HTs the optimum payload should be interior, got 1500")
	}
	if bestL < 50 {
		t.Error("degenerate optimum")
	}
}

func TestGoodputContinuityAcrossSlotRounding(t *testing.T) {
	// The model uses continuous time; goodput must vary smoothly (no jumps
	// from duration rounding).
	p := baseParams()
	prev := p.Goodput(1000)
	for l := 1001; l <= 1010; l++ {
		g := p.Goodput(l)
		if math.Abs(g-prev)/prev > 0.01 {
			t.Errorf("goodput jumped at l=%d: %v -> %v", l, prev, g)
		}
		prev = g
	}
}

func TestSlotLengthIsFinite(t *testing.T) {
	p := baseParams()
	p.W = 1 // tau = 1: always a collision with contenders present
	e := p.SlotLength(1000)
	if e <= 0 || e > time.Second {
		t.Errorf("slot length = %v", e)
	}
}
