// Package bianchi implements the analytical model of paper §IV-D2: Bianchi's
// saturation model of the 802.11 DCF with a constant contention window,
// extended to account for hidden terminals (eqs. 5–9). CO-MAP consults this
// model to pick the packet size and contention window that maximise goodput
// for a given number of hidden terminals and contenders, precomputed into a
// two-dimensional adaptation table.
package bianchi

import (
	"errors"
	"math"
	"time"

	"repro/internal/phy"
)

// Params describes one modelled link and its contention environment.
type Params struct {
	// Slot is the empty backoff slot duration (the model's sigma).
	Slot time.Duration
	// SIFS and DIFS are the interframe spaces.
	SIFS time.Duration
	DIFS time.Duration
	// HeaderTime is the airtime of the PHY preamble/PLCP plus the MAC header
	// (the model's T_HDR).
	HeaderTime time.Duration
	// ACKTime is the ACK frame airtime at the basic rate.
	ACKTime time.Duration
	// DataRate is the payload bit rate in bits per second.
	DataRate float64
	// W is the constant contention window in slots: the backoff counter is
	// uniform on [0, W-1], giving tau = 2/(W+1).
	W int
	// Contenders is c: the number of other stations whose transmissions the
	// modelled node can carrier-sense.
	Contenders int
	// Hidden is h: the number of hidden terminals of the modelled link.
	Hidden int
}

// FromPHY fills the timing fields of a Params from a PHY parameter set and
// data rate, leaving W/Contenders/Hidden for the caller.
func FromPHY(p phy.Params, r phy.Rate) Params {
	return Params{
		Slot:       p.SlotTime,
		SIFS:       p.SIFS,
		DIFS:       p.DIFS(),
		HeaderTime: p.PreambleHeader + p.PayloadAirtime(r, phy.MACHeaderBytes),
		ACKTime:    p.ACKAirtime(),
		DataRate:   r.BitsPerSec,
	}
}

// ErrInvalidParams is returned when the model parameters are inconsistent.
var ErrInvalidParams = errors.New("bianchi: invalid parameters")

// Validate checks the parameters for model applicability.
func (p Params) Validate() error {
	if p.W < 1 || p.Contenders < 0 || p.Hidden < 0 || p.DataRate <= 0 || p.Slot <= 0 {
		return ErrInvalidParams
	}
	return nil
}

// Tau is the per-slot transmission probability of a saturated station with a
// constant contention window W: tau = 2/(W+1).
func (p Params) Tau() float64 { return 2 / (float64(p.W) + 1) }

// payloadTime returns the airtime of payloadBytes of payload at the data
// rate (no symbol rounding: the model is continuous).
func (p Params) payloadTime(payloadBytes int) time.Duration {
	bits := float64(payloadBytes * 8)
	return time.Duration(bits / p.DataRate * float64(time.Second))
}

// SuccessTime is T_s: header + payload + SIFS + ACK + DIFS.
func (p Params) SuccessTime(payloadBytes int) time.Duration {
	return p.HeaderTime + p.payloadTime(payloadBytes) + p.SIFS + p.ACKTime + p.DIFS
}

// CollisionTime is T_c: header + payload + DIFS (no ACK comes back).
func (p Params) CollisionTime(payloadBytes int) time.Duration {
	return p.HeaderTime + p.payloadTime(payloadBytes) + p.DIFS
}

// SlotLength is E[slot length] (the denominator of eq. 5): the expected
// duration of one virtual slot as seen by the contending set, assuming all
// nodes use the same payload length.
func (p Params) SlotLength(payloadBytes int) time.Duration {
	tau := p.Tau()
	ptr := 1 - math.Pow(1-tau, float64(p.Contenders)+1)
	if ptr == 0 {
		return p.Slot
	}
	ps := (float64(p.Contenders) + 1) * tau * math.Pow(1-tau, float64(p.Contenders)) / ptr
	ts := p.SuccessTime(payloadBytes).Seconds()
	tc := p.CollisionTime(payloadBytes).Seconds()
	e := (1-ptr)*p.Slot.Seconds() + ptr*ps*ts + ptr*(1-ps)*tc
	return time.Duration(e * float64(time.Second))
}

// HiddenSlotLength is the expected duration of one backoff slot as perceived
// by a hidden terminal of the modelled link: σ + τ·T_s. A hidden terminal
// cannot carrier-sense the modelled node, so during the node's frame it sees
// idle slots (σ) interleaved only with its own transmissions (probability τ
// per slot, each occupying T_s).
//
// Note: the paper's eq. (9) writes k = (T_s+T_i)/E[Slot length] with the
// contention-domain slot of eq. (5); that slot length is itself proportional
// to the payload airtime in saturation, which makes k nearly constant in the
// payload and cannot yield the interior packet-size optimum of the paper's
// Figs. 2 and 7. Measuring the vulnerable window in the hidden terminal's
// own virtual slots (this function) restores the renewal-process behaviour —
// the per-frame collision probability grows with channel occupancy time —
// and matches both the paper's qualitative results and our simulator.
func (p Params) HiddenSlotLength(payloadBytes int) time.Duration {
	ts := p.SuccessTime(payloadBytes).Seconds()
	return time.Duration((p.Slot.Seconds() + p.Tau()*ts) * float64(time.Second))
}

// SuccessProbability is P_s^i of eq. (9): the probability that a randomly
// chosen slot carries a successful transmission of the modelled node,
// requiring (a) the node transmits, (b) none of its c contenders transmits in
// the same slot, and (c) none of its h hidden terminals transmits during the
// vulnerable window of k hidden-terminal slots around the frame.
func (p Params) SuccessProbability(payloadBytes int) float64 {
	tau := p.Tau()
	base := tau * math.Pow(1-tau, float64(p.Contenders))
	if p.Hidden == 0 {
		return base
	}
	htSlot := p.HiddenSlotLength(payloadBytes).Seconds()
	if htSlot <= 0 {
		return 0
	}
	// k = (T_s + T_i)/E_ht[slot]; homogeneous packet lengths make T_i = T_s.
	k := 2 * p.SuccessTime(payloadBytes).Seconds() / htSlot
	return base * math.Pow(math.Pow(1-tau, float64(p.Hidden)), k)
}

// Goodput is eq. (5): the modelled link's goodput in bits per second for the
// given payload size.
func (p Params) Goodput(payloadBytes int) float64 {
	if err := p.Validate(); err != nil {
		return 0
	}
	if payloadBytes <= 0 {
		return 0
	}
	eSlot := p.SlotLength(payloadBytes).Seconds()
	if eSlot <= 0 {
		return 0
	}
	return p.SuccessProbability(payloadBytes) * float64(payloadBytes*8) / eSlot
}

// Setting is one (contention window, payload) operating point and its
// modelled goodput.
type Setting struct {
	W            int
	PayloadBytes int
	GoodputBps   float64
}

// DefaultWindows is the contention-window search grid (powers of two minus
// one, the values hardware supports).
var DefaultWindows = []int{15, 31, 63, 127, 255, 511, 1023}

// DefaultPayloads returns the payload search grid: 50..1500 bytes in steps
// of 50.
func DefaultPayloads() []int {
	out := make([]int, 0, 30)
	for l := 50; l <= 1500; l += 50 {
		out = append(out, l)
	}
	return out
}

// OptimalSetting searches the (W, payload) grid for the operating point with
// the highest modelled goodput, given base's timing/contention parameters.
// Empty grids select the defaults.
func OptimalSetting(base Params, windows, payloads []int) Setting {
	if len(windows) == 0 {
		windows = DefaultWindows
	}
	if len(payloads) == 0 {
		payloads = DefaultPayloads()
	}
	var best Setting
	for _, w := range windows {
		p := base
		p.W = w
		for _, l := range payloads {
			if g := p.Goodput(l); g > best.GoodputBps {
				best = Setting{W: w, PayloadBytes: l, GoodputBps: g}
			}
		}
	}
	return best
}

// AdaptationTable is the paper's precomputed 2-D array: the element at row h
// and column c is the best (CW, packet size) for a node with h hidden
// terminals and c contending nodes.
type AdaptationTable struct {
	settings [][]Setting
}

// NewAdaptationTable computes the table for h in [0, maxHidden] and c in
// [0, maxContenders] over the given grids (empty grids use defaults).
func NewAdaptationTable(base Params, maxHidden, maxContenders int, windows, payloads []int) *AdaptationTable {
	t := &AdaptationTable{settings: make([][]Setting, maxHidden+1)}
	for h := 0; h <= maxHidden; h++ {
		t.settings[h] = make([]Setting, maxContenders+1)
		for c := 0; c <= maxContenders; c++ {
			p := base
			p.Hidden = h
			p.Contenders = c
			t.settings[h][c] = OptimalSetting(p, windows, payloads)
		}
	}
	return t
}

// Lookup returns the best setting for the given hidden-terminal and
// contender counts, clamping out-of-range values to the table edge (more
// hidden terminals than modelled still get the most conservative entry).
func (t *AdaptationTable) Lookup(hidden, contenders int) Setting {
	h := clamp(hidden, 0, len(t.settings)-1)
	row := t.settings[h]
	c := clamp(contenders, 0, len(row)-1)
	return row[c]
}

// MaxHidden returns the largest hidden-terminal count in the table.
func (t *AdaptationTable) MaxHidden() int { return len(t.settings) - 1 }

// MaxContenders returns the largest contender count in the table.
func (t *AdaptationTable) MaxContenders() int {
	if len(t.settings) == 0 {
		return 0
	}
	return len(t.settings[0]) - 1
}

func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
