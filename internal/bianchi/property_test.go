package bianchi

import (
	"testing"
	"testing/quick"

	"repro/internal/phy"
)

// TestGoodputBoundsProperty: for any admissible parameters, goodput lies in
// (0, DataRate).
func TestGoodputBoundsProperty(t *testing.T) {
	base := FromPHY(phy.NS2Table1(), phy.RateOFDM6)
	f := func(wRaw, cRaw, hRaw uint8, lRaw uint16) bool {
		p := base
		p.W = 1 + int(wRaw)%1023
		p.Contenders = int(cRaw) % 20
		p.Hidden = int(hRaw) % 10
		l := 1 + int(lRaw)%2300
		g := p.Goodput(l)
		if g < 0 || g >= p.DataRate {
			return false
		}
		// W=1 with contenders means tau=1: every slot collides and zero
		// goodput is the correct answer; otherwise goodput is positive.
		if p.W > 1 || p.Contenders == 0 {
			return g > 0
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestGoodputMonotoneInContenders: more contenders never increase a single
// link's goodput.
func TestGoodputMonotoneInContenders(t *testing.T) {
	base := FromPHY(phy.NS2Table1(), phy.RateOFDM6)
	f := func(wRaw uint8, aRaw, bRaw uint8, lRaw uint16) bool {
		a, b := int(aRaw)%15, int(bRaw)%15
		if a > b {
			a, b = b, a
		}
		l := 50 + int(lRaw)%1450
		pa, pb := base, base
		pa.W = 63 + int(wRaw)%4*64
		pb.W = pa.W
		pa.Contenders, pb.Contenders = a, b
		return pa.Goodput(l) >= pb.Goodput(l)-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestSlotLengthMonotoneInPayload: the expected virtual slot grows with
// payload (more airtime per busy slot).
func TestSlotLengthMonotoneInPayload(t *testing.T) {
	base := FromPHY(phy.NS2Table1(), phy.RateOFDM6)
	base.W = 127
	base.Contenders = 4
	f := func(aRaw, bRaw uint16) bool {
		a := 1 + int(aRaw)%2000
		b := 1 + int(bRaw)%2000
		if a > b {
			a, b = b, a
		}
		return base.SlotLength(a) <= base.SlotLength(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestAdaptationTableMonotoneAcrossHidden: for every contender count, the
// table's modelled goodput never increases with more hidden terminals.
func TestAdaptationTableMonotoneAcrossHidden(t *testing.T) {
	base := FromPHY(phy.NS2Table1(), phy.RateOFDM6)
	tbl := NewAdaptationTable(base, 5, 6, nil, nil)
	for c := 0; c <= 6; c++ {
		prev := tbl.Lookup(0, c).GoodputBps
		for h := 1; h <= 5; h++ {
			cur := tbl.Lookup(h, c).GoodputBps
			if cur > prev+1e-9 {
				t.Errorf("c=%d: best goodput rose from h=%d to h=%d (%v -> %v)",
					c, h-1, h, prev, cur)
			}
			prev = cur
		}
	}
}

// TestOptimalSettingIsActuallyOptimal: the returned setting's goodput equals
// a brute-force maximum over the grids.
func TestOptimalSettingIsActuallyOptimal(t *testing.T) {
	base := FromPHY(phy.NS2Table1(), phy.RateOFDM6)
	base.Contenders = 5
	base.Hidden = 2
	windows := []int{31, 127, 511}
	payloads := []int{200, 700, 1200}
	best := OptimalSetting(base, windows, payloads)
	for _, w := range windows {
		p := base
		p.W = w
		for _, l := range payloads {
			if g := p.Goodput(l); g > best.GoodputBps+1e-12 {
				t.Errorf("grid point (W=%d, L=%d) beats the 'optimal' (%v > %v)",
					w, l, g, best.GoodputBps)
			}
		}
	}
	if best.GoodputBps != func() float64 {
		p := base
		p.W = best.W
		return p.Goodput(best.PayloadBytes)
	}() {
		t.Error("reported goodput does not match recomputation")
	}
}
