package comap

import (
	"testing"

	"repro/internal/bianchi"
	"repro/internal/frame"
	"repro/internal/geom"
	"repro/internal/loc"
	"repro/internal/phy"
)

func TestCoOccurrenceMapLookupInsert(t *testing.T) {
	c := NewCoOccurrenceMap()
	l := Link{Src: 1, Dst: 10}
	if _, found := c.Lookup(l, 11); found {
		t.Error("empty map should miss")
	}
	c.Insert(l, 11, true)
	c.Insert(l, 12, false)
	if allowed, found := c.Lookup(l, 11); !found || !allowed {
		t.Error("inserted true verdict lost")
	}
	if allowed, found := c.Lookup(l, 12); !found || allowed {
		t.Error("inserted false verdict lost")
	}
	if _, found := c.Lookup(Link{Src: 2, Dst: 10}, 11); found {
		t.Error("different ongoing link should miss")
	}
	if c.Len() != 1 {
		t.Errorf("Len = %d", c.Len())
	}
	if c.Hits() != 2 || c.Misses() != 2 {
		t.Errorf("hits/misses = %d/%d", c.Hits(), c.Misses())
	}
}

func TestCoOccurrenceMapInvalidate(t *testing.T) {
	c := NewCoOccurrenceMap()
	c.Insert(Link{Src: 1, Dst: 2}, 3, true)
	c.Invalidate()
	if c.Len() != 0 {
		t.Error("Invalidate should clear entries")
	}
	if _, found := c.Lookup(Link{Src: 1, Dst: 2}, 3); found {
		t.Error("entry survived Invalidate")
	}
}

func TestAgentAllowedCachesVerdicts(t *testing.T) {
	m := testbedModel()
	p := loc.Static{
		1:  geom.Pt(0, 0),
		10: geom.Pt(10, 0),
		2:  geom.Pt(50, 0),
		11: geom.Pt(58, 0),
	}
	a := NewAgent(2, m, p)
	if !a.Allowed(1, 10, 11) {
		t.Fatal("separated links should be allowed")
	}
	missesAfterFirst := a.Map().Misses()
	// Second consult: cache hit, no recomputation path.
	if !a.Allowed(1, 10, 11) {
		t.Fatal("cached verdict changed")
	}
	if a.Map().Misses() != missesAfterFirst {
		t.Error("second lookup should not miss")
	}
	if a.Map().Hits() == 0 {
		t.Error("expected a cache hit")
	}
}

func TestAgentAllowedDeniesNearbyLink(t *testing.T) {
	m := testbedModel()
	p := loc.Static{
		1:  geom.Pt(0, 0),
		10: geom.Pt(10, 0),
		2:  geom.Pt(12, 0), // right next to the ongoing receiver
		11: geom.Pt(20, 0),
	}
	a := NewAgent(2, m, p)
	if a.Allowed(1, 10, 11) {
		t.Error("node near ongoing receiver must not transmit")
	}
	// The negative verdict is cached too.
	if _, found := a.Map().Lookup(Link{Src: 1, Dst: 10}, 11); !found {
		t.Error("negative verdict should be cached")
	}
}

func TestAgentAllowedUnknownPositions(t *testing.T) {
	m := testbedModel()
	a := NewAgent(2, m, loc.Static{})
	if a.Allowed(1, 10, 11) {
		t.Error("no position info: concurrency must be denied")
	}
}

func TestAgentOnPositionsChanged(t *testing.T) {
	m := testbedModel()
	p := loc.Static{
		1:  geom.Pt(0, 0),
		10: geom.Pt(10, 0),
		2:  geom.Pt(50, 0),
		11: geom.Pt(58, 0),
	}
	a := NewAgent(2, m, p)
	if !a.Allowed(1, 10, 11) {
		t.Fatal("setup: should be allowed")
	}
	// The node moves right next to the ongoing receiver; after invalidation
	// the fresh verdict must flip.
	p[2] = geom.Pt(12, 0)
	a.OnPositionsChanged()
	if a.Allowed(1, 10, 11) {
		t.Error("stale verdict survived position change")
	}
}

func TestAgentCountEnvironmentAndAdaptation(t *testing.T) {
	m := testbedModel()
	p := loc.Static{
		1:  geom.Pt(0, 0),  // me
		10: geom.Pt(15, 0), // my AP
		3:  geom.Pt(45, 0), // hidden terminal
		4:  geom.Pt(10, 0), // contender
		6:  geom.Pt(0, 20), // contender
	}
	a := NewAgent(1, m, p)
	candidates := []frame.NodeID{3, 4, 6}
	h, c := a.CountEnvironment(10, candidates)
	if h != 1 || c != 2 {
		t.Fatalf("h=%d c=%d, want 1/2", h, c)
	}
	base := bianchi.FromPHY(phy.DSSS(), phy.RateDSSS11)
	tbl := bianchi.NewAdaptationTable(base, 3, 6, []int{63, 255, 1023}, nil)
	s := a.Adaptation(tbl, 10, candidates)
	if s != tbl.Lookup(1, 2) {
		t.Errorf("Adaptation = %+v, want table (1,2) entry", s)
	}
	if a.ID() != 1 {
		t.Errorf("ID = %v", a.ID())
	}
	if a.Model() != m {
		t.Error("Model accessor mismatch")
	}
}
